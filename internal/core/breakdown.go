package core

import (
	"fmt"
	"io"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/stats"
)

// breakdownComponents lists the per-component axes in path order.
var breakdownComponents = []struct {
	name string
	get  func(cloud.Breakdown) time.Duration
}{
	{"propagation", func(b cloud.Breakdown) time.Duration { return b.Propagation }},
	{"frontend", func(b cloud.Breakdown) time.Duration { return b.Frontend }},
	{"wire", func(b cloud.Breakdown) time.Duration { return b.Wire }},
	{"congestion", func(b cloud.Breakdown) time.Duration { return b.Congestion }},
	{"slow-path", func(b cloud.Breakdown) time.Duration { return b.SlowPath }},
	{"routing", func(b cloud.Breakdown) time.Duration { return b.Routing }},
	{"queue-wait", func(b cloud.Breakdown) time.Duration { return b.QueueWait }},
	{"queue-handoff", func(b cloud.Breakdown) time.Duration { return b.QueueHandoff }},
	{"overhead", func(b cloud.Breakdown) time.Duration { return b.Overhead }},
	{"payload-fetch", func(b cloud.Breakdown) time.Duration { return b.PayloadFetch }},
	{"exec", func(b cloud.Breakdown) time.Duration { return b.Exec }},
	{"payload-store", func(b cloud.Breakdown) time.Duration { return b.PayloadStore }},
	{"downstream", func(b cloud.Breakdown) time.Duration { return b.Downstream }},
	{"retried", func(b cloud.Breakdown) time.Duration { return b.Retried }},
	{"response-path", func(b cloud.Breakdown) time.Duration { return b.ResponsePath }},
}

// coldComponents lists the cold-start phases.
var coldComponents = []struct {
	name string
	get  func(cloud.ColdBreakdown) time.Duration
}{
	{"cold/scheduler-queue", func(c cloud.ColdBreakdown) time.Duration { return c.SchedulerQueue }},
	{"cold/placement", func(c cloud.ColdBreakdown) time.Duration { return c.Placement }},
	{"cold/sandbox-boot", func(c cloud.ColdBreakdown) time.Duration { return c.SandboxBoot }},
	{"cold/image-fetch", func(c cloud.ColdBreakdown) time.Duration { return c.ImageFetch }},
	{"cold/chunk-reads", func(c cloud.ColdBreakdown) time.Duration { return c.ChunkReads }},
	{"cold/runtime-init", func(c cloud.ColdBreakdown) time.Duration { return c.RuntimeInit }},
	{"cold/snapshot-restore", func(c cloud.ColdBreakdown) time.Duration { return c.SnapshotRestore }},
	{"cold/snapshot-capture", func(c cloud.ColdBreakdown) time.Duration { return c.SnapshotCapture }},
}

// BreakdownStats aggregates per-component latency samples across a run,
// implementing the paper's per-component analysis: which infrastructure
// component contributed how much to the distribution.
type BreakdownStats struct {
	// Order lists component names in invocation-path order.
	Order []string
	// Components maps names to their samples (one observation per
	// successful request).
	Components map[string]*stats.Sample
	// ColdOrder and Cold hold the cold-start phases over cold-served
	// requests only.
	ColdOrder []string
	Cold      map[string]*stats.Sample
}

// CollectBreakdowns builds per-component statistics from a run's samples.
func CollectBreakdowns(samples []Sample) *BreakdownStats {
	bs := &BreakdownStats{
		Components: make(map[string]*stats.Sample, len(breakdownComponents)),
		Cold:       make(map[string]*stats.Sample, len(coldComponents)),
	}
	for _, c := range breakdownComponents {
		bs.Order = append(bs.Order, c.name)
		bs.Components[c.name] = stats.NewSample(len(samples))
	}
	for _, c := range coldComponents {
		bs.ColdOrder = append(bs.ColdOrder, c.name)
		bs.Cold[c.name] = stats.NewSample(0)
	}
	for _, s := range samples {
		if s.Err != nil {
			continue
		}
		for _, c := range breakdownComponents {
			bs.Components[c.name].Add(c.get(s.Breakdown))
		}
		if s.Cold {
			for _, c := range coldComponents {
				bs.Cold[c.name].Add(c.get(s.Breakdown.ColdStart))
			}
		}
	}
	return bs
}

// Write renders the aggregation as a table: median and p99 contribution of
// each component, skipping components that never contributed.
func (bs *BreakdownStats) Write(w io.Writer) {
	fmt.Fprintf(w, "%-22s %12s %12s %12s\n", "component", "median", "p99", "mean")
	row := func(name string, s *stats.Sample) {
		if s.Len() == 0 || s.Max() == 0 {
			return
		}
		fmt.Fprintf(w, "%-22s %12v %12v %12v\n", name,
			s.Median().Round(time.Microsecond*100),
			s.P99().Round(time.Microsecond*100),
			s.Mean().Round(time.Microsecond*100))
	}
	for _, name := range bs.Order {
		row(name, bs.Components[name])
	}
	if cold := bs.Cold[bs.ColdOrder[0]]; cold != nil && cold.Len() > 0 {
		fmt.Fprintf(w, "cold-start phases (%d cold-served requests; included in queue-wait):\n", cold.Len())
		for _, name := range bs.ColdOrder {
			row("  "+name, bs.Cold[name])
		}
	}
}
