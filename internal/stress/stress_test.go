package stress

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/blobstore"
	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/httpfaas"
)

// testConfig mirrors the httpfaas test profile: small latencies so
// wall-clock tests stay fast under high time compression.
func testConfig() cloud.Config {
	return cloud.Config{
		Name:              "stress-sim",
		PropagationRTT:    10 * time.Millisecond,
		FrontendDelay:     dist.Constant(time.Millisecond),
		WarmOverhead:      dist.Constant(2 * time.Millisecond),
		SchedulerCapacity: 8,
		Policy:            cloud.PolicyConfig{Kind: cloud.PolicyNoQueue},
		SandboxBoot:       dist.Constant(20 * time.Millisecond),
		WarmGenericPool:   true,
		PooledInit:        dist.Constant(20 * time.Millisecond),
		ImageStore:        blobstore.Config{Name: "img", GetLatency: dist.Constant(10 * time.Millisecond)},
		PayloadStore: blobstore.Config{
			Name:       "blob",
			GetLatency: dist.Constant(5 * time.Millisecond),
			PutLatency: dist.Constant(5 * time.Millisecond),
		},
		InlineLimitBytes:   6 << 20,
		InlineBandwidthBps: 1e9,
		KeepAlive:          cloud.KeepAlivePolicy{Fixed: 10 * time.Minute},
		Workers:            4,
	}
}

func testFunction() core.FunctionConfig {
	return core.FunctionConfig{Name: "f", Runtime: "go1.x", Method: "zip"}
}

// startFaaS boots an httpfaas server with one deployed function and returns
// its invoke URL.
func startFaaS(t *testing.T, timeScale float64) (*httpfaas.Server, string) {
	t.Helper()
	srv, err := httpfaas.NewServer(testConfig(), 7, timeScale)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	eps, err := srv.Deploy(testFunction())
	if err != nil {
		t.Fatal(err)
	}
	return srv, eps[0].URL
}

func TestRunAgainstHTTPFaaS(t *testing.T) {
	_, url := startFaaS(t, 1000)
	opts := Options{
		URL:         url,
		Arrival:     ArrivalFixed,
		Rate:        2000,
		MaxRequests: 600,
		Workers:     4,
		Seed:        7,
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 600 {
		t.Fatalf("completed %d of 600", res.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Colds == 0 {
		t.Error("no cold starts recorded at ramp-up")
	}
	if res.Intended.Count() != 600 || res.Service.Count() != 600 || res.SendLag.Count() != 600 {
		t.Fatalf("sketch counts intended=%d service=%d lag=%d, want 600 each",
			res.Intended.Count(), res.Service.Count(), res.SendLag.Count())
	}
	if res.SimVirtual.Count() == 0 {
		t.Error("no in-reply sim latencies parsed")
	}
	if res.Dials == 0 || res.Reused == 0 {
		t.Errorf("connection counters dials=%d reused=%d: keep-alive not exercised", res.Dials, res.Reused)
	}
	if res.Reused+res.Dials < 600 {
		t.Errorf("dials+reused = %d < requests", res.Reused+res.Dials)
	}
	if res.AchievedRPS <= 0 {
		t.Error("no achieved rate computed")
	}
	// Intended-time latency is never below service time at equal quantiles.
	if res.Intended.Quantile(0.5) < res.Service.Quantile(0.5)-time.Millisecond {
		t.Errorf("intended p50 %v below service p50 %v", res.Intended.Quantile(0.5), res.Service.Quantile(0.5))
	}
}

func TestRunStdClientAgainstHTTPFaaS(t *testing.T) {
	_, url := startFaaS(t, 1000)
	res, err := Run(Options{
		URL:         url,
		Arrival:     ArrivalPoisson,
		Rate:        1500,
		MaxRequests: 300,
		Workers:     2,
		Client:      ClientStd,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 300 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d", res.Requests, res.Errors)
	}
	if res.Dials == 0 {
		t.Error("std client reported no dials")
	}
}

// TestDESTwinSameSeed runs the virtual twin with the same profile, seed,
// and schedule, and checks the comparison is well-formed and deterministic.
func TestDESTwinSameSeed(t *testing.T) {
	opts := Options{
		URL:         "http://127.0.0.1:1/fn/f", // twin never dials
		Arrival:     ArrivalPoisson,
		Rate:        50000,
		MaxRequests: 20000,
		Workers:     4,
		Seed:        7,
	}
	twin1, err := RunDES(opts, testConfig(), testFunction())
	if err != nil {
		t.Fatal(err)
	}
	twin2, err := RunDES(opts, testConfig(), testFunction())
	if err != nil {
		t.Fatal(err)
	}
	if twin1.Requests != 20000 {
		t.Fatalf("twin completed %d of 20000", twin1.Requests)
	}
	if twin1.Requests != twin2.Requests || twin1.Colds != twin2.Colds ||
		twin1.Latency.Quantile(0.99) != twin2.Latency.Quantile(0.99) {
		t.Fatalf("twin runs differ: %+v vs %+v", twin1, twin2)
	}
	if twin1.Latency.Count() == 0 || twin1.VirtualElapsed <= 0 {
		t.Fatalf("twin recorded nothing: %+v", twin1)
	}
}

// TestReportIncludesComparison pins the report contract from the issue: the
// run report carries intended-time quantiles alongside the same-seed DES
// comparison.
func TestReportIncludesComparison(t *testing.T) {
	_, url := startFaaS(t, 1000)
	opts := Options{
		URL:         url,
		Arrival:     ArrivalFixed,
		Rate:        2000,
		MaxRequests: 200,
		Workers:     2,
		Seed:        3,
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	twin, err := RunDES(opts, testConfig(), testFunction())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteReport(&buf, opts, res, twin, 1000)
	out := buf.String()
	for _, want := range []string{
		"latency (intended-time):",
		"open-loop (CO-safe)",
		"DES twin",
		"DES virtual",
		"p99",
		"timescale 1000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	var cdf bytes.Buffer
	if err := WriteCDF(&cdf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(cdf.String(), "series,latency_ns,cdf\n") ||
		!strings.Contains(cdf.String(), "intended,") || !strings.Contains(cdf.String(), "service,") {
		t.Errorf("CDF output malformed:\n%.200s", cdf.String())
	}
}

// TestCoordinatedOmission is the satellite regression: stall the server for
// 500ms mid-run. The open-loop recorder, measuring from intended send
// times, must see the stall at p99; the closed-loop control, measuring from
// actual sends, must not.
func TestCoordinatedOmission(t *testing.T) {
	run := func(closed bool) *Result {
		srv := newCannedServer(t, cannedBody(false, 1000))
		srv.stallAt = 100
		srv.stallFor = 500 * time.Millisecond
		res, err := Run(Options{
			URL:         srv.url(),
			Arrival:     ArrivalFixed,
			Rate:        400,
			MaxRequests: 600,
			Workers:     1, // sequential: the classic closed-loop shape
			Seed:        1,
			ClosedLoop:  closed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Requests != 600 || res.Errors != 0 {
			t.Fatalf("closed=%t: requests=%d errors=%d", closed, res.Requests, res.Errors)
		}
		return res
	}

	open := run(false)
	control := run(true)

	openP99 := open.Intended.Quantile(0.99)
	controlP99 := control.Intended.Quantile(0.99)
	if openP99 < 200*time.Millisecond {
		t.Errorf("open-loop p99 = %v, want >= 200ms: the stall was hidden", openP99)
	}
	if controlP99 > 100*time.Millisecond {
		t.Errorf("closed-loop control p99 = %v, want < 100ms: the control should hide the stall", controlP99)
	}
	if !control.ClosedLoop || open.ClosedLoop {
		t.Error("ClosedLoop flags not propagated")
	}
}

// TestRunEndpointDown checks the generator fails cleanly instead of
// spinning when nothing listens.
func TestRunEndpointDown(t *testing.T) {
	_, err := Run(Options{
		URL:         "http://127.0.0.1:1/fn/f",
		Arrival:     ArrivalFixed,
		Rate:        1000,
		MaxRequests: 100,
		Workers:     2,
		Timeout:     500 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("run against a dead endpoint succeeded")
	}
}
