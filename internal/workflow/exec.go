package workflow

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/trace"
)

// Config parameterizes an executor.
type Config struct {
	// Cloud is the simulated region; every DAG node's function must already
	// be deployed on it.
	Cloud *cloud.Cloud
	// DAG is the topology to execute; it is compiled (and so validated) by
	// New.
	DAG *DAG
	// Tracer, when set, records per-node span traces of sampled workflow
	// instances: the sampling decision is made once per workflow, so a
	// sampled instance's trace tree is never missing nodes. Retention is
	// bounded by the tracer's ring.
	Tracer *trace.Tracer
	// SampleRate is the per-workflow sampling probability in [0, 1].
	SampleRate float64
	// Rng drives workflow sampling and must be a dedicated stream (e.g.
	// "<provider>/workflow") so enabling tracing never shifts the
	// simulation's other draws. Required when Tracer is set.
	Rng *rand.Rand
}

// BarrierMetrics counts one join barrier's in-edge deliveries. The
// conservation law — checked on every workflow completion — is
// Started == Completed + Dropped + Failed, and all four plus Skipped sum to
// the node's in-degree once the workflow resolves.
type BarrierMetrics struct {
	// Started counts in-branch invocations launched.
	Started uint64
	// Completed counts successful deliveries that arrived before (or fired)
	// the barrier.
	Completed uint64
	// Dropped counts successful deliveries that arrived after the barrier
	// fired (stragglers under a first-K join).
	Dropped uint64
	// Failed counts in-branch invocations that launched and then failed.
	Failed uint64
	// Skipped counts in-branches that never launched (their own barrier
	// became impossible upstream).
	Skipped uint64
}

func (b *BarrierMetrics) add(o BarrierMetrics) {
	b.Started += o.Started
	b.Completed += o.Completed
	b.Dropped += o.Dropped
	b.Failed += o.Failed
	b.Skipped += o.Skipped
}

// Metrics aggregates executor counters across workflow instances.
type Metrics struct {
	// Workflows counts instances run; Completed those with every node
	// completed; Failed those with at least one failed or skipped node.
	Workflows uint64
	Completed uint64
	Failed    uint64
	// NodeFailures counts node invocations that errored.
	NodeFailures uint64
	// Barriers aggregates per-node join counters, aligned with DAG.Nodes.
	Barriers []BarrierMetrics
}

// Result is one workflow instance's outcome. The returned value is owned by
// the executor and reused by the next Run; callers consume it (or copy what
// they keep) before running again.
type Result struct {
	// ID is the instance's sequence number on this executor.
	ID uint64
	// Start is the instance's virtual launch time.
	Start des.Time
	// ClientLatency is the root invocation's client-observed round trip.
	ClientLatency time.Duration
	// Makespan spans launch to the last completed node's resolution (for a
	// workflow with async tails this can exceed ClientLatency).
	Makespan time.Duration
	// Colds counts nodes served by cold instances.
	Colds int
	// EdgeTransfers holds each observed edge's transfer time — consumer
	// receive minus producer send, the paper's §IV metric generalized per
	// edge — aligned with DAG.Edges; -1 marks edges whose delivery was
	// dropped, failed, or skipped.
	EdgeTransfers []time.Duration
	// Critical and CriticalEdges are the barrier-firing path from the root
	// to the last-completing node (node and edge indices); empty when the
	// workflow failed.
	Critical      []int
	CriticalEdges []int
}

// Node invocation states.
const (
	nsPending uint8 = iota
	nsRunning
	nsCompleted
	nsFailed
	nsSkipped
)

type nodeState struct {
	status  uint8
	fired   bool
	firedBy int // edge index that fired this node's barrier (-1 at the root)
	arrived int // pre-fire successful deliveries
	badIn   int // failed + skipped deliveries while unfired
	bar     BarrierMetrics
	start   des.Time
	end     des.Time
	cold    bool
}

type edgeState struct {
	sendAt   des.Time
	counted  bool // successful delivery before (or firing) the barrier
	observed bool
	transfer time.Duration
}

// nodeCont adapts one node's out-edges to the cloud's continuation seam: it
// runs inside the node's serving instance, exactly where a static chain's
// downstream block runs.
type nodeCont struct {
	inst *wfInstance
	node int
}

func (nc *nodeCont) Run(p *des.Proc, env *cloud.DownstreamEnv) error {
	nc.inst.runEdges(p, env, nc.node)
	// Branch failures are classified at join barriers, never propagated into
	// the producer's own outcome — a producer that finished its handler has
	// completed regardless of its consumers.
	return nil
}

// wfInstance is one in-flight workflow's state, pooled on the executor so
// sustained churn reuses memory.
type wfInstance struct {
	e        *Exec
	id       uint64
	start    des.Time
	sampled  bool
	failed   bool
	resolved int
	nodes    []nodeState
	edges    []edgeState
	conts    []nodeCont
	done     *des.Signal
	next     *wfInstance
}

// Exec executes one DAG's instances against a cloud. It is bound to the
// engine's single-threaded simulation context, like the cloud itself.
type Exec struct {
	c      *cloud.Cloud
	d      *DAG
	cp     *compiled
	tracer *trace.Tracer
	rate   float64
	rng    *rand.Rand

	seq     uint64
	spanSeq uint64
	free    *wfInstance
	metrics Metrics
	res     Result
}

// New compiles the DAG and builds an executor. Every node's function must
// be deployed on the cloud.
func New(cfg Config) (*Exec, error) {
	if cfg.Cloud == nil {
		return nil, fmt.Errorf("workflow: cloud is required")
	}
	if cfg.DAG == nil {
		return nil, fmt.Errorf("workflow: dag is required")
	}
	cp, err := compile(cfg.DAG)
	if err != nil {
		return nil, err
	}
	for _, n := range cfg.DAG.Nodes {
		if !cfg.Cloud.HasFunction(n.Name) {
			return nil, fmt.Errorf("workflow %s: node %q is not deployed", cfg.DAG.Name, n.Name)
		}
	}
	if math.IsNaN(cfg.SampleRate) || cfg.SampleRate < 0 || cfg.SampleRate > 1 {
		return nil, fmt.Errorf("workflow %s: sample rate %v out of [0,1]", cfg.DAG.Name, cfg.SampleRate)
	}
	if cfg.Tracer != nil && cfg.SampleRate > 0 && cfg.Rng == nil {
		return nil, fmt.Errorf("workflow %s: tracing needs a sampling rng", cfg.DAG.Name)
	}
	e := &Exec{
		c:      cfg.Cloud,
		d:      cfg.DAG,
		cp:     cp,
		tracer: cfg.Tracer,
		rate:   cfg.SampleRate,
		rng:    cfg.Rng,
	}
	e.metrics.Barriers = make([]BarrierMetrics, len(cfg.DAG.Nodes))
	e.res.EdgeTransfers = make([]time.Duration, len(cfg.DAG.Edges))
	return e, nil
}

// DAG returns the executed topology.
func (e *Exec) DAG() *DAG { return e.d }

// Metrics returns a snapshot of the executor's aggregated counters.
func (e *Exec) Metrics() Metrics {
	m := e.metrics
	m.Barriers = append([]BarrierMetrics(nil), e.metrics.Barriers...)
	return m
}

// PathLabel renders a node-index path as "a -> b -> c".
func (e *Exec) PathLabel(nodes []int) string {
	var sb strings.Builder
	for i, n := range nodes {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		sb.WriteString(e.d.Nodes[n].Name)
	}
	return sb.String()
}

// Run executes one workflow instance on the calling proc: the root is
// invoked as an external request (client propagation, front-end admission,
// egress — so the cloud's latency recorder observes it like any client
// request), sync edges nest inside their producers' serving windows, async
// branches run on their own procs, and Run returns once every node has
// resolved — completed, failed, or skipped. The returned Result is reused
// by the next Run.
func (e *Exec) Run(p *des.Proc) (*Result, error) {
	e.seq++
	inst := e.getInstance()
	inst.id = e.seq
	inst.start = p.Now()
	inst.done = des.NewSignal(e.c.Engine())
	if e.tracer != nil && e.rate > 0 && e.rng.Float64() < e.rate {
		inst.sampled = true
	}
	e.metrics.Workflows++

	root := e.cp.root
	inst.nodes[root].fired = true
	inst.startNode(root, -1, p.Now())
	req := &cloud.Request{
		Fn:       e.d.Nodes[root].Name,
		ExecTime: e.d.Nodes[root].ExecTime,
		Cont:     inst.contFor(root),
		Span:     inst.beginSpan(root, ""),
	}
	resp, err := e.c.Invoke(p, req)
	clientLat := p.Now() - inst.start
	inst.settle(root, resp, err, p.Now())
	if inst.resolved < len(inst.nodes) {
		p.Wait(inst.done)
	}
	return e.finish(inst, clientLat)
}

func (e *Exec) getInstance() *wfInstance {
	inst := e.free
	if inst == nil {
		inst = &wfInstance{
			e:     e,
			nodes: make([]nodeState, len(e.d.Nodes)),
			edges: make([]edgeState, len(e.d.Edges)),
			conts: make([]nodeCont, len(e.d.Nodes)),
		}
		for i := range inst.conts {
			inst.conts[i] = nodeCont{inst: inst, node: i}
		}
		return inst
	}
	e.free = inst.next
	inst.next = nil
	for i := range inst.nodes {
		inst.nodes[i] = nodeState{}
	}
	for i := range inst.edges {
		inst.edges[i] = edgeState{}
	}
	inst.sampled, inst.failed, inst.resolved = false, false, 0
	return inst
}

func (e *Exec) putInstance(inst *wfInstance) {
	inst.done = nil
	inst.next = e.free
	e.free = inst
}

func (inst *wfInstance) contFor(node int) cloud.Downstream {
	if len(inst.e.cp.out[node]) == 0 {
		return nil
	}
	return &inst.conts[node]
}

// beginSpan starts a node invocation's trace for a sampled instance, tagged
// with the workflow id and the firing parent, at the current instant (the
// span must begin exactly when the invocation enters the cloud, or the
// tiling invariant breaks).
func (inst *wfInstance) beginSpan(node int, parent string) *trace.Req {
	if !inst.sampled {
		return nil
	}
	e := inst.e
	e.spanSeq++
	r := e.tracer.BeginAlways(e.spanSeq, e.d.Nodes[node].Name, e.c.Engine().Now())
	r.SetNode(inst.id, e.d.Nodes[node].Name, parent)
	return r
}

// takesEdge reports whether this instance's conditional-branch selection at
// node includes the out-edge at position pos. Non-branch nodes (Select 0)
// take everything; branch nodes take Select consecutive out-edges starting
// at a rotation decided by the instance id, so successive instances
// exercise every branch deterministically.
func (inst *wfInstance) takesEdge(node, pos int) bool {
	sel := inst.e.d.Nodes[node].Select
	nOut := len(inst.e.cp.out[node])
	if sel <= 0 || sel >= nOut {
		return true
	}
	start := int(inst.id % uint64(nOut))
	return (pos-start+nOut)%nOut < sel
}

// startNode marks a node launched and counts the launch at each of its
// taken consumers' barriers (the Started side of the conservation law —
// untaken conditional branches will resolve as skipped, not failed).
func (inst *wfInstance) startNode(node, firedBy int, at des.Time) {
	ns := &inst.nodes[node]
	ns.status = nsRunning
	ns.firedBy = firedBy
	ns.start = at
	cp := inst.e.cp
	for pos, ei := range cp.out[node] {
		if inst.takesEdge(node, pos) {
			inst.nodes[cp.idx[inst.e.d.Edges[ei].To]].bar.Started++
		}
	}
}

// runEdges is the continuation body for node x: it timestamps the producer
// send, delivers one success per out-edge to the consumer's barrier, and
// launches every consumer whose barrier fires here — sync consumers as one
// gathered scatter inside x's serving window, async consumers on their own
// procs. Non-firing blobstore edges still pay the producer-side put.
func (inst *wfInstance) runEdges(p *des.Proc, env *cloud.DownstreamEnv, x int) {
	e := inst.e
	env.MarkSend()
	sendAt := env.Now()
	var syncReqs []*cloud.Request
	var syncTargets []int
	for pos, ei := range e.cp.out[x] {
		edge := &e.d.Edges[ei]
		t := e.cp.idx[edge.To]
		if !inst.takesEdge(x, pos) {
			// Conditional branch not taken: the consumer's barrier learns
			// immediately so it resolves (fires short, or skips) without
			// waiting on a delivery that will never come.
			inst.deliverBad(t, false)
			continue
		}
		es := &inst.edges[ei]
		es.sendAt = sendAt
		if !inst.deliverOK(t, ei) {
			if edge.Transfer == TransferBlobstore {
				env.Store(edge.PayloadBytes)
			}
			continue
		}
		inst.startNode(t, ei, env.Now())
		req, err := env.Prepare(cloud.DownstreamCall{
			Fn:           edge.To,
			Transfer:     edge.Transfer.kind(),
			PayloadBytes: edge.PayloadBytes,
			ExecTime:     e.d.Nodes[t].ExecTime,
			Cont:         inst.contFor(t),
		})
		if err != nil {
			// The edge itself was rejected (inline payload over the provider
			// limit): the consumer fails without serving.
			inst.settle(t, nil, err, env.Now())
			continue
		}
		if edge.Mode == ModeAsync {
			t := t
			req.Span = inst.beginSpan(t, e.d.Nodes[x].Name)
			env.Go(req, func(resp *cloud.Response, err error, at des.Time) {
				inst.settle(t, resp, err, at)
			})
			continue
		}
		syncReqs = append(syncReqs, req)
		syncTargets = append(syncTargets, t)
	}
	if len(syncReqs) == 0 {
		return
	}
	for i, req := range syncReqs {
		req.Span = inst.beginSpan(syncTargets[i], e.d.Nodes[x].Name)
	}
	// The gather's first-error return is deliberately ignored: each branch
	// was already classified at its consumer's barrier by the callback.
	env.Gather(syncReqs, func(i int, resp *cloud.Response, err error, at des.Time) {
		inst.settle(syncTargets[i], resp, err, at)
	})
}

// deliverOK delivers one in-branch success to a node's barrier, returning
// true when this delivery fires it.
func (inst *wfInstance) deliverOK(node, ei int) bool {
	ns := &inst.nodes[node]
	if ns.fired {
		ns.bar.Dropped++
		return false
	}
	ns.bar.Completed++
	inst.edges[ei].counted = true
	ns.arrived++
	if ns.arrived >= inst.e.cp.need[node] {
		ns.fired = true
		return true
	}
	return false
}

// deliverBad delivers one in-branch failure (started=true) or skip
// (started=false) to a node's barrier. When enough in-branches are gone
// that the barrier can never fire, the node is skipped and the failure
// propagates onward.
func (inst *wfInstance) deliverBad(node int, started bool) {
	ns := &inst.nodes[node]
	if started {
		ns.bar.Failed++
	} else {
		ns.bar.Skipped++
	}
	if ns.fired {
		return
	}
	ns.badIn++
	cp := inst.e.cp
	if ns.status == nsPending && cp.indeg[node]-ns.badIn < cp.need[node] {
		inst.skipNode(node)
	}
}

// skipNode resolves a node whose barrier became impossible; its consumers
// learn immediately, so no barrier downstream ever deadlocks waiting for a
// branch that cannot arrive.
func (inst *wfInstance) skipNode(node int) {
	ns := &inst.nodes[node]
	ns.status = nsSkipped
	inst.failed = true
	inst.resolveOne()
	e := inst.e
	for _, ei := range e.cp.out[node] {
		inst.deliverBad(e.cp.idx[e.d.Edges[ei].To], false)
	}
}

// settle resolves a launched node at its completion instant: on success it
// records cold/transfer observations (its own out-deliveries already ran
// inside its continuation); on failure it delivers the failure to every
// consumer's barrier — an errored invocation never reached its
// continuation, so no delivery is ever double-counted.
func (inst *wfInstance) settle(node int, resp *cloud.Response, err error, at des.Time) {
	ns := &inst.nodes[node]
	ns.end = at
	e := inst.e
	if err != nil {
		ns.status = nsFailed
		inst.failed = true
		e.metrics.NodeFailures++
		for pos, ei := range e.cp.out[node] {
			// Taken edges deliver a started-then-failed branch; untaken
			// conditional edges were never started and resolve as skipped.
			inst.deliverBad(e.cp.idx[e.d.Edges[ei].To], inst.takesEdge(node, pos))
		}
		inst.resolveOne()
		return
	}
	ns.status = nsCompleted
	if resp.Cold {
		ns.cold = true
	}
	if recv, ok := resp.Timestamps[e.d.Nodes[node].Name+".recv"]; ok {
		for _, ei := range e.cp.inUp[node] {
			es := &inst.edges[ei]
			if es.counted && recv >= es.sendAt {
				es.observed = true
				es.transfer = recv - es.sendAt
			}
		}
	}
	inst.resolveOne()
}

func (inst *wfInstance) resolveOne() {
	inst.resolved++
	if inst.resolved == len(inst.nodes) {
		inst.done.Fire()
	}
}

// finish folds the resolved instance into the executor's metrics, checks
// barrier conservation, extracts the critical path, and recycles the
// instance state.
func (e *Exec) finish(inst *wfInstance, clientLat time.Duration) (*Result, error) {
	res := &e.res
	res.ID = inst.id
	res.Start = inst.start
	res.ClientLatency = clientLat
	res.Colds = 0
	res.Critical = res.Critical[:0]
	res.CriticalEdges = res.CriticalEdges[:0]
	for i := range inst.edges {
		es := &inst.edges[i]
		if es.observed {
			res.EdgeTransfers[i] = es.transfer
		} else {
			res.EdgeTransfers[i] = -1
		}
	}
	var consErr error
	final := -1
	var finalEnd, maxEnd des.Time
	badNodes := 0
	for i := range inst.nodes {
		ns := &inst.nodes[i]
		e.metrics.Barriers[i].add(ns.bar)
		if ns.cold {
			res.Colds++
		}
		switch ns.status {
		case nsCompleted:
			if ns.end > maxEnd {
				maxEnd = ns.end
			}
			// The critical path ends at the last-resolving completed leaf: a
			// sync producer's own resolution instant (its response returning
			// to its invoker) always covers its consumers', so interior nodes
			// would degenerate the walk to the root.
			leaf := len(e.cp.out[i]) == 0
			finalLeaf := final >= 0 && len(e.cp.out[final]) == 0
			if final < 0 || (leaf && !finalLeaf) || (leaf == finalLeaf && ns.end > finalEnd) {
				final, finalEnd = i, ns.end
			}
		case nsFailed, nsSkipped:
			badNodes++
		}
		if consErr == nil {
			if ns.bar.Started != ns.bar.Completed+ns.bar.Dropped+ns.bar.Failed {
				consErr = fmt.Errorf("workflow %s instance %d: barrier %q violates conservation: started=%d completed=%d dropped=%d failed=%d",
					e.d.Name, inst.id, e.d.Nodes[i].Name, ns.bar.Started, ns.bar.Completed, ns.bar.Dropped, ns.bar.Failed)
			} else if got := ns.bar.Completed + ns.bar.Dropped + ns.bar.Failed + ns.bar.Skipped; got != uint64(e.cp.indeg[i]) {
				consErr = fmt.Errorf("workflow %s instance %d: barrier %q resolved %d of %d in-edges",
					e.d.Name, inst.id, e.d.Nodes[i].Name, got, e.cp.indeg[i])
			}
		}
	}
	if final >= 0 {
		res.Makespan = maxEnd - inst.start
	} else {
		res.Makespan = 0
	}
	failed := inst.failed
	if !failed && final >= 0 {
		for cur := final; ; {
			res.Critical = append(res.Critical, cur)
			ei := inst.nodes[cur].firedBy
			if ei < 0 {
				break
			}
			res.CriticalEdges = append(res.CriticalEdges, ei)
			cur = e.cp.idx[e.d.Edges[ei].From]
		}
		reverseInts(res.Critical)
		reverseInts(res.CriticalEdges)
	}
	id := inst.id
	if failed {
		e.metrics.Failed++
	} else {
		e.metrics.Completed++
	}
	e.putInstance(inst)
	if consErr != nil {
		return res, consErr
	}
	if failed {
		return res, fmt.Errorf("workflow %s instance %d: %d of %d nodes failed or skipped",
			e.d.Name, id, badNodes, len(e.d.Nodes))
	}
	return res, nil
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// kind maps the workflow-level transfer mode to the cloud's.
func (t Transfer) kind() cloud.TransferKind {
	if t == TransferBlobstore {
		return cloud.TransferStorage
	}
	return cloud.TransferInline
}
