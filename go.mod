module github.com/stellar-repro/stellar

go 1.22
