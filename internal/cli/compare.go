package cli

import (
	"flag"
	"fmt"
	"io"
	"math/rand"

	"github.com/stellar-repro/stellar/internal/results"
)

// cmdCompare performs an A/B analysis of two saved runs: bootstrap
// confidence intervals per percentile plus a Mann-Whitney U test of the
// whole distributions — the statistically sound way to claim "the tail
// moved" between two measurement campaigns.
func cmdCompare(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stdout)
	confidence := fs.Float64("confidence", 0.95, "CI coverage")
	resamples := fs.Int("resamples", 500, "bootstrap resamples")
	seed := fs.Int64("seed", 1, "bootstrap seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("compare: need exactly two run files (have %d)", fs.NArg())
	}
	a, err := results.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := results.Load(fs.Arg(1))
	if err != nil {
		return err
	}
	// Bootstrap resampling and rank tests need raw samples; sketch-only
	// records (from `stellar scale`) summarize too far for either.
	for i, rec := range []*results.RunRecord{a, b} {
		if len(rec.LatenciesNS) == 0 {
			return fmt.Errorf("compare: %s is a sketch-only record; comparisons need raw samples (rerun without sketch summarization, e.g. `stellar bench -save`)", fs.Arg(i))
		}
	}
	cmp := results.Compare(a, b, *confidence, *resamples, rand.New(rand.NewSource(*seed)))
	cmp.Write(stdout)
	return nil
}
