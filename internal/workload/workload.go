// Package workload generates realistic serverless invocation traffic for
// the simulator, modeled on the Azure Functions production trace (Shahrad
// et al., ATC'20) that the paper leans on throughout: most functions are
// invoked rarely ("once per hour or less", §III), executions are short
// (§VI-C1), and arrivals are bursty (§III cites FaaSNet). The package turns
// a population spec into an invocation trace and the trace into a STeLLAR
// load plan, enabling studies beyond fixed-IAT microbenchmarks — e.g., the
// keep-alive policy exploration in examples/keepalive.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/stellar-repro/stellar/internal/core"
)

// RateClass is one invocation-frequency class of the function population.
type RateClass struct {
	// Name labels the class ("rare", "hot").
	Name string
	// Share is the fraction of functions in this class.
	Share float64
	// MeanIAT is the class's mean invocation inter-arrival time; arrivals
	// are Poisson (exponential IATs).
	MeanIAT time.Duration
	// ExecTime is the class's busy-spin duration per invocation.
	ExecTime time.Duration
}

// Diurnal modulates invocation rates over time, approximating the
// day/night pattern visible in the production trace: the arrival rate
// swings sinusoidally between MinFactor and 1 over each Period.
type Diurnal struct {
	// Period is one full day/night cycle.
	Period time.Duration
	// MinFactor is the trough rate relative to the peak (0 < f <= 1).
	MinFactor float64
}

// Spec describes a function population and observation horizon.
type Spec struct {
	// Functions is the population size.
	Functions int
	// Horizon is the trace duration.
	Horizon time.Duration
	// Classes partitions the population; shares should sum to ~1.
	Classes []RateClass
	// Diurnal optionally modulates all rates over time (nil = constant).
	Diurnal *Diurnal
}

// DefaultSpec approximates the Azure trace's shape: nearly half the
// functions see at most an invocation per hour, a long tail is hot.
func DefaultSpec() Spec {
	return Spec{
		Functions: 60,
		Horizon:   2 * time.Hour,
		Classes: []RateClass{
			{Name: "rare", Share: 0.45, MeanIAT: 90 * time.Minute, ExecTime: 200 * time.Millisecond},
			{Name: "periodic", Share: 0.30, MeanIAT: 10 * time.Minute, ExecTime: 500 * time.Millisecond},
			{Name: "frequent", Share: 0.20, MeanIAT: 30 * time.Second, ExecTime: 300 * time.Millisecond},
			{Name: "hot", Share: 0.05, MeanIAT: 2 * time.Second, ExecTime: 100 * time.Millisecond},
		},
	}
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Functions < 1 {
		return fmt.Errorf("workload: need at least one function")
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("workload: need a positive horizon")
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("workload: need at least one rate class")
	}
	total := 0.0
	for _, c := range s.Classes {
		if c.Share <= 0 || c.MeanIAT <= 0 {
			return fmt.Errorf("workload: class %q needs positive share and IAT", c.Name)
		}
		total += c.Share
	}
	if s.Diurnal != nil {
		if s.Diurnal.Period <= 0 || s.Diurnal.MinFactor <= 0 || s.Diurnal.MinFactor > 1 {
			return fmt.Errorf("workload: diurnal needs a positive period and 0 < min factor <= 1")
		}
	}
	if total < 0.99 || total > 1.01 {
		return fmt.Errorf("workload: class shares sum to %.2f, want 1", total)
	}
	return nil
}

// Invocation is one trace event.
type Invocation struct {
	// At is the arrival offset from trace start.
	At time.Duration
	// Function is the population index of the invoked function.
	Function int
	// Class is the function's rate class name.
	Class string
	// ExecTime is the invocation's busy-spin duration.
	ExecTime time.Duration
}

// Trace is a generated invocation trace.
type Trace struct {
	Spec        Spec
	Invocations []Invocation
	// ClassOf maps function index to class name.
	ClassOf []string
}

// Generate synthesizes a trace: functions are assigned classes by share,
// then each function emits Poisson arrivals at its class rate over the
// horizon. Events are returned in time order.
func Generate(spec Spec, rng *rand.Rand) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	tr := &Trace{Spec: spec, ClassOf: make([]string, spec.Functions)}
	for i := 0; i < spec.Functions; i++ {
		class := pickClass(spec.Classes, rng)
		tr.ClassOf[i] = class.Name
		// Poisson process at the peak rate (exponential gaps, random phase
		// start), thinned by the diurnal factor so the accepted arrivals
		// form an inhomogeneous Poisson process.
		at := time.Duration(rng.ExpFloat64() * float64(class.MeanIAT))
		for at < spec.Horizon {
			if rng.Float64() < spec.rateFactor(at) {
				tr.Invocations = append(tr.Invocations, Invocation{
					At:       at,
					Function: i,
					Class:    class.Name,
					ExecTime: class.ExecTime,
				})
			}
			at += time.Duration(rng.ExpFloat64() * float64(class.MeanIAT))
		}
	}
	sort.Slice(tr.Invocations, func(a, b int) bool {
		if tr.Invocations[a].At != tr.Invocations[b].At {
			return tr.Invocations[a].At < tr.Invocations[b].At
		}
		return tr.Invocations[a].Function < tr.Invocations[b].Function
	})
	if len(tr.Invocations) == 0 {
		return nil, fmt.Errorf("workload: horizon %v produced no invocations", spec.Horizon)
	}
	return tr, nil
}

func pickClass(classes []RateClass, rng *rand.Rand) RateClass {
	x := rng.Float64()
	for _, c := range classes {
		if x < c.Share {
			return c
		}
		x -= c.Share
	}
	return classes[len(classes)-1]
}

// Plan converts the trace into a STeLLAR load plan over the given
// endpoints: function i maps to endpoints[i]. The endpoint list must cover
// the population.
func (tr *Trace) Plan(eps []core.Endpoint) ([]core.PlannedRequest, error) {
	if len(eps) < tr.Spec.Functions {
		return nil, fmt.Errorf("workload: %d endpoints for %d functions", len(eps), tr.Spec.Functions)
	}
	plan := make([]core.PlannedRequest, 0, len(tr.Invocations))
	for _, inv := range tr.Invocations {
		plan = append(plan, core.PlannedRequest{
			At:       inv.At,
			Endpoint: eps[inv.Function],
			ExecTime: inv.ExecTime,
		})
	}
	return plan, nil
}

// ClassCount reports how many functions landed in each class.
func (tr *Trace) ClassCount() map[string]int {
	out := make(map[string]int)
	for _, class := range tr.ClassOf {
		out[class]++
	}
	return out
}

// InvocationsPerClass reports trace events per class.
func (tr *Trace) InvocationsPerClass() map[string]int {
	out := make(map[string]int)
	for _, inv := range tr.Invocations {
		out[inv.Class]++
	}
	return out
}

// rateFactor returns the instantaneous rate multiplier in (0, 1].
func (s Spec) rateFactor(at time.Duration) float64 {
	if s.Diurnal == nil {
		return 1
	}
	phase := 2 * math.Pi * float64(at%s.Diurnal.Period) / float64(s.Diurnal.Period)
	// Peak at phase pi/2, trough at 3pi/2.
	level := 0.5 + 0.5*math.Sin(phase)
	return s.Diurnal.MinFactor + (1-s.Diurnal.MinFactor)*level
}
