package faults

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestInactiveModesDrawNothing: a mode with probability zero must not
// consume randomness, or enabling one mode would shift every other mode's
// decisions and break cross-rate comparability.
func TestInactiveModesDrawNothing(t *testing.T) {
	inj := NewInjector(Config{}, testRNG(42), 8)
	for i := 0; i < 1000; i++ {
		if inj.Drop() || inj.SpawnFail() {
			t.Fatal("zero config injected a fault")
		}
		if _, ok := inj.StorageFault(); ok {
			t.Fatal("zero config injected a storage fault")
		}
		if !inj.Admit(time.Duration(i) * time.Millisecond) {
			t.Fatal("zero config throttled")
		}
	}
	if got, want := inj.rng.Int63(), testRNG(42).Int63(); got != want {
		t.Fatalf("inactive injector consumed randomness: next draw %d, want %d", got, want)
	}
}

func TestDecisionsDeterministic(t *testing.T) {
	cfg := Config{DropProb: 0.3, SpawnFailProb: 0.2, StorageTimeoutProb: 0.1, StorageTimeout: time.Second}
	a := NewInjector(cfg, testRNG(7), 1)
	b := NewInjector(cfg, testRNG(7), 1)
	for i := 0; i < 5000; i++ {
		if a.Drop() != b.Drop() || a.SpawnFail() != b.SpawnFail() {
			t.Fatalf("decision %d diverged for identical seeds", i)
		}
		da, oa := a.StorageFault()
		db, ob := b.StorageFault()
		if da != db || oa != ob {
			t.Fatalf("storage decision %d diverged", i)
		}
	}
}

func TestDropFrequencyTracksProbability(t *testing.T) {
	inj := NewInjector(Config{DropProb: 0.25}, testRNG(1), 1)
	const n = 20000
	drops := 0
	for i := 0; i < n; i++ {
		if inj.Drop() {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("drop frequency %.3f, want ~0.25", got)
	}
}

func TestAdmitFixedWindow(t *testing.T) {
	inj := NewInjector(Config{ThrottleLimit: 2, ThrottleWindow: time.Second}, testRNG(1), 1)
	if !inj.Admit(0) || !inj.Admit(100*time.Millisecond) {
		t.Fatal("budget requests rejected")
	}
	if inj.Admit(900 * time.Millisecond) {
		t.Fatal("over-budget request admitted in window 0")
	}
	// A new window resets the counter.
	if !inj.Admit(time.Second) || !inj.Admit(1500*time.Millisecond) {
		t.Fatal("next-window requests rejected")
	}
	if inj.Admit(1999 * time.Millisecond) {
		t.Fatal("over-budget request admitted in window 1")
	}
}

func TestAdmitScalesWithFleet(t *testing.T) {
	inj := NewInjector(Config{ThrottleLimit: 1, ThrottleWindow: time.Second}, testRNG(1), 4)
	admitted := 0
	for i := 0; i < 10; i++ {
		if inj.Admit(0) {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("admitted %d with limit 1 x 4 workers, want 4", admitted)
	}
}

func TestEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Error("nil config reported enabled")
	}
	if (&Config{}).Enabled() {
		t.Error("zero config reported enabled")
	}
	for _, cfg := range []Config{
		{DropProb: 0.1},
		{SpawnFailProb: 0.1},
		{StorageTimeoutProb: 0.1, StorageTimeout: time.Second},
		{ThrottleLimit: 1, ThrottleWindow: time.Second},
	} {
		if !cfg.Enabled() {
			t.Errorf("%+v reported disabled", cfg)
		}
	}
}

func TestScaled(t *testing.T) {
	base := Config{DropProb: 1, SpawnFailProb: 0.5, StorageTimeoutProb: 0.4,
		StorageTimeout: time.Second, ThrottleLimit: 3, ThrottleWindow: time.Second}

	zero := base.Scaled(0)
	if zero.DropProb != 0 || zero.SpawnFailProb != 0 || zero.StorageTimeoutProb != 0 {
		t.Errorf("rate 0 left probabilities active: %+v", zero)
	}
	if zero.ThrottleLimit != 3 {
		t.Error("scaling must not touch the structural throttle limit")
	}

	half := base.Scaled(0.5)
	if half.DropProb != 0.5 || half.SpawnFailProb != 0.25 || half.StorageTimeoutProb != 0.2 {
		t.Errorf("rate 0.5 scaled wrong: %+v", half)
	}

	// Over-unity rates clamp into each mode's valid range, spawn failures
	// strictly below 1 so cold starts cannot retry forever.
	over := Config{DropProb: 1, SpawnFailProb: 1}.Scaled(3)
	if over.DropProb != 1 {
		t.Errorf("DropProb clamped to %v, want 1", over.DropProb)
	}
	if over.SpawnFailProb >= 1 {
		t.Errorf("SpawnFailProb %v must stay below 1", over.SpawnFailProb)
	}
	if err := over.Validate(); err != nil {
		t.Errorf("clamped config must validate: %v", err)
	}
}
