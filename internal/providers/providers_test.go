package providers

import (
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{"aws", "azure", "google"}
	if len(names) < 3 {
		t.Fatalf("names = %v", names)
	}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("provider %q missing from %v", w, names)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("oracle"); err == nil {
		t.Fatal("expected error for unknown provider")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet should panic on unknown provider")
		}
	}()
	MustGet("oracle")
}

func TestProfilesValidateAndBoot(t *testing.T) {
	for _, name := range []string{"aws", "google", "azure"} {
		cfg := MustGet(name)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s profile invalid: %v", name, err)
		}
		eng := des.NewEngine()
		c, err := cloud.New(eng, cfg, dist.NewStreams(1))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			eng.Close()
			continue
		}
		if err := c.Deploy(cloud.FunctionSpec{
			Name: "probe", Runtime: cloud.RuntimePython, Method: cloud.DeployZIP,
		}); err != nil {
			t.Errorf("%s deploy: %v", name, err)
		}
		eng.Close()
	}
}

func TestProfilesMatchPaperMechanisms(t *testing.T) {
	aws := MustGet("aws")
	google := MustGet("google")
	azure := MustGet("azure")

	// Propagation RTTs from §V.
	if aws.PropagationRTT.Milliseconds() != 26 ||
		google.PropagationRTT.Milliseconds() != 14 ||
		azure.PropagationRTT.Milliseconds() != 32 {
		t.Error("propagation RTTs diverge from the paper's ping measurements")
	}
	// Scheduling policies (§VI-D).
	if aws.Policy.Kind != cloud.PolicyNoQueue {
		t.Error("AWS must not queue at instances")
	}
	if azure.Policy.Kind != cloud.PolicyRateLimited {
		t.Error("Azure must rate-limit scale-out")
	}
	// AWS keeps idle instances exactly 10 minutes (§V footnote 5).
	if aws.KeepAlive.Fixed.Minutes() != 10 {
		t.Error("AWS keep-alive should be fixed at 10 minutes")
	}
	if google.KeepAlive.Fixed != 0 || google.KeepAlive.Dist == nil {
		t.Error("Google keep-alive should be stochastic")
	}
	// AWS warm generic pool equalizes ZIP runtimes (Obs. 3).
	if !aws.WarmGenericPool || google.WarmGenericPool {
		t.Error("warm generic pool: AWS yes, Google no")
	}
	// Image-store caching: AWS always-cache, Google load-adaptive.
	if !aws.ImageStore.Cache.Enabled || aws.ImageStore.Cache.ActivationCount != 1 {
		t.Error("AWS image store should cache after the first fetch")
	}
	if !google.ImageStore.Cache.Enabled || google.ImageStore.Cache.ActivationCount < 100 {
		t.Error("Google image store cache should be load-adaptive")
	}
	if azure.ImageStore.Cache.Enabled {
		t.Error("Azure image store has no caching mechanism in the model")
	}
	// Inline limits from §VI-C1.
	if aws.InlineLimitBytes != 6<<20 || google.InlineLimitBytes != 10<<20 {
		t.Error("inline size limits diverge from the paper (6MB AWS, 10MB Google)")
	}
	// Azure has the lowest image-fetch bandwidth (strongest Fig. 4 slope).
	if azure.ImageStore.GetBandwidthBps >= aws.ImageStore.GetBandwidthBps ||
		azure.ImageStore.GetBandwidthBps >= google.ImageStore.GetBandwidthBps {
		t.Error("Azure should have the slowest image fetches")
	}
	// Python container chunk loads on AWS (§VI-B3).
	if aws.ContainerChunkReads[cloud.RuntimePython] == 0 {
		t.Error("AWS Python containers should perform on-demand chunk reads")
	}
	if aws.ContainerChunkReads[cloud.RuntimeGo] != 0 {
		t.Error("AWS Go containers should not chunk-read (static binary)")
	}
}

func TestRegisterCustomProfile(t *testing.T) {
	Register("custom-test", func() cloud.Config {
		cfg := AWS()
		cfg.Name = "custom-test"
		return cfg
	})
	cfg, err := Get("custom-test")
	if err != nil || cfg.Name != "custom-test" {
		t.Fatalf("custom profile: %v %v", cfg.Name, err)
	}
	delete(registry, "custom-test")
}

func TestBaseZipBytes(t *testing.T) {
	m := BaseZipBytes()
	if m[cloud.RuntimePython] <= m[cloud.RuntimeGo] {
		t.Error("python ZIPs should be larger than Go ZIPs")
	}
}

func TestVHiveProfile(t *testing.T) {
	cfg := MustGet("vhive")
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// The research stack lacks the production optimizations.
	if cfg.WarmGenericPool {
		t.Error("vhive should not have a warm generic pool")
	}
	if cfg.ImageStore.Cache.Enabled {
		t.Error("vhive's local registry needs no adaptive cache")
	}
	if cfg.Policy.Kind != cloud.PolicyBoundedQueue {
		t.Error("vhive should use Knative-style bounded queueing")
	}
	// Runtime choice matters on the academic stack (contrast to Obs. 3):
	// python init is much slower than Go.
	eng := des.NewEngine()
	defer eng.Close()
	c, err := cloud.New(eng, cfg, dist.NewStreams(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(cloud.FunctionSpec{Name: "py", Runtime: cloud.RuntimePython, Method: cloud.DeployZIP}); err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(cloud.FunctionSpec{Name: "go", Runtime: cloud.RuntimeGo, Method: cloud.DeployZIP}); err != nil {
		t.Fatal(err)
	}
	var pyLat, goLat time.Duration
	eng.Spawn("t", func(p *des.Proc) {
		t0 := p.Now()
		if _, err := c.Invoke(p, &cloud.Request{Fn: "py"}); err != nil {
			t.Error(err)
		}
		pyLat = p.Now() - t0
		t0 = p.Now()
		if _, err := c.Invoke(p, &cloud.Request{Fn: "go"}); err != nil {
			t.Error(err)
		}
		goLat = p.Now() - t0
	})
	eng.Run(time.Minute)
	if pyLat < goLat+100*time.Millisecond {
		t.Errorf("vhive python cold %v should clearly exceed go %v (no warm pool)", pyLat, goLat)
	}
}
