package faults

import (
	"errors"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
)

func TestBackoffExponentialCapped(t *testing.T) {
	p := Policy{BackoffBase: 100 * time.Millisecond, BackoffCap: time.Second}
	want := []time.Duration{
		100 * time.Millisecond, // retry 0
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // 1600ms capped
		time.Second,
	}
	for retry, w := range want {
		if got := p.Backoff(retry, nil); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", retry, got, w)
		}
	}
}

func TestBackoffZeroBase(t *testing.T) {
	p := Policy{MaxRetries: 3}
	if got := p.Backoff(2, testRNG(1)); got != 0 {
		t.Fatalf("zero base must mean no backoff, got %v", got)
	}
}

func TestBackoffOverflowClamped(t *testing.T) {
	p := Policy{BackoffBase: time.Hour, Jitter: true}
	got := p.Backoff(200, testRNG(1)) // 2^200 hours overflows int64 wildly
	if got <= 0 {
		t.Fatalf("overflowed backoff went non-positive: %v", got)
	}
}

// TestBackoffJitterRange: with jitter, retry k's sleep is uniform in
// [b, 2b) where b is the capped exponential value — never below the
// deterministic backoff, never double it or more.
func TestBackoffJitterRange(t *testing.T) {
	base := Policy{BackoffBase: 100 * time.Millisecond, BackoffCap: time.Second}
	jit := base
	jit.Jitter = true
	rng := testRNG(9)
	for retry := 0; retry < 8; retry++ {
		b := base.Backoff(retry, nil)
		for i := 0; i < 200; i++ {
			got := jit.Backoff(retry, rng)
			if got < b || got >= 2*b {
				t.Fatalf("retry %d: jittered backoff %v outside [%v, %v)", retry, got, b, 2*b)
			}
		}
	}
}

func TestBackoffScheduleDeterministic(t *testing.T) {
	p := Policy{BackoffBase: 50 * time.Millisecond, BackoffCap: time.Second, Jitter: true}
	a, b := testRNG(1234), testRNG(1234)
	for retry := 0; retry < 64; retry++ {
		if x, y := p.Backoff(retry, a), p.Backoff(retry, b); x != y {
			t.Fatalf("retry %d: equal seeds gave %v vs %v", retry, x, y)
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
		ok   bool
	}{
		{"zero", Policy{}, true},
		{"full", Policy{Timeout: 2 * time.Second, MaxRetries: 3,
			BackoffBase: 100 * time.Millisecond, BackoffCap: time.Second,
			Jitter: true, HedgeAfter: 500 * time.Millisecond}, true},
		{"negative timeout", Policy{Timeout: -1}, false},
		{"negative backoff", Policy{BackoffBase: -1}, false},
		{"negative cap", Policy{BackoffCap: -1}, false},
		{"negative hedge", Policy{HedgeAfter: -1}, false},
		{"negative retries", Policy{MaxRetries: -1}, false},
		{"excess retries", Policy{MaxRetries: 1001}, false},
		{"cap below base", Policy{BackoffBase: time.Second, BackoffCap: time.Millisecond}, false},
		{"hedge at timeout", Policy{Timeout: time.Second, HedgeAfter: time.Second}, false},
		{"hedge without timeout", Policy{HedgeAfter: time.Second}, true},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

// runDo executes pol.Do on a fresh engine and returns the result plus the
// virtual time consumed.
func runDo(t *testing.T, pol Policy, seed int64, attempt func(*des.Proc) error) (Result, time.Duration) {
	t.Helper()
	eng := des.NewEngine()
	var res Result
	eng.Spawn("client", func(p *des.Proc) {
		res = pol.Do(p, testRNG(seed), attempt)
	})
	eng.Run(0)
	if n := eng.PendingEvents(); n != 0 {
		t.Fatalf("%d events leaked after Do", n)
	}
	return res, eng.Now()
}

func TestDoNaiveSingleAttempt(t *testing.T) {
	calls := 0
	res, now := runDo(t, Policy{}, 1, func(p *des.Proc) error {
		calls++
		p.Sleep(30 * time.Millisecond)
		return nil
	})
	if res.Err != nil || calls != 1 || res.Attempts != 1 || res.Retries != 0 {
		t.Fatalf("naive success: %+v calls=%d", res, calls)
	}
	if res.Latency != 30*time.Millisecond || now != 30*time.Millisecond {
		t.Fatalf("latency %v / now %v, want 30ms", res.Latency, now)
	}
}

func TestDoNaiveFailureNotRetried(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	res, _ := runDo(t, Policy{}, 1, func(p *des.Proc) error {
		calls++
		return boom
	})
	if !errors.Is(res.Err, boom) || calls != 1 || res.Retries != 0 {
		t.Fatalf("naive failure: %+v calls=%d", res, calls)
	}
}

// TestDoRetriesUntilSuccess checks the full latency arithmetic: two failing
// attempts, deterministic backoff between rounds, success on the third.
func TestDoRetriesUntilSuccess(t *testing.T) {
	pol := Policy{MaxRetries: 3, BackoffBase: 100 * time.Millisecond}
	calls := 0
	res, _ := runDo(t, pol, 1, func(p *des.Proc) error {
		calls++
		p.Sleep(10 * time.Millisecond)
		if calls < 3 {
			return ErrThrottled
		}
		return nil
	})
	if res.Err != nil || calls != 3 || res.Attempts != 3 || res.Retries != 2 {
		t.Fatalf("retry-until-success: %+v calls=%d", res, calls)
	}
	// 3 x 10ms attempts + backoffs 100ms (retry 0) + 200ms (retry 1).
	want := 3*10*time.Millisecond + 100*time.Millisecond + 200*time.Millisecond
	if res.Latency != want {
		t.Fatalf("latency %v, want %v", res.Latency, want)
	}
}

func TestDoRetriesExhausted(t *testing.T) {
	pol := Policy{MaxRetries: 2}
	calls := 0
	res, _ := runDo(t, pol, 1, func(p *des.Proc) error {
		calls++
		return ErrThrottled
	})
	if !errors.Is(res.Err, ErrThrottled) || calls != 3 || res.Retries != 2 {
		t.Fatalf("exhausted: %+v calls=%d", res, calls)
	}
}

// TestDoTimeoutBoundsAttempt: a slow attempt is abandoned at Timeout, and
// the round costs exactly Timeout of virtual time.
func TestDoTimeoutBoundsAttempt(t *testing.T) {
	pol := Policy{Timeout: 100 * time.Millisecond}
	res, now := runDo(t, pol, 1, func(p *des.Proc) error {
		p.Sleep(10 * time.Second) // way past the timeout
		return nil
	})
	if !errors.Is(res.Err, ErrAttemptTimeout) {
		t.Fatalf("err = %v, want ErrAttemptTimeout", res.Err)
	}
	if res.Latency != 100*time.Millisecond {
		t.Fatalf("latency %v, want exactly the timeout", res.Latency)
	}
	// The straggler still runs to completion in virtual time; it must
	// discard itself without corrupting anything.
	if now != 10*time.Second {
		t.Fatalf("drain time %v, want 10s", now)
	}
}

// TestDoDropConsumesFullTimeout: a dropped attempt is silence, not a fast
// failure — the client burns the whole per-attempt timeout before retrying.
func TestDoDropConsumesFullTimeout(t *testing.T) {
	pol := Policy{Timeout: 200 * time.Millisecond, MaxRetries: 1}
	calls := 0
	res, _ := runDo(t, pol, 1, func(p *des.Proc) error {
		calls++
		p.Sleep(time.Millisecond)
		if calls == 1 {
			return ErrDropped
		}
		return nil
	})
	if res.Err != nil || calls != 2 || res.Retries != 1 {
		t.Fatalf("drop-then-success: %+v calls=%d", res, calls)
	}
	// Round 1 burns the full 200ms timeout (the drop returned at 1ms but
	// stayed silent); round 2 succeeds after 1ms.
	want := 200*time.Millisecond + time.Millisecond
	if res.Latency != want {
		t.Fatalf("latency %v, want %v", res.Latency, want)
	}
}

// TestDoFastFailureShortCircuitsRound: with a timeout armed, a non-drop
// failure (e.g. a 429) resolves the round immediately instead of waiting
// out the timer.
func TestDoFastFailureShortCircuitsRound(t *testing.T) {
	pol := Policy{Timeout: 10 * time.Second}
	res, now := runDo(t, pol, 1, func(p *des.Proc) error {
		p.Sleep(5 * time.Millisecond)
		return ErrThrottled
	})
	if !errors.Is(res.Err, ErrThrottled) {
		t.Fatalf("err = %v, want ErrThrottled", res.Err)
	}
	if res.Latency != 5*time.Millisecond || now != 5*time.Millisecond {
		t.Fatalf("latency %v / now %v, want 5ms", res.Latency, now)
	}
}

// TestDoHedgeWinsAgainstDrop: the primary is dropped; the hedge launched at
// HedgeAfter lands and wins well before the timeout.
func TestDoHedgeWinsAgainstDrop(t *testing.T) {
	pol := Policy{Timeout: 200 * time.Millisecond, HedgeAfter: 50 * time.Millisecond}
	calls := 0
	res, _ := runDo(t, pol, 1, func(p *des.Proc) error {
		calls++
		if calls == 1 {
			return ErrDropped
		}
		p.Sleep(10 * time.Millisecond)
		return nil
	})
	if res.Err != nil {
		t.Fatalf("err = %v, want success via hedge", res.Err)
	}
	if res.Hedges != 1 || res.Attempts != 2 || res.Retries != 0 {
		t.Fatalf("hedge accounting: %+v", res)
	}
	if want := 60 * time.Millisecond; res.Latency != want {
		t.Fatalf("latency %v, want %v (hedge at 50ms + 10ms service)", res.Latency, want)
	}
}

// TestDoHedgeNotLaunchedOnFastPrimary: a primary that settles before
// HedgeAfter suppresses the hedge entirely.
func TestDoHedgeNotLaunchedOnFastPrimary(t *testing.T) {
	pol := Policy{Timeout: time.Second, HedgeAfter: 100 * time.Millisecond}
	calls := 0
	res, _ := runDo(t, pol, 1, func(p *des.Proc) error {
		calls++
		p.Sleep(10 * time.Millisecond)
		return nil
	})
	if res.Err != nil || calls != 1 || res.Hedges != 0 {
		t.Fatalf("fast primary: %+v calls=%d", res, calls)
	}
}

func TestDoLatencyIncludesBackoff(t *testing.T) {
	// Deterministic jitter: the latency with jitter must sit in
	// [deterministic, 2*deterministic) for the backoff portion.
	base := Policy{Timeout: 50 * time.Millisecond, MaxRetries: 1, BackoffBase: 100 * time.Millisecond}
	jit := base
	jit.Jitter = true
	slow := func(p *des.Proc) error { p.Sleep(time.Minute); return nil }

	rb, _ := runDo(t, base, 7, slow)
	rj, _ := runDo(t, jit, 7, slow)
	if !errors.Is(rb.Err, ErrAttemptTimeout) || !errors.Is(rj.Err, ErrAttemptTimeout) {
		t.Fatalf("both must exhaust retries: %v / %v", rb.Err, rj.Err)
	}
	// base: 50ms + 100ms backoff + 50ms = 200ms.
	if rb.Latency != 200*time.Millisecond {
		t.Fatalf("deterministic latency %v, want 200ms", rb.Latency)
	}
	extra := rj.Latency - rb.Latency
	if extra < 0 || extra >= 100*time.Millisecond {
		t.Fatalf("jitter added %v, want [0, 100ms)", extra)
	}
}

func TestDoZeroAttemptsGuard(t *testing.T) {
	// MaxRetries huge but capped by validation bound; ensure Do terminates
	// when the attempt eventually succeeds.
	pol := Policy{MaxRetries: 1000}
	calls := 0
	res, _ := runDo(t, pol, 1, func(p *des.Proc) error {
		calls++
		if calls < 500 {
			return ErrThrottled
		}
		return nil
	})
	if res.Err != nil || calls != 500 || res.Retries != 499 {
		t.Fatalf("bounded retry loop: %+v calls=%d", res, calls)
	}
	if res.Attempts != 500 {
		t.Fatalf("attempts %d, want 500", res.Attempts)
	}
}
