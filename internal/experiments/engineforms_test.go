package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/trace"
	"github.com/stellar-repro/stellar/internal/workflow"
)

// engineForms are the two execution forms the differential suite compares.
// Auto is deliberately absent: it IS the callback form (explicitly named),
// and the golden fixtures already pin auto against the seed engine.
var engineForms = []cloud.EngineMode{cloud.EngineProc, cloud.EngineCallback}

// formOpts builds figure options for one (engine, workers) cell.
func formOpts(engine cloud.EngineMode, workers int) Options {
	o := detOpts(1, workers)
	o.Engine = engine
	return o
}

// TestEngineFormsEquivalent is the two-forms contract: every experiment
// pipeline must produce byte-identical output whether invocations run as
// goroutine procs or as event-callback chains, at any worker count. The
// figures compare summary fingerprints; table1, breakdown, scale, faults,
// and trace compare fully rendered reports, so every number a user can see
// is covered. A divergence here means the callback state machine's event
// schedule drifted from the proc pipeline's — fix the schedule, never the
// fixture.
func TestEngineFormsEquivalent(t *testing.T) {
	for _, fr := range figureRunners {
		fr := fr
		t.Run(fr.name, func(t *testing.T) {
			t.Parallel()
			for _, workers := range []int{1, 8} {
				var got [2]string
				for i, engine := range engineForms {
					fig, err := fr.run(formOpts(engine, workers))
					if err != nil {
						t.Fatalf("%s engine=%v workers=%d: %v", fr.name, engine, workers, err)
					}
					got[i] = fingerprint(fig)
				}
				if got[0] != got[1] {
					t.Errorf("%s workers=%d: proc and callback forms diverged\n--- proc ---\n%s--- callback ---\n%s",
						fr.name, workers, got[0], got[1])
				}
			}
		})
	}

	t.Run("table1", func(t *testing.T) {
		t.Parallel()
		render := func(res *Table1Result) string {
			var b strings.Builder
			for _, row := range res.Rows {
				for _, prov := range AllProviders {
					c := row.Cells[prov]
					fmt.Fprintf(&b, "%s/%s mr=%.6f tr=%.6f na=%v\n", row.Factor, prov, c.MR, c.TR, c.NA)
				}
			}
			for _, prov := range AllProviders {
				fmt.Fprintf(&b, "base %s=%d\n", prov, int64(res.BaseMedians[prov]))
			}
			return b.String()
		}
		for _, workers := range []int{1, 8} {
			var got [2]string
			for i, engine := range engineForms {
				res, err := Table1(formOpts(engine, workers))
				if err != nil {
					t.Fatalf("table1 engine=%v workers=%d: %v", engine, workers, err)
				}
				got[i] = render(res)
			}
			if got[0] != got[1] {
				t.Errorf("table1 workers=%d: proc and callback forms diverged\n--- proc ---\n%s--- callback ---\n%s",
					workers, got[0], got[1])
			}
		}
	})

	t.Run("breakdown", func(t *testing.T) {
		t.Parallel()
		// The rendered report includes every per-component mean and the
		// cold-phase split, so it also proves the callback path fills
		// Response.Breakdown identically to the proc path.
		for _, workers := range []int{1, 8} {
			var got [2]string
			for i, engine := range engineForms {
				res, err := BreakdownStudy(formOpts(engine, workers))
				if err != nil {
					t.Fatalf("breakdown engine=%v workers=%d: %v", engine, workers, err)
				}
				var b strings.Builder
				WriteBreakdownReport(&b, res)
				got[i] = b.String()
			}
			if got[0] != got[1] {
				t.Errorf("breakdown workers=%d: proc and callback forms diverged", workers)
			}
		}
	})

	t.Run("scale", func(t *testing.T) {
		t.Parallel()
		// The scale series is where the callback form actually is the hot
		// path (arrival loop included), so this cell exercises the most
		// callback code of the suite. Sketch mode covers the Recorder seam.
		for _, workers := range []int{1, 8} {
			var got [2]string
			for i, engine := range engineForms {
				res, err := RunScale(ScaleOptions{
					Provider:    "aws",
					Invocations: 6000,
					Shards:      4,
					Workers:     workers,
					Seed:        1,
					IAT:         5 * time.Millisecond,
					Burst:       3,
					Engine:      engine,
				})
				if err != nil {
					t.Fatalf("scale engine=%v workers=%d: %v", engine, workers, err)
				}
				var b strings.Builder
				WriteScaleReport(&b, res)
				if err := WriteScaleCDF(&b, res); err != nil {
					t.Fatal(err)
				}
				got[i] = b.String()
			}
			if got[0] != got[1] {
				t.Errorf("scale workers=%d: proc and callback forms diverged\n--- proc ---\n%s--- callback ---\n%s",
					workers, got[0], got[1])
			}
		}
	})

	t.Run("faults", func(t *testing.T) {
		t.Parallel()
		// The resilient-client sweep always drives requests from retry
		// procs, so this cell asserts the knob's documented no-op: both
		// settings run the proc pipeline and render identical JSON.
		for _, workers := range []int{1, 8} {
			var got [2]string
			for i, engine := range engineForms {
				res, err := RunFaults(FaultsOptions{
					Provider:    "aws",
					Invocations: 400,
					Shards:      2,
					Workers:     workers,
					Seed:        1,
					IAT:         20 * time.Millisecond,
					Rates:       []float64{0, 0.05},
					Engine:      engine,
				})
				if err != nil {
					t.Fatalf("faults engine=%v workers=%d: %v", engine, workers, err)
				}
				var b strings.Builder
				if err := WriteFaultsJSON(&b, res); err != nil {
					t.Fatal(err)
				}
				got[i] = b.String()
			}
			if got[0] != got[1] {
				t.Errorf("faults workers=%d: proc and callback forms diverged\n--- proc ---\n%s--- callback ---\n%s",
					workers, got[0], got[1])
			}
		}
	})

	t.Run("workflow", func(t *testing.T) {
		t.Parallel()
		// Workflow instances always run their root as a proc-pipeline request
		// (the continuation blocks inside serving windows), so this cell
		// proves the arrival loop's shape — the only part that changes with
		// the knob — never moves a span timestamp, edge tail, or barrier
		// count in the rendered report.
		for _, workers := range []int{1, 8} {
			var got [2]string
			for i, engine := range engineForms {
				var b strings.Builder
				res, err := RunWorkflow(workflowGoldenOpts("mapreduce", workflow.TransferBlobstore, engine, workers))
				if err != nil {
					t.Fatalf("workflow engine=%v workers=%d: %v", engine, workers, err)
				}
				WriteWorkflowReport(&b, res)
				got[i] = b.String()
			}
			if got[0] != got[1] {
				t.Errorf("workflow workers=%d: proc and callback forms diverged\n--- proc ---\n%s--- callback ---\n%s",
					workers, got[0], got[1])
			}
		}
	})

	t.Run("trace", func(t *testing.T) {
		t.Parallel()
		// With a tracer installed every request falls back to the proc
		// pipeline, so this cell proves the fallback seam itself is
		// schedule-neutral: swapping the arrival loop's shape must not move
		// a single span timestamp.
		for _, workers := range []int{1, 8} {
			var got [2]string
			for i, engine := range engineForms {
				res, err := RunTrace(TraceOptions{
					Provider:    "aws",
					Invocations: 400,
					Shards:      4,
					Workers:     workers,
					Seed:        1,
					IAT:         50 * time.Millisecond,
					Burst:       4,
					ExecTime:    5 * time.Millisecond,
					Trace:       trace.Config{SampleRate: 1, SlowestK: 8},
					Engine:      engine,
				})
				if err != nil {
					t.Fatalf("trace engine=%v workers=%d: %v", engine, workers, err)
				}
				var b strings.Builder
				WriteTraceReport(&b, res)
				got[i] = b.String()
			}
			if got[0] != got[1] {
				t.Errorf("trace workers=%d: proc and callback forms diverged\n--- proc ---\n%s--- callback ---\n%s",
					workers, got[0], got[1])
			}
		}
	})
}
