package experiments

import (
	"testing"
	"time"
)

// TestCalibrationReport prints measured-vs-paper values for the headline
// experiments. Run with -v to inspect calibration; assertions live in the
// figure-specific tests.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short")
	}
	opts := Options{Seed: 1, Samples: 1500, Replicas: 60}
	for _, fn := range []func(Options) (*Figure, error){
		Fig3Warm, Fig3Cold, Fig4ImageSize, Fig5RuntimeDeploy, Fig6Inline, Fig7Storage, Fig8Bursts, Fig9Scheduling,
	} {
		fig, err := fn(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("== %s %s", fig.ID, fig.Title)
		for _, s := range fig.Series {
			sum := s.Summary()
			t.Logf("%-28s med=%8v (paper %8v)  p99=%8v (paper %8v)  tmr=%.1f colds=%d errs=%d",
				s.Label, sum.Median.Round(time.Millisecond), s.Paper.Median,
				sum.P99.Round(time.Millisecond), s.Paper.P99, sum.TMR, s.Colds, s.Errors)
		}
	}
}
