package core

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestLoadSuiteConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.json")
	data := `{"experiments": [
		{"name": "a",
		 "static": {"provider": "sim", "functions": [{"name": "f", "runtime": "python3"}]},
		 "runtime": {"samples": 10, "iat": "3s"}}
	]}`
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadSuiteConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sc.Experiments) != 1 || sc.Experiments[0].Runtime.IAT.Std() != 3*time.Second {
		t.Fatalf("suite = %+v", sc)
	}
	// Validate applies runtime defaults in place.
	if sc.Experiments[0].Runtime.BurstSize != 1 {
		t.Fatal("runtime defaults not applied")
	}
	if _, err := LoadSuiteConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "{nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSuiteConfig(bad); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestSuiteValidateErrors(t *testing.T) {
	mk := func(name string) SuiteExperiment {
		return SuiteExperiment{
			Name:    name,
			Static:  StaticConfig{Provider: "sim", Functions: []FunctionConfig{{Name: "f"}}},
			Runtime: RuntimeConfig{Samples: 5, IAT: Duration(time.Second)},
		}
	}
	cases := []struct {
		name string
		sc   SuiteConfig
		want string
	}{
		{"empty", SuiteConfig{}, "no experiments"},
		{"unnamed", SuiteConfig{Experiments: []SuiteExperiment{mk("")}}, "no name"},
		{"dup", SuiteConfig{Experiments: []SuiteExperiment{mk("x"), mk("x")}}, "duplicate"},
		{"bad static", SuiteConfig{Experiments: []SuiteExperiment{{
			Name:    "x",
			Runtime: RuntimeConfig{Samples: 5, IAT: Duration(time.Second)},
		}}}, "provider"},
		{"bad runtime", SuiteConfig{Experiments: []SuiteExperiment{{
			Name:   "x",
			Static: StaticConfig{Provider: "sim", Functions: []FunctionConfig{{Name: "f"}}},
		}}}, "samples"},
	}
	for _, tc := range cases {
		err := tc.sc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestRequestURL(t *testing.T) {
	pr := PlannedRequest{
		Endpoint:     Endpoint{URL: "http://127.0.0.1:9/fn/f"},
		ExecTime:     250 * time.Millisecond,
		PayloadBytes: 1024,
	}
	u, err := requestURL(pr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"exec_ms=250", "payload=1024"} {
		if !strings.Contains(u, want) {
			t.Errorf("url %q missing %q", u, want)
		}
	}
	// No overrides -> clean URL.
	plain, err := requestURL(PlannedRequest{Endpoint: Endpoint{URL: "http://h/fn/f"}})
	if err != nil || plain != "http://h/fn/f" {
		t.Fatalf("plain url = %q, %v", plain, err)
	}
	if _, err := requestURL(PlannedRequest{Endpoint: Endpoint{URL: "://bad"}}); err == nil {
		t.Fatal("expected error for malformed URL")
	}
}

func TestRunPlanValidation(t *testing.T) {
	h := newHarness(t)
	if _, err := h.client.RunPlan(nil, 0); err == nil {
		t.Fatal("expected error for empty plan")
	}
	plan := []PlannedRequest{{Endpoint: Endpoint{Function: "f", Provider: "sim"}}}
	if _, err := h.client.RunPlan(plan, 5); err == nil {
		t.Fatal("expected error for out-of-range warmup")
	}
}
