package cloud

import (
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/econ"
)

// This file wires the econ control plane into the instance lifecycle: the
// target-concurrency autoscaler (Config.Autoscaler) replaces the buffer-
// driven scale policies with Knative-style concurrency tracking, suspend/
// resume adds a third lifecycle state between warm and evicted, and the
// usage meters integrate busy/idle/suspended GB-time in virtual time.
//
// Metering is always on: it is pure arithmetic at state transitions the
// simulator already performs — no RNG draws, no events — so a cloud without
// an autoscaler stays byte-identical to all prior behavior. The autoscaler
// and suspend/resume activate only when Config.Autoscaler is set.

// noteUsage folds the instance's elapsed time in its current state into the
// tenant's and the fleet's usage meters, and restarts the window. Must run
// immediately before every state transition (and at usage-read time). The
// same amount lands in both meters, so per-tenant usage sums to the fleet
// total exactly (billing conservation).
func (fn *Function) noteUsage(inst *Instance) {
	now := fn.c.eng.Now()
	elapsed := now - inst.stateSince
	if elapsed <= 0 {
		inst.stateSince = now
		return
	}
	inst.stateSince = now
	gbms := float64(elapsed) / 1e6 * fn.c.cfg.memoryGB(fn.spec.MemoryMB)
	switch inst.state {
	case stateBusy:
		fn.meter.Busy(gbms)
		fn.c.meter.Busy(gbms)
	case stateIdle:
		fn.meter.Idle(gbms)
		fn.c.meter.Idle(gbms)
	case stateSuspended:
		fn.meter.Suspended(gbms)
		fn.c.meter.Suspended(gbms)
	}
}

// foldUsage brings every held instance's usage up to the present instant.
func (fn *Function) foldUsage() {
	for _, inst := range fn.live {
		fn.noteUsage(inst)
	}
	for _, inst := range fn.susp {
		fn.noteUsage(inst)
	}
}

// Usage reports the fleet-wide resource usage accumulated so far, brought
// up to the present instant.
func (c *Cloud) Usage() econ.Usage {
	for _, fn := range c.functions {
		fn.foldUsage()
	}
	return c.meter.Usage()
}

// FunctionUsage reports one function's (one tenant's) usage, brought up to
// the present instant.
func (c *Cloud) FunctionUsage(name string) (econ.Usage, bool) {
	fn, ok := c.functions[name]
	if !ok {
		return econ.Usage{}, false
	}
	fn.foldUsage()
	return fn.meter.Usage(), true
}

// Bill prices the fleet's usage under the provider's configured billing
// plan. The second return is false when Config.Billing is unset.
func (c *Cloud) Bill() (econ.Cost, bool) {
	if c.cfg.Billing == nil {
		return econ.Cost{}, false
	}
	return c.cfg.Billing.Price(c.Usage()), true
}

// SuspendedInstances reports a function's suspended instance count.
func (c *Cloud) SuspendedInstances(name string) int {
	fn, ok := c.functions[name]
	if !ok {
		return 0
	}
	return len(fn.susp)
}

// autoscaleAdmit folds one admitted request into the autoscaler's demand
// window and scales up toward the decision. Scale-up applies immediately on
// demand; scale-down is reserved for the periodic tick.
func (fn *Function) autoscaleAdmit() {
	now := fn.c.eng.Now()
	d := fn.as.Observe(int64(now), fn.inflight, len(fn.live)+fn.pending)
	if d.Desired > len(fn.live)+fn.pending {
		fn.scaleUpTo(d.Desired)
	}
	fn.armTick()
}

// armTick schedules the next autoscaler evaluation unless one is already
// pending. The tick self-disarms when the function quiesces (autoscaleTick
// re-arms only while there is anything left to manage), so a simulation
// running to exhaustion terminates.
func (fn *Function) armTick() {
	if fn.tickArmed {
		return
	}
	fn.tickArmed = true
	fn.tickTimer = fn.c.eng.After(fn.as.Config().TickInterval, fn.tickFn)
}

// autoscaleTick is the periodic control-plane evaluation: it samples
// current concurrency into the demand window, scales up if a burst outran
// the demand path, and — uniquely to the tick — scales down once the
// scale-down window has drained.
func (fn *Function) autoscaleTick() {
	fn.tickArmed = false
	fn.tickTimer = des.Timer{}
	now := fn.c.eng.Now()
	current := len(fn.live) + fn.pending
	d := fn.as.Tick(int64(now), fn.inflight, current)
	switch {
	case d.Desired > current:
		fn.scaleUpTo(d.Desired)
	case d.Desired < current:
		fn.scaleDownTo(d.Desired)
	}
	// Re-arm only while the function has instances or work; a fully
	// quiesced (or fully suspended) function needs no control loop until
	// the next admission arms it again.
	if len(fn.live)+fn.pending+fn.inflight+len(fn.buffer) > 0 {
		fn.armTick()
	}
}

// scaleUpTo grows capacity toward desired, preferring to resume suspended
// instances (cheap) over cold spawns, and never exceeding the tenant's
// instance cap.
func (fn *Function) scaleUpTo(desired int) {
	if fn.maxInstances > 0 && desired > fn.maxInstances {
		desired = fn.maxInstances
	}
	for len(fn.live)+fn.pending < desired {
		if len(fn.susp) > 0 {
			fn.resumeOne()
		} else {
			fn.spawnOne()
		}
	}
}

// scaleDownTo sheds surplus capacity down toward desired by suspending or
// evicting idle instances, oldest first. Busy instances and pending spawns
// are never interrupted; if the surplus is all busy, the next tick retries.
func (fn *Function) scaleDownTo(desired int) {
	for len(fn.live)+fn.pending > desired {
		inst := fn.popOldestIdle()
		if inst == nil {
			return
		}
		if fn.as.Config().Suspend {
			fn.suspend(inst)
		} else {
			fn.expire(inst)
		}
	}
}

// popOldestIdle removes and returns the least-recently-used idle instance
// (the opposite end from claimIdle's MRU reuse), skipping records whose
// state moved on since they were appended.
func (fn *Function) popOldestIdle() *Instance {
	for len(fn.idle) > 0 {
		inst := fn.idle[0]
		copy(fn.idle, fn.idle[1:])
		fn.idle[len(fn.idle)-1] = nil
		fn.idle = fn.idle[:len(fn.idle)-1]
		if inst.state != stateIdle {
			continue
		}
		return inst
	}
	return nil
}

// suspend parks an idle instance in the suspended state: its memory leaves
// the worker (the slot and cluster capacity free up) but its initialized
// state is retained, so a later resume skips the cold-start pipeline. The
// caller has already removed inst from the idle pool.
func (fn *Function) suspend(inst *Instance) {
	c := fn.c
	inst.keepAlive.Cancel()
	inst.keepAlive = des.Timer{}
	fn.noteUsage(inst)
	inst.state = stateSuspended
	fn.noteInstSec()
	delete(fn.live, inst.id)
	inst.worker.Instances--
	inst.worker = nil
	c.noteInstanceDelta(-1)
	c.releaseClusterSlot()
	c.metrics.Suspends++
	fn.susp = append(fn.susp, inst)
}

// resumeOne brings the most recently suspended instance back: it re-acquires
// cluster capacity and a worker slot, pays ResumeDelay (well below a cold
// boot), and rejoins the live fleet warm — its served count survives, so the
// next invocation is a warm serve.
func (fn *Function) resumeOne() {
	c := fn.c
	inst := fn.susp[len(fn.susp)-1]
	fn.susp[len(fn.susp)-1] = nil
	fn.susp = fn.susp[:len(fn.susp)-1]
	fn.pending++
	c.metrics.Resumes++
	c.eng.Spawn("resume/"+fn.spec.Name, func(p *des.Proc) {
		if c.capRes != nil {
			p.Acquire(c.capRes)
		}
		p.Sleep(c.cfg.ResumeDelay.Sample(c.rngSched))
		w := c.pickWorker()
		w.Instances++
		fn.pending--
		fn.noteInstSec()
		fn.noteUsage(inst) // close the suspended window
		inst.state = stateBusy
		inst.worker = w
		fn.live[inst.id] = inst
		c.noteInstanceDelta(1)
		if len(fn.buffer) > 0 {
			fn.grant(inst, false)
		} else {
			fn.parkIdle(inst)
		}
	})
}
