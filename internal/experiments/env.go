package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/plot"
)

// Env is an exported measurement environment (one simulated provider cloud
// with a STeLLAR deployer and client) for CLI tools and examples.
type Env struct{ inner *env }

// NewEnv builds an environment for a registered provider profile.
func NewEnv(provider string, seed int64) (*Env, error) {
	inner, err := newEnv(provider, seed)
	if err != nil {
		return nil, err
	}
	return &Env{inner: inner}, nil
}

// NewEnvFromConfig builds an environment from an explicit profile.
func NewEnvFromConfig(cfg cloud.Config, seed int64) (*Env, error) {
	inner, err := newEnvWithConfig(cfg, seed)
	if err != nil {
		return nil, err
	}
	return &Env{inner: inner}, nil
}

// Deployer returns the environment's deployer (with the sim plugin
// registered).
func (e *Env) Deployer() *core.Deployer { return e.inner.deployer }

// Client returns the STeLLAR client bound to the simulated transport.
func (e *Env) Client() *core.Client { return e.inner.client }

// Cloud returns the simulated cloud.
func (e *Env) Cloud() *cloud.Cloud { return e.inner.cloud }

// Close releases the environment's simulation resources.
func (e *Env) Close() { e.inner.close() }

// Report runs the identified experiment(s) at the given scale and writes a
// textual paper-vs-measured report to w. id "all" runs everything.
func Report(w io.Writer, id string, opts Options) error {
	type runner struct {
		id  string
		run func() error
	}
	figure := func(fn func(Options) (*Figure, error)) func() error {
		return func() error {
			fig, err := fn(opts)
			if err != nil {
				return err
			}
			if err := exportFigureCSV(fig, opts.CSVDir); err != nil {
				return err
			}
			return WriteFigureReport(w, fig)
		}
	}
	sweep := func(fn func(Options) (*Figure, error), xName string) func() error {
		return func() error {
			fig, err := fn(opts)
			if err != nil {
				return err
			}
			if err := exportFigureCSV(fig, opts.CSVDir); err != nil {
				return err
			}
			if err := WriteSweepReport(w, fig, xName); err != nil {
				return err
			}
			fmt.Fprintln(w)
			return WriteFigureReport(w, fig)
		}
	}
	runners := []runner{
		{"fig3a", figure(Fig3Warm)},
		{"fig3b", figure(Fig3Cold)},
		{"fig4", figure(Fig4ImageSize)},
		{"fig5", figure(Fig5RuntimeDeploy)},
		{"fig6", sweep(Fig6Inline, "payload")},
		{"fig7", sweep(Fig7Storage, "payload")},
		{"fig8", figure(Fig8Bursts)},
		{"fig9", figure(Fig9Scheduling)},
		{"fig10", func() error {
			res, err := Fig10TraceTMR(opts)
			if err != nil {
				return err
			}
			return WriteFig10Report(w, res)
		}},
		{"table1", func() error {
			res, err := Table1(opts)
			if err != nil {
				return err
			}
			WriteTable1Report(w, res)
			return nil
		}},
		{"breakdown", func() error {
			res, err := BreakdownStudy(opts)
			if err != nil {
				return err
			}
			WriteBreakdownReport(w, res)
			return nil
		}},
		{"policyspace", func() error {
			res, err := PolicySpace(opts)
			if err != nil {
				return err
			}
			WritePolicySpaceReport(w, res)
			return nil
		}},
		{"snapshots", func() error {
			res, err := SnapshotStudy(opts)
			if err != nil {
				return err
			}
			WriteSnapshotReport(w, res)
			return nil
		}},
		{"trace", func() error {
			res, err := TraceStudy(opts)
			if err != nil {
				return err
			}
			WriteTraceStudyReport(w, res)
			return nil
		}},
		{"observations", func() error {
			obs, err := Observations(opts)
			if err != nil {
				return err
			}
			WriteObservationsReport(w, obs)
			return nil
		}},
	}
	ran := false
	for _, r := range runners {
		if id != "all" && id != r.id {
			continue
		}
		ran = true
		if err := r.run(); err != nil {
			return fmt.Errorf("experiment %s: %w", r.id, err)
		}
		fmt.Fprintln(w)
	}
	if !ran {
		return fmt.Errorf("experiments: unknown id %q", id)
	}
	return nil
}

// exportFigureCSV writes a figure's series as CSV when a directory is set.
func exportFigureCSV(fig *Figure, dir string) error {
	if dir == "" {
		return nil
	}
	series := make([]plot.Series, 0, len(fig.Series))
	for _, s := range fig.Series {
		series = append(series, plot.Series{Label: s.Label, Sample: s.Latencies})
	}
	f, err := os.Create(filepath.Join(dir, fig.ID+".csv"))
	if err != nil {
		return fmt.Errorf("experiments: csv export: %w", err)
	}
	defer f.Close()
	return plot.CSV(f, series)
}
