package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/stellar-repro/stellar/internal/experiments"
	"github.com/stellar-repro/stellar/internal/providers"
	"github.com/stellar-repro/stellar/internal/results"
)

// cmdScale drives a sustained multi-million-invocation series against one
// simulated provider at bounded heap: latencies stream into mergeable
// quantile sketches instead of per-sample slices, so series length is
// limited by simulated time, not memory.
func cmdScale(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("scale", flag.ContinueOnError)
	fs.SetOutput(stdout)
	prof := addProfileFlags(fs)
	provider := fs.String("provider", "aws", "provider profile")
	providerFile := fs.String("provider-file", "", "JSON provider profile to load and use")
	invocations := fs.Uint64("n", 5_000_000, "total invocations across all shards")
	shards := fs.Int("shards", 8, "independent simulation shards")
	workers := fs.Int("workers", 0, "concurrent shards (0 = all CPUs, 1 = serial)")
	iat := fs.Duration("iat", 100*time.Millisecond, "inter-arrival time between bursts within a shard")
	burst := fs.Int("burst", 1, "requests per arrival step")
	exec := fs.Duration("exec", 0, "function busy-spin time")
	alpha := fs.Float64("alpha", 0, "sketch relative-accuracy target (0 = default 0.5%)")
	exact := fs.Bool("exact", false, "record exact per-sample latencies (O(n) memory; small n only)")
	engine := addEngineFlag(fs)
	seed := fs.Int64("seed", 1, "random seed")
	csvPath := fs.String("csv", "", "write the latency CDF as CSV")
	savePath := fs.String("save", "", "save the merged sketch as a results file")
	name := fs.String("name", "scale", "run name used in saved results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	if *providerFile != "" {
		loaded, err := providers.RegisterFile(*providerFile)
		if err != nil {
			return err
		}
		*provider = loaded
	}
	mode, err := engine.mode()
	if err != nil {
		return err
	}

	res, err := experiments.RunScale(experiments.ScaleOptions{
		Provider:    *provider,
		Invocations: *invocations,
		Shards:      *shards,
		Workers:     *workers,
		Seed:        *seed,
		IAT:         *iat,
		Burst:       *burst,
		ExecTime:    *exec,
		Alpha:       *alpha,
		Exact:       *exact,
		Engine:      mode,
	})
	if err != nil {
		return err
	}
	experiments.WriteScaleReport(stdout, res)

	if *savePath != "" {
		if res.Sketch == nil {
			return fmt.Errorf("scale: -save requires sketch mode (drop -exact)")
		}
		rec := results.FromScaleRun(*name, res.Sketch, int(res.Colds), int(res.Errors))
		if err := rec.Save(*savePath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "sketch saved to %s\n", *savePath)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		return experiments.WriteScaleCDF(f, res)
	}
	return nil
}
