package runner

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/dist"
)

// draw simulates a shard's measurement: a few values from the shard stream.
func draw(sh Shard) ([]int64, error) {
	rng := sh.Streams.Stream("work")
	out := make([]int64, 4)
	for i := range out {
		out[i] = rng.Int63()
	}
	return out, nil
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 37
	var want [][]int64
	for _, workers := range []int{1, 2, 3, 8, 64} {
		got, err := Map(Pool{Workers: workers, Seed: 7}, n, draw)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), n)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results differ from workers=1", workers)
		}
	}
}

func TestMapSeedsArePositional(t *testing.T) {
	seeds, err := Map(Pool{Workers: 4, Seed: 3}, 16, func(sh Shard) (int64, error) {
		if sh.Total != 16 {
			t.Errorf("shard %d: Total = %d", sh.Index, sh.Total)
		}
		if sh.Streams.Seed() != sh.Seed {
			t.Errorf("shard %d: Streams seed %d != shard seed %d", sh.Index, sh.Streams.Seed(), sh.Seed)
		}
		return sh.Seed, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	unique := map[int64]bool{}
	for i, s := range seeds {
		if s != dist.ShardSeed(3, i) {
			t.Errorf("shard %d seed %d, want ShardSeed(3,%d)=%d", i, s, i, dist.ShardSeed(3, i))
		}
		unique[s] = true
	}
	if len(unique) != len(seeds) {
		t.Errorf("only %d unique seeds for %d shards", len(unique), len(seeds))
	}
}

func TestMapCollectsInIndexOrder(t *testing.T) {
	// Shards finish in intentionally scrambled order; results must not.
	got, err := Map(Pool{Workers: 8, Seed: 1}, 24, func(sh Shard) (int, error) {
		time.Sleep(time.Duration(rand.New(rand.NewSource(sh.Seed)).Intn(3)) * time.Millisecond)
		return sh.Index * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*10 {
			t.Fatalf("result %d = %d, want %d", i, v, i*10)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	_, err := Map(Pool{Workers: workers, Seed: 1}, 50, func(sh Shard) (struct{}, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent shards, want <= %d", p, workers)
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	errA := errors.New("shard 5 broke")
	var ran sync.Map
	_, err := Map(Pool{Workers: 4, Seed: 1}, 12, func(sh Shard) (int, error) {
		ran.Store(sh.Index, true)
		if sh.Index == 5 || sh.Index == 9 {
			return 0, fmt.Errorf("%w (index %d)", errA, sh.Index)
		}
		return sh.Index, nil
	})
	if err == nil || !errors.Is(err, errA) {
		t.Fatalf("err = %v, want wrapped errA", err)
	}
	// The error must be the lowest-indexed one even if shard 9 failed too.
	if got := err.Error(); got != "shard 5 broke (index 5)" {
		t.Errorf("err = %q, want the index-5 failure", got)
	}
}

func TestMapStopsDispatchAfterError(t *testing.T) {
	var started atomic.Int32
	_, err := Map(Pool{Workers: 1, Seed: 1}, 100, func(sh Shard) (int, error) {
		started.Add(1)
		if sh.Index == 2 {
			return 0, errors.New("boom")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	// With one worker the failure at index 2 must stop dispatch almost
	// immediately (a small overshoot from the in-flight handoff is fine).
	if s := started.Load(); s > 5 {
		t.Errorf("%d shards started after early failure, want <= 5", s)
	}
}

func TestMapEdgeCases(t *testing.T) {
	got, err := Map(Pool{}, 0, draw)
	if err != nil || got != nil {
		t.Errorf("n=0: got %v, %v", got, err)
	}
	// Default worker count and n < workers both work.
	res, err := Map(Pool{Workers: 16, Seed: 5}, 2, draw)
	if err != nil || len(res) != 2 {
		t.Errorf("n=2: got %d results, err %v", len(res), err)
	}
}

// TestMapReduceFoldsInIndexOrder pins the deterministic fold: shard results
// merge in index order regardless of worker count or completion order.
func TestMapReduceFoldsInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got, err := MapReduce(Pool{Workers: workers, Seed: 9}, 8, "acc",
			func(sh Shard) (string, error) {
				return string(rune('a' + sh.Index)), nil
			},
			func(acc, shard string) (string, error) {
				return acc + shard, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if got != "accabcdefgh" {
			t.Errorf("Workers=%d: fold = %q, want accabcdefgh", workers, got)
		}
	}
}

// TestMapReduceSurfacesErrors: shard errors preempt the fold; merge errors
// carry the shard index.
func TestMapReduceSurfacesErrors(t *testing.T) {
	_, err := MapReduce(Pool{Workers: 2, Seed: 1}, 4, 0,
		func(sh Shard) (int, error) {
			if sh.Index == 1 {
				return 0, errors.New("shard boom")
			}
			return sh.Index, nil
		},
		func(acc, shard int) (int, error) { return acc + shard, nil })
	if err == nil || !strings.Contains(err.Error(), "shard boom") {
		t.Fatalf("shard error not surfaced: %v", err)
	}
	_, err = MapReduce(Pool{Workers: 2, Seed: 1}, 4, 0,
		func(sh Shard) (int, error) { return sh.Index, nil },
		func(acc, shard int) (int, error) {
			if shard == 2 {
				return 0, errors.New("merge boom")
			}
			return acc + shard, nil
		})
	if err == nil || !strings.Contains(err.Error(), "merge shard 2") {
		t.Fatalf("merge error not indexed: %v", err)
	}
}
