package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
)

// FuzzTraceExport feeds arbitrary JSON-decoded trace records through the
// validator, the trace_event exporter, and the attribution pipeline: none of
// them may panic, and the exporter must always emit valid JSON.
func FuzzTraceExport(f *testing.F) {
	seed, err := json.Marshal(exportFixture())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"id":1,"fn":"f","attempts":1,"start_ns":0,"end_ns":-5,"spans":[{"stage":"exec","start_ns":0,"dur_ns":-5}]}]`))
	f.Add([]byte(`[{"id":18446744073709551615,"shard":-3,"fn":"\\u0000","attempts":900,"start_ns":9223372036854775807,"end_ns":1,"spans":[{"stage":"cold/chunk-reads","attempt":-1,"start_ns":1,"dur_ns":1,"detail":true}]}]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []RequestRecord
		if err := json.Unmarshal(data, &recs); err != nil {
			t.Skip()
		}
		for i := range recs {
			_ = recs[i].Validate() // must not panic on hostile input
		}
		var buf bytes.Buffer
		if err := WriteTraceEvents(&buf, recs); err != nil {
			t.Fatalf("WriteTraceEvents: %v", err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("export produced invalid JSON for %q", data)
		}
		if a := Attribute(recs, nil); a != nil {
			var out bytes.Buffer
			a.Write(&out)
		}
		_ = Attribute(recs, []float64{0, 1})
	})
}

// FuzzConfigValidate checks the sampler config validator never panics and
// that New rejects nothing Validate accepted.
func FuzzConfigValidate(f *testing.F) {
	f.Add(0.5, 10, 64)
	f.Add(-1.0, -1, -1)
	f.Fuzz(func(t *testing.T, rate float64, slowK, ring int) {
		cfg := Config{SampleRate: rate, SlowestK: slowK, RingCapacity: ring}
		if err := cfg.Validate(); err != nil {
			return
		}
		if ring > 1<<20 {
			t.Skip() // avoid huge allocations; capacity is unbounded by design
		}
		tr := newTestTracer(cfg, 1)
		r := tr.Begin(1, "fn", 0)
		end := des.Time(time.Millisecond)
		r.Mark(StageExec, time.Millisecond, end)
		tr.End(r, end, nil)
		_ = tr.Drain()
	})
}
