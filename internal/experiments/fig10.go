package experiments

import (
	"fmt"
	"math/rand"

	"github.com/stellar-repro/stellar/internal/azuretrace"
)

// fig10Classes pairs duration classes with the paper's reported fraction of
// functions whose TMR stays below 10 (§VII-B).
var fig10Classes = []struct {
	class     azuretrace.DurationClass
	paperFrac float64
}{
	{azuretrace.ClassAll, 0.70},
	{azuretrace.ClassSubSec, 0.60},
	{azuretrace.ClassMidRange, 0.78}, // interpolated; not explicitly reported
	{azuretrace.ClassLong, 0.90},
}

// Fig10Result captures the trace analysis behind Fig. 10.
type Fig10Result struct {
	// Records is the synthesized trace.
	Records []azuretrace.Record
	// Series holds the TMR CDFs per duration class; Series.Latencies
	// stores TMR*1000 as nanoseconds (dimensionless ratio axis).
	Figure *Figure
	// FracBelow10 maps class to measured P(TMR < 10).
	FracBelow10 map[azuretrace.DurationClass]float64
}

// Fig10TraceTMR reproduces Fig. 10: CDFs of per-function execution-time
// tail-to-median ratios from (a synthesis of) the Azure Functions trace,
// overall and split by function duration class.
func Fig10TraceTMR(opts Options) (*Fig10Result, error) {
	opts = opts.normalized()
	n := opts.Samples * 4 // trace functions, not invocations; use a bigger pool
	if n < 2000 {
		n = 2000
	}
	rng := rand.New(rand.NewSource(opts.Seed + 100))
	records := azuretrace.Generate(n, rng)
	fig := &Figure{
		ID:    "fig10",
		Title: "TMR CDFs of per-function execution times (Azure trace)",
		Notes: []string{"x-axis is the dimensionless TMR (stored as TMR*1000 nanoseconds)"},
	}
	fracs := make(map[azuretrace.DurationClass]float64, len(fig10Classes))
	for _, c := range fig10Classes {
		sample := azuretrace.TMRSample(records, c.class)
		if sample.Len() == 0 {
			return nil, fmt.Errorf("fig10: class %s empty", c.class)
		}
		fig.Series = append(fig.Series, Series{
			Label:     string(c.class),
			Latencies: sample,
		})
		fracs[c.class] = azuretrace.FracBelowTMR(records, c.class, 10)
	}
	return &Fig10Result{Records: records, Figure: fig, FracBelow10: fracs}, nil
}
