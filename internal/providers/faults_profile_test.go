package providers

import (
	"strings"
	"testing"
	"time"
)

// withFaultsBlock splices a "faults" section into the sample profile.
func withFaultsBlock(block string) string {
	return strings.Replace(sampleProfile, `"workers": 4,`,
		`"workers": 4,`+"\n  "+`"faults": `+block+`,`, 1)
}

func TestProfileFaultsBlock(t *testing.T) {
	cfg, err := LoadConfigFile(writeProfile(t, withFaultsBlock(
		`{"drop_prob": 0.25, "throttle_limit": 10, "throttle_window": "1s"}`)))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Inject == nil {
		t.Fatal("faults block did not populate cfg.Inject")
	}
	if cfg.Inject.DropProb != 0.25 || cfg.Inject.ThrottleLimit != 10 ||
		cfg.Inject.ThrottleWindow != time.Second {
		t.Fatalf("Inject = %+v", cfg.Inject)
	}
}

func TestProfileWithoutFaultsBlock(t *testing.T) {
	cfg, err := LoadConfigFile(writeProfile(t, sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Inject != nil {
		t.Fatalf("no faults block must leave Inject nil, got %+v", cfg.Inject)
	}
}

func TestProfileFaultsBlockRejected(t *testing.T) {
	for name, block := range map[string]string{
		"bad prob":         `{"drop_prob": 2}`,
		"NaN-ish string":   `{"drop_prob": "NaN"}`,
		"spawn prob one":   `{"spawn_fail_prob": 1}`,
		"missing window":   `{"throttle_limit": 5}`,
		"missing duration": `{"storage_timeout_prob": 0.5}`,
	} {
		if _, err := LoadConfigFile(writeProfile(t, withFaultsBlock(block))); err == nil {
			t.Errorf("%s: profile with faults %s accepted", name, block)
		}
	}
}
