package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"github.com/stellar-repro/stellar/internal/azuretrace"
	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/providers"
	"github.com/stellar-repro/stellar/internal/runner"
	"github.com/stellar-repro/stellar/internal/stats"
	"github.com/stellar-repro/stellar/internal/stats/sketch"
)

// TenantsOptions configures a provider-scale multi-tenant trace replay: a
// synthesized Azure-style function population replays concurrently against
// one simulated provider, once per keep-alive policy, producing the
// cold-start-rate vs instance-seconds trade-off frontier a provider's
// keep-alive knob walks (Shahrad et al., ATC'20; §VI-D of the paper for the
// cold-start mechanics).
//
// Tenants are deterministically partitioned across Shards by index; each
// (policy, shard) cell is one isolated simulation whose seed depends only on
// (Seed, shard index), so every policy replays the same arrivals and
// execution times, and results are byte-identical at any Workers setting.
type TenantsOptions struct {
	// Provider is the provider profile under test.
	Provider string
	// Tenants is the synthesized population size.
	Tenants int
	// Duration is the arrival window per shard; invocations still in
	// flight at the window's end run to completion.
	Duration time.Duration
	// Shards splits the population into independent simulations (default 8).
	Shards int
	// Workers bounds concurrently running shard simulations (0 = GOMAXPROCS).
	Workers int
	// Seed roots the population synthesis and every shard's randomness.
	Seed int64
	// KeepAlives is the swept fixed keep-alive axis (default 1m,5m,10m,20m).
	KeepAlives []time.Duration
	// SlackTick routes keep-alive expiries onto the engine's timer wheel at
	// this tick (0 = exact heap timers).
	SlackTick time.Duration
	// MeanIATLo/Hi bound each tenant's mean inter-arrival time, drawn
	// log-uniformly (default 1s..60s). A tenant's mean IAT is floored at
	// its median execution time so offered per-tenant concurrency stays
	// near one, as in the Azure trace's rare-invocation mass.
	MeanIATLo time.Duration
	MeanIATHi time.Duration
	// Alpha is the per-tenant latency sketch accuracy (default 0.02 —
	// coarser than the scale driver's, keeping each tenant's recorder in
	// the single-digit-KB range).
	Alpha float64
	// MaxConcurrency caps each tenant's live+pending instances (default 16,
	// negative = uncapped).
	MaxConcurrency int
	// Top reports the N worst tenants by p99 per policy (0 = none).
	Top int
	// Engine selects the invocation execution form.
	Engine cloud.EngineMode
}

func (o TenantsOptions) normalized() TenantsOptions {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if len(o.KeepAlives) == 0 {
		o.KeepAlives = []time.Duration{time.Minute, 5 * time.Minute, 10 * time.Minute, 20 * time.Minute}
	}
	if o.MeanIATLo <= 0 {
		o.MeanIATLo = time.Second
	}
	if o.MeanIATHi <= 0 {
		o.MeanIATHi = time.Minute
	}
	if o.Alpha == 0 {
		o.Alpha = 0.02
	}
	if o.MaxConcurrency == 0 {
		o.MaxConcurrency = 16
	}
	if o.MaxConcurrency < 0 {
		o.MaxConcurrency = 0
	}
	return o
}

func (o TenantsOptions) validate() error {
	if o.Provider == "" {
		return fmt.Errorf("tenants: provider is required")
	}
	if o.Tenants <= 0 {
		return fmt.Errorf("tenants: need at least one tenant")
	}
	if o.Duration <= 0 {
		return fmt.Errorf("tenants: duration must be positive")
	}
	for _, ka := range o.KeepAlives {
		if ka <= 0 {
			return fmt.Errorf("tenants: keep-alive %v must be positive", ka)
		}
	}
	if o.MeanIATLo > o.MeanIATHi {
		return fmt.Errorf("tenants: mean IAT bounds inverted (%v > %v)", o.MeanIATLo, o.MeanIATHi)
	}
	if o.SlackTick < 0 {
		return fmt.Errorf("tenants: negative slack tick")
	}
	return nil
}

// tenantSpec is one synthesized tenant: its execution-time record and its
// arrival rate. The population is built once per sweep, so every policy and
// every shard partition sees the same tenants.
type tenantSpec struct {
	rec     azuretrace.Record
	meanIAT time.Duration
}

// synthesizeTenants builds the population from the root seed only.
func synthesizeTenants(opts TenantsOptions) []tenantSpec {
	rng := dist.NewStreams(opts.Seed).Stream("tenants/population")
	records := azuretrace.Generate(opts.Tenants, rng)
	pop := make([]tenantSpec, len(records))
	ratio := math.Log(float64(opts.MeanIATHi) / float64(opts.MeanIATLo))
	for i, rec := range records {
		iat := time.Duration(float64(opts.MeanIATLo) * math.Exp(rng.Float64()*ratio))
		if med := rec.Median(); iat < med {
			iat = med
		}
		pop[i] = tenantSpec{rec: rec, meanIAT: iat}
	}
	return pop
}

// TenantStat is one tenant's merged outcome under one policy.
type TenantStat struct {
	Name        string        `json:"name"`
	Invocations uint64        `json:"invocations"`
	ColdServed  uint64        `json:"cold_served"`
	Errors      uint64        `json:"errors"`
	P99         time.Duration `json:"p99_ns"`
}

// TenantsPolicyPoint is one keep-alive policy's merged outcome: the two
// frontier coordinates (cold-start rate, instance-seconds) plus the
// supporting counters and the merged latency sketch summary.
type TenantsPolicyPoint struct {
	KeepAlive       time.Duration `json:"keepalive_ns"`
	Invocations     uint64        `json:"invocations"`
	ColdServed      uint64        `json:"cold_served"`
	WarmServed      uint64        `json:"warm_served"`
	Errors          uint64        `json:"errors"`
	Expirations     uint64        `json:"expirations"`
	ColdRate        float64       `json:"cold_rate"`
	InstanceSeconds float64       `json:"instance_seconds"`
	Latency         stats.Summary `json:"latency"`
	VirtualTime     time.Duration `json:"virtual_ns"`
	// Pareto marks points not dominated on (ColdRate, InstanceSeconds):
	// the keep-alive settings a rational provider would actually pick.
	Pareto bool `json:"pareto"`
	// TopTenants lists the worst tenants by p99 (only when Options.Top > 0).
	TopTenants []TenantStat `json:"top_tenants,omitempty"`
}

// TenantsResult is the full sweep outcome, points in keep-alive order.
type TenantsResult struct {
	Provider  string               `json:"provider"`
	Tenants   int                  `json:"tenants"`
	Duration  time.Duration        `json:"duration_ns"`
	Shards    int                  `json:"shards"`
	Seed      int64                `json:"seed"`
	SlackTick time.Duration        `json:"slack_tick_ns"`
	Points    []TenantsPolicyPoint `json:"points"`
}

// tenantsShard is one (policy, shard) simulation's raw outcome.
type tenantsShard struct {
	inv, cold, warm, errs uint64
	expirations           uint64
	instSec               float64
	sk                    *sketch.Sketch
	virtual               time.Duration
	tenants               []TenantStat
}

// RunTenants executes the keep-alive sweep over the synthesized population.
func RunTenants(opts TenantsOptions) (*TenantsResult, error) {
	opts = opts.normalized()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	pop := synthesizeTenants(opts)

	units := len(opts.KeepAlives) * opts.Shards
	shards, err := runner.Map(runner.Pool{Workers: opts.Workers, Seed: opts.Seed}, units,
		func(sh runner.Shard) (*tenantsShard, error) {
			ka := opts.KeepAlives[sh.Index/opts.Shards]
			shardIdx := sh.Index % opts.Shards
			return runTenantsShard(opts, pop, ka, shardIdx)
		})
	if err != nil {
		return nil, err
	}

	res := &TenantsResult{
		Provider:  opts.Provider,
		Tenants:   opts.Tenants,
		Duration:  opts.Duration,
		Shards:    opts.Shards,
		Seed:      opts.Seed,
		SlackTick: opts.SlackTick,
	}
	for ki, ka := range opts.KeepAlives {
		point := TenantsPolicyPoint{KeepAlive: ka}
		merged := sketch.New(opts.Alpha)
		var tenants []TenantStat
		for _, sh := range shards[ki*opts.Shards : (ki+1)*opts.Shards] {
			point.Invocations += sh.inv
			point.ColdServed += sh.cold
			point.WarmServed += sh.warm
			point.Errors += sh.errs
			point.Expirations += sh.expirations
			point.InstanceSeconds += sh.instSec
			if sh.sk.Count() > 0 {
				if err := merged.Merge(sh.sk); err != nil {
					return nil, fmt.Errorf("tenants: merging shard sketch: %w", err)
				}
			}
			if sh.virtual > point.VirtualTime {
				point.VirtualTime = sh.virtual
			}
			tenants = append(tenants, sh.tenants...)
		}
		if served := point.ColdServed + point.WarmServed; served > 0 {
			point.ColdRate = float64(point.ColdServed) / float64(served)
		}
		if merged.Count() > 0 {
			point.Latency = merged.Summarize()
		}
		if opts.Top > 0 {
			// Tenants live in exactly one shard, so the concatenation holds
			// each exactly once; sort by p99 descending, name-tie-broken.
			sort.Slice(tenants, func(i, j int) bool {
				if tenants[i].P99 != tenants[j].P99 {
					return tenants[i].P99 > tenants[j].P99
				}
				return tenants[i].Name < tenants[j].Name
			})
			if len(tenants) > opts.Top {
				tenants = tenants[:opts.Top]
			}
			point.TopTenants = tenants
		}
		res.Points = append(res.Points, point)
	}
	markPareto(res.Points)
	return res, nil
}

// markPareto flags points not dominated on minimizing both coordinates.
func markPareto(points []TenantsPolicyPoint) {
	for i := range points {
		dominated := false
		for j := range points {
			if j == i {
				continue
			}
			if points[j].ColdRate <= points[i].ColdRate &&
				points[j].InstanceSeconds <= points[i].InstanceSeconds &&
				(points[j].ColdRate < points[i].ColdRate ||
					points[j].InstanceSeconds < points[i].InstanceSeconds) {
				dominated = true
				break
			}
		}
		points[i].Pareto = !dominated
	}
}

// runTenantsShard replays this shard's slice of the population under one
// keep-alive policy. The shard seed ignores the policy index on purpose:
// every policy sees identical arrivals and execution draws, isolating the
// keep-alive knob as the only difference between frontier points.
func runTenantsShard(opts TenantsOptions, pop []tenantSpec, ka time.Duration, shardIdx int) (*tenantsShard, error) {
	cfg, err := providers.Get(opts.Provider)
	if err != nil {
		return nil, err
	}
	cfg.KeepAlive = cloud.KeepAlivePolicy{Fixed: ka}
	cfg.KeepAliveSlack = opts.SlackTick

	out := &tenantsShard{sk: sketch.New(opts.Alpha)}
	e, err := newEnvWithConfig(cfg, dist.ShardSeed(opts.Seed, shardIdx))
	if err != nil {
		return nil, fmt.Errorf("tenants shard %d: %w", shardIdx, err)
	}
	defer e.close()
	c := e.cloud
	c.SetEngineMode(opts.Engine)
	eng := e.eng

	// Tenant arrival/execution randomness derives from the shard seed under
	// per-tenant stream names, independent of the cloud's own streams.
	streams := dist.NewStreams(dist.ShardSeed(opts.Seed, shardIdx))
	noopDone := func(*cloud.Response, error) {}
	horizon := opts.Duration

	type tenantRun struct {
		name   string
		sk     *sketch.Sketch
		issued uint64
	}
	var runs []*tenantRun
	for t := shardIdx; t < len(pop); t += opts.Shards {
		spec := pop[t]
		name := spec.rec.Function
		if err := c.Deploy(cloud.FunctionSpec{
			Name:         name,
			Runtime:      cloud.RuntimePython,
			Method:       cloud.DeployZIP,
			MaxInstances: opts.MaxConcurrency,
		}); err != nil {
			return nil, fmt.Errorf("tenants shard %d: %w", shardIdx, err)
		}
		execDist, err := azuretrace.Synthesize(spec.rec)
		if err != nil {
			return nil, fmt.Errorf("tenants shard %d: %w", shardIdx, err)
		}
		tr := &tenantRun{name: name, sk: sketch.New(opts.Alpha)}
		if err := c.SetFunctionRecorder(name, tr.sk); err != nil {
			return nil, fmt.Errorf("tenants shard %d: %w", shardIdx, err)
		}
		runs = append(runs, tr)

		arrRNG := streams.Stream("tenants/arr/" + name)
		execRNG := streams.Stream("tenants/exec/" + name)
		mean := float64(spec.meanIAT)
		// Open-loop Poisson arrivals as a self-rescheduling callback chain:
		// the next arrival is independent of completions, and generation
		// stops once it would cross the window.
		var arrive func()
		arrive = func() {
			tr.issued++
			c.InvokeAsync(&cloud.Request{Fn: name, ExecTime: execDist.Sample(execRNG)}, noopDone)
			if next := time.Duration(arrRNG.ExpFloat64() * mean); eng.Now()+next < horizon {
				eng.CallAfter(next, arrive)
			}
		}
		if first := time.Duration(arrRNG.ExpFloat64() * mean); first < horizon {
			eng.CallAfter(first, arrive)
		}
	}

	// Drain to quiescence: in-flight invocations complete and idle
	// instances expire, closing each tenant's instance-seconds integral.
	eng.Run(0)
	out.virtual = eng.Now()

	for _, tr := range runs {
		tm, ok := c.FunctionMetrics(tr.name)
		if !ok {
			return nil, fmt.Errorf("tenants shard %d: %s vanished", shardIdx, tr.name)
		}
		if tm.Invocations != tr.issued {
			return nil, fmt.Errorf("tenants shard %d: %s conservation violated: issued=%d admitted=%d",
				shardIdx, tr.name, tr.issued, tm.Invocations)
		}
		out.inv += tm.Invocations
		out.cold += tm.ColdServed
		out.warm += tm.WarmServed
		out.errs += tm.Errors
		out.instSec += tm.InstanceSeconds
		if tr.sk.Count() > 0 {
			if err := out.sk.Merge(tr.sk); err != nil {
				return nil, fmt.Errorf("tenants shard %d: %w", shardIdx, err)
			}
		}
		stat := TenantStat{
			Name:        tr.name,
			Invocations: tm.Invocations,
			ColdServed:  tm.ColdServed,
			Errors:      tm.Errors,
		}
		if tr.sk.Count() > 0 {
			stat.P99 = tr.sk.Quantile(0.99)
		}
		out.tenants = append(out.tenants, stat)
	}
	out.expirations = c.Metrics().Expirations
	return out, nil
}

// WriteTenantsReport renders the frontier as a table.
func WriteTenantsReport(w io.Writer, res *TenantsResult) {
	fmt.Fprintf(w, "tenants sweep: provider=%s tenants=%d duration=%v shards=%d seed=%d slack=%v\n",
		res.Provider, res.Tenants, res.Duration, res.Shards, res.Seed, res.SlackTick)
	fmt.Fprintf(w, "%-10s %12s %9s %8s %8s %8s %14s %10s %10s %7s\n",
		"keepalive", "invocations", "colds", "cold%", "errors", "expired", "inst-seconds", "p50", "p99", "pareto")
	for _, p := range res.Points {
		pareto := ""
		if p.Pareto {
			pareto = "*"
		}
		fmt.Fprintf(w, "%-10v %12d %9d %7.3f%% %8d %8d %14.1f %10v %10v %7s\n",
			p.KeepAlive, p.Invocations, p.ColdServed, p.ColdRate*100, p.Errors, p.Expirations,
			p.InstanceSeconds, p.Latency.Median.Round(time.Millisecond),
			p.Latency.P99.Round(time.Millisecond), pareto)
	}
	for _, p := range res.Points {
		if len(p.TopTenants) == 0 {
			continue
		}
		fmt.Fprintf(w, "\nworst tenants by p99 at keepalive=%v:\n", p.KeepAlive)
		fmt.Fprintf(w, "  %-12s %12s %9s %8s %10s\n", "tenant", "invocations", "colds", "errors", "p99")
		for _, t := range p.TopTenants {
			fmt.Fprintf(w, "  %-12s %12d %9d %8d %10v\n",
				t.Name, t.Invocations, t.ColdServed, t.Errors, t.P99.Round(time.Millisecond))
		}
	}
}

// WriteTenantsJSON writes the sweep as indented JSON.
func WriteTenantsJSON(w io.Writer, res *TenantsResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// WriteTenantsCSV writes one row per frontier point.
func WriteTenantsCSV(w io.Writer, res *TenantsResult) error {
	if _, err := fmt.Fprintln(w, "keepalive_s,invocations,cold_served,warm_served,errors,expirations,cold_rate,instance_seconds,median_ms,p99_ms,pareto"); err != nil {
		return err
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, p := range res.Points {
		pareto := 0
		if p.Pareto {
			pareto = 1
		}
		if _, err := fmt.Fprintf(w, "%g,%d,%d,%d,%d,%d,%.6f,%.3f,%.3f,%.3f,%d\n",
			p.KeepAlive.Seconds(), p.Invocations, p.ColdServed, p.WarmServed, p.Errors,
			p.Expirations, p.ColdRate, p.InstanceSeconds,
			ms(p.Latency.Median), ms(p.Latency.P99), pareto); err != nil {
			return err
		}
	}
	return nil
}
