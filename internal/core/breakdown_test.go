package core

import (
	"strings"
	"testing"
	"time"
)

func TestBreakdownPlumbedThroughRun(t *testing.T) {
	h := newHarness(t)
	eps, err := h.deployer.Deploy(&StaticConfig{Provider: "sim", Functions: []FunctionConfig{{
		Name: "f", Runtime: "python3", Method: "zip",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.client.Run(eps.Endpoints, RuntimeConfig{
		Samples: 10, IAT: Duration(3 * time.Second),
		ExecTime: Duration(100 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Samples {
		if s.Breakdown.Total() != s.Latency {
			t.Fatalf("sample %d: breakdown total %v != latency %v", i, s.Breakdown.Total(), s.Latency)
		}
		if s.BilledGBSeconds <= 0 {
			t.Fatalf("sample %d: missing bill", i)
		}
	}
	if res.BilledGBSeconds <= 0 {
		t.Fatal("run bill not aggregated")
	}
}

func TestCollectBreakdowns(t *testing.T) {
	h := newHarness(t)
	eps, err := h.deployer.Deploy(&StaticConfig{Provider: "sim", Functions: []FunctionConfig{{
		Name: "f", Runtime: "python3", Method: "zip",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.client.Run(eps.Endpoints, RuntimeConfig{
		Samples: 20, IAT: Duration(3 * time.Second),
		ExecTime: Duration(50 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	bs := res.Breakdowns()
	if bs.Components["exec"].Median() != 50*time.Millisecond {
		t.Errorf("exec median = %v", bs.Components["exec"].Median())
	}
	if bs.Components["propagation"].Median() != 20*time.Millisecond {
		t.Errorf("propagation median = %v", bs.Components["propagation"].Median())
	}
	// Exactly one cold-served request (the first).
	if n := bs.Cold["cold/sandbox-boot"].Len(); n != 1 {
		t.Errorf("cold breakdown count = %d, want 1", n)
	}
	if bs.Cold["cold/sandbox-boot"].Median() != 50*time.Millisecond {
		t.Errorf("boot median = %v", bs.Cold["cold/sandbox-boot"].Median())
	}

	var sb strings.Builder
	bs.Write(&sb)
	out := sb.String()
	for _, want := range []string{"component", "exec", "propagation", "cold-start phases", "cold/image-fetch"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown table missing %q:\n%s", want, out)
		}
	}
	// Components that never contribute are omitted.
	if strings.Contains(out, "queue-handoff") {
		t.Errorf("zero component should be omitted:\n%s", out)
	}
}

func TestBuildPlanBurstyIAT(t *testing.T) {
	h := newHarness(t)
	eps := []Endpoint{{Function: "a", Provider: "sim"}}
	rc := RuntimeConfig{
		Samples: 12,
		IAT:     Duration(time.Second),
		IATDist: IATBursty,
		OnSteps: 4,
		OffIAT:  Duration(30 * time.Second),
	}
	plan, err := h.client.BuildPlan(eps, rc)
	if err != nil {
		t.Fatal(err)
	}
	// Steps 0-3 at 0,1,2,3s; gap; steps 4-7 at 33,34,35,36s; gap; ...
	want := []time.Duration{
		0, time.Second, 2 * time.Second, 3 * time.Second,
		33 * time.Second, 34 * time.Second, 35 * time.Second, 36 * time.Second,
		66 * time.Second, 67 * time.Second, 68 * time.Second, 69 * time.Second,
	}
	for i, pr := range plan {
		if pr.At != want[i] {
			t.Fatalf("request %d at %v, want %v (plan %v)", i, pr.At, want[i], plan)
		}
	}
}

func TestBurstyIATDefaults(t *testing.T) {
	rc := RuntimeConfig{Samples: 5, IAT: Duration(time.Second), IATDist: IATBursty}
	if err := rc.Validate(); err != nil {
		t.Fatal(err)
	}
	if rc.OnSteps != 10 || rc.OffIAT != Duration(10*time.Second) {
		t.Fatalf("defaults: %+v", rc)
	}
	bad := RuntimeConfig{Samples: 5, IAT: Duration(time.Second), IATDist: IATBursty, OnSteps: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for negative on_steps")
	}
}

func TestBurstyIATEndToEnd(t *testing.T) {
	h := newHarness(t)
	eps, err := h.deployer.Deploy(&StaticConfig{Provider: "sim", Functions: []FunctionConfig{{
		Name: "f", Runtime: "python3", Method: "zip",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.client.Run(eps.Endpoints, RuntimeConfig{
		Samples: 30,
		IAT:     Duration(time.Second),
		IATDist: IATBursty,
		OnSteps: 5,
		OffIAT:  Duration(20 * time.Minute), // instances expire between trains
	})
	if err != nil {
		t.Fatal(err)
	}
	// One cold start per train: 30 samples / 5 per train = 6 trains.
	if res.Colds != 6 {
		t.Fatalf("colds = %d, want 6 (one per train)", res.Colds)
	}
}

func TestRunResultTimeline(t *testing.T) {
	h := newHarness(t)
	eps, err := h.deployer.Deploy(&StaticConfig{Provider: "sim", Functions: []FunctionConfig{{
		Name: "f", Runtime: "python3", Method: "zip",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.client.Run(eps.Endpoints, RuntimeConfig{
		Samples: 20, IAT: Duration(3 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	wins := res.Timeline(6 * time.Second)
	if len(wins) != 10 {
		t.Fatalf("windows = %d, want 10 (two samples per 6s window)", len(wins))
	}
	// The first window contains the cold start; later windows are warm.
	if wins[0].Stats.Max <= wins[1].Stats.Max {
		t.Error("first window should contain the cold-start outlier")
	}
}
