package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTenantsCommand(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "tenants.json")
	csvPath := filepath.Join(dir, "tenants.csv")
	benchPath := filepath.Join(dir, "bench.json")
	code, out, errOut := run(t, "tenants",
		"-provider", "aws", "-tenants", "30", "-duration", "4m",
		"-shards", "4", "-seed", "5", "-keepalives", "1m,10m", "-top", "2",
		"-json", jsonPath, "-csv", csvPath, "-bench-json", benchPath)
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	if !strings.Contains(out, "tenants sweep:") || !strings.Contains(out, "keepalive") {
		t.Fatalf("missing report table: %q", out)
	}
	if !strings.Contains(out, "wall: ") {
		t.Fatalf("missing wall-clock line: %q", out)
	}
	if !strings.Contains(out, "worst tenants by p99") {
		t.Fatalf("missing top-tenants section: %q", out)
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Points []struct {
			Invocations uint64 `json:"invocations"`
			Pareto      bool   `json:"pareto"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].Invocations == 0 {
		t.Fatalf("bad JSON points: %+v", res.Points)
	}

	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(csv), "\n"); lines != 3 { // header + 2 points
		t.Fatalf("csv lines = %d, want 3:\n%s", lines, csv)
	}

	bench, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var bj struct {
		Invocations  uint64  `json:"invocations"`
		InvocsPerSec float64 `json:"invocations_per_sec"`
	}
	if err := json.Unmarshal(bench, &bj); err != nil {
		t.Fatal(err)
	}
	if bj.Invocations == 0 || bj.InvocsPerSec <= 0 {
		t.Fatalf("bad bench JSON: %+v", bj)
	}
}

func TestTenantsCommandBadFlags(t *testing.T) {
	if code, _, _ := run(t, "tenants", "-tenants", "0"); code == 0 {
		t.Fatal("zero tenants accepted")
	}
	if code, _, _ := run(t, "tenants", "-keepalives", "bogus"); code == 0 {
		t.Fatal("bad keepalive list accepted")
	}
	if code, _, _ := run(t, "tenants", "-provider", "nope", "-tenants", "2", "-duration", "1m"); code == 0 {
		t.Fatal("unknown provider accepted")
	}
}
