package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/stellar-repro/stellar/internal/core"
)

func testSpec() Spec {
	return Spec{
		Functions: 30,
		Horizon:   time.Hour,
		Classes: []RateClass{
			{Name: "rare", Share: 0.5, MeanIAT: 30 * time.Minute, ExecTime: 100 * time.Millisecond},
			{Name: "hot", Share: 0.5, MeanIAT: 5 * time.Second, ExecTime: 50 * time.Millisecond},
		},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	bad := []Spec{
		{},
		{Functions: 1},
		{Functions: 1, Horizon: time.Hour},
		{Functions: 1, Horizon: time.Hour, Classes: []RateClass{{Name: "x", Share: 0.2, MeanIAT: time.Second}}},
		{Functions: 1, Horizon: time.Hour, Classes: []RateClass{{Name: "x", Share: 1, MeanIAT: 0}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d passed", i)
		}
	}
}

func TestGenerateOrderingAndHorizon(t *testing.T) {
	tr, err := Generate(testSpec(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Duration
	for _, inv := range tr.Invocations {
		if inv.At < prev {
			t.Fatal("trace not time-ordered")
		}
		if inv.At >= tr.Spec.Horizon {
			t.Fatalf("invocation at %v beyond horizon %v", inv.At, tr.Spec.Horizon)
		}
		if inv.Function < 0 || inv.Function >= tr.Spec.Functions {
			t.Fatalf("function index %d out of range", inv.Function)
		}
		prev = inv.At
	}
}

func TestGenerateRatesRoughlyMatch(t *testing.T) {
	tr, err := Generate(testSpec(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	perClass := tr.InvocationsPerClass()
	counts := tr.ClassCount()
	// Hot functions fire ~720/hour each; rare ~2/hour each.
	if counts["hot"] > 0 {
		avg := float64(perClass["hot"]) / float64(counts["hot"])
		if avg < 400 || avg > 1100 {
			t.Errorf("hot class fired %.0f times per function per hour, want ~720", avg)
		}
	}
	if counts["rare"] > 0 {
		avg := float64(perClass["rare"]) / float64(counts["rare"])
		if avg > 8 {
			t.Errorf("rare class fired %.1f times per function per hour, want ~2", avg)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testSpec(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testSpec(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Invocations) != len(b.Invocations) {
		t.Fatal("non-deterministic trace size")
	}
	for i := range a.Invocations {
		if a.Invocations[i] != b.Invocations[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestPlanMapping(t *testing.T) {
	tr, err := Generate(testSpec(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]core.Endpoint, tr.Spec.Functions)
	for i := range eps {
		eps[i] = core.Endpoint{Function: "fn" + string(rune('A'+i%26)), Provider: "sim"}
	}
	plan, err := tr.Plan(eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != len(tr.Invocations) {
		t.Fatalf("plan %d != trace %d", len(plan), len(tr.Invocations))
	}
	for i, pr := range plan {
		inv := tr.Invocations[i]
		if pr.At != inv.At || pr.Endpoint.Function != eps[inv.Function].Function || pr.ExecTime != inv.ExecTime {
			t.Fatalf("plan entry %d mismatch: %+v vs %+v", i, pr, inv)
		}
	}
	if _, err := tr.Plan(eps[:2]); err == nil {
		t.Fatal("expected error for too few endpoints")
	}
}

func TestGenerateEmptyHorizonFails(t *testing.T) {
	spec := testSpec()
	spec.Horizon = time.Nanosecond
	spec.Classes = []RateClass{{Name: "glacial", Share: 1, MeanIAT: 100 * time.Hour}}
	if _, err := Generate(spec, rand.New(rand.NewSource(5))); err == nil {
		t.Fatal("expected error for invocation-free horizon")
	}
}

// Property: all generated invocations are valid for any seed and modest
// population.
func TestQuickGenerateValid(t *testing.T) {
	f := func(seed int64, fnRaw uint8) bool {
		spec := testSpec()
		spec.Functions = int(fnRaw)%20 + 1
		tr, err := Generate(spec, rand.New(rand.NewSource(seed)))
		if err != nil {
			return true // tiny populations may legitimately produce nothing
		}
		for _, inv := range tr.Invocations {
			if inv.At < 0 || inv.At >= spec.Horizon ||
				inv.Function < 0 || inv.Function >= spec.Functions {
				return false
			}
			if tr.ClassOf[inv.Function] != inv.Class {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDiurnalModulation(t *testing.T) {
	spec := Spec{
		Functions: 20,
		Horizon:   24 * time.Hour,
		Classes: []RateClass{
			{Name: "hot", Share: 1, MeanIAT: 10 * time.Second, ExecTime: time.Millisecond},
		},
		Diurnal: &Diurnal{Period: 24 * time.Hour, MinFactor: 0.1},
	}
	tr, err := Generate(spec, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	// Peak quarter (phase around pi/2 => hours 3-9) must see far more
	// traffic than the trough quarter (hours 15-21).
	peak, trough := 0, 0
	for _, inv := range tr.Invocations {
		h := inv.At.Hours()
		switch {
		case h >= 3 && h < 9:
			peak++
		case h >= 15 && h < 21:
			trough++
		}
	}
	if trough == 0 || float64(peak)/float64(trough) < 3 {
		t.Fatalf("peak/trough = %d/%d, want pronounced diurnal swing", peak, trough)
	}
}

func TestDiurnalValidation(t *testing.T) {
	spec := testSpec()
	spec.Diurnal = &Diurnal{Period: 0, MinFactor: 0.5}
	if err := spec.Validate(); err == nil {
		t.Fatal("expected error for zero period")
	}
	spec.Diurnal = &Diurnal{Period: time.Hour, MinFactor: 1.5}
	if err := spec.Validate(); err == nil {
		t.Fatal("expected error for min factor > 1")
	}
}
