package cli

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"

	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/experiments"
)

// cmdSuite runs a whole measurement campaign from a suite configuration
// file: each experiment deploys into a fresh simulated cloud, runs its load
// scenario, and reports; optional per-experiment CSVs land in -csv-dir.
func cmdSuite(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("suite", flag.ContinueOnError)
	fs.SetOutput(stdout)
	configPath := fs.String("config", "", "suite configuration file (required)")
	seed := fs.Int64("seed", 1, "random seed")
	csvDir := fs.String("csv-dir", "", "directory for per-experiment CSV files")
	breakdown := fs.Bool("breakdown", false, "print per-component latency breakdowns")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		return fmt.Errorf("suite: -config is required")
	}
	sc, err := core.LoadSuiteConfig(*configPath)
	if err != nil {
		return err
	}
	if err := sc.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "suite: %d experiments\n\n", len(sc.Experiments))
	type row struct {
		name string
		sum  string
	}
	var rows []row
	for _, exp := range sc.Experiments {
		env, err := experiments.NewEnv(exp.Static.Provider, *seed)
		if err != nil {
			return fmt.Errorf("suite %q: %w", exp.Name, err)
		}
		eps, err := env.Deployer().Deploy(&exp.Static)
		if err != nil {
			env.Close()
			return fmt.Errorf("suite %q: %w", exp.Name, err)
		}
		res, err := env.Client().Run(eps.Endpoints, exp.Runtime)
		if err != nil {
			env.Close()
			return fmt.Errorf("suite %q: %w", exp.Name, err)
		}
		fmt.Fprintf(stdout, "== %s (%s, %d endpoints)\n", exp.Name, exp.Static.Provider, len(eps.Endpoints))
		printRun(stdout, res, *breakdown)
		fmt.Fprintln(stdout)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, exp.Name+".csv")
			if err := writeCSV(path, exp.Name, res); err != nil {
				env.Close()
				return fmt.Errorf("suite %q: %w", exp.Name, err)
			}
			fmt.Fprintf(stdout, "csv written to %s\n\n", path)
		}
		rows = append(rows, row{exp.Name, res.Summary().String()})
		env.Close()
	}
	fmt.Fprintln(stdout, "== suite summary")
	for _, r := range rows {
		fmt.Fprintf(stdout, "%-28s %s\n", r.name, r.sum)
	}
	return nil
}
