package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/econ"
)

func costOpts(workers int) CostOptions {
	return CostOptions{
		Provider: "aws",
		Tenants:  24,
		Duration: 30 * time.Second,
		Shards:   4,
		Workers:  workers,
		Seed:     7,
		// Short control-loop cadence so suspend/resume actually fires
		// within the 30s window.
		Policies: []CostPolicy{
			{Name: "keepalive-1m", KeepAlive: time.Minute},
			{Name: "target-1", Autoscaler: &econ.AutoscalerConfig{
				Target: 1, TickInterval: 500 * time.Millisecond,
				ScaleDownWindow: 2 * time.Second, Suspend: true,
			}},
			{Name: "target-4-evict", Autoscaler: &econ.AutoscalerConfig{
				Target: 4, TickInterval: 500 * time.Millisecond,
				ScaleDownWindow: 2 * time.Second,
			}},
		},
		MeanIATLo: 200 * time.Millisecond,
		MeanIATHi: 2 * time.Second,
	}
}

// TestCostSweep checks the sweep's shape and the frontier invariants: every
// policy is priced under every plan, requests are conserved across plans,
// each plan marks at least one Pareto point, and the suspend policy both
// suspends and resumes.
func TestCostSweep(t *testing.T) {
	res, err := RunCost(costOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	wantPlans := econ.Plans()
	if len(wantPlans) < 2 {
		t.Fatalf("built-in plans = %d, want >= 2", len(wantPlans))
	}
	for _, p := range res.Points {
		if p.Invocations == 0 {
			t.Fatalf("%s: no invocations", p.Policy)
		}
		if p.Usage.Requests != p.Invocations {
			t.Errorf("%s: metered %d requests, admitted %d", p.Policy, p.Usage.Requests, p.Invocations)
		}
		if p.Usage.BusyGBms <= 0 {
			t.Errorf("%s: no busy usage", p.Policy)
		}
		if len(p.Plans) != len(wantPlans) {
			t.Fatalf("%s: %d plan cells, want %d", p.Policy, len(p.Plans), len(wantPlans))
		}
		for i, cell := range p.Plans {
			if cell.Plan != wantPlans[i] {
				t.Errorf("%s: plan[%d] = %s, want %s", p.Policy, i, cell.Plan, wantPlans[i])
			}
			if cell.Cost.Total <= 0 || cell.CostPerMReq <= 0 {
				t.Errorf("%s/%s: non-positive cost %+v", p.Policy, cell.Plan, cell.Cost)
			}
			if cell.P99 != p.Latency.P99 {
				t.Errorf("%s/%s: P99 %v != policy p99 %v", p.Policy, cell.Plan, cell.P99, p.Latency.P99)
			}
		}
		if p.LatencySketch() == nil || p.LatencySketch().Count() == 0 {
			t.Errorf("%s: empty latency sketch", p.Policy)
		}
	}
	for pj, plan := range wantPlans {
		any := false
		for _, p := range res.Points {
			if p.Plans[pj].Pareto {
				any = true
			}
		}
		if !any {
			t.Errorf("plan %s: no Pareto point", plan)
		}
	}

	byName := map[string]*CostPolicyPoint{}
	for i := range res.Points {
		byName[res.Points[i].Policy] = &res.Points[i]
	}
	legacy, suspend, evict := byName["keepalive-1m"], byName["target-1"], byName["target-4-evict"]
	if legacy.Suspends != 0 || legacy.Resumes != 0 {
		t.Errorf("legacy policy suspended (%d/%d)", legacy.Suspends, legacy.Resumes)
	}
	if suspend.Suspends == 0 {
		t.Errorf("target-1 never suspended")
	}
	if suspend.Usage.SuspendedGBms <= 0 {
		t.Errorf("target-1 accrued no suspended usage")
	}
	if evict.Suspends != 0 {
		t.Errorf("evict policy suspended %d instances", evict.Suspends)
	}
	if evict.Usage.SuspendedGBms != 0 {
		t.Errorf("evict policy accrued suspended usage %v", evict.Usage.SuspendedGBms)
	}
	// The aggressive scale-down policies shed idle capacity the legacy
	// keep-alive pays for.
	if suspend.Usage.IdleGBms >= legacy.Usage.IdleGBms {
		t.Errorf("target-1 idle usage %.1f not below keepalive-1m %.1f",
			suspend.Usage.IdleGBms, legacy.Usage.IdleGBms)
	}
}

// TestCostDeterminism checks the acceptance invariant directly: the whole
// serialized sweep is byte-identical at Workers=1 and Workers=8.
func TestCostDeterminism(t *testing.T) {
	render := func(workers int) string {
		res, err := RunCost(costOpts(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		WriteCostReport(&buf, res)
		if err := WriteCostJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		if err := WriteCostCSV(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(1), render(8)
	if a != b {
		t.Fatalf("Workers=1 and Workers=8 diverge:\n--- w1 ---\n%s\n--- w8 ---\n%s", a, b)
	}
}

// TestCostWorkflowApp checks the cost-per-application path: a workflow app
// deployed alongside the tenant population accrues its own usage and its
// bill scales with the plan.
func TestCostWorkflowApp(t *testing.T) {
	opts := costOpts(0)
	opts.Policies = opts.Policies[:2]
	opts.Workflow = "chain-3"
	opts.Apps = 16
	res, err := RunCost(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workflow != "chain-3" {
		t.Fatalf("workflow = %q", res.Workflow)
	}
	for _, p := range res.Points {
		if p.App == nil {
			t.Fatalf("%s: no app point", p.Policy)
		}
		if p.App.Launched != 16 {
			t.Errorf("%s: launched %d apps, want 16", p.Policy, p.App.Launched)
		}
		if p.App.Completed+p.App.Failed != p.App.Launched {
			t.Errorf("%s: app accounting %d+%d != %d", p.Policy, p.App.Completed, p.App.Failed, p.App.Launched)
		}
		if p.App.Completed == 0 {
			t.Fatalf("%s: no app completed", p.Policy)
		}
		if p.App.Usage.BusyGBms <= 0 {
			t.Errorf("%s: app accrued no busy usage", p.Policy)
		}
		if p.App.MakespanP99 <= 0 {
			t.Errorf("%s: no app makespan", p.Policy)
		}
		for _, cell := range p.Plans {
			if cell.AppTotal <= 0 || cell.AppPerKRuns <= 0 {
				t.Errorf("%s/%s: app bill %v / %v", p.Policy, cell.Plan, cell.AppTotal, cell.AppPerKRuns)
			}
			if cell.AppTotal >= cell.Cost.Total {
				t.Errorf("%s/%s: app bill %v not below fleet bill %v",
					p.Policy, cell.Plan, cell.AppTotal, cell.Cost.Total)
			}
		}
	}
	var buf bytes.Buffer
	WriteCostReport(&buf, res)
	if !strings.Contains(buf.String(), "cost per thousand runs") {
		t.Errorf("report missing app section:\n%s", buf.String())
	}
}

func TestParseCostPolicy(t *testing.T) {
	p, err := ParseCostPolicy("keepalive-90s")
	if err != nil || p.KeepAlive != 90*time.Second || p.Autoscaler != nil {
		t.Fatalf("keepalive-90s -> %+v, %v", p, err)
	}
	p, err = ParseCostPolicy("target-2")
	if err != nil || p.Autoscaler == nil || p.Autoscaler.Target != 2 || !p.Autoscaler.Suspend {
		t.Fatalf("target-2 -> %+v, %v", p, err)
	}
	p, err = ParseCostPolicy("target-0.5-evict")
	if err != nil || p.Autoscaler == nil || p.Autoscaler.Target != 0.5 || p.Autoscaler.Suspend {
		t.Fatalf("target-0.5-evict -> %+v, %v", p, err)
	}
	if err := p.Autoscaler.Validate(); err != nil {
		t.Fatalf("parsed policy invalid: %v", err)
	}
	for _, bad := range []string{"", "keepalive-", "keepalive--5m", "target-", "target-x", "target--1", "burst-3", "target-0"} {
		if _, err := ParseCostPolicy(bad); err == nil {
			t.Errorf("ParseCostPolicy(%q) accepted", bad)
		}
	}
	if len(DefaultCostPolicies()) < 3 {
		t.Fatalf("default policies = %d, want >= 3", len(DefaultCostPolicies()))
	}
}

func TestCostValidation(t *testing.T) {
	base := costOpts(0)
	for name, mutate := range map[string]func(*CostOptions){
		"no-provider":      func(o *CostOptions) { o.Provider = "" },
		"no-tenants":       func(o *CostOptions) { o.Tenants = 0 },
		"no-duration":      func(o *CostOptions) { o.Duration = 0 },
		"unnamed-policy":   func(o *CostOptions) { o.Policies = []CostPolicy{{KeepAlive: time.Minute}} },
		"duplicate-policy": func(o *CostOptions) { o.Policies = append(o.Policies, o.Policies[0]) },
		"zero-keepalive":   func(o *CostOptions) { o.Policies = []CostPolicy{{Name: "x"}} },
		"bad-autoscaler": func(o *CostOptions) {
			o.Policies = []CostPolicy{{Name: "x", Autoscaler: &econ.AutoscalerConfig{Target: -1, TickInterval: time.Second, ScaleDownWindow: time.Second}}}
		},
		"unnamed-plan":   func(o *CostOptions) { o.Plans = []econ.BillingConfig{{BusyGBmsRate: 1e-9}} },
		"duplicate-plan": func(o *CostOptions) { o.Plans = []econ.BillingConfig{{Name: "x"}, {Name: "x"}} },
		"bad-plan":       func(o *CostOptions) { o.Plans = []econ.BillingConfig{{Name: "x", BusyGBmsRate: -1}} },
		"iat-inverted":  func(o *CostOptions) { o.MeanIATLo = time.Minute; o.MeanIATHi = time.Second },
		"bad-workflow":  func(o *CostOptions) { o.Workflow = "nonsense-7" },
		"sparse-apps":   func(o *CostOptions) { o.Workflow = "chain-2"; o.Apps = 2; o.Shards = 4 },
		"neg-slacktick": func(o *CostOptions) { o.SlackTick = -1 },
	} {
		opts := base
		opts.Policies = append([]CostPolicy(nil), base.Policies...)
		mutate(&opts)
		if _, err := RunCost(opts); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
