package stress

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestParseReplyAgainstEncodingJSON round-trips the scanner against real
// encoded documents in the server's reply shape.
func TestParseReplyAgainstEncodingJSON(t *testing.T) {
	type serverReply struct {
		Function     string           `json:"function"`
		Cold         bool             `json:"cold"`
		InstanceID   int              `json:"instance_id"`
		QueueWaitNS  int64            `json:"queue_wait_ns"`
		SimLatencyNS int64            `json:"sim_latency_ns"`
		Timestamps   map[string]int64 `json:"timestamps,omitempty"`
	}
	cases := []serverReply{
		{Function: "f", Cold: true, InstanceID: 3, SimLatencyNS: 123456789},
		{Function: "g", Cold: false, SimLatencyNS: 0},
		{Function: "h", Cold: false, QueueWaitNS: 55, SimLatencyNS: -7},
		{Function: "ts", Cold: true, SimLatencyNS: 42,
			Timestamps: map[string]int64{"f.recv": 10, "f.send": 20}},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(c); err != nil {
			t.Fatal(err)
		}
		var r Reply
		if !parseReply(buf.Bytes(), &r) {
			t.Fatalf("parseReply failed on %s", buf.Bytes())
		}
		if r.Cold != c.Cold || r.SimLatencyNS != c.SimLatencyNS {
			t.Errorf("parsed %+v from %s, want cold=%t sim=%d", r, buf.Bytes(), c.Cold, c.SimLatencyNS)
		}
	}
}

func TestParseReplyMalformed(t *testing.T) {
	bad := [][]byte{
		nil,
		[]byte(``),
		[]byte(`{}`),
		[]byte(`{"cold":true}`),        // missing sim latency
		[]byte(`{"sim_latency_ns":5}`), // missing cold
		[]byte(`{"cold":maybe,"sim_latency_ns":5}`),   // bad bool
		[]byte(`{"cold":true,"sim_latency_ns":fast}`), // bad int
		[]byte(`{"cold":true,"sim_latency_ns":}`),     // empty int
		[]byte(`plain text error body`),
	}
	for _, b := range bad {
		var r Reply
		if parseReply(b, &r) {
			t.Errorf("parseReply accepted %q", b)
		}
	}
}

func TestParseIntEdges(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"42,", 42, true}, // stops at the delimiter
		{"-17}", -17, true},
		{"", 0, false},
		{"-", 0, false},
		{"x1", 0, false},
	}
	for _, c := range cases {
		got, ok := parseInt([]byte(c.in))
		if ok != c.ok || got != c.want {
			t.Errorf("parseInt(%q) = (%d, %t), want (%d, %t)", c.in, got, ok, c.want, c.ok)
		}
	}
}
