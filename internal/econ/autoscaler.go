// Package econ models the provider control plane's economic machinery: a
// target-concurrency autoscaler (desired instances = ceil(inflight/target)
// with panic-mode bursts and asymmetric scale-up/scale-down windows), and a
// per-ms billing meter that integrates busy/idle/suspended GB-time plus
// per-request fees in virtual time. Together they turn the simulator's
// keep-alive knob into an explicit cost/latency trade-off: experiments can
// report cost-per-million-requests alongside TMR, the pairing SeBS makes a
// first-class benchmark metric.
//
// The package is pure decision logic and accounting — it never touches the
// DES engine. internal/cloud drives it from the instance-lifecycle seams
// (admission, park-idle, keep-alive/tick expiry) so that a nil config
// leaves every existing schedule byte-identical.
package econ

import (
	"fmt"
	"math"
	"time"
)

// AutoscalerConfig parameterizes the target-concurrency autoscaler. The
// shape follows Knative's KPA: desired capacity tracks observed in-flight
// concurrency divided by the per-instance target, scale-up applies
// immediately, scale-down waits for the demand to stay low across a full
// window, and a burst that overwhelms current capacity enters panic mode,
// during which the fleet never scales down.
type AutoscalerConfig struct {
	// Target is the per-instance concurrency target: desired instances =
	// ceil(inflight / Target). Must be positive and finite.
	Target float64
	// TickInterval is the evaluation cadence of the scale controller in
	// virtual time. Scale-up also triggers on demand (request arrival), so
	// the tick mostly drives scale-down and panic-exit decisions.
	TickInterval time.Duration
	// ScaleDownWindow is how long demand must stay below the current
	// capacity before surplus instances are removed: the controller scales
	// down to the maximum desired capacity observed over this window, so
	// short dips never kill instances a burst will want back.
	ScaleDownWindow time.Duration
	// PanicFactor enters panic mode when instantaneous desired capacity
	// reaches PanicFactor x current capacity (default 2; values < 1
	// disable panic mode entirely).
	PanicFactor float64
	// PanicWindow is how long panic mode persists after the last
	// panic-triggering observation (default 6 x TickInterval).
	PanicWindow time.Duration
	// MaxScaleUpStep caps instances added per evaluation (0 = unlimited).
	MaxScaleUpStep int
	// MaxScaleDownStep caps instances removed per tick (0 = unlimited).
	MaxScaleDownStep int
	// Suspend selects what happens to surplus instances on scale-down:
	// true parks them in the suspended state (resume latency well below a
	// cold boot, billed at the plan's reduced suspended rate); false
	// evicts them outright, as a pure keep-alive provider would.
	Suspend bool
}

// Validate reports configuration errors.
func (c *AutoscalerConfig) Validate() error {
	if math.IsNaN(c.Target) || math.IsInf(c.Target, 0) || c.Target <= 0 {
		return fmt.Errorf("econ: autoscaler target must be positive and finite, got %v", c.Target)
	}
	if c.TickInterval <= 0 {
		return fmt.Errorf("econ: autoscaler tick interval must be positive, got %v", c.TickInterval)
	}
	if c.ScaleDownWindow < c.TickInterval {
		return fmt.Errorf("econ: scale-down window %v below tick interval %v", c.ScaleDownWindow, c.TickInterval)
	}
	if math.IsNaN(c.PanicFactor) || math.IsInf(c.PanicFactor, 0) || c.PanicFactor < 0 {
		return fmt.Errorf("econ: panic factor must be finite and non-negative, got %v", c.PanicFactor)
	}
	if c.PanicWindow < 0 {
		return fmt.Errorf("econ: negative panic window %v", c.PanicWindow)
	}
	if c.MaxScaleUpStep < 0 || c.MaxScaleDownStep < 0 {
		return fmt.Errorf("econ: negative scale step bounds")
	}
	return nil
}

// withDefaults fills derived defaults without mutating the original.
func (c AutoscalerConfig) withDefaults() AutoscalerConfig {
	if c.PanicFactor == 0 {
		c.PanicFactor = 2
	}
	if c.PanicWindow == 0 {
		c.PanicWindow = 6 * c.TickInterval
	}
	return c
}

// Decision is one autoscaler evaluation's outcome.
type Decision struct {
	// Desired is the instance count the controller wants right now,
	// after windowing and panic rules (before any tenant caps the caller
	// applies).
	Desired int
	// Panic reports whether the controller is in panic mode.
	Panic bool
}

// Autoscaler is the per-function scale controller state: a ring of desired
// samples covering the scale-down window, plus panic-mode state. All state
// is fixed-size and reused, so Observe and Tick allocate nothing.
type Autoscaler struct {
	cfg AutoscalerConfig

	// ring holds the max desired capacity observed in each tick slot of
	// the scale-down window; slot identity is the absolute tick index so
	// stale slots are lazily cleared as the window advances.
	ring     []int
	ringTick []int64
	lastTick int64 // last absolute tick index observed (-1 = fresh)

	inPanic    bool
	panicSince int64 // virtual ns of the last panic-triggering observation
	panicPeak  int   // max desired seen during the current panic
}

// NewAutoscaler builds a controller for a validated config. The ring is
// sized once from ScaleDownWindow/TickInterval; all later operations are
// allocation-free.
func NewAutoscaler(cfg AutoscalerConfig) *Autoscaler {
	cfg = cfg.withDefaults()
	slots := int(cfg.ScaleDownWindow / cfg.TickInterval)
	if slots < 1 {
		slots = 1
	}
	a := &Autoscaler{
		cfg:      cfg,
		ring:     make([]int, slots),
		ringTick: make([]int64, slots),
	}
	a.Reset()
	return a
}

// Config returns the controller's effective (defaults-filled) config.
func (a *Autoscaler) Config() AutoscalerConfig { return a.cfg }

// Reset clears all window and panic state, as after a fresh deploy.
func (a *Autoscaler) Reset() {
	for i := range a.ring {
		a.ring[i] = 0
		a.ringTick[i] = -1
	}
	a.lastTick = -1
	a.inPanic = false
	a.panicSince = 0
	a.panicPeak = 0
}

// rawDesired is the instantaneous desired capacity for an observed
// in-flight concurrency.
func (a *Autoscaler) rawDesired(inflight int) int {
	if inflight <= 0 {
		return 0
	}
	return int(math.Ceil(float64(inflight) / a.cfg.Target))
}

// record merges a desired sample into the tick slot covering nowNS,
// lazily clearing slots the window has advanced past.
func (a *Autoscaler) record(nowNS int64, desired int) {
	tick := nowNS / int64(a.cfg.TickInterval)
	slot := int(tick % int64(len(a.ring)))
	if a.ringTick[slot] != tick {
		a.ringTick[slot] = tick
		a.ring[slot] = desired
	} else if desired > a.ring[slot] {
		a.ring[slot] = desired
	}
	if tick > a.lastTick {
		a.lastTick = tick
	}
}

// windowMax is the maximum desired capacity across live window slots.
func (a *Autoscaler) windowMax(nowNS int64) int {
	tick := nowNS / int64(a.cfg.TickInterval)
	lo := tick - int64(len(a.ring)) + 1
	max := 0
	for i, t := range a.ringTick {
		if t >= lo && t <= tick && a.ring[i] > max {
			max = a.ring[i]
		}
	}
	return max
}

// updatePanic enters, sustains, or exits panic mode for one observation.
func (a *Autoscaler) updatePanic(nowNS int64, raw, current int) {
	if a.cfg.PanicFactor < 1 {
		return
	}
	base := current
	if base < 1 {
		base = 1
	}
	if raw > current && float64(raw) >= a.cfg.PanicFactor*float64(base) {
		if !a.inPanic {
			a.inPanic = true
			a.panicPeak = 0
		}
		a.panicSince = nowNS
	}
	if a.inPanic {
		if raw > a.panicPeak {
			a.panicPeak = raw
		}
		if nowNS-a.panicSince >= int64(a.cfg.PanicWindow) {
			a.inPanic = false
			a.panicPeak = 0
		}
	}
}

// eval is the shared evaluation: record the observation, update panic
// state, and produce the windowed decision.
func (a *Autoscaler) eval(nowNS int64, inflight, current int, tick bool) Decision {
	raw := a.rawDesired(inflight)
	a.record(nowNS, raw)
	a.updatePanic(nowNS, raw, current)
	desired := a.windowMax(nowNS)
	if a.inPanic {
		// Panic mode: never below the current capacity (no scale-down),
		// and at least the panic peak, so a burst's full demand sticks
		// until the panic window drains.
		if a.panicPeak > desired {
			desired = a.panicPeak
		}
		if current > desired {
			desired = current
		}
	}
	if desired > current && a.cfg.MaxScaleUpStep > 0 {
		if step := current + a.cfg.MaxScaleUpStep; desired > step {
			desired = step
		}
	}
	if tick && desired < current && a.cfg.MaxScaleDownStep > 0 {
		if floor := current - a.cfg.MaxScaleDownStep; desired < floor {
			desired = floor
		}
	}
	return Decision{Desired: desired, Panic: a.inPanic}
}

// Observe is the demand-path evaluation, called when a request finds no
// idle instance: it folds the instantaneous demand into the current window
// slot and returns the (possibly panic-boosted) desired capacity. Callers
// scale up toward the decision but never down — scale-down is Tick's job.
func (a *Autoscaler) Observe(nowNS int64, inflight, current int) Decision {
	return a.eval(nowNS, inflight, current, false)
}

// Tick is the periodic evaluation: identical to Observe but additionally
// authoritative for scale-down (the returned Desired may drop below
// current once the scale-down window has drained, subject to
// MaxScaleDownStep).
func (a *Autoscaler) Tick(nowNS int64, inflight, current int) Decision {
	return a.eval(nowNS, inflight, current, true)
}
