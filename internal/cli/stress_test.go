package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/stellar-repro/stellar/internal/results"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestStressCommand runs a short fixed-rate stress run against the
// in-process server, with the DES twin and save/csv outputs enabled.
func TestStressCommand(t *testing.T) {
	dir := t.TempDir()
	savePath := filepath.Join(dir, "stress.json")
	csvPath := filepath.Join(dir, "stress.csv")
	code, out, errOut := run(t, "stress",
		"-provider", "google", "-arrival", "fixed", "-rate", "2000",
		"-n", "400", "-workers", "2", "-scale", "100000", "-seed", "7",
		"-save", savePath, "-csv", csvPath)
	if code != 0 {
		t.Fatalf("code=%d err=%q out=%q", code, errOut, out)
	}
	for _, want := range []string{
		"planned arrivals: 400",
		"open-loop (CO-safe)",
		"latency (intended-time):",
		"DES twin",
		"sketches saved to",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stress output missing %q:\n%s", want, out)
		}
	}

	rec, err := results.Load(savePath)
	if err != nil {
		t.Fatalf("load saved record: %v", err)
	}
	if rec.Sketch == nil || rec.ServiceSketch == nil || rec.SendLagSketch == nil {
		t.Errorf("saved record missing sketches: %+v", rec)
	}
	if rec.Name != "stress" {
		t.Errorf("saved name = %q, want stress", rec.Name)
	}

	csv := readFile(t, csvPath)
	if !strings.HasPrefix(csv, "series,latency_ns,cdf") {
		t.Errorf("csv header wrong: %q", firstLine(csv))
	}
	if !strings.Contains(csv, "intended,") || !strings.Contains(csv, "service,") {
		t.Errorf("csv missing series:\n%s", firstLine(csv))
	}
}

// TestStressCommandNoTwin skips the DES comparison.
func TestStressCommandNoTwin(t *testing.T) {
	code, out, errOut := run(t, "stress",
		"-provider", "google", "-arrival", "fixed", "-rate", "2000",
		"-n", "200", "-workers", "2", "-scale", "100000", "-no-twin")
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	if strings.Contains(out, "DES twin") {
		t.Errorf("no-twin output still has the DES block:\n%s", out)
	}
}

// TestStressCommandBadFlags exercises the validation paths.
func TestStressCommandBadFlags(t *testing.T) {
	cases := [][]string{
		{"stress", "-arrival", "uniform", "-n", "10"},
		{"stress", "-client", "quic", "-n", "10"},
		{"stress", "-rate", "0", "-n", "10"},
		{"stress", "-provider", "nope", "-n", "10"},
		{"stress", "-url", "https://example.com/fn/f", "-n", "10"},
	}
	for _, args := range cases {
		code, _, errOut := run(t, args...)
		if code == 0 {
			t.Errorf("stress %v succeeded, want error", args[1:])
		}
		if errOut == "" {
			t.Errorf("stress %v produced no error output", args[1:])
		}
	}
}
