package experiments

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/trace"
)

func traceOpts(n uint64) TraceOptions {
	return TraceOptions{
		Provider:    "aws",
		Invocations: n,
		Shards:      4,
		Seed:        7,
		IAT:         20 * time.Millisecond,
		Burst:       2,
		Trace:       trace.Config{SampleRate: 1, SlowestK: 8},
	}
}

// TestTraceRunAttributionSumsToLatency pins the core tentpole invariant at
// the experiment level: with sample-everything tracing, every successful
// request comes back as a trace, every trace validates (top-level spans tile
// the request window exactly), and the traced totals match the latency
// sample one-for-one.
func TestTraceRunAttributionSumsToLatency(t *testing.T) {
	res, err := RunTrace(traceOpts(2_000))
	if err != nil {
		t.Fatal(err)
	}
	succeeded := res.Invocations - res.Errors
	if got := uint64(len(res.Traces)) + res.Dropped; got != succeeded {
		t.Fatalf("retained %d + dropped %d != %d succeeded", len(res.Traces), res.Dropped, succeeded)
	}
	// Multiset of trace totals must equal the multiset of recorded latencies
	// (when nothing was dropped, which holds here: default ring 8192/shard).
	if res.Dropped != 0 {
		t.Fatalf("ring dropped %d traces at this scale", res.Dropped)
	}
	lats := make(map[time.Duration]int)
	for _, v := range res.Latencies.Values() {
		lats[v]++
	}
	for _, r := range res.Traces {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		tot := time.Duration(r.Total())
		if lats[tot] == 0 {
			t.Fatalf("trace total %v not present in the latency sample", tot)
		}
		lats[tot]--
	}
	a := res.Attribution(nil)
	if a == nil {
		t.Fatal("no attribution over a full sample")
	}
	for i := range a.Quantiles {
		var sum float64
		for _, st := range a.Stages {
			sum += st.Share[i]
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("p%g stage shares sum to %f, want 1", a.Quantiles[i]*100, sum)
		}
	}
}

// TestTraceDeterministicAcrossWorkers: traces, counters, and attribution are
// byte-identical at Workers=1 and Workers=8 — the repo-wide determinism
// contract extended to the tracing path.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *TraceResult {
		opts := traceOpts(1_600)
		opts.Workers = workers
		res, err := RunTrace(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)

	if serial.Colds != parallel.Colds || serial.Errors != parallel.Errors ||
		serial.Dropped != parallel.Dropped || serial.VirtualTime != parallel.VirtualTime {
		t.Fatalf("counters diverge across workers")
	}
	enc := func(r *TraceResult) string {
		b, err := json.Marshal(r.Traces)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := enc(serial), enc(parallel); a != b {
		t.Fatal("merged traces differ across workers")
	}
	var wa, wb strings.Builder
	serial.Attribution(nil).Write(&wa)
	parallel.Attribution(nil).Write(&wb)
	if wa.String() != wb.String() {
		t.Fatal("attribution reports differ across workers")
	}
}

// TestTraceSamplingReducesRetention: a 10% head-sampling run keeps roughly a
// tenth of the traces plus the slowest-K floor, never more than sampled-rate
// would plausibly allow.
func TestTraceSamplingReducesRetention(t *testing.T) {
	opts := traceOpts(4_000)
	opts.Trace = trace.Config{SampleRate: 0.1, SlowestK: 4}
	res, err := RunTrace(opts)
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Traces)
	if n < 200 || n > 800 {
		t.Fatalf("retained %d traces at 10%% over 4000, want roughly 400", n)
	}
	slow := 0
	for _, r := range res.Traces {
		if r.Slow {
			slow++
		}
	}
	if want := opts.Trace.SlowestK * opts.Shards; slow != want {
		t.Fatalf("retained %d slow-marked traces, want %d (K per shard)", slow, want)
	}
}

// TestTraceOptionValidation: nonsense configurations fail fast.
func TestTraceOptionValidation(t *testing.T) {
	for _, opts := range []TraceOptions{
		{Invocations: 100, Trace: trace.Config{SampleRate: 1}},                           // no provider
		{Provider: "aws", Trace: trace.Config{SampleRate: 1}},                            // no invocations
		{Provider: "aws", Invocations: 2, Shards: 4, Trace: trace.Config{SampleRate: 1}}, // more shards than work
		{Provider: "aws", Invocations: 100},                                              // sampler disabled
		{Provider: "aws", Invocations: 100, Trace: trace.Config{SampleRate: 2}},          // bad rate
		{Provider: "no-such-cloud", Invocations: 100, Trace: trace.Config{SampleRate: 1}},
	} {
		if _, err := RunTrace(opts); err == nil {
			t.Fatalf("RunTrace(%+v) accepted invalid options", opts)
		}
	}
}

// TestTraceReportOutput smoke-checks the writer over one small run.
func TestTraceReportOutput(t *testing.T) {
	res, err := RunTrace(traceOpts(800))
	if err != nil {
		t.Fatal(err)
	}
	var report strings.Builder
	WriteTraceReport(&report, res)
	for _, want := range []string{
		"provider=aws", "traces: retained=", "tail attribution",
		"queue-wait share", "service share", "p99",
	} {
		if !strings.Contains(report.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, report.String())
		}
	}
}
