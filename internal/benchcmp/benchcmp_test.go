package benchcmp

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

const sampleOld = `goos: linux
goarch: amd64
pkg: example/p
BenchmarkWarmInvoke-8     	  500000	      2000 ns/op	       0 B/op	       0 allocs/op
BenchmarkWarmInvoke-8     	  500000	      2200 ns/op	       0 B/op	       0 allocs/op
BenchmarkWarmInvoke-8     	  500000	      2100 ns/op	       0 B/op	       0 allocs/op
BenchmarkColdInvoke-8     	    1000	   1000000 ns/op	    4096 B/op	      12 allocs/op
BenchmarkColdInvoke-8     	    1000	   1100000 ns/op	    4096 B/op	      12 allocs/op
PASS
`

func TestParseMediansBasics(t *testing.T) {
	got, err := ParseMedians(strings.NewReader(sampleOld))
	if err != nil {
		t.Fatal(err)
	}
	warm := got["BenchmarkWarmInvoke"]
	if warm.Runs != 3 || warm.NsPerOp != 2100 {
		t.Fatalf("warm median: %+v", warm)
	}
	if !warm.HasAllocs || warm.AllocsPerOp != 0 {
		t.Fatalf("warm allocs: %+v", warm)
	}
	cold := got["BenchmarkColdInvoke"]
	if cold.Runs != 2 || cold.NsPerOp != 1050000 || cold.AllocsPerOp != 12 {
		t.Fatalf("cold median: %+v", cold)
	}
}

func TestParseMediansNoBenchmarks(t *testing.T) {
	if _, err := ParseMedians(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("accepted output with no benchmark lines")
	}
}

func TestParseMediansWithoutBenchmem(t *testing.T) {
	got, err := ParseMedians(strings.NewReader("BenchmarkX-4  100  50 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if b := got["BenchmarkX"]; b.HasAllocs || b.NsPerOp != 50 {
		t.Fatalf("parsed: %+v", b)
	}
}

// synth renders bench output where every benchmark runs at the given ns/op.
func synth(names []string, ns map[string]float64, allocs map[string]float64) string {
	var sb strings.Builder
	for _, n := range names {
		fmt.Fprintf(&sb, "%s-8  1000  %.0f ns/op  0 B/op  %.0f allocs/op\n", n, ns[n], allocs[n])
	}
	return sb.String()
}

func mustParse(t *testing.T, s string) map[string]Bench {
	t.Helper()
	m, err := ParseMedians(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGatePassesOnNoise: small, balanced movement stays under the 15% gate.
func TestGatePassesOnNoise(t *testing.T) {
	names := []string{"BenchmarkA", "BenchmarkB", "BenchmarkC"}
	old := mustParse(t, synth(names,
		map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200, "BenchmarkC": 300},
		map[string]float64{}))
	new := mustParse(t, synth(names,
		map[string]float64{"BenchmarkA": 105, "BenchmarkB": 190, "BenchmarkC": 310},
		map[string]float64{}))
	c, err := Compare(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Gate(15); err != nil {
		t.Fatalf("noise tripped the gate: %v", err)
	}
}

// TestGateFailsOnSeededRegression: one benchmark made 2x slower pushes the
// 3-benchmark geomean past +15% (2^(1/3) = 1.26) and must fail the gate —
// the synthetic regression the CI job's logic is verified against.
func TestGateFailsOnSeededRegression(t *testing.T) {
	names := []string{"BenchmarkA", "BenchmarkB", "BenchmarkC"}
	base := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200, "BenchmarkC": 300}
	old := mustParse(t, synth(names, base, map[string]float64{}))
	regressed := map[string]float64{"BenchmarkA": 200, "BenchmarkB": 200, "BenchmarkC": 300}
	new := mustParse(t, synth(names, regressed, map[string]float64{}))
	c, err := Compare(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Pow(2, 1.0/3); math.Abs(c.Geomean-want) > 1e-9 {
		t.Fatalf("geomean = %v, want %v", c.Geomean, want)
	}
	if err := c.Gate(15); err == nil || !strings.Contains(err.Error(), "geomean") {
		t.Fatalf("seeded 2x regression passed the gate: %v", err)
	}
	// The same comparison passes a looser 30% gate.
	if err := c.Gate(30); err != nil {
		t.Fatalf("30%% gate: %v", err)
	}
}

// TestGateFailsOnAllocRegression: a zero-alloc path that starts allocating
// fails regardless of timing, even with the time gate disabled.
func TestGateFailsOnAllocRegression(t *testing.T) {
	names := []string{"BenchmarkHot"}
	old := mustParse(t, synth(names,
		map[string]float64{"BenchmarkHot": 100}, map[string]float64{"BenchmarkHot": 0}))
	new := mustParse(t, synth(names,
		map[string]float64{"BenchmarkHot": 100}, map[string]float64{"BenchmarkHot": 1}))
	c, err := Compare(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Gate(-1); err == nil || !strings.Contains(err.Error(), "zero-alloc") {
		t.Fatalf("alloc regression passed: %v", err)
	}
	// An already-allocating path growing is NOT the zero-alloc gate's job.
	old2 := mustParse(t, synth(names,
		map[string]float64{"BenchmarkHot": 100}, map[string]float64{"BenchmarkHot": 5}))
	c2, err := Compare(old2, new)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Gate(-1); err != nil {
		t.Fatalf("5->1 allocs tripped the zero-alloc gate: %v", err)
	}
}

// TestCompareSurfacesUnmatched: renamed or deleted benchmarks are reported,
// not silently dropped from the geomean.
func TestCompareSurfacesUnmatched(t *testing.T) {
	old := mustParse(t, "BenchmarkA-8  1  100 ns/op\nBenchmarkGone-8  1  100 ns/op\n")
	new := mustParse(t, "BenchmarkA-8  1  100 ns/op\nBenchmarkNew-8  1  100 ns/op\n")
	c, err := Compare(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "BenchmarkGone" {
		t.Fatalf("OnlyOld = %v", c.OnlyOld)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "BenchmarkNew" {
		t.Fatalf("OnlyNew = %v", c.OnlyNew)
	}
	var sb strings.Builder
	c.Write(&sb)
	for _, want := range []string{"geomean", "only in old: BenchmarkGone", "only in new: BenchmarkNew"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, sb.String())
		}
	}
}

// TestCompareDisjointSetsError: nothing in common is an error, not a pass.
func TestCompareDisjointSetsError(t *testing.T) {
	old := mustParse(t, "BenchmarkA-8  1  100 ns/op\n")
	new := mustParse(t, "BenchmarkB-8  1  100 ns/op\n")
	if _, err := Compare(old, new); err == nil {
		t.Fatal("disjoint sets compared successfully")
	}
}

// TestGateBudgets: absolute allocs/op ceilings checked against one set —
// missing benchmarks and missing -benchmem data fail, never silently pass.
func TestGateBudgets(t *testing.T) {
	set := mustParse(t,
		"BenchmarkStressClient-8  300  6900 ns/op  0 B/op  0 allocs/op\n"+
			"BenchmarkChatty-8  300  100 ns/op  512 B/op  9 allocs/op\n"+
			"BenchmarkNoMem-8  300  100 ns/op\n")

	if err := GateBudgets(set, map[string]float64{"BenchmarkStressClient": 2}); err != nil {
		t.Fatalf("0 allocs/op failed a budget of 2: %v", err)
	}
	if err := GateBudgets(set, map[string]float64{"BenchmarkChatty": 2}); err == nil {
		t.Fatal("9 allocs/op passed a budget of 2")
	} else if !strings.Contains(err.Error(), "exceeds budget") {
		t.Fatalf("wrong failure: %v", err)
	}
	if err := GateBudgets(set, map[string]float64{"BenchmarkVanished": 2}); err == nil {
		t.Fatal("missing benchmark passed its budget gate")
	} else if !strings.Contains(err.Error(), "not present") {
		t.Fatalf("wrong failure: %v", err)
	}
	if err := GateBudgets(set, map[string]float64{"BenchmarkNoMem": 2}); err == nil {
		t.Fatal("benchmark without -benchmem data passed its budget gate")
	} else if !strings.Contains(err.Error(), "benchmem") {
		t.Fatalf("wrong failure: %v", err)
	}
	// Multiple budgets: every violation is reported, sorted by name.
	err := GateBudgets(set, map[string]float64{
		"BenchmarkChatty": 2, "BenchmarkVanished": 2, "BenchmarkStressClient": 2,
	})
	if err == nil {
		t.Fatal("mixed budgets passed")
	}
	if !strings.Contains(err.Error(), "2 alloc-budget failure(s)") {
		t.Fatalf("want both failures counted: %v", err)
	}
}
