// Keepalive: explore the instance keep-alive policy design space that the
// paper points at via Shahrad et al. (§VIII): how long should a provider
// keep idle instances alive? Longer keep-alives avoid cold starts (better
// tail latency) but hold memory on workers (higher provider cost).
//
// The example drives an Azure-trace-shaped workload (most functions rare,
// a few hot — internal/workload) against the simulated AWS profile with the
// keep-alive duration swept from 30 seconds to 60 minutes, and reports the
// cold-start fraction, the p99 latency, and the provisioned
// instance-seconds per invocation at each setting.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/experiments"
	"github.com/stellar-repro/stellar/internal/providers"
	"github.com/stellar-repro/stellar/internal/workload"
)

func main() {
	spec := workload.DefaultSpec()
	keepAlives := []time.Duration{
		30 * time.Second, 2 * time.Minute, 10 * time.Minute, 30 * time.Minute, time.Hour,
	}

	fmt.Printf("workload: %d functions over %v (Azure-trace-shaped population)\n",
		spec.Functions, spec.Horizon)
	fmt.Printf("%-12s %14s %12s %12s %20s\n",
		"keep-alive", "cold-starts", "p50", "p99", "inst-sec/invocation")

	for _, ka := range keepAlives {
		cfg := providers.MustGet("aws")
		cfg.Name = "aws" // keep the provider name stable for the deployer
		cfg.KeepAlive.Fixed = ka

		env, err := experiments.NewEnvFromConfig(cfg, 9)
		if err != nil {
			log.Fatal(err)
		}
		// One deployed function per population member.
		eps, err := env.Deployer().Deploy(&core.StaticConfig{
			Provider: "aws",
			Functions: []core.FunctionConfig{{
				Name: "wl", Runtime: "python3", Method: "zip", Replicas: spec.Functions,
			}},
		})
		if err != nil {
			log.Fatal(err)
		}
		trace, err := workload.Generate(spec, dist.NewStreams(9).Stream("trace"))
		if err != nil {
			log.Fatal(err)
		}
		plan, err := trace.Plan(eps.Endpoints)
		if err != nil {
			log.Fatal(err)
		}
		res, err := env.Client().RunPlan(plan, 0)
		if err != nil {
			log.Fatal(err)
		}
		coldFrac := float64(res.Colds) / float64(res.Latencies.Len())
		instSecPerInv := env.Cloud().InstanceSeconds() / float64(res.Latencies.Len())
		fmt.Printf("%-12v %7d (%4.1f%%) %12v %12v %20.2f\n",
			ka, res.Colds, coldFrac*100,
			res.Latencies.Median().Round(time.Millisecond),
			res.Latencies.P99().Round(time.Millisecond),
			instSecPerInv)
		env.Close()
	}

	fmt.Println("\nlonger keep-alives trade provider memory (instance-seconds) for")
	fmt.Println("fewer cold starts and a flatter tail — the fixed 10-minute policy the")
	fmt.Println("paper observed on AWS sits in the middle of this trade-off curve.")
}
