package cli

import (
	"flag"
	"fmt"
	"io"

	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/httpfaas"
	"github.com/stellar-repro/stellar/internal/providers"
)

// SimMain dispatches the stellar-sim CLI: it serves a simulated provider as
// live HTTP endpoints until stop fires (the main wires stop to SIGINT; tests
// pass their own channel). ready, when non-nil, receives the base URL once
// the server listens.
func SimMain(args []string, stdout, stderr io.Writer, stop <-chan struct{}, ready chan<- string) int {
	fs := flag.NewFlagSet("stellar-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	provider := fs.String("provider", "aws", "provider profile to simulate")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	scale := fs.Float64("scale", 1, "time compression (10 = 10 virtual seconds per wall second)")
	staticPath := fs.String("static", "", "static function configuration to deploy at startup")
	endpointsPath := fs.String("endpoints", "", "endpoints file to write after deployment")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := runSim(*provider, *addr, *scale, *staticPath, *endpointsPath, *seed, stdout, stop, ready); err != nil {
		fmt.Fprintln(stderr, "stellar-sim:", err)
		return 1
	}
	return 0
}

func runSim(provider, addr string, scale float64, staticPath, endpointsPath string,
	seed int64, stdout io.Writer, stop <-chan struct{}, ready chan<- string) error {
	cfg, err := providers.Get(provider)
	if err != nil {
		return err
	}
	srv, err := httpfaas.NewServer(cfg, seed, scale)
	if err != nil {
		return err
	}
	if err := srv.Start(addr); err != nil {
		return err
	}
	defer srv.Stop()
	fmt.Fprintf(stdout, "serving simulated %s at %s (time scale %gx)\n", provider, srv.BaseURL(), scale)

	if staticPath != "" {
		sc, err := core.LoadStaticConfig(staticPath)
		if err != nil {
			return err
		}
		deployer := core.NewDeployer(srv.Provider())
		sc.Provider = provider
		eps, err := deployer.Deploy(sc)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "deployed %d endpoints\n", len(eps.Endpoints))
		for _, ep := range eps.Endpoints {
			fmt.Fprintln(stdout, " ", ep.URL)
		}
		if endpointsPath != "" {
			if err := eps.Save(endpointsPath); err != nil {
				return err
			}
			fmt.Fprintln(stdout, "endpoints written to", endpointsPath)
		}
	}
	if ready != nil {
		ready <- srv.BaseURL()
	}
	<-stop
	fmt.Fprintln(stdout, "shutting down")
	return nil
}
