package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/stellar-repro/stellar/internal/results"
)

func TestCostCommand(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "cost.json")
	csvPath := filepath.Join(dir, "cost.csv")
	benchPath := filepath.Join(dir, "bench.json")
	savePath := filepath.Join(dir, "point.json")
	code, out, errOut := run(t, "cost",
		"-provider", "aws", "-tenants", "24", "-duration", "30s",
		"-shards", "4", "-seed", "5",
		"-policies", "keepalive-1m,target-1,target-4-evict",
		"-iat-lo", "200ms", "-iat-hi", "2s",
		"-json", jsonPath, "-csv", csvPath, "-bench-json", benchPath,
		"-save", savePath, "-save-policy", "target-1", "-name", "sweep")
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	if !strings.Contains(out, "cost sweep:") || !strings.Contains(out, "$/Mreq") {
		t.Fatalf("missing report table: %q", out)
	}
	if !strings.Contains(out, "wall: ") {
		t.Fatalf("missing wall-clock line: %q", out)
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Points []struct {
			Policy string `json:"policy"`
			Plans  []struct {
				Plan        string  `json:"plan"`
				CostPerMReq float64 `json:"cost_per_mreq"`
			} `json:"plans"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 || len(res.Points[0].Plans) != 2 {
		t.Fatalf("bad JSON shape: %+v", res.Points)
	}
	if res.Points[0].Plans[0].CostPerMReq <= 0 {
		t.Fatalf("no cost in JSON: %+v", res.Points[0])
	}

	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(csv), "\n"); lines != 7 { // header + 3 policies x 2 plans
		t.Fatalf("csv lines = %d, want 7:\n%s", lines, csv)
	}

	bench, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var bj struct {
		Policies     int     `json:"policies"`
		Plans        int     `json:"plans"`
		Invocations  uint64  `json:"invocations"`
		InvocsPerSec float64 `json:"invocations_per_sec"`
	}
	if err := json.Unmarshal(bench, &bj); err != nil {
		t.Fatal(err)
	}
	if bj.Policies != 3 || bj.Plans != 2 || bj.Invocations == 0 || bj.InvocsPerSec <= 0 {
		t.Fatalf("bad bench JSON: %+v", bj)
	}

	rec, err := results.Load(savePath)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != "sweep/target-1" || rec.Sketch == nil || rec.BilledGBSeconds <= 0 {
		t.Fatalf("bad saved record: name=%q sketch=%v gbs=%v", rec.Name, rec.Sketch != nil, rec.BilledGBSeconds)
	}
}

// TestCostCommandEconConfig drives the econ config loader end to end: a
// file-defined autoscaler joins the sweep as policy "custom" and a
// file-defined plan becomes a pricing column.
func TestCostCommandEconConfig(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "econ.json")
	if err := os.WriteFile(cfgPath, []byte(`{
		"autoscaler": {"target": 2, "tick_interval": "500ms", "scale_down_window": "2s", "suspend": true},
		"billing": {"name": "flatrate", "busy_gbms_rate": 1e-8, "per_request_fee": 1e-7}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "cost.json")
	code, _, errOut := run(t, "cost",
		"-tenants", "16", "-duration", "20s", "-shards", "2",
		"-policies", "keepalive-1m", "-econ-config", cfgPath,
		"-workflow", "chain-2", "-apps", "8",
		"-json", jsonPath)
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Points []struct {
			Policy string `json:"policy"`
			Plans  []struct {
				Plan string `json:"plan"`
			} `json:"plans"`
			App *struct {
				Completed uint64 `json:"completed"`
			} `json:"app"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[1].Policy != "custom" {
		t.Fatalf("custom policy missing: %+v", res.Points)
	}
	plans := res.Points[0].Plans
	if len(plans) != 3 || plans[2].Plan != "flatrate" {
		t.Fatalf("custom plan missing: %+v", plans)
	}
	if res.Points[0].App == nil || res.Points[0].App.Completed == 0 {
		t.Fatalf("workflow app missing: %+v", res.Points[0])
	}
}

func TestCostCommandBadFlags(t *testing.T) {
	if code, _, _ := run(t, "cost", "-tenants", "0"); code == 0 {
		t.Fatal("zero tenants accepted")
	}
	if code, _, _ := run(t, "cost", "-policies", "burst-9"); code == 0 {
		t.Fatal("bad policy accepted")
	}
	if code, _, _ := run(t, "cost", "-plans", "freelunch"); code == 0 {
		t.Fatal("unknown plan accepted")
	}
	if code, _, _ := run(t, "cost", "-tenants", "4", "-duration", "10s",
		"-save", "x.json", "-save-policy", "nope"); code == 0 {
		t.Fatal("unknown save policy accepted")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := run(t, "cost", "-econ-config", empty); code == 0 {
		t.Fatal("empty econ config accepted")
	}
	if code, _, _ := run(t, "cost", "-econ-config", filepath.Join(dir, "missing.json")); code == 0 {
		t.Fatal("missing econ config accepted")
	}
}
