package cloud

import (
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/stats"
)

// TestPerTenantKeepAliveOverride: a function deployed with its own
// keep-alive policy expires on that schedule, not the provider-wide one.
func TestPerTenantKeepAliveOverride(t *testing.T) {
	cfg := testConfig()
	cfg.KeepAlive = KeepAlivePolicy{Fixed: time.Hour}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "short", KeepAlive: &KeepAlivePolicy{Fixed: time.Second}})
	deploy(t, c, FunctionSpec{Name: "long"})
	for _, name := range []string{"short", "long"} {
		name := name
		eng.Spawn("warm", func(p *des.Proc) {
			if _, err := c.Invoke(p, &Request{Fn: name}); err != nil {
				t.Error(err)
			}
		})
	}
	eng.Run(900 * time.Millisecond) // invocations done, no keep-alive elapsed yet
	if got := c.Metrics().Expirations; got != 0 {
		t.Fatalf("expirations before any keep-alive elapsed: %d", got)
	}
	eng.Run(eng.Now() + 2*time.Second)
	if got := c.Metrics().Expirations; got != 1 {
		t.Fatalf("after 2s: expirations = %d, want 1 (only the short-keep-alive tenant)", got)
	}
	eng.Run(eng.Now() + 2*time.Hour)
	if got := c.Metrics().Expirations; got != 2 {
		t.Fatalf("after 2h: expirations = %d, want 2", got)
	}
}

func TestDeployRejectsBadTenantOverrides(t *testing.T) {
	_, c := newTestCloud(t, testConfig())
	err := c.Deploy(FunctionSpec{Name: "ka", Runtime: RuntimePython, Method: DeployZIP,
		KeepAlive: &KeepAlivePolicy{}})
	if err == nil {
		t.Error("unset keep-alive override accepted")
	}
	err = c.Deploy(FunctionSpec{Name: "mi", Runtime: RuntimePython, Method: DeployZIP,
		MaxInstances: -1})
	if err == nil {
		t.Error("negative MaxInstances accepted")
	}
}

// TestMaxInstancesCap: a tenant capped at 2 instances never scales past the
// cap, yet all requests complete — freed instances absorb the backlog even
// under the no-queue policy.
func TestMaxInstancesCap(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = PolicyConfig{Kind: PolicyNoQueue}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "capped", MaxInstances: 2})
	const n = 12
	done := 0
	for i := 0; i < n; i++ {
		eng.Spawn("req", func(p *des.Proc) {
			if _, err := c.Invoke(p, &Request{Fn: "capped", ExecTime: 50 * time.Millisecond}); err != nil {
				t.Error(err)
				return
			}
			done++
		})
	}
	eng.Run(0)
	if done != n {
		t.Fatalf("completed %d of %d", done, n)
	}
	if got := c.Metrics().Spawns; got > 2 {
		t.Fatalf("spawns = %d, want <= cap of 2", got)
	}
	tm, ok := c.FunctionMetrics("capped")
	if !ok {
		t.Fatal("capped not found")
	}
	if tm.Invocations != n {
		t.Fatalf("tenant invocations = %d, want %d", tm.Invocations, n)
	}
	if tm.ColdServed+tm.WarmServed != n {
		t.Fatalf("serves = %d+%d, want %d", tm.ColdServed, tm.WarmServed, n)
	}
}

// TestFunctionRecorderIsolation: per-tenant recorders see only their own
// tenant's successful external latencies, and the cloud-wide recorder sees
// everything.
func TestFunctionRecorderIsolation(t *testing.T) {
	for _, mode := range []EngineMode{EngineProc, EngineCallback} {
		eng, c := newTestCloud(t, testConfig())
		deploy(t, c, FunctionSpec{Name: "a"})
		deploy(t, c, FunctionSpec{Name: "b"})
		c.SetEngineMode(mode)
		recA, recB := stats.NewSample(8), stats.NewSample(8)
		all := stats.NewSample(16)
		if err := c.SetFunctionRecorder("a", recA); err != nil {
			t.Fatal(err)
		}
		if err := c.SetFunctionRecorder("b", recB); err != nil {
			t.Fatal(err)
		}
		c.SetLatencyRecorder(all)
		if err := c.SetFunctionRecorder("missing", recA); err == nil {
			t.Error("recorder on undeployed function accepted")
		}
		for i, name := range []string{"a", "a", "b"} {
			name := name
			eng.Spawn("req", func(p *des.Proc) {
				p.Sleep(time.Duration(i) * time.Second) // sequential: no contention
				if _, err := c.Invoke(p, &Request{Fn: name}); err != nil {
					t.Error(err)
				}
			})
		}
		eng.Run(0)
		if recA.Len() != 2 || recB.Len() != 1 {
			t.Fatalf("mode %v: recorder counts a=%d b=%d, want 2/1", mode, recA.Len(), recB.Len())
		}
		if all.Len() != 3 {
			t.Fatalf("mode %v: cloud recorder count %d, want 3", mode, all.Len())
		}
	}
}

// TestFunctionMetricsConservation: per-tenant counters sum to the
// cloud-wide metrics, and instance-seconds match the analytic value.
func TestFunctionMetricsConservation(t *testing.T) {
	cfg := testConfig()
	cfg.KeepAlive = KeepAlivePolicy{Fixed: 10 * time.Second}
	eng, c := newTestCloud(t, cfg)
	names := []string{"t0", "t1", "t2"}
	for _, name := range names {
		deploy(t, c, FunctionSpec{Name: name})
	}
	for i := 0; i < 9; i++ {
		name := names[i%len(names)]
		eng.Spawn("req", func(p *des.Proc) {
			if _, err := c.Invoke(p, &Request{Fn: name, ExecTime: 100 * time.Millisecond}); err != nil {
				t.Error(err)
			}
		})
	}
	eng.Run(0) // drains through keep-alive expiry
	var inv, cold, warm uint64
	var instSec float64
	for _, name := range names {
		tm, ok := c.FunctionMetrics(name)
		if !ok {
			t.Fatalf("%s not found", name)
		}
		inv += tm.Invocations
		cold += tm.ColdServed
		warm += tm.WarmServed
		instSec += tm.InstanceSeconds
	}
	m := c.Metrics()
	if inv != m.Invocations {
		t.Errorf("tenant invocations sum %d != cloud %d", inv, m.Invocations)
	}
	if cold != m.ColdServed || warm != m.WarmServed {
		t.Errorf("tenant serves %d/%d != cloud %d/%d", cold, warm, m.ColdServed, m.WarmServed)
	}
	// Every instance has expired, so each tenant's integral is closed. All
	// nine requests forced cold starts (no-queue, concurrent arrival), so
	// nine instances each lived busy-window + 10s keep-alive. The exact
	// span depends on pipeline overlap; just require the integral to cover
	// at least 9 x 10s of keep-alive and to be fully closed.
	if instSec < 90 {
		t.Errorf("instance-seconds %.2f, want >= 90 (9 instances x 10s keep-alive)", instSec)
	}
	if len(c.functions["t0"].live) != 0 {
		t.Error("instances still live after drain")
	}
}

// TestInstancePoolingReuse: expired instance records are recycled by later
// spawns instead of reallocated, and identity stays fresh (new IDs).
func TestInstancePoolingReuse(t *testing.T) {
	cfg := testConfig()
	cfg.KeepAlive = KeepAlivePolicy{Fixed: time.Second}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	var firstID, secondID int
	eng.Spawn("gen", func(p *des.Proc) {
		resp, err := c.Invoke(p, &Request{Fn: "f"})
		if err != nil {
			t.Error(err)
			return
		}
		firstID = resp.InstanceID
		p.Sleep(5 * time.Second) // keep-alive reaps; record goes to the free list
		if c.instFree == nil {
			t.Error("no pooled instance record after expiry")
		}
		resp, err = c.Invoke(p, &Request{Fn: "f"})
		if err != nil {
			t.Error(err)
			return
		}
		secondID = resp.InstanceID
	})
	eng.Run(0)
	if firstID == 0 || secondID == 0 {
		t.Fatal("invocations did not run")
	}
	if secondID == firstID {
		t.Fatalf("recycled instance kept its old id %d", firstID)
	}
}

// TestFunctionPoolingOnRemove: removing a quiesced tenant recycles its
// record, and a redeploy under the same name starts from clean state.
func TestFunctionPoolingOnRemove(t *testing.T) {
	cfg := testConfig()
	cfg.KeepAlive = KeepAlivePolicy{Fixed: time.Second}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	eng.Spawn("warm", func(p *des.Proc) {
		if _, err := c.Invoke(p, &Request{Fn: "f"}); err != nil {
			t.Error(err)
		}
	})
	eng.Run(0)
	if err := c.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if c.fnFree == nil {
		t.Fatal("quiesced function record not pooled on Remove")
	}
	deploy(t, c, FunctionSpec{Name: "f"})
	tm, ok := c.FunctionMetrics("f")
	if !ok {
		t.Fatal("redeployed function missing")
	}
	if tm.Invocations != 0 || tm.InstanceSeconds != 0 {
		t.Fatalf("recycled record leaked state: %+v", tm)
	}
}

// TestKeepAliveSlackEquivalence: the same workload with and without
// keep-alive slack serves identically (slack only quantizes expiry
// instants, and the drain horizon far exceeds one tick).
func TestKeepAliveSlackEquivalence(t *testing.T) {
	run := func(slack time.Duration) (Metrics, time.Duration) {
		cfg := testConfig()
		cfg.KeepAlive = KeepAlivePolicy{Fixed: 2 * time.Second}
		cfg.KeepAliveSlack = slack
		eng := des.NewEngine()
		defer eng.Close()
		c, err := New(eng, cfg, dist.NewStreams(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Deploy(FunctionSpec{Name: "f", Runtime: RuntimePython, Method: DeployZIP}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			i := i
			eng.Spawn("req", func(p *des.Proc) {
				p.Sleep(time.Duration(i) * 300 * time.Millisecond)
				if _, err := c.Invoke(p, &Request{Fn: "f"}); err != nil {
					t.Error(err)
				}
			})
		}
		eng.Run(0)
		return c.Metrics(), eng.Now()
	}
	exact, exactEnd := run(0)
	slacked, slackEnd := run(100 * time.Millisecond)
	if exact.Invocations != slacked.Invocations ||
		exact.ColdServed != slacked.ColdServed ||
		exact.Expirations != slacked.Expirations {
		t.Fatalf("slack changed serve counts: exact=%+v slacked=%+v", exact, slacked)
	}
	// Expiries may land up to one tick later, never earlier.
	if slackEnd < exactEnd {
		t.Fatalf("slacked run ended earlier (%v) than exact (%v)", slackEnd, exactEnd)
	}
	if slackEnd > exactEnd+200*time.Millisecond {
		t.Fatalf("slacked run overshot: %v vs %v", slackEnd, exactEnd)
	}
}
