package sketch

import (
	"math/rand"
	"testing"
	"time"
)

// --- Allocation and memory-bound gates ---------------------------------------
//
// The sketch's contract is fixed memory under unbounded streams: once the
// value range has populated its grid buckets, recording more observations
// must neither allocate nor grow the sketch. These gates are the
// bounded-memory counterpart of internal/des/alloc_test.go.

// warmSketch populates a sketch across the operating range. The dense grid
// is fully allocated at New, so "warming" here only makes the queries
// representative — the alloc-free property holds from the first Add.
func warmSketch() *Sketch {
	s := New(0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200_000; i++ {
		s.Add(time.Duration(rng.Int63n(int64(10 * time.Second))))
	}
	return s
}

// TestAllocFreeSteadyStateAdd: recording into warmed buckets is
// allocation-free — the hot-path requirement for in-sim recording.
func TestAllocFreeSteadyStateAdd(t *testing.T) {
	s := warmSketch()
	rng := rand.New(rand.NewSource(2))
	values := make([]time.Duration, 1024)
	for i := range values {
		values[i] = time.Duration(rng.Int63n(int64(10 * time.Second)))
	}
	if avg := testing.AllocsPerRun(100, func() {
		for _, v := range values {
			s.Add(v)
		}
	}); avg != 0 {
		t.Fatalf("steady-state Add allocates %.1f allocs per 1024 observations, want 0", avg)
	}
}

// TestAllocFreeQuantileQueries: quantile/summary queries walk the fixed
// grid and are allocation-free.
func TestAllocFreeQuantileQueries(t *testing.T) {
	s := warmSketch()
	if avg := testing.AllocsPerRun(100, func() {
		s.Quantile(0.5)
		s.Quantile(0.95)
		s.Quantile(0.99)
		s.TMR()
	}); avg != 0 {
		t.Fatalf("quantile queries allocate %.1f allocs per batch, want 0", avg)
	}
}

// TestMemoryIndependentOfCount: the sketch's footprint is a function of the
// value range, not the observation count — 10x the stream, same bytes.
func TestMemoryIndependentOfCount(t *testing.T) {
	load := func(n int) *Sketch {
		s := New(0)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < n; i++ {
			s.Add(time.Duration(rng.Int63n(int64(10 * time.Second))))
		}
		s.Quantile(0.5)
		return s
	}
	small, large := load(300_000), load(3_000_000)
	if small.MemoryBytes() != large.MemoryBytes() {
		t.Fatalf("sketch memory grew with n: %dB at 300k vs %dB at 3M",
			small.MemoryBytes(), large.MemoryBytes())
	}
	if b := large.GridBuckets(); b > 4096 {
		t.Fatalf("grid holds %d buckets, exceeds the range bound", b)
	}
}

// BenchmarkSketchAdd measures the per-observation recording cost — the
// price paid inside the simulation hot loop.
func BenchmarkSketchAdd(b *testing.B) {
	s := warmSketch()
	rng := rand.New(rand.NewSource(4))
	values := make([]time.Duration, 8192)
	for i := range values {
		values[i] = time.Duration(rng.Int63n(int64(10 * time.Second)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(values[i&8191])
	}
}

// BenchmarkSketchQuantile measures the steady-state quantile query.
func BenchmarkSketchQuantile(b *testing.B) {
	s := warmSketch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Quantile(0.99)
	}
}

// BenchmarkSketchMerge measures the per-shard aggregation cost —
// O(buckets), independent of how many observations each shard recorded.
func BenchmarkSketchMerge(b *testing.B) {
	shard := warmSketch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		acc := New(0)
		b.StartTimer()
		if err := acc.Merge(shard); err != nil {
			b.Fatal(err)
		}
	}
}
