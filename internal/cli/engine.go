package cli

import (
	"flag"

	"github.com/stellar-repro/stellar/internal/cloud"
)

// engineFlag registers the -engine knob shared by the simulation commands.
// Both execution forms produce byte-identical results (the differential
// suite in internal/experiments proves it); the knob keeps them runnable
// and comparable forever.
type engineFlag struct {
	val *string
}

func addEngineFlag(fs *flag.FlagSet) engineFlag {
	return engineFlag{val: fs.String("engine", "auto",
		"execution form: proc (goroutine per request), callback (event-callback warm path), or auto")}
}

// mode parses the flag value, rejecting unknown spellings.
func (f engineFlag) mode() (cloud.EngineMode, error) {
	return cloud.ParseEngineMode(*f.val)
}
