package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, _, errOut := run(t, "bench",
		"-provider", "aws", "-samples", "50", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Errorf("%s: empty profile", path)
		}
	}
}

func TestExperimentProfileFlags(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.pprof")
	code, _, errOut := run(t, "experiment",
		"-id", "fig3a", "-samples", "40", "-replicas", "4", "-memprofile", mem)
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	if info, err := os.Stat(mem); err != nil || info.Size() == 0 {
		t.Fatalf("memprofile not written: %v", err)
	}
}

func TestCPUProfileBadPath(t *testing.T) {
	code, _, errOut := run(t, "bench",
		"-provider", "aws", "-samples", "10", "-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"))
	if code != 1 || !strings.Contains(errOut, "cpuprofile") {
		t.Fatalf("code=%d err=%q, want cpuprofile error", code, errOut)
	}
}
