package experiments

import (
	"fmt"
	"io"
	"time"
)

// Observation is one of the paper's seven numbered observations, evaluated
// against freshly measured data.
type Observation struct {
	// ID is the paper's observation number.
	ID int
	// Claim paraphrases the paper's statement.
	Claim string
	// Pass reports whether the measurement supports the claim.
	Pass bool
	// Evidence summarizes the numbers behind the verdict.
	Evidence string
}

// Observations runs the experiments behind each of the paper's seven
// Observations and evaluates them — an executable summary of what this
// reproduction does and does not show.
func Observations(opts Options) ([]Observation, error) {
	opts = opts.normalized()
	var out []Observation

	warm, err := Fig3Warm(opts)
	if err != nil {
		return nil, err
	}
	cold, err := Fig3Cold(opts)
	if err != nil {
		return nil, err
	}

	// Observation 1: warm invocations are fast and predictable.
	{
		pass := true
		worstMed, worstTMR := time.Duration(0), 0.0
		for _, s := range warm.Series {
			sum := s.Summary()
			intraMed := sum.Median // includes propagation; paper's <=25ms excludes it
			if intraMed > worstMed {
				worstMed = intraMed
			}
			if sum.TMR > worstTMR {
				worstTMR = sum.TMR
			}
			if sum.TMR >= 3 {
				pass = false
			}
		}
		out = append(out, Observation{
			ID:    1,
			Claim: "warm invocations impose low delays and variability (median <=25ms intra-DC, TMR < 2)",
			Pass:  pass,
			Evidence: fmt.Sprintf("worst warm median %v incl. propagation, worst TMR %.1f",
				worstMed.Round(time.Millisecond), worstTMR),
		})
	}

	// Observation 2: cold starts cost up to seconds, variability moderate.
	{
		img, err := Fig4ImageSize(opts)
		if err != nil {
			return nil, err
		}
		pass := true
		worstMed, worstTMR := time.Duration(0), 0.0
		for _, s := range append(append([]Series{}, cold.Series...), img.Series...) {
			sum := s.Summary()
			if sum.Median > worstMed {
				worstMed = sum.Median
			}
			if sum.TMR > worstTMR {
				worstTMR = sum.TMR
			}
		}
		if worstMed < time.Second || worstTMR > 4.2 {
			pass = false
		}
		out = append(out, Observation{
			ID:    2,
			Claim: "cold starts reach seconds at the median (large images) but TMR stays moderate (<3.6)",
			Pass:  pass,
			Evidence: fmt.Sprintf("worst cold median %v, worst cold TMR %.1f",
				worstMed.Round(time.Millisecond), worstTMR),
		})
	}

	// Observation 3: runtime choice barely matters for ZIP; deployment
	// method matters for interpreted runtimes.
	{
		fig5, err := Fig5RuntimeDeploy(opts)
		if err != nil {
			return nil, err
		}
		goZip := findByLabel(fig5, "go1.x zip").Summary()
		pyZip := findByLabel(fig5, "python3 zip").Summary()
		pyCtr := findByLabel(fig5, "python3 container").Summary()
		zipGap := absDur(pyZip.Median - goZip.Median)
		ctrRatio := float64(pyCtr.P99) / float64(pyZip.P99)
		pass := zipGap < 40*time.Millisecond && ctrRatio > 2
		out = append(out, Observation{
			ID:    3,
			Claim: "runtime choice has low impact on ZIP cold starts; container deployment hurts interpreted runtimes",
			Pass:  pass,
			Evidence: fmt.Sprintf("ZIP runtime gap %v; python container tail %.1fx its ZIP tail",
				zipGap.Round(time.Millisecond), ctrRatio),
		})
	}

	// Observation 4: storage transfers blow up the tail; inline is benign.
	{
		inline, err := Fig6Inline(opts)
		if err != nil {
			return nil, err
		}
		storage, err := Fig7Storage(opts)
		if err != nil {
			return nil, err
		}
		inTMR := findByLabel(inline, "google 1MB").Summary().TMR
		stTMR := findByLabel(storage, "google 1MB").Summary().TMR
		pass := stTMR > 10 && inTMR < 2.5
		out = append(out, Observation{
			ID:       4,
			Claim:    "storage-based transfers dominate tail latency (TMR >> 10); inline transfers are predictable",
			Pass:     pass,
			Evidence: fmt.Sprintf("google 1MB TMR: storage %.1f vs inline %.1f", stTMR, inTMR),
		})
	}

	// Observations 5-6: burst sensitivity.
	fig8, err := Fig8Bursts(opts)
	if err != nil {
		return nil, err
	}
	{
		azRatio := float64(findByLabel(fig8, "azure short-IAT burst=500").Summary().Median) /
			float64(findByLabel(fig8, "azure short-IAT burst=1").Summary().Median)
		awsRatio := float64(findByLabel(fig8, "aws short-IAT burst=500").Summary().Median) /
			float64(findByLabel(fig8, "aws short-IAT burst=1").Summary().Median)
		pass := azRatio > 10 && awsRatio < 8
		out = append(out, Observation{
			ID:       5,
			Claim:    "short-IAT bursts: two providers degrade moderately (~3x median), one dramatically (~33x)",
			Pass:     pass,
			Evidence: fmt.Sprintf("burst-500 median blowup: azure %.1fx, aws %.1fx", azRatio, awsRatio),
		})
	}
	{
		worstTMR := 0.0
		for _, prov := range AllProviders {
			if tmr := findByLabel(fig8, prov+" long-IAT burst=100").Summary().TMR; tmr > worstTMR {
				worstTMR = tmr
			}
		}
		awsBurst := findByLabel(fig8, "aws long-IAT burst=100").Summary().Median
		awsSingle := findByLabel(fig8, "aws long-IAT burst=1").Summary().Median
		pass := worstTMR < 3 && awsBurst < awsSingle
		out = append(out, Observation{
			ID:    6,
			Claim: "long-IAT bursts keep moderate TMRs (1.3-2.6); AWS bursts even beat single cold starts",
			Pass:  pass,
			Evidence: fmt.Sprintf("worst bursty-cold TMR %.1f; aws burst median %v vs single %v",
				worstTMR, awsBurst.Round(time.Millisecond), awsSingle.Round(time.Millisecond)),
		})
	}

	// Observation 7: queueing policy costs up to two orders of magnitude.
	{
		fig9, err := Fig9Scheduling(opts)
		if err != nil {
			return nil, err
		}
		warmMed := findByLabel(warm, "azure").Summary().Median
		azure := findByLabel(fig9, "azure burst=100").Summary()
		aws := findByLabel(fig9, "aws burst=100").Summary()
		mr := float64(azure.Median-Fig9ExecTime) / float64(warmMed)
		pass := mr > 50 && aws.P99 < 2500*time.Millisecond
		out = append(out, Observation{
			ID:    7,
			Claim: "allowing queueing at instances inflates long-function burst completion by up to two orders of magnitude",
			Pass:  pass,
			Evidence: fmt.Sprintf("azure infra MR %.0fx its warm median (paper 309x); aws stays at %v p99",
				mr, aws.P99.Round(time.Millisecond)),
		})
	}
	return out, nil
}

// findByLabel returns the series with the label (panic-free best effort).
func findByLabel(fig *Figure, label string) Series {
	for _, s := range fig.Series {
		if s.Label == label {
			return s
		}
	}
	return Series{Latencies: nil}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// WriteObservationsReport renders the verdicts.
func WriteObservationsReport(w io.Writer, obs []Observation) {
	fmt.Fprintf(w, "## observations — the paper's seven Observations, re-evaluated\n\n")
	passed := 0
	for _, o := range obs {
		verdict := "FAIL"
		if o.Pass {
			verdict = "PASS"
			passed++
		}
		fmt.Fprintf(w, "[%s] Observation %d: %s\n      %s\n\n", verdict, o.ID, o.Claim, o.Evidence)
	}
	fmt.Fprintf(w, "%d/%d observations reproduced\n", passed, len(obs))
}
