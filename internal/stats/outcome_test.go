package stats

import (
	"testing"
	"time"
)

func TestOutcomeMath(t *testing.T) {
	out := Outcome{Issued: 10, Succeeded: 7, Retries: 5, Hedges: 2}
	if got := out.Failed(); got != 3 {
		t.Errorf("Failed() = %d, want 3", got)
	}
	if got := out.SuccessRate(); got != 0.7 {
		t.Errorf("SuccessRate() = %v, want 0.7", got)
	}
	if got := out.RetriesPerRequest(); got != 0.5 {
		t.Errorf("RetriesPerRequest() = %v, want 0.5", got)
	}
	if got := out.Goodput(7 * time.Second); got != 1 {
		t.Errorf("Goodput(7s) = %v, want 1", got)
	}
}

func TestOutcomeZeroValues(t *testing.T) {
	var out Outcome
	// Vacuous success: nothing issued means nothing failed.
	if out.SuccessRate() != 1 {
		t.Errorf("empty SuccessRate() = %v, want 1", out.SuccessRate())
	}
	if out.RetriesPerRequest() != 0 {
		t.Errorf("empty RetriesPerRequest() = %v, want 0", out.RetriesPerRequest())
	}
	if out.Failed() != 0 {
		t.Errorf("empty Failed() = %d, want 0", out.Failed())
	}
	full := Outcome{Issued: 5, Succeeded: 5}
	if full.Goodput(0) != 0 {
		t.Errorf("Goodput over zero elapsed = %v, want 0", full.Goodput(0))
	}
}

func TestOutcomeMerge(t *testing.T) {
	a := Outcome{Issued: 10, Succeeded: 8, Retries: 3, Hedges: 1}
	b := Outcome{Issued: 5, Succeeded: 2, Retries: 7, Hedges: 0}
	a.Merge(b)
	want := Outcome{Issued: 15, Succeeded: 10, Retries: 10, Hedges: 1}
	if a != want {
		t.Fatalf("merged = %+v, want %+v", a, want)
	}
	if b != (Outcome{Issued: 5, Succeeded: 2, Retries: 7}) {
		t.Fatalf("Merge mutated its argument: %+v", b)
	}
}
