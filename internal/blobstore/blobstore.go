// Package blobstore simulates a cost-optimized cloud object store (AWS S3,
// Google Cloud Storage) in virtual time. The paper identifies such stores as
// the key contributor to serverless tail latency (§VI-C2, Obs. 4): they are
// optimized for cost, not latency, so per-operation delay is heavy-tailed,
// while sustained transfer bandwidth grows with object size.
//
// The store also models load-adaptive caching of hot objects, which the
// paper hypothesizes explains two burst-traffic effects (§VI-D2): AWS cold
// bursts completing faster than individual cold starts (image cached after
// the first retrieval) and Google's latency dropping between burst sizes 300
// and 500 (caching aggressiveness adjusting to load).
package blobstore

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
)

// CacheConfig controls the store's hot-object cache.
type CacheConfig struct {
	// Enabled turns the cache on.
	Enabled bool
	// ActivationCount is the number of retrievals of an object within
	// ActivationWindow after which the object becomes cached. 1 models an
	// always-cache policy (AWS image store); large values model a
	// load-adaptive policy that only reacts to heavy traffic (Google).
	ActivationCount  int
	ActivationWindow time.Duration
	// TTL is how long an object stays cached after activation.
	TTL time.Duration
	// HitLatency is the per-op latency for cached reads.
	HitLatency dist.Dist
	// HitBandwidthBps is the transfer bandwidth for cached reads (bits/s).
	HitBandwidthBps float64
}

// Config describes one storage service.
type Config struct {
	// Name identifies the store in errors and metrics.
	Name string
	// GetLatency and PutLatency are per-operation first-byte delays,
	// excluding transfer time.
	GetLatency dist.Dist
	PutLatency dist.Dist
	// GetBandwidthBps and PutBandwidthBps are sustained transfer rates in
	// bits per second. Zero means infinitely fast transfer.
	GetBandwidthBps float64
	PutBandwidthBps float64
	// SmallObjectBytes, when positive, reads objects up to that size at
	// SmallGetBandwidthBps instead (a fast tier for small objects, e.g.,
	// deployment packages served from SSD-backed metadata storage).
	SmallObjectBytes     int64
	SmallGetBandwidthBps float64
	// BandwidthJitterPct varies each operation's effective bandwidth
	// uniformly within ±pct (0.2 = ±20%).
	BandwidthJitterPct float64
	// MissCongestionUnit models store-side queueing of uncached reads: a
	// GET that misses the cache waits an extra (concurrent outstanding
	// misses) * unit before being served. Cache hits bypass the queue,
	// which is how a load-adaptive cache can make very large bursts
	// cheaper than medium ones (§VI-D2).
	MissCongestionUnit time.Duration
	// Cache is the hot-object cache policy.
	Cache CacheConfig
}

// Metrics aggregates store activity.
type Metrics struct {
	Gets      uint64
	Puts      uint64
	CacheHits uint64
	BytesRead uint64
	BytesPut  uint64
}

type object struct {
	size int64
	// cache state
	fetches     int
	windowStart time.Duration
	cachedUntil time.Duration
}

// Store is a simulated object store. All methods must be called from
// simulation context; operations advance the calling process's virtual time.
type Store struct {
	eng          *des.Engine
	cfg          Config
	rng          *rand.Rand
	objects      map[string]*object
	missInflight int
	metrics      Metrics
}

// New creates a store on the given engine. rng must be a dedicated stream.
func New(eng *des.Engine, cfg Config, rng *rand.Rand) *Store {
	if cfg.GetLatency == nil {
		cfg.GetLatency = dist.Constant(0)
	}
	if cfg.PutLatency == nil {
		cfg.PutLatency = dist.Constant(0)
	}
	return &Store{eng: eng, cfg: cfg, rng: rng, objects: make(map[string]*object)}
}

// Seed registers an object without simulating an upload (used for function
// images placed by the deployer outside the measured window).
func (s *Store) Seed(key string, size int64) {
	s.objects[key] = &object{size: size}
}

// Exists reports whether key is present.
func (s *Store) Exists(key string) bool {
	_, ok := s.objects[key]
	return ok
}

// Size returns the stored size of key.
func (s *Store) Size(key string) (int64, error) {
	obj, ok := s.objects[key]
	if !ok {
		return 0, fmt.Errorf("blobstore %s: object %q not found", s.cfg.Name, key)
	}
	return obj.size, nil
}

// Put uploads size bytes under key, blocking the process for the operation's
// latency plus transfer time. It returns the simulated duration.
func (s *Store) Put(p *des.Proc, key string, size int64) time.Duration {
	lat := s.cfg.PutLatency.Sample(s.rng) + s.transferTime(size, s.cfg.PutBandwidthBps)
	p.Sleep(lat)
	obj, ok := s.objects[key]
	if !ok {
		obj = &object{}
		s.objects[key] = obj
	}
	obj.size = size
	s.metrics.Puts++
	s.metrics.BytesPut += uint64(size)
	return lat
}

// Get downloads key, blocking the process for the operation's latency plus
// transfer time. It returns the object size and the simulated duration.
func (s *Store) Get(p *des.Proc, key string) (int64, time.Duration, error) {
	obj, ok := s.objects[key]
	if !ok {
		return 0, 0, fmt.Errorf("blobstore %s: object %q not found", s.cfg.Name, key)
	}
	s.metrics.Gets++
	s.metrics.BytesRead += uint64(obj.size)

	var lat time.Duration
	if s.cacheHit(obj) {
		s.metrics.CacheHits++
		hit := s.cfg.Cache.HitLatency
		if hit == nil {
			hit = dist.Constant(0)
		}
		lat = hit.Sample(s.rng) + s.transferTime(obj.size, s.cfg.Cache.HitBandwidthBps)
		p.Sleep(lat)
		return obj.size, lat, nil
	}
	if s.cfg.MissCongestionUnit > 0 && s.missInflight > 0 {
		lat += time.Duration(s.missInflight) * s.cfg.MissCongestionUnit
	}
	bps := s.cfg.GetBandwidthBps
	if s.cfg.SmallObjectBytes > 0 && obj.size <= s.cfg.SmallObjectBytes && s.cfg.SmallGetBandwidthBps > 0 {
		bps = s.cfg.SmallGetBandwidthBps
	}
	lat += s.cfg.GetLatency.Sample(s.rng) + s.transferTime(obj.size, bps)
	s.missInflight++
	p.Sleep(lat)
	s.missInflight--
	return obj.size, lat, nil
}

// cacheHit updates the object's cache-activation state at the start of a
// retrieval and reports whether this retrieval is served from cache.
// Activation is recorded at fetch start: once traffic crosses the threshold,
// the storage front-end coalesces concurrent readers onto the cached copy.
func (s *Store) cacheHit(obj *object) bool {
	c := s.cfg.Cache
	if !c.Enabled {
		return false
	}
	now := s.eng.Now()
	if now < obj.cachedUntil {
		obj.cachedUntil = now + c.TTL // reads refresh the TTL
		return true
	}
	if c.ActivationWindow > 0 && now-obj.windowStart > c.ActivationWindow {
		obj.windowStart = now
		obj.fetches = 0
	}
	obj.fetches++
	if obj.fetches >= c.ActivationCount {
		obj.cachedUntil = now + c.TTL
		obj.fetches = 0
		// The activating retrieval itself still pays the miss cost.
	}
	return false
}

// transferTime converts a payload size into transfer latency at the given
// nominal bandwidth with per-op jitter.
func (s *Store) transferTime(size int64, bps float64) time.Duration {
	if bps <= 0 || size <= 0 {
		return 0
	}
	eff := bps
	if j := s.cfg.BandwidthJitterPct; j > 0 {
		eff = bps * (1 - j + 2*j*s.rng.Float64())
	}
	sec := float64(size) * 8 / eff
	return time.Duration(sec * float64(time.Second))
}

// Metrics returns a snapshot of the store's counters.
func (s *Store) Metrics() Metrics { return s.metrics }

// Name returns the configured store name.
func (s *Store) Name() string { return s.cfg.Name }
