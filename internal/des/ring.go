package des

// ring is a growable FIFO ring buffer. Push/popFront reuse the backing array
// in steady state, so wait queues that repeatedly fill and drain (Signal
// waiters, Resource queues, request buffers) stop allocating once they reach
// their high-water capacity — unlike the append/copy-shift slice idiom,
// which reallocates whenever append outruns the shifted prefix.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

// len reports the number of queued items.
func (r *ring[T]) len() int { return r.n }

// push appends v at the tail.
func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// popFront removes and returns the oldest item. It panics on an empty ring.
func (r *ring[T]) popFront() T {
	if r.n == 0 {
		panic("des: pop from empty ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// at returns the i-th oldest item (0 = front).
func (r *ring[T]) at(i int) T {
	return r.buf[(r.head+i)%len(r.buf)]
}

// removeFunc deletes the first item matching the predicate, preserving FIFO
// order of the rest, and reports whether a match was removed.
func (r *ring[T]) removeFunc(match func(T) bool) bool {
	for i := 0; i < r.n; i++ {
		if !match(r.at(i)) {
			continue
		}
		// Shift the younger suffix forward one slot.
		for j := i; j < r.n-1; j++ {
			r.buf[(r.head+j)%len(r.buf)] = r.buf[(r.head+j+1)%len(r.buf)]
		}
		var zero T
		r.buf[(r.head+r.n-1)%len(r.buf)] = zero
		r.n--
		return true
	}
	return false
}

// clear empties the ring, zeroing occupied slots so pooled references are
// released, while keeping the backing array for reuse.
func (r *ring[T]) clear() {
	var zero T
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)%len(r.buf)] = zero
	}
	r.head, r.n = 0, 0
}

// grow doubles the backing array, re-linearizing the queue at index 0.
func (r *ring[T]) grow() {
	capacity := len(r.buf) * 2
	if capacity == 0 {
		capacity = 8
	}
	next := make([]T, capacity)
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = next
	r.head = 0
}
