package experiments

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/stats"
)

func scaleOpts(n uint64) ScaleOptions {
	return ScaleOptions{
		Provider:    "aws",
		Invocations: n,
		Shards:      4,
		Seed:        7,
		IAT:         20 * time.Millisecond,
		Burst:       2,
	}
}

// TestScaleSketchMemoryIndependentOfInvocations pins the tentpole claim:
// quadrupling the series length leaves the merged sketch's footprint
// byte-for-byte unchanged, while every invocation is still accounted for.
func TestScaleSketchMemoryIndependentOfInvocations(t *testing.T) {
	small, err := RunScale(scaleOpts(10_000))
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunScale(scaleOpts(40_000))
	if err != nil {
		t.Fatal(err)
	}
	if sb, lb := small.Sketch.MemoryBytes(), large.Sketch.MemoryBytes(); sb != lb {
		t.Fatalf("sketch memory grew with series length: %dB at 10k vs %dB at 40k", sb, lb)
	}
	for _, res := range []*ScaleResult{small, large} {
		if got := res.Recorder.Count() + res.Errors; got != res.Invocations {
			t.Fatalf("%d of %d invocations unaccounted for", res.Invocations-got, res.Invocations)
		}
	}
}

// TestScaleDeterministicAcrossWorkers: the merged sketch record, counters,
// and virtual clock are byte-identical at Workers=1 and Workers=4 — the
// same determinism contract the figure suite pins, now for the streaming
// path.
func TestScaleDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *ScaleResult {
		opts := scaleOpts(8_000)
		opts.Workers = workers
		res, err := RunScale(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(4)

	if serial.Colds != parallel.Colds || serial.Errors != parallel.Errors ||
		serial.VirtualTime != parallel.VirtualTime {
		t.Fatalf("counters diverge across workers: %+v vs %+v", serial, parallel)
	}
	enc := func(r *ScaleResult) string {
		b, err := json.Marshal(r.Sketch.Record())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := enc(serial), enc(parallel); a != b {
		t.Fatalf("merged sketch records differ across workers:\n%s\n%s", a, b)
	}
}

// TestScaleExactAgreesWithSketch cross-checks the two recording modes on
// the same seed: sketch quantiles must sit within the advertised relative
// error of the exact per-sample distribution.
func TestScaleExactAgreesWithSketch(t *testing.T) {
	opts := scaleOpts(12_000)
	sk, err := RunScale(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Exact = true
	ex, err := RunScale(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ex.Recorder.(*stats.Sample); !ok {
		t.Fatalf("exact mode recorded into %T, want *stats.Sample", ex.Recorder)
	}
	if sk.Colds != ex.Colds || sk.Errors != ex.Errors {
		t.Fatalf("modes saw different series: colds %d/%d errors %d/%d",
			sk.Colds, ex.Colds, sk.Errors, ex.Errors)
	}
	for _, q := range []float64{0.50, 0.95, 0.99} {
		got, want := sk.Recorder.Quantile(q), ex.Recorder.Quantile(q)
		if rel := math.Abs(float64(got)-float64(want)) / float64(want); rel > 0.01 {
			t.Fatalf("p%g: sketch %v vs exact %v (rel err %.4f > 0.01)", q*100, got, want, rel)
		}
	}
}

// TestScaleOptionValidation: nonsense configurations fail fast.
func TestScaleOptionValidation(t *testing.T) {
	for _, opts := range []ScaleOptions{
		{Invocations: 100}, // no provider
		{Provider: "aws"},  // no invocations
		{Provider: "aws", Invocations: 2, Shards: 4},    // more shards than work
		{Provider: "no-such-cloud", Invocations: 1_000}, // unknown profile
	} {
		if _, err := RunScale(opts); err == nil {
			t.Fatalf("RunScale(%+v) accepted invalid options", opts)
		}
	}
}

// TestScaleReportOutput smoke-checks both writers over one small run.
func TestScaleReportOutput(t *testing.T) {
	res, err := RunScale(scaleOpts(4_000))
	if err != nil {
		t.Fatal(err)
	}
	var report strings.Builder
	WriteScaleReport(&report, res)
	for _, want := range []string{"provider=aws", "mode=sketch", "p99=", "memory="} {
		if !strings.Contains(report.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, report.String())
		}
	}
	var csv strings.Builder
	if err := WriteScaleCDF(&csv, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "latency_ns,cdf" || len(lines) < 10 {
		t.Fatalf("CDF csv malformed (%d lines):\n%s", len(lines), lines[0])
	}
	last := lines[len(lines)-1]
	if !strings.HasSuffix(last, "1.000000") {
		t.Fatalf("CDF does not end at 1.0: %q", last)
	}
}
