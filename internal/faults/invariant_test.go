package faults_test

// Invariant suite for the fault-injection layer. These tests check the
// properties the whole subsystem is built around rather than individual
// mechanisms:
//
//   - conservation: every issued request is accounted for exactly once, and
//     retry counts respect the policy bound;
//   - monotone degradation: at a fixed seed, raising the failure rate never
//     raises the naive client's success rate (modulo a small epsilon for
//     fault/retry interleaving effects);
//   - worker-count invariance: the sweep is byte-identical at any host
//     parallelism, because shard seeds depend only on (seed, shard index).

import (
	"reflect"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/experiments"
	"github.com/stellar-repro/stellar/internal/faults"
)

func sweepOpts(workers int) experiments.FaultsOptions {
	return experiments.FaultsOptions{
		Provider:    "aws",
		Invocations: 400,
		Shards:      2,
		Workers:     workers,
		Seed:        7,
		IAT:         20 * time.Millisecond,
		Rates:       []float64{0, 0.1, 0.3},
		Policies: []faults.Policy{
			{},
			{Timeout: 2 * time.Second, MaxRetries: 3,
				BackoffBase: 50 * time.Millisecond, BackoffCap: 500 * time.Millisecond, Jitter: true},
		},
	}
}

func TestSweepConservation(t *testing.T) {
	res, err := experiments.RunFaults(sweepOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	const maxRetries = 3
	for _, cell := range res.Cells {
		out := cell.Outcome
		if out.Issued != res.Invocations {
			t.Errorf("cell %g/%s: issued %d, want %d", cell.Rate, cell.Policy, out.Issued, res.Invocations)
		}
		if out.Succeeded+out.Failed() != out.Issued {
			t.Errorf("cell %g/%s: succeeded %d + failed %d != issued %d",
				cell.Rate, cell.Policy, out.Succeeded, out.Failed(), out.Issued)
		}
		if out.Retries > out.Issued*maxRetries {
			t.Errorf("cell %g/%s: %d retries exceeds issued x maxRetries = %d",
				cell.Rate, cell.Policy, out.Retries, out.Issued*maxRetries)
		}
		if cell.Policy == "none" && (out.Retries != 0 || out.Hedges != 0) {
			t.Errorf("naive cell %g: retries=%d hedges=%d, want 0", cell.Rate, out.Retries, out.Hedges)
		}
		if cell.SuccessRate < 0 || cell.SuccessRate > 1 {
			t.Errorf("cell %g/%s: success rate %v out of [0,1]", cell.Rate, cell.Policy, cell.SuccessRate)
		}
	}
}

// TestSweepMonotoneDegradation: for the naive client at a fixed seed, a
// higher failure rate must not improve the success rate. Epsilon absorbs
// second-order interleaving effects (a dropped request frees capacity that
// can rescue a queued one).
func TestSweepMonotoneDegradation(t *testing.T) {
	opts := sweepOpts(0)
	opts.Rates = []float64{0, 0.1, 0.3, 0.6}
	opts.Policies = []faults.Policy{{}}
	res, err := experiments.RunFaults(opts)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.02
	for i := 1; i < len(res.Cells); i++ {
		prev, cur := res.Cells[i-1], res.Cells[i]
		if cur.SuccessRate > prev.SuccessRate+eps {
			t.Errorf("success rate rose with the failure rate: %.4f at rate %g -> %.4f at rate %g",
				prev.SuccessRate, prev.Rate, cur.SuccessRate, cur.Rate)
		}
	}
	// The sweep must actually degrade something, or the test is vacuous.
	first, last := res.Cells[0], res.Cells[len(res.Cells)-1]
	if first.SuccessRate != 1 {
		t.Errorf("zero-fault cell success rate %.4f, want 1", first.SuccessRate)
	}
	if last.SuccessRate >= first.SuccessRate {
		t.Errorf("rate %g did not degrade success below the zero-fault cell", last.Rate)
	}
	if last.Drops == 0 {
		t.Error("highest-rate cell recorded no drops")
	}
}

// TestSweepDeterminismAcrossWorkers is the PR's acceptance criterion: the
// full sweep result is identical at Workers=1 and Workers=8 for the same
// seed.
func TestSweepDeterminismAcrossWorkers(t *testing.T) {
	seq, err := experiments.RunFaults(sweepOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := experiments.RunFaults(sweepOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sweep differs between Workers=1 and Workers=8:\n  seq: %+v\n  par: %+v", seq, par)
	}
}

// TestSweepRetryPolicyImproves: the reason the resilience layer exists —
// under injected faults, the retrying client must hold a strictly higher
// success rate than the naive one in the same cell, at the price of
// non-zero retries.
func TestSweepRetryPolicyImproves(t *testing.T) {
	res, err := experiments.RunFaults(sweepOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	byRate := map[float64]map[string]experiments.FaultCell{}
	for _, cell := range res.Cells {
		if byRate[cell.Rate] == nil {
			byRate[cell.Rate] = map[string]experiments.FaultCell{}
		}
		byRate[cell.Rate][cell.Policy] = cell
	}
	for rate, cells := range byRate {
		if rate == 0 {
			continue
		}
		var naive, resilient *experiments.FaultCell
		for label, cell := range cells {
			c := cell
			if label == "none" {
				naive = &c
			} else {
				resilient = &c
			}
		}
		if naive == nil || resilient == nil {
			t.Fatalf("rate %g: missing a policy cell", rate)
		}
		if resilient.SuccessRate <= naive.SuccessRate {
			t.Errorf("rate %g: retry policy %.4f not above naive %.4f",
				rate, resilient.SuccessRate, naive.SuccessRate)
		}
		if resilient.Outcome.Retries == 0 {
			t.Errorf("rate %g: resilient client recorded no retries", rate)
		}
	}
}

// TestZeroRateMatchesNilInjector: rate 0 disables every probabilistic mode,
// so the cell must be indistinguishable from a run with faults compiled out
// entirely — same successes, same latency distribution.
func TestZeroRateMatchesNilInjector(t *testing.T) {
	opts := sweepOpts(0)
	opts.Rates = []float64{0}
	opts.Policies = []faults.Policy{{}}
	withTemplate, err := experiments.RunFaults(opts)
	if err != nil {
		t.Fatal(err)
	}
	// An explicitly empty template also scales to nothing at any rate 0.
	opts.Modes = faults.Config{DropProb: 1, SpawnFailProb: 0.9, StorageTimeoutProb: 0.9, StorageTimeout: time.Second}
	differentTemplate, err := experiments.RunFaults(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withTemplate.Cells, differentTemplate.Cells) {
		t.Fatalf("rate-0 cells depend on the injector template:\n  a: %+v\n  b: %+v",
			withTemplate.Cells, differentTemplate.Cells)
	}
	cell := withTemplate.Cells[0]
	if cell.SuccessRate != 1 || cell.Drops != 0 || cell.SpawnFailures != 0 || cell.StorageFaults != 0 {
		t.Fatalf("rate-0 cell shows fault activity: %+v", cell)
	}
}
