// Package sketch implements a deterministic, mergeable quantile sketch for
// bounded-memory tail-latency measurement at million-invocation scale.
//
// The sketch is a t-digest-style centroid summary whose compression rule is
// deterministic by construction: instead of insertion-order-dependent
// centroid clustering, observations land in a fixed geometric grid of
// buckets — bucket k covers (gamma^(k-1), gamma^k] nanoseconds with
// gamma = (1+alpha)/(1-alpha). Because a value's bucket depends only on the
// value, Merge is exact integer addition of bucket counts: associative,
// commutative, and byte-identical no matter how a stream is sharded across
// workers. That is the property the runner's determinism contract needs
// (Workers=1 ≡ Workers=N) and that insertion-order-sensitive digests cannot
// provide.
//
// The grid spans a fixed trackable range (1µs to 24h): the bucket array is
// allocated once at construction and never grows, so a sketch's memory is a
// constant decided by alpha alone — independent of how many observations
// stream through it. Values outside the range clamp into the edge buckets
// (and are still tracked exactly by Min/Max), values <= 0 (clamped
// latencies) land in a dedicated zero bucket.
//
// Accuracy: any reported quantile inside the trackable range is a bucket
// representative within relative error alpha of the true order statistic
// (the DDSketch bound), so alpha=0.005 keeps p50/p99 comfortably within the
// 1% acceptance band against exact percentiles.
package sketch

import (
	"fmt"
	"math"
	"time"

	"github.com/stellar-repro/stellar/internal/stats"
)

// DefaultAlpha is the default relative-accuracy target (0.5%), chosen so
// sketch quantiles stay comfortably inside the 1% acceptance band against
// exact percentiles while keeping the grid in the low thousands of buckets.
const DefaultAlpha = 0.005

// maxAlpha bounds the accuracy parameter away from useless coarseness;
// minAlpha keeps the dense grid from exceeding ~1MB.
const (
	maxAlpha = 0.1
	minAlpha = 0.0005
)

// The fixed trackable range. Below minTrackable the grid would need
// unbounded resolution for values that are three orders of magnitude under
// any latency this simulator produces; above maxTrackable no serverless
// response time is meaningful. Out-of-range values clamp to the edge
// buckets; Min/Max stay exact.
const (
	minTrackable = time.Microsecond
	maxTrackable = 24 * time.Hour
)

// Sketch is a deterministic mergeable quantile sketch over durations. The
// zero value is not usable; construct with New. Sketch is not safe for
// concurrent mutation (DES shards are single-threaded; cross-shard
// aggregation goes through Merge).
type Sketch struct {
	alpha      float64
	gamma      float64
	invLnGamma float64

	// counts is the dense bucket grid: counts[i] is the population of grid
	// bucket kmin+i. Allocated once at New, never grown.
	counts []uint64
	kmin   int32

	// zero counts observations <= 0.
	zero  uint64
	total uint64

	// sum accumulates nanoseconds (saturating) for Mean; integer addition
	// keeps Merge order-independent where a float sum would not be.
	sum       int64
	saturated bool

	min, max time.Duration
}

// New returns an empty sketch with the given relative-accuracy target
// (0 means DefaultAlpha). It panics on alpha outside [0.0005, 0.1],
// matching the dist constructors' fail-fast convention for static
// misconfiguration.
func New(alpha float64) *Sketch {
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if alpha < minAlpha || alpha > maxAlpha {
		panic(fmt.Sprintf("sketch: alpha %v outside [%v, %v]", alpha, minAlpha, maxAlpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	invLnGamma := 1 / math.Log(gamma)
	kmin := int32(math.Ceil(math.Log(float64(minTrackable)) * invLnGamma))
	kmax := int32(math.Ceil(math.Log(float64(maxTrackable)) * invLnGamma))
	return &Sketch{
		alpha:      alpha,
		gamma:      gamma,
		invLnGamma: invLnGamma,
		counts:     make([]uint64, kmax-kmin+1),
		kmin:       kmin,
	}
}

// Alpha reports the sketch's relative-accuracy target.
func (s *Sketch) Alpha() float64 { return s.alpha }

// slot returns the grid offset of a strictly positive duration, clamping
// out-of-range values to the edge buckets.
func (s *Sketch) slot(v time.Duration) int {
	i := int(int32(math.Ceil(math.Log(float64(v))*s.invLnGamma)) - s.kmin)
	if i < 0 {
		return 0
	}
	if i >= len(s.counts) {
		return len(s.counts) - 1
	}
	return i
}

// value returns slot i's representative: the bucket midpoint
// 2*gamma^k/(gamma+1), within relative error alpha of every in-range value
// in the bucket.
func (s *Sketch) value(i int) time.Duration {
	return time.Duration(2 * math.Pow(s.gamma, float64(s.kmin+int32(i))) / (s.gamma + 1))
}

// Add records one observation.
func (s *Sketch) Add(v time.Duration) { s.AddN(v, 1) }

// AddN records n copies of an observation in O(1).
func (s *Sketch) AddN(v time.Duration, n uint64) {
	if n == 0 {
		return
	}
	if s.total == 0 || v < s.min {
		s.min = v
	}
	if s.total == 0 || v > s.max {
		s.max = v
	}
	s.total += n
	s.addSum(int64(v), n)
	if v <= 0 {
		s.zero += n
		return
	}
	s.counts[s.slot(v)] += n
}

// addSum accumulates n*v nanoseconds, saturating at ±MaxInt64 so the mean
// degrades gracefully instead of wrapping on extreme runs.
func (s *Sketch) addSum(v int64, n uint64) {
	if s.saturated || v == 0 || n == 0 {
		return
	}
	if v == math.MinInt64 {
		s.saturate(-1)
		return
	}
	av := v
	if av < 0 {
		av = -av
	}
	if uint64(math.MaxInt64)/uint64(av) < n {
		s.saturate(v)
		return
	}
	prod := v * int64(n)
	next := s.sum + prod
	// Two's-complement overflow: operands share a sign, result flips it.
	if (s.sum > 0 && prod > 0 && next < 0) || (s.sum < 0 && prod < 0 && next > 0) {
		s.saturate(prod)
		return
	}
	s.sum = next
}

// saturate pins the sum at the extreme matching sign.
func (s *Sketch) saturate(sign int64) {
	s.saturated = true
	if sign < 0 {
		s.sum = math.MinInt64
	} else {
		s.sum = math.MaxInt64
	}
}

// Count reports the number of recorded observations.
func (s *Sketch) Count() uint64 { return s.total }

// Buckets reports the number of occupied grid buckets (reporting only; the
// footprint is the fixed grid, see MemoryBytes).
func (s *Sketch) Buckets() int {
	n := 0
	for _, c := range s.counts {
		if c != 0 {
			n++
		}
	}
	if s.zero > 0 {
		n++
	}
	return n
}

// GridBuckets reports the fixed grid size decided by alpha.
func (s *Sketch) GridBuckets() int { return len(s.counts) }

// MemoryBytes reports the sketch's modeled resident size: the fixed grid
// plus the struct header. It is a deterministic function of alpha alone —
// never of Count — which is the heap-bound gates' invariant.
func (s *Sketch) MemoryBytes() int {
	return len(s.counts)*8 + 112
}

// Min returns the smallest observation. It panics on an empty sketch,
// matching stats.Sample.
func (s *Sketch) Min() time.Duration {
	s.mustNotBeEmpty("min")
	return s.min
}

// Max returns the largest observation.
func (s *Sketch) Max() time.Duration {
	s.mustNotBeEmpty("max")
	return s.max
}

// Mean returns the arithmetic mean (0 on empty, matching stats.Sample).
func (s *Sketch) Mean() time.Duration {
	if s.total == 0 {
		return 0
	}
	return time.Duration(float64(s.sum) / float64(s.total))
}

func (s *Sketch) mustNotBeEmpty(what string) {
	if s.total == 0 {
		panic("sketch: " + what + " of empty sketch")
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) as the representative of
// the bucket holding that order statistic, clamped to the observed
// [Min, Max]. It panics on an empty sketch, matching Sample.Percentile.
func (s *Sketch) Quantile(q float64) time.Duration {
	s.mustNotBeEmpty("quantile")
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Target the same closest-rank convention as Sample.Percentile:
	// rank q*(n-1) in 0-based order, i.e. the (floor(rank)+1)-th smallest.
	target := uint64(math.Floor(q*float64(s.total-1))) + 1
	// The extreme order statistics are tracked exactly.
	if target == 1 {
		return s.min
	}
	if target >= s.total {
		return s.max
	}
	cum := s.zero
	if cum >= target {
		return s.clamp(s.min)
	}
	for i, c := range s.counts {
		cum += c
		if cum >= target {
			return s.clamp(s.value(i))
		}
	}
	return s.max
}

// clamp restricts a bucket representative to the observed range, so edge
// buckets report exact endpoints.
func (s *Sketch) clamp(v time.Duration) time.Duration {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// Percentile returns the p-th percentile (0 <= p <= 100), mirroring
// stats.Sample for drop-in use at report sites.
func (s *Sketch) Percentile(p float64) time.Duration { return s.Quantile(p / 100) }

// CDF returns the cumulative distribution over occupied bucket
// representatives with strictly increasing values and non-decreasing
// fractions, the same shape stats.Sample.CDF produces for the plot and CSV
// layers.
func (s *Sketch) CDF() []stats.CDFPoint {
	if s.total == 0 {
		return nil
	}
	points := make([]stats.CDFPoint, 0, s.Buckets())
	cum := uint64(0)
	if s.zero > 0 {
		cum = s.zero
		points = append(points, stats.CDFPoint{Value: s.clamp(0), Frac: float64(cum) / float64(s.total)})
	}
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		cum += c
		v := s.clamp(s.value(i))
		if len(points) > 0 && v <= points[len(points)-1].Value {
			// Clamping can collapse the edge buckets onto min/max; keep
			// the highest fraction for the collapsed value.
			points[len(points)-1].Frac = float64(cum) / float64(s.total)
			continue
		}
		points = append(points, stats.CDFPoint{Value: v, Frac: float64(cum) / float64(s.total)})
	}
	return points
}

// Merge folds another sketch into this one in O(grid). Both sketches must
// share the same alpha; merging is exact, so merge(shard sketches) is
// byte-identical to sketching the unsharded stream, in any merge order.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil || o.total == 0 {
		return nil
	}
	if o.alpha != s.alpha {
		return fmt.Errorf("sketch: merge of alpha=%v into alpha=%v", o.alpha, s.alpha)
	}
	if s.total == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.total == 0 || o.max > s.max {
		s.max = o.max
	}
	s.total += o.total
	s.zero += o.zero
	if o.saturated {
		s.saturate(o.sum)
	} else {
		s.addSum(o.sum, 1)
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	return nil
}

// TMR returns the tail-to-median ratio (p99/median), the paper's
// predictability metric, computed from sketch quantiles.
func (s *Sketch) TMR() float64 {
	m := s.Quantile(0.5)
	if m == 0 {
		return math.Inf(1)
	}
	return float64(s.Quantile(0.99)) / float64(m)
}

// Summarize computes the headline metrics from sketch quantiles.
func (s *Sketch) Summarize() stats.Summary {
	return stats.Summary{
		Count:  int(s.total),
		Min:    s.Min(),
		Median: s.Quantile(0.5),
		P95:    s.Quantile(0.95),
		P99:    s.Quantile(0.99),
		Max:    s.Max(),
		Mean:   s.Mean(),
		TMR:    s.TMR(),
	}
}

// Record is the sketch's compact serialized form: occupied bucket indexes
// (ascending) with their counts. The encoding is canonical — two sketches
// with equal contents marshal to identical bytes, which is what the
// determinism suite compares.
type Record struct {
	// Alpha is the relative-accuracy target.
	Alpha float64 `json:"alpha"`
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// Zero counts non-positive observations.
	Zero uint64 `json:"zero,omitempty"`
	// MinNS/MaxNS/SumNS are exact range and (saturating) sum trackers.
	MinNS int64 `json:"min_ns"`
	MaxNS int64 `json:"max_ns"`
	SumNS int64 `json:"sum_ns"`
	// Keys are the occupied grid bucket indexes, ascending; Counts aligns.
	Keys   []int32  `json:"keys"`
	Counts []uint64 `json:"counts"`
}

// Record returns the canonical serialized form.
func (s *Sketch) Record() *Record {
	rec := &Record{
		Alpha: s.alpha,
		Count: s.total,
		Zero:  s.zero,
		MinNS: int64(s.min),
		MaxNS: int64(s.max),
		SumNS: s.sum,
	}
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		rec.Keys = append(rec.Keys, s.kmin+int32(i))
		rec.Counts = append(rec.Counts, c)
	}
	return rec
}

// FromRecord rebuilds a sketch from its serialized form.
func FromRecord(rec *Record) (*Sketch, error) {
	if rec == nil {
		return nil, fmt.Errorf("sketch: nil record")
	}
	if len(rec.Keys) != len(rec.Counts) {
		return nil, fmt.Errorf("sketch: record has %d keys but %d counts", len(rec.Keys), len(rec.Counts))
	}
	if rec.Alpha < minAlpha || rec.Alpha > maxAlpha {
		return nil, fmt.Errorf("sketch: record alpha %v outside [%v, %v]", rec.Alpha, minAlpha, maxAlpha)
	}
	s := New(rec.Alpha)
	s.total = rec.Count
	s.zero = rec.Zero
	s.min = time.Duration(rec.MinNS)
	s.max = time.Duration(rec.MaxNS)
	s.sum = rec.SumNS
	s.saturated = rec.SumNS == math.MaxInt64 || rec.SumNS == math.MinInt64
	bucketed := rec.Zero
	for j, k := range rec.Keys {
		if rec.Counts[j] == 0 {
			return nil, fmt.Errorf("sketch: record bucket %d has zero count", k)
		}
		i := int(k - s.kmin)
		if i < 0 || i >= len(s.counts) {
			return nil, fmt.Errorf("sketch: record bucket %d outside the grid", k)
		}
		s.counts[i] += rec.Counts[j]
		bucketed += rec.Counts[j]
	}
	if bucketed != rec.Count {
		return nil, fmt.Errorf("sketch: record counts sum to %d, want %d", bucketed, rec.Count)
	}
	return s, nil
}
