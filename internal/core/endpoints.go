package core

import (
	"encoding/json"
	"fmt"
	"os"
)

// Endpoint is one invokable function URL as produced by the deployer (§IV:
// "a file that contains a set of endpoint URLs, each of which corresponds
// to a single function").
type Endpoint struct {
	// URL is the invocation address ("sim://aws/fn-r00" for the simulated
	// clouds, "http://..." for live endpoints).
	URL string `json:"url"`
	// Provider names the plugin that deployed the function.
	Provider string `json:"provider"`
	// Function is the entry function's deployed name.
	Function string `json:"function"`
	// Chain lists the function names along the deployed chain (entry
	// first); used by the client to compute instrumented transfer times.
	Chain []string `json:"chain,omitempty"`
}

// Endpoints is the deployer's output file.
type Endpoints struct {
	Provider  string     `json:"provider"`
	Endpoints []Endpoint `json:"endpoints"`
}

// Save writes the endpoints file as indented JSON.
func (e *Endpoints) Save(path string) error {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("core: marshal endpoints: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("core: write endpoints: %w", err)
	}
	return nil
}

// LoadEndpoints reads an endpoints file.
func LoadEndpoints(path string) (*Endpoints, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read endpoints: %w", err)
	}
	var e Endpoints
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("core: parse endpoints: %w", err)
	}
	return &e, nil
}
