package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/runner"
	"github.com/stellar-repro/stellar/internal/stats"
	"github.com/stellar-repro/stellar/internal/stats/sketch"
	"github.com/stellar-repro/stellar/internal/workflow"
)

// chainDiffOpts is the shared cell for the workflow-vs-hand-rolled-chain
// differential: a 2-node chain, fault-free, untraced (the hand-rolled chain
// never samples workflow spans).
func chainDiffOpts(engine cloud.EngineMode, workers int, transfer workflow.Transfer) WorkflowOptions {
	return WorkflowOptions{
		Provider:     "aws",
		Topology:     "chain-2",
		Workflows:    240,
		Shards:       4,
		Workers:      workers,
		Seed:         1,
		IAT:          20 * time.Millisecond,
		Burst:        2,
		Mode:         workflow.ModeSync,
		Transfer:     transfer,
		PayloadBytes: 64 << 10,
		ExecTime:     2 * time.Millisecond,
		Engine:       engine,
	}
}

// chainShard is one baseline shard's outcome: the client-observed latencies
// and the cloud's full counter set.
type chainShard struct {
	clients *stats.Sample
	metrics cloud.Metrics
}

// runHandRolledChainShard mirrors runWorkflowShard for the static chain: the
// same arrival loop drives external invocations of a producer whose
// FunctionSpec.Chain — not a workflow continuation — invokes the consumer.
func runHandRolledChainShard(opts WorkflowOptions, sh runner.Shard) (*chainShard, error) {
	n := shardInvocations(opts.Workflows, opts.Shards, sh.Index)
	out := &chainShard{clients: stats.NewSample(int(n))}
	if n == 0 {
		return out, nil
	}
	e, err := newEnv(opts.Provider, sh.Seed)
	if err != nil {
		return nil, err
	}
	defer e.close()
	c := e.cloud
	transfer := cloud.TransferInline
	if opts.Transfer == workflow.TransferBlobstore {
		transfer = cloud.TransferStorage
	}
	if err := c.Deploy(cloud.FunctionSpec{
		Name:     "n0",
		Runtime:  cloud.RuntimePython,
		Method:   cloud.DeployZIP,
		ExecTime: opts.ExecTime,
		Chain:    &cloud.ChainSpec{Next: "n1", Transfer: transfer, PayloadBytes: opts.PayloadBytes},
	}); err != nil {
		return nil, err
	}
	if err := c.Deploy(cloud.FunctionSpec{
		Name:     "n1",
		Runtime:  cloud.RuntimePython,
		Method:   cloud.DeployZIP,
		ExecTime: opts.ExecTime,
	}); err != nil {
		return nil, err
	}
	c.SetLatencyRecorder(out.clients)
	c.SetEngineMode(opts.Engine)

	runOne := func(p *des.Proc) {
		_, _ = c.Invoke(p, &cloud.Request{Fn: "n0"})
	}
	eng := e.eng
	if opts.Engine == cloud.EngineProc {
		eng.Spawn("workflow/arrivals", func(p *des.Proc) {
			remaining := n
			for remaining > 0 {
				burst := uint64(opts.Burst)
				if burst > remaining {
					burst = remaining
				}
				for j := uint64(0); j < burst; j++ {
					eng.Spawn("workflow/run", runOne)
				}
				remaining -= burst
				if remaining > 0 {
					p.Sleep(opts.IAT)
				}
			}
		})
	} else {
		remaining := n
		var arrive func()
		arrive = func() {
			burst := uint64(opts.Burst)
			if burst > remaining {
				burst = remaining
			}
			for j := uint64(0); j < burst; j++ {
				eng.Spawn("workflow/run", runOne)
			}
			remaining -= burst
			if remaining > 0 {
				eng.CallAfter(opts.IAT, arrive)
			}
		}
		eng.Call(arrive)
	}
	eng.Run(0)
	out.metrics = c.Metrics()
	return out, nil
}

// TestWorkflowChainMatchesHandRolledChain is the workflow engine's ground
// truth: a chain-2 workflow must be byte-identical — every client-observed
// latency, the merged latency sketch, and the full cloud counter set — to
// the hand-rolled two-function chain it generalizes, for both transfer
// modes, both engine forms, and any worker count. The continuation seam
// runs exactly where FunctionSpec.Chain's block runs, with the same
// operation order; any drift between the two paths lands here.
func TestWorkflowChainMatchesHandRolledChain(t *testing.T) {
	for _, transfer := range []workflow.Transfer{workflow.TransferInline, workflow.TransferBlobstore} {
		for _, engine := range engineForms {
			for _, workers := range []int{1, 8} {
				transfer, engine, workers := transfer, engine, workers
				t.Run(fmt.Sprintf("%s/%v/workers=%d", transfer, engine, workers), func(t *testing.T) {
					t.Parallel()
					opts := chainDiffOpts(engine, workers, transfer)
					res, err := RunWorkflow(opts)
					if err != nil {
						t.Fatal(err)
					}
					if res.Failed != 0 {
						t.Fatalf("%d workflow instances failed in a fault-free run", res.Failed)
					}

					type baseline struct {
						clients *stats.Sample
						metrics []cloud.Metrics
					}
					base := &baseline{clients: stats.NewSample(int(opts.Workflows))}
					pool := runner.Pool{Workers: opts.Workers, Seed: opts.Seed}
					_, err = runner.MapReduce(pool, opts.Shards, base,
						func(sh runner.Shard) (*chainShard, error) {
							return runHandRolledChainShard(opts, sh)
						},
						func(acc *baseline, sh *chainShard) (*baseline, error) {
							acc.clients.AddAll(sh.clients.Values())
							acc.metrics = append(acc.metrics, sh.metrics)
							return acc, nil
						})
					if err != nil {
						t.Fatal(err)
					}

					values := base.clients.Values()
					if got := res.ClientLats.Values(); !reflect.DeepEqual(got, values) {
						t.Fatalf("client latencies diverged: workflow %d values, chain %d values (first workflow=%v chain=%v)",
							len(got), len(values), head(got), head(values))
					}
					if !reflect.DeepEqual(res.CloudMetrics, base.metrics) {
						t.Fatalf("cloud metrics diverged:\nworkflow: %+v\nchain:    %+v", res.CloudMetrics, base.metrics)
					}
					wfSketch, chSketch := sketch.New(0), sketch.New(0)
					for _, v := range res.ClientLats.Values() {
						wfSketch.Add(v)
					}
					for _, v := range values {
						chSketch.Add(v)
					}
					if !reflect.DeepEqual(wfSketch.Record(), chSketch.Record()) {
						t.Fatal("latency sketches diverged despite identical values")
					}
				})
			}
		}
	}
}

func head(v []time.Duration) time.Duration {
	if len(v) == 0 {
		return -1
	}
	return v[0]
}

// workflowGoldenOpts is the fixed cell pinned by the preset fingerprints
// and reused by the worker-invariance and engine-form cells: traced, with a
// join-heavy default topology swap-in per test.
func workflowGoldenOpts(topology string, transfer workflow.Transfer, engine cloud.EngineMode, workers int) WorkflowOptions {
	return WorkflowOptions{
		Provider:     "aws",
		Topology:     topology,
		Workflows:    120,
		Shards:       4,
		Workers:      workers,
		Seed:         1,
		IAT:          25 * time.Millisecond,
		Burst:        2,
		Mode:         workflow.ModeSync,
		Transfer:     transfer,
		PayloadBytes: 64 << 10,
		ExecTime:     3 * time.Millisecond,
		Sample:       0.5,
		Engine:       engine,
	}
}

func renderWorkflow(t *testing.T, opts WorkflowOptions) string {
	t.Helper()
	res, err := RunWorkflow(opts)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	WriteWorkflowReport(&b, res)
	return b.String()
}

// TestWorkflowWorkerInvariance pins the acceptance criterion directly: the
// fanout-8 series — critical paths, per-edge transfer tails, and the span
// attribution report — renders byte-identically at Workers=1 and Workers=8,
// for both inline and blobstore edges.
func TestWorkflowWorkerInvariance(t *testing.T) {
	for _, transfer := range []workflow.Transfer{workflow.TransferInline, workflow.TransferBlobstore} {
		transfer := transfer
		t.Run(transfer.String(), func(t *testing.T) {
			t.Parallel()
			serial := renderWorkflow(t, workflowGoldenOpts("fanout-8", transfer, cloud.EngineAuto, 1))
			parallel := renderWorkflow(t, workflowGoldenOpts("fanout-8", transfer, cloud.EngineAuto, 8))
			if serial != parallel {
				t.Errorf("fanout-8 %s: Workers=1 and Workers=8 diverged\n--- serial ---\n%s--- parallel ---\n%s",
					transfer, serial, parallel)
			}
		})
	}
}

// workflowGoldenPresets are the four topology presets pinned by committed
// fingerprints (blobstore edges so the fixtures cover payload-store tails).
var workflowGoldenPresets = []string{"chain-4", "fanout-8", "diamond", "mapreduce"}

// TestGoldenWorkflowFingerprints pins each preset's full rendered report to
// a fixture generated with the seed engine, exactly like the figure
// fingerprints: regenerate with -update-golden only for intentional
// statistical changes, and Workers=8 must reproduce the Workers=1 bytes.
func TestGoldenWorkflowFingerprints(t *testing.T) {
	for _, preset := range workflowGoldenPresets {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			t.Parallel()
			path := filepath.Join("testdata", "golden", "workflow-"+preset+".fingerprint")
			fp := renderWorkflow(t, workflowGoldenOpts(preset, workflow.TransferBlobstore, cloud.EngineAuto, 1))
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(fp), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update-golden to regenerate): %v", err)
			}
			if fp != string(want) {
				t.Errorf("%s: Workers=1 output diverged from the seed-engine fixture\n--- got ---\n%s--- want ---\n%s",
					preset, fp, want)
			}
			if fp8 := renderWorkflow(t, workflowGoldenOpts(preset, workflow.TransferBlobstore, cloud.EngineAuto, 8)); fp8 != string(want) {
				t.Errorf("%s: Workers=8 output diverged from the seed-engine fixture\n--- got ---\n%s--- want ---\n%s",
					preset, fp8, want)
			}
		})
	}
}
