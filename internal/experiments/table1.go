package experiments

import (
	"fmt"
	"time"

	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/runner"
	"github.com/stellar-repro/stellar/internal/stats"
)

// Table1Cell is one provider's MR/TR for one factor.
type Table1Cell struct {
	// MR is the factor's median normalized to the provider's base warm
	// median; TR is the factor's p99 normalized the same way (§VII-A).
	MR, TR float64
	// PaperMR and PaperTR are Table I's published values.
	PaperMR, PaperTR float64
	// NA marks combinations the paper could not run (Azure transfers).
	NA bool
}

// Table1Row is one factor across providers.
type Table1Row struct {
	Factor string
	Cells  map[string]Table1Cell
}

// Table1Result is the reproduced Table I.
type Table1Result struct {
	Rows []Table1Row
	// BaseMedians are the per-provider warm medians used as normalizers.
	BaseMedians map[string]time.Duration
}

// paperTable1 holds the published MR/TR values (Table I).
var paperTable1 = map[string]map[string][2]float64{
	"Base warm":         {"aws": {1, 2}, "google": {1, 2}, "azure": {1, 1}},
	"Base cold":         {"aws": {10, 15}, "google": {28, 50}, "azure": {25, 64}},
	"Image size, 100MB": {"aws": {29, 49}, "google": {17, 60}, "azure": {59, 100}},
	"Inline transfer":   {"aws": {1, 2}, "google": {2, 3}},
	"Storage transfer":  {"aws": {3, 27}, "google": {5, 187}},
	"Bursty warm":       {"aws": {2, 11}, "google": {3, 5}, "azure": {5, 41}},
	"Bursty cold":       {"aws": {6, 12}, "google": {59, 100}, "azure": {41, 58}},
	"Bursty long":       {"aws": {12, 16}, "google": {64, 102}, "azure": {309, 619}},
}

// Table1Factors lists the rows in the paper's order.
var Table1Factors = []string{
	"Base warm", "Base cold", "Image size, 100MB", "Inline transfer",
	"Storage transfer", "Bursty warm", "Bursty cold", "Bursty long",
}

// Table1 reproduces Table I: for every studied tail-latency factor and
// provider, the median-to-base-median (MR) and tail-to-base-median (TR)
// ratios, normalized per provider to its own warm-invocation median.
// Transfer rows use 1MB payloads and the instrumented transfer time; burst
// rows use bursts of 100; the bursty-long row subtracts the 1-second
// execution time, all exactly as the paper specifies.
func Table1(opts Options) (*Table1Result, error) {
	opts = opts.normalized()
	res := &Table1Result{BaseMedians: make(map[string]time.Duration)}

	// Every cell of the table is an independent measurement on its own
	// simulated cloud; enumerate them all as shards (fixed order, so each
	// cell's shard seed is stable) and run them on the worker pool. The
	// base-warm normalization happens after collection.
	type cellCase struct {
		factor, prov string
		run          func(seed int64) (*stats.Sample, error)
	}
	var cases []cellCase
	for _, prov := range AllProviders {
		prov := prov
		cases = append(cases,
			// Base warm: individual invocations with the short IAT.
			cellCase{"Base warm", prov, func(seed int64) (*stats.Sample, error) {
				r, err := runBurst(prov, seed, opts.Engine, BurstShortIAT, 1, opts.Samples, 0)
				if err != nil {
					return nil, fmt.Errorf("table1 %s base warm: %w", prov, err)
				}
				return r.Latencies, nil
			}},
			// Base cold: individual invocations with the long IAT.
			cellCase{"Base cold", prov, func(seed int64) (*stats.Sample, error) {
				r, err := measure(prov, seed, opts.Engine, pythonFn("cold", opts.Replicas), coldRC(prov, opts))
				if err != nil {
					return nil, fmt.Errorf("table1 %s base cold: %w", prov, err)
				}
				return r.Latencies, nil
			}},
			// Image size: +100MB random-content file, cold invocations.
			cellCase{"Image size, 100MB", prov, func(seed int64) (*stats.Sample, error) {
				r, err := imageSizeRun(prov, seed, opts, 100<<20)
				if err != nil {
					return nil, fmt.Errorf("table1 %s image size: %w", prov, err)
				}
				return r.Latencies, nil
			}},
			// Bursty warm / cold: bursts of 100.
			cellCase{"Bursty warm", prov, func(seed int64) (*stats.Sample, error) {
				r, err := runBurst(prov, seed, opts.Engine, BurstShortIAT, 100, burstSamples(opts, 100), 0)
				if err != nil {
					return nil, fmt.Errorf("table1 %s bursty warm: %w", prov, err)
				}
				return r.Latencies, nil
			}},
			cellCase{"Bursty cold", prov, func(seed int64) (*stats.Sample, error) {
				r, err := runBurst(prov, seed, opts.Engine, BurstLongIAT, 100, burstSamples(opts, 100), 0)
				if err != nil {
					return nil, fmt.Errorf("table1 %s bursty cold: %w", prov, err)
				}
				return r.Latencies, nil
			}},
			// Bursty long: bursts of 100 with 1s execution; the execution
			// time is subtracted to isolate infrastructure and queueing
			// delays (Table I footnote).
			cellCase{"Bursty long", prov, func(seed int64) (*stats.Sample, error) {
				r, err := runBurst(prov, seed, opts.Engine, BurstLongIAT, 100, burstSamples(opts, 100), Fig9ExecTime)
				if err != nil {
					return nil, fmt.Errorf("table1 %s bursty long: %w", prov, err)
				}
				return r.Latencies.Sub(Fig9ExecTime), nil
			}},
		)
	}
	// Transfer rows: 1MB payloads on the providers that support them.
	for _, prov := range TransferProviders {
		prov := prov
		cases = append(cases,
			cellCase{"Inline transfer", prov, func(seed int64) (*stats.Sample, error) {
				r, err := runTransfer(prov, seed, opts.Engine, "inline", 1<<20, opts.Samples)
				if err != nil {
					return nil, fmt.Errorf("table1 %s inline: %w", prov, err)
				}
				return r.Transfers, nil
			}},
			cellCase{"Storage transfer", prov, func(seed int64) (*stats.Sample, error) {
				r, err := runTransfer(prov, seed, opts.Engine, "storage", 1<<20, opts.Samples)
				if err != nil {
					return nil, fmt.Errorf("table1 %s storage: %w", prov, err)
				}
				return r.Transfers, nil
			}},
		)
	}

	samples, err := runner.Map(opts.pool(), len(cases), func(sh runner.Shard) (*stats.Sample, error) {
		return cases[sh.Index].run(sh.Seed)
	})
	if err != nil {
		return nil, err
	}
	cells := make(map[string]map[string]*stats.Sample) // factor -> provider -> sample
	for i, c := range cases {
		if cells[c.factor] == nil {
			cells[c.factor] = make(map[string]*stats.Sample)
		}
		cells[c.factor][c.prov] = samples[i]
		if c.factor == "Base warm" {
			res.BaseMedians[c.prov] = samples[i].Median()
		}
	}

	for _, factor := range Table1Factors {
		row := Table1Row{Factor: factor, Cells: make(map[string]Table1Cell)}
		for _, prov := range AllProviders {
			cell := Table1Cell{}
			if paper, ok := paperTable1[factor][prov]; ok {
				cell.PaperMR, cell.PaperTR = paper[0], paper[1]
			}
			sample, ok := cells[factor][prov]
			if !ok {
				cell.NA = true
			} else {
				base := res.BaseMedians[prov]
				cell.MR = sample.MR(base)
				cell.TR = sample.TR(base)
			}
			row.Cells[prov] = cell
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// coldRC is the runtime configuration of a base cold study.
func coldRC(prov string, opts Options) core.RuntimeConfig {
	return core.RuntimeConfig{
		Samples: opts.Samples,
		IAT:     core.Duration(longIATFor(prov) / time.Duration(opts.Replicas)),
	}
}

// imageSizeRun measures cold starts with an extra image file (Fig. 4's
// configuration, reused by Table I).
func imageSizeRun(prov string, seed int64, opts Options, size int64) (*core.RunResult, error) {
	sc := pythonFn("imgsz", opts.Replicas)
	sc.Functions[0].Runtime = "go1.x"
	sc.Functions[0].ExtraImageBytes = size
	return measure(prov, seed, opts.Engine, sc, coldRC(prov, opts))
}

// burstSamples sizes a burst run: at least two bursts.
func burstSamples(opts Options, burst int) int {
	if opts.Samples < burst*2 {
		return burst * 2
	}
	return opts.Samples
}
