package experiments

import (
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/providers"
)

// Ablations isolate the design choices DESIGN.md calls out: each returns a
// provider profile with one mechanism removed, so benches and tests can
// show which observed behavior that mechanism is responsible for.

// AblationNoImageCache disables AWS's image-store cache. Without it, bursty
// cold starts lose their advantage over individual cold starts (§VI-D2's
// caching hypothesis).
func AblationNoImageCache() cloud.Config {
	cfg := providers.MustGet("aws")
	cfg.Name = "aws-no-image-cache"
	cfg.ImageStore.Cache.Enabled = false
	return cfg
}

// AblationAzureNoQueue gives Azure the no-queue policy. The Fig. 9
// two-orders-of-magnitude blow-up collapses to ordinary cold starts.
func AblationAzureNoQueue() cloud.Config {
	cfg := providers.MustGet("azure")
	cfg.Name = "azure-no-queue"
	cfg.Policy = cloud.PolicyConfig{Kind: cloud.PolicyNoQueue}
	cfg.QueueHandoffDelay = nil
	return cfg
}

// AblationNoSchedulerContention removes Google's image-store miss queueing.
// Cold-burst latency stops growing with burst size.
func AblationNoSchedulerContention() cloud.Config {
	cfg := providers.MustGet("google")
	cfg.Name = "google-no-contention"
	cfg.ImageStore.MissCongestionUnit = 0
	return cfg
}

// AblationNoWarmPool turns off AWS's warm generic instance pool and gives
// the runtimes distinct ZIP init costs. The runtime choice starts to matter
// for cold starts, contradicting Obs. 3 — which is the point: the pool is
// the paper's hypothesized reason runtimes do not matter on AWS.
func AblationNoWarmPool() cloud.Config {
	cfg := providers.MustGet("aws")
	cfg.Name = "aws-no-warm-pool"
	cfg.WarmGenericPool = false
	if cfg.RuntimeInit == nil {
		cfg.RuntimeInit = map[string]dist.Dist{}
	}
	cfg.RuntimeInit[cloud.RuntimeMethodKey(cloud.RuntimePython, cloud.DeployZIP)] =
		dist.LogNormalMedTail(300*time.Millisecond, 650*time.Millisecond)
	cfg.RuntimeInit[cloud.RuntimeMethodKey(cloud.RuntimeGo, cloud.DeployZIP)] =
		dist.LogNormalMedTail(40*time.Millisecond, 90*time.Millisecond)
	return cfg
}

// MeasureWithConfig runs one static+runtime configuration on a fresh
// environment built from an explicit profile (ablated or custom).
func MeasureWithConfig(cfg cloud.Config, seed int64, sc core.StaticConfig, rc core.RuntimeConfig) (*core.RunResult, error) {
	e, err := newEnvWithConfig(cfg, seed)
	if err != nil {
		return nil, err
	}
	defer e.close()
	return e.run(sc, rc)
}

// BurstWithConfig measures bursts on an explicit profile (the ablation
// counterpart of the Fig. 8/9 runner).
func BurstWithConfig(cfg cloud.Config, seed int64, kind BurstKind, burst, samples int, execTime time.Duration) (*core.RunResult, error) {
	rc := core.RuntimeConfig{
		Samples:   samples,
		BurstSize: burst,
		ExecTime:  core.Duration(execTime),
	}
	if kind == BurstShortIAT {
		rc.IAT = core.Duration(shortIAT)
		rc.WarmupDiscard = burst
	} else {
		rc.IAT = core.Duration(longIAT)
	}
	return MeasureWithConfig(cfg, seed, pythonFn("burst", 1), rc)
}

// ColdWithConfig measures individual cold invocations on an explicit
// profile.
func ColdWithConfig(cfg cloud.Config, seed int64, opts Options, runtime cloud.Runtime) (*core.RunResult, error) {
	opts = opts.normalized()
	sc := pythonFn("cold", opts.Replicas)
	sc.Functions[0].Runtime = string(runtime)
	iat := longIAT
	if cfg.KeepAlive.Fixed > 0 {
		iat = cfg.KeepAlive.Fixed + 30*time.Second
	}
	return MeasureWithConfig(cfg, seed, sc, core.RuntimeConfig{
		Samples: opts.Samples,
		IAT:     core.Duration(iat / time.Duration(opts.Replicas)),
	})
}
