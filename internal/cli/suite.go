package cli

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"path/filepath"

	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/experiments"
	"github.com/stellar-repro/stellar/internal/runner"
)

// cmdSuite runs a whole measurement campaign from a suite configuration
// file: each experiment deploys into a fresh simulated cloud, runs its load
// scenario, and reports; optional per-experiment CSVs land in -csv-dir.
// Experiments are independent, so they run on a worker pool; each draws its
// randomness from a per-experiment shard stream and buffers its report, so
// the output is identical at any -workers setting.
func cmdSuite(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("suite", flag.ContinueOnError)
	fs.SetOutput(stdout)
	configPath := fs.String("config", "", "suite configuration file (required)")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "concurrent experiments (0 = all CPUs, 1 = serial)")
	csvDir := fs.String("csv-dir", "", "directory for per-experiment CSV files")
	breakdown := fs.Bool("breakdown", false, "print per-component latency breakdowns")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		return fmt.Errorf("suite: -config is required")
	}
	sc, err := core.LoadSuiteConfig(*configPath)
	if err != nil {
		return err
	}
	if err := sc.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "suite: %d experiments\n\n", len(sc.Experiments))
	type expOut struct {
		report string
		sum    string
	}
	pool := runner.Pool{Workers: *workers, Seed: *seed}
	outs, err := runner.Map(pool, len(sc.Experiments), func(sh runner.Shard) (expOut, error) {
		exp := sc.Experiments[sh.Index]
		var buf bytes.Buffer
		env, err := experiments.NewEnv(exp.Static.Provider, sh.Seed)
		if err != nil {
			return expOut{}, fmt.Errorf("suite %q: %w", exp.Name, err)
		}
		defer env.Close()
		eps, err := env.Deployer().Deploy(&exp.Static)
		if err != nil {
			return expOut{}, fmt.Errorf("suite %q: %w", exp.Name, err)
		}
		res, err := env.Client().Run(eps.Endpoints, exp.Runtime)
		if err != nil {
			return expOut{}, fmt.Errorf("suite %q: %w", exp.Name, err)
		}
		fmt.Fprintf(&buf, "== %s (%s, %d endpoints)\n", exp.Name, exp.Static.Provider, len(eps.Endpoints))
		printRun(&buf, res, *breakdown)
		fmt.Fprintln(&buf)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, exp.Name+".csv")
			if err := writeCSV(path, exp.Name, res); err != nil {
				return expOut{}, fmt.Errorf("suite %q: %w", exp.Name, err)
			}
			fmt.Fprintf(&buf, "csv written to %s\n\n", path)
		}
		return expOut{report: buf.String(), sum: res.Summary().String()}, nil
	})
	if err != nil {
		return err
	}
	for _, o := range outs {
		fmt.Fprint(stdout, o.report)
	}
	fmt.Fprintln(stdout, "== suite summary")
	for i, o := range outs {
		fmt.Fprintf(stdout, "%-28s %s\n", sc.Experiments[i].Name, o.sum)
	}
	return nil
}
