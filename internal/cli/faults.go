package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/stellar-repro/stellar/internal/experiments"
	"github.com/stellar-repro/stellar/internal/faults"
	"github.com/stellar-repro/stellar/internal/providers"
)

// cmdFaults runs the fault-injection sweep: a failure-rate × retry-policy
// grid against one simulated provider, reporting success rate, retry cost,
// goodput, and the latency tail the retries inflate.
func cmdFaults(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("faults", flag.ContinueOnError)
	fs.SetOutput(stdout)
	prof := addProfileFlags(fs)
	provider := fs.String("provider", "aws", "provider profile")
	providerFile := fs.String("provider-file", "", "JSON provider profile to load and use")
	configPath := fs.String("config", "", "fault config JSON ({\"inject\": ..., \"policy\": ...})")
	invocations := fs.Uint64("n", 2000, "requests per grid cell, split across shards")
	shards := fs.Int("shards", 4, "independent simulation shards per cell")
	workers := fs.Int("workers", 0, "concurrent shard simulations (0 = all CPUs, 1 = serial)")
	seed := fs.Int64("seed", 1, "random seed")
	iat := fs.Duration("iat", 100*time.Millisecond, "inter-arrival time between bursts")
	burst := fs.Int("burst", 1, "requests per arrival step")
	exec := fs.Duration("exec", 0, "function busy-spin time")
	rates := fs.String("rates", "", "comma-separated failure-rate scales (default 0,0.02,0.05,0.1)")
	retriesGrid := fs.String("retries", "", "comma-separated max-retry values for the policy axis (default 0,3)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-attempt client timeout for retrying policies")
	backoff := fs.Duration("backoff", 100*time.Millisecond, "base retry backoff")
	backoffCap := fs.Duration("backoff-cap", time.Second, "retry backoff cap")
	jitter := fs.Bool("jitter", true, "add deterministic jitter to backoff")
	hedge := fs.Duration("hedge", 0, "launch a hedged attempt after this delay (0 = off)")
	engine := addEngineFlag(fs)
	jsonPath := fs.String("json", "", "write the sweep as JSON to this file (\"-\" = stdout)")
	csvPath := fs.String("csv", "", "write the sweep as CSV to this file (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	if *providerFile != "" {
		loaded, err := providers.RegisterFile(*providerFile)
		if err != nil {
			return err
		}
		*provider = loaded
	}
	mode, err := engine.mode()
	if err != nil {
		return err
	}

	opts := experiments.FaultsOptions{
		Provider:    *provider,
		Invocations: *invocations,
		Shards:      *shards,
		Workers:     *workers,
		Seed:        *seed,
		IAT:         *iat,
		Burst:       *burst,
		ExecTime:    *exec,
		Engine:      mode,
	}
	if opts.Rates, err = parseFloats(*rates); err != nil {
		return fmt.Errorf("faults: -rates: %w", err)
	}
	if opts.Policies, err = buildPolicyGrid(*retriesGrid, *timeout, *backoff, *backoffCap, *jitter, *hedge); err != nil {
		return err
	}
	if *configPath != "" {
		loaded, err := faults.LoadFile(*configPath)
		if err != nil {
			return err
		}
		if loaded.Inject != nil {
			opts.Modes = *loaded.Inject
		}
		if loaded.Policy != nil {
			// An explicit policy replaces the flag-built grid, keeping
			// the naive client as the baseline column.
			opts.Policies = []faults.Policy{{}, *loaded.Policy}
		}
	}

	res, err := experiments.RunFaults(opts)
	if err != nil {
		return err
	}
	experiments.WriteFaultsReport(stdout, res)
	if *jsonPath != "" {
		if err := writeTo(*jsonPath, stdout, func(w io.Writer) error {
			return experiments.WriteFaultsJSON(w, res)
		}); err != nil {
			return err
		}
	}
	if *csvPath != "" {
		if err := writeTo(*csvPath, stdout, func(w io.Writer) error {
			return experiments.WriteFaultsCSV(w, res)
		}); err != nil {
			return err
		}
	}
	return nil
}

// writeTo runs emit against a created file, or stdout when path is "-".
func writeTo(path string, stdout io.Writer, emit func(io.Writer) error) error {
	if path == "-" {
		return emit(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseFloats parses a comma-separated float list ("" = nil for defaults).
func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// buildPolicyGrid turns the retry-count list plus shared policy flags into
// the policy axis. Retry count 0 maps to the naive client (no timeout, no
// backoff): the baseline every resilient variant is compared against.
func buildPolicyGrid(retriesGrid string, timeout, backoff, backoffCap time.Duration, jitter bool, hedge time.Duration) ([]faults.Policy, error) {
	if retriesGrid == "" {
		retriesGrid = "0,3"
	}
	var out []faults.Policy
	for _, p := range strings.Split(retriesGrid, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("faults: -retries: %w", err)
		}
		if r == 0 {
			out = append(out, faults.Policy{})
			continue
		}
		pol := faults.Policy{
			Timeout:     timeout,
			MaxRetries:  r,
			BackoffBase: backoff,
			BackoffCap:  backoffCap,
			Jitter:      jitter,
			HedgeAfter:  hedge,
		}
		if err := pol.Validate(); err != nil {
			return nil, fmt.Errorf("faults: %w", err)
		}
		out = append(out, pol)
	}
	return out, nil
}
