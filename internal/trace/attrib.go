package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// attribRetried is the attribution bucket that absorbs failed service
// attempts and retry backoffs, mirroring cloud.Breakdown.Retried.
const attribRetried = "retried"

// DefaultQuantiles are the attribution report's latency percentiles: the
// paper's headline median plus the tail levels tail-latency work cares
// about.
var DefaultQuantiles = []float64{0.50, 0.99, 0.999}

// queueStages are the stages counted as queueing (as opposed to service)
// time in the queue-wait vs service-time split: time spent waiting for
// capacity rather than being actively processed.
var queueStages = map[string]bool{
	StageQueueWait.String():    true,
	StageQueueHandoff.String(): true,
	StageCongestion.String():   true,
	StageSlowPath.String():     true,
}

// StageShare is one stage's contribution at each report quantile.
type StageShare struct {
	// Stage is the stage wire name, or "retried" for folded failed attempts.
	Stage string
	// Mean is the stage's mean duration among requests near each quantile.
	Mean []time.Duration
	// Share is Mean divided by the mean total latency near that quantile.
	Share []float64
}

// Attribution is the per-stage tail-attribution report: for requests around
// each latency quantile, where the time went.
type Attribution struct {
	// Quantiles are the report's latency quantiles (e.g. 0.50, 0.99, 0.999).
	Quantiles []float64
	// Requests is the number of traces attributed.
	Requests int
	// Totals are the quantile latencies of the attributed traces.
	Totals []time.Duration
	// Window is the number of traces averaged per quantile.
	Window []int
	// Stages lists contributions in pipeline order (zero-contribution
	// stages omitted), with retried last.
	Stages []StageShare
	// QueueShare and ServiceShare split each quantile's latency into
	// queueing (queue-wait, handoff, congestion, slow-path) vs service time.
	QueueShare   []float64
	ServiceShare []float64
}

// attribStage maps a span to its attribution bucket: spans from failed
// attempts and retry backoffs fold into the retried bucket, so buckets
// match cloud.Breakdown semantics and still sum to the observed latency.
func attribStage(sp SpanRecord, attempts int) string {
	if sp.Stage == StageRetryBackoff.String() {
		return attribRetried
	}
	if sp.Attempt != 0 && sp.Attempt != attempts {
		return attribRetried
	}
	return sp.Stage
}

// quantileWindow returns the [lo, hi) index window of ±2% of the sample
// (at least ±1) centered on quantile q of an n-element sorted slice, plus
// the center index.
func quantileWindow(n int, q float64) (lo, hi, center int) {
	center = int(q*float64(n-1) + 0.5)
	w := n / 50
	if w < 1 {
		w = 1
	}
	lo, hi = center-w, center+w+1
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	return lo, hi, center
}

// Attribute computes the per-stage attribution of the given traces at the
// given quantiles (DefaultQuantiles when nil). For each quantile it averages
// stage durations over a window of traces centered on that quantile of the
// total-latency distribution, so "which stage inflates p99" is answered
// from the requests that actually sit at p99. Returns nil when recs is
// empty.
func Attribute(recs []RequestRecord, quantiles []float64) *Attribution {
	if len(recs) == 0 {
		return nil
	}
	if quantiles == nil {
		quantiles = DefaultQuantiles
	}
	sorted := make([]*RequestRecord, len(recs))
	for i := range recs {
		sorted[i] = &recs[i]
	}
	sort.Slice(sorted, func(i, j int) bool {
		ti, tj := sorted[i].Total(), sorted[j].Total()
		if ti != tj {
			return ti < tj
		}
		if sorted[i].Shard != sorted[j].Shard {
			return sorted[i].Shard < sorted[j].Shard
		}
		return sorted[i].ID < sorted[j].ID
	})
	n := len(sorted)
	nq := len(quantiles)
	a := &Attribution{
		Quantiles:    quantiles,
		Requests:     n,
		Totals:       make([]time.Duration, nq),
		Window:       make([]int, nq),
		QueueShare:   make([]float64, nq),
		ServiceShare: make([]float64, nq),
	}
	stageMeans := make(map[string][]time.Duration)
	meanTotals := make([]time.Duration, nq)
	for qi, q := range quantiles {
		lo, hi, center := quantileWindow(n, q)
		a.Totals[qi] = sorted[center].Total()
		a.Window[qi] = hi - lo

		var totalSum, queueSum time.Duration
		stageSums := make(map[string]time.Duration)
		for _, r := range sorted[lo:hi] {
			totalSum += r.Total()
			for _, sp := range r.Spans {
				if sp.Detail {
					continue
				}
				bucket := attribStage(sp, r.Attempts)
				stageSums[bucket] += time.Duration(sp.DurNS)
				if queueStages[bucket] {
					queueSum += time.Duration(sp.DurNS)
				}
			}
		}
		count := time.Duration(hi - lo)
		meanTotals[qi] = totalSum / count
		for bucket, sum := range stageSums {
			if stageMeans[bucket] == nil {
				stageMeans[bucket] = make([]time.Duration, nq)
			}
			stageMeans[bucket][qi] = sum / count
		}
		if totalSum > 0 {
			a.QueueShare[qi] = float64(queueSum) / float64(totalSum)
			a.ServiceShare[qi] = 1 - a.QueueShare[qi]
		}
	}
	// Emit rows in pipeline order, with the retried bucket last.
	for s := Stage(0); s < StageColdSchedulerQueue; s++ {
		if means, ok := stageMeans[s.String()]; ok {
			a.Stages = append(a.Stages, buildRow(s.String(), means, meanTotals))
		}
	}
	if means, ok := stageMeans[attribRetried]; ok {
		a.Stages = append(a.Stages, buildRow(attribRetried, means, meanTotals))
	}
	return a
}

func buildRow(bucket string, means, meanTotals []time.Duration) StageShare {
	row := StageShare{Stage: bucket, Mean: means, Share: make([]float64, len(means))}
	for qi, m := range means {
		if meanTotals[qi] > 0 {
			row.Share[qi] = float64(m) / float64(meanTotals[qi])
		}
	}
	return row
}

// Write renders the attribution as a fixed-width table.
func (a *Attribution) Write(w io.Writer) {
	fmt.Fprintf(w, "tail attribution (%d sampled requests)\n", a.Requests)
	fmt.Fprintf(w, "%-17s", "stage")
	for qi, q := range a.Quantiles {
		fmt.Fprintf(w, " %19s", fmt.Sprintf("p%g (%v)", q*100, a.Totals[qi].Round(time.Millisecond)))
	}
	fmt.Fprintln(w)
	for _, row := range a.Stages {
		fmt.Fprintf(w, "%-17s", row.Stage)
		for qi := range a.Quantiles {
			fmt.Fprintf(w, " %11v %6.1f%%", row.Mean[qi].Round(10*time.Microsecond), row.Share[qi]*100)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-17s", "queue-wait share")
	for qi := range a.Quantiles {
		fmt.Fprintf(w, " %18.1f%%", a.QueueShare[qi]*100)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-17s", "service share")
	for qi := range a.Quantiles {
		fmt.Fprintf(w, " %18.1f%%", a.ServiceShare[qi]*100)
	}
	fmt.Fprintln(w)
}
