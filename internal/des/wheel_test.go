package des

import (
	"math/rand"
	"testing"
	"time"
)

// TestSlackTimerNeverEarlyAtMostOneTickLate pins the wheel's firing
// contract: a slack timer runs at or after its deadline, and no more than
// one tick after it.
func TestSlackTimerNeverEarlyAtMostOneTickLate(t *testing.T) {
	const tick = 10 * time.Millisecond
	e := NewEngine()
	defer e.Close()
	e.SetTimerSlack(tick)
	rng := rand.New(rand.NewSource(42))
	checked := 0
	for i := 0; i < 2000; i++ {
		d := time.Duration(rng.Int63n(int64(90 * time.Second)))
		deadline := e.Now() + d
		e.AfterSlack(d, func() {
			checked++
			if e.Now() < deadline {
				t.Errorf("slack timer fired %v early (deadline %v, now %v)", deadline-e.Now(), deadline, e.Now())
			}
			if e.Now() > deadline+tick {
				t.Errorf("slack timer fired %v late, beyond one tick (deadline %v, now %v)", e.Now()-deadline, deadline, e.Now())
			}
		})
	}
	e.Run(0)
	if checked != 2000 {
		t.Fatalf("fired %d of 2000 slack timers", checked)
	}
	if e.PendingEvents() != 0 {
		t.Fatalf("%d events left after drain", e.PendingEvents())
	}
}

// TestSlackTimerQuantizesToTickBoundary: with the wheel on, callbacks run
// exactly on tick multiples.
func TestSlackTimerQuantizesToTickBoundary(t *testing.T) {
	const tick = 7 * time.Millisecond
	e := NewEngine()
	defer e.Close()
	e.SetTimerSlack(tick)
	fired := 0
	for _, d := range []time.Duration{time.Millisecond, tick, tick + 1, 3*tick - 1, 100 * tick} {
		e.AfterSlack(d, func() {
			fired++
			if e.Now()%tick != 0 {
				t.Errorf("slack timer fired off-boundary at %v (tick %v)", e.Now(), tick)
			}
		})
	}
	e.Run(0)
	if fired != 5 {
		t.Fatalf("fired %d of 5", fired)
	}
}

// TestAfterSlackIsAfterWithoutWheel: with no wheel installed, AfterSlack
// must be indistinguishable from After — this identity is what keeps every
// existing golden byte-identical at the default configuration.
func TestAfterSlackIsAfterWithoutWheel(t *testing.T) {
	run := func(slackForm bool) []Time {
		e := NewEngine()
		defer e.Close()
		var fires []Time
		sched := func(d time.Duration) {
			fn := func() { fires = append(fires, e.Now()) }
			if slackForm {
				e.AfterSlack(d, fn)
			} else {
				e.After(d, fn)
			}
		}
		sched(13 * time.Millisecond)
		sched(5 * time.Millisecond)
		tm := e.AfterSlack(9*time.Millisecond, func() { t.Error("canceled timer fired") })
		sched(5 * time.Millisecond) // same-instant tie, ordered by seq
		if !tm.Cancel() {
			t.Fatal("cancel failed")
		}
		e.Run(0)
		return fires
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("fire counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fire %d at %v via After but %v via AfterSlack", i, a[i], b[i])
		}
	}
}

// TestSlackTimerCancel covers the wheel's cancel semantics: cancellation
// prevents firing, double-cancel is inert, stale handles on recycled slots
// are inert, and Pending tracks wheel timers.
func TestSlackTimerCancel(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	e.SetTimerSlack(time.Millisecond)
	tm := e.AfterSlack(50*time.Millisecond, func() { t.Error("canceled slack timer fired") })
	if !tm.Pending() {
		t.Fatal("fresh slack timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should be inert")
	}
	if tm.Pending() {
		t.Fatal("canceled slack timer reports pending")
	}
	// A fresh slack timer reuses the freed handle slot; the stale Timer
	// must not touch it.
	fired := false
	fresh := e.AfterSlack(60*time.Millisecond, func() { fired = true })
	if tm.Cancel() {
		t.Fatal("stale Timer canceled a recycled slack handle")
	}
	e.Run(0)
	if !fired {
		t.Fatal("fresh slack timer did not fire")
	}
	if fresh.Pending() {
		t.Fatal("fired slack timer still reports pending")
	}
}

// TestSlackTimerCancelSiblingFromCallback: a firing slack callback cancels
// another timer quantized to the same tick. The wheel drains slots one
// node at a time through the normal unlink path precisely so this is safe.
func TestSlackTimerCancelSiblingFromCallback(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	e.SetTimerSlack(10 * time.Millisecond)
	var siblings [8]Timer
	fired := 0
	canceled := false
	// All nine land on the same tick; the first to fire (last inserted)
	// cancels three siblings mid-drain.
	for i := range siblings {
		siblings[i] = e.AfterSlack(15*time.Millisecond, func() { fired++ })
	}
	e.AfterSlack(15*time.Millisecond, func() {
		canceled = siblings[1].Cancel() && siblings[3].Cancel() && siblings[5].Cancel()
	})
	e.Run(0)
	if !canceled {
		t.Fatal("sibling cancels failed")
	}
	if fired != len(siblings)-3 {
		t.Fatalf("fired %d siblings, want %d", fired, len(siblings)-3)
	}
	if e.PendingEvents() != 0 {
		t.Fatalf("%d events left after drain", e.PendingEvents())
	}
}

// TestSlackTimerLevel1Cascade places timers beyond the level-0 window so
// they enter level 1, cascade down as the wheel turns, and still fire
// within one tick of their deadlines — including several sharing one L1
// slot and one landing exactly on a 256-tick base.
func TestSlackTimerLevel1Cascade(t *testing.T) {
	const tick = time.Millisecond
	e := NewEngine()
	defer e.Close()
	e.SetTimerSlack(tick)
	deadlines := []time.Duration{
		256 * tick, // first L1 slot's base exactly
		257 * tick,
		300*tick + tick/2,
		511 * tick, // same L1 slot as the above three
		512 * tick, // next slot's base
		5000 * tick,
		16128 * tick, // horizon edge, still on the wheel
	}
	fired := 0
	for _, d := range deadlines {
		deadline := e.Now() + d
		e.AfterSlack(d, func() {
			fired++
			if e.Now() < deadline || e.Now() > deadline+tick {
				t.Errorf("L1 timer deadline %v fired at %v", deadline, e.Now())
			}
		})
	}
	e.Run(0)
	if fired != len(deadlines) {
		t.Fatalf("fired %d of %d", fired, len(deadlines))
	}
}

// TestSlackTimerBeyondHorizonFallsBack: deadlines past the wheel's horizon
// take the exact heap path and fire exactly, and their Timers cancel like
// any other.
func TestSlackTimerBeyondHorizonFallsBack(t *testing.T) {
	const tick = time.Millisecond
	e := NewEngine()
	defer e.Close()
	e.SetTimerSlack(tick)
	d := 20000 * tick // past wheelMaxTicks=16128
	var firedAt Time
	e.AfterSlack(d, func() { firedAt = e.Now() })
	if e.SlackTimers() != 0 {
		t.Fatalf("beyond-horizon timer landed on the wheel (%d slack timers)", e.SlackTimers())
	}
	cancelMe := e.AfterSlack(d, func() { t.Error("canceled fallback timer fired") })
	if !cancelMe.Cancel() {
		t.Fatal("fallback cancel failed")
	}
	e.Run(0)
	if firedAt != d {
		t.Fatalf("fallback timer fired at %v, want exactly %v", firedAt, d)
	}
}

// TestSlackTimerIdleGapResync: after the wheel drains and sits idle for
// longer than its horizon, new slack timers must land on the wheel again
// (not the heap fallback).
func TestSlackTimerIdleGapResync(t *testing.T) {
	const tick = time.Millisecond
	e := NewEngine()
	defer e.Close()
	e.SetTimerSlack(tick)
	e.AfterSlack(5*tick, func() {})
	e.Run(0)
	// Pass the horizon with heap-only traffic.
	e.After(20000*tick, func() {})
	e.Run(0)
	e.AfterSlack(10*tick, func() {})
	if e.SlackTimers() != 1 {
		t.Fatalf("post-gap slack timer fell back to the heap (%d slack timers)", e.SlackTimers())
	}
	e.Run(0)
	if e.SlackTimers() != 0 {
		t.Fatalf("%d slack timers left after drain", e.SlackTimers())
	}
}

// TestSlackExpiryEquivalence runs the same randomized keep-alive churn
// (arm, sometimes cancel-and-rearm, count expiries) with the wheel off and
// on: the set of timers that expire must be identical — the wheel changes
// placement within a tick, never which timers fire.
func TestSlackExpiryEquivalence(t *testing.T) {
	run := func(slack time.Duration) (fired []int) {
		e := NewEngine()
		defer e.Close()
		if slack > 0 {
			e.SetTimerSlack(slack)
		}
		rng := rand.New(rand.NewSource(7))
		const n = 500
		timers := make([]Timer, n)
		for i := 0; i < n; i++ {
			i := i
			timers[i] = e.AfterSlack(time.Duration(1+rng.Int63n(int64(10*time.Second))), func() {
				fired = append(fired, i)
			})
		}
		// Cancel a deterministic subset immediately; they must never fire.
		for i := 0; i < n; i += 3 {
			timers[i].Cancel()
		}
		e.Run(0)
		return fired
	}
	exact := run(0)
	slack := run(50 * time.Millisecond)
	if len(exact) != len(slack) {
		t.Fatalf("expiry counts differ: exact=%d wheel=%d", len(exact), len(slack))
	}
	seen := map[int]bool{}
	for _, i := range exact {
		seen[i] = true
	}
	for _, i := range slack {
		if !seen[i] {
			t.Fatalf("wheel fired timer %d that the exact heap did not", i)
		}
	}
}

// TestSlackTimerDeterminism: two identical runs over the wheel replay
// byte-identically (fire order included), the property every golden rests on.
func TestSlackTimerDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		defer e.Close()
		e.SetTimerSlack(3 * time.Millisecond)
		rng := rand.New(rand.NewSource(99))
		var order []int
		for i := 0; i < 800; i++ {
			i := i
			e.AfterSlack(time.Duration(rng.Int63n(int64(5*time.Second))), func() {
				order = append(order, i)
			})
		}
		e.Run(0)
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fire order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestSetTimerSlackGuards pins the knob's contract: no reconfiguration
// while slack timers are pending, negative slack panics, and idempotent
// re-set with the same tick is allowed.
func TestSetTimerSlackGuards(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	e.SetTimerSlack(time.Millisecond)
	e.SetTimerSlack(time.Millisecond) // same tick: no-op
	if e.TimerSlack() != time.Millisecond {
		t.Fatalf("TimerSlack = %v, want 1ms", e.TimerSlack())
	}
	tm := e.AfterSlack(time.Second, func() {})
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("retick with pending slack timers", func() { e.SetTimerSlack(2 * time.Millisecond) })
	mustPanic("disable with pending slack timers", func() { e.SetTimerSlack(0) })
	tm.Cancel()
	e.SetTimerSlack(0)
	if e.TimerSlack() != 0 {
		t.Fatalf("TimerSlack = %v after disable, want 0", e.TimerSlack())
	}
	mustPanic("negative slack", func() { e.SetTimerSlack(-time.Millisecond) })
}

// TestPendingEventsIncludesWheel: the pending count covers wheel timers
// and returns to zero after a drain.
func TestPendingEventsIncludesWheel(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	e.SetTimerSlack(time.Millisecond)
	for i := 0; i < 10; i++ {
		e.AfterSlack(time.Duration(i+1)*10*time.Millisecond, func() {})
	}
	if pe := e.PendingEvents(); pe < 10 {
		t.Fatalf("PendingEvents = %d with 10 wheel timers pending", pe)
	}
	if e.SlackTimers() != 10 {
		t.Fatalf("SlackTimers = %d, want 10", e.SlackTimers())
	}
	e.Run(0)
	if pe := e.PendingEvents(); pe != 0 {
		t.Fatalf("PendingEvents = %d after drain, want 0", pe)
	}
}

// TestAllocFreeSlackTimerChurn is the wheel's allocation gate: once the
// node array, handle table, and slot lists have grown, the keep-alive
// pattern — cancel a live slack timer, arm a new one, let a few expire —
// must run allocation-free.
func TestAllocFreeSlackTimerChurn(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	e.SetTimerSlack(time.Millisecond)
	const live = 256
	timers := make([]Timer, live)
	fns := make([]func(), live)
	for i := range fns {
		i := i
		fns[i] = func() { timers[i] = e.AfterSlack(time.Second, fns[i]) }
	}
	for i := range timers {
		timers[i] = e.AfterSlack(time.Duration(i+1)*4*time.Millisecond, fns[i])
	}
	next := 0
	round := func() {
		for k := 0; k < 64; k++ {
			i := next
			next++
			if next == live {
				next = 0
			}
			if timers[i].Cancel() {
				timers[i] = e.AfterSlack(time.Second, fns[i])
			}
		}
		e.Run(e.Now() + 10*time.Millisecond)
	}
	for i := 0; i < 8; i++ {
		round() // warm: grow nodes, handles, slot lists, alarm churn
	}
	if avg := testing.AllocsPerRun(50, round); avg != 0 {
		t.Fatalf("slack-timer churn allocates %.2f allocs per round, want 0", avg)
	}
}
