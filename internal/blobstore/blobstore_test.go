package blobstore

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
)

func testStore(t *testing.T, cfg Config) (*des.Engine, *Store) {
	t.Helper()
	eng := des.NewEngine()
	t.Cleanup(eng.Close)
	return eng, New(eng, cfg, dist.NewStreams(1).Stream("store"))
}

// run executes fn as a process and drains the engine.
func run(eng *des.Engine, fn func(p *des.Proc)) {
	eng.Spawn("test", fn)
	eng.Run(0)
}

func TestPutThenGet(t *testing.T) {
	eng, s := testStore(t, Config{
		Name:       "s3",
		GetLatency: dist.Constant(20 * time.Millisecond),
		PutLatency: dist.Constant(30 * time.Millisecond),
	})
	var getLat time.Duration
	var size int64
	run(eng, func(p *des.Proc) {
		putLat := s.Put(p, "obj", 1024)
		if putLat != 30*time.Millisecond {
			t.Errorf("put latency = %v", putLat)
		}
		var err error
		size, getLat, err = s.Get(p, "obj")
		if err != nil {
			t.Errorf("get: %v", err)
		}
	})
	if size != 1024 {
		t.Fatalf("size = %d", size)
	}
	if getLat != 20*time.Millisecond {
		t.Fatalf("get latency = %v", getLat)
	}
	m := s.Metrics()
	if m.Gets != 1 || m.Puts != 1 || m.BytesRead != 1024 || m.BytesPut != 1024 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestGetMissing(t *testing.T) {
	eng, s := testStore(t, Config{Name: "s3"})
	run(eng, func(p *des.Proc) {
		if _, _, err := s.Get(p, "nope"); err == nil {
			t.Error("expected error for missing object")
		}
	})
}

func TestSeedAndSize(t *testing.T) {
	_, s := testStore(t, Config{Name: "s3"})
	s.Seed("image", 50<<20)
	if !s.Exists("image") {
		t.Fatal("seeded object missing")
	}
	size, err := s.Size("image")
	if err != nil || size != 50<<20 {
		t.Fatalf("size = %d, err = %v", size, err)
	}
	if _, err := s.Size("absent"); err == nil {
		t.Fatal("expected error for absent object size")
	}
}

func TestBandwidthScalesWithSize(t *testing.T) {
	eng, s := testStore(t, Config{
		Name:            "s3",
		GetLatency:      dist.Constant(100 * time.Millisecond),
		GetBandwidthBps: 800e6, // 100 MB/s
	})
	s.Seed("small", 1e6)   // 1 MB -> 10ms transfer
	s.Seed("large", 100e6) // 100 MB -> 1s transfer
	var smallLat, largeLat time.Duration
	run(eng, func(p *des.Proc) {
		_, smallLat, _ = s.Get(p, "small")
		_, largeLat, _ = s.Get(p, "large")
	})
	if smallLat != 110*time.Millisecond {
		t.Fatalf("small = %v, want 110ms", smallLat)
	}
	if largeLat != 1100*time.Millisecond {
		t.Fatalf("large = %v, want 1.1s", largeLat)
	}
}

func TestBandwidthJitterBounds(t *testing.T) {
	eng, s := testStore(t, Config{
		Name:               "s3",
		GetBandwidthBps:    8e6, // 1 MB/s
		BandwidthJitterPct: 0.25,
	})
	s.Seed("obj", 1e6) // nominal 1s transfer
	var lats []time.Duration
	run(eng, func(p *des.Proc) {
		for i := 0; i < 200; i++ {
			_, lat, _ := s.Get(p, "obj")
			lats = append(lats, lat)
		}
	})
	nominal := float64(time.Second)
	lo := time.Duration(nominal / 1.25)
	hi := time.Duration(nominal / 0.75)
	varied := false
	for _, l := range lats {
		if l < lo-time.Millisecond || l > hi+time.Millisecond {
			t.Fatalf("jittered latency %v outside [%v,%v]", l, lo, hi)
		}
		if l != lats[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter produced constant latencies")
	}
}

func TestCacheAlwaysPolicy(t *testing.T) {
	eng, s := testStore(t, Config{
		Name:       "aws-image-store",
		GetLatency: dist.Constant(400 * time.Millisecond),
		Cache: CacheConfig{
			Enabled:          true,
			ActivationCount:  1,
			ActivationWindow: time.Minute,
			TTL:              2 * time.Minute,
			HitLatency:       dist.Constant(10 * time.Millisecond),
		},
	})
	s.Seed("img", 1)
	var first, second, afterTTL time.Duration
	run(eng, func(p *des.Proc) {
		_, first, _ = s.Get(p, "img")
		_, second, _ = s.Get(p, "img")
		p.Sleep(10 * time.Minute) // past TTL
		_, afterTTL, _ = s.Get(p, "img")
	})
	if first != 400*time.Millisecond {
		t.Fatalf("first (activating) get = %v, want miss cost", first)
	}
	if second != 10*time.Millisecond {
		t.Fatalf("second get = %v, want cache hit", second)
	}
	if afterTTL != 400*time.Millisecond {
		t.Fatalf("post-TTL get = %v, want miss cost", afterTTL)
	}
	if s.Metrics().CacheHits != 1 {
		t.Fatalf("cache hits = %d", s.Metrics().CacheHits)
	}
}

func TestCacheLoadAdaptivePolicy(t *testing.T) {
	eng, s := testStore(t, Config{
		Name:       "gcs-image-store",
		GetLatency: dist.Constant(300 * time.Millisecond),
		Cache: CacheConfig{
			Enabled:          true,
			ActivationCount:  5,
			ActivationWindow: time.Minute,
			TTL:              time.Minute,
			HitLatency:       dist.Constant(5 * time.Millisecond),
		},
	})
	s.Seed("img", 1)
	var lats []time.Duration
	run(eng, func(p *des.Proc) {
		for i := 0; i < 8; i++ {
			_, lat, _ := s.Get(p, "img")
			lats = append(lats, lat)
		}
	})
	for i := 0; i < 5; i++ {
		if lats[i] != 300*time.Millisecond {
			t.Fatalf("get %d = %v, want miss until activation", i, lats[i])
		}
	}
	for i := 5; i < 8; i++ {
		if lats[i] != 5*time.Millisecond {
			t.Fatalf("get %d = %v, want hit after activation", i, lats[i])
		}
	}
}

func TestCacheWindowExpiryResetsCount(t *testing.T) {
	eng, s := testStore(t, Config{
		Name:       "img",
		GetLatency: dist.Constant(100 * time.Millisecond),
		Cache: CacheConfig{
			Enabled:          true,
			ActivationCount:  2,
			ActivationWindow: 10 * time.Second,
			TTL:              time.Minute,
			HitLatency:       dist.Constant(time.Millisecond),
		},
	})
	s.Seed("img", 1)
	var third time.Duration
	run(eng, func(p *des.Proc) {
		s.Get(p, "img")               // count 1
		p.Sleep(30 * time.Second)     // window expires
		s.Get(p, "img")               // count resets to 1
		_, third, _ = s.Get(p, "img") // count 2 -> activates, still a miss
	})
	if third != 100*time.Millisecond {
		t.Fatalf("activating get = %v, want miss cost", third)
	}
}

func TestPutOverwrites(t *testing.T) {
	eng, s := testStore(t, Config{Name: "s3"})
	run(eng, func(p *des.Proc) {
		s.Put(p, "obj", 10)
		s.Put(p, "obj", 20)
	})
	size, _ := s.Size("obj")
	if size != 20 {
		t.Fatalf("size after overwrite = %d", size)
	}
}

// Property: get latency is non-negative and grows monotonically with object
// size for a fixed-latency, jitter-free store.
func TestQuickTransferMonotone(t *testing.T) {
	f := func(sizes []uint32) bool {
		eng := des.NewEngine()
		defer eng.Close()
		s := New(eng, Config{
			Name:            "q",
			GetLatency:      dist.Constant(time.Millisecond),
			GetBandwidthBps: 1e9,
		}, dist.NewStreams(2).Stream("q"))
		type res struct {
			size int64
			lat  time.Duration
		}
		var out []res
		eng.Spawn("t", func(p *des.Proc) {
			for i, raw := range sizes {
				key := string(rune('a' + i%26))
				s.Seed(key, int64(raw))
				_, lat, err := s.Get(p, key)
				if err != nil {
					return
				}
				out = append(out, res{int64(raw), lat})
			}
		})
		eng.Run(0)
		for i := range out {
			if out[i].lat < time.Millisecond {
				return false
			}
			for j := range out {
				if out[i].size > out[j].size && out[i].lat < out[j].lat {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
