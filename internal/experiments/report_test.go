package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/stats"
)

func fakeFigure() *Figure {
	mk := func(vals ...time.Duration) *stats.Sample { return stats.FromDurations(vals) }
	return &Figure{
		ID:    "figX",
		Title: "fake figure",
		Notes: []string{"a note"},
		Series: []Series{
			{Label: "aws 1KB", X: 1 << 10, Latencies: mk(10*time.Millisecond, 12*time.Millisecond, 20*time.Millisecond),
				Paper: Ref{Median: 11 * time.Millisecond, P99: 19 * time.Millisecond}},
			{Label: "aws 1MB", X: 1 << 20, Latencies: mk(40*time.Millisecond, 45*time.Millisecond, 70*time.Millisecond)},
			{Label: "google 1KB", X: 1 << 10, Latencies: mk(7*time.Millisecond, 8*time.Millisecond, 15*time.Millisecond)},
		},
	}
}

func TestWriteFigureReport(t *testing.T) {
	var sb strings.Builder
	if err := WriteFigureReport(&sb, fakeFigure()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"figX", "fake figure", "a note", "aws 1KB", "11ms", "paper-med", "CDF"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure report missing %q", want)
		}
	}
	// Unreported paper refs render as "-".
	if !strings.Contains(out, "-") {
		t.Error("missing placeholder for absent paper values")
	}
}

func TestWriteFigureReportSkipsHugeCharts(t *testing.T) {
	fig := fakeFigure()
	for i := 0; i < 10; i++ {
		fig.Series = append(fig.Series, fig.Series[0])
	}
	var sb strings.Builder
	if err := WriteFigureReport(&sb, fig); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "CDF\n") {
		t.Error("charts should be skipped beyond eight series")
	}
}

func TestWriteSweepReport(t *testing.T) {
	var sb strings.Builder
	if err := WriteSweepReport(&sb, fakeFigure(), "payload"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"payload", "1KB", "1MB", "aws", "google"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTable1Report(t *testing.T) {
	res := &Table1Result{
		BaseMedians: map[string]time.Duration{
			"aws": 44 * time.Millisecond, "google": 31 * time.Millisecond, "azure": 57 * time.Millisecond,
		},
		Rows: []Table1Row{
			{Factor: "Base warm", Cells: map[string]Table1Cell{
				"aws":    {MR: 1, TR: 2, PaperMR: 1, PaperTR: 2},
				"google": {MR: 1, TR: 2, PaperMR: 1, PaperTR: 2},
				"azure":  {MR: 1, TR: 1.6, PaperMR: 1, PaperTR: 1},
			}},
			{Factor: "Storage transfer", Cells: map[string]Table1Cell{
				"aws":    {MR: 3, TR: 27, PaperMR: 3, PaperTR: 27},
				"google": {MR: 5, TR: 122, PaperMR: 5, PaperTR: 187},
				"azure":  {NA: true},
			}},
		},
	}
	var sb strings.Builder
	WriteTable1Report(&sb, res)
	out := sb.String()
	for _, want := range []string{"table1", "Base warm", "Storage transfer", "n/a", "!", "base warm medians"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFig10Report(t *testing.T) {
	res, err := Fig10TraceTMR(Options{Seed: 3, Samples: 200, Replicas: 10})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFig10Report(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fig10", "P(TMR<10)", "<1s", "function-duration mix"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig10 report missing %q", want)
		}
	}
}

func TestReportUnknownAndSingle(t *testing.T) {
	var sb strings.Builder
	if err := Report(&sb, "fig99", Quick()); err == nil {
		t.Fatal("expected error for unknown id")
	}
	sb.Reset()
	if err := Report(&sb, "fig10", Options{Seed: 1, Samples: 200, Replicas: 10}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fig10") {
		t.Fatal("single-id report missing content")
	}
}

func TestEnvAccessors(t *testing.T) {
	env, err := NewEnv("aws", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	if env.Deployer() == nil || env.Client() == nil || env.Cloud() == nil {
		t.Fatal("env accessors returned nil")
	}
	if env.Cloud().Config().Name != "aws" {
		t.Fatal("wrong provider")
	}
	if _, err := NewEnv("oracle", 1); err == nil {
		t.Fatal("expected error for unknown provider")
	}
}

func TestQuickOptions(t *testing.T) {
	q := Quick()
	d := Defaults()
	if q.Samples >= d.Samples || q.Replicas >= d.Replicas {
		t.Fatal("Quick() should be smaller than Defaults()")
	}
}
