package experiments

import (
	"fmt"
	"time"
)

// Fig7Payloads is the storage-based transfer payload sweep (§VI-C2: 1KB to
// 1GB).
var Fig7Payloads = []int64{1 << 10, 10 << 10, 100 << 10, 1 << 20, 10 << 20, 100 << 20, 1 << 30}

// fig7Refs hold the paper's storage-based transfer times (§VI-C2).
var fig7Refs = map[string]map[int64]Ref{
	"aws": {
		1 << 20:   {Median: 111 * time.Millisecond, P99: 1177 * time.Millisecond},
		100 << 20: {Median: 880 * time.Millisecond},
	},
	"google": {
		1 << 20:   {Median: 155 * time.Millisecond, P99: 5781 * time.Millisecond},
		100 << 20: {Median: 1960 * time.Millisecond},
	},
}

// Fig7Storage reproduces Fig. 7: storage-based data-transfer latency as a
// function of payload size (producer PUTs to the storage service, consumer
// GETs after being invoked).
func Fig7Storage(opts Options) (*Figure, error) {
	opts = opts.normalized()
	fig := &Figure{
		ID:    "fig7",
		Title: "Storage-based data-transfer latency vs. payload size",
		Notes: []string{"two-function Go chain via S3 / Cloud Storage; instrumented transfer time"},
	}
	cases := transferCases(Fig7Payloads)
	series, err := mapSeries(opts, len(cases), func(i int, seed int64) (Series, error) {
		c := cases[i]
		// Very large payloads transfer slowly; scale the sample count
		// down to keep the virtual experiment tractable, as the paper
		// effectively does by fixing wall-clock budget per sweep point.
		samples := opts.Samples
		if c.payload >= 100<<20 && samples > 600 {
			samples = 600
		}
		res, err := runTransfer(c.prov, seed, opts.Engine, "storage", c.payload, samples)
		if err != nil {
			return Series{}, fmt.Errorf("fig7 %s %dB: %w", c.prov, c.payload, err)
		}
		label := fmt.Sprintf("%s %s", c.prov, sizeLabel(c.payload))
		return transferSeriesFrom(label, float64(c.payload), res, fig7Refs[c.prov][c.payload])
	})
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}

// EffectiveBandwidthMbps computes the paper's effective-bandwidth metric:
// payload size divided by the median transfer time, in Mb/s (§V).
func EffectiveBandwidthMbps(payloadBytes int64, median time.Duration) float64 {
	if median <= 0 {
		return 0
	}
	return float64(payloadBytes) * 8 / median.Seconds() / 1e6
}
