// Package cli implements the command-line front ends (stellar, stellar-sim,
// stellar-plot) as testable functions: thin main packages delegate here.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/experiments"
	"github.com/stellar-repro/stellar/internal/plot"
	"github.com/stellar-repro/stellar/internal/providers"
	"github.com/stellar-repro/stellar/internal/results"
)

// Main dispatches the stellar CLI and returns the process exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "providers":
		for _, name := range providers.Names() {
			fmt.Fprintln(stdout, name)
		}
	case "run":
		err = cmdRun(args[1:], stdout)
	case "bench":
		err = cmdBench(args[1:], stdout)
	case "suite":
		err = cmdSuite(args[1:], stdout)
	case "compare":
		err = cmdCompare(args[1:], stdout)
	case "trace":
		err = cmdTrace(args[1:], stdout)
	case "aztrace":
		err = cmdAzTrace(args[1:], stdout)
	case "scale":
		err = cmdScale(args[1:], stdout)
	case "stress":
		err = cmdStress(args[1:], stdout)
	case "faults":
		err = cmdFaults(args[1:], stdout)
	case "tenants":
		err = cmdTenants(args[1:], stdout)
	case "workflow":
		err = cmdWorkflow(args[1:], stdout)
	case "cost":
		err = cmdCost(args[1:], stdout)
	case "experiment":
		err = cmdExperiment(args[1:], stdout)
	case "-h", "--help", "help":
		usage(stdout)
	default:
		fmt.Fprintf(stderr, "stellar: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "stellar:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `stellar — serverless tail-latency analyzer (STeLLAR reproduction)

commands:
  providers                       list provider profiles
  run        deploy + measure from config files (sim or http transport)
  bench      one ad-hoc measurement against a simulated provider
  suite      run a multi-experiment campaign from a suite config file
  compare    A/B-compare two saved runs (bootstrap CIs + Mann-Whitney)
  trace      per-request span tracing: sample a simulated series, export
             Chrome trace_event JSON and a per-stage tail-attribution report
  aztrace    generate/analyze Azure-style execution-time traces (Fig. 10)
  scale      sustained multi-million-invocation series summarized by
             bounded-memory mergeable quantile sketches
  stress     open-loop coordinated-omission-safe load generator over real
             sockets against an in-process httpfaas server, with a
             same-seed DES tail comparison
  faults     fault-injection sweep: failure-rate x retry-policy grid with
             success-rate / retry-cost / goodput / tail-latency reporting
  tenants    provider-scale multi-tenant trace replay: synthesized Azure-style
             tenant population under a swept keep-alive axis, reporting the
             cold-start-rate vs instance-seconds Pareto frontier
  workflow   orchestrated multi-function DAG workflows (chain, fan-out,
             diamond, map-reduce) with cross-function trace propagation,
             critical-path and per-edge transfer-tail reporting
  cost       control-plane cost/latency sweep: autoscaler and keep-alive
             policies priced under billing plans, reporting the
             cost-per-million-requests vs p99 Pareto frontier
  experiment regenerate a paper table/figure or extension study
             (fig3a..fig10, table1, breakdown, policyspace, snapshots, observations, all)`)
}

// cmdRun executes the full STeLLAR flow: static config -> deploy ->
// endpoints file -> runtime config -> client run -> report.
func cmdRun(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stdout)
	staticPath := fs.String("static", "", "static function configuration file (sim transport)")
	runtimePath := fs.String("runtime", "", "runtime configuration file (required)")
	endpointsPath := fs.String("endpoints", "", "endpoints file to write (sim) or read (http)")
	transport := fs.String("transport", "sim", "sim or http")
	csvPath := fs.String("csv", "", "write latency CDF as CSV")
	savePath := fs.String("save", "", "save the run as a results file for 'stellar compare'")
	name := fs.String("name", "run", "run name used in saved results")
	seed := fs.Int64("seed", 1, "random seed (sim transport)")
	scale := fs.Float64("scale", 1, "time compression for http transport")
	breakdown := fs.Bool("breakdown", false, "print per-component latency breakdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runtimePath == "" {
		return fmt.Errorf("run: -runtime is required")
	}
	rc, err := core.LoadRuntimeConfig(*runtimePath)
	if err != nil {
		return err
	}

	var eps []core.Endpoint
	var client *core.Client
	switch *transport {
	case "sim":
		if *staticPath == "" {
			return fmt.Errorf("run: -static is required with the sim transport")
		}
		sc, err := core.LoadStaticConfig(*staticPath)
		if err != nil {
			return err
		}
		env, err := experiments.NewEnv(sc.Provider, *seed)
		if err != nil {
			return err
		}
		defer env.Close()
		out, err := env.Deployer().Deploy(sc)
		if err != nil {
			return err
		}
		if *endpointsPath != "" {
			if err := out.Save(*endpointsPath); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %d endpoints to %s\n", len(out.Endpoints), *endpointsPath)
		}
		eps = out.Endpoints
		client = env.Client()
	case "http":
		if *endpointsPath == "" {
			return fmt.Errorf("run: -endpoints is required with the http transport")
		}
		loaded, err := core.LoadEndpoints(*endpointsPath)
		if err != nil {
			return err
		}
		eps = loaded.Endpoints
		client = &core.Client{Transport: &core.HTTPTransport{TimeScale: *scale}}
	default:
		return fmt.Errorf("run: unknown transport %q", *transport)
	}

	res, err := client.Run(eps, *rc)
	if err != nil {
		return err
	}
	printRun(stdout, res, *breakdown)
	if *savePath != "" {
		if err := results.FromRunResult(*name, res).Save(*savePath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "run saved to %s\n", *savePath)
	}
	if *csvPath != "" {
		return writeCSV(*csvPath, "latency", res)
	}
	return nil
}

// cmdBench runs one ad-hoc configuration without config files.
func cmdBench(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	prof := addProfileFlags(fs)
	provider := fs.String("provider", "aws", "provider profile")
	providerFile := fs.String("provider-file", "", "JSON provider profile to load and use")
	samples := fs.Int("samples", 3000, "measured requests")
	iat := fs.Duration("iat", 3*time.Second, "inter-arrival time between steps")
	iatDist := fs.String("iat-dist", "fixed", "IAT distribution: fixed, exponential, bursty")
	burst := fs.Int("burst", 1, "requests per step")
	exec := fs.Duration("exec", 0, "function busy-spin time")
	replicas := fs.Int("replicas", 1, "identical function replicas (round-robin)")
	runtime := fs.String("runtime", "python3", "function runtime")
	method := fs.String("method", "zip", "deployment method")
	memory := fs.Int("memory", 0, "instance memory MB (0 = provider max)")
	extraImage := fs.Int64("extra-image", 0, "extra random-content image bytes")
	warmup := fs.Int("warmup", 0, "warm-up samples to discard")
	seed := fs.Int64("seed", 1, "random seed")
	csvPath := fs.String("csv", "", "write latency CDF as CSV")
	savePath := fs.String("save", "", "save the run as a results file for 'stellar compare'")
	timeline := fs.Duration("timeline", 0, "print windowed statistics at this window width")
	name := fs.String("name", "bench", "run name used in saved results")
	breakdown := fs.Bool("breakdown", false, "print per-component latency breakdown")
	engine := addEngineFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	if *providerFile != "" {
		name, err := providers.RegisterFile(*providerFile)
		if err != nil {
			return err
		}
		*provider = name
	}
	mode, err := engine.mode()
	if err != nil {
		return err
	}
	env, err := experiments.NewEnv(*provider, *seed)
	if err != nil {
		return err
	}
	defer env.Close()
	env.Cloud().SetEngineMode(mode)
	out, err := env.Deployer().Deploy(&core.StaticConfig{
		Provider: *provider,
		Functions: []core.FunctionConfig{{
			Name:            "bench",
			Runtime:         *runtime,
			Method:          *method,
			MemoryMB:        *memory,
			Replicas:        *replicas,
			ExtraImageBytes: *extraImage,
		}},
	})
	if err != nil {
		return err
	}
	res, err := env.Client().Run(out.Endpoints, core.RuntimeConfig{
		Samples:       *samples,
		IAT:           core.Duration(*iat),
		IATDist:       core.IATKind(*iatDist),
		BurstSize:     *burst,
		ExecTime:      core.Duration(*exec),
		WarmupDiscard: *warmup,
	})
	if err != nil {
		return err
	}
	printRun(stdout, res, *breakdown)
	if *timeline > 0 {
		fmt.Fprintln(stdout)
		if err := plot.Timeline(stdout, "latency over the run", res.Timeline(*timeline)); err != nil {
			return err
		}
	}
	if *savePath != "" {
		if err := results.FromRunResult(*name, res).Save(*savePath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "run saved to %s\n", *savePath)
	}
	if *csvPath != "" {
		return writeCSV(*csvPath, *provider, res)
	}
	return nil
}

func printRun(w io.Writer, res *core.RunResult, breakdown bool) {
	sum := res.Summary()
	fmt.Fprintf(w, "samples=%d colds=%d errors=%d billed=%.3f GB-s\n",
		sum.Count, res.Colds, res.Errors, res.BilledGBSeconds)
	fmt.Fprintf(w, "latency: median=%v p95=%v p99=%v max=%v tmr=%.1f\n",
		sum.Median.Round(time.Millisecond), sum.P95.Round(time.Millisecond),
		sum.P99.Round(time.Millisecond), sum.Max.Round(time.Millisecond), sum.TMR)
	if res.Transfers.Len() > 0 {
		ts := res.Transfers.Summarize()
		fmt.Fprintf(w, "transfer: median=%v p99=%v tmr=%.1f\n",
			ts.Median.Round(time.Millisecond), ts.P99.Round(time.Millisecond), ts.TMR)
	}
	if breakdown {
		fmt.Fprintln(w)
		res.Breakdowns().Write(w)
		fmt.Fprintln(w)
	}
	_ = plot.CDF(w, "latency CDF", []plot.Series{{Label: "run", Sample: res.Latencies}}, 72, 16)
}

func writeCSV(path, label string, res *core.RunResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return plot.CSV(f, []plot.Series{{Label: label, Sample: res.Latencies}})
}

// cmdExperiment regenerates paper results.
func cmdExperiment(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	fs.SetOutput(stdout)
	prof := addProfileFlags(fs)
	id := fs.String("id", "all", "experiment id (fig3a..fig10, table1, all)")
	samples := fs.Int("samples", 3000, "samples per configuration")
	replicas := fs.Int("replicas", 100, "replicas for cold studies")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "concurrent series per experiment (0 = all CPUs, 1 = serial)")
	csvDir := fs.String("csv-dir", "", "write each figure's series as CSV into this directory")
	engine := addEngineFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := engine.mode()
	if err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	opts := experiments.Options{Seed: *seed, Samples: *samples, Replicas: *replicas, Workers: *workers, CSVDir: *csvDir, Engine: mode}
	return experiments.Report(stdout, *id, opts)
}
