package cloud

import (
	"math"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/dist"
)

func TestBreakdownSumsToLatencyWarm(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "f"})
	invokeAt(eng, c, 0, &Request{Fn: "f"})
	warm := invokeAt(eng, c, time.Minute, &Request{Fn: "f", ExecTime: 100 * time.Millisecond})
	eng.Run(2 * time.Minute)
	bd := warm.resp.Breakdown
	if bd.Total() != warm.lat {
		t.Fatalf("breakdown total %v != latency %v (%+v)", bd.Total(), warm.lat, bd)
	}
	if bd.Exec != 100*time.Millisecond {
		t.Errorf("exec component = %v", bd.Exec)
	}
	if bd.Propagation != 20*time.Millisecond {
		t.Errorf("propagation = %v", bd.Propagation)
	}
	if bd.QueueWait != 0 || bd.ColdStart.Total() != 0 {
		t.Errorf("warm request has cold components: %+v", bd)
	}
}

func TestBreakdownSumsToLatencyCold(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "f"})
	cold := invokeAt(eng, c, 0, &Request{Fn: "f"})
	eng.Run(time.Minute)
	bd := cold.resp.Breakdown
	if bd.Total() != cold.lat {
		t.Fatalf("breakdown total %v != latency %v", bd.Total(), cold.lat)
	}
	cb := bd.ColdStart
	if cb.Placement != 10*time.Millisecond || cb.SandboxBoot != 100*time.Millisecond {
		t.Errorf("cold phases wrong: %+v", cb)
	}
	if cb.ImageFetch == 0 || cb.RuntimeInit != 50*time.Millisecond {
		t.Errorf("cold phases wrong: %+v", cb)
	}
	// The spawn happens concurrently with the request waiting, so the
	// cold phases are bounded by (and here equal to) the queue wait.
	if cb.Total() != bd.QueueWait {
		t.Errorf("cold phases %v != queue wait %v", cb.Total(), bd.QueueWait)
	}
}

func TestBreakdownChainComponents(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "consumer", Runtime: RuntimeGo})
	deploy(t, c, FunctionSpec{Name: "producer", Runtime: RuntimeGo,
		Chain: &ChainSpec{Next: "consumer", Transfer: TransferStorage, PayloadBytes: 1e6}})
	invokeAt(eng, c, 0, &Request{Fn: "producer"})
	warm := invokeAt(eng, c, time.Minute, &Request{Fn: "producer"})
	eng.Run(2 * time.Minute)
	bd := warm.resp.Breakdown
	if bd.Total() != warm.lat {
		t.Fatalf("breakdown total %v != latency %v", bd.Total(), warm.lat)
	}
	if bd.PayloadStore == 0 {
		t.Error("producer PUT not accounted")
	}
	if bd.Downstream == 0 {
		t.Error("downstream invocation not accounted")
	}
	// The downstream call includes the consumer's GET; the producer's own
	// PayloadFetch stays zero.
	if bd.PayloadFetch != 0 {
		t.Errorf("producer should not fetch payloads, got %v", bd.PayloadFetch)
	}
}

func TestBreakdownQueueHandoff(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = PolicyConfig{Kind: PolicyBoundedQueue, MaxQueuePerInstance: 10}
	cfg.QueueHandoffDelay = dist.Constant(7 * time.Millisecond)
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	var rs []*result
	for i := 0; i < 5; i++ {
		rs = append(rs, invokeAt(eng, c, 0, &Request{Fn: "f", ExecTime: 50 * time.Millisecond}))
	}
	eng.Run(time.Minute)
	handoffs := 0
	for _, r := range rs {
		if r.resp.Breakdown.Total() != r.lat {
			t.Fatalf("breakdown total %v != latency %v", r.resp.Breakdown.Total(), r.lat)
		}
		if r.resp.Breakdown.QueueHandoff == 7*time.Millisecond {
			handoffs++
		}
	}
	if handoffs == 0 {
		t.Error("expected at least one queued request to pay the handoff cost")
	}
}

func TestCPUThrottlingStretchesExecution(t *testing.T) {
	cfg := testConfig()
	cfg.FullSpeedMemoryMB = 2048
	cfg.DefaultMemoryMB = 2048
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "full", MemoryMB: 2048})
	deploy(t, c, FunctionSpec{Name: "half", MemoryMB: 1024})
	deploy(t, c, FunctionSpec{Name: "dflt"}) // default = full speed
	invokeAt(eng, c, 0, &Request{Fn: "full"})
	invokeAt(eng, c, 0, &Request{Fn: "half"})
	invokeAt(eng, c, 0, &Request{Fn: "dflt"})
	full := invokeAt(eng, c, time.Minute, &Request{Fn: "full", ExecTime: 400 * time.Millisecond})
	half := invokeAt(eng, c, time.Minute, &Request{Fn: "half", ExecTime: 400 * time.Millisecond})
	dflt := invokeAt(eng, c, time.Minute, &Request{Fn: "dflt", ExecTime: 400 * time.Millisecond})
	eng.Run(2 * time.Minute)
	if full.resp.Breakdown.Exec != 400*time.Millisecond {
		t.Errorf("full-memory exec = %v, want 400ms", full.resp.Breakdown.Exec)
	}
	if half.resp.Breakdown.Exec != 800*time.Millisecond {
		t.Errorf("half-memory exec = %v, want 800ms (2x throttle)", half.resp.Breakdown.Exec)
	}
	if dflt.resp.Breakdown.Exec != 400*time.Millisecond {
		t.Errorf("default-memory exec = %v, want 400ms", dflt.resp.Breakdown.Exec)
	}
}

func TestBillingAccumulates(t *testing.T) {
	cfg := testConfig()
	cfg.DefaultMemoryMB = 2048 // 2 GB
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	invokeAt(eng, c, 0, &Request{Fn: "f"})
	warm := invokeAt(eng, c, time.Minute, &Request{Fn: "f", ExecTime: time.Second})
	eng.Run(2 * time.Minute)
	// Busy time = overhead (4ms) + exec (1s); memory 2GB.
	want := 1.004 * 2
	if got := warm.resp.BilledGBSeconds; math.Abs(got-want) > 0.01 {
		t.Errorf("billed = %.4f GB-s, want %.3f", got, want)
	}
	if total := c.Metrics().BilledGBSeconds; total <= warm.resp.BilledGBSeconds {
		t.Errorf("cloud-wide bill %.4f should include both invocations", total)
	}
}

func TestBillingIncludesDownstreamWait(t *testing.T) {
	cfg := testConfig()
	cfg.DefaultMemoryMB = 1024 // 1 GB for easy math
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "consumer", Runtime: RuntimeGo, ExecTime: 500 * time.Millisecond})
	deploy(t, c, FunctionSpec{Name: "producer", Runtime: RuntimeGo,
		Chain: &ChainSpec{Next: "consumer", Transfer: TransferInline, PayloadBytes: 1 << 10}})
	invokeAt(eng, c, 0, &Request{Fn: "producer"})
	warm := invokeAt(eng, c, time.Minute, &Request{Fn: "producer"})
	eng.Run(2 * time.Minute)
	// The producer is billed while blocked on the consumer's 500ms run.
	if warm.resp.BilledGBSeconds < 0.5 {
		t.Errorf("producer bill %.4f GB-s should include downstream wait", warm.resp.BilledGBSeconds)
	}
}

func TestThrottleFactor(t *testing.T) {
	cfg := Config{DefaultMemoryMB: 2048, FullSpeedMemoryMB: 1769}
	cases := []struct {
		mem  int
		want float64
	}{
		{0, 1},     // default 2048 >= 1769
		{1769, 1},  // exactly full speed
		{3008, 1},  // above
		{884, 2.0}, // half
		{-1, 1},    // nonsense treated as unthrottled
	}
	for _, tc := range cases {
		got := cfg.throttleFactor(tc.mem)
		if math.Abs(got-tc.want) > 0.01 {
			t.Errorf("throttleFactor(%d) = %.3f, want %.2f", tc.mem, got, tc.want)
		}
	}
}

func TestMemoryGB(t *testing.T) {
	cfg := Config{DefaultMemoryMB: 1536}
	if got := cfg.memoryGB(0); math.Abs(got-1.5) > 0.001 {
		t.Errorf("default memoryGB = %v", got)
	}
	if got := cfg.memoryGB(512); math.Abs(got-0.5) > 0.001 {
		t.Errorf("memoryGB(512) = %v", got)
	}
	if got := (&Config{}).memoryGB(0); math.Abs(got-1.0) > 0.001 {
		t.Errorf("fallback memoryGB = %v", got)
	}
}
