package experiments

import (
	"fmt"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/core"
)

// fig4Refs hold the paper's cold-start latencies by provider and added
// random-content file size (§VI-B2; medians/tails derived from Fig. 4 and
// Table I's image-size row).
var fig4Refs = map[string]map[int64]Ref{
	"aws": {
		10 << 20:  {Median: 400 * time.Millisecond, P99: 520 * time.Millisecond},
		100 << 20: {Median: 1276 * time.Millisecond, P99: 2155 * time.Millisecond},
	},
	"google": {
		10 << 20:  {Median: 527 * time.Millisecond, P99: 1860 * time.Millisecond},
		100 << 20: {Median: 527 * time.Millisecond, P99: 1860 * time.Millisecond},
	},
	"azure": {
		10 << 20:  {Median: 1401 * time.Millisecond, P99: 3577 * time.Millisecond},
		100 << 20: {Median: 3363 * time.Millisecond, P99: 5723 * time.Millisecond},
	},
}

// Fig4ImageSizes are the added random-content file sizes studied.
var Fig4ImageSizes = []int64{10 << 20, 100 << 20}

// Fig4ImageSize reproduces Fig. 4: cold-start latency as a function of the
// extra random-content file added to the function image. Go functions
// minimize the base image (§V); ZIP deployment only (supported everywhere).
func Fig4ImageSize(opts Options) (*Figure, error) {
	opts = opts.normalized()
	fig := &Figure{
		ID:    "fig4",
		Title: "Cold-start latency vs. function image size",
		Notes: []string{"Go ZIP functions; extra random-content file of 10MB / 100MB"},
	}
	type fig4Case struct {
		prov string
		size int64
	}
	var cases []fig4Case
	for _, prov := range AllProviders {
		for _, size := range Fig4ImageSizes {
			cases = append(cases, fig4Case{prov, size})
		}
	}
	series, err := mapSeries(opts, len(cases), func(i int, seed int64) (Series, error) {
		c := cases[i]
		sc := core.StaticConfig{Functions: []core.FunctionConfig{{
			Name:            "imgsize",
			Runtime:         string(cloud.RuntimeGo),
			Method:          string(cloud.DeployZIP),
			ExtraImageBytes: c.size,
			Replicas:        opts.Replicas,
		}}}
		res, err := measure(c.prov, seed, opts.Engine, sc, core.RuntimeConfig{
			Samples: opts.Samples,
			IAT:     core.Duration(longIATFor(c.prov) / time.Duration(opts.Replicas)),
		})
		if err != nil {
			return Series{}, fmt.Errorf("fig4 %s %dMB: %w", c.prov, c.size>>20, err)
		}
		label := fmt.Sprintf("%s +%dMB", c.prov, c.size>>20)
		return seriesFrom(label, float64(c.size), res, fig4Refs[c.prov][c.size]), nil
	})
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}
