package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/runner"
	"github.com/stellar-repro/stellar/internal/stats"
	"github.com/stellar-repro/stellar/internal/trace"
)

// TraceOptions configures a traced latency series against one simulated
// provider: the scale experiment's arrival process with the tracer seam
// enabled, so sampled requests come back as full per-stage span traces
// instead of one scalar latency.
type TraceOptions struct {
	// Provider is the provider profile under test.
	Provider string
	// Invocations is the series length, split across Shards.
	Invocations uint64
	// Shards is the number of independent simulation shards (default 8).
	Shards int
	// Workers bounds concurrently running shards (0 = GOMAXPROCS). Changes
	// wall-clock time only, never results.
	Workers int
	// Seed roots all randomness. The tracer draws from its own
	// "<provider>/trace" stream, so enabling tracing never shifts the
	// simulation's other draws.
	Seed int64
	// IAT is the inter-arrival time between bursts within one shard
	// (default 100ms).
	IAT time.Duration
	// Burst is the number of simultaneous requests per arrival (default 1).
	Burst int
	// ExecTime is the function busy-spin time (0 = instant handler).
	ExecTime time.Duration
	// Trace configures the per-shard sampler (rate, slowest-K, ring bound).
	Trace trace.Config
	// Engine selects the invocation execution form. With a tracer
	// installed every request falls back to the proc form regardless, so
	// this knob only swaps the arrival loop's shape; outputs are
	// byte-identical (TestEngineFormsEquivalent).
	Engine cloud.EngineMode
}

func (o TraceOptions) normalized() TraceOptions {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.IAT <= 0 {
		o.IAT = 100 * time.Millisecond
	}
	if o.Burst <= 0 {
		o.Burst = 1
	}
	return o
}

func (o TraceOptions) validate() error {
	if o.Provider == "" {
		return fmt.Errorf("trace: provider is required")
	}
	if o.Invocations == 0 {
		return fmt.Errorf("trace: need at least one invocation")
	}
	if uint64(o.Shards) > o.Invocations {
		return fmt.Errorf("trace: %d shards for %d invocations", o.Shards, o.Invocations)
	}
	if o.Trace.SampleRate == 0 && o.Trace.SlowestK == 0 {
		return fmt.Errorf("trace: sampler disabled (set a sample rate or slowest-K)")
	}
	return o.Trace.Validate()
}

// TraceResult is the merged outcome of a traced series.
type TraceResult struct {
	Provider    string
	Invocations uint64
	Shards      int

	// Colds and Errors aggregate per-shard outcome counters.
	Colds  uint64
	Errors uint64
	// Dropped counts sampled traces lost to per-shard ring overwrites —
	// surfaced so bounded retention is never a silent cap.
	Dropped uint64

	// Traces are the retained span traces, shard-tagged and merged in shard
	// order (each shard's traces sorted by virtual start time).
	Traces []trace.RequestRecord
	// Latencies are all successful requests' client-observed latencies
	// (not just the sampled ones), for persistence and cross-checks.
	Latencies *stats.Sample

	// VirtualTime is the longest shard's simulated duration.
	VirtualTime time.Duration
}

// Attribution computes the per-stage tail attribution of the retained
// traces (nil quantiles = trace.DefaultQuantiles).
func (r *TraceResult) Attribution(quantiles []float64) *trace.Attribution {
	return trace.Attribute(r.Traces, quantiles)
}

// traceShard is one shard's outcome.
type traceShard struct {
	traces  []trace.RequestRecord
	lats    *stats.Sample
	colds   uint64
	errors  uint64
	dropped uint64
	virtual time.Duration
}

// RunTrace drives one traced series: Shards independent simulated clouds,
// each with its own sampling tracer, merged in shard-index order so results
// are byte-identical at any Workers setting. Every retained trace is checked
// against the tiling invariant (top-level spans sum exactly to the observed
// latency) before the result is returned.
func RunTrace(opts TraceOptions) (*TraceResult, error) {
	opts = opts.normalized()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	res := &TraceResult{
		Provider:    opts.Provider,
		Invocations: opts.Invocations,
		Shards:      opts.Shards,
		Latencies:   stats.NewSample(int(opts.Invocations)),
	}
	pool := runner.Pool{Workers: opts.Workers, Seed: opts.Seed}
	_, err := runner.MapReduce(pool, opts.Shards, res,
		func(sh runner.Shard) (*traceShard, error) {
			return runTraceShard(opts, sh)
		},
		mergeTraceShard)
	if err != nil {
		return nil, err
	}
	if res.Latencies.Count() == 0 {
		return nil, fmt.Errorf("trace: all %d invocations failed", opts.Invocations)
	}
	if len(res.Traces) == 0 {
		return nil, fmt.Errorf("trace: sampler retained no traces (rate %v over %d invocations)",
			opts.Trace.SampleRate, opts.Invocations)
	}
	return res, nil
}

// mergeTraceShard folds one shard into the accumulated result.
func mergeTraceShard(res *TraceResult, sh *traceShard) (*TraceResult, error) {
	res.Colds += sh.colds
	res.Errors += sh.errors
	res.Dropped += sh.dropped
	res.Traces = append(res.Traces, sh.traces...)
	res.Latencies.AddAll(sh.lats.Values())
	if sh.virtual > res.VirtualTime {
		res.VirtualTime = sh.virtual
	}
	return res, nil
}

// runTraceShard runs one shard's arrivals with a tracer installed on the
// cloud's tracer seam.
func runTraceShard(opts TraceOptions, sh runner.Shard) (*traceShard, error) {
	n := shardInvocations(opts.Invocations, opts.Shards, sh.Index)
	out := &traceShard{lats: stats.NewSample(int(n))}
	if n == 0 {
		return out, nil
	}

	e, err := newEnv(opts.Provider, sh.Seed)
	if err != nil {
		return nil, fmt.Errorf("trace shard %d: %w", sh.Index, err)
	}
	defer e.close()
	c := e.cloud
	if err := c.Deploy(cloud.FunctionSpec{
		Name:     "trace",
		Runtime:  cloud.RuntimePython,
		Method:   cloud.DeployZIP,
		ExecTime: opts.ExecTime,
	}); err != nil {
		return nil, fmt.Errorf("trace shard %d: %w", sh.Index, err)
	}
	c.SetLatencyRecorder(out.lats)
	// The tracer's sampling stream is derived from the same shard seed as
	// the cloud's streams but under its own name, so the traced run's other
	// draws are identical to the untraced run's.
	tr := trace.New(opts.Trace, dist.NewStreams(sh.Seed).Stream(opts.Provider+"/trace"))
	c.SetTracer(tr)

	c.SetEngineMode(opts.Engine)
	req := &cloud.Request{Fn: "trace"}
	eng := e.eng
	if opts.Engine == cloud.EngineProc {
		invoke := func(p *des.Proc) {
			if _, err := c.Invoke(p, req); err != nil {
				out.errors++
			}
		}
		eng.Spawn("trace/arrivals", func(p *des.Proc) {
			remaining := n
			for remaining > 0 {
				burst := uint64(opts.Burst)
				if burst > remaining {
					burst = remaining
				}
				for j := uint64(0); j < burst; j++ {
					eng.Spawn("trace/req", invoke)
				}
				remaining -= burst
				if remaining > 0 {
					p.Sleep(opts.IAT)
				}
			}
		})
	} else {
		// Callback-form arrivals; the installed tracer makes InvokeAsync
		// fall back to a proc per request, exercising exactly the
		// fallback seam the two-forms contract depends on.
		done := func(_ *cloud.Response, err error) {
			if err != nil {
				out.errors++
			}
		}
		remaining := n
		var arrive func()
		arrive = func() {
			burst := uint64(opts.Burst)
			if burst > remaining {
				burst = remaining
			}
			for j := uint64(0); j < burst; j++ {
				c.InvokeAsync(req, done)
			}
			remaining -= burst
			if remaining > 0 {
				eng.CallAfter(opts.IAT, arrive)
			}
		}
		eng.Call(arrive)
	}
	eng.Run(0)

	out.colds = c.Metrics().ColdServed
	out.virtual = eng.Now()
	out.dropped = tr.Dropped()
	out.traces = tr.Drain()
	for i := range out.traces {
		out.traces[i].Shard = sh.Index
		if err := out.traces[i].Validate(); err != nil {
			return nil, fmt.Errorf("trace shard %d: %w", sh.Index, err)
		}
	}
	if got := uint64(out.lats.Count()) + out.errors; got != n {
		return nil, fmt.Errorf("trace shard %d: %d of %d invocations unaccounted for",
			sh.Index, n-got, n)
	}
	return out, nil
}

// WriteTraceReport renders the traced series outcome: headline metrics,
// retention accounting, and the per-stage tail-attribution table.
func WriteTraceReport(w io.Writer, res *TraceResult) {
	fmt.Fprintf(w, "trace series: provider=%s invocations=%d shards=%d\n",
		res.Provider, res.Invocations, res.Shards)
	fmt.Fprintf(w, "outcome: colds=%d errors=%d virtual=%v\n",
		res.Colds, res.Errors, res.VirtualTime.Round(time.Second))
	sum := res.Latencies.Summarize()
	fmt.Fprintf(w, "latency: median=%v p95=%v p99=%v max=%v tmr=%.1f\n",
		sum.Median.Round(time.Millisecond), sum.P95.Round(time.Millisecond),
		sum.P99.Round(time.Millisecond), sum.Max.Round(time.Millisecond), sum.TMR)
	fmt.Fprintf(w, "traces: retained=%d dropped=%d\n", len(res.Traces), res.Dropped)
	if a := res.Attribution(nil); a != nil {
		a.Write(w)
	}
}

// TraceStudyResult holds the attribution sweep across all providers.
type TraceStudyResult struct {
	// Results maps provider name to its traced series.
	Results map[string]*TraceResult
}

// TraceStudy runs the tail-attribution sweep: one traced bursty series per
// provider, sample-everything, answering "which stage inflates p99" for each
// provider profile side by side (the paper's Fig. 1 pipeline, quantified).
func TraceStudy(opts Options) (*TraceStudyResult, error) {
	opts = opts.normalized()
	runs, err := runner.Map(opts.pool(), len(AllProviders), func(sh runner.Shard) (*TraceResult, error) {
		return RunTrace(TraceOptions{
			Provider:    AllProviders[sh.Index],
			Invocations: uint64(opts.Samples),
			Shards:      4,
			Workers:     1, // the provider sweep is already parallel
			Seed:        sh.Seed,
			Burst:       10,
			IAT:         500 * time.Millisecond,
			ExecTime:    10 * time.Millisecond,
			Trace:       trace.Config{SampleRate: 1, SlowestK: 32},
		})
	})
	if err != nil {
		return nil, err
	}
	res := &TraceStudyResult{Results: make(map[string]*TraceResult, len(runs))}
	for i, run := range runs {
		res.Results[AllProviders[i]] = run
	}
	return res, nil
}

// WriteTraceStudyReport renders the per-provider attribution sweep.
func WriteTraceStudyReport(w io.Writer, res *TraceStudyResult) {
	fmt.Fprintf(w, "## trace — per-stage tail attribution (Fig. 1 pipeline)\n\n")
	for _, prov := range AllProviders {
		run := res.Results[prov]
		if run == nil {
			continue
		}
		WriteTraceReport(w, run)
		fmt.Fprintln(w)
	}
}
