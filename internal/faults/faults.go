// Package faults injects transient provider-side failures into the
// simulated cloud and supplies the client-side resilience policy that
// real serverless benchmarks must run with: timeouts, bounded retries,
// exponential backoff with deterministic jitter, and optional request
// hedging.
//
// The design contract is twofold. First, determinism: every random
// decision draws from a named dist.Streams stream, so a fault schedule is
// a pure function of (seed, config, workload) and reproduces byte-identically
// at any host-parallelism setting. Second, invisibility when disabled: a
// nil or all-zero config must consume no randomness and add no allocations
// to the invoke hot path, so every existing golden fingerprint stays
// byte-identical (enforced by the invariant suite and the alloc gate).
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Sentinel errors for injected failures. The cloud wraps them with context;
// callers match with errors.Is.
var (
	// ErrDropped marks a request lost in flight before admission: the
	// client never hears back, so a resilient client only detects it via
	// its own timeout.
	ErrDropped = errors.New("request dropped")
	// ErrThrottled marks a 429-style admission rejection under burst.
	ErrThrottled = errors.New("request throttled (429)")
	// ErrStorageTimeout marks a payload-storage fetch that timed out
	// inside the serving instance.
	ErrStorageTimeout = errors.New("storage fetch timeout")
	// ErrAttemptTimeout marks an attempt abandoned by the client's own
	// resilience policy after Policy.Timeout of silence.
	ErrAttemptTimeout = errors.New("attempt timed out")
)

// Config selects the provider-side failure modes. The zero value injects
// nothing; each mode activates independently.
type Config struct {
	// DropProb is the per-external-request probability that the request
	// vanishes in flight (network loss before front-end admission).
	DropProb float64
	// SpawnFailProb is the per-attempt probability that a cold-start
	// pipeline fails after runtime init and is retried from placement.
	// Must stay below 1 or spawns would retry forever.
	SpawnFailProb float64
	// StorageTimeoutProb is the per-fetch probability that a payload
	// storage read times out after StorageTimeout instead of returning.
	StorageTimeoutProb float64
	// StorageTimeout is how long a timed-out fetch blocks the instance
	// before failing. Required when StorageTimeoutProb > 0.
	StorageTimeout time.Duration
	// ThrottleLimit caps admitted external requests per ThrottleWindow
	// per worker; the effective fleet-wide limit is ThrottleLimit times
	// the cloud's worker count. Zero disables throttling.
	ThrottleLimit int
	// ThrottleWindow is the fixed throttling window. Required when
	// ThrottleLimit > 0.
	ThrottleWindow time.Duration
}

// Enabled reports whether any failure mode is active. A disabled config
// must never reach an Injector: the cloud keeps its injector nil so the
// hot path stays untouched.
func (c *Config) Enabled() bool {
	return c != nil && (c.DropProb > 0 || c.SpawnFailProb > 0 ||
		c.StorageTimeoutProb > 0 || c.ThrottleLimit > 0)
}

// Validate reports configuration errors: probabilities must be finite and
// in range, and every active mode needs its duration parameter.
func (c *Config) Validate() error {
	if err := checkProb("drop_prob", c.DropProb, 1); err != nil {
		return err
	}
	// A spawn-failure probability of 1 would retry the cold-start
	// pipeline forever (same bound as cloud.FaultConfig).
	if err := checkProb("spawn_fail_prob", c.SpawnFailProb, math.Nextafter(1, 0)); err != nil {
		return err
	}
	if err := checkProb("storage_timeout_prob", c.StorageTimeoutProb, 1); err != nil {
		return err
	}
	if c.StorageTimeoutProb > 0 && c.StorageTimeout <= 0 {
		return fmt.Errorf("faults: storage_timeout must be > 0 when storage_timeout_prob is set")
	}
	if c.StorageTimeout < 0 {
		return fmt.Errorf("faults: negative storage_timeout %v", c.StorageTimeout)
	}
	if c.ThrottleLimit < 0 {
		return fmt.Errorf("faults: negative throttle_limit %d", c.ThrottleLimit)
	}
	if c.ThrottleLimit > 0 && c.ThrottleWindow <= 0 {
		return fmt.Errorf("faults: throttle_window must be > 0 when throttle_limit is set")
	}
	if c.ThrottleWindow < 0 {
		return fmt.Errorf("faults: negative throttle_window %v", c.ThrottleWindow)
	}
	return nil
}

// checkProb rejects NaN, Inf, negatives, and values above max.
func checkProb(name string, p, max float64) error {
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return fmt.Errorf("faults: %s must be finite, got %v", name, p)
	}
	if p < 0 || p > max {
		return fmt.Errorf("faults: %s %v out of range [0, %v]", name, p, max)
	}
	return nil
}

// Injector makes the per-request fault decisions for one cloud. All
// methods must run inside the cloud's single-threaded DES engine; each
// draws from the injector's dedicated stream only when its mode is active,
// so inactive modes leave the stream — and therefore every downstream
// random decision — untouched.
type Injector struct {
	cfg Config
	rng *rand.Rand
	// limit is the fleet-wide admissions per window (ThrottleLimit scaled
	// by the worker count at construction).
	limit    int
	winIdx   int64
	winCount int
}

// NewInjector builds an injector for a cloud with the given worker-fleet
// size. cfg must have passed Validate.
func NewInjector(cfg Config, rng *rand.Rand, workers int) *Injector {
	if workers < 1 {
		workers = 1
	}
	return &Injector{cfg: cfg, rng: rng, limit: cfg.ThrottleLimit * workers}
}

// Drop decides whether an external request is lost in flight.
func (in *Injector) Drop() bool {
	return in.cfg.DropProb > 0 && in.rng.Float64() < in.cfg.DropProb
}

// SpawnFail decides whether one cold-start pipeline attempt fails.
func (in *Injector) SpawnFail() bool {
	return in.cfg.SpawnFailProb > 0 && in.rng.Float64() < in.cfg.SpawnFailProb
}

// StorageFault decides whether a payload fetch times out; when it does,
// the returned duration is how long the instance blocks before failing.
func (in *Injector) StorageFault() (time.Duration, bool) {
	if in.cfg.StorageTimeoutProb > 0 && in.rng.Float64() < in.cfg.StorageTimeoutProb {
		return in.cfg.StorageTimeout, true
	}
	return 0, false
}

// Admit applies the fleet-wide fixed-window rate limit at virtual time
// now. It returns false for requests beyond the window's budget (a 429).
// Throttling is a counter, not a random draw, so it never perturbs the
// fault stream.
func (in *Injector) Admit(now time.Duration) bool {
	if in.limit <= 0 {
		return true
	}
	idx := int64(now / in.cfg.ThrottleWindow)
	if idx != in.winIdx {
		in.winIdx = idx
		in.winCount = 0
	}
	if in.winCount >= in.limit {
		return false
	}
	in.winCount++
	return true
}

// Scaled returns a copy of the config with the probabilistic modes scaled
// by rate (clamped to each mode's valid range). Throttling parameters are
// structural, not probabilistic, and pass through unchanged; rate 0 turns
// the probabilistic modes off entirely.
func (c Config) Scaled(rate float64) Config {
	c.DropProb = clampProb(c.DropProb*rate, 1)
	c.SpawnFailProb = clampProb(c.SpawnFailProb*rate, math.Nextafter(1, 0))
	c.StorageTimeoutProb = clampProb(c.StorageTimeoutProb*rate, 1)
	return c
}

func clampProb(p, max float64) float64 {
	if p < 0 || math.IsNaN(p) {
		return 0
	}
	if p > max {
		return max
	}
	return p
}
