// Package core implements STeLLAR itself — the paper's contribution: a
// provider-agnostic serverless benchmarking framework for tail-latency
// analysis (§IV). It comprises a deployer with provider-specific plugins
// driven by a static function configuration, and a load-generating client
// driven by a runtime configuration, plus the intra-function
// instrumentation plumbing and sample aggregation.
//
// The client is transport-agnostic: the same load plans execute against a
// virtual-time simulated cloud (SimTransport) or live HTTP endpoints
// (HTTPTransport), mirroring the paper's provider-agnostic client design.
package core

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Duration wraps time.Duration with human-readable JSON ("3s", "15m").
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler, accepting either a duration
// string or nanoseconds as a number.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("core: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("core: duration must be a string or integer: %s", data)
	}
	*d = Duration(n)
	return nil
}

// Std converts to time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// ChainConfig describes a producer->consumer(s) function chain (§IV): the
// deployer creates Length functions where each invokes the next, passing a
// payload over the selected transport.
type ChainConfig struct {
	// Length is the number of functions in the chain (>= 2 to transfer).
	Length int `json:"length"`
	// Transfer is "inline" or "storage".
	Transfer string `json:"transfer"`
	// PayloadBytes is the default payload size per hop.
	PayloadBytes int64 `json:"payload_bytes"`
	// Fanout invokes that many parallel downstream copies per hop
	// (scatter-gather); zero or one is a plain sequential chain.
	Fanout int `json:"fanout,omitempty"`
}

// FunctionConfig is one entry of the static function configuration file:
// the provider-independent description of a function deployment (§IV).
type FunctionConfig struct {
	// Name is the base function name.
	Name string `json:"name"`
	// Runtime is the language runtime ("python3" or "go1.x").
	Runtime string `json:"runtime"`
	// Method is the deployment method ("zip" or "container").
	Method string `json:"method"`
	// MemoryMB is the instance memory size; zero selects the provider's
	// maximum single-core configuration (the paper's setup, §V).
	MemoryMB int `json:"memory_mb,omitempty"`
	// ExtraImageBytes inflates the image with a random-content file.
	ExtraImageBytes int64 `json:"extra_image_bytes,omitempty"`
	// Replicas deploys that many identical copies, used to parallelize
	// cold-start measurement (§IV). Zero means 1.
	Replicas int `json:"replicas,omitempty"`
	// ExecTime is the deployed handlers' default busy-spin duration
	// (applies to the function and its chain members); the runtime
	// configuration's exec_time overrides it per run for the entry
	// function.
	ExecTime Duration `json:"exec_time,omitempty"`
	// Chain optionally chains this function to downstream ones.
	Chain *ChainConfig `json:"chain,omitempty"`
}

// StaticConfig is the deployer's input file.
type StaticConfig struct {
	// Provider names the deployment target plugin.
	Provider string `json:"provider"`
	// Functions lists deployments.
	Functions []FunctionConfig `json:"functions"`
}

// LoadStaticConfig reads a static configuration file.
func LoadStaticConfig(path string) (*StaticConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read static config: %w", err)
	}
	var sc StaticConfig
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("core: parse static config: %w", err)
	}
	return &sc, nil
}

// Validate checks a static config before deployment.
func (sc *StaticConfig) Validate() error {
	if sc.Provider == "" {
		return fmt.Errorf("core: static config needs a provider")
	}
	if len(sc.Functions) == 0 {
		return fmt.Errorf("core: static config has no functions")
	}
	seen := make(map[string]bool)
	for i, fc := range sc.Functions {
		if fc.Name == "" {
			return fmt.Errorf("core: function %d has no name", i)
		}
		if seen[fc.Name] {
			return fmt.Errorf("core: duplicate function name %q", fc.Name)
		}
		seen[fc.Name] = true
		if fc.Replicas < 0 {
			return fmt.Errorf("core: function %q has negative replicas", fc.Name)
		}
		if fc.Chain != nil {
			if fc.Chain.Length < 2 {
				return fmt.Errorf("core: function %q chain needs length >= 2", fc.Name)
			}
			if fc.Chain.Transfer != "inline" && fc.Chain.Transfer != "storage" {
				return fmt.Errorf("core: function %q has unknown transfer %q", fc.Name, fc.Chain.Transfer)
			}
			if fc.Chain.Fanout < 0 {
				return fmt.Errorf("core: function %q has negative fanout", fc.Name)
			}
		}
	}
	return nil
}

// IATKind selects the inter-arrival-time distribution of the generated
// invocation traffic (§IV: fixed, stochastic, or bursty — burstiness is the
// BurstSize axis, orthogonal to the IAT distribution).
type IATKind string

// Supported IAT distributions.
const (
	IATFixed       IATKind = "fixed"
	IATExponential IATKind = "exponential"
	// IATBursty generates ON/OFF traffic: trains of OnSteps steps at the
	// configured IAT separated by OffIAT quiet gaps — the "bursty
	// distribution" of §IV, orthogonal to the per-step BurstSize.
	IATBursty IATKind = "bursty"
)

// RuntimeConfig is the client's input file (§IV): it describes one load
// scenario over an already-deployed set of endpoints.
type RuntimeConfig struct {
	// Samples is the number of measured requests (the paper collects 3000
	// per configuration; each request in a burst is one measurement).
	Samples int `json:"samples"`
	// IAT is the client-step inter-arrival time: each step sends one burst
	// to the next endpoint in round-robin order.
	IAT Duration `json:"iat"`
	// IATDist is the IAT distribution (fixed by default).
	IATDist IATKind `json:"iat_dist,omitempty"`
	// BurstSize is the number of simultaneous requests per step (1 = no
	// burstiness).
	BurstSize int `json:"burst_size,omitempty"`
	// ExecTime sets the functions' busy-spin duration for this run.
	ExecTime Duration `json:"exec_time,omitempty"`
	// PayloadBytes overrides chained functions' transfer payload size.
	PayloadBytes int64 `json:"payload_bytes,omitempty"`
	// WarmupDiscard drops that many initial samples from the results
	// (steady-state measurement).
	WarmupDiscard int `json:"warmup_discard,omitempty"`
	// OnSteps is the train length for the bursty IAT distribution
	// (default 10 steps per train).
	OnSteps int `json:"on_steps,omitempty"`
	// OffIAT is the quiet gap between trains for the bursty IAT
	// distribution (default 10x IAT).
	OffIAT Duration `json:"off_iat,omitempty"`
}

// LoadRuntimeConfig reads a runtime configuration file.
func LoadRuntimeConfig(path string) (*RuntimeConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read runtime config: %w", err)
	}
	var rc RuntimeConfig
	if err := json.Unmarshal(data, &rc); err != nil {
		return nil, fmt.Errorf("core: parse runtime config: %w", err)
	}
	return &rc, nil
}

// Validate checks a runtime config and applies defaults.
func (rc *RuntimeConfig) Validate() error {
	if rc.Samples <= 0 {
		return fmt.Errorf("core: runtime config needs samples > 0")
	}
	if rc.IAT <= 0 {
		return fmt.Errorf("core: runtime config needs iat > 0")
	}
	if rc.BurstSize == 0 {
		rc.BurstSize = 1
	}
	if rc.BurstSize < 0 {
		return fmt.Errorf("core: burst size must be positive")
	}
	if rc.IATDist == "" {
		rc.IATDist = IATFixed
	}
	switch rc.IATDist {
	case IATFixed, IATExponential:
	case IATBursty:
		if rc.OnSteps == 0 {
			rc.OnSteps = 10
		}
		if rc.OnSteps < 1 {
			return fmt.Errorf("core: bursty IAT needs on_steps >= 1")
		}
		if rc.OffIAT == 0 {
			rc.OffIAT = 10 * rc.IAT
		}
		if rc.OffIAT < 0 {
			return fmt.Errorf("core: bursty IAT needs off_iat >= 0")
		}
	default:
		return fmt.Errorf("core: unknown IAT distribution %q", rc.IATDist)
	}
	if rc.WarmupDiscard < 0 {
		return fmt.Errorf("core: warmup discard must be >= 0")
	}
	return nil
}
