package faults

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestConfigValidateTable(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error, "" = valid
	}{
		{"zero", Config{}, ""},
		{"full", Config{DropProb: 0.5, SpawnFailProb: 0.5, StorageTimeoutProb: 0.5,
			StorageTimeout: time.Second, ThrottleLimit: 10, ThrottleWindow: time.Second}, ""},
		{"drop one", Config{DropProb: 1}, ""},
		{"drop NaN", Config{DropProb: math.NaN()}, "finite"},
		{"drop Inf", Config{DropProb: math.Inf(1)}, "finite"},
		{"drop negative", Config{DropProb: -0.1}, "out of range"},
		{"drop above one", Config{DropProb: 1.1}, "out of range"},
		{"spawn at one", Config{SpawnFailProb: 1}, "out of range"},
		{"spawn NaN", Config{SpawnFailProb: math.NaN()}, "finite"},
		{"storage NaN", Config{StorageTimeoutProb: math.NaN()}, "finite"},
		{"storage prob without duration", Config{StorageTimeoutProb: 0.5}, "storage_timeout must be > 0"},
		{"negative storage timeout", Config{StorageTimeout: -time.Second}, "negative storage_timeout"},
		{"negative throttle limit", Config{ThrottleLimit: -1}, "negative throttle_limit"},
		{"throttle without window", Config{ThrottleLimit: 5}, "throttle_window must be > 0"},
		{"negative throttle window", Config{ThrottleWindow: -time.Second}, "negative throttle_window"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestDurationJSONForms(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"250ms"`), &d); err != nil || d != Duration(250*time.Millisecond) {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`1500000000`), &d); err != nil || d != Duration(1500*time.Millisecond) {
		t.Fatalf("integer nanoseconds form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"not a duration"`), &d); err == nil {
		t.Fatal("garbage duration string accepted")
	}
	if err := json.Unmarshal([]byte(`true`), &d); err == nil {
		t.Fatal("boolean duration accepted")
	}
	out, err := json.Marshal(Duration(1500 * time.Millisecond))
	if err != nil || string(out) != `"1.5s"` {
		t.Fatalf("marshal: %s %v", out, err)
	}
}

func TestParseConfigFull(t *testing.T) {
	loaded, err := ParseConfig([]byte(`{
		"inject": {"drop_prob": 0.1, "throttle_limit": 5, "throttle_window": "1s"},
		"policy": {"timeout": "2s", "max_retries": 3, "backoff_base": "100ms", "jitter": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Inject == nil || loaded.Inject.DropProb != 0.1 || loaded.Inject.ThrottleLimit != 5 ||
		loaded.Inject.ThrottleWindow != time.Second {
		t.Fatalf("inject = %+v", loaded.Inject)
	}
	if loaded.Policy == nil || loaded.Policy.Timeout != 2*time.Second || loaded.Policy.MaxRetries != 3 ||
		loaded.Policy.BackoffBase != 100*time.Millisecond || !loaded.Policy.Jitter {
		t.Fatalf("policy = %+v", loaded.Policy)
	}
}

func TestParseConfigSectionsOptional(t *testing.T) {
	loaded, err := ParseConfig([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Inject != nil || loaded.Policy != nil {
		t.Fatalf("empty document produced sections: %+v", loaded)
	}
}

func TestParseConfigRejectsInvalid(t *testing.T) {
	for name, doc := range map[string]string{
		"syntax":            `{"inject": `,
		"bad drop prob":     `{"inject": {"drop_prob": 2}}`,
		"spawn prob one":    `{"inject": {"spawn_fail_prob": 1}}`,
		"missing duration":  `{"inject": {"storage_timeout_prob": 0.5}}`,
		"zero window":       `{"inject": {"throttle_limit": 5}}`,
		"bad duration":      `{"inject": {"storage_timeout_prob": 0.5, "storage_timeout": "fast"}}`,
		"negative retries":  `{"policy": {"max_retries": -1}}`,
		"hedge past limit":  `{"policy": {"timeout": "1s", "hedge_after": "2s"}}`,
		"negative duration": `{"policy": {"timeout": "-1s"}}`,
	} {
		if _, err := ParseConfig([]byte(doc)); err == nil {
			t.Errorf("%s: accepted %s", name, doc)
		}
	}
}

func TestLoadFileCommittedConfig(t *testing.T) {
	loaded, err := LoadFile("../../configs/faults.json")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Inject == nil || loaded.Policy == nil {
		t.Fatalf("committed config must carry both sections: %+v", loaded)
	}
	if loaded.Inject.DropProb != 1 || loaded.Inject.ThrottleLimit != 50 {
		t.Fatalf("inject = %+v", loaded.Inject)
	}
	if loaded.Policy.MaxRetries != 3 || loaded.Policy.HedgeAfter != 500*time.Millisecond {
		t.Fatalf("policy = %+v", loaded.Policy)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("testdata/does-not-exist.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
