package experiments

import (
	"fmt"
	"time"

	"github.com/stellar-repro/stellar/internal/core"
)

// fig3WarmRefs are the paper's client-observed warm latencies (§VI-A values
// plus the per-provider propagation delays, since §VI-A reports them with
// propagation subtracted while all other sections include it).
var fig3WarmRefs = map[string]Ref{
	"aws":    {Median: 44 * time.Millisecond, P99: 100 * time.Millisecond},
	"google": {Median: 31 * time.Millisecond, P99: 61 * time.Millisecond},
	"azure":  {Median: 57 * time.Millisecond, P99: 107 * time.Millisecond},
}

// fig3ColdRefs are the paper's cold-invocation latencies (§VI-B1).
var fig3ColdRefs = map[string]Ref{
	"aws":    {Median: 448 * time.Millisecond, P99: 672 * time.Millisecond},
	"google": {Median: 870 * time.Millisecond, P99: 1567 * time.Millisecond},
	"azure":  {Median: 1401 * time.Millisecond, P99: 3643 * time.Millisecond},
}

// Fig3Warm reproduces Fig. 3a: latency distributions of warm invocations
// under the short (3 s) IAT, burst size 1.
func Fig3Warm(opts Options) (*Figure, error) {
	opts = opts.normalized()
	fig := &Figure{
		ID:    "fig3a",
		Title: "Warm-function response time CDFs (short IAT)",
		Notes: []string{"latencies are client-observed and include propagation delays"},
	}
	series, err := mapSeries(opts, len(AllProviders), func(i int, seed int64) (Series, error) {
		prov := AllProviders[i]
		res, err := measure(prov, seed, opts.Engine, pythonFn("warm", 1), core.RuntimeConfig{
			Samples:       opts.Samples,
			IAT:           core.Duration(shortIAT),
			WarmupDiscard: 3,
		})
		if err != nil {
			return Series{}, fmt.Errorf("fig3a %s: %w", prov, err)
		}
		return seriesFrom(prov, 0, res, fig3WarmRefs[prov]), nil
	})
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}

// Fig3Cold reproduces Fig. 3b: latency distributions of cold invocations
// under the long IAT (15 min; 10.5 min on AWS), using a fleet of identical
// replica functions invoked round-robin to parallelize the measurement, as
// the paper does (§V).
func Fig3Cold(opts Options) (*Figure, error) {
	opts = opts.normalized()
	fig := &Figure{
		ID:    "fig3b",
		Title: "Cold-function response time CDFs (long IAT)",
	}
	series, err := mapSeries(opts, len(AllProviders), func(i int, seed int64) (Series, error) {
		prov := AllProviders[i]
		res, err := measure(prov, seed, opts.Engine, pythonFn("cold", opts.Replicas), core.RuntimeConfig{
			Samples: opts.Samples,
			IAT:     core.Duration(longIATFor(prov) / time.Duration(opts.Replicas)),
		})
		if err != nil {
			return Series{}, fmt.Errorf("fig3b %s: %w", prov, err)
		}
		return seriesFrom(prov, 0, res, fig3ColdRefs[prov]), nil
	})
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}
