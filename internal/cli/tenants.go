package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"github.com/stellar-repro/stellar/internal/experiments"
	"github.com/stellar-repro/stellar/internal/providers"
)

// cmdTenants runs the provider-scale multi-tenant trace replay: a
// synthesized Azure-style tenant population replayed against one simulated
// provider under a swept keep-alive axis, producing the cold-start-rate vs
// instance-seconds Pareto frontier.
func cmdTenants(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("tenants", flag.ContinueOnError)
	fs.SetOutput(stdout)
	prof := addProfileFlags(fs)
	provider := fs.String("provider", "aws", "provider profile")
	providerFile := fs.String("provider-file", "", "JSON provider profile to load and use")
	tenants := fs.Int("tenants", 1000, "synthesized tenant population size")
	duration := fs.Duration("duration", 30*time.Minute, "arrival window (virtual time)")
	shards := fs.Int("shards", 8, "independent simulation shards per policy")
	workers := fs.Int("workers", 0, "concurrent shard simulations (0 = all CPUs, 1 = serial)")
	seed := fs.Int64("seed", 1, "random seed")
	keepalives := fs.String("keepalives", "", "comma-separated keep-alive sweep (default 1m,5m,10m,20m)")
	slack := fs.Duration("slack", 0, "keep-alive timer slack: route expiries via the timer wheel at this tick (0 = exact)")
	iatLo := fs.Duration("iat-lo", time.Second, "lower bound of per-tenant mean inter-arrival time")
	iatHi := fs.Duration("iat-hi", time.Minute, "upper bound of per-tenant mean inter-arrival time")
	alpha := fs.Float64("alpha", 0.02, "per-tenant latency sketch relative accuracy")
	maxConc := fs.Int("max-concurrency", 16, "per-tenant instance cap (-1 = uncapped)")
	top := fs.Int("top", 0, "report the N worst tenants by p99 per policy")
	engine := addEngineFlag(fs)
	jsonPath := fs.String("json", "", "write the sweep as JSON to this file (\"-\" = stdout)")
	csvPath := fs.String("csv", "", "write the sweep as CSV to this file (\"-\" = stdout)")
	benchJSON := fs.String("bench-json", "", "write replay throughput metrics as JSON to this file (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	if *providerFile != "" {
		loaded, err := providers.RegisterFile(*providerFile)
		if err != nil {
			return err
		}
		*provider = loaded
	}
	mode, err := engine.mode()
	if err != nil {
		return err
	}

	opts := experiments.TenantsOptions{
		Provider:       *provider,
		Tenants:        *tenants,
		Duration:       *duration,
		Shards:         *shards,
		Workers:        *workers,
		Seed:           *seed,
		SlackTick:      *slack,
		MeanIATLo:      *iatLo,
		MeanIATHi:      *iatHi,
		Alpha:          *alpha,
		MaxConcurrency: *maxConc,
		Top:            *top,
		Engine:         mode,
	}
	if opts.KeepAlives, err = parseDurations(*keepalives); err != nil {
		return fmt.Errorf("tenants: -keepalives: %w", err)
	}

	wallStart := time.Now()
	res, err := experiments.RunTenants(opts)
	if err != nil {
		return err
	}
	wall := time.Since(wallStart)

	experiments.WriteTenantsReport(stdout, res)
	// Wall-clock throughput lines carry a "wall:" prefix so differential
	// runs (CI's Workers=1 vs Workers=8 diff) can strip the only
	// nondeterministic output.
	var invocations uint64
	for _, p := range res.Points {
		invocations += p.Invocations
	}
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	fmt.Fprintf(stdout, "wall: %.2fs for %d tenant-replays / %d invocations (%.0f tenants/s, %.0f invocations/s), peak heap %.1f MB\n",
		wall.Seconds(), res.Tenants*len(res.Points), invocations,
		float64(res.Tenants*len(res.Points))/wall.Seconds(),
		float64(invocations)/wall.Seconds(),
		float64(mem.HeapSys)/(1<<20))

	if *benchJSON != "" {
		bench := struct {
			Tenants        int     `json:"tenants"`
			Policies       int     `json:"policies"`
			Invocations    uint64  `json:"invocations"`
			WallSeconds    float64 `json:"wall_seconds"`
			TenantsPerSec  float64 `json:"tenants_per_sec"`
			InvocsPerSec   float64 `json:"invocations_per_sec"`
			PeakHeapBytes  uint64  `json:"peak_heap_bytes"`
			HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
		}{
			Tenants:        res.Tenants,
			Policies:       len(res.Points),
			Invocations:    invocations,
			WallSeconds:    wall.Seconds(),
			TenantsPerSec:  float64(res.Tenants*len(res.Points)) / wall.Seconds(),
			InvocsPerSec:   float64(invocations) / wall.Seconds(),
			PeakHeapBytes:  mem.HeapSys,
			HeapAllocBytes: mem.HeapAlloc,
		}
		if err := writeTo(*benchJSON, stdout, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(bench)
		}); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		if err := writeTo(*jsonPath, stdout, func(w io.Writer) error {
			return experiments.WriteTenantsJSON(w, res)
		}); err != nil {
			return err
		}
	}
	if *csvPath != "" {
		if err := writeTo(*csvPath, stdout, func(w io.Writer) error {
			return experiments.WriteTenantsCSV(w, res)
		}); err != nil {
			return err
		}
	}
	return nil
}

// parseDurations parses a comma-separated duration list ("" = nil for
// defaults).
func parseDurations(s string) ([]time.Duration, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]time.Duration, 0, len(parts))
	for _, p := range parts {
		d, err := time.ParseDuration(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}
