package workflow

import (
	"fmt"
	"strconv"
	"strings"
)

// PresetSpec parameterizes a topology preset: every edge gets the same
// invocation mode, data-passing mode, and payload, which is what the edge
// sweep varies.
type PresetSpec struct {
	// Mode is the invocation mode applied to every edge.
	Mode Mode
	// Transfer is the data-passing mode applied to every edge.
	Transfer Transfer
	// PayloadBytes is the payload carried along every edge.
	PayloadBytes int64
	// Need, when positive, is the straggler policy applied to every fan-in
	// node (capped at each node's in-degree). Zero waits for all branches.
	Need int
}

// PresetIDs lists the four canonical topology ids (with representative
// parameter choices for the parameterized families).
var PresetIDs = []string{"chain-4", "fanout-8", "diamond", "mapreduce"}

// Preset builds one of the canonical topologies:
//
//   - chain-N: a sequential N-function chain n0 -> n1 -> ... (N >= 2); for
//     N=2 this is exactly the paper's two-function data-transfer setup.
//   - fanout-K: src scatters to K workers w1..wK which join at sink
//     (K >= 2), the scatter-gather pattern whose tail is the slowest branch.
//   - diamond: a branches to b and c, which join at d.
//   - mapreduce (alias map-reduce): src scatters to four mappers, each
//     mapper shuffles to both reducers, reducers join at sink.
//
// Node names double as function names; deploy one function per node before
// building an executor.
func Preset(id string, spec PresetSpec) (*DAG, error) {
	kind, param := id, ""
	if i := strings.LastIndexByte(id, '-'); i > 0 {
		kind, param = id[:i], id[i+1:]
	}
	switch {
	case kind == "chain" && param != "":
		n, err := strconv.Atoi(param)
		if err != nil || n < 2 || n > MaxNodes {
			return nil, fmt.Errorf("workflow: preset %q: chain length must be 2..%d", id, MaxNodes)
		}
		return presetChain(id, n, spec), nil
	case kind == "fanout" && param != "":
		k, err := strconv.Atoi(param)
		if err != nil || k < 2 || k > MaxNodes-2 {
			return nil, fmt.Errorf("workflow: preset %q: fanout width must be 2..%d", id, MaxNodes-2)
		}
		return presetFanout(id, k, spec), nil
	case id == "diamond":
		return presetDiamond(spec), nil
	case id == "mapreduce" || id == "map-reduce":
		return presetMapReduce(spec), nil
	}
	return nil, fmt.Errorf("workflow: unknown preset %q (chain-N, fanout-K, diamond, mapreduce)", id)
}

func (s PresetSpec) edge(from, to string) Edge {
	return Edge{From: from, To: to, Mode: s.Mode, Transfer: s.Transfer, PayloadBytes: s.PayloadBytes}
}

func (s PresetSpec) join(indeg int) int {
	if s.Need > 0 && s.Need < indeg {
		return s.Need
	}
	return 0
}

func presetChain(id string, n int, spec PresetSpec) *DAG {
	d := &DAG{Name: id}
	for i := 0; i < n; i++ {
		d.Nodes = append(d.Nodes, Node{Name: "n" + strconv.Itoa(i)})
		if i > 0 {
			d.Edges = append(d.Edges, spec.edge("n"+strconv.Itoa(i-1), "n"+strconv.Itoa(i)))
		}
	}
	return d
}

func presetFanout(id string, k int, spec PresetSpec) *DAG {
	d := &DAG{Name: id, Nodes: []Node{{Name: "src"}}}
	for i := 1; i <= k; i++ {
		w := "w" + strconv.Itoa(i)
		d.Nodes = append(d.Nodes, Node{Name: w})
		d.Edges = append(d.Edges, spec.edge("src", w))
	}
	d.Nodes = append(d.Nodes, Node{Name: "sink", Need: spec.join(k)})
	for i := 1; i <= k; i++ {
		d.Edges = append(d.Edges, spec.edge("w"+strconv.Itoa(i), "sink"))
	}
	return d
}

func presetDiamond(spec PresetSpec) *DAG {
	return &DAG{
		Name: "diamond",
		Nodes: []Node{
			{Name: "a"}, {Name: "b"}, {Name: "c"},
			{Name: "d", Need: spec.join(2)},
		},
		Edges: []Edge{
			spec.edge("a", "b"), spec.edge("a", "c"),
			spec.edge("b", "d"), spec.edge("c", "d"),
		},
	}
}

func presetMapReduce(spec PresetSpec) *DAG {
	const mappers, reducers = 4, 2
	d := &DAG{Name: "mapreduce", Nodes: []Node{{Name: "src"}}}
	for i := 1; i <= mappers; i++ {
		m := "m" + strconv.Itoa(i)
		d.Nodes = append(d.Nodes, Node{Name: m})
		d.Edges = append(d.Edges, spec.edge("src", m))
	}
	for j := 1; j <= reducers; j++ {
		d.Nodes = append(d.Nodes, Node{Name: "r" + strconv.Itoa(j), Need: spec.join(mappers)})
	}
	for i := 1; i <= mappers; i++ {
		for j := 1; j <= reducers; j++ {
			d.Edges = append(d.Edges, spec.edge("m"+strconv.Itoa(i), "r"+strconv.Itoa(j)))
		}
	}
	d.Nodes = append(d.Nodes, Node{Name: "sink", Need: spec.join(reducers)})
	for j := 1; j <= reducers; j++ {
		d.Edges = append(d.Edges, spec.edge("r"+strconv.Itoa(j), "sink"))
	}
	return d
}
