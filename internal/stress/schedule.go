// Package stress is an open-loop, coordinated-omission-safe load generator
// for live HTTP function endpoints — the production client fleet ROADMAP
// item 1 calls for. Arrival times are drawn from a schedule that never looks
// at responses: each request has an *intended* send instant fixed up front,
// and its latency is measured from that intended instant to the response,
// so a stalled server widens the measured tail instead of back-pressuring
// the generator and hiding the stall (coordinated omission).
//
// The fleet is a worker pool. Each worker owns an independent slice of the
// arrival schedule, a persistent connection (or per-worker http.Transport),
// pooled request/response buffers, and per-shard mergeable sketches, so the
// steady-state hot path allocates nothing and shards merge deterministically
// at the end (PR 3's sketch contract).
package stress

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/stellar-repro/stellar/internal/dist"
)

// ArrivalKind selects how intended send times are generated.
type ArrivalKind string

const (
	// ArrivalFixed spaces arrivals exactly 1/rate apart (deterministic).
	ArrivalFixed ArrivalKind = "fixed"
	// ArrivalPoisson draws exponential inter-arrival times with mean
	// 1/rate — a memoryless open-loop process, the standard model for
	// independent clients.
	ArrivalPoisson ArrivalKind = "poisson"
	// ArrivalTrace replays per-interval arrival counts from a trace file
	// (Azure-invocations style), spacing each interval's arrivals evenly.
	ArrivalTrace ArrivalKind = "trace"
)

// ParseArrivalKind validates a flag spelling.
func ParseArrivalKind(s string) (ArrivalKind, error) {
	switch ArrivalKind(s) {
	case ArrivalFixed, ArrivalPoisson, ArrivalTrace:
		return ArrivalKind(s), nil
	}
	return "", fmt.Errorf("stress: unknown arrival kind %q (want fixed, poisson, or trace)", s)
}

// plan is the immutable arrival schedule shared by the real-socket run and
// its same-seed DES twin. Worker w owns every W-th arrival (fixed/trace) or
// an independent thinned Poisson stream of rate rate/W — the superposition
// of the worker streams is exactly the requested process either way.
type plan struct {
	kind    ArrivalKind
	workers int
	rate    float64       // aggregate arrivals per second (fixed/poisson)
	horizon time.Duration // no arrivals at or beyond this offset (0 = unbounded)
	seed    int64

	// perWorker caps each worker's arrival count (MaxUint64 = unbounded).
	perWorker []uint64

	// trace holds the precomputed global arrival offsets in trace mode,
	// sorted ascending; workers stride over it.
	trace []time.Duration
}

// newPlan validates and freezes the schedule inputs.
func newPlan(opts Options) (*plan, error) {
	p := &plan{
		kind:    opts.Arrival,
		workers: opts.Workers,
		rate:    opts.Rate,
		horizon: opts.Duration,
		seed:    opts.Seed,
	}
	if p.workers <= 0 {
		return nil, fmt.Errorf("stress: need at least one worker, got %d", p.workers)
	}
	switch p.kind {
	case ArrivalFixed, ArrivalPoisson:
		if math.IsNaN(p.rate) || math.IsInf(p.rate, 0) || p.rate <= 0 {
			return nil, fmt.Errorf("stress: arrival rate must be a positive finite number, got %v", p.rate)
		}
		if p.horizon <= 0 && opts.MaxRequests == 0 {
			return nil, fmt.Errorf("stress: %s arrivals need a duration or a request cap", p.kind)
		}
	case ArrivalTrace:
		if len(opts.TraceCounts) == 0 {
			return nil, fmt.Errorf("stress: trace arrivals need per-interval counts")
		}
		if opts.TraceInterval <= 0 {
			return nil, fmt.Errorf("stress: trace interval must be positive, got %v", opts.TraceInterval)
		}
		p.trace = expandTrace(opts.TraceCounts, opts.TraceInterval)
		if len(p.trace) == 0 {
			return nil, fmt.Errorf("stress: trace has zero arrivals")
		}
	default:
		return nil, fmt.Errorf("stress: unknown arrival kind %q", p.kind)
	}
	p.perWorker = splitCount(opts.MaxRequests, p.workers)
	return p, nil
}

// splitCount divides a request cap across workers positionally (the
// remainder lands on the lowest-indexed workers, like the scale driver's
// shard split). A zero total means unbounded.
func splitCount(total uint64, workers int) []uint64 {
	caps := make([]uint64, workers)
	for w := range caps {
		if total == 0 {
			caps[w] = math.MaxUint64
			continue
		}
		caps[w] = total / uint64(workers)
		if uint64(w) < total%uint64(workers) {
			caps[w]++
		}
	}
	return caps
}

// expandTrace turns per-interval counts into concrete arrival offsets:
// interval i's count arrivals are spaced evenly across
// [i*interval, (i+1)*interval).
func expandTrace(counts []uint64, interval time.Duration) []time.Duration {
	var total uint64
	for _, c := range counts {
		total += c
	}
	offsets := make([]time.Duration, 0, total)
	for i, c := range counts {
		start := time.Duration(i) * interval
		for j := uint64(0); j < c; j++ {
			offsets = append(offsets, start+time.Duration(float64(interval)*float64(j)/float64(c)))
		}
	}
	return offsets
}

// PlannedArrivals validates opts and reports the planned arrival count when
// it is finite (trace mode, a request cap, or a fixed-rate horizon); 0 means
// the run is bounded only by its duration.
func PlannedArrivals(opts Options) (uint64, error) {
	p, err := newPlan(opts.withDefaults())
	if err != nil {
		return 0, err
	}
	return p.TotalArrivals(), nil
}

// TotalArrivals reports the planned arrival count, when it is finite
// (trace mode, a request cap, or a fixed-rate horizon); 0 means the plan is
// bounded only by its duration at run time.
func (p *plan) TotalArrivals() uint64 {
	if p.kind == ArrivalTrace {
		n := uint64(len(p.trace))
		if capd := sumCapped(p.perWorker); capd < n {
			n = capd
		}
		return n
	}
	if capd := sumCapped(p.perWorker); capd != math.MaxUint64 {
		return capd
	}
	if p.kind == ArrivalFixed && p.horizon > 0 {
		return uint64(float64(p.horizon)/float64(time.Second)*p.rate) + 1
	}
	return 0
}

func sumCapped(caps []uint64) uint64 {
	var sum uint64
	for _, c := range caps {
		if c == math.MaxUint64 {
			return math.MaxUint64
		}
		sum += c
	}
	return sum
}

// schedule yields one worker's intended arrival offsets, in order. next is
// allocation-free; the RNG (Poisson mode) is allocated once at worker
// start-up from the plan's deterministic per-worker stream.
type schedule struct {
	p      *plan
	worker int

	remaining uint64
	// fixed: the n-th arrival of worker w lands at (w + n*W)/rate.
	n uint64
	// poisson: cumulative offset and per-worker mean IAT in nanoseconds.
	rng    *rand.Rand
	atNS   float64
	meanNS float64
	// trace: stride cursor into p.trace.
	idx int
}

// worker builds worker w's schedule. Deterministic: two constructions from
// the same plan yield identical sequences, which is what lets the DES twin
// replay the exact real-run schedule in virtual time.
func (p *plan) workerSchedule(w int) *schedule {
	s := &schedule{p: p, worker: w, remaining: p.perWorker[w], idx: w}
	if p.kind == ArrivalPoisson {
		s.rng = dist.NewStreams(p.seed).Stream(fmt.Sprintf("stress/worker/%d", w))
		s.meanNS = float64(time.Second) * float64(p.workers) / p.rate
	}
	return s
}

// next returns the worker's next intended arrival offset from the run
// start, or ok=false when the schedule is exhausted (cap or horizon hit).
func (s *schedule) next() (time.Duration, bool) {
	if s.remaining == 0 {
		return 0, false
	}
	var off time.Duration
	switch s.p.kind {
	case ArrivalFixed:
		off = time.Duration(float64(time.Second) *
			(float64(s.worker) + float64(s.n)*float64(s.p.workers)) / s.p.rate)
		s.n++
	case ArrivalPoisson:
		s.atNS += s.rng.ExpFloat64() * s.meanNS
		off = time.Duration(s.atNS)
	case ArrivalTrace:
		if s.idx >= len(s.p.trace) {
			return 0, false
		}
		off = s.p.trace[s.idx]
		s.idx += s.p.workers
	}
	if s.p.horizon > 0 && off >= s.p.horizon {
		return 0, false
	}
	s.remaining--
	return off, true
}
