package experiments

import (
	"strings"
	"testing"
)

func TestPolicySpaceTradeoff(t *testing.T) {
	res, err := PolicySpace(Options{Seed: 3, Samples: 300, Replicas: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(PolicySpaceDepths) {
		t.Fatalf("%d points", len(res.Points))
	}
	first := res.Points[0]
	last := res.Points[len(res.Points)-1]
	// Depth 1: a dedicated instance per request.
	if first.Instances < res.BurstSize {
		t.Errorf("depth-1 used %d instances for %d requests", first.Instances, res.BurstSize)
	}
	// Deep queueing: far fewer instances, far worse completion time.
	if last.Instances >= first.Instances/4 {
		t.Errorf("depth-%d used %d instances, want << %d", last.QueueDepth, last.Instances, first.Instances)
	}
	if last.Latencies.Median() < 4*first.Latencies.Median() {
		t.Errorf("deep-queue median %v should dwarf no-queue median %v",
			last.Latencies.Median(), first.Latencies.Median())
	}
	// Monotone trends along the sweep: instances non-increasing, median
	// non-decreasing (allowing small noise at adjacent depths).
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Instances > res.Points[i-1].Instances {
			t.Errorf("instances grew from depth %d to %d (%d -> %d)",
				res.Points[i-1].QueueDepth, res.Points[i].QueueDepth,
				res.Points[i-1].Instances, res.Points[i].Instances)
		}
	}
	var sb strings.Builder
	WritePolicySpaceReport(&sb, res)
	for _, want := range []string{"policyspace", "queue-depth", "instances", "billed"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}
