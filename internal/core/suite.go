package core

import (
	"encoding/json"
	"fmt"
	"os"
)

// SuiteExperiment is one named (static, runtime) configuration pair — one
// measurement campaign within a suite.
type SuiteExperiment struct {
	// Name labels the experiment in reports and output files.
	Name string `json:"name"`
	// Static describes what to deploy.
	Static StaticConfig `json:"static"`
	// Runtime describes the load to drive.
	Runtime RuntimeConfig `json:"runtime"`
}

// SuiteConfig is a whole measurement campaign: STeLLAR's experiment
// configuration files describe several sub-experiments that run
// back-to-back against freshly deployed functions.
type SuiteConfig struct {
	Experiments []SuiteExperiment `json:"experiments"`
}

// LoadSuiteConfig reads a suite file.
func LoadSuiteConfig(path string) (*SuiteConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read suite config: %w", err)
	}
	var sc SuiteConfig
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("core: parse suite config: %w", err)
	}
	return &sc, nil
}

// Validate checks every experiment and applies runtime defaults in place.
func (sc *SuiteConfig) Validate() error {
	if len(sc.Experiments) == 0 {
		return fmt.Errorf("core: suite has no experiments")
	}
	seen := make(map[string]bool, len(sc.Experiments))
	for i := range sc.Experiments {
		e := &sc.Experiments[i]
		if e.Name == "" {
			return fmt.Errorf("core: suite experiment %d has no name", i)
		}
		if seen[e.Name] {
			return fmt.Errorf("core: duplicate suite experiment %q", e.Name)
		}
		seen[e.Name] = true
		if err := e.Static.Validate(); err != nil {
			return fmt.Errorf("core: suite experiment %q: %w", e.Name, err)
		}
		if err := e.Runtime.Validate(); err != nil {
			return fmt.Errorf("core: suite experiment %q: %w", e.Name, err)
		}
	}
	return nil
}
