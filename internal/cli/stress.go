package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/httpfaas"
	"github.com/stellar-repro/stellar/internal/providers"
	"github.com/stellar-repro/stellar/internal/results"
	"github.com/stellar-repro/stellar/internal/stress"
)

// cmdStress drives the open-loop, coordinated-omission-safe load generator
// over real sockets. By default it boots an in-process httpfaas server for
// the chosen provider profile, fires the schedule at it, and closes with a
// DES-vs-real tail comparison: the same profile, seed, and arrival schedule
// replayed in pure virtual time.
func cmdStress(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("stress", flag.ContinueOnError)
	fs.SetOutput(stdout)
	prof := addProfileFlags(fs)
	provider := fs.String("provider", "aws", "provider profile for the in-process server and DES twin")
	providerFile := fs.String("provider-file", "", "JSON provider profile to load and use")
	url := fs.String("url", "", "external endpoint to load instead of an in-process server (skips the DES twin)")
	arrival := fs.String("arrival", "poisson", "arrival process: fixed, poisson, or trace")
	rate := fs.Float64("rate", 100000, "aggregate arrival rate in requests/second (fixed, poisson)")
	duration := fs.Duration("duration", 0, "schedule horizon in wall time (0 = bounded by -n or the trace)")
	n := fs.Uint64("n", 0, "total request cap across workers (0 = unbounded)")
	workers := fs.Int("workers", 0, "client fleet size (0 = all CPUs)")
	conns := fs.Int("conns", 2, "idle connections per worker (std client)")
	client := fs.String("client", "raw", "HTTP client: raw (allocation-lean) or std (net/http)")
	payload := fs.Int64("payload", 0, "request payload bytes forwarded to the function")
	exec := fs.Duration("exec", 0, "function busy-spin time forwarded to the function")
	traceFile := fs.String("trace", "", "per-interval arrival-count file (switches -arrival to trace)")
	traceInterval := fs.Duration("trace-interval", time.Second, "trace interval length")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	scale := fs.Float64("scale", 1000, "httpfaas time compression (in-process server only)")
	seed := fs.Int64("seed", 1, "random seed shared by the schedule, server, and DES twin")
	alpha := fs.Float64("alpha", 0, "sketch relative-accuracy target (0 = default 0.5%)")
	closed := fs.Bool("closed", false, "closed-loop control: measure from actual sends (coordinated-omission-prone; for comparison only)")
	noTwin := fs.Bool("no-twin", false, "skip the same-seed DES comparison run")
	savePath := fs.String("save", "", "save the intended/service/send-lag sketches as a results file")
	csvPath := fs.String("csv", "", "write the latency CDFs as CSV")
	name := fs.String("name", "stress", "run name used in saved results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	kind, err := stress.ParseArrivalKind(*arrival)
	if err != nil {
		return err
	}
	clientKind, err := stress.ParseClientKind(*client)
	if err != nil {
		return err
	}
	opts := stress.Options{
		Arrival:      kind,
		Rate:         *rate,
		Duration:     *duration,
		Workers:      *workers,
		Conns:        *conns,
		Client:       clientKind,
		Seed:         *seed,
		MaxRequests:  *n,
		PayloadBytes: *payload,
		ExecTime:     *exec,
		Timeout:      *timeout,
		Alpha:        *alpha,
		ClosedLoop:   *closed,
	}
	if *traceFile != "" {
		counts, err := stress.LoadTraceCounts(*traceFile)
		if err != nil {
			return err
		}
		opts.Arrival = stress.ArrivalTrace
		opts.TraceCounts = counts
		opts.TraceInterval = *traceInterval
	}

	if *providerFile != "" {
		loaded, err := providers.RegisterFile(*providerFile)
		if err != nil {
			return err
		}
		*provider = loaded
	}

	timeScale := 1.0
	var twin *stress.DESResult
	var res *stress.Result
	if *url != "" {
		opts.URL = *url
		if planned, err := stress.PlannedArrivals(opts); err != nil {
			return err
		} else if planned > 0 {
			fmt.Fprintf(stdout, "planned arrivals: %d\n", planned)
		}
		res, err = stress.Run(opts)
		if err != nil {
			return err
		}
	} else {
		cfg, err := providers.Get(*provider)
		if err != nil {
			return err
		}
		srv, err := httpfaas.NewServer(cfg, *seed, *scale)
		if err != nil {
			return err
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return err
		}
		defer srv.Stop()
		fc := core.FunctionConfig{Name: "stress", Runtime: "go1.x", Method: "zip"}
		eps, err := srv.Deploy(fc)
		if err != nil {
			return err
		}
		opts.URL = eps[0].URL
		timeScale = *scale
		if planned, err := stress.PlannedArrivals(opts); err != nil {
			return err
		} else if planned > 0 {
			fmt.Fprintf(stdout, "planned arrivals: %d\n", planned)
		}
		res, err = stress.Run(opts)
		if err != nil {
			return err
		}
		if !*noTwin {
			twin, err = stress.RunDES(opts, cfg, fc)
			if err != nil {
				return fmt.Errorf("stress: DES twin: %w", err)
			}
		}
	}

	stress.WriteReport(stdout, opts, res, twin, timeScale)

	if *savePath != "" {
		rec := results.FromStressRun(*name, res.Intended, res.Service, res.SendLag,
			int(res.Colds), int(res.Errors))
		if err := rec.Save(*savePath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "sketches saved to %s\n", *savePath)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		return stress.WriteCDF(f, res)
	}
	return nil
}
