package results

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/stats"
	"github.com/stellar-repro/stellar/internal/stats/sketch"
)

func fakeRun(base time.Duration, n int, seed int64) *core.RunResult {
	rng := rand.New(rand.NewSource(seed))
	lat := stats.NewSample(n)
	for i := 0; i < n; i++ {
		lat.Add(base + time.Duration(rng.ExpFloat64()*float64(10*time.Millisecond)))
	}
	return &core.RunResult{
		Latencies:       lat,
		Transfers:       stats.NewSample(0),
		Colds:           3,
		BilledGBSeconds: 1.5,
	}
}

func TestRecordRoundTrip(t *testing.T) {
	res := fakeRun(40*time.Millisecond, 200, 1)
	rec := FromRunResult("baseline", res)
	path := filepath.Join(t.TempDir(), "run.json")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != "baseline" || loaded.Colds != 3 || loaded.BilledGBSeconds != 1.5 {
		t.Fatalf("loaded = %+v", loaded)
	}
	if loaded.Latencies().Median() != res.Latencies.Median() {
		t.Fatal("latency sample mangled")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := (&RunRecord{Name: "x"}).Save(empty); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil || !strings.Contains(err.Error(), "no latency samples") {
		t.Fatalf("err = %v", err)
	}
}

// TestSketchRecordRoundTrip: a scale run persists as a compact sketch-only
// record; loading rehydrates a Recorder with the original quantiles.
func TestSketchRecordRoundTrip(t *testing.T) {
	sk := sketch.New(0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50_000; i++ {
		sk.Add(40*time.Millisecond + time.Duration(rng.ExpFloat64()*float64(10*time.Millisecond)))
	}
	rec := FromScaleRun("scale-aws", sk, 12, 3)
	path := filepath.Join(t.TempDir(), "scale.json")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.LatenciesNS) != 0 {
		t.Fatal("sketch-only record grew raw latencies in transit")
	}
	if loaded.Colds != 12 || loaded.Errors != 3 {
		t.Fatalf("counters mangled: %+v", loaded)
	}
	r, err := loaded.Recorder()
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != sk.Count() || r.Quantile(0.99) != sk.Quantile(0.99) {
		t.Fatalf("rehydrated recorder differs: count %d/%d p99 %v/%v",
			r.Count(), sk.Count(), r.Quantile(0.99), sk.Quantile(0.99))
	}
}

// TestLoadRejectsCorruptSketch: sketch payload validation happens at load
// time, not when the analysis first touches it.
func TestLoadRejectsCorruptSketch(t *testing.T) {
	rec := &RunRecord{
		Name:   "bad",
		Sketch: &sketch.Record{Alpha: 0.005, Count: 5, Keys: []int32{1, 2}, Counts: []uint64{1}},
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("corrupt sketch record loaded without error")
	}
}

// TestRecorderPrefersExactSamples: raw latencies win over a sketch when a
// record carries both.
func TestRecorderPrefersExactSamples(t *testing.T) {
	rec := FromRunResult("both", fakeRun(40*time.Millisecond, 100, 3))
	sk := sketch.New(0)
	sk.Add(time.Hour) // decoy: would distort quantiles if preferred
	rec.Sketch = sk.Record()
	r, err := rec.Recorder()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(*stats.Sample); !ok {
		t.Fatalf("record with raw samples rehydrated as %T", r)
	}
	if _, err := (&RunRecord{Name: "neither"}).Recorder(); err == nil {
		t.Fatal("record with neither samples nor sketch produced a recorder")
	}
}

func TestCompareIdenticalRuns(t *testing.T) {
	a := FromRunResult("a", fakeRun(40*time.Millisecond, 400, 7))
	b := FromRunResult("b", fakeRun(40*time.Millisecond, 400, 8))
	cmp := Compare(a, b, 0.95, 200, rand.New(rand.NewSource(9)))
	if !cmp.SameDistribution {
		t.Errorf("identical-distribution runs flagged as different (p=%v)", cmp.MW.P)
	}
	for _, m := range cmp.Metrics {
		if m.Metric == "median" && m.Distinguishable {
			t.Errorf("medians of same-distribution runs distinguishable: %+v", m)
		}
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	a := FromRunResult("before", fakeRun(40*time.Millisecond, 400, 10))
	b := FromRunResult("after", fakeRun(80*time.Millisecond, 400, 11)) // 2x regression
	cmp := Compare(a, b, 0.95, 200, rand.New(rand.NewSource(12)))
	if cmp.SameDistribution {
		t.Error("2x regression not detected by Mann-Whitney")
	}
	med := cmp.Metrics[0]
	if !med.Distinguishable {
		t.Error("2x median regression within CI overlap")
	}
	if med.DeltaPct < 50 {
		t.Errorf("median delta %.1f%%, want ~100%%", med.DeltaPct)
	}
	var sb strings.Builder
	cmp.Write(&sb)
	out := sb.String()
	for _, want := range []string{"before", "after", "median", "p99", "distinguishable", "Mann-Whitney", "differ"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison output missing %q:\n%s", want, out)
		}
	}
}
