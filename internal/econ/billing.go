package econ

import (
	"fmt"
	"math"
	"sort"
)

// Usage is the resource consumption a billing plan prices: GB-milliseconds
// of instance time split by lifecycle state, plus the admitted request
// count. Usage is accumulated in virtual time by the cloud's lifecycle
// seams and priced after the fact, so one replay can be billed under any
// number of plans.
type Usage struct {
	// BusyGBms is GB-ms of instances actively serving requests — the
	// pay-per-use compute dimension every provider bills.
	BusyGBms float64 `json:"busy_gbms"`
	// IdleGBms is GB-ms of warm instances parked idle — what provisioned
	// or always-ready capacity plans charge for.
	IdleGBms float64 `json:"idle_gbms"`
	// SuspendedGBms is GB-ms of suspended instances: state is retained
	// off-memory, billed at a reduced rate (the Neon-style scale-to-zero
	// middle ground between warm and evicted).
	SuspendedGBms float64 `json:"suspended_gbms"`
	// Requests counts admitted external invocations (the per-request fee
	// dimension).
	Requests uint64 `json:"requests"`
}

// Add folds another usage into this one.
func (u *Usage) Add(o Usage) {
	u.BusyGBms += o.BusyGBms
	u.IdleGBms += o.IdleGBms
	u.SuspendedGBms += o.SuspendedGBms
	u.Requests += o.Requests
}

// Meter accumulates Usage in virtual time. It is a plain value embedded in
// the cloud's per-tenant and fleet records; every method is a float64 add,
// so the warm invocation path stays allocation-free.
type Meter struct {
	u Usage
}

// Busy adds GB-ms of busy (serving) instance time.
func (m *Meter) Busy(gbms float64) { m.u.BusyGBms += gbms }

// Idle adds GB-ms of warm-idle instance time.
func (m *Meter) Idle(gbms float64) { m.u.IdleGBms += gbms }

// Suspended adds GB-ms of suspended instance time.
func (m *Meter) Suspended(gbms float64) { m.u.SuspendedGBms += gbms }

// Request counts one admitted external invocation.
func (m *Meter) Request() { m.u.Requests++ }

// Usage returns the accumulated usage.
func (m *Meter) Usage() Usage { return m.u }

// Reset clears the meter.
func (m *Meter) Reset() { m.u = Usage{} }

// BillingConfig is one billing plan: per-GB-ms rates by lifecycle state
// plus a per-request fee, all in dollars. The zero value is a valid
// free-of-charge plan.
type BillingConfig struct {
	// Name identifies the plan in sweep reports.
	Name string `json:"name"`
	// BusyGBmsRate is dollars per GB-ms of busy compute.
	BusyGBmsRate float64 `json:"busy_gbms_rate"`
	// IdleGBmsRate is dollars per GB-ms of warm-idle capacity.
	IdleGBmsRate float64 `json:"idle_gbms_rate"`
	// SuspendedGBmsRate is dollars per GB-ms of suspended capacity.
	SuspendedGBmsRate float64 `json:"suspended_gbms_rate"`
	// PerRequestFee is dollars per admitted request.
	PerRequestFee float64 `json:"per_request_fee"`
}

// Validate rejects rates that would make pricing meaningless.
func (c *BillingConfig) Validate() error {
	for _, r := range [...]struct {
		name string
		v    float64
	}{
		{"busy_gbms_rate", c.BusyGBmsRate},
		{"idle_gbms_rate", c.IdleGBmsRate},
		{"suspended_gbms_rate", c.SuspendedGBmsRate},
		{"per_request_fee", c.PerRequestFee},
	} {
		if math.IsNaN(r.v) || math.IsInf(r.v, 0) {
			return fmt.Errorf("econ: billing %s must be finite, got %v", r.name, r.v)
		}
		if r.v < 0 {
			return fmt.Errorf("econ: negative billing %s %v", r.name, r.v)
		}
	}
	return nil
}

// Cost is priced usage, in dollars, broken down by dimension.
type Cost struct {
	Compute   float64 `json:"compute"`
	Idle      float64 `json:"idle"`
	Suspended float64 `json:"suspended"`
	Requests  float64 `json:"requests"`
	Total     float64 `json:"total"`
}

// Price applies the plan to accumulated usage.
func (c *BillingConfig) Price(u Usage) Cost {
	out := Cost{
		Compute:   u.BusyGBms * c.BusyGBmsRate,
		Idle:      u.IdleGBms * c.IdleGBmsRate,
		Suspended: u.SuspendedGBms * c.SuspendedGBmsRate,
		Requests:  float64(u.Requests) * c.PerRequestFee,
	}
	out.Total = out.Compute + out.Idle + out.Suspended + out.Requests
	return out
}

// PerMillionRequests normalizes a total cost to dollars per million
// requests (0 when no requests were served).
func PerMillionRequests(total float64, requests uint64) float64 {
	if requests == 0 {
		return 0
	}
	return total / float64(requests) * 1e6
}

// Built-in plans, grounded in public serverless price sheets (rates are
// per GB-ms, i.e. the usual per-GB-s figures divided by 1000):
//
//   - ondemand: classic pay-per-use FaaS — compute plus a per-request fee,
//     idle and suspended capacity free (the provider eats keep-alive).
//   - provisioned: always-ready capacity — cheaper compute, but warm-idle
//     bills at a reduced rate and suspended capacity at a tenth of that,
//     the AWS provisioned-concurrency / Neon suspend shape.
var builtinPlans = []BillingConfig{
	{
		Name:          "ondemand",
		BusyGBmsRate:  1.6666667e-8, // $0.0000166667 per GB-s
		PerRequestFee: 2.0e-7,       // $0.20 per million requests
	},
	{
		Name:              "provisioned",
		BusyGBmsRate:      9.7222e-9,  // $0.0000097222 per GB-s
		IdleGBmsRate:      4.1667e-9,  // $0.0000041667 per GB-s provisioned-idle
		SuspendedGBmsRate: 4.1667e-10, // a tenth of idle: state retained off-memory
		PerRequestFee:     2.0e-7,
	},
}

// Plans lists the built-in plan names, sorted.
func Plans() []string {
	names := make([]string, len(builtinPlans))
	for i, p := range builtinPlans {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// Plan returns a built-in billing plan by name.
func Plan(name string) (BillingConfig, error) {
	for _, p := range builtinPlans {
		if p.Name == name {
			return p, nil
		}
	}
	return BillingConfig{}, fmt.Errorf("econ: unknown billing plan %q (have %v)", name, Plans())
}
