package cloud

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/stellar-repro/stellar/internal/blobstore"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/econ"
	"github.com/stellar-repro/stellar/internal/faults"
	"github.com/stellar-repro/stellar/internal/trace"
)

// maxChainDepth bounds function-chain recursion.
const maxChainDepth = 32

// ErrInstanceCrash marks an invocation that died with its instance; the
// front end retries it up to Faults.Retries times before surfacing it.
var ErrInstanceCrash = errors.New("instance crashed")

// ErrQueueTimeout marks a request the gateway abandoned because no instance
// became available within Config.QueueTimeout.
var ErrQueueTimeout = errors.New("gateway queue timeout")

// ErrConcurrencyLimit marks a request rejected at admission because the
// function's FunctionSpec.MaxConcurrent in-flight cap was exhausted (AWS
// reserved-concurrency 429 behavior).
var ErrConcurrencyLimit = errors.New("concurrency limit exceeded")

// Metrics aggregates cloud-wide counters.
type Metrics struct {
	Invocations         uint64
	InternalInvocations uint64
	ColdServed          uint64
	WarmServed          uint64
	Spawns              uint64
	Expirations         uint64
	SlowPaths           uint64
	// Fault-injection counters: crashed invocations, front-end retries,
	// failed spawn attempts.
	Crashes       uint64
	Retries       uint64
	SpawnFailures uint64
	// Snapshot counters (vHive/REAP extension).
	SnapshotCaptures uint64
	SnapshotRestores uint64
	// QueueTimeouts counts requests the gateway abandoned while buffered.
	QueueTimeouts uint64
	// Injector counters (Config.Inject): in-flight request drops,
	// 429-style admission rejections, and storage-fetch timeouts.
	// Injector spawn failures fold into SpawnFailures above.
	Drops         uint64
	Throttles     uint64
	StorageFaults uint64
	// BilledGBSeconds accumulates the pay-per-use bill across all served
	// invocations (§II-A: providers charge for instance-busy time times
	// configured memory).
	BilledGBSeconds float64
	// Control-plane counters (Config.Autoscaler): instances parked in and
	// revived from the suspended state, and admissions rejected at a
	// function's MaxConcurrent cap.
	Suspends           uint64
	Resumes            uint64
	ConcurrencyRejects uint64
}

// TenantMetrics aggregates one deployed function's (one tenant's)
// counters — the per-tenant view of the cloud-wide Metrics, feeding the
// keep-alive policy sweep's cold-rate vs. instance-seconds trade-off.
type TenantMetrics struct {
	// Invocations counts external requests admitted for this function.
	Invocations uint64
	// ColdServed and WarmServed count serves by this function's instances
	// (chained internal serves included, as in the cloud-wide Metrics).
	ColdServed uint64
	WarmServed uint64
	// Errors counts failed external invocations (queue timeouts, drops,
	// crash-retry exhaustion).
	Errors uint64
	// InstanceSeconds integrates this function's live instances over
	// virtual time — the per-tenant memory-cost proxy.
	InstanceSeconds float64
}

// LatencyRecorder receives one client-observed latency per successful
// external invocation, in virtual-time completion order. Both the exact
// stats.Sample and the bounded sketch.Sketch satisfy it, so callers choose
// O(n) fidelity or fixed-memory scale without touching the simulator.
// Implementations need not be goroutine-safe: all invocations of one cloud
// run inside its single-threaded DES engine.
type LatencyRecorder interface {
	Add(latency time.Duration)
}

// Worker is a physical host in the simulated cluster. Placement is
// round-robin; the struct tracks occupancy for metrics and tests.
type Worker struct {
	ID        int
	Instances int
	Spawned   uint64
}

// Cloud is one simulated serverless region for a single provider profile.
// All methods must be called from simulation context unless noted.
type Cloud struct {
	eng *des.Engine
	cfg Config

	rngIngress  *rand.Rand
	rngSched    *rand.Rand
	rngInstance *rand.Rand
	rngWire     *rand.Rand

	imageStore   *blobstore.Store
	payloadStore *blobstore.Store

	functions map[string]*Function
	workers   []*Worker
	nextWID   int

	schedRes *des.Resource
	// capRes bounds total cluster instances (nil = unbounded).
	capRes *des.Resource

	// inj, when non-nil, injects transient failures into the invocation
	// path (Config.Inject). It stays nil unless a failure mode is active,
	// so the disabled case costs two nil checks per request and zero
	// random draws.
	inj *faults.Injector

	instanceSeq int
	payloadSeq  int

	// mode selects InvokeAsync's execution form (see engine_mode.go);
	// wcFree is the callback-record free list behind its zero-alloc fast
	// path (see asyncinvoke.go).
	mode   EngineMode
	wcFree *warmCall

	// instFree and fnFree recycle instance and function (tenant) records,
	// so thousands of tenants churning instances — and sweeps deploying
	// and removing tenant populations — reuse memory instead of growing
	// the heap (see function.go).
	instFree *Instance
	fnFree   *Function

	// latRec, when set, receives every successful external invocation's
	// client-observed latency as it completes (the Recorder seam; see
	// ARCHITECTURE.md). nil keeps the hot path untouched.
	latRec LatencyRecorder

	// tr, when set, records sampled per-request span traces of the pipeline
	// (the tracer seam; see ARCHITECTURE.md). nil keeps the hot path at one
	// pointer check per request and zero allocations.
	tr *trace.Tracer
	// reqSeq numbers external requests for trace identity.
	reqSeq uint64

	// Instance-seconds accounting: the integral of live instances over
	// virtual time, the provider-side resource-cost counterpart of the
	// keep-alive policy trade-off (Shahrad et al., cited in §VIII).
	liveInstances   int
	instSecAccum    float64
	instSecLastTick des.Time

	// meter accumulates fleet-wide usage (busy/idle/suspended GB-ms plus
	// request counts); per-tenant meters live on each Function and receive
	// the identical adds, so the fleet total is exactly their sum.
	meter econ.Meter

	metrics Metrics
}

// New builds a cloud on the engine from a provider profile. The streams
// factory provides deterministic per-component randomness.
func New(eng *des.Engine, cfg Config, streams *dist.Streams) (*Cloud, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cloud{
		eng:         eng,
		cfg:         cfg,
		rngIngress:  streams.Stream(cfg.Name + "/ingress"),
		rngSched:    streams.Stream(cfg.Name + "/sched"),
		rngInstance: streams.Stream(cfg.Name + "/instance"),
		rngWire:     streams.Stream(cfg.Name + "/wire"),
		functions:   make(map[string]*Function),
		schedRes:    des.NewResource(eng, cfg.SchedulerCapacity),
	}
	if cfg.Inject.Enabled() {
		c.inj = faults.NewInjector(*cfg.Inject, streams.Stream(cfg.Name+"/faults"), cfg.Workers)
	}
	c.imageStore = blobstore.New(eng, cfg.ImageStore, streams.Stream(cfg.Name+"/imagestore"))
	c.payloadStore = blobstore.New(eng, cfg.PayloadStore, streams.Stream(cfg.Name+"/payloadstore"))
	c.workers = make([]*Worker, cfg.Workers)
	for i := range c.workers {
		c.workers[i] = &Worker{ID: i}
	}
	if cfg.WorkerCapacity > 0 {
		c.capRes = des.NewResource(eng, cfg.Workers*cfg.WorkerCapacity)
	}
	if cfg.KeepAliveSlack > 0 {
		eng.SetTimerSlack(cfg.KeepAliveSlack)
	}
	return c, nil
}

// Engine returns the engine this cloud runs on.
func (c *Cloud) Engine() *des.Engine { return c.eng }

// Config returns the provider profile (a copy).
func (c *Cloud) Config() Config { return c.cfg }

// Metrics returns a snapshot of cloud counters.
func (c *Cloud) Metrics() Metrics { return c.metrics }

// SetLatencyRecorder installs (or, with nil, removes) the recorder that
// observes successful external invocation latencies. Swapping recorders
// mid-simulation is allowed; each completion records into the recorder
// installed at its completion time.
func (c *Cloud) SetLatencyRecorder(r LatencyRecorder) { c.latRec = r }

// SetTracer installs (or, with nil, removes) the per-request span tracer.
// Like the latency recorder, the tracer observes successful external
// invocations; drain it via trace.Tracer.Drain after the run.
func (c *Cloud) SetTracer(t *trace.Tracer) { c.tr = t }

// SetFunctionRecorder installs (or, with nil, removes) a per-function
// latency recorder alongside any cloud-wide one: every successful external
// invocation of this function records into it at completion. With a
// bounded sketch per tenant, a multi-tenant replay keeps full latency
// distributions for thousands of functions in ~20KB each.
func (c *Cloud) SetFunctionRecorder(name string, r LatencyRecorder) error {
	fn, ok := c.functions[name]
	if !ok {
		return fmt.Errorf("cloud %s: function %q not deployed", c.cfg.Name, name)
	}
	fn.rec = r
	return nil
}

// FunctionMetrics returns a snapshot of one function's tenant counters,
// with the instance-seconds integral brought up to the present instant.
func (c *Cloud) FunctionMetrics(name string) (TenantMetrics, bool) {
	fn, ok := c.functions[name]
	if !ok {
		return TenantMetrics{}, false
	}
	fn.noteInstSec()
	tm := fn.tm
	tm.InstanceSeconds = fn.instSecAccum
	return tm, true
}

// ImageStore exposes the function-image store (for tests and experiments).
func (c *Cloud) ImageStore() *blobstore.Store { return c.imageStore }

// PayloadStore exposes the payload store.
func (c *Cloud) PayloadStore() *blobstore.Store { return c.payloadStore }

// Deploy registers a function and seeds its image in the image store.
// Deployment happens outside the measured window, so it costs no virtual
// time (the paper's deployer runs before the client starts).
func (c *Cloud) Deploy(spec FunctionSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("cloud %s: function needs a name", c.cfg.Name)
	}
	if _, exists := c.functions[spec.Name]; exists {
		return fmt.Errorf("cloud %s: function %q already deployed", c.cfg.Name, spec.Name)
	}
	switch spec.Runtime {
	case RuntimePython, RuntimeGo:
	default:
		return fmt.Errorf("cloud %s: unsupported runtime %q", c.cfg.Name, spec.Runtime)
	}
	switch spec.Method {
	case DeployZIP, DeployContainer:
	default:
		return fmt.Errorf("cloud %s: unsupported deployment method %q", c.cfg.Name, spec.Method)
	}
	if spec.Chain != nil {
		switch spec.Chain.Transfer {
		case TransferInline, TransferStorage:
		default:
			return fmt.Errorf("cloud %s: unsupported transfer %q", c.cfg.Name, spec.Chain.Transfer)
		}
	}
	if spec.KeepAlive != nil && spec.KeepAlive.Fixed <= 0 && spec.KeepAlive.Dist == nil {
		return fmt.Errorf("cloud %s: function %q: keep-alive override unset", c.cfg.Name, spec.Name)
	}
	if spec.MaxInstances < 0 {
		return fmt.Errorf("cloud %s: function %q: negative MaxInstances", c.cfg.Name, spec.Name)
	}
	if spec.MaxConcurrent < 0 {
		return fmt.Errorf("cloud %s: function %q: negative MaxConcurrent", c.cfg.Name, spec.Name)
	}
	base := spec.BaseImageBytes
	if base == 0 {
		base = DefaultBaseImageBytes(spec.Runtime, spec.Method)
	}
	fn := c.getFunction()
	fn.spec = spec
	fn.imageKey = "image/" + spec.Name
	fn.imageBytes = base + spec.ExtraImageBytes
	fn.initDelay = c.cfg.initDelay(spec.Runtime, spec.Method)
	fn.tokens = c.cfg.Policy.InitialTokens
	fn.keepAlive = c.cfg.KeepAlive
	if spec.KeepAlive != nil {
		fn.keepAlive = *spec.KeepAlive
	}
	fn.maxInstances = spec.MaxInstances
	fn.maxConcurrent = spec.MaxConcurrent
	if c.cfg.Autoscaler != nil {
		if fn.as == nil {
			fn.as = econ.NewAutoscaler(*c.cfg.Autoscaler)
		} else {
			fn.as.Reset()
		}
	}
	if n, ok := c.cfg.ContainerChunkReads[spec.Runtime]; ok && spec.Method == DeployContainer {
		fn.chunkReads = n
	}
	c.imageStore.Seed(fn.imageKey, fn.imageBytes)
	c.functions[spec.Name] = fn
	return nil
}

// getFunction draws a recycled tenant record from the free list, or
// allocates a fresh one. Recycled records come back from putFunction
// fully reset.
func (c *Cloud) getFunction() *Function {
	fn := c.fnFree
	if fn == nil {
		fn = &Function{c: c, live: make(map[int]*Instance)}
		fn.tickFn = func() { fn.autoscaleTick() }
		return fn
	}
	c.fnFree = fn.freeNext
	fn.freeNext = nil
	return fn
}

// putFunction resets a quiesced tenant record and returns it to the free
// list. Callers must ensure no spawns, buffered requests, in-flight
// invocations, or scale-controller evaluations still reference it.
func (c *Cloud) putFunction(fn *Function) {
	clear(fn.live)
	for i := range fn.idle {
		fn.idle[i] = nil
	}
	fn.idle = fn.idle[:0]
	for i := range fn.buffer {
		fn.buffer[i] = nil
	}
	fn.buffer = fn.buffer[:0]
	fn.spec = FunctionSpec{}
	fn.imageKey, fn.imageBytes = "", 0
	fn.initDelay = nil
	fn.chunkReads = 0
	fn.snapshotReady = false
	fn.tokens, fn.lastRefill = 0, 0
	fn.keepAlive = KeepAlivePolicy{}
	fn.maxInstances = 0
	fn.maxConcurrent = 0
	// fn.as and fn.tickFn survive recycling (the autoscaler's ring is
	// sized by the cloud-wide config); Deploy resets the window state.
	fn.tickTimer = des.Timer{}
	fn.tickArmed = false
	fn.meter.Reset()
	for i := range fn.susp {
		fn.susp[i] = nil
	}
	fn.susp = fn.susp[:0]
	fn.rec = nil
	fn.tm = TenantMetrics{}
	fn.instSecAccum, fn.instSecLast = 0, 0
	fn.freeNext = c.fnFree
	c.fnFree = fn
}

// Remove tears down a function and all of its instances. A fully
// quiesced tenant record (no spawns, buffered requests, in-flight
// invocations, or pending scale evaluations) is recycled for the next
// Deploy, so sweeps that rebuild tenant populations reuse memory.
func (c *Cloud) Remove(name string) error {
	fn, ok := c.functions[name]
	if !ok {
		return fmt.Errorf("cloud %s: function %q not deployed", c.cfg.Name, name)
	}
	fn.noteInstSec()
	busy := false
	for _, inst := range fn.live {
		inst.keepAlive.Cancel()
		wasIdle := inst.state == stateIdle
		fn.noteUsage(inst)
		inst.state = stateGone
		inst.worker.Instances--
		c.noteInstanceDelta(-1)
		c.releaseClusterSlot()
		if wasIdle {
			c.putInstance(inst)
		} else {
			busy = true
		}
	}
	// Suspended instances hold no worker slot or cluster capacity; fold
	// their final suspended window and reap the records directly.
	for i, inst := range fn.susp {
		fn.noteUsage(inst)
		c.putInstance(inst)
		fn.susp[i] = nil
	}
	fn.susp = fn.susp[:0]
	if fn.tickArmed {
		fn.tickTimer.Cancel()
		fn.tickTimer = des.Timer{}
		fn.tickArmed = false
	}
	delete(c.functions, name)
	if !busy && fn.pending == 0 && fn.inflight == 0 && !fn.evalScheduled && len(fn.buffer) == 0 {
		c.putFunction(fn)
	}
	return nil
}

// HasFunction reports whether a function is deployed.
func (c *Cloud) HasFunction(name string) bool {
	_, ok := c.functions[name]
	return ok
}

// FunctionNames lists deployed functions (unordered).
func (c *Cloud) FunctionNames() []string {
	names := make([]string, 0, len(c.functions))
	for name := range c.functions {
		names = append(names, name)
	}
	return names
}

// LiveInstances reports the live (idle+busy) instance count of a function.
func (c *Cloud) LiveInstances(name string) int {
	fn, ok := c.functions[name]
	if !ok {
		return 0
	}
	return len(fn.live)
}

// IdleInstances reports a function's idle instance count.
func (c *Cloud) IdleInstances(name string) int {
	fn, ok := c.functions[name]
	if !ok {
		return 0
	}
	return len(fn.idle)
}

// Workers returns the simulated hosts.
func (c *Cloud) Workers() []*Worker { return c.workers }

// releaseClusterSlot returns one unit of bounded cluster capacity.
func (c *Cloud) releaseClusterSlot() {
	if c.capRes != nil {
		c.capRes.Release()
	}
}

// noteInstanceDelta updates the live-instance integral when instances are
// created or reaped.
func (c *Cloud) noteInstanceDelta(delta int) {
	now := c.eng.Now()
	c.instSecAccum += float64(c.liveInstances) * (now - c.instSecLastTick).Seconds()
	c.instSecLastTick = now
	c.liveInstances += delta
}

// InstanceSeconds reports the cumulative instance-seconds provisioned so
// far (live instances integrated over virtual time).
func (c *Cloud) InstanceSeconds() float64 {
	c.noteInstanceDelta(0)
	return c.instSecAccum
}

func (c *Cloud) pickWorker() *Worker {
	if c.cfg.Placement == PlacementLeastLoaded {
		best := c.workers[0]
		for _, w := range c.workers[1:] {
			if w.Instances < best.Instances {
				best = w
			}
		}
		return best
	}
	w := c.workers[c.nextWID%len(c.workers)]
	c.nextWID++
	return w
}

// Invoke executes one function invocation on behalf of the calling process,
// advancing virtual time through every infrastructure component the request
// traverses. It returns when the response reaches the caller.
func (c *Cloud) Invoke(p *des.Proc, req *Request) (_ *Response, err error) {
	fn, ok := c.functions[req.Fn]
	if !ok {
		return nil, fmt.Errorf("cloud %s: function %q not deployed", c.cfg.Name, req.Fn)
	}
	if !req.Internal {
		start := p.Now()
		defer func() {
			if err != nil {
				fn.tm.Errors++
				return
			}
			lat := p.Now() - start
			if c.latRec != nil {
				c.latRec.Add(lat)
			}
			if fn.rec != nil {
				fn.rec.Add(lat)
			}
		}()
	}
	if req.depth > maxChainDepth {
		return nil, fmt.Errorf("cloud %s: chain depth exceeds %d", c.cfg.Name, maxChainDepth)
	}
	if req.Internal {
		c.metrics.InternalInvocations++
	} else {
		c.metrics.Invocations++
		fn.tm.Invocations++
	}
	// Tracer seam: external requests record spans when a tracer is installed
	// and this request is sampled. tr stays nil otherwise; every Mark below
	// no-ops on a nil receiver, keeping the disabled path allocation-free.
	// A caller-owned span (Request.Span: the workflow executor's per-node
	// traces) takes this request over instead and is finished at the instant
	// the response reaches the caller.
	var tr *trace.Req
	if req.Span != nil {
		tr = req.Span
		defer func() { tr.Finish(p.Now(), err) }()
	} else if c.tr != nil && !req.Internal {
		c.reqSeq++
		if tr = c.tr.Begin(c.reqSeq, req.Fn, p.Now()); tr != nil {
			defer func() { c.tr.End(tr, p.Now(), err) }()
		}
	}
	fn.inflight++
	defer func() { fn.inflight-- }()
	if !req.Internal {
		fn.meter.Request()
		c.meter.Request()
		if fn.maxConcurrent > 0 && fn.inflight > fn.maxConcurrent {
			c.metrics.ConcurrencyRejects++
			return nil, fmt.Errorf("cloud %s: %s over concurrency limit %d: %w",
				c.cfg.Name, req.Fn, fn.maxConcurrent, ErrConcurrencyLimit)
		}
	}
	if fn.as != nil {
		fn.autoscaleAdmit()
	}

	var bd Breakdown

	// Ingress: propagation + front-end admission (1)-(2) for external
	// requests; internal calls re-enter at the front-end/load balancer (9).
	if req.Internal {
		bd.Frontend = c.cfg.InternalDelay.Sample(c.rngIngress)
		p.Sleep(bd.Frontend)
		tr.Mark(trace.StageFrontend, bd.Frontend, p.Now())
	} else {
		bd.Propagation = c.cfg.PropagationRTT
		p.Sleep(c.cfg.PropagationRTT / 2)
		tr.Mark(trace.StagePropagation, c.cfg.PropagationRTT/2, p.Now())
		// Injected in-flight drop: the request vanishes before admission
		// and no response ever travels back — the caller only learns via
		// its own timeout (see faults.Policy).
		if c.inj != nil && c.inj.Drop() {
			c.metrics.Drops++
			return nil, fmt.Errorf("cloud %s: %s: %w", c.cfg.Name, req.Fn, faults.ErrDropped)
		}
		bd.Frontend = c.cfg.FrontendDelay.Sample(c.rngIngress)
		p.Sleep(bd.Frontend)
		tr.Mark(trace.StageFrontend, bd.Frontend, p.Now())
		// Injected throttling: the front end rejects requests beyond the
		// fleet-wide admission window with a 429, which does travel back.
		if c.inj != nil && !c.inj.Admit(c.eng.Now()) {
			c.metrics.Throttles++
			p.Sleep(c.cfg.PropagationRTT / 2)
			return nil, fmt.Errorf("cloud %s: %s: %w", c.cfg.Name, req.Fn, faults.ErrThrottled)
		}
	}
	if req.wireDelay > 0 {
		bd.Wire = req.wireDelay
		p.Sleep(req.wireDelay)
		tr.Mark(trace.StageWire, req.wireDelay, p.Now())
	}

	// Ingestion congestion under concurrent load to the same function.
	if q := fn.inflight - 1 - c.cfg.CongestionThreshold; q > 0 {
		exp := c.cfg.CongestionExponent
		if exp == 0 {
			exp = 1
		}
		extra := time.Duration(float64(c.cfg.CongestionUnit) * math.Pow(float64(q), exp))
		if c.cfg.CongestionCap > 0 && extra > c.cfg.CongestionCap {
			extra = c.cfg.CongestionCap
		}
		bd.Congestion = extra
		p.Sleep(extra)
		tr.Mark(trace.StageCongestion, extra, p.Now())
		prob := float64(q) * c.cfg.SlowPathProbPerInflight
		if prob > c.cfg.SlowPathMaxProb {
			prob = c.cfg.SlowPathMaxProb
		}
		if prob > 0 && c.rngIngress.Float64() < prob {
			bd.SlowPath = c.cfg.SlowPathDelay.Sample(c.rngIngress)
			p.Sleep(bd.SlowPath)
			tr.Mark(trace.StageSlowPath, bd.SlowPath, p.Now())
			c.metrics.SlowPaths++
		}
	}

	// Load balancer routing (2).
	bd.Routing = c.cfg.RoutingDelay.Sample(c.rngIngress)
	p.Sleep(bd.Routing)
	tr.Mark(trace.StageRouting, bd.Routing, p.Now())

	// Instance acquisition and service, with front-end retries of crashed
	// invocations. Each attempt records its own components; failed
	// attempts fold wholesale into the Retried bucket so the final
	// breakdown still sums to the observed latency.
	var resp *Response
	attempts := 0
	for {
		attempts++
		tr.Attempt(attempts)
		var abd Breakdown

		// Idle warm instance, or buffer + scale (3)-(6).
		inst := fn.claimIdle()
		if inst == nil {
			pr := &pendingReq{sig: des.NewSignal(c.eng), enqueued: c.eng.Now()}
			fn.buffer = append(fn.buffer, pr)
			fn.maybeScale()
			if c.cfg.QueueTimeout > 0 {
				if !p.WaitTimeout(pr.sig, c.cfg.QueueTimeout) {
					fn.dropBuffered(pr)
					// The timeout and a grant can land at the same
					// virtual instant: the timer fires first, then a
					// release grants this request an instance anyway.
					// Return that instance or it stays busy forever —
					// leaking its worker slot, cluster capacity, and
					// keep-alive accounting.
					if pr.inst != nil {
						fn.release(pr.inst)
					}
					c.metrics.QueueTimeouts++
					return nil, fmt.Errorf("cloud %s: %s buffered for %v: %w",
						c.cfg.Name, fn.spec.Name, c.cfg.QueueTimeout, ErrQueueTimeout)
				}
			} else {
				p.Wait(pr.sig)
			}
			inst = pr.inst
			abd.QueueWait = c.eng.Now() - pr.enqueued
			tr.Mark(trace.StageQueueWait, abd.QueueWait, p.Now())
			if pr.handoff {
				abd.QueueHandoff = c.cfg.QueueHandoffDelay.Sample(c.rngInstance)
				p.Sleep(abd.QueueHandoff)
				tr.Mark(trace.StageQueueHandoff, abd.QueueHandoff, p.Now())
			}
		}

		resp, err = c.serve(p, inst, req, fn, &abd, tr)
		if errors.Is(err, ErrInstanceCrash) {
			fn.destroy(inst)
			if attempts <= c.cfg.Faults.Retries {
				c.metrics.Retries++
				backoff := c.cfg.Faults.RetryBackoff.Sample(c.rngIngress)
				p.Sleep(backoff)
				tr.Mark(trace.StageRetryBackoff, backoff, p.Now())
				bd.Retried += attemptSum(abd) + backoff
				continue
			}
		} else {
			fn.release(inst)
		}
		mergeAttempt(&bd, abd)
		break
	}

	// Egress: response path + propagation back to the client.
	tr.Attempt(0)
	if !req.Internal {
		bd.ResponsePath = c.cfg.ResponseDelay.Sample(c.rngIngress)
		p.Sleep(bd.ResponsePath)
		tr.Mark(trace.StageResponse, bd.ResponsePath, p.Now())
		p.Sleep(c.cfg.PropagationRTT / 2)
		tr.Mark(trace.StagePropagation, c.cfg.PropagationRTT/2, p.Now())
	}
	resp.QueueWait = bd.QueueWait
	resp.Attempts = attempts
	resp.Breakdown = bd
	return resp, err
}

// attemptSum totals an attempt's acquisition+service components.
func attemptSum(a Breakdown) time.Duration {
	return a.QueueWait + a.QueueHandoff + a.Overhead + a.PayloadFetch +
		a.Exec + a.PayloadStore + a.Downstream
}

// mergeAttempt copies the final attempt's components into the request's
// breakdown.
func mergeAttempt(bd *Breakdown, a Breakdown) {
	bd.QueueWait = a.QueueWait
	bd.QueueHandoff = a.QueueHandoff
	bd.Overhead = a.Overhead
	bd.PayloadFetch = a.PayloadFetch
	bd.Exec = a.Exec
	bd.PayloadStore = a.PayloadStore
	bd.Downstream = a.Downstream
	bd.ColdStart = a.ColdStart
}

// serve runs the instance-side invocation (7)-(8): per-invocation overhead,
// payload retrieval, busy-spin execution (CPU-throttled for low-memory
// instances), chained downstream calls, and billing.
func (c *Cloud) serve(p *des.Proc, inst *Instance, req *Request, fn *Function, bd *Breakdown, tr *trace.Req) (*Response, error) {
	cold := inst.served == 0
	inst.served++
	tr.SetCold(cold)
	if cold {
		c.metrics.ColdServed++
		fn.tm.ColdServed++
		bd.ColdStart = inst.coldBreakdown
		if tr != nil {
			// Reconstruct the spawn pipeline as detail spans laid out
			// back-to-back against the instance's creation instant; they
			// nest inside (and may predate) this request's queue wait.
			cb := inst.coldBreakdown
			tr.ColdSpans(inst.createdAt,
				trace.Phase{Stage: trace.StageColdSchedulerQueue, Dur: cb.SchedulerQueue},
				trace.Phase{Stage: trace.StageColdPlacement, Dur: cb.Placement},
				trace.Phase{Stage: trace.StageColdSandboxBoot, Dur: cb.SandboxBoot},
				trace.Phase{Stage: trace.StageColdImageFetch, Dur: cb.ImageFetch},
				trace.Phase{Stage: trace.StageColdChunkReads, Dur: cb.ChunkReads},
				trace.Phase{Stage: trace.StageColdRuntimeInit, Dur: cb.RuntimeInit},
				trace.Phase{Stage: trace.StageColdSnapshotRestore, Dur: cb.SnapshotRestore},
				trace.Phase{Stage: trace.StageColdSnapshotCapture, Dur: cb.SnapshotCapture},
			)
		}
	} else {
		c.metrics.WarmServed++
		fn.tm.WarmServed++
	}
	resp := &Response{
		Fn:         fn.spec.Name,
		InstanceID: inst.id,
		Cold:       cold,
		Timestamps: make(map[string]des.Time, 2),
	}
	busyStart := p.Now()
	defer func() {
		gbs := (p.Now() - busyStart).Seconds() * c.cfg.memoryGB(fn.spec.MemoryMB)
		resp.BilledGBSeconds = gbs
		c.metrics.BilledGBSeconds += gbs
	}()

	bd.Overhead = c.cfg.WarmOverhead.Sample(c.rngInstance)
	p.Sleep(bd.Overhead)
	tr.Mark(trace.StageOverhead, bd.Overhead, p.Now())

	// Retrieve a storage-based payload before the handler body runs.
	if req.storageKey != "" {
		// Injected storage timeout: the fetch blocks for the configured
		// deadline, then fails the invocation (the instance survives and
		// is released by the non-crash error path in Invoke).
		if c.inj != nil {
			if d, ok := c.inj.StorageFault(); ok {
				bd.PayloadFetch = d
				p.Sleep(d)
				c.metrics.StorageFaults++
				return resp, fmt.Errorf("cloud %s: payload fetch for %s: %w",
					c.cfg.Name, fn.spec.Name, faults.ErrStorageTimeout)
			}
		}
		_, lat, err := c.payloadStore.Get(p, req.storageKey)
		if err != nil {
			return resp, err
		}
		bd.PayloadFetch = lat
		tr.Mark(trace.StagePayloadFetch, lat, p.Now())
	}
	resp.Timestamps[fn.spec.Name+".recv"] = p.Now()

	exec := req.ExecTime
	if exec == 0 {
		exec = fn.spec.ExecTime
	}
	if exec > 0 {
		// Busy-spin work stretches on CPU-throttled low-memory instances.
		exec = time.Duration(float64(exec) * c.cfg.throttleFactor(fn.spec.MemoryMB))
		bd.Exec = exec
		p.Sleep(exec)
		tr.Mark(trace.StageExec, exec, p.Now())
	}

	// Injected instance crash: the sandbox dies after executing.
	if f := c.cfg.Faults.CrashProb; f > 0 && c.rngInstance.Float64() < f {
		c.metrics.Crashes++
		return resp, fmt.Errorf("cloud %s: instance %d serving %s: %w",
			c.cfg.Name, inst.id, fn.spec.Name, ErrInstanceCrash)
	}

	// Continuation seam: a request-supplied continuation runs exactly where
	// the static chain block would, inside the instance's busy window (see
	// downstream.go). It takes precedence over the function's Chain.
	if req.Cont != nil {
		env := &DownstreamEnv{c: c, p: p, req: req, fn: fn, bd: bd, tr: tr, resp: resp}
		if err := req.Cont.Run(p, env); err != nil {
			return resp, err
		}
		return resp, nil
	}
	if ch := fn.spec.Chain; ch != nil {
		payload := req.ChainPayloadBytes
		if payload == 0 {
			payload = ch.PayloadBytes
		}
		// Producer timestamp before saving/sending the payload (§IV).
		resp.Timestamps[fn.spec.Name+".send"] = p.Now()
		next := &Request{
			Fn:                ch.Next,
			Internal:          true,
			depth:             req.depth + 1,
			ChainPayloadBytes: payload,
		}
		switch ch.Transfer {
		case TransferInline:
			if c.cfg.InlineLimitBytes > 0 && payload > c.cfg.InlineLimitBytes {
				return resp, fmt.Errorf("cloud %s: inline payload %dB exceeds provider limit %dB",
					c.cfg.Name, payload, c.cfg.InlineLimitBytes)
			}
			next.wireDelay = c.inlineWireTime(payload)
		case TransferStorage:
			c.payloadSeq++
			key := fmt.Sprintf("payload/%s/%d", fn.spec.Name, c.payloadSeq)
			bd.PayloadStore = c.payloadStore.Put(p, key, payload)
			tr.Mark(trace.StagePayloadStore, bd.PayloadStore, p.Now())
			next.storageKey = key
		}
		downstreamStart := p.Now()
		nresps, err := c.invokeDownstream(p, next, ch.Fanout)
		bd.Downstream = p.Now() - downstreamStart
		tr.Mark(trace.StageDownstream, bd.Downstream, p.Now())
		for _, nresp := range nresps {
			for k, v := range nresp.Timestamps {
				resp.Timestamps[k] = v
			}
		}
		if err != nil {
			return resp, fmt.Errorf("chain %s->%s: %w", fn.spec.Name, ch.Next, err)
		}
	}
	return resp, nil
}

// invokeDownstream performs the chain's downstream call(s): one sequential
// invocation, or a scatter-gather of fanout parallel copies joined before
// the producer returns.
func (c *Cloud) invokeDownstream(p *des.Proc, next *Request, fanout int) ([]*Response, error) {
	if fanout <= 1 {
		nresp, err := c.Invoke(p, next)
		if nresp == nil {
			return nil, err
		}
		return []*Response{nresp}, err
	}
	done := des.NewSignal(c.eng)
	remaining := fanout
	var firstErr error
	responses := make([]*Response, 0, fanout)
	for i := 0; i < fanout; i++ {
		reqCopy := *next
		c.eng.Spawn("fanout/"+next.Fn, func(sp *des.Proc) {
			r, err := c.Invoke(sp, &reqCopy)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if r != nil {
				responses = append(responses, r)
			}
			remaining--
			if remaining == 0 {
				done.Fire()
			}
		})
	}
	p.Wait(done)
	return responses, firstErr
}

// inlineWireTime converts an inline payload size into transmission delay at
// the provider's effective invocation-path bandwidth (§VI-C1 measures this
// at a few hundred Mb/s, far below NIC line rate).
func (c *Cloud) inlineWireTime(payload int64) time.Duration {
	if payload <= 0 || c.cfg.InlineBandwidthBps <= 0 {
		return 0
	}
	bps := c.cfg.InlineBandwidthBps
	if j := c.cfg.InlineJitterPct; j > 0 {
		bps *= 1 - j + 2*j*c.rngWire.Float64()
	}
	return time.Duration(float64(payload) * 8 / bps * float64(time.Second))
}
