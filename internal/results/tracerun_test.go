package results

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/stats"
	"github.com/stellar-repro/stellar/internal/trace"
)

// tilingTrace builds one valid record whose two spans exactly tile the
// request window.
func tilingTrace(id uint64) trace.RequestRecord {
	start := int64(time.Second)
	mid := start + int64(4*time.Millisecond)
	end := mid + int64(6*time.Millisecond)
	return trace.RequestRecord{
		ID: id, Fn: "f", StartNS: start, EndNS: end,
		Spans: []trace.SpanRecord{
			{Stage: "frontend", StartNS: start, DurNS: mid - start},
			{Stage: "exec", StartNS: mid, DurNS: end - mid},
		},
	}
}

func TestFromTraceRunRoundTrip(t *testing.T) {
	lats := stats.NewSample(2)
	lats.Add(10 * time.Millisecond)
	lats.Add(25 * time.Millisecond)
	traces := []trace.RequestRecord{tilingTrace(1), tilingTrace(2)}
	rec := FromTraceRun("traced", lats, traces, 3, 1)

	if rec.Colds != 3 || rec.Errors != 1 {
		t.Fatalf("counters mangled: %+v", rec)
	}
	path := filepath.Join(t.TempDir(), "traced.json")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Traces) != 2 || loaded.Traces[0].ID != 1 {
		t.Fatalf("traces mangled: %+v", loaded.Traces)
	}
	if loaded.Latencies().Len() != 2 {
		t.Fatalf("latency sample mangled: %d values", loaded.Latencies().Len())
	}
}

// TestLoadRejectsCorruptTrace: a persisted trace whose spans no longer tile
// its latency fails at load time, not mid-analysis.
func TestLoadRejectsCorruptTrace(t *testing.T) {
	lats := stats.NewSample(1)
	lats.Add(10 * time.Millisecond)
	bad := tilingTrace(1)
	bad.Spans[1].DurNS += int64(time.Millisecond) // spans now overrun the window
	rec := FromTraceRun("corrupt", lats, []trace.RequestRecord{bad}, 0, 0)

	path := filepath.Join(t.TempDir(), "corrupt.json")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "trace") {
		t.Fatalf("Load accepted a corrupt trace (err=%v)", err)
	}
}
