// Package dist provides random latency/size distributions used by the
// serverless cloud simulator. All distributions draw from an explicit
// *rand.Rand so every simulation component owns a deterministic stream.
//
// Durations are modeled in nanoseconds (time.Duration); helper constructors
// accept time.Duration for readability at call sites.
package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Dist is a distribution over durations.
type Dist interface {
	// Sample draws one value using rng.
	Sample(rng *rand.Rand) time.Duration
	// String describes the distribution for logs and reports.
	String() string
}

// Constant always returns the same value.
type Constant time.Duration

// Sample implements Dist.
func (c Constant) Sample(*rand.Rand) time.Duration { return time.Duration(c) }

func (c Constant) String() string { return fmt.Sprintf("const(%v)", time.Duration(c)) }

// Uniform is uniform on [Min, Max].
type Uniform struct {
	Min, Max time.Duration
}

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)+1))
}

func (u Uniform) String() string { return fmt.Sprintf("uniform(%v,%v)", u.Min, u.Max) }

// Exponential has the given mean.
type Exponential struct {
	Mean time.Duration
}

// Sample implements Dist.
func (e Exponential) Sample(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(e.Mean))
}

func (e Exponential) String() string { return fmt.Sprintf("exp(mean=%v)", e.Mean) }

// LogNormal is parameterized by the underlying normal's mu and sigma
// (of log nanoseconds). Prefer LogNormalMedTail for readable construction.
type LogNormal struct {
	Mu, Sigma float64
}

// Sample implements Dist.
func (l LogNormal) Sample(rng *rand.Rand) time.Duration {
	x := math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
	if x > math.MaxInt64 {
		x = math.MaxInt64
	}
	return time.Duration(x)
}

func (l LogNormal) String() string {
	return fmt.Sprintf("lognormal(med=%v,p99=%v)", l.Median(), l.P99())
}

// z99 is the standard normal 99th-percentile quantile.
const z99 = 2.3263478740408408

// Median returns the distribution's median.
func (l LogNormal) Median() time.Duration { return time.Duration(math.Exp(l.Mu)) }

// P99 returns the distribution's 99th percentile.
func (l LogNormal) P99() time.Duration { return time.Duration(math.Exp(l.Mu + z99*l.Sigma)) }

// LogNormalMedTail builds a log-normal with the given median and 99th
// percentile. It panics if p99 < median or median <= 0.
func LogNormalMedTail(median, p99 time.Duration) LogNormal {
	if median <= 0 || p99 < median {
		panic(fmt.Sprintf("dist: invalid lognormal median=%v p99=%v", median, p99))
	}
	mu := math.Log(float64(median))
	sigma := 0.0
	if p99 > median {
		sigma = (math.Log(float64(p99)) - mu) / z99
	}
	return LogNormal{Mu: mu, Sigma: sigma}
}

// Weibull with shape k and scale lambda (in nanoseconds). Shape < 1 yields a
// heavy tail; shape > 1 concentrates around the scale.
type Weibull struct {
	Shape float64
	Scale time.Duration
}

// Sample implements Dist.
func (w Weibull) Sample(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return time.Duration(float64(w.Scale) * math.Pow(-math.Log(u), 1/w.Shape))
}

func (w Weibull) String() string { return fmt.Sprintf("weibull(k=%.2f,scale=%v)", w.Shape, w.Scale) }

// Pareto is a (Type I) Pareto distribution with minimum Xm and tail index
// Alpha. Smaller Alpha means heavier tail; Alpha <= 1 has infinite mean.
type Pareto struct {
	Xm    time.Duration
	Alpha float64
}

// Sample implements Dist.
func (p Pareto) Sample(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	x := float64(p.Xm) / math.Pow(u, 1/p.Alpha)
	if x > math.MaxInt64 {
		x = math.MaxInt64
	}
	return time.Duration(x)
}

func (p Pareto) String() string { return fmt.Sprintf("pareto(xm=%v,alpha=%.2f)", p.Xm, p.Alpha) }

// Shifted adds a constant offset to another distribution.
type Shifted struct {
	Offset time.Duration
	D      Dist
}

// Sample implements Dist.
func (s Shifted) Sample(rng *rand.Rand) time.Duration { return s.Offset + s.D.Sample(rng) }

func (s Shifted) String() string { return fmt.Sprintf("%v+%v", s.Offset, s.D) }

// Scaled multiplies another distribution by a factor.
type Scaled struct {
	Factor float64
	D      Dist
}

// Sample implements Dist.
func (s Scaled) Sample(rng *rand.Rand) time.Duration {
	return time.Duration(s.Factor * float64(s.D.Sample(rng)))
}

func (s Scaled) String() string { return fmt.Sprintf("%.2fx(%v)", s.Factor, s.D) }

// Clamped restricts another distribution to [Min, Max] (Max 0 = unbounded).
type Clamped struct {
	Min, Max time.Duration
	D        Dist
}

// Sample implements Dist.
func (c Clamped) Sample(rng *rand.Rand) time.Duration {
	v := c.D.Sample(rng)
	if v < c.Min {
		v = c.Min
	}
	if c.Max > 0 && v > c.Max {
		v = c.Max
	}
	return v
}

func (c Clamped) String() string { return fmt.Sprintf("clamp[%v,%v](%v)", c.Min, c.Max, c.D) }

// Component is one branch of a Mixture.
type Component struct {
	Weight float64
	D      Dist
}

// Mixture samples one of its components with probability proportional to its
// weight. Useful for modeling rare stragglers (e.g., a storage service that
// is fast most of the time with occasional multi-second outliers).
type Mixture struct {
	Components []Component
	total      float64
	// cum[i] is the cumulative weight of Components[0..i], precomputed by
	// NewMixture so Sample selects in O(log k) instead of O(k).
	cum []float64
}

// NewMixture validates and returns a mixture.
func NewMixture(components ...Component) *Mixture {
	if len(components) == 0 {
		panic("dist: empty mixture")
	}
	total := 0.0
	cum := make([]float64, len(components))
	for i, c := range components {
		if c.Weight <= 0 {
			panic("dist: non-positive mixture weight")
		}
		total += c.Weight
		cum[i] = total
	}
	return &Mixture{Components: components, total: total, cum: cum}
}

// Sample implements Dist.
func (m *Mixture) Sample(rng *rand.Rand) time.Duration {
	if m.cum == nil {
		// Mixture built as a literal rather than via NewMixture: fall back
		// to the weight-subtraction scan.
		x := rng.Float64() * m.total
		for _, c := range m.Components {
			if x < c.Weight {
				return c.D.Sample(rng)
			}
			x -= c.Weight
		}
		return m.Components[len(m.Components)-1].D.Sample(rng)
	}
	x := rng.Float64() * m.total
	i := sort.Search(len(m.cum), func(j int) bool { return x < m.cum[j] })
	if i == len(m.cum) {
		i--
	}
	return m.Components[i].D.Sample(rng)
}

func (m *Mixture) String() string {
	s := "mix("
	for i, c := range m.Components {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.3f:%v", c.Weight/m.total, c.D)
	}
	return s + ")"
}

// Sum adds independent samples of several distributions.
type Sum []Dist

// Sample implements Dist.
func (s Sum) Sample(rng *rand.Rand) time.Duration {
	var total time.Duration
	for _, d := range s {
		total += d.Sample(rng)
	}
	return total
}

func (s Sum) String() string {
	out := "sum("
	for i, d := range s {
		if i > 0 {
			out += "+"
		}
		out += d.String()
	}
	return out + ")"
}
