package des

// Signal is a one-shot broadcast event in virtual time. Processes that Wait
// before Fire are resumed at the instant Fire is called; waits after Fire
// return immediately. The zero value is NOT usable; create with NewSignal.
type Signal struct {
	eng     *Engine
	fired   bool
	waiters ring[*Proc]
}

// NewSignal returns an unfired signal bound to the engine.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire wakes all current waiters at the present virtual instant, in the
// order they started waiting. Firing an already fired signal is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for i := 0; i < s.waiters.len(); i++ {
		s.eng.scheduleProc(s.eng.now, s.waiters.at(i))
	}
	s.waiters.clear()
}

// Wait blocks the process until the signal fires.
func (p *Proc) Wait(s *Signal) {
	if s.fired {
		return
	}
	s.waiters.push(p)
	p.park()
}

// remove drops a waiter, reporting whether it was registered. Fire clears
// the waiter list, so a timed-out waiter and a fired signal can never both
// resume the same process.
func (s *Signal) remove(p *Proc) bool {
	return s.waiters.removeFunc(func(cand *Proc) bool { return cand == p })
}

// WaitTimeout blocks until the signal fires or d elapses, reporting true
// when the signal fired. A signal that fires at exactly the deadline wins
// or loses by event order; either way the process resumes exactly once.
// When the signal wins, the timeout timer is canceled and removed from the
// schedule immediately, so churning WaitTimeout calls cannot accumulate
// dead events in the heap.
func (p *Proc) WaitTimeout(s *Signal, d Time) bool {
	if s.fired {
		return true
	}
	timedOut := false
	timer := p.eng.After(d, func() {
		if !s.remove(p) {
			return // the signal fired first at this same instant
		}
		timedOut = true
		p.eng.scheduleProc(p.eng.now, p)
	})
	s.waiters.push(p)
	p.park()
	if timedOut {
		return false
	}
	timer.Cancel()
	return true
}

// Resource is a counted resource (semaphore) with a FIFO wait queue, used to
// model contended servers such as a front-end fleet or a cluster scheduler.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	queue    ring[*Proc]

	// Metrics.
	totalAcquires uint64
	maxQueue      int
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(e *Engine, capacity int) *Resource {
	if capacity < 1 {
		panic("des: resource capacity must be >= 1")
	}
	return &Resource{eng: e, capacity: capacity}
}

// Acquire obtains one unit of the resource, blocking in FIFO order while the
// resource is exhausted.
func (p *Proc) Acquire(r *Resource) {
	r.totalAcquires++
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	r.queue.push(p)
	if r.queue.len() > r.maxQueue {
		r.maxQueue = r.queue.len()
	}
	p.park()
	// Ownership was transferred by Release; inUse already accounts for us.
}

// Release returns one unit. If processes are queued, ownership passes
// directly to the oldest waiter, which is resumed at the current instant.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("des: release of idle resource")
	}
	if r.queue.len() > 0 {
		next := r.queue.popFront()
		r.eng.scheduleProc(r.eng.now, next)
		return // inUse unchanged: unit transferred
	}
	r.inUse--
}

// InUse reports the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of processes waiting.
func (r *Resource) QueueLen() int { return r.queue.len() }

// MaxQueueLen reports the high-water mark of the wait queue.
func (r *Resource) MaxQueueLen() int { return r.maxQueue }

// TotalAcquires reports the number of Acquire calls so far.
func (r *Resource) TotalAcquires() uint64 { return r.totalAcquires }

// Queue is an unbounded FIFO queue of items with blocking receive, used to
// model request buffers in virtual time. Items and waiters both live in
// reusable ring buffers, so a queue that oscillates between empty and its
// high-water mark allocates nothing in steady state.
type Queue[T any] struct {
	eng     *Engine
	items   ring[T]
	waiters ring[*Proc]
	maxLen  int
}

// NewQueue returns an empty queue bound to the engine.
func NewQueue[T any](e *Engine) *Queue[T] { return &Queue[T]{eng: e} }

// Put appends an item and wakes the oldest waiting receiver, if any.
func (q *Queue[T]) Put(item T) {
	q.items.push(item)
	if q.items.len() > q.maxLen {
		q.maxLen = q.items.len()
	}
	if q.waiters.len() > 0 {
		q.eng.scheduleProc(q.eng.now, q.waiters.popFront())
	}
}

// Get removes and returns the oldest item, blocking while the queue is empty.
func (q *Queue[T]) Get(p *Proc) T {
	for q.items.len() == 0 {
		q.waiters.push(p)
		p.park()
	}
	return q.items.popFront()
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	if q.items.len() == 0 {
		var zero T
		return zero, false
	}
	return q.items.popFront(), true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return q.items.len() }

// MaxLen reports the queue's high-water mark.
func (q *Queue[T]) MaxLen() int { return q.maxLen }
