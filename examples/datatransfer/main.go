// Datatransfer: the paper's §VI-C scenario — a producer function passes a
// payload to a consumer, either inline in the invocation request or via the
// provider's storage service. The example sweeps payload sizes on the
// simulated AWS and Google profiles and reports the instrumented transfer
// time plus effective bandwidth, showing storage's tail blow-up (Obs. 4).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/experiments"
	"github.com/stellar-repro/stellar/internal/plot"
)

func main() {
	payloads := []int64{1 << 10, 100 << 10, 1 << 20, 4 << 20}
	providers := []string{"aws", "google"}

	for _, transfer := range []string{"inline", "storage"} {
		fmt.Printf("== %s transfers ==\n", transfer)
		var sweeps []plot.XYSeries
		var cdf1MB []plot.Series
		for _, prov := range providers {
			series := plot.XYSeries{Label: prov}
			for _, payload := range payloads {
				res := runChain(prov, transfer, payload)
				sum := res.Transfers.Summarize()
				series.Points = append(series.Points, plot.XYPoint{
					X: float64(payload), Median: sum.Median, P99: sum.P99,
				})
				if payload == 1<<20 {
					cdf1MB = append(cdf1MB, plot.Series{
						Label: fmt.Sprintf("%s %s 1MB", prov, transfer), Sample: res.Transfers,
					})
					bw := experiments.EffectiveBandwidthMbps(payload, sum.Median)
					fmt.Printf("%s 1MB: median=%v p99=%v tmr=%.1f effective-bw=%.0f Mb/s\n",
						prov, sum.Median.Round(time.Millisecond), sum.P99.Round(time.Millisecond),
						sum.TMR, bw)
				}
			}
			sweeps = append(sweeps, series)
		}
		fmt.Println()
		if err := plot.Sweep(os.Stdout, transfer+" transfer latency vs payload", "payload", sweeps); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := plot.CDF(os.Stdout, transfer+" 1MB transfer CDFs", cdf1MB, 72, 14); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("note how storage transfers trade latency for capacity: no size limit,")
	fmt.Println("higher bandwidth at large payloads, but tails one to two orders of")
	fmt.Println("magnitude above the median (the paper's key finding).")
}

// runChain measures one provider/transport/payload point on a fresh
// simulated cloud with a two-function Go chain, warm instances.
func runChain(provider, transfer string, payload int64) *core.RunResult {
	env, err := experiments.NewEnv(provider, 7)
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	eps, err := env.Deployer().Deploy(&core.StaticConfig{
		Provider: provider,
		Functions: []core.FunctionConfig{{
			Name: "xfer", Runtime: "go1.x", Method: "zip",
			Chain: &core.ChainConfig{Length: 2, Transfer: transfer, PayloadBytes: payload},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := env.Client().Run(eps.Endpoints, core.RuntimeConfig{
		Samples:       400,
		IAT:           core.Duration(3 * time.Second),
		WarmupDiscard: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
