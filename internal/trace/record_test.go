package trace

import (
	"strings"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
)

// stageDur builds tiling span sequences for record tests.
type stageDur struct {
	st  Stage
	d   time.Duration
	att int
}

func buildRec(id uint64, shard int, start time.Duration, parts ...stageDur) RequestRecord {
	r := RequestRecord{ID: id, Shard: shard, Fn: "f", Attempts: 1, StartNS: int64(start)}
	at := int64(start)
	for _, p := range parts {
		r.Spans = append(r.Spans, SpanRecord{
			Stage: p.st.String(), Attempt: p.att, StartNS: at, DurNS: int64(p.d), Detail: p.st.Detail(),
		})
		at += int64(p.d)
		if p.att > r.Attempts {
			r.Attempts = p.att
		}
	}
	r.EndNS = at
	return r
}

func TestValidateAcceptsTilingSpans(t *testing.T) {
	r := buildRec(1, 0, time.Second,
		stageDur{StagePropagation, 5 * time.Millisecond, 0},
		stageDur{StageQueueWait, 20 * time.Millisecond, 1},
		stageDur{StageExec, 100 * time.Millisecond, 1},
		stageDur{StageResponse, 5 * time.Millisecond, 0},
	)
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateAcceptsNestedColdDetail(t *testing.T) {
	r := buildRec(1, 0, time.Second,
		stageDur{StageQueueWait, 200 * time.Millisecond, 1},
		stageDur{StageExec, 100 * time.Millisecond, 1},
	)
	// Cold detail nests inside queue-wait and may even start before the
	// request did (spawn triggered by an earlier request).
	r.Spans = append(r.Spans, SpanRecord{
		Stage: StageColdSandboxBoot.String(), StartNS: int64(900 * time.Millisecond),
		DurNS: int64(250 * time.Millisecond), Detail: true,
	})
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil for nested cold detail", err)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() RequestRecord {
		return buildRec(7, 0, 0,
			stageDur{StageFrontend, time.Millisecond, 0},
			stageDur{StageExec, 2 * time.Millisecond, 1},
		)
	}
	cases := []struct {
		name    string
		mutate  func(*RequestRecord)
		wantSub string
	}{
		{"end before start", func(r *RequestRecord) { r.EndNS = r.StartNS - 1 }, "before start"},
		{"unknown stage", func(r *RequestRecord) { r.Spans[0].Stage = "warp-drive" }, "unknown stage"},
		{"detail flag mismatch", func(r *RequestRecord) { r.Spans[0].Detail = true }, "detail flag mismatch"},
		{"zero duration", func(r *RequestRecord) { r.Spans[0].DurNS = 0 }, "non-positive duration"},
		{"overlapping spans", func(r *RequestRecord) { r.Spans[1].StartNS-- }, "must tile"},
		{"span outside window", func(r *RequestRecord) { r.Spans[1].DurNS += 5 }, "outside request window"},
		{"sum mismatch", func(r *RequestRecord) { r.EndNS += 5 }, "spans sum"},
		{"cold detail outlives request", func(r *RequestRecord) {
			r.Spans = append(r.Spans, SpanRecord{
				Stage: StageColdSandboxBoot.String(), StartNS: r.EndNS - 1, DurNS: 10, Detail: true,
			})
		}, "outlives"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := base()
			tc.mutate(&r)
			err := r.Validate()
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestColdSpansLayout(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 1}, 1)
	r := tr.Begin(1, "fn", 0)
	r.Attempt(1)
	end := des.Time(500 * time.Millisecond)
	r.ColdSpans(end,
		Phase{StageColdPlacement, 10 * time.Millisecond},
		Phase{StageColdImageFetch, 0}, // zero phases are skipped
		Phase{StageColdSandboxBoot, 90 * time.Millisecond},
	)
	if len(r.spans) != 2 {
		t.Fatalf("recorded %d cold spans, want 2 (zero phase skipped)", len(r.spans))
	}
	if got := r.spans[0]; got.Stage != StageColdPlacement || got.Start != end-des.Time(100*time.Millisecond) {
		t.Fatalf("first cold span = %+v, want placement starting 100ms before end", got)
	}
	if got := r.spans[1]; got.Stage != StageColdSandboxBoot || got.Start+des.Time(got.Dur) != end {
		t.Fatalf("last cold span = %+v, want sandbox-boot ending at %v", got, end)
	}
}

func TestRecordConversion(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 1}, 1)
	start := des.Time(time.Second)
	r := tr.Begin(41, "hello-py", start)
	r.Mark(StageFrontend, 2*time.Millisecond, start+des.Time(2*time.Millisecond))
	r.Attempt(1)
	r.SetCold(true)
	r.Mark(StageExec, 8*time.Millisecond, start+des.Time(10*time.Millisecond))
	r.Attempt(0)
	tr.End(r, start+des.Time(10*time.Millisecond), nil)

	recs := tr.Drain()
	if len(recs) != 1 {
		t.Fatalf("drained %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.ID != 41 || rec.Fn != "hello-py" || !rec.Cold || rec.Slow {
		t.Fatalf("record header = %+v", rec)
	}
	if rec.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1", rec.Attempts)
	}
	if rec.Total() != 10*time.Millisecond {
		t.Fatalf("Total() = %v, want 10ms", rec.Total())
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("converted record invalid: %v", err)
	}
	if rec.Spans[0].Stage != "frontend" || rec.Spans[0].Attempt != 0 {
		t.Fatalf("span 0 = %+v", rec.Spans[0])
	}
	if rec.Spans[1].Stage != "exec" || rec.Spans[1].Attempt != 1 {
		t.Fatalf("span 1 = %+v", rec.Spans[1])
	}
}

func TestDrainSortedByStartThenID(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 1}, 1)
	// Insert out of start order.
	for _, id := range []uint64{3, 1, 2} {
		runReq(tr, id, des.Time(id)*des.Time(time.Second), time.Millisecond)
	}
	recs := tr.Drain()
	for i := 1; i < len(recs); i++ {
		if recs[i-1].StartNS > recs[i].StartNS {
			t.Fatalf("drain not sorted by start: %+v", recs)
		}
	}
}

func TestStageNamesRoundTrip(t *testing.T) {
	for s := Stage(0); s < numStages; s++ {
		name := s.String()
		if strings.HasPrefix(name, "stage(") {
			t.Fatalf("stage %d has no name", s)
		}
		if got, ok := stageByName[name]; !ok || got != s {
			t.Fatalf("stageByName[%q] = %v, %v; want %v", name, got, ok, s)
		}
		if want := strings.HasPrefix(name, "cold/"); s.Detail() != want {
			t.Fatalf("stage %q Detail() = %v, want %v", name, s.Detail(), want)
		}
	}
	if Stage(200).String() != "stage(200)" {
		t.Fatalf("out-of-range stage String() = %q", Stage(200).String())
	}
}
