// Package des implements a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock over an indexed 4-ary min-heap of
// scheduled events stored by value and keyed by (at, seq): events at equal
// times are tie-broken by scheduling sequence number, so every run with the
// same inputs produces the same event ordering. Concurrent activities are
// modeled as cooperative processes: each process is a goroutine, but a
// single control token guarantees that at most one process (or event
// callback) runs at any instant, so state shared between processes needs no
// locking.
//
// The scheduling core is built for throughput and is allocation-free in
// steady state:
//
//   - Events are values in a reusable heap array — no per-event heap
//     allocation. Process-resume events carry the *Proc directly instead of
//     a closure, so Sleep/Wait/Acquire wake-ups allocate nothing.
//   - Cancelable timers (At/After) draw a generation-counted handle from a
//     free list. The handle tracks the event's heap index, so Cancel removes
//     the event from the heap immediately (sift at its index) instead of
//     leaving a tombstone to be popped later; a Timer from a previous
//     generation can never cancel a reused handle.
//   - The control token travels with the goroutines themselves: a parking
//     process drives the dispatch loop inline, so a process that pops its
//     own resume event (the ubiquitous Sleep path) switches with zero
//     channel operations, and a process handing off to another process costs
//     one. The engine's Run goroutine regains the token only when the run
//     terminates or a process exits.
//   - Spawn recycles process records, wake channels, and parked goroutines
//     through a pool, so the cloud model's process-per-request pattern does
//     not start a goroutine per request.
//
// The engine also supports a real-time mode in which virtual delays are
// slept on the wall clock (optionally scaled) and external goroutines may
// inject work with Engine.Inject; this mode backs the live-HTTP serving of
// the simulated cloud. In real-time mode processes never dispatch inline:
// the token always returns to the run loop, which owns wall-clock pacing.
package des

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Time is a virtual timestamp, measured as a duration since the start of the
// simulation. Using time.Duration gives nanosecond resolution and convenient
// formatting.
type Time = time.Duration

// event is a scheduled occurrence, stored by value in the heap array.
// Exactly one of fn and proc is set: fn events invoke a callback, proc
// events transfer control to a parked process.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc
	// hid is the timer-handle slot tracking this event's heap index, or -1
	// for events that can never be canceled (process resumes, injected work).
	hid int32
}

// timerHandle is one slot of the engine's cancelable-timer table. Slots are
// recycled through a free list; gen increments on every fire/cancel so stale
// Timer copies referring to a recycled slot are inert. Heap timers and
// slack-wheel timers (wheel.go) share this table, so a Timer value is the
// same opaque handle either way: wheel marks which structure idx indexes.
type timerHandle struct {
	gen   uint32
	idx   int32 // heap index or wheel node index of the live event, -1 when fired/canceled
	wheel bool  // idx indexes the timer wheel's node array, not the heap
}

// Timer is a handle to a scheduled callback that can be canceled. The zero
// Timer is valid and inert: Cancel reports false, Pending reports false.
type Timer struct {
	eng *Engine
	id  int32
	gen uint32
}

// Cancel prevents the timer's callback from firing, removing the event from
// the schedule immediately. Canceling an already fired, canceled, or zero
// Timer is a no-op. Cancel reports whether the callback was prevented.
func (t Timer) Cancel() bool {
	e := t.eng
	if e == nil {
		return false
	}
	h := &e.handles[t.id]
	if h.gen != t.gen || h.idx < 0 {
		return false
	}
	if h.wheel {
		e.wheel.unlink(h.idx)
		h.wheel = false
	} else {
		e.removeAt(int(h.idx))
	}
	h.idx = -1
	h.gen++
	e.freeHandles = append(e.freeHandles, t.id)
	return true
}

// Pending reports whether the timer's callback is still scheduled.
func (t Timer) Pending() bool {
	if t.eng == nil {
		return false
	}
	h := &t.eng.handles[t.id]
	return h.gen == t.gen && h.idx >= 0
}

// Engine is a discrete-event simulation engine. The zero value is not usable;
// call NewEngine.
type Engine struct {
	now    Time
	events []event // 4-ary min-heap by (at, seq), indexed via handles
	seq    uint64
	until  Time // horizon of the active Run, 0 = unbounded

	handles     []timerHandle
	freeHandles []int32

	// wheel is the optional coarse-slack timer facility (wheel.go), nil
	// unless SetTimerSlack installed one. It shares the handle table above.
	wheel *wheel

	// next is a one-event front cache: when a virtual-time event schedules
	// its successor and that successor precedes everything in the heap, it
	// parks here and the dispatch loop takes it back without any heap
	// traffic. Straight-line event chains — a callback-form warm invocation,
	// a process sleeping through consecutive pipeline stages — are exactly
	// this pattern, so the cache removes a push/sift/pop/sift round per
	// chain hop. Invariant: when hasNext is set, next precedes every heap
	// event in (at, seq) order. Only uncancelable events are cached (timer
	// handles track heap indices); real-time mode bypasses the cache
	// because its run loop peeks the heap root for wall pacing.
	next    event
	hasNext bool

	// mainWake returns the control token to the run loop (Run, RunRealTime,
	// or Close) when a process exits, is killed, or parks at the horizon.
	mainWake chan struct{}

	procs   map[*Proc]struct{}
	pool    []*Proc // exited process records with parked goroutines
	stopped bool

	// Real-time mode.
	realTime      bool
	timeScale     float64 // virtual seconds per wall second multiplier (1 = real time)
	injectMu      sync.Mutex
	injected      []func()
	injectCh      chan struct{} // signaled when something is injected
	injectPending atomic.Bool   // fast-path check before taking injectMu
	started       time.Time
}

// NewEngine returns an engine with the virtual clock at zero.
func NewEngine() *Engine {
	return &Engine{
		mainWake: make(chan struct{}),
		procs:    make(map[*Proc]struct{}),
		injectCh: make(chan struct{}, 1),
	}
}

// NewRealTimeEngine returns an engine that, when run, paces event delivery on
// the wall clock. timeScale compresses virtual time: with timeScale 10, ten
// virtual seconds elapse per wall-clock second. A time scale that is NaN,
// infinite, or <= 0 panics (callers with user-supplied scales validate
// first, e.g. httpfaas.NewServer).
func NewRealTimeEngine(timeScale float64) *Engine {
	if math.IsNaN(timeScale) || math.IsInf(timeScale, 0) || timeScale <= 0 {
		panic(fmt.Sprintf("des: invalid time scale %v", timeScale))
	}
	e := NewEngine()
	e.realTime = true
	e.timeScale = timeScale
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// --- 4-ary indexed heap -----------------------------------------------------
//
// The heap stores events by value; children of slot i live at 4i+1..4i+4.
// A 4-ary layout halves tree depth versus binary, trading slightly wider
// sibling scans (cache-friendly: four 40-byte events span two or three cache
// lines) for fewer swap levels. Every move of an event with a handle updates
// the handle's idx, which is what makes O(log n) removal at Cancel possible.

// less orders events by (at, seq).
func (e *Engine) less(i, j int) bool {
	a, b := &e.events[i], &e.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// noteIdx records ev's current heap slot in its timer handle, if any.
func (e *Engine) noteIdx(i int) {
	if h := e.events[i].hid; h >= 0 {
		e.handles[h].idx = int32(i)
	}
}

// siftUp moves the event at slot i toward the root until ordered.
func (e *Engine) siftUp(i int) {
	ev := e.events[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := &e.events[parent]
		if p.at < ev.at || (p.at == ev.at && p.seq < ev.seq) {
			break
		}
		e.events[i] = *p
		e.noteIdx(i)
		i = parent
	}
	e.events[i] = ev
	e.noteIdx(i)
}

// siftDown moves the event at slot i toward the leaves until ordered.
func (e *Engine) siftDown(i int) {
	n := len(e.events)
	ev := e.events[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(c, min) {
				min = c
			}
		}
		m := &e.events[min]
		if ev.at < m.at || (ev.at == m.at && ev.seq < m.seq) {
			break
		}
		e.events[i] = *m
		e.noteIdx(i)
		i = min
	}
	e.events[i] = ev
	e.noteIdx(i)
}

// push appends an event and restores heap order.
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	e.siftUp(len(e.events) - 1)
}

// pop removes and returns the minimum event. The vacated tail slot is
// cleared so recycled array capacity does not retain closures or processes.
func (e *Engine) pop() event {
	ev := e.events[0]
	n := len(e.events) - 1
	if n > 0 {
		e.events[0] = e.events[n]
	}
	e.events[n] = event{}
	e.events = e.events[:n]
	if n > 1 {
		e.siftDown(0)
	} else if n == 1 {
		e.noteIdx(0)
	}
	if ev.hid >= 0 {
		h := &e.handles[ev.hid]
		h.idx = -1
		h.gen++
		e.freeHandles = append(e.freeHandles, ev.hid)
	}
	return ev
}

// removeAt deletes the event at heap slot i (timer cancellation), restoring
// heap order with a sift from that index.
func (e *Engine) removeAt(i int) {
	n := len(e.events) - 1
	moved := e.events[n]
	e.events[n] = event{}
	e.events = e.events[:n]
	if i == n {
		return
	}
	e.events[i] = moved
	e.siftUp(i)
	// seq is unique: if siftUp left the filler in place, order below i may
	// still be violated, so sift down from the same slot.
	if e.events[i].seq == moved.seq {
		e.siftDown(i)
	}
}

// --- scheduling -------------------------------------------------------------

// eventBefore orders two events by (at, seq).
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// enqueue places a freshly sequenced event into the schedule: the front
// cache when it precedes everything pending, the heap otherwise. Cancelable
// timers always live in the heap (their handles track heap indices), which
// may require evicting a cached event that no longer holds the minimum.
func (e *Engine) enqueue(ev event) {
	if e.realTime || ev.hid >= 0 {
		if e.hasNext && eventBefore(&ev, &e.next) {
			e.push(e.next)
			e.next = event{}
			e.hasNext = false
		}
		e.push(ev)
		return
	}
	if !e.hasNext {
		if len(e.events) == 0 || eventBefore(&ev, &e.events[0]) {
			e.next, e.hasNext = ev, true
		} else {
			e.push(ev)
		}
		return
	}
	if eventBefore(&ev, &e.next) {
		e.push(e.next)
		e.next = ev
	} else {
		e.push(ev)
	}
}

// popNext removes and returns the minimum pending event: the front cache
// when occupied (the invariant makes it the minimum), else the heap root.
func (e *Engine) popNext() event {
	if e.hasNext {
		ev := e.next
		e.next = event{}
		e.hasNext = false
		return ev
	}
	return e.pop()
}

// schedule registers fn to run at time at (>= now).
func (e *Engine) schedule(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.enqueue(event{at: at, seq: e.seq, fn: fn, hid: -1})
}

// scheduleProc registers a process resume at time at (>= now). This is the
// allocation-free hot path behind Sleep, Signal.Fire, and Resource.Release.
func (e *Engine) scheduleProc(at Time, p *Proc) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.enqueue(event{at: at, seq: e.seq, proc: p, hid: -1})
}

// scheduleTimer registers a cancelable callback, drawing a handle slot from
// the free list (growing the table only on first use at each depth).
func (e *Engine) scheduleTimer(at Time, fn func()) Timer {
	if at < e.now {
		at = e.now
	}
	var id int32
	if n := len(e.freeHandles); n > 0 {
		id = e.freeHandles[n-1]
		e.freeHandles = e.freeHandles[:n-1]
	} else {
		id = int32(len(e.handles))
		e.handles = append(e.handles, timerHandle{})
	}
	e.seq++
	e.enqueue(event{at: at, seq: e.seq, fn: fn, hid: id})
	// enqueue placed the timer in the heap and recorded its index via noteIdx.
	return Timer{eng: e, id: id, gen: e.handles[id].gen}
}

// At schedules fn to run at the given virtual time and returns a cancelable
// Timer. Must be called from simulation context (a process or event callback).
func (e *Engine) At(at Time, fn func()) Timer {
	return e.scheduleTimer(at, fn)
}

// After schedules fn to run d from now.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	return e.scheduleTimer(e.now+d, fn)
}

// Call schedules fn to run at the current virtual instant, after events
// already scheduled for this instant. It is the uncancelable, zero-
// bookkeeping counterpart of After(0, fn): no timer handle is drawn, and a
// reused fn value (a stored method value or pre-built closure) makes the
// call allocation-free. Callback events share the engine's sequence counter
// with process resumes, so a callback chain and a process performing the
// same schedule drain in the identical order, including at timestamp ties.
// Must be called from simulation context.
func (e *Engine) Call(fn func()) { e.schedule(e.now, fn) }

// CallAt schedules fn as an uncancelable callback at the given virtual
// time (clamped to now). See Call for the ordering and allocation contract.
func (e *Engine) CallAt(at Time, fn func()) { e.schedule(at, fn) }

// CallAfter schedules fn as an uncancelable callback d from now. Negative
// durations are treated as zero. See Call for the ordering and allocation
// contract; this is the primitive behind the callback-form warm-invoke
// fast path, where each pipeline stage schedules its successor.
func (e *Engine) CallAfter(d time.Duration, fn func()) { e.schedule(e.now+d, fn) }

// errKilled is the sentinel used to unwind killed processes.
var errKilled = errors.New("des: process killed")

// atHorizon reports whether dispatch must stop: no events remain, or the
// next event lies beyond the active run's bound. The front cache, when
// occupied, holds the minimum pending event, so it alone decides.
func (e *Engine) atHorizon() bool {
	if e.hasNext {
		return e.until != 0 && e.next.at > e.until
	}
	return len(e.events) == 0 || (e.until != 0 && e.events[0].at > e.until)
}

// Run drains events until the heap is empty or the virtual clock would pass
// until. A zero until means run until no events remain. Processes blocked on
// resources or signals when Run returns remain parked; use Close to release
// them.
//
// The calling goroutine holds the control token between events, but hands it
// to processes it resumes; a process chain dispatches events among itself
// and returns the token here only when the horizon is reached or a process
// exits.
func (e *Engine) Run(until Time) {
	e.until = until
	for !e.atHorizon() {
		ev := e.popNext()
		if e.realTime {
			e.waitWall(ev.at)
			e.drainInjected()
		}
		e.now = ev.at
		if ev.proc != nil {
			ev.proc.wake <- struct{}{}
			<-e.mainWake
			continue
		}
		ev.fn()
	}
	if until != 0 && until > e.now {
		e.now = until
	}
	e.until = 0
}

// dispatchFrom drives the event loop from a parking process p until p's own
// resume event surfaces (return true: p regains control with zero channel
// operations) or the token leaves this goroutine (return false: p must wait
// on its wake channel). Virtual-time mode only.
func (e *Engine) dispatchFrom(p *Proc) bool {
	for {
		if e.atHorizon() {
			e.mainWake <- struct{}{}
			return false
		}
		ev := e.popNext()
		e.now = ev.at
		if ev.proc == nil {
			ev.fn()
			continue
		}
		if ev.proc == p {
			return true
		}
		ev.proc.wake <- struct{}{}
		return false
	}
}

// dispatchOnExit hands the token onward when a process finishes: it keeps
// firing callback events, transfers to the next resumed process, or returns
// the token to Run at the horizon. A callback it fires may Spawn and reuse
// the exiting record, and the loop could then pop that record's fresh
// first-resume on its own goroutine. Sending to the own wake channel would
// deadlock, so dispatchOnExit reports true instead and the goroutine starts
// the new assignment directly.
func (e *Engine) dispatchOnExit(exited *Proc) bool {
	for {
		if e.atHorizon() {
			e.mainWake <- struct{}{}
			return false
		}
		ev := e.popNext()
		e.now = ev.at
		if ev.proc == nil {
			ev.fn()
			continue
		}
		if ev.proc == exited {
			return true
		}
		ev.proc.wake <- struct{}{}
		return false
	}
}

// RunRealTime services events forever in real-time mode, blocking the calling
// goroutine. It returns when stop is closed. Injected work (via Inject) wakes
// the loop immediately.
func (e *Engine) RunRealTime(stop <-chan struct{}) {
	if !e.realTime {
		panic("des: RunRealTime on a virtual-time engine")
	}
	e.started = time.Now()
	for {
		select {
		case <-stop:
			return
		default:
		}
		e.syncVirtualClock()
		e.drainInjected()
		if len(e.events) == 0 {
			// Idle: wait for injection or stop.
			select {
			case <-stop:
				return
			case <-e.injectCh:
				continue
			}
		}
		next := e.events[0]
		if !e.sleepUntil(next.at, stop) {
			return
		}
		e.syncVirtualClock()
		e.drainInjected()
		if len(e.events) == 0 || e.events[0].seq != next.seq {
			continue // an injection scheduled something earlier
		}
		ev := e.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		if ev.proc != nil {
			ev.proc.wake <- struct{}{}
			<-e.mainWake
			continue
		}
		ev.fn()
	}
}

// syncVirtualClock advances the virtual clock to the wall-clock-equivalent
// instant in real-time mode, so work injected after an idle period is
// scheduled relative to "now" rather than to the last fired event. The
// clock never moves backwards.
func (e *Engine) syncVirtualClock() {
	if !e.realTime || e.started.IsZero() {
		return
	}
	v := Time(float64(time.Since(e.started)) * e.timeScale)
	if v > e.now {
		e.now = v
	}
}

// sleepUntil waits on the wall clock until virtual time at is due. It returns
// false if stop fired, true otherwise (including when an injection arrived,
// in which case the caller re-evaluates the heap). To keep pacing error from
// being amplified by the time scale, the final stretch before the deadline
// is spin-waited: OS timers overshoot by around a millisecond, which a 10x
// time scale would turn into 10ms of virtual error per event.
//
// The spin window shrinks as the time scale grows. At high compression the
// virtual-time error from timer overshoot dwarfs what spinning can recover
// (at 1000x even a perfectly timed wake-up is ~100 virtual milliseconds
// coarse), while a fixed 2ms of busy-waiting per far-future event starves
// the serve path of CPU — at scale the engine fires thousands of lifecycle
// events per second, each of which would otherwise spin.
func (e *Engine) sleepUntil(at Time, stop <-chan struct{}) bool {
	const spinWindow = 2 * time.Millisecond
	const minSpinWindow = 100 * time.Microsecond
	spin := spinWindow
	if e.timeScale > 1 {
		spin = time.Duration(float64(spinWindow) / e.timeScale)
		if spin < minSpinWindow {
			spin = minSpinWindow
		}
	}
	wall := e.wallDeadline(at)
	if d := time.Until(wall) - spin; d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-stop:
			return false
		case <-e.injectCh:
			return true
		case <-t.C:
		}
	}
	for time.Now().Before(wall) {
		select {
		case <-stop:
			return false
		case <-e.injectCh:
			return true
		default:
			runtime.Gosched()
		}
	}
	return true
}

func (e *Engine) wallDeadline(at Time) time.Time {
	return e.started.Add(time.Duration(float64(at) / e.timeScale))
}

// waitWall is used by Run in real-time mode (tests); it busy-sleeps to the
// wall deadline without injection wake-ups.
func (e *Engine) waitWall(at Time) {
	if e.started.IsZero() {
		e.started = time.Now()
	}
	if d := time.Until(e.wallDeadline(at)); d > 0 {
		time.Sleep(d)
	}
}

// Inject schedules fn to run inside the simulation as soon as possible. It is
// the only Engine method safe to call from outside simulation context and is
// intended for real-time mode (e.g., an HTTP handler submitting a request).
func (e *Engine) Inject(fn func()) {
	e.injectMu.Lock()
	e.injected = append(e.injected, fn)
	e.injectMu.Unlock()
	e.injectPending.Store(true)
	select {
	case e.injectCh <- struct{}{}:
	default:
	}
}

func (e *Engine) drainInjected() {
	// The run loop calls this on every event; skip the mutex when nothing
	// arrived. An Inject racing the Swap is not lost: its append
	// happens-before its Store, so either this drain's critical section
	// sees the item or the flag stays set for the next pass.
	if !e.injectPending.Swap(false) {
		return
	}
	e.injectMu.Lock()
	pending := e.injected
	e.injected = nil
	e.injectMu.Unlock()
	for _, fn := range pending {
		// Schedule at the current instant; runs in heap order.
		e.schedule(e.now, fn)
	}
}

// Close kills all live processes and releases the pooled goroutines. The
// engine must not be used afterwards.
func (e *Engine) Close() {
	e.stopped = true
	for p := range e.procs {
		p.kill()
	}
	for _, p := range e.pool {
		p.fn = nil
		p.wake <- struct{}{} // pooled runner sees nil fn and exits
	}
	e.pool = nil
	e.events = nil
	e.next = event{}
	e.hasNext = false
	e.handles = nil
	e.freeHandles = nil
	e.wheel = nil
}

// PendingEvents reports the number of scheduled events (including the
// front-cached one and any timers parked on the slack wheel). Canceled
// timers are removed from the schedule immediately, so this count stays
// bounded under timer churn (WaitTimeout cancel/fire cycles).
func (e *Engine) PendingEvents() int {
	n := len(e.events)
	if e.hasNext {
		n++
	}
	if e.wheel != nil {
		n += e.wheel.count
	}
	return n
}
