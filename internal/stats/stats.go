// Package stats implements the latency statistics used throughout the
// reproduction: exact percentiles, empirical CDFs, and the paper's
// tail-to-median (TMR) and median/tail-to-base-median (MR/TR) metrics.
package stats

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"time"
)

// Sample is a collection of duration observations. The zero value is ready
// to use. Sample is not safe for concurrent mutation.
type Sample struct {
	values []time.Duration
	sorted bool
}

// NewSample returns a sample pre-sized for n observations.
func NewSample(n int) *Sample { return &Sample{values: make([]time.Duration, 0, n)} }

// FromDurations wraps the given observations (the slice is copied).
func FromDurations(values []time.Duration) *Sample {
	s := NewSample(len(values))
	s.values = append(s.values, values...)
	return s
}

// Add records one observation.
func (s *Sample) Add(v time.Duration) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddAll records many observations. The backing array is grown to the final
// size in one step, so bulk-loading a large run does not reallocate per
// append doubling.
func (s *Sample) AddAll(vs []time.Duration) {
	s.values = slices.Grow(s.values, len(vs))
	s.values = append(s.values, vs...)
	s.sorted = false
}

// AddN records n copies of an observation (Recorder conformance: the exact
// counterpart of a sketch bucket increment, O(n) by nature).
func (s *Sample) AddN(v time.Duration, n uint64) {
	if n == 0 {
		return
	}
	s.values = slices.Grow(s.values, int(n))
	for ; n > 0; n-- {
		s.values = append(s.values, v)
	}
	s.sorted = false
}

// Len reports the number of observations.
func (s *Sample) Len() int { return len(s.values) }

// Count reports the number of observations as the Recorder seam's unsigned
// count.
func (s *Sample) Count() uint64 { return uint64(len(s.values)) }

// Values returns the observations sorted ascending. The returned slice is
// owned by the sample; callers must not modify it.
func (s *Sample) Values() []time.Duration {
	s.ensureSorted()
	return s.values
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		// slices.Sort sorts in place without the closure and interface
		// boxing of sort.Slice, so repeated percentile queries after the
		// first sort are allocation-free.
		slices.Sort(s.values)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It panics on an empty sample.
func (s *Sample) Percentile(p float64) time.Duration {
	if len(s.values) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	s.ensureSorted()
	if len(s.values) == 1 {
		return s.values[0]
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo] + time.Duration(frac*float64(s.values[hi]-s.values[lo]))
}

// Quantile returns the q-th quantile (0 <= q <= 1) — the Recorder-seam
// spelling of Percentile.
func (s *Sample) Quantile(q float64) time.Duration { return s.Percentile(q * 100) }

// Median returns the 50th percentile.
func (s *Sample) Median() time.Duration { return s.Percentile(50) }

// P99 returns the 99th percentile — the paper's "tail latency".
func (s *Sample) P99() time.Duration { return s.Percentile(99) }

// Min returns the smallest observation.
func (s *Sample) Min() time.Duration {
	s.ensureSorted()
	return s.values[0]
}

// Max returns the largest observation.
func (s *Sample) Max() time.Duration {
	s.ensureSorted()
	return s.values[len(s.values)-1]
}

// Mean returns the arithmetic mean.
func (s *Sample) Mean() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	var total float64
	for _, v := range s.values {
		total += float64(v)
	}
	return time.Duration(total / float64(len(s.values)))
}

// TMR returns the tail-to-median ratio (p99 / median), the paper's
// predictability metric (§V). TMR above 10 is considered problematic.
func (s *Sample) TMR() float64 {
	m := s.Median()
	if m == 0 {
		return math.Inf(1)
	}
	return float64(s.P99()) / float64(m)
}

// Summary captures the headline metrics of a sample.
type Summary struct {
	Count  int
	Min    time.Duration
	Median time.Duration
	P95    time.Duration
	P99    time.Duration
	Max    time.Duration
	Mean   time.Duration
	TMR    float64
}

// Summarize computes a Summary.
func (s *Sample) Summarize() Summary {
	return Summary{
		Count:  s.Len(),
		Min:    s.Min(),
		Median: s.Median(),
		P95:    s.Percentile(95),
		P99:    s.P99(),
		Max:    s.Max(),
		Mean:   s.Mean(),
		TMR:    s.TMR(),
	}
}

// String renders the summary in a single line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d median=%v p95=%v p99=%v max=%v tmr=%.1f",
		s.Count, s.Median.Round(time.Millisecond), s.P95.Round(time.Millisecond),
		s.P99.Round(time.Millisecond), s.Max.Round(time.Millisecond), s.TMR)
}

// MR returns the paper's median-to-base-median ratio: this sample's median
// normalized to the base (warm-invocation) median (Table I).
func (s *Sample) MR(baseMedian time.Duration) float64 {
	if baseMedian == 0 {
		return math.Inf(1)
	}
	return float64(s.Median()) / float64(baseMedian)
}

// TR returns the paper's tail-to-base-median ratio: this sample's p99
// normalized to the base (warm-invocation) median (Table I).
func (s *Sample) TR(baseMedian time.Duration) float64 {
	if baseMedian == 0 {
		return math.Inf(1)
	}
	return float64(s.P99()) / float64(baseMedian)
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value time.Duration
	Frac  float64 // fraction of observations <= Value, in (0, 1]
}

// CDF returns the empirical cumulative distribution function as a sequence of
// points with strictly increasing values and non-decreasing fractions.
func (s *Sample) CDF() []CDFPoint {
	s.ensureSorted()
	n := len(s.values)
	points := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		// Collapse duplicates onto the highest fraction.
		if i+1 < n && s.values[i+1] == s.values[i] {
			continue
		}
		points = append(points, CDFPoint{Value: s.values[i], Frac: float64(i+1) / float64(n)})
	}
	return points
}

// FracBelow returns the fraction of observations <= v (0 for an empty
// sample, checked before paying for the sort and the search).
func (s *Sample) FracBelow(v time.Duration) float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	idx := sort.Search(len(s.values), func(i int) bool { return s.values[i] > v })
	return float64(idx) / float64(len(s.values))
}

// Sub returns a new sample with d subtracted from every observation (used to
// remove propagation delays or fixed execution time, clamped at zero).
func (s *Sample) Sub(d time.Duration) *Sample {
	out := NewSample(s.Len())
	for _, v := range s.values {
		w := v - d
		if w < 0 {
			w = 0
		}
		out.Add(w)
	}
	return out
}
