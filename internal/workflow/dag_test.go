package workflow

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func chainDAG(n int) *DAG {
	d, err := Preset("chain-"+strconv.Itoa(n), PresetSpec{})
	if err != nil {
		panic(err)
	}
	return d
}

func TestDAGValidateRejections(t *testing.T) {
	node := func(name string) Node { return Node{Name: name} }
	cases := []struct {
		name string
		d    *DAG
		want string
	}{
		{"no nodes", &DAG{Name: "x"}, "no nodes"},
		{"unnamed node", &DAG{Nodes: []Node{{}}}, "no name"},
		{"duplicate node", &DAG{Nodes: []Node{node("a"), node("a")}}, "duplicate node"},
		{"negative need", &DAG{Nodes: []Node{{Name: "a", Need: -1}}}, "negative join need"},
		{"negative select", &DAG{Nodes: []Node{{Name: "a", Select: -2}}}, "negative branch select"},
		{"negative exec", &DAG{Nodes: []Node{{Name: "a", ExecTime: -time.Second}}}, "negative exec time"},
		{"unknown from", &DAG{Nodes: []Node{node("a")}, Edges: []Edge{{From: "z", To: "a"}}}, "from unknown node"},
		{"unknown to", &DAG{Nodes: []Node{node("a")}, Edges: []Edge{{From: "a", To: "z"}}}, "to unknown node"},
		{"self loop", &DAG{Nodes: []Node{node("a")}, Edges: []Edge{{From: "a", To: "a"}}}, "self-loop"},
		{"duplicate edge", &DAG{
			Nodes: []Node{node("a"), node("b")},
			Edges: []Edge{{From: "a", To: "b"}, {From: "a", To: "b"}},
		}, "duplicate edge"},
		{"invalid mode", &DAG{
			Nodes: []Node{node("a"), node("b")},
			Edges: []Edge{{From: "a", To: "b", Mode: Mode(9)}},
		}, "invalid mode"},
		{"invalid transfer", &DAG{
			Nodes: []Node{node("a"), node("b")},
			Edges: []Edge{{From: "a", To: "b", Transfer: Transfer(9)}},
		}, "invalid transfer"},
		{"negative payload", &DAG{
			Nodes: []Node{node("a"), node("b")},
			Edges: []Edge{{From: "a", To: "b", PayloadBytes: -1}},
		}, "negative payload"},
		{"multiple roots", &DAG{Nodes: []Node{node("a"), node("b")}}, "multiple roots"},
		{"two-node cycle", &DAG{
			Nodes: []Node{node("a"), node("b"), node("c")},
			Edges: []Edge{{From: "a", To: "b"}, {From: "b", To: "c"}, {From: "c", To: "b"}},
		}, "cyclic or unreachable"},
		{"all-cycle no root", &DAG{
			Nodes: []Node{node("a"), node("b")},
			Edges: []Edge{{From: "a", To: "b"}, {From: "b", To: "a"}},
		}, "no root"},
		{"need over indegree", &DAG{
			Nodes: []Node{node("a"), {Name: "b", Need: 2}},
			Edges: []Edge{{From: "a", To: "b"}},
		}, "exceeds in-degree"},
		{"select over outdegree", &DAG{
			Nodes: []Node{{Name: "a", Select: 2}, node("b")},
			Edges: []Edge{{From: "a", To: "b"}},
		}, "exceeds out-degree"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.d.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDAGValidateBounds(t *testing.T) {
	big := &DAG{Name: "big"}
	for i := 0; i <= MaxNodes; i++ {
		big.Nodes = append(big.Nodes, Node{Name: "n" + strconv.Itoa(i)})
		if i > 0 {
			big.Edges = append(big.Edges, Edge{From: "n" + strconv.Itoa(i-1), To: "n" + strconv.Itoa(i)})
		}
	}
	if err := big.Validate(); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized DAG: %v", err)
	}

	deep := chainDAG(maxSyncDepth + 1)
	if err := deep.Validate(); err == nil || !strings.Contains(err.Error(), "chain-depth bound") {
		t.Fatalf("over-deep DAG: %v", err)
	}
	if err := chainDAG(maxSyncDepth).Validate(); err != nil {
		t.Fatalf("depth-%d chain should validate: %v", maxSyncDepth, err)
	}
}

func TestDAGCompileShape(t *testing.T) {
	d, err := Preset("mapreduce", PresetSpec{Need: 3})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := compile(d)
	if err != nil {
		t.Fatal(err)
	}
	if d.Nodes[cp.root].Name != "src" {
		t.Errorf("root = %q, want src", d.Nodes[cp.root].Name)
	}
	if len(cp.topo) != len(d.Nodes) {
		t.Errorf("topo covers %d of %d nodes", len(cp.topo), len(d.Nodes))
	}
	if cp.depth != 4 {
		t.Errorf("depth = %d, want 4", cp.depth)
	}
	// Topological order: every edge's producer precedes its consumer.
	pos := make(map[int]int, len(cp.topo))
	for i, n := range cp.topo {
		pos[n] = i
	}
	for _, e := range d.Edges {
		if pos[cp.idx[e.From]] >= pos[cp.idx[e.To]] {
			t.Errorf("edge %s not topologically ordered", e.Label())
		}
	}
	// Resolved needs: reducers fire on the 3rd of 4 mappers, the sink on
	// both reducers (join() caps Need at in-degree).
	for _, name := range []string{"r1", "r2"} {
		if got := cp.need[cp.idx[name]]; got != 3 {
			t.Errorf("need[%s] = %d, want 3", name, got)
		}
	}
	if got := cp.need[cp.idx["sink"]]; got != 2 {
		t.Errorf("need[sink] = %d, want 2", got)
	}
}

func TestModeTransferParsing(t *testing.T) {
	for _, m := range []Mode{ModeSync, ModeAsync} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	for _, tr := range []Transfer{TransferInline, TransferBlobstore} {
		got, err := ParseTransfer(tr.String())
		if err != nil || got != tr {
			t.Errorf("ParseTransfer(%q) = %v, %v", tr.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted bogus")
	}
	if _, err := ParseTransfer("bogus"); err == nil {
		t.Error("ParseTransfer accepted bogus")
	}
	if s := Mode(7).String(); !strings.Contains(s, "7") {
		t.Errorf("unknown mode renders %q", s)
	}
	if s := Transfer(7).String(); !strings.Contains(s, "7") {
		t.Errorf("unknown transfer renders %q", s)
	}
	e := Edge{From: "a", To: "b", Transfer: TransferBlobstore}
	if e.Label() != "a->b[blobstore]" {
		t.Errorf("Label = %q", e.Label())
	}
}

func TestPresets(t *testing.T) {
	for _, id := range PresetIDs {
		d, err := Preset(id, PresetSpec{Transfer: TransferBlobstore, PayloadBytes: 1 << 10})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if d, err := Preset("map-reduce", PresetSpec{}); err != nil || d.Name != "mapreduce" {
		t.Errorf("map-reduce alias: %v, %v", d, err)
	}
	d, err := Preset("fanout-3", PresetSpec{Need: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n := d.Nodes[len(d.Nodes)-1]; n.Name != "sink" || n.Need != 2 {
		t.Errorf("fanout sink = %+v, want Need 2", n)
	}
	for _, bad := range []string{"chain-1", "chain-999", "chain-x", "fanout-1", "fanout-99", "ring-4", "chain", "fanout"} {
		if _, err := Preset(bad, PresetSpec{}); err == nil {
			t.Errorf("Preset(%q) accepted", bad)
		}
	}
}
