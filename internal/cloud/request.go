package cloud

import (
	"time"

	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/trace"
)

// Request is one function invocation.
type Request struct {
	// Fn is the target function name.
	Fn string
	// Internal marks function-to-function invocations, which skip client
	// propagation and the external front-end admission path.
	Internal bool
	// ExecTime overrides the function's default busy-spin duration when
	// positive (STeLLAR's runtime configuration can set it per run).
	ExecTime time.Duration
	// ChainPayloadBytes overrides the function's chain payload size when
	// positive.
	ChainPayloadBytes int64
	// Cont, when set, runs inside the serving instance after the handler
	// body, exactly where a FunctionSpec.Chain's downstream call would — the
	// continuation seam the workflow executor hangs DAG edges on (see
	// downstream.go). A request carries either a Cont or relies on the
	// function's static Chain, never both.
	Cont Downstream
	// Span, when set, records this invocation's pipeline spans into a trace
	// owned by the caller (the workflow executor's per-node spans); Invoke
	// finishes it at the instant the response reaches the caller. It
	// overrides the cloud's own tracer seam for this request.
	Span *trace.Req
	// wireDelay is the inline-payload transmission time, applied on the
	// ingress path of internal invocations.
	wireDelay time.Duration
	// storageKey references a payload the handler must fetch from the
	// payload store before starting (storage-based transfer).
	storageKey string
	// depth counts chain hops to bound runaway recursion.
	depth int
}

// Response reports the outcome of an invocation.
type Response struct {
	// Fn echoes the served function.
	Fn string
	// InstanceID identifies the serving instance (unique per instance).
	InstanceID int
	// Cold reports whether the serving instance was created for, and had
	// never served before, this invocation.
	Cold bool
	// QueueWait is how long the request sat buffered waiting for an
	// instance (zero when served by an idle warm instance immediately).
	QueueWait time.Duration
	// Timestamps carries the intra-function instrumentation (§IV): keys
	// are "<function>.recv" and "<function>.send" recorded in virtual
	// time, concatenated up the chain exactly as STeLLAR's functions
	// concatenate timestamp strings.
	Timestamps map[string]des.Time
	// Breakdown itemizes where the latency went, per infrastructure
	// component; Breakdown.Total() equals the observed latency.
	Breakdown Breakdown
	// Attempts counts service attempts (1 = no retries).
	Attempts int
	// BilledGBSeconds is the invocation's billed resource usage
	// (instance-busy seconds times configured memory in GB), including
	// time spent blocked on chained downstream calls, as providers bill.
	BilledGBSeconds float64
}

// TransferTime computes the paper's data-transfer metric for a two-function
// chain: consumer receive timestamp minus producer send timestamp. The
// second return is false if the instrumentation keys are missing.
func (r *Response) TransferTime(producer, consumer string) (time.Duration, bool) {
	send, okSend := r.Timestamps[producer+".send"]
	recv, okRecv := r.Timestamps[consumer+".recv"]
	if !okSend || !okRecv || recv < send {
		return 0, false
	}
	return recv - send, true
}
