// Command stellar-plot renders CSV measurement files (label,value_ns,frac —
// the format written by stellar's -csv flag and plot.CSV) as terminal CDF
// charts, the reproduction's counterpart of STeLLAR's plotting utilities.
//
// Usage:
//
//	stellar-plot [-width N] [-height N] [-title T] file.csv [file2.csv ...]
package main

import (
	"os"

	"github.com/stellar-repro/stellar/internal/cli"
)

func main() {
	os.Exit(cli.PlotMain(os.Args[1:], os.Stdout, os.Stderr))
}
