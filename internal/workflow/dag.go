// Package workflow orchestrates multi-function applications over the
// simulated cloud: a DAG whose nodes are deployed functions and whose edges
// carry an invocation mode (sync | async) and a data-passing mode
// (inline | blobstore), executed deterministically inside the DES engine.
//
// The executor composes the cloud's continuation seam (cloud.Downstream):
// a node's out-edges run inside its serving instance exactly where a static
// chain's downstream block runs, so a chain-shaped workflow is
// byte-identical to the hand-rolled two-function chain path — the
// differential anchor that makes the rest of the DAG semantics trustworthy.
// Fan-in nodes wait on join barriers with a configurable straggler policy;
// every barrier conserves its deliveries (started = completed + dropped +
// failed), the invariant the fault-injection suite pins.
package workflow

import (
	"fmt"
	"time"
)

// MaxNodes bounds a DAG's size: barrier state is preallocated per node and
// pooled per executor, and the longest sync path must stay within the
// cloud's chain-depth bound.
const MaxNodes = 64

// maxSyncDepth bounds the longest root-to-leaf path: every hop nests one
// internal invocation, and the cloud rejects chains deeper than its
// maxChainDepth (32).
const maxSyncDepth = 32

// Mode is an edge's invocation mode.
type Mode uint8

const (
	// ModeSync invokes the downstream node inside the producer's serving
	// window: the producer blocks until the downstream completes, as a
	// static chain hop does.
	ModeSync Mode = iota
	// ModeAsync fires the downstream node and forgets it: the producer
	// returns immediately and the branch runs on its own proc.
	ModeAsync

	numModes
)

var modeNames = [numModes]string{ModeSync: "sync", ModeAsync: "async"}

// String returns the mode's stable wire name.
func (m Mode) String() string {
	if m >= numModes {
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
	return modeNames[m]
}

// ParseMode inverts String.
func ParseMode(s string) (Mode, error) {
	for m, name := range modeNames {
		if s == name {
			return Mode(m), nil
		}
	}
	return 0, fmt.Errorf("workflow: unknown edge mode %q (sync|async)", s)
}

// Transfer is an edge's data-passing mode.
type Transfer uint8

const (
	// TransferInline passes the payload in the invocation itself, paying
	// wire time at the provider's effective invocation-path bandwidth and
	// respecting the provider's inline size limit.
	TransferInline Transfer = iota
	// TransferBlobstore routes the payload through the provider's payload
	// store: the producer pays the put, the consumer the fetch.
	TransferBlobstore

	numTransfers
)

var transferNames = [numTransfers]string{
	TransferInline:    "inline",
	TransferBlobstore: "blobstore",
}

// String returns the transfer mode's stable wire name.
func (t Transfer) String() string {
	if t >= numTransfers {
		return fmt.Sprintf("transfer(%d)", uint8(t))
	}
	return transferNames[t]
}

// ParseTransfer inverts String.
func ParseTransfer(s string) (Transfer, error) {
	for t, name := range transferNames {
		if s == name {
			return Transfer(t), nil
		}
	}
	return 0, fmt.Errorf("workflow: unknown transfer mode %q (inline|blobstore)", s)
}

// Node is one workflow step, served by the deployed function of the same
// name.
type Node struct {
	// Name is the node's (and its function's) unique name.
	Name string
	// ExecTime, when positive, overrides the function's busy-spin duration
	// for this workflow's invocations.
	ExecTime time.Duration
	// Need is the join barrier's straggler policy: how many in-branch
	// successes fire the node. Zero means all in-edges (wait-all); a value
	// below the in-degree fires on the Need-th success and counts later
	// arrivals as dropped (a first-K quorum join).
	Need int
	// Select, when positive, makes the node a conditional branch: on
	// completion it takes exactly Select of its out-edges — rotated by
	// workflow instance so successive instances exercise every branch
	// deterministically — and the untaken consumers resolve as skipped.
	// Zero takes every out-edge.
	Select int
}

// Edge is one directed data/control dependency between nodes.
type Edge struct {
	// From and To name the producer and consumer nodes.
	From, To string
	// Mode is the invocation mode (sync | async).
	Mode Mode
	// Transfer is the data-passing mode (inline | blobstore).
	Transfer Transfer
	// PayloadBytes is the payload carried along the edge.
	PayloadBytes int64
}

// Label renders the edge for reports: "from->to[transfer]".
func (e Edge) Label() string {
	return e.From + "->" + e.To + "[" + e.Transfer.String() + "]"
}

// DAG is one workflow topology. Validate (or New, which validates) must
// accept it before execution.
type DAG struct {
	// Name identifies the topology (preset id or caller-chosen).
	Name string
	// Nodes are the workflow steps. Exactly one node must have no in-edges
	// (the root, invoked externally); every node must be reachable from it.
	Nodes []Node
	// Edges are the dependencies. Duplicate (From, To) pairs, self-loops,
	// and cycles are rejected.
	Edges []Edge
}

// compiled is the validated, index-resolved form of a DAG.
type compiled struct {
	idx   map[string]int
	out   [][]int // out-edge indices per node, in Edges order
	inUp  [][]int // in-edge indices per node, in Edges order
	indeg []int
	need  []int // resolved join need (Node.Need, or in-degree when zero)
	root  int
	topo  []int // topological order, root first
	depth int   // longest root-to-leaf path, in nodes
}

// Validate checks the topology's structural invariants: unique node names,
// edges between declared nodes, no self-loops or duplicate edges, exactly
// one root, acyclicity, reachability from the root, join needs within each
// node's in-degree, and the sync-depth bound.
func (d *DAG) Validate() error {
	_, err := compile(d)
	return err
}

func compile(d *DAG) (*compiled, error) {
	if len(d.Nodes) == 0 {
		return nil, fmt.Errorf("workflow %s: no nodes", d.Name)
	}
	if len(d.Nodes) > MaxNodes {
		return nil, fmt.Errorf("workflow %s: %d nodes exceeds limit %d", d.Name, len(d.Nodes), MaxNodes)
	}
	cp := &compiled{
		idx:   make(map[string]int, len(d.Nodes)),
		out:   make([][]int, len(d.Nodes)),
		inUp:  make([][]int, len(d.Nodes)),
		indeg: make([]int, len(d.Nodes)),
		need:  make([]int, len(d.Nodes)),
	}
	for i, n := range d.Nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("workflow %s: node %d has no name", d.Name, i)
		}
		if _, dup := cp.idx[n.Name]; dup {
			return nil, fmt.Errorf("workflow %s: duplicate node %q", d.Name, n.Name)
		}
		if n.Need < 0 {
			return nil, fmt.Errorf("workflow %s: node %q: negative join need %d", d.Name, n.Name, n.Need)
		}
		if n.Select < 0 {
			return nil, fmt.Errorf("workflow %s: node %q: negative branch select %d", d.Name, n.Name, n.Select)
		}
		if n.ExecTime < 0 {
			return nil, fmt.Errorf("workflow %s: node %q: negative exec time", d.Name, n.Name)
		}
		cp.idx[n.Name] = i
	}
	type pair struct{ from, to int }
	seen := make(map[pair]bool, len(d.Edges))
	for i, e := range d.Edges {
		from, ok := cp.idx[e.From]
		if !ok {
			return nil, fmt.Errorf("workflow %s: edge %d from unknown node %q", d.Name, i, e.From)
		}
		to, ok := cp.idx[e.To]
		if !ok {
			return nil, fmt.Errorf("workflow %s: edge %d to unknown node %q", d.Name, i, e.To)
		}
		if from == to {
			return nil, fmt.Errorf("workflow %s: edge %d is a self-loop on %q", d.Name, i, e.From)
		}
		if seen[pair{from, to}] {
			return nil, fmt.Errorf("workflow %s: duplicate edge %s->%s", d.Name, e.From, e.To)
		}
		seen[pair{from, to}] = true
		if e.Mode >= numModes {
			return nil, fmt.Errorf("workflow %s: edge %s->%s: invalid mode", d.Name, e.From, e.To)
		}
		if e.Transfer >= numTransfers {
			return nil, fmt.Errorf("workflow %s: edge %s->%s: invalid transfer", d.Name, e.From, e.To)
		}
		if e.PayloadBytes < 0 {
			return nil, fmt.Errorf("workflow %s: edge %s->%s: negative payload", d.Name, e.From, e.To)
		}
		cp.out[from] = append(cp.out[from], i)
		cp.inUp[to] = append(cp.inUp[to], i)
		cp.indeg[to]++
	}
	cp.root = -1
	for i := range d.Nodes {
		if cp.indeg[i] == 0 {
			if cp.root >= 0 {
				return nil, fmt.Errorf("workflow %s: multiple roots (%q and %q)",
					d.Name, d.Nodes[cp.root].Name, d.Nodes[i].Name)
			}
			cp.root = i
		}
	}
	if cp.root < 0 {
		return nil, fmt.Errorf("workflow %s: no root (every node has in-edges: cycle)", d.Name)
	}
	for i, n := range d.Nodes {
		cp.need[i] = n.Need
		if cp.need[i] == 0 {
			cp.need[i] = cp.indeg[i]
		}
		if cp.need[i] > cp.indeg[i] {
			return nil, fmt.Errorf("workflow %s: node %q: join need %d exceeds in-degree %d",
				d.Name, n.Name, n.Need, cp.indeg[i])
		}
		if n.Select > len(cp.out[i]) {
			return nil, fmt.Errorf("workflow %s: node %q: branch select %d exceeds out-degree %d",
				d.Name, n.Name, n.Select, len(cp.out[i]))
		}
	}
	// Kahn's algorithm from the single root doubles as the acyclicity and
	// reachability check: any node left unprocessed is on or behind a cycle,
	// or unreachable from the root.
	depth := make([]int, len(d.Nodes))
	remaining := append([]int(nil), cp.indeg...)
	queue := []int{cp.root}
	depth[cp.root] = 1
	cp.depth = 1
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		cp.topo = append(cp.topo, n)
		for _, ei := range cp.out[n] {
			to := cp.idx[d.Edges[ei].To]
			if d := depth[n] + 1; d > depth[to] {
				depth[to] = d
				if d > cp.depth {
					cp.depth = d
				}
			}
			remaining[to]--
			if remaining[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(cp.topo) != len(d.Nodes) {
		var stuck []string
		for i, r := range remaining {
			if r > 0 && len(stuck) < 4 {
				stuck = append(stuck, d.Nodes[i].Name)
			}
		}
		return nil, fmt.Errorf("workflow %s: cyclic or unreachable nodes (e.g. %v)", d.Name, stuck)
	}
	if cp.depth > maxSyncDepth {
		return nil, fmt.Errorf("workflow %s: longest path %d nodes exceeds chain-depth bound %d",
			d.Name, cp.depth, maxSyncDepth)
	}
	return cp, nil
}
