package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/stellar-repro/stellar/internal/results"
)

// run invokes Main capturing output.
func run(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := Main(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestNoArgsUsage(t *testing.T) {
	code, _, errOut := run(t)
	if code != 2 || !strings.Contains(errOut, "commands:") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestUnknownCommand(t *testing.T) {
	code, _, errOut := run(t, "launch-rockets")
	if code != 2 || !strings.Contains(errOut, "unknown command") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestHelp(t *testing.T) {
	code, out, _ := run(t, "help")
	if code != 0 || !strings.Contains(out, "experiment") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestProvidersCommand(t *testing.T) {
	code, out, _ := run(t, "providers")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	for _, want := range []string{"aws", "google", "azure"} {
		if !strings.Contains(out, want) {
			t.Errorf("providers output missing %s: %q", want, out)
		}
	}
}

func TestBenchCommand(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "out.csv")
	code, out, errOut := run(t, "bench",
		"-provider", "google", "-samples", "50", "-warmup", "2", "-csv", csvPath)
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	for _, want := range []string{"samples=50", "latency:", "median=", "latency CDF"} {
		if !strings.Contains(out, want) {
			t.Errorf("bench output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "label,value_ns,frac") {
		t.Errorf("csv header wrong: %q", string(data[:40]))
	}
}

func TestBenchBreakdownFlag(t *testing.T) {
	code, out, errOut := run(t, "bench",
		"-provider", "aws", "-samples", "30", "-warmup", "1", "-exec", "100ms", "-breakdown")
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	for _, want := range []string{"component", "exec", "propagation", "billed="} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown output missing %q", want)
		}
	}
}

func TestBenchUnknownProvider(t *testing.T) {
	code, _, errOut := run(t, "bench", "-provider", "oracle", "-samples", "5")
	if code != 1 || !strings.Contains(errOut, "unknown provider") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestBenchBadIATDist(t *testing.T) {
	code, _, errOut := run(t, "bench", "-provider", "aws", "-samples", "5", "-iat-dist", "zipf")
	if code != 1 || !strings.Contains(errOut, "IAT distribution") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestExperimentCommand(t *testing.T) {
	code, out, errOut := run(t, "experiment", "-id", "fig3a", "-samples", "120", "-replicas", "10")
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	for _, want := range []string{"fig3a", "aws", "google", "azure", "paper-med"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment output missing %q", want)
		}
	}
}

// TestExperimentWorkersDeterminism: a figure report must be byte-identical
// at any -workers setting.
func TestExperimentWorkersDeterminism(t *testing.T) {
	var outs []string
	for _, workers := range []string{"1", "8"} {
		code, out, errOut := run(t, "experiment", "-id", "fig3a",
			"-samples", "120", "-replicas", "10", "-workers", workers)
		if code != 0 {
			t.Fatalf("workers=%s: code=%d err=%q", workers, code, errOut)
		}
		outs = append(outs, out)
	}
	if outs[0] != outs[1] {
		t.Errorf("experiment output differs between -workers 1 and -workers 8\n--- workers=1 ---\n%s--- workers=8 ---\n%s",
			outs[0], outs[1])
	}
}

func TestExperimentUnknownID(t *testing.T) {
	code, _, errOut := run(t, "experiment", "-id", "fig99")
	if code != 1 || !strings.Contains(errOut, "unknown id") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func writeTestFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCommandSimTransport(t *testing.T) {
	static := writeTestFile(t, "static.json", `{
		"provider": "aws",
		"functions": [{"name": "f", "runtime": "go1.x", "method": "zip",
			"chain": {"length": 2, "transfer": "inline", "payload_bytes": 1024}}]
	}`)
	rt := writeTestFile(t, "rt.json", `{"samples": 40, "iat": "3s", "warmup_discard": 2}`)
	epsPath := filepath.Join(t.TempDir(), "eps.json")
	code, out, errOut := run(t, "run",
		"-static", static, "-runtime", rt, "-endpoints", epsPath, "-breakdown")
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	for _, want := range []string{"wrote 1 endpoints", "transfer:", "downstream"} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(epsPath); err != nil {
		t.Errorf("endpoints file not written: %v", err)
	}
}

func TestRunCommandMissingFlags(t *testing.T) {
	code, _, errOut := run(t, "run")
	if code != 1 || !strings.Contains(errOut, "-runtime is required") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	rt := writeTestFile(t, "rt.json", `{"samples": 5, "iat": "1s"}`)
	code, _, errOut = run(t, "run", "-runtime", rt)
	if code != 1 || !strings.Contains(errOut, "-static is required") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	code, _, errOut = run(t, "run", "-runtime", rt, "-transport", "http")
	if code != 1 || !strings.Contains(errOut, "-endpoints is required") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	code, _, errOut = run(t, "run", "-runtime", rt, "-transport", "carrier-pigeon")
	if code != 1 || !strings.Contains(errOut, "unknown transport") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestRunCommandBadConfigFiles(t *testing.T) {
	rt := writeTestFile(t, "rt.json", `{"samples": 5, "iat": "1s"}`)
	code, _, errOut := run(t, "run", "-runtime", rt, "-static", "/does/not/exist.json")
	if code != 1 || !strings.Contains(errOut, "static config") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	badRt := writeTestFile(t, "bad.json", `{"samples": "lots"}`)
	code, _, errOut = run(t, "run", "-runtime", badRt)
	if code != 1 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestPlotMain(t *testing.T) {
	csv := writeTestFile(t, "data.csv",
		"label,value_ns,frac\nwarm,1000000,0.5\nwarm,2000000,1.0\n")
	var out, errOut strings.Builder
	code := PlotMain([]string{"-title", "mychart", csv}, &out, &errOut)
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "mychart") || !strings.Contains(out.String(), "warm") {
		t.Errorf("plot output missing content:\n%s", out.String())
	}
}

func TestPlotMainErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := PlotMain(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-args code=%d", code)
	}
	errOut.Reset()
	if code := PlotMain([]string{"/does/not/exist.csv"}, &out, &errOut); code != 1 {
		t.Fatalf("missing-file code=%d", code)
	}
	bad := writeTestFile(t, "bad.csv", "label,value_ns,frac\noops\n")
	errOut.Reset()
	if code := PlotMain([]string{bad}, &out, &errOut); code != 1 ||
		!strings.Contains(errOut.String(), "malformed") {
		t.Fatalf("malformed-file: %q", errOut.String())
	}
	badVal := writeTestFile(t, "badval.csv", "label,value_ns,frac\nx,soon,1\n")
	errOut.Reset()
	if code := PlotMain([]string{badVal}, &out, &errOut); code != 1 ||
		!strings.Contains(errOut.String(), "bad value") {
		t.Fatalf("bad-value: %q", errOut.String())
	}
	empty := writeTestFile(t, "empty.csv", "label,value_ns,frac\n")
	errOut.Reset()
	if code := PlotMain([]string{empty}, &out, &errOut); code != 1 ||
		!strings.Contains(errOut.String(), "no data rows") {
		t.Fatalf("empty-file: %q", errOut.String())
	}
}

func TestSimMainServesAndStops(t *testing.T) {
	static := writeTestFile(t, "static.json", `{
		"provider": "google",
		"functions": [{"name": "hello", "runtime": "go1.x", "method": "zip"}]
	}`)
	epsPath := filepath.Join(t.TempDir(), "eps.json")
	stop := make(chan struct{})
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var out, errOut strings.Builder
	go func() {
		done <- SimMain([]string{
			"-provider", "google", "-addr", "127.0.0.1:0", "-scale", "100",
			"-static", static, "-endpoints", epsPath,
		}, &out, &errOut, stop, ready)
	}()
	base := <-ready
	if !strings.HasPrefix(base, "http://127.0.0.1:") {
		t.Fatalf("base URL %q", base)
	}
	close(stop)
	if code := <-done; code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "deployed 1 endpoints") {
		t.Errorf("sim output missing deployment:\n%s", out.String())
	}
	if _, err := os.Stat(epsPath); err != nil {
		t.Errorf("endpoints file missing: %v", err)
	}
}

func TestSimMainBadProvider(t *testing.T) {
	var out, errOut strings.Builder
	code := SimMain([]string{"-provider", "oracle"}, &out, &errOut, nil, nil)
	if code != 1 || !strings.Contains(errOut.String(), "unknown provider") {
		t.Fatalf("code=%d err=%q", code, errOut.String())
	}
}

func TestCompareCommand(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	// Two runs of the same provider/seed are identical; different exec
	// times are clearly distinguishable.
	for _, tc := range []struct{ path, exec string }{{a, "0s"}, {b, "200ms"}} {
		code, _, errOut := run(t, "bench", "-provider", "google", "-samples", "120",
			"-warmup", "2", "-exec", tc.exec, "-save", tc.path, "-name", filepath.Base(tc.path))
		if code != 0 {
			t.Fatalf("bench failed: %s", errOut)
		}
	}
	code, out, errOut := run(t, "compare", a, b)
	if code != 0 {
		t.Fatalf("compare failed: %s", errOut)
	}
	for _, want := range []string{"a.json", "b.json", "median", "Mann-Whitney", "distributions differ"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareCommandErrors(t *testing.T) {
	code, _, errOut := run(t, "compare", "only-one.json")
	if code != 1 || !strings.Contains(errOut, "exactly two") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	code, _, _ = run(t, "compare", "/missing/a.json", "/missing/b.json")
	if code != 1 {
		t.Fatalf("code=%d", code)
	}
}

func TestBenchTimelineFlag(t *testing.T) {
	code, out, errOut := run(t, "bench",
		"-provider", "aws", "-samples", "40", "-timeline", "30s")
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	for _, want := range []string{"latency over the run", "median bar"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline output missing %q", want)
		}
	}
}

func TestAzTraceCommand(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.csv")
	code, stdout, errOut := run(t, "aztrace", "-generate", "500", "-out", out)
	if code != 0 {
		t.Fatalf("generate: code=%d err=%q", code, errOut)
	}
	if !strings.Contains(stdout, "wrote 500 functions") {
		t.Fatalf("generate output: %q", stdout)
	}
	code, stdout, errOut = run(t, "aztrace", "-analyze", out)
	if code != 0 {
		t.Fatalf("analyze: code=%d err=%q", code, errOut)
	}
	for _, want := range []string{"trace: 500 functions", "P(TMR<10)", "<1s", "TMR CDFs"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("analysis missing %q", want)
		}
	}
	// Generate to stdout when no -out given.
	code, stdout, _ = run(t, "aztrace", "-generate", "3")
	if code != 0 || !strings.HasPrefix(stdout, "function,p25_ms") {
		t.Fatalf("stdout generate: code=%d out=%q", code, stdout[:40])
	}
}

func TestAzTraceCommandErrors(t *testing.T) {
	code, _, errOut := run(t, "aztrace")
	if code != 1 || !strings.Contains(errOut, "need -generate") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	code, _, _ = run(t, "aztrace", "-analyze", "/missing.csv")
	if code != 1 {
		t.Fatalf("code=%d", code)
	}
}

func TestTraceCommand(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.json")
	save := filepath.Join(dir, "run.json")
	code, stdout, errOut := run(t, "trace",
		"-provider", "aws", "-n", "400", "-shards", "4", "-workers", "1",
		"-iat", "50ms", "-burst", "4", "-sample", "1", "-slowest", "8",
		"-out", out, "-save", save, "-name", "traced")
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	for _, want := range []string{
		"trace series: provider=aws invocations=400 shards=4",
		"traces: retained=",
		"tail attribution",
		"queue-wait share",
		"wrote", "run saved to",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("trace output missing %q in %q", want, stdout)
		}
	}
	// The exported file must be valid Chrome trace_event JSON.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace.json: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace.json has no events")
	}
	// The saved run must round-trip through results.Load (which re-validates
	// every trace's tiling invariant).
	rec, err := results.Load(save)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != "traced" || len(rec.Traces) == 0 || len(rec.LatenciesNS) == 0 {
		t.Fatalf("saved record: name=%q traces=%d lats=%d",
			rec.Name, len(rec.Traces), len(rec.LatenciesNS))
	}
}

func TestTraceCommandErrors(t *testing.T) {
	// Sampler fully disabled.
	code, _, errOut := run(t, "trace", "-n", "10", "-shards", "1", "-sample", "0", "-slowest", "0")
	if code != 1 || !strings.Contains(errOut, "sampler disabled") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	// Unknown provider.
	code, _, _ = run(t, "trace", "-provider", "nope", "-n", "10", "-shards", "1")
	if code != 1 {
		t.Fatalf("code=%d", code)
	}
}

func TestExperimentCSVDir(t *testing.T) {
	dir := t.TempDir()
	code, _, errOut := run(t, "experiment", "-id", "fig3a",
		"-samples", "100", "-replicas", "10", "-csv-dir", dir)
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3a.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "label,value_ns,frac") {
		t.Fatalf("csv content: %q", string(data[:40]))
	}
	for _, prov := range []string{"aws", "google", "azure"} {
		if !strings.Contains(string(data), prov) {
			t.Errorf("csv missing %s series", prov)
		}
	}
}

func TestRunCommandSave(t *testing.T) {
	static := writeTestFile(t, "static.json", `{
		"provider": "google",
		"functions": [{"name": "f", "runtime": "python3", "method": "zip"}]
	}`)
	rt := writeTestFile(t, "rt.json", `{"samples": 20, "iat": "3s", "warmup_discard": 1}`)
	save := filepath.Join(t.TempDir(), "run.json")
	code, out, errOut := run(t, "run", "-static", static, "-runtime", rt, "-save", save, "-name", "g")
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	if !strings.Contains(out, "run saved to") {
		t.Fatalf("missing save confirmation:\n%s", out)
	}
	if _, err := os.Stat(save); err != nil {
		t.Fatal(err)
	}
}

func TestSimAndRunCLIsIntegrate(t *testing.T) {
	// stellar-sim serves a provider over HTTP; stellar run benchmarks it
	// with the HTTP transport — the two CLIs end to end.
	static := writeTestFile(t, "static.json", `{
		"provider": "google",
		"functions": [{"name": "itg", "runtime": "go1.x", "method": "zip"}]
	}`)
	epsPath := filepath.Join(t.TempDir(), "eps.json")
	stop := make(chan struct{})
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var simOut, simErr strings.Builder
	go func() {
		done <- SimMain([]string{
			"-provider", "google", "-addr", "127.0.0.1:0", "-scale", "200",
			"-static", static, "-endpoints", epsPath,
		}, &simOut, &simErr, stop, ready)
	}()
	<-ready
	defer func() {
		close(stop)
		<-done
	}()

	rt := writeTestFile(t, "rt.json", `{"samples": 10, "iat": "3s", "warmup_discard": 2}`)
	code, out, errOut := run(t, "run",
		"-transport", "http", "-endpoints", epsPath, "-runtime", rt, "-scale", "200")
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	if !strings.Contains(out, "samples=10 colds=0") {
		t.Fatalf("http run output:\n%s", out)
	}
}

// TestScaleCommand exercises the sketch-summarized series end to end:
// report, saved sketch record, and CDF export.
func TestScaleCommand(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "cdf.csv")
	savePath := filepath.Join(dir, "scale.json")
	code, out, errOut := run(t, "scale",
		"-provider", "google", "-n", "4000", "-shards", "2",
		"-iat", "20ms", "-csv", csvPath, "-save", savePath)
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	for _, want := range []string{"invocations=4000", "mode=sketch", "p99=", "memory=", "sketch saved"} {
		if !strings.Contains(out, want) {
			t.Errorf("scale output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "latency_ns,cdf") {
		t.Errorf("csv header wrong: %q", string(data[:20]))
	}
	rec, err := results.Load(savePath)
	if err != nil {
		t.Fatal(err)
	}
	r, err := rec.Recorder()
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() == 0 || rec.Sketch == nil || len(rec.LatenciesNS) != 0 {
		t.Fatalf("saved scale record malformed: count=%d sketch=%v lats=%d",
			r.Count(), rec.Sketch != nil, len(rec.LatenciesNS))
	}
}

// TestScaleCommandExactRejectsSave: exact mode has no sketch to persist.
func TestScaleCommandExactRejectsSave(t *testing.T) {
	code, _, errOut := run(t, "scale",
		"-provider", "google", "-n", "200", "-shards", "2", "-iat", "20ms",
		"-exact", "-save", filepath.Join(t.TempDir(), "x.json"))
	if code == 0 || !strings.Contains(errOut, "-exact") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

// TestCompareRejectsSketchOnlyRecords: sketch records load fine but cannot
// feed bootstrap/rank comparisons — the CLI must say so instead of
// panicking on an empty sample.
func TestCompareRejectsSketchOnlyRecords(t *testing.T) {
	dir := t.TempDir()
	sketchPath := filepath.Join(dir, "sketch.json")
	benchPath := filepath.Join(dir, "bench.json")
	if code, _, errOut := run(t, "scale",
		"-provider", "google", "-n", "2000", "-shards", "2", "-iat", "20ms",
		"-save", sketchPath); code != 0 {
		t.Fatalf("scale failed: %s", errOut)
	}
	if code, _, errOut := run(t, "bench",
		"-provider", "google", "-samples", "100", "-save", benchPath); code != 0 {
		t.Fatalf("bench failed: %s", errOut)
	}
	code, _, errOut := run(t, "compare", sketchPath, benchPath)
	if code == 0 || !strings.Contains(errOut, "sketch-only") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}
