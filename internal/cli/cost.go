package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"github.com/stellar-repro/stellar/internal/econ"
	"github.com/stellar-repro/stellar/internal/experiments"
	"github.com/stellar-repro/stellar/internal/providers"
	"github.com/stellar-repro/stellar/internal/results"
)

// cmdCost runs the control-plane cost/latency sweep: the multi-tenant
// replay once per autoscaler/keep-alive policy, the metered usage priced
// under every billing plan, reporting cost-per-million-requests vs p99
// Pareto frontiers (and optionally a workflow app's cost-per-application).
func cmdCost(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("cost", flag.ContinueOnError)
	fs.SetOutput(stdout)
	prof := addProfileFlags(fs)
	provider := fs.String("provider", "aws", "provider profile")
	providerFile := fs.String("provider-file", "", "JSON provider profile to load and use")
	tenants := fs.Int("tenants", 500, "synthesized tenant population size")
	duration := fs.Duration("duration", 10*time.Minute, "arrival window (virtual time)")
	shards := fs.Int("shards", 8, "independent simulation shards per policy")
	workers := fs.Int("workers", 0, "concurrent shard simulations (0 = all CPUs, 1 = serial)")
	seed := fs.Int64("seed", 1, "random seed")
	policies := fs.String("policies", "", "comma-separated control-plane policies: keepalive-<dur>, target-<n>, target-<n>-evict (default keepalive-5m,target-1,target-2,target-8-evict)")
	plans := fs.String("plans", "", "comma-separated built-in billing plans (default all: "+strings.Join(econ.Plans(), ",")+")")
	econConfig := fs.String("econ-config", "", "JSON econ config file; its autoscaler joins the sweep as policy \"custom\", its billing plan as a pricing column")
	resumeDelay := fs.Duration("resume-delay", 50*time.Millisecond, "suspended-to-running resume latency under autoscaler policies")
	slack := fs.Duration("slack", 0, "keep-alive timer slack: route expiries via the timer wheel at this tick (0 = exact)")
	iatLo := fs.Duration("iat-lo", time.Second, "lower bound of per-tenant mean inter-arrival time")
	iatHi := fs.Duration("iat-hi", time.Minute, "upper bound of per-tenant mean inter-arrival time")
	alpha := fs.Float64("alpha", 0.02, "latency sketch relative accuracy")
	maxConc := fs.Int("max-concurrency", 16, "per-tenant instance cap (-1 = uncapped)")
	topology := fs.String("workflow", "", "also deploy this workflow preset and report its cost per application")
	apps := fs.Uint64("apps", 64, "total workflow launches across shards (with -workflow)")
	appIAT := fs.Duration("app-iat", 500*time.Millisecond, "inter-arrival time between workflow launches per shard")
	appExec := fs.Duration("app-exec", 20*time.Millisecond, "per-node busy time of the workflow app")
	engine := addEngineFlag(fs)
	jsonPath := fs.String("json", "", "write the sweep as JSON to this file (\"-\" = stdout)")
	csvPath := fs.String("csv", "", "write the sweep as CSV to this file (\"-\" = stdout)")
	benchJSON := fs.String("bench-json", "", "write sweep throughput metrics as JSON to this file (\"-\" = stdout)")
	savePath := fs.String("save", "", "save one policy's merged latency sketch as a results file")
	savePolicy := fs.String("save-policy", "", "policy to save (default: the first swept policy)")
	name := fs.String("name", "cost", "run name used in saved results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	if *providerFile != "" {
		loaded, err := providers.RegisterFile(*providerFile)
		if err != nil {
			return err
		}
		*provider = loaded
	}
	mode, err := engine.mode()
	if err != nil {
		return err
	}

	opts := experiments.CostOptions{
		Provider:       *provider,
		Tenants:        *tenants,
		Duration:       *duration,
		Shards:         *shards,
		Workers:        *workers,
		Seed:           *seed,
		ResumeDelay:    *resumeDelay,
		SlackTick:      *slack,
		MeanIATLo:      *iatLo,
		MeanIATHi:      *iatHi,
		Alpha:          *alpha,
		MaxConcurrency: *maxConc,
		Workflow:       *topology,
		Apps:           *apps,
		AppIAT:         *appIAT,
		AppExec:        *appExec,
		Engine:         mode,
	}
	if *policies != "" {
		for _, p := range strings.Split(*policies, ",") {
			pol, err := experiments.ParseCostPolicy(strings.TrimSpace(p))
			if err != nil {
				return err
			}
			opts.Policies = append(opts.Policies, pol)
		}
	}
	if *plans != "" {
		for _, p := range strings.Split(*plans, ",") {
			plan, err := econ.Plan(strings.TrimSpace(p))
			if err != nil {
				return err
			}
			opts.Plans = append(opts.Plans, plan)
		}
	}
	if *econConfig != "" {
		loaded, err := econ.LoadFile(*econConfig)
		if err != nil {
			return err
		}
		if loaded.Autoscaler == nil && loaded.Billing == nil {
			return fmt.Errorf("cost: %s defines neither an autoscaler nor a billing plan", *econConfig)
		}
		// File-defined axes extend the sweep rather than replacing it, so a
		// custom operating point is always seen next to the defaults.
		if len(opts.Policies) == 0 {
			opts.Policies = experiments.DefaultCostPolicies()
		}
		if loaded.Autoscaler != nil {
			opts.Policies = append(opts.Policies, experiments.CostPolicy{
				Name:       "custom",
				Autoscaler: loaded.Autoscaler,
			})
		}
		if loaded.Billing != nil {
			if len(opts.Plans) == 0 {
				for _, name := range econ.Plans() {
					plan, err := econ.Plan(name)
					if err != nil {
						return err
					}
					opts.Plans = append(opts.Plans, plan)
				}
			}
			opts.Plans = append(opts.Plans, *loaded.Billing)
		}
	}

	wallStart := time.Now()
	res, err := experiments.RunCost(opts)
	if err != nil {
		return err
	}
	wall := time.Since(wallStart)

	experiments.WriteCostReport(stdout, res)
	// Wall-clock throughput lines carry a "wall:" prefix so differential
	// runs (CI's Workers=1 vs Workers=8 diff) can strip the only
	// nondeterministic output.
	var invocations uint64
	for _, p := range res.Points {
		invocations += p.Invocations
	}
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	fmt.Fprintf(stdout, "wall: %.2fs for %d policy-replays / %d invocations (%.0f invocations/s), peak heap %.1f MB\n",
		wall.Seconds(), len(res.Points), invocations,
		float64(invocations)/wall.Seconds(), float64(mem.HeapSys)/(1<<20))

	if *benchJSON != "" {
		bench := struct {
			Tenants        int     `json:"tenants"`
			Policies       int     `json:"policies"`
			Plans          int     `json:"plans"`
			Invocations    uint64  `json:"invocations"`
			WallSeconds    float64 `json:"wall_seconds"`
			InvocsPerSec   float64 `json:"invocations_per_sec"`
			PeakHeapBytes  uint64  `json:"peak_heap_bytes"`
			HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
		}{
			Tenants:        res.Tenants,
			Policies:       len(res.Points),
			Invocations:    invocations,
			WallSeconds:    wall.Seconds(),
			InvocsPerSec:   float64(invocations) / wall.Seconds(),
			PeakHeapBytes:  mem.HeapSys,
			HeapAllocBytes: mem.HeapAlloc,
		}
		if len(res.Points) > 0 {
			bench.Plans = len(res.Points[0].Plans)
		}
		if err := writeTo(*benchJSON, stdout, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(bench)
		}); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		if err := writeTo(*jsonPath, stdout, func(w io.Writer) error {
			return experiments.WriteCostJSON(w, res)
		}); err != nil {
			return err
		}
	}
	if *csvPath != "" {
		if err := writeTo(*csvPath, stdout, func(w io.Writer) error {
			return experiments.WriteCostCSV(w, res)
		}); err != nil {
			return err
		}
	}
	if *savePath != "" {
		point := &res.Points[0]
		if *savePolicy != "" {
			point = nil
			for i := range res.Points {
				if res.Points[i].Policy == *savePolicy {
					point = &res.Points[i]
					break
				}
			}
			if point == nil {
				return fmt.Errorf("cost: -save-policy %q not in the sweep", *savePolicy)
			}
		}
		u := point.Usage
		rec := results.FromCostRun(*name+"/"+point.Policy, point.LatencySketch(),
			int(point.ColdServed), int(point.Errors),
			(u.BusyGBms+u.IdleGBms+u.SuspendedGBms)/1e3)
		if err := rec.Save(*savePath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "policy %s saved to %s\n", point.Policy, *savePath)
	}
	return nil
}
