package core

import (
	"fmt"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/des"
)

// SimTransport executes load plans against one or more simulated clouds in
// virtual time. Requests scheduled at the same offset are issued
// simultaneously (the paper's burst semantics); each request runs as its
// own process, mirroring STeLLAR's goroutine-per-request client.
type SimTransport struct {
	eng    *des.Engine
	clouds map[string]*cloud.Cloud
}

// NewSimTransport wires the transport to the engine and clouds (keyed by
// provider name).
func NewSimTransport(eng *des.Engine, clouds ...*cloud.Cloud) *SimTransport {
	st := &SimTransport{eng: eng, clouds: make(map[string]*cloud.Cloud, len(clouds))}
	for _, c := range clouds {
		st.clouds[c.Config().Name] = c
	}
	return st
}

// Execute implements Transport. It schedules every planned request on the
// virtual clock, runs the engine until all responses arrive, and returns
// the samples in plan order. Virtual time continues from the engine's
// current clock, so back-to-back Execute calls model consecutive runs.
func (st *SimTransport) Execute(plan []PlannedRequest) ([]Sample, error) {
	samples := make([]Sample, len(plan))
	base := st.eng.Now()
	for i := range plan {
		pr := plan[i]
		c, ok := st.clouds[pr.Endpoint.Provider]
		if !ok {
			return nil, fmt.Errorf("core: no simulated cloud for provider %q", pr.Endpoint.Provider)
		}
		slot := &samples[i]
		st.eng.At(base+pr.At, func() {
			start := st.eng.Now()
			req := &cloud.Request{
				Fn:                pr.Endpoint.Function,
				ExecTime:          pr.ExecTime,
				ChainPayloadBytes: pr.PayloadBytes,
			}
			// InvokeAsync picks the cloud's execution form per request:
			// the callback fast path for eligible warm-path requests, a
			// spawned proc (the classic goroutine-per-request client)
			// otherwise. Both start at this instant, so the measured
			// latency is identical either way. The response is borrowed —
			// copy everything out inside the callback.
			c.InvokeAsync(req, func(resp *cloud.Response, err error) {
				slot.At = pr.At
				slot.Latency = st.eng.Now() - start
				slot.Err = err
				if resp != nil {
					slot.Cold = resp.Cold
					slot.InstanceID = resp.InstanceID
					slot.QueueWait = resp.QueueWait
					slot.Breakdown = resp.Breakdown
					slot.BilledGBSeconds = resp.BilledGBSeconds
					if len(pr.Endpoint.Chain) >= 2 {
						if t, ok := resp.TransferTime(pr.Endpoint.Chain[0], pr.Endpoint.Chain[1]); ok {
							slot.TransferTime = t
						}
					}
				}
			})
		})
	}
	st.eng.Run(0)
	return samples, nil
}
