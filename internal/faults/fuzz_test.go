package faults

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// FuzzLoadFaultConfig drives ParseConfig with arbitrary documents and
// checks the loader's contract: no panics, a deterministic verdict, every
// accepted config passes its own Validate, and accepted specs survive a
// marshal round-trip (exercising the dual-form Duration codec).
func FuzzLoadFaultConfig(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"inject": {"drop_prob": 0.1}}`,
		`{"inject": {"drop_prob": 1.0, "spawn_fail_prob": 0.5, "storage_timeout_prob": 0.2, "storage_timeout": "5s", "throttle_limit": 50, "throttle_window": "1s"}}`,
		`{"policy": {"timeout": "2s", "max_retries": 3, "backoff_base": "100ms", "backoff_cap": "1s", "jitter": true, "hedge_after": "500ms"}}`,
		`{"inject": {"storage_timeout": 1500000000, "storage_timeout_prob": 0.5}}`,
		`{"inject": {"drop_prob": -1}}`,
		`{"inject": {"spawn_fail_prob": 1}}`,
		`{"policy": {"max_retries": 100000}}`,
		`{"inject": {"storage_timeout_prob": 1e308}}`,
		`{"inject"`,
		`[]`,
		`null`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		a, errA := ParseConfig([]byte(doc))
		b, errB := ParseConfig([]byte(doc))

		// The verdict is a pure function of the input bytes.
		if (errA == nil) != (errB == nil) {
			t.Fatalf("non-deterministic verdict: %v vs %v", errA, errB)
		}
		if errA != nil {
			return
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("non-deterministic parse: %+v vs %+v", a, b)
		}

		// Accepted configs must be internally consistent.
		if a.Inject != nil {
			if err := a.Inject.Validate(); err != nil {
				t.Fatalf("accepted inject config fails Validate: %v", err)
			}
			if a.Inject.SpawnFailProb >= 1 {
				t.Fatalf("spawn_fail_prob %v >= 1 slipped through", a.Inject.SpawnFailProb)
			}
			for name, p := range map[string]float64{
				"drop_prob":            a.Inject.DropProb,
				"spawn_fail_prob":      a.Inject.SpawnFailProb,
				"storage_timeout_prob": a.Inject.StorageTimeoutProb,
			} {
				if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1 {
					t.Fatalf("%s = %v slipped through validation", name, p)
				}
			}
			if a.Inject.StorageTimeoutProb > 0 && a.Inject.StorageTimeout <= 0 {
				t.Fatal("active storage fault with non-positive timeout")
			}
			if a.Inject.ThrottleLimit > 0 && a.Inject.ThrottleWindow <= 0 {
				t.Fatal("active throttle with non-positive window")
			}
		}
		if a.Policy != nil {
			if err := a.Policy.Validate(); err != nil {
				t.Fatalf("accepted policy fails Validate: %v", err)
			}
			if a.Policy.Timeout < 0 || a.Policy.MaxRetries < 0 || a.Policy.MaxRetries > 1000 {
				t.Fatalf("policy bounds slipped through: %+v", a.Policy)
			}
		}

		// Round-trip: spec -> JSON -> spec must be lossless. This is the
		// Duration codec's contract ("1.5s" and 1500000000 both normalize).
		var spec FileSpec
		if err := json.Unmarshal([]byte(doc), &spec); err != nil {
			t.Fatalf("spec re-parse failed after ParseConfig accepted: %v", err)
		}
		out, err := json.Marshal(&spec)
		if err != nil {
			t.Fatalf("marshal accepted spec: %v", err)
		}
		var again FileSpec
		if err := json.Unmarshal(out, &again); err != nil {
			t.Fatalf("re-unmarshal own output: %v", err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("round-trip drift:\n  first:  %+v\n  second: %+v\n  json: %s", spec, again, out)
		}
	})
}
