package providers

import (
	"time"

	"github.com/stellar-repro/stellar/internal/blobstore"
	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/dist"
)

// Google models Google Cloud Functions as characterized in the paper:
//
//   - Lowest warm-path latencies of the three providers (§VI-A).
//   - gVisor sandboxes; slower cold starts than AWS with no warm generic
//     pool, so the language runtime's own init shows up (Python ZIP cold
//     median 870ms vs ~530ms for Go functions in Fig. 4).
//   - An image store that is insensitive to image size (very high fetch
//     bandwidth, §VI-B2) but whose uncached reads queue under mass cold
//     starts — and a *load-adaptive* cache that only activates under heavy
//     traffic, which makes burst-500 cold starts cheaper than burst-300
//     (§VI-D2's caching-aggressiveness hypothesis).
//   - Payload storage (GCS) with a very heavy tail (TMR 37.3 at 1MB).
//   - A front-end that absorbs warm bursts almost flat (burst 100 -> 500
//     moves the median by only ~15ms, §VI-D1).
func Google() cloud.Config {
	return cloud.Config{
		Name:           "google",
		PropagationRTT: 14 * time.Millisecond,

		FrontendDelay: dist.LogNormalMedTail(9*time.Millisecond, 32*time.Millisecond),
		ResponseDelay: dist.LogNormalMedTail(3*time.Millisecond, 8*time.Millisecond),
		InternalDelay: dist.LogNormalMedTail(2*time.Millisecond, 8*time.Millisecond),
		RoutingDelay:  dist.Constant(time.Millisecond),
		WarmOverhead:  dist.LogNormalMedTail(4*time.Millisecond, 14*time.Millisecond),

		// Nearly flat burst response: sublinear and capped.
		CongestionThreshold: 3,
		CongestionUnit:      8800 * time.Microsecond,
		CongestionExponent:  0.5,
		CongestionCap:       110 * time.Millisecond,

		SchedulerCapacity: 64,
		PlacementDelay:    dist.LogNormalMedTail(25*time.Millisecond, 60*time.Millisecond),
		Policy:            cloud.PolicyConfig{Kind: cloud.PolicyNoQueue},

		SandboxBoot:     dist.LogNormalMedTail(150*time.Millisecond, 300*time.Millisecond),
		WarmGenericPool: false,
		PooledInit:      dist.LogNormalMedTail(20*time.Millisecond, 60*time.Millisecond),
		RuntimeInit: map[string]dist.Dist{
			cloud.RuntimeMethodKey(cloud.RuntimePython, cloud.DeployZIP): dist.LogNormalMedTail(330*time.Millisecond, 700*time.Millisecond),
			cloud.RuntimeMethodKey(cloud.RuntimeGo, cloud.DeployZIP):     dist.LogNormalMedTail(20*time.Millisecond, 60*time.Millisecond),
		},

		ImageStore: blobstore.Config{
			Name: "gcf-image-store",
			// Heavy-tailed base latency drives the Fig. 4 TMR of 3.6;
			// very high bandwidth makes fetches size-insensitive.
			GetLatency: dist.NewMixture(
				dist.Component{Weight: 0.98, D: dist.LogNormalMedTail(290*time.Millisecond, 780*time.Millisecond)},
				dist.Component{Weight: 0.02, D: dist.LogNormalMedTail(1100*time.Millisecond, 2400*time.Millisecond)},
			),
			GetBandwidthBps:    12e9,
			BandwidthJitterPct: 0.15,
			// Store-side queueing of uncached reads: mass cold starts ramp
			// up linearly (burst 100 median ~1.8s, burst 300 higher)...
			MissCongestionUnit: 19 * time.Millisecond,
			// ...until the load-adaptive cache kicks in near 300
			// concurrent fetches, at which point later requests bypass the
			// queue entirely (burst 500 cheaper than burst 300).
			Cache: blobstore.CacheConfig{
				Enabled:          true,
				ActivationCount:  300,
				ActivationWindow: 2 * time.Minute,
				TTL:              3 * time.Minute,
				HitLatency:       dist.LogNormalMedTail(20*time.Millisecond, 60*time.Millisecond),
				HitBandwidthBps:  12e9,
			},
		},
		PayloadStore: blobstore.Config{
			Name: "gcs",
			GetLatency: dist.NewMixture(
				dist.Component{Weight: 0.965, D: dist.LogNormalMedTail(55*time.Millisecond, 260*time.Millisecond)},
				dist.Component{Weight: 0.035, D: dist.LogNormalMedTail(2500*time.Millisecond, 6000*time.Millisecond)},
			),
			PutLatency: dist.NewMixture(
				dist.Component{Weight: 0.965, D: dist.LogNormalMedTail(55*time.Millisecond, 260*time.Millisecond)},
				dist.Component{Weight: 0.035, D: dist.LogNormalMedTail(2500*time.Millisecond, 6000*time.Millisecond)},
			),
			GetBandwidthBps:    850e6,
			PutBandwidthBps:    850e6,
			BandwidthJitterPct: 0.2,
		},

		InlineLimitBytes:   10 << 20, // 10MB (§VI-C1)
		InlineBandwidthBps: 152e6,
		InlineJitterPct:    0.2,

		// Stochastic keep-alive: idle instances are mostly gone after the
		// paper's 15-minute long IAT.
		KeepAlive:         cloud.KeepAlivePolicy{Dist: dist.Uniform{Min: time.Minute, Max: 10 * time.Minute}},
		DefaultMemoryMB:   2048,
		FullSpeedMemoryMB: 2048,
		Workers:           64,
	}
}
