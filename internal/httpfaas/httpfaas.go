// Package httpfaas serves a simulated serverless cloud as live HTTP
// endpoints. The simulation runs on a real-time DES engine (optionally with
// compressed time), so STeLLAR's HTTP client path — goroutine per request,
// real sockets, wall-clock latency measurement — can be exercised
// end-to-end against the modeled providers without any cloud account.
package httpfaas

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
)

// InvokeReply is the JSON body returned for each invocation; it carries the
// same instrumentation a STeLLAR function returns (timestamps concatenated
// into the response, §IV).
type InvokeReply struct {
	Function     string           `json:"function"`
	Cold         bool             `json:"cold"`
	InstanceID   int              `json:"instance_id"`
	QueueWaitNS  int64            `json:"queue_wait_ns"`
	SimLatencyNS int64            `json:"sim_latency_ns"`
	Timestamps   map[string]int64 `json:"timestamps,omitempty"`
}

// Server hosts one simulated cloud behind an HTTP listener.
type Server struct {
	eng       *des.Engine
	cloud     *cloud.Cloud
	sim       *core.SimProvider
	timeScale float64

	mu       sync.Mutex
	listener net.Listener
	httpSrv  *http.Server
	stop     chan struct{}
	running  bool
	baseURL  string
}

// NewServer builds a server for the given provider profile. timeScale
// compresses virtual time (10 = ten virtual seconds per wall second);
// 1 serves in real time.
func NewServer(cfg cloud.Config, seed int64, timeScale float64) (*Server, error) {
	eng := des.NewRealTimeEngine(timeScale)
	cl, err := cloud.New(eng, cfg, dist.NewStreams(seed))
	if err != nil {
		return nil, err
	}
	return &Server{
		eng:       eng,
		cloud:     cl,
		sim:       &core.SimProvider{Cloud: cl},
		timeScale: timeScale,
		stop:      make(chan struct{}),
	}, nil
}

// Cloud exposes the underlying simulated cloud. While the server is
// running, cloud state must only be read from simulation context (via
// Inject); use Metrics for a race-free counter snapshot.
func (s *Server) Cloud() *cloud.Cloud { return s.cloud }

// Metrics returns a snapshot of the cloud's counters. When the server is
// running, the snapshot is taken inside the simulation loop so it cannot
// race live event processing (keep-alive expiries mutate counters at any
// wall-clock moment).
func (s *Server) Metrics() cloud.Metrics {
	s.mu.Lock()
	running := s.running
	s.mu.Unlock()
	if !running {
		return s.cloud.Metrics()
	}
	done := make(chan cloud.Metrics, 1)
	s.eng.Inject(func() { done <- s.cloud.Metrics() })
	select {
	case m := <-done:
		return m
	case <-time.After(10 * time.Second):
		return s.cloud.Metrics()
	}
}

// BaseURL returns the listener address ("http://127.0.0.1:PORT") once
// started.
func (s *Server) BaseURL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.baseURL
}

// Start listens on addr (":0" for an ephemeral port) and begins servicing
// the simulation and HTTP requests.
func (s *Server) Start(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return fmt.Errorf("httpfaas: server already running")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("httpfaas: listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/fn/", s.handleInvoke)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.listener = ln
	s.httpSrv = &http.Server{Handler: mux}
	s.baseURL = "http://" + ln.Addr().String()
	s.running = true
	go s.eng.RunRealTime(s.stop)
	go func() { _ = s.httpSrv.Serve(ln) }()
	return nil
}

// Stop shuts the server down. Safe to call once.
func (s *Server) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return
	}
	close(s.stop)
	_ = s.httpSrv.Close()
	s.running = false
}

// Deploy registers functions while the server is running; the deployment
// executes inside the simulation loop. It returns HTTP endpoints.
func (s *Server) Deploy(fc core.FunctionConfig) ([]core.Endpoint, error) {
	type depResult struct {
		eps []core.Endpoint
		err error
	}
	done := make(chan depResult, 1)
	s.eng.Inject(func() {
		eps, err := s.sim.Deploy(fc)
		done <- depResult{eps, err}
	})
	select {
	case res := <-done:
		if res.err != nil {
			return nil, res.err
		}
		base := s.BaseURL()
		for i := range res.eps {
			res.eps[i].URL = base + "/fn/" + res.eps[i].Function
		}
		return res.eps, nil
	case <-time.After(10 * time.Second):
		return nil, fmt.Errorf("httpfaas: deploy timed out (server not started?)")
	}
}

// Provider adapts the server as a core.Provider plugin so STeLLAR's
// deployer drives live-HTTP deployments exactly like simulated ones.
func (s *Server) Provider() core.Provider { return httpProvider{s} }

type httpProvider struct{ s *Server }

func (p httpProvider) Name() string { return p.s.cloud.Config().Name }
func (p httpProvider) Deploy(fc core.FunctionConfig) ([]core.Endpoint, error) {
	return p.s.Deploy(fc)
}
func (p httpProvider) Teardown(base string) error {
	done := make(chan error, 1)
	p.s.eng.Inject(func() { done <- p.s.sim.Teardown(base) })
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		return fmt.Errorf("httpfaas: teardown timed out")
	}
}

// handleInvoke services one function invocation over HTTP. Query
// parameters: exec_ms overrides the busy-spin time, payload overrides the
// chain payload bytes.
func (s *Server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/fn/")
	if name == "" {
		http.Error(w, "missing function name", http.StatusBadRequest)
		return
	}
	req := &cloud.Request{Fn: name}
	if v := r.URL.Query().Get("exec_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			http.Error(w, "bad exec_ms", http.StatusBadRequest)
			return
		}
		req.ExecTime = time.Duration(ms) * time.Millisecond
	}
	if v := r.URL.Query().Get("payload"); v != "" {
		b, err := strconv.ParseInt(v, 10, 64)
		if err != nil || b < 0 {
			http.Error(w, "bad payload", http.StatusBadRequest)
			return
		}
		req.ChainPayloadBytes = b
	}

	type invResult struct {
		resp *cloud.Response
		lat  time.Duration
		err  error
	}
	done := make(chan invResult, 1)
	s.eng.Inject(func() {
		s.eng.Spawn("http/"+name, func(p *des.Proc) {
			start := p.Now()
			resp, err := s.cloud.Invoke(p, req)
			done <- invResult{resp, p.Now() - start, err}
		})
	})

	select {
	case res := <-done:
		if res.err != nil {
			http.Error(w, res.err.Error(), http.StatusInternalServerError)
			return
		}
		reply := InvokeReply{
			Function:     name,
			Cold:         res.resp.Cold,
			InstanceID:   res.resp.InstanceID,
			QueueWaitNS:  int64(res.resp.QueueWait),
			SimLatencyNS: int64(res.lat),
		}
		if len(res.resp.Timestamps) > 0 {
			reply.Timestamps = make(map[string]int64, len(res.resp.Timestamps))
			for k, v := range res.resp.Timestamps {
				reply.Timestamps[k] = int64(v)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(reply)
	case <-r.Context().Done():
		http.Error(w, "client gone", http.StatusRequestTimeout)
	case <-time.After(5 * time.Minute):
		http.Error(w, "invocation timed out", http.StatusGatewayTimeout)
	}
}
