package cloud

import (
	"testing"
	"time"
)

func TestFanoutParallelInvocation(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "worker", Runtime: RuntimeGo, ExecTime: 500 * time.Millisecond})
	deploy(t, c, FunctionSpec{Name: "scatter", Runtime: RuntimeGo,
		Chain: &ChainSpec{Next: "worker", Transfer: TransferInline, PayloadBytes: 1 << 10, Fanout: 4}})
	// Warm everything: one scatter round creates four worker instances.
	invokeAt(eng, c, 0, &Request{Fn: "scatter"})
	warm := invokeAt(eng, c, time.Minute, &Request{Fn: "scatter"})
	eng.Run(2 * time.Minute)
	if warm.err != nil {
		t.Fatal(warm.err)
	}
	// Four parallel 500ms workers complete in ~one worker's latency, far
	// below 4x sequential.
	down := warm.resp.Breakdown.Downstream
	if down < 500*time.Millisecond {
		t.Fatalf("downstream %v shorter than one worker execution", down)
	}
	if down > 900*time.Millisecond {
		t.Fatalf("downstream %v looks sequential, want parallel (~550ms)", down)
	}
	if got := c.Metrics().InternalInvocations; got != 8 {
		t.Fatalf("internal invocations = %d, want 8 (two rounds of fanout 4)", got)
	}
	if warm.resp.Breakdown.Total() != warm.lat {
		t.Fatalf("breakdown %v != latency %v", warm.resp.Breakdown.Total(), warm.lat)
	}
}

func TestFanoutStorageBroadcast(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "worker", Runtime: RuntimeGo})
	deploy(t, c, FunctionSpec{Name: "scatter", Runtime: RuntimeGo,
		Chain: &ChainSpec{Next: "worker", Transfer: TransferStorage, PayloadBytes: 1e6, Fanout: 3}})
	r := invokeAt(eng, c, 0, &Request{Fn: "scatter"})
	eng.Run(time.Minute)
	if r.err != nil {
		t.Fatal(r.err)
	}
	m := c.PayloadStore().Metrics()
	// One producer PUT, one GET per fanned-out consumer.
	if m.Puts != 1 || m.Gets != 3 {
		t.Fatalf("payload store ops = %+v, want 1 put / 3 gets", m)
	}
}

func TestFanoutDownstreamFailurePropagates(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "scatter", Runtime: RuntimeGo,
		Chain: &ChainSpec{Next: "ghost", Transfer: TransferInline, PayloadBytes: 1, Fanout: 3}})
	r := invokeAt(eng, c, 0, &Request{Fn: "scatter"})
	eng.Run(time.Minute)
	if r.err == nil {
		t.Fatal("expected chain error from fanned-out invocations")
	}
}

func TestFanoutOneEqualsSequential(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "worker", Runtime: RuntimeGo})
	deploy(t, c, FunctionSpec{Name: "chain1", Runtime: RuntimeGo,
		Chain: &ChainSpec{Next: "worker", Transfer: TransferInline, PayloadBytes: 1 << 10, Fanout: 1}})
	r := invokeAt(eng, c, 0, &Request{Fn: "chain1"})
	eng.Run(time.Minute)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if c.Metrics().InternalInvocations != 1 {
		t.Fatalf("internal invocations = %d, want 1", c.Metrics().InternalInvocations)
	}
	if _, ok := r.resp.TransferTime("chain1", "worker"); !ok {
		t.Fatal("timestamps missing for fanout=1 chain")
	}
}
