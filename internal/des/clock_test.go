package des

import (
	"testing"
	"time"
)

func TestClockConversions(t *testing.T) {
	cases := []struct {
		t      Time
		micros float64
		millis float64
	}{
		{0, 0, 0},
		{Time(time.Microsecond), 1, 0.001},
		{Time(time.Millisecond), 1000, 1},
		{Time(1500 * time.Nanosecond), 1.5, 0.0015},
		{Time(2 * time.Second), 2e6, 2000},
	}
	for _, c := range cases {
		if got := Micros(c.t); got != c.micros {
			t.Errorf("Micros(%v) = %v, want %v", c.t, got, c.micros)
		}
		if got := Millis(c.t); got != c.millis {
			t.Errorf("Millis(%v) = %v, want %v", c.t, got, c.millis)
		}
	}
}
