package stress

import (
	"fmt"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/stats/sketch"
)

// DESResult is the virtual-time twin of a stress run: the same provider
// profile, seed, and arrival schedule executed as a pure discrete-event
// simulation. Comparing its quantiles with the real-socket run's separates
// what the model predicts from what the wire adds.
type DESResult struct {
	// Latency is the virtual-time invocation latency distribution.
	Latency *sketch.Sketch

	Requests uint64
	Errors   uint64
	Colds    uint64

	// VirtualElapsed is the simulated span from first arrival to the last
	// event.
	VirtualElapsed time.Duration
}

// RunDES replays a stress plan in virtual time against a fresh simulated
// cloud built from the same provider profile and seed. The schedule is
// byte-identical to the real run's — the same per-worker shards and the
// same named Poisson streams — so the two runs issue the same arrival
// sequence; only the clock differs. Arrivals use the callback fast path
// (PR 6), so multi-million-request twins finish in seconds.
func RunDES(o Options, cfg cloud.Config, fc core.FunctionConfig) (*DESResult, error) {
	opts := o.withDefaults()
	p, err := newPlan(opts)
	if err != nil {
		return nil, err
	}

	eng := des.NewEngine()
	cl, err := cloud.New(eng, cfg, dist.NewStreams(opts.Seed))
	if err != nil {
		return nil, err
	}
	sim := &core.SimProvider{Cloud: cl}
	if _, err := sim.Deploy(fc); err != nil {
		return nil, fmt.Errorf("stress: DES twin deploy: %w", err)
	}

	res := &DESResult{Latency: sketch.New(opts.Alpha)}
	cl.SetLatencyRecorder(res.Latency)

	req := &cloud.Request{
		Fn:                fc.Name,
		ExecTime:          opts.ExecTime,
		ChainPayloadBytes: opts.PayloadBytes,
	}
	done := func(resp *cloud.Response, err error) {
		res.Requests++
		if err != nil {
			res.Errors++
			return
		}
		if resp.Cold {
			res.Colds++
		}
	}

	// One self-rescheduling callback chain per worker, mirroring the real
	// fleet's per-worker schedule shards. Epoch 0 = run start.
	epoch := eng.Now()
	for w := 0; w < opts.Workers; w++ {
		sched := p.workerSchedule(w)
		var arrive func()
		arrive = func() {
			cl.InvokeAsync(req, done)
			if off, ok := sched.next(); ok {
				eng.CallAt(epoch+des.Time(off), arrive)
			}
		}
		if off, ok := sched.next(); ok {
			eng.CallAt(epoch+des.Time(off), arrive)
		}
	}

	eng.Run(0)
	res.VirtualElapsed = time.Duration(eng.Now() - epoch)
	if res.Requests == 0 {
		return nil, fmt.Errorf("stress: DES twin completed no requests")
	}
	return res, nil
}
