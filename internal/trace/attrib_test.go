package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// attribFixture builds n tiling traces with frontend, queue-wait, exec, and
// response stages; queue-wait grows with rank so the tail is queue-dominated.
func attribFixture(n int) []RequestRecord {
	rng := rand.New(rand.NewSource(11))
	recs := make([]RequestRecord, 0, n)
	for i := 0; i < n; i++ {
		queue := time.Duration(rng.Intn(i+1)) * time.Millisecond
		recs = append(recs, buildRec(uint64(i), i%4, time.Duration(i)*time.Second,
			stageDur{StageFrontend, time.Millisecond, 0},
			stageDur{StageQueueWait, queue + time.Microsecond, 1},
			stageDur{StageExec, 20 * time.Millisecond, 1},
			stageDur{StageResponse, time.Millisecond, 0},
		))
	}
	return recs
}

func TestAttributeSharesSumToOne(t *testing.T) {
	recs := attribFixture(500)
	a := Attribute(recs, nil)
	if a == nil || a.Requests != 500 {
		t.Fatalf("Attribute returned %+v", a)
	}
	if len(a.Quantiles) != len(DefaultQuantiles) {
		t.Fatalf("quantiles = %v", a.Quantiles)
	}
	for qi := range a.Quantiles {
		var sum float64
		var meanSum time.Duration
		for _, row := range a.Stages {
			sum += row.Share[qi]
			meanSum += row.Mean[qi]
		}
		// Stage means are integer-truncated per bucket; allow 1ns per bucket.
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("q=%v: stage shares sum to %v, want 1", a.Quantiles[qi], sum)
		}
		if qs := a.QueueShare[qi] + a.ServiceShare[qi]; math.Abs(qs-1) > 1e-9 {
			t.Errorf("q=%v: queue+service share = %v, want 1", a.Quantiles[qi], qs)
		}
		if a.Window[qi] < 1 {
			t.Errorf("q=%v: empty window", a.Quantiles[qi])
		}
	}
	// Quantile totals must be non-decreasing (p50 <= p99 <= p99.9).
	for qi := 1; qi < len(a.Totals); qi++ {
		if a.Totals[qi] < a.Totals[qi-1] {
			t.Fatalf("totals not monotone: %v", a.Totals)
		}
	}
	// The fixture's tail is queue-dominated: queue share must grow with q.
	if a.QueueShare[len(a.QueueShare)-1] <= a.QueueShare[0] {
		t.Fatalf("queue share did not grow toward the tail: %v", a.QueueShare)
	}
}

func TestAttributeStageOrderPipeline(t *testing.T) {
	a := Attribute(attribFixture(100), []float64{0.5})
	order := map[string]int{}
	for i, row := range a.Stages {
		order[row.Stage] = i
	}
	for _, pair := range [][2]string{{"frontend", "queue-wait"}, {"queue-wait", "exec"}, {"exec", "response"}} {
		if order[pair[0]] >= order[pair[1]] {
			t.Fatalf("stage %q not before %q in %v", pair[0], pair[1], a.Stages)
		}
	}
}

func TestAttributeFoldsRetriedAttempts(t *testing.T) {
	rec := buildRec(1, 0, 0,
		stageDur{StageFrontend, time.Millisecond, 0},
		stageDur{StageQueueWait, 2 * time.Millisecond, 1},
		stageDur{StageExec, 3 * time.Millisecond, 1}, // failed attempt
		stageDur{StageRetryBackoff, 4 * time.Millisecond, 0},
		stageDur{StageQueueWait, 5 * time.Millisecond, 2},
		stageDur{StageExec, 6 * time.Millisecond, 2}, // final attempt
	)
	a := Attribute([]RequestRecord{rec}, []float64{0.5})
	byStage := map[string]time.Duration{}
	for _, row := range a.Stages {
		byStage[row.Stage] = row.Mean[0]
	}
	// Attempt-1 spans (2+3ms) and the backoff (4ms) fold into retried; the
	// final attempt keeps its own stages.
	if got := byStage[attribRetried]; got != 9*time.Millisecond {
		t.Fatalf("retried bucket = %v, want 9ms", got)
	}
	if got := byStage["exec"]; got != 6*time.Millisecond {
		t.Fatalf("exec bucket = %v, want 6ms (final attempt only)", got)
	}
	if got := byStage["queue-wait"]; got != 5*time.Millisecond {
		t.Fatalf("queue-wait bucket = %v, want 5ms (final attempt only)", got)
	}
	if a.Stages[len(a.Stages)-1].Stage != attribRetried {
		t.Fatalf("retried bucket not last: %v", a.Stages)
	}
}

func TestAttributeIgnoresColdDetail(t *testing.T) {
	rec := buildRec(1, 0, 0,
		stageDur{StageQueueWait, 10 * time.Millisecond, 1},
		stageDur{StageExec, 10 * time.Millisecond, 1},
	)
	rec.Spans = append(rec.Spans, SpanRecord{
		Stage: StageColdSandboxBoot.String(), StartNS: 0, DurNS: int64(9 * time.Millisecond), Detail: true,
	})
	a := Attribute([]RequestRecord{rec}, []float64{0.5})
	var sum float64
	for _, row := range a.Stages {
		sum += row.Share[0]
		if strings.HasPrefix(row.Stage, "cold/") {
			t.Fatalf("cold detail leaked into attribution: %v", row)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v with detail spans present, want 1", sum)
	}
}

func TestAttributeEmpty(t *testing.T) {
	if a := Attribute(nil, nil); a != nil {
		t.Fatalf("Attribute(nil) = %+v, want nil", a)
	}
}

func TestAttributionWrite(t *testing.T) {
	var buf bytes.Buffer
	Attribute(attribFixture(200), nil).Write(&buf)
	out := buf.String()
	for _, want := range []string{"tail attribution", "p99", "queue-wait share", "service share", "exec"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
