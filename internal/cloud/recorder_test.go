package cloud

import (
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/stats"
)

// TestLatencyRecorderObservesExternalSuccesses pins the Recorder seam's
// contract: every successful external invocation records exactly its
// client-observed latency; internal chain hops and failures do not record.
func TestLatencyRecorderObservesExternalSuccesses(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	rec := stats.NewSample(0)
	c.SetLatencyRecorder(rec)
	deploy(t, c, FunctionSpec{Name: "f"})

	results := make([]*result, 5)
	for i := range results {
		results[i] = invokeAt(eng, c, time.Duration(i)*time.Second, &Request{Fn: "f"})
	}
	eng.Run(0)

	if got := rec.Len(); got != len(results) {
		t.Fatalf("recorder saw %d latencies for %d invocations", got, len(results))
	}
	observed := make(map[time.Duration]int)
	for _, r := range results {
		if r.err != nil {
			t.Fatal(r.err)
		}
		observed[r.lat]++
	}
	for _, v := range rec.Values() {
		if observed[v] == 0 {
			t.Fatalf("recorder holds latency %v that no client observed", v)
		}
		observed[v]--
	}
}

// TestLatencyRecorderSkipsInternalHops: a chained invocation is one client
// observation, not one per hop.
func TestLatencyRecorderSkipsInternalHops(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	rec := stats.NewSample(0)
	c.SetLatencyRecorder(rec)
	deploy(t, c, FunctionSpec{Name: "consumer"})
	deploy(t, c, FunctionSpec{Name: "producer",
		Chain: &ChainSpec{Next: "consumer", Transfer: TransferInline, PayloadBytes: 1024}})

	r := invokeAt(eng, c, 0, &Request{Fn: "producer"})
	eng.Run(0)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if rec.Len() != 1 {
		t.Fatalf("chained invocation recorded %d latencies, want 1", rec.Len())
	}
	if rec.Values()[0] != r.lat {
		t.Fatalf("recorded %v, client observed %v", rec.Values()[0], r.lat)
	}
}

// TestLatencyRecorderSkipsFailures: invocations that surface an error to
// the client must not pollute the latency distribution (the run layers
// count them as Errors instead).
func TestLatencyRecorderSkipsFailures(t *testing.T) {
	cfg := testConfig()
	cfg.Faults.CrashProb = 1 // every invocation crashes, no retries
	eng, c := newTestCloud(t, cfg)
	rec := stats.NewSample(0)
	c.SetLatencyRecorder(rec)
	deploy(t, c, FunctionSpec{Name: "f"})

	r := invokeAt(eng, c, 0, &Request{Fn: "f"})
	eng.Run(0)
	if r.err == nil {
		t.Fatal("expected the crash to surface")
	}
	if rec.Len() != 0 {
		t.Fatalf("failed invocation recorded %d latencies, want 0", rec.Len())
	}
}

// TestLatencyRecorderNilIsUntouchedPath: the default nil recorder keeps
// Invoke behavior identical (smoke for the seam's zero-cost default).
func TestLatencyRecorderNilIsUntouchedPath(t *testing.T) {
	eng, c := newTestCloud(t, testConfig())
	deploy(t, c, FunctionSpec{Name: "f"})
	r := invokeAt(eng, c, 0, &Request{Fn: "f"})
	eng.Run(0)
	if r.err != nil {
		t.Fatal(r.err)
	}
	c.SetLatencyRecorder(nil) // explicit nil install is also a no-op
	r2 := invokeAt(eng, c, time.Hour, &Request{Fn: "f"})
	eng.Run(0)
	if r2.err != nil {
		t.Fatal(r2.err)
	}
}

var _ LatencyRecorder = (*stats.Sample)(nil)
