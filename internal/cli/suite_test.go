package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validSuite = `{
  "experiments": [
    {
      "name": "warm-aws",
      "static": {"provider": "aws", "functions": [
        {"name": "w", "runtime": "python3", "method": "zip"}]},
      "runtime": {"samples": 30, "iat": "3s", "warmup_discard": 1}
    },
    {
      "name": "chain-google",
      "static": {"provider": "google", "functions": [
        {"name": "c", "runtime": "go1.x", "method": "zip",
         "chain": {"length": 2, "transfer": "inline", "payload_bytes": 4096}}]},
      "runtime": {"samples": 20, "iat": "3s", "warmup_discard": 2}
    }
  ]
}`

func TestSuiteCommand(t *testing.T) {
	cfg := writeTestFile(t, "suite.json", validSuite)
	csvDir := t.TempDir()
	code, out, errOut := run(t, "suite", "-config", cfg, "-csv-dir", csvDir)
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	for _, want := range []string{
		"suite: 2 experiments", "== warm-aws", "== chain-google",
		"transfer:", "== suite summary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("suite output missing %q", want)
		}
	}
	for _, name := range []string{"warm-aws.csv", "chain-google.csv"} {
		if _, err := os.Stat(filepath.Join(csvDir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

// TestSuiteWorkersDeterminism: the suite's report must be byte-identical
// at any -workers setting (each experiment buffers its output and draws
// randomness from its own shard stream).
func TestSuiteWorkersDeterminism(t *testing.T) {
	cfg := writeTestFile(t, "suite.json", validSuite)
	var outs []string
	for _, workers := range []string{"1", "4"} {
		code, out, errOut := run(t, "suite", "-config", cfg, "-workers", workers)
		if code != 0 {
			t.Fatalf("workers=%s: code=%d err=%q", workers, code, errOut)
		}
		outs = append(outs, out)
	}
	if outs[0] != outs[1] {
		t.Errorf("suite output differs between -workers 1 and -workers 4\n--- workers=1 ---\n%s--- workers=4 ---\n%s",
			outs[0], outs[1])
	}
}

func TestSuiteCommandErrors(t *testing.T) {
	code, _, errOut := run(t, "suite")
	if code != 1 || !strings.Contains(errOut, "-config is required") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	code, _, _ = run(t, "suite", "-config", "/does/not/exist.json")
	if code != 1 {
		t.Fatalf("missing file: code=%d", code)
	}
	empty := writeTestFile(t, "empty.json", `{"experiments": []}`)
	code, _, errOut = run(t, "suite", "-config", empty)
	if code != 1 || !strings.Contains(errOut, "no experiments") {
		t.Fatalf("empty suite: code=%d err=%q", code, errOut)
	}
	dup := writeTestFile(t, "dup.json", `{"experiments": [
		{"name": "x", "static": {"provider": "aws", "functions": [{"name": "f"}]},
		 "runtime": {"samples": 5, "iat": "1s"}},
		{"name": "x", "static": {"provider": "aws", "functions": [{"name": "f"}]},
		 "runtime": {"samples": 5, "iat": "1s"}}
	]}`)
	code, _, errOut = run(t, "suite", "-config", dup)
	if code != 1 || !strings.Contains(errOut, "duplicate") {
		t.Fatalf("dup suite: code=%d err=%q", code, errOut)
	}
	badProvider := writeTestFile(t, "badprov.json", `{"experiments": [
		{"name": "x", "static": {"provider": "oracle", "functions": [{"name": "f", "runtime": "python3"}]},
		 "runtime": {"samples": 5, "iat": "1s"}}
	]}`)
	code, _, errOut = run(t, "suite", "-config", badProvider)
	if code != 1 || !strings.Contains(errOut, "unknown provider") {
		t.Fatalf("bad provider: code=%d err=%q", code, errOut)
	}
}

func TestSuiteValidateUnnamed(t *testing.T) {
	unnamed := writeTestFile(t, "unnamed.json", `{"experiments": [
		{"static": {"provider": "aws", "functions": [{"name": "f"}]},
		 "runtime": {"samples": 5, "iat": "1s"}}
	]}`)
	code, _, errOut := run(t, "suite", "-config", unnamed)
	if code != 1 || !strings.Contains(errOut, "no name") {
		t.Fatalf("unnamed: code=%d err=%q", code, errOut)
	}
}
