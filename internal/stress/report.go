package stress

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/stellar-repro/stellar/internal/stats/sketch"
)

// reportQuantiles is the ladder every stress table prints.
var reportQuantiles = []float64{0.50, 0.90, 0.95, 0.99, 0.999, 0.9999}

// WriteReport renders a stress run: schedule and fleet facts, connection
// reuse, the send-lag health check, the coordinated-omission-safe
// intended-time quantile ladder next to the service-time one, and — when a
// DES twin ran — the virtual-vs-real tail comparison. timeScale is the
// httpfaas compression factor: real wall latencies are multiplied by it to
// land in virtual units, mirroring how the server compressed them.
func WriteReport(w io.Writer, o Options, res *Result, twin *DESResult, timeScale float64) {
	opts := o.withDefaults()
	mode := "open-loop (CO-safe)"
	if res.ClosedLoop {
		mode = "CLOSED-loop (coordinated-omission-prone control)"
	}
	fmt.Fprintf(w, "stress run: %s\n", opts.URL)
	switch opts.Arrival {
	case ArrivalTrace:
		fmt.Fprintf(w, "arrivals: trace (%d intervals of %v), %d workers, client=%s, seed=%d\n",
			len(opts.TraceCounts), opts.TraceInterval, opts.Workers, opts.Client, opts.Seed)
	default:
		fmt.Fprintf(w, "arrivals: %s @ %.0f req/s, %d workers, client=%s, seed=%d\n",
			opts.Arrival, opts.Rate, opts.Workers, opts.Client, opts.Seed)
	}
	fmt.Fprintf(w, "mode: %s\n", mode)
	fmt.Fprintf(w, "requests: %d (errors=%d colds=%d)  elapsed=%v  achieved=%.0f req/s\n",
		res.Requests, res.Errors, res.Colds, res.Elapsed.Round(time.Millisecond), res.AchievedRPS)
	fmt.Fprintf(w, "connections: dials=%d reused=%d\n", res.Dials, res.Reused)
	if res.SendLag.Count() > 0 {
		fmt.Fprintf(w, "send lag:%s  max=%v\n",
			quantileRow(res.SendLag), res.SendLag.Summarize().Max.Round(time.Microsecond))
	}
	if res.Intended.Count() > 0 {
		fmt.Fprintf(w, "latency (intended-time):%s\n", quantileRow(res.Intended))
		fmt.Fprintf(w, "latency (service-time): %s\n", quantileRow(res.Service))
	}
	if res.SimVirtual.Count() > 0 {
		fmt.Fprintf(w, "in-reply sim latency:   %s  (virtual time, from response bodies)\n",
			quantileRow(res.SimVirtual))
	}
	if twin != nil {
		fmt.Fprintf(w, "\nDES twin: same profile, same seed, same schedule, virtual clock\n")
		fmt.Fprintf(w, "twin requests: %d (errors=%d colds=%d)  virtual elapsed=%v\n",
			twin.Requests, twin.Errors, twin.Colds, twin.VirtualElapsed.Round(time.Millisecond))
		fmt.Fprintf(w, "%-10s %14s %14s %14s\n", "quantile", "real (virt-eq)", "DES virtual", "delta")
		for _, q := range reportQuantiles {
			wall := scaleDuration(res.Intended.Quantile(q), timeScale)
			virt := twin.Latency.Quantile(q)
			fmt.Fprintf(w, "p%-9g %14v %14v %+14v\n",
				q*100, wall.Round(time.Microsecond), virt.Round(time.Microsecond),
				(wall - virt).Round(time.Microsecond))
		}
		if timeScale != 1 {
			fmt.Fprintf(w, "(real latencies multiplied by timescale %g to compare in virtual units)\n", timeScale)
		}
	}
}

// quantileRow renders the standard ladder for one sketch.
func quantileRow(s *sketch.Sketch) string {
	var b strings.Builder
	for _, q := range reportQuantiles {
		fmt.Fprintf(&b, " p%g=%v", q*100, s.Quantile(q).Round(time.Microsecond))
	}
	return b.String()
}

// scaleDuration multiplies a wall duration by the timescale factor.
func scaleDuration(d time.Duration, scale float64) time.Duration {
	if scale == 1 || scale <= 0 {
		return d
	}
	return time.Duration(float64(d) * scale)
}

// WriteCDF writes the intended-time and service-time distributions as CSV
// (latency_ns, cdf fraction, series) for external plotting.
func WriteCDF(w io.Writer, res *Result) error {
	if _, err := fmt.Fprintln(w, "series,latency_ns,cdf"); err != nil {
		return err
	}
	for _, series := range []struct {
		name string
		s    *sketch.Sketch
	}{{"intended", res.Intended}, {"service", res.Service}} {
		name, s := series.name, series.s
		if s.Count() == 0 {
			continue
		}
		for _, p := range s.CDF() {
			if _, err := fmt.Fprintf(w, "%s,%d,%.6f\n", name, int64(p.Value), p.Frac); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadTraceCounts reads a per-interval arrival-count file: one non-negative
// integer per line (arrivals in that interval), blank lines and #-comments
// ignored — the shape `azuretrace` invocation rows reduce to.
func LoadTraceCounts(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stress: open trace: %w", err)
	}
	defer f.Close()
	var counts []uint64
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stress: trace %s line %d: %q is not a non-negative count", path, line, s)
		}
		counts = append(counts, n)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stress: read trace: %w", err)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("stress: trace %s has no counts", path)
	}
	return counts, nil
}
