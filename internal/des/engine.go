// Package des implements a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock over a heap of scheduled events.
// Concurrent activities are modeled as cooperative processes: each process
// is a goroutine, but the engine guarantees that at most one process runs at
// any instant, so state shared between processes needs no locking and every
// run with the same inputs produces the same event ordering (events at equal
// times are tie-broken by scheduling sequence number).
//
// The engine also supports a real-time mode in which virtual delays are
// slept on the wall clock (optionally scaled) and external goroutines may
// inject work with Engine.Inject; this mode backs the live-HTTP serving of
// the simulated cloud.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Time is a virtual timestamp, measured as a duration since the start of the
// simulation. Using time.Duration gives nanosecond resolution and convenient
// formatting.
type Time = time.Duration

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64
	fire func()
	// canceled events stay in the heap but do nothing when popped.
	canceled bool
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled callback that can be canceled.
type Timer struct{ ev *event }

// Cancel prevents the timer's callback from firing. Canceling an already
// fired or canceled timer is a no-op. Cancel reports whether the callback
// was prevented.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.fire == nil {
		return false
	}
	t.ev.canceled = true
	return true
}

// Engine is a discrete-event simulation engine. The zero value is not usable;
// call NewEngine.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64

	// Process coordination: the engine resumes one process and then waits on
	// parked until that process blocks again or exits.
	parked chan struct{}

	procs   map[*Proc]struct{}
	stopped bool

	// Real-time mode.
	realTime  bool
	timeScale float64 // virtual seconds per wall second multiplier (1 = real time)
	injectMu  sync.Mutex
	injected  []func()
	injectCh  chan struct{} // signaled when something is injected
	started   time.Time
}

// NewEngine returns an engine with the virtual clock at zero.
func NewEngine() *Engine {
	return &Engine{
		parked:   make(chan struct{}),
		procs:    make(map[*Proc]struct{}),
		injectCh: make(chan struct{}, 1),
	}
}

// NewRealTimeEngine returns an engine that, when run, paces event delivery on
// the wall clock. timeScale compresses virtual time: with timeScale 10, ten
// virtual seconds elapse per wall-clock second. timeScale <= 0 panics.
func NewRealTimeEngine(timeScale float64) *Engine {
	if timeScale <= 0 {
		panic(fmt.Sprintf("des: invalid time scale %v", timeScale))
	}
	e := NewEngine()
	e.realTime = true
	e.timeScale = timeScale
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// schedule registers fn to run at time at (>= now) and returns its event.
func (e *Engine) schedule(at Time, fn func()) *event {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, fire: fn}
	heap.Push(&e.events, ev)
	return ev
}

// At schedules fn to run at the given virtual time and returns a cancelable
// Timer. Must be called from simulation context (a process or event callback).
func (e *Engine) At(at Time, fn func()) *Timer {
	return &Timer{ev: e.schedule(at, fn)}
}

// After schedules fn to run d from now.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// errKilled is the sentinel used to unwind killed processes.
var errKilled = errors.New("des: process killed")

// Run drains events until the heap is empty or the virtual clock would pass
// until. A zero until means run until no events remain. Processes blocked on
// resources or signals when Run returns remain parked; use Close to release
// them.
func (e *Engine) Run(until Time) {
	for len(e.events) > 0 {
		next := e.events[0]
		if until != 0 && next.at > until {
			e.now = until
			return
		}
		heap.Pop(&e.events)
		if next.canceled {
			continue
		}
		if e.realTime {
			e.waitWall(next.at)
			e.drainInjected()
		}
		e.now = next.at
		fn := next.fire
		next.fire = nil
		fn()
	}
	if until != 0 && until > e.now {
		e.now = until
	}
}

// RunRealTime services events forever in real-time mode, blocking the calling
// goroutine. It returns when stop is closed. Injected work (via Inject) wakes
// the loop immediately.
func (e *Engine) RunRealTime(stop <-chan struct{}) {
	if !e.realTime {
		panic("des: RunRealTime on a virtual-time engine")
	}
	e.started = time.Now()
	for {
		select {
		case <-stop:
			return
		default:
		}
		e.syncVirtualClock()
		e.drainInjected()
		if len(e.events) == 0 {
			// Idle: wait for injection or stop.
			select {
			case <-stop:
				return
			case <-e.injectCh:
				continue
			}
		}
		next := e.events[0]
		if !e.sleepUntil(next.at, stop) {
			return
		}
		e.syncVirtualClock()
		e.drainInjected()
		if len(e.events) == 0 || e.events[0] != next {
			continue // an injection scheduled something earlier
		}
		heap.Pop(&e.events)
		if next.canceled {
			continue
		}
		if next.at > e.now {
			e.now = next.at
		}
		fn := next.fire
		next.fire = nil
		fn()
	}
}

// syncVirtualClock advances the virtual clock to the wall-clock-equivalent
// instant in real-time mode, so work injected after an idle period is
// scheduled relative to "now" rather than to the last fired event. The
// clock never moves backwards.
func (e *Engine) syncVirtualClock() {
	if !e.realTime || e.started.IsZero() {
		return
	}
	v := Time(float64(time.Since(e.started)) * e.timeScale)
	if v > e.now {
		e.now = v
	}
}

// sleepUntil waits on the wall clock until virtual time at is due. It returns
// false if stop fired, true otherwise (including when an injection arrived,
// in which case the caller re-evaluates the heap). To keep pacing error from
// being amplified by the time scale, the final stretch before the deadline
// is spin-waited: OS timers overshoot by around a millisecond, which a 10x
// time scale would turn into 10ms of virtual error per event.
func (e *Engine) sleepUntil(at Time, stop <-chan struct{}) bool {
	const spinWindow = 2 * time.Millisecond
	wall := e.wallDeadline(at)
	if d := time.Until(wall) - spinWindow; d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-stop:
			return false
		case <-e.injectCh:
			return true
		case <-t.C:
		}
	}
	for time.Now().Before(wall) {
		select {
		case <-stop:
			return false
		case <-e.injectCh:
			return true
		default:
			runtime.Gosched()
		}
	}
	return true
}

func (e *Engine) wallDeadline(at Time) time.Time {
	return e.started.Add(time.Duration(float64(at) / e.timeScale))
}

// waitWall is used by Run in real-time mode (tests); it busy-sleeps to the
// wall deadline without injection wake-ups.
func (e *Engine) waitWall(at Time) {
	if e.started.IsZero() {
		e.started = time.Now()
	}
	if d := time.Until(e.wallDeadline(at)); d > 0 {
		time.Sleep(d)
	}
}

// Inject schedules fn to run inside the simulation as soon as possible. It is
// the only Engine method safe to call from outside simulation context and is
// intended for real-time mode (e.g., an HTTP handler submitting a request).
func (e *Engine) Inject(fn func()) {
	e.injectMu.Lock()
	e.injected = append(e.injected, fn)
	e.injectMu.Unlock()
	select {
	case e.injectCh <- struct{}{}:
	default:
	}
}

func (e *Engine) drainInjected() {
	e.injectMu.Lock()
	pending := e.injected
	e.injected = nil
	e.injectMu.Unlock()
	for _, fn := range pending {
		// Schedule at the current instant; runs in heap order.
		e.schedule(e.now, fn)
	}
}

// Close kills all live processes so their goroutines exit. The engine must
// not be used afterwards.
func (e *Engine) Close() {
	e.stopped = true
	for p := range e.procs {
		p.kill()
	}
	e.events = nil
}

// PendingEvents reports the number of scheduled (possibly canceled) events.
func (e *Engine) PendingEvents() int { return len(e.events) }
