package stats

import (
	"math/rand"
	"testing"
	"time"
)

func lognormalish(n int, seed int64) *Sample {
	rng := rand.New(rand.NewSource(seed))
	s := NewSample(n)
	for i := 0; i < n; i++ {
		v := time.Duration(20e6 * (1 + rng.ExpFloat64()))
		s.Add(v)
	}
	return s
}

func TestPercentileCIBracketsPoint(t *testing.T) {
	s := lognormalish(2000, 1)
	rng := rand.New(rand.NewSource(2))
	for _, p := range []float64{50, 90, 99} {
		ci := s.PercentileCI(p, 0.95, 300, rng)
		if ci.Point < ci.Lo || ci.Point > ci.Hi {
			t.Errorf("p%v: point %v outside [%v, %v]", p, ci.Point, ci.Lo, ci.Hi)
		}
		if ci.Lo > ci.Hi {
			t.Errorf("p%v: inverted interval", p)
		}
	}
}

func TestCICoverage(t *testing.T) {
	// Draw many samples from a known distribution; the 90% CI for the
	// median should contain the true median in roughly 90% of trials.
	trueMedian := time.Duration(20e6 * (1 + 0.6931)) // exp median = ln2
	hits, trials := 0, 120
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < trials; i++ {
		s := lognormalish(300, int64(1000+i))
		ci := s.MedianCI(0.90, 200, rng)
		if trueMedian >= ci.Lo && trueMedian <= ci.Hi {
			hits++
		}
	}
	cov := float64(hits) / float64(trials)
	if cov < 0.78 || cov > 0.99 {
		t.Fatalf("coverage = %.2f, want ~0.90", cov)
	}
}

func TestCIWiderAtTail(t *testing.T) {
	s := lognormalish(500, 4)
	rng := rand.New(rand.NewSource(5))
	med := s.MedianCI(0.95, 300, rng)
	tail := s.P99CI(0.95, 300, rng)
	if tail.Hi-tail.Lo <= med.Hi-med.Lo {
		t.Fatalf("p99 interval (%v) should be wider than median interval (%v)",
			tail.Hi-tail.Lo, med.Hi-med.Lo)
	}
}

func TestCIShrinksWithSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	small := lognormalish(100, 7).MedianCI(0.95, 300, rng)
	big := lognormalish(10000, 7).MedianCI(0.95, 300, rng)
	if big.Hi-big.Lo >= small.Hi-small.Lo {
		t.Fatalf("10k-sample interval (%v) should be narrower than 100-sample (%v)",
			big.Hi-big.Lo, small.Hi-small.Lo)
	}
}

func TestCIOverlaps(t *testing.T) {
	a := CI{Lo: ms(10), Hi: ms(20)}
	b := CI{Lo: ms(15), Hi: ms(25)}
	c := CI{Lo: ms(21), Hi: ms(30)}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("a and c should not overlap")
	}
}

func TestCIString(t *testing.T) {
	ci := CI{Point: ms(50), Lo: ms(45), Hi: ms(60), Confidence: 0.95}
	if got := ci.String(); got != "50ms [45ms, 60ms] @95%" {
		t.Fatalf("String() = %q", got)
	}
}

func TestCIPanics(t *testing.T) {
	s := lognormalish(10, 8)
	rng := rand.New(rand.NewSource(9))
	for _, fn := range []func(){
		func() { (&Sample{}).MedianCI(0.95, 100, rng) },
		func() { s.PercentileCI(50, 0, 100, rng) },
		func() { s.PercentileCI(50, 1, 100, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCISampleUnchanged(t *testing.T) {
	s := lognormalish(100, 10)
	before := append([]time.Duration(nil), s.Values()...)
	s.PercentileCI(99, 0.95, 100, rand.New(rand.NewSource(11)))
	after := s.Values()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("bootstrap mutated the sample")
		}
	}
}
