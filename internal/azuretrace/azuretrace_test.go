package azuretrace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func genTrace(n int, seed int64) []Record {
	return Generate(n, rand.New(rand.NewSource(seed)))
}

func TestGenerateCount(t *testing.T) {
	records := genTrace(1000, 1)
	if len(records) != 1000 {
		t.Fatalf("generated %d records", len(records))
	}
	seen := map[string]bool{}
	for _, r := range records {
		if seen[r.Function] {
			t.Fatalf("duplicate function id %s", r.Function)
		}
		seen[r.Function] = true
	}
}

func TestPercentilesConsistent(t *testing.T) {
	for _, r := range genTrace(500, 2) {
		prev := time.Duration(0)
		for _, p := range []int{25, 50, 75, 95, 99} {
			v, ok := r.Percentiles[p]
			if !ok {
				t.Fatalf("%s missing percentile %d", r.Function, p)
			}
			if v < prev {
				t.Fatalf("%s percentile %d (%v) below previous (%v)", r.Function, p, v, prev)
			}
			prev = v
		}
		if r.TMR() < 1 {
			t.Fatalf("%s TMR %.2f below 1", r.Function, r.TMR())
		}
	}
}

func TestPaperFractions(t *testing.T) {
	records := genTrace(40000, 3)
	cases := []struct {
		class DurationClass
		want  float64
		tol   float64
	}{
		{ClassAll, 0.70, 0.04},
		{ClassSubSec, 0.60, 0.04},
		{ClassLong, 0.90, 0.04},
	}
	for _, tc := range cases {
		got := FracBelowTMR(records, tc.class, 10)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("P(TMR<10 | %s) = %.3f, want %.2f±%.2f", tc.class, got, tc.want, tc.tol)
		}
	}
	// Duration mix: ~50% sub-second, >70% under ten seconds.
	if share := ClassShare(records, ClassSubSec); math.Abs(share-0.50) > 0.03 {
		t.Errorf("sub-second share %.2f, want ~0.50", share)
	}
	under10 := ClassShare(records, ClassSubSec) + ClassShare(records, ClassMidRange)
	if under10 < 0.70 {
		t.Errorf("under-10s share %.2f, want > 0.70", under10)
	}
}

func TestClassBoundaries(t *testing.T) {
	mk := func(med time.Duration) Record {
		return Record{Percentiles: map[int]time.Duration{50: med, 99: med * 2}}
	}
	if c := mk(500 * time.Millisecond).Class(); c != ClassSubSec {
		t.Errorf("500ms class = %s", c)
	}
	if c := mk(5 * time.Second).Class(); c != ClassMidRange {
		t.Errorf("5s class = %s", c)
	}
	if c := mk(30 * time.Second).Class(); c != ClassLong {
		t.Errorf("30s class = %s", c)
	}
}

func TestTMRInfinityOnZeroMedian(t *testing.T) {
	r := Record{Percentiles: map[int]time.Duration{50: 0, 99: time.Second}}
	if !math.IsInf(r.TMR(), 1) {
		t.Fatalf("TMR of zero-median record = %v", r.TMR())
	}
}

func TestTMRSampleFiltering(t *testing.T) {
	records := genTrace(5000, 4)
	all := TMRSample(records, ClassAll)
	sub := TMRSample(records, ClassSubSec)
	long := TMRSample(records, ClassLong)
	if all.Len() != len(records) {
		t.Fatalf("all-class sample has %d of %d", all.Len(), len(records))
	}
	if sub.Len()+long.Len() >= all.Len() {
		t.Fatal("class filters do not partition")
	}
	// Sub-second functions have the heavier TMR distribution.
	if sub.Percentile(75) <= long.Percentile(75) {
		t.Error("sub-second TMR p75 should exceed long-function p75")
	}
}

func TestEmptyClassShare(t *testing.T) {
	if ClassShare(nil, ClassAll) != 0 || FracBelowTMR(nil, ClassAll, 10) != 0 {
		t.Fatal("empty trace should yield zero shares")
	}
}

// Property: generation is deterministic per seed and all records are valid.
func TestQuickGenerateValid(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		a := genTrace(n, seed)
		b := genTrace(n, seed)
		for i := range a {
			if a[i].Median() != b[i].Median() || a[i].P99() != b[i].P99() {
				return false
			}
			if a[i].Median() <= 0 || a[i].P99() < a[i].Median() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
