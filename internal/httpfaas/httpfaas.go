// Package httpfaas serves a simulated serverless cloud as live HTTP
// endpoints. The simulation runs on a real-time DES engine (optionally with
// compressed time), so STeLLAR's HTTP client path — goroutine per request,
// real sockets, wall-clock latency measurement — can be exercised
// end-to-end against the modeled providers without any cloud account.
//
// The serve path is allocation-lean so the server side never becomes the
// bottleneck a stress run measures: invocation state (request, reply,
// completion channel, encode buffer, timeout timer, and the two engine
// closures) lives in a sync.Pool, routing is a prefix check instead of a
// ServeMux walk, query parsing touches no maps, invocations ride the
// callback fast path (cloud.InvokeAsync), and replies are encoded by an
// append-style encoder byte-identical to encoding/json for the flat reply
// shape.
package httpfaas

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
)

// InvokeReply is the JSON body returned for each invocation; it carries the
// same instrumentation a STeLLAR function returns (timestamps concatenated
// into the response, §IV).
type InvokeReply struct {
	Function     string           `json:"function"`
	Cold         bool             `json:"cold"`
	InstanceID   int              `json:"instance_id"`
	QueueWaitNS  int64            `json:"queue_wait_ns"`
	SimLatencyNS int64            `json:"sim_latency_ns"`
	Timestamps   map[string]int64 `json:"timestamps,omitempty"`
}

// invokeTimeout bounds one invocation end-to-end.
const invokeTimeout = 5 * time.Minute

// DefaultDrain is how long Stop waits for in-flight requests to complete.
const DefaultDrain = 10 * time.Second

// Server hosts one simulated cloud behind an HTTP listener.
type Server struct {
	eng       *des.Engine
	cloud     *cloud.Cloud
	sim       *core.SimProvider
	timeScale float64

	states sync.Pool // *invState

	mu       sync.Mutex
	listener net.Listener
	httpSrv  *http.Server
	stop     chan struct{}
	started  bool // Start succeeded
	stopped  bool // engine loop halted (terminal)
	baseURL  string
}

// NewServer builds a server for the given provider profile. timeScale
// compresses virtual time (10 = ten virtual seconds per wall second);
// 1 serves in real time. It must be a positive finite number.
func NewServer(cfg cloud.Config, seed int64, timeScale float64) (*Server, error) {
	if math.IsNaN(timeScale) || math.IsInf(timeScale, 0) || timeScale <= 0 {
		return nil, fmt.Errorf("httpfaas: time scale must be a positive finite number, got %v", timeScale)
	}
	eng := des.NewRealTimeEngine(timeScale)
	cl, err := cloud.New(eng, cfg, dist.NewStreams(seed))
	if err != nil {
		return nil, err
	}
	s := &Server{
		eng:       eng,
		cloud:     cl,
		sim:       &core.SimProvider{Cloud: cl},
		timeScale: timeScale,
		stop:      make(chan struct{}),
	}
	s.states.New = func() any { return newInvState(s) }
	return s, nil
}

// Cloud exposes the underlying simulated cloud. While the server is
// running, cloud state must only be read from simulation context (via
// Inject); use Metrics for a race-free counter snapshot.
func (s *Server) Cloud() *cloud.Cloud { return s.cloud }

// TimeScale reports the virtual-time compression factor.
func (s *Server) TimeScale() float64 { return s.timeScale }

// Metrics returns a snapshot of the cloud's counters. When the server is
// running, the snapshot is taken inside the simulation loop so it cannot
// race live event processing (keep-alive expiries mutate counters at any
// wall-clock moment).
func (s *Server) Metrics() cloud.Metrics {
	s.mu.Lock()
	live := s.started && !s.stopped
	s.mu.Unlock()
	if !live {
		return s.cloud.Metrics()
	}
	done := make(chan cloud.Metrics, 1)
	s.eng.Inject(func() { done <- s.cloud.Metrics() })
	select {
	case m := <-done:
		return m
	case <-time.After(10 * time.Second):
		return s.cloud.Metrics()
	}
}

// BaseURL returns the listener address ("http://127.0.0.1:PORT") once
// started.
func (s *Server) BaseURL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.baseURL
}

// Start listens on addr (":0" for an ephemeral port) and begins servicing
// the simulation and HTTP requests.
func (s *Server) Start(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("httpfaas: server already running")
	}
	if s.stopped {
		return fmt.Errorf("httpfaas: server already stopped")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("httpfaas: listen: %w", err)
	}
	s.listener = ln
	s.httpSrv = &http.Server{Handler: http.HandlerFunc(s.route)}
	s.baseURL = "http://" + ln.Addr().String()
	s.started = true
	go s.eng.RunRealTime(s.stop)
	go func() { _ = s.httpSrv.Serve(ln) }()
	return nil
}

// Stop shuts the server down, draining in-flight requests for up to
// DefaultDrain. Safe to call more than once.
func (s *Server) Stop() { _ = s.Shutdown(DefaultDrain) }

// Shutdown stops accepting new requests, waits up to drain for in-flight
// requests to complete (the simulation keeps running so they finish
// normally), then halts the engine. Requests still live when the deadline
// expires are cut off. It returns the error from the HTTP layer's drain,
// nil on a clean stop or when the server was never started.
func (s *Server) Shutdown(drain time.Duration) error {
	s.mu.Lock()
	if !s.started || s.stopped {
		s.mu.Unlock()
		return nil
	}
	srv := s.httpSrv
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(ctx)
	if err != nil {
		_ = srv.Close() // deadline hit: drop whatever is still in flight
	}

	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		s.started = false
		close(s.stop)
	}
	s.mu.Unlock()
	return err
}

// Deploy registers functions while the server is running; the deployment
// executes inside the simulation loop. It returns HTTP endpoints.
func (s *Server) Deploy(fc core.FunctionConfig) ([]core.Endpoint, error) {
	type depResult struct {
		eps []core.Endpoint
		err error
	}
	done := make(chan depResult, 1)
	s.eng.Inject(func() {
		eps, err := s.sim.Deploy(fc)
		done <- depResult{eps, err}
	})
	select {
	case res := <-done:
		if res.err != nil {
			return nil, res.err
		}
		base := s.BaseURL()
		for i := range res.eps {
			res.eps[i].URL = base + "/fn/" + res.eps[i].Function
		}
		return res.eps, nil
	case <-time.After(10 * time.Second):
		return nil, fmt.Errorf("httpfaas: deploy timed out (server not started?)")
	}
}

// Provider adapts the server as a core.Provider plugin so STeLLAR's
// deployer drives live-HTTP deployments exactly like simulated ones.
func (s *Server) Provider() core.Provider { return httpProvider{s} }

type httpProvider struct{ s *Server }

func (p httpProvider) Name() string { return p.s.cloud.Config().Name }
func (p httpProvider) Deploy(fc core.FunctionConfig) ([]core.Endpoint, error) {
	return p.s.Deploy(fc)
}
func (p httpProvider) Teardown(base string) error {
	done := make(chan error, 1)
	p.s.eng.Inject(func() { done <- p.s.sim.Teardown(base) })
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		return fmt.Errorf("httpfaas: teardown timed out")
	}
}

// route dispatches without a ServeMux: one prefix check on the hot path.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	if strings.HasPrefix(path, "/fn/") {
		s.handleInvoke(w, r, path[len("/fn/"):])
		return
	}
	if path == "/healthz" {
		fmt.Fprintln(w, "ok")
		return
	}
	http.NotFound(w, r)
}

// invState is the pooled per-invocation carrier. The two engine closures
// are bound once at creation, so a steady-state request schedules work into
// the simulation without allocating.
type invState struct {
	srv   *Server
	req   cloud.Request
	reply InvokeReply
	err   error
	done  chan struct{}
	t0    des.Time
	buf   []byte
	timer *time.Timer

	injectFn func()
	doneFn   func(*cloud.Response, error)
}

func newInvState(s *Server) *invState {
	st := &invState{
		srv:  s,
		done: make(chan struct{}, 1),
		buf:  make([]byte, 0, 256),
	}
	st.injectFn = func() {
		st.t0 = s.eng.Now()
		s.cloud.InvokeAsync(&st.req, st.doneFn)
	}
	st.doneFn = func(resp *cloud.Response, err error) {
		if err != nil {
			st.err = err
		} else {
			st.reply.Cold = resp.Cold
			st.reply.InstanceID = resp.InstanceID
			st.reply.QueueWaitNS = int64(resp.QueueWait)
			st.reply.SimLatencyNS = int64(s.eng.Now() - st.t0)
			if len(resp.Timestamps) > 0 {
				st.reply.Timestamps = make(map[string]int64, len(resp.Timestamps))
				for k, v := range resp.Timestamps {
					st.reply.Timestamps[k] = int64(v)
				}
			}
		}
		st.done <- struct{}{}
	}
	return st
}

// reset prepares a pooled state for one request.
func (st *invState) reset(name string) {
	st.req = cloud.Request{Fn: name}
	st.reply = InvokeReply{Function: name}
	st.err = nil
	select { // defensive: a pooled state's channel must be empty
	case <-st.done:
	default:
	}
}

// handleInvoke services one function invocation over HTTP. Query
// parameters: exec_ms overrides the busy-spin time, payload overrides the
// chain payload bytes.
func (s *Server) handleInvoke(w http.ResponseWriter, r *http.Request, name string) {
	if name == "" {
		http.Error(w, "missing function name", http.StatusBadRequest)
		return
	}
	st := s.states.Get().(*invState)
	st.reset(name)
	if q := r.URL.RawQuery; q != "" {
		if bad := parseInvokeQuery(q, &st.req); bad != "" {
			s.states.Put(st) // never injected: safe to recycle
			http.Error(w, "bad "+bad, http.StatusBadRequest)
			return
		}
	}

	s.eng.Inject(st.injectFn)
	if st.timer == nil {
		st.timer = time.NewTimer(invokeTimeout)
	} else {
		st.timer.Reset(invokeTimeout)
	}

	select {
	case <-st.done:
		if !st.timer.Stop() {
			<-st.timer.C
		}
		if st.err != nil {
			http.Error(w, st.err.Error(), http.StatusInternalServerError)
			s.states.Put(st)
			return
		}
		if body, ok := appendReply(st.buf[:0], &st.reply); ok {
			st.buf = body[:0]
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(body)
		} else {
			// Timestamps or an exotic function name: the stock encoder.
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(st.reply)
		}
		s.states.Put(st)
	case <-r.Context().Done():
		// The done callback may still fire; abandon the state (its buffered
		// channel absorbs the late send, the GC absorbs the state).
		http.Error(w, "client gone", http.StatusRequestTimeout)
	case <-st.timer.C:
		http.Error(w, "invocation timed out", http.StatusGatewayTimeout)
	}
}

// parseInvokeQuery extracts exec_ms and payload from a raw query string
// without building a url.Values map. It returns the offending parameter
// name on a malformed value, "" on success. Matching the previous
// url.Values-based behavior: unknown keys and empty values are ignored,
// negative or non-numeric values are rejected.
func parseInvokeQuery(q string, req *cloud.Request) (bad string) {
	for len(q) > 0 {
		var kv string
		if i := strings.IndexByte(q, '&'); i >= 0 {
			kv, q = q[:i], q[i+1:]
		} else {
			kv, q = q, ""
		}
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			continue
		}
		key, val := kv[:eq], kv[eq+1:]
		if val == "" {
			continue
		}
		switch key {
		case "exec_ms":
			ms, ok := parseDecimal(val)
			if !ok {
				return "exec_ms"
			}
			req.ExecTime = time.Duration(ms) * time.Millisecond
		case "payload":
			b, ok := parseDecimal(val)
			if !ok {
				return "payload"
			}
			req.ChainPayloadBytes = b
		}
	}
	return ""
}

// parseDecimal parses a non-negative decimal integer (the only shape the
// invoke parameters accept).
func parseDecimal(s string) (int64, bool) {
	if len(s) == 0 || len(s) > 18 {
		return 0, false
	}
	var n int64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}

// appendReply encodes the flat reply shape byte-identically to
// encoding/json (including the trailing newline json.Encoder emits). It
// reports false when the reply needs the stock encoder: a timestamps map
// (key order) or a function name requiring escaping.
func appendReply(b []byte, r *InvokeReply) ([]byte, bool) {
	if len(r.Timestamps) > 0 || !plainJSONString(r.Function) {
		return nil, false
	}
	b = append(b, `{"function":"`...)
	b = append(b, r.Function...)
	b = append(b, `","cold":`...)
	if r.Cold {
		b = append(b, "true"...)
	} else {
		b = append(b, "false"...)
	}
	b = append(b, `,"instance_id":`...)
	b = strconv.AppendInt(b, int64(r.InstanceID), 10)
	b = append(b, `,"queue_wait_ns":`...)
	b = strconv.AppendInt(b, r.QueueWaitNS, 10)
	b = append(b, `,"sim_latency_ns":`...)
	b = strconv.AppendInt(b, r.SimLatencyNS, 10)
	b = append(b, '}', '\n')
	return b, true
}

// plainJSONString reports whether s encodes as itself under encoding/json:
// printable ASCII with nothing the encoder escapes (quotes, backslashes,
// and the HTML-escaped <, >, &).
func plainJSONString(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}
