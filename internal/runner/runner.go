// Package runner executes independent simulation shards across a bounded
// worker pool with deterministic seeding and deterministic result ordering.
//
// The paper's methodology is replication-heavy (3000 samples per
// configuration, >100 replicas for the cold studies), but every replica and
// series is independent: each runs on its own isolated DES engine. The pool
// shards that work across goroutines. Determinism rests on two invariants:
//
//   - Seeding is positional: shard i always draws from
//     dist.ShardSeed(rootSeed, i), no matter which worker runs it or when.
//   - Collection is positional: results land in a slice at their shard
//     index, so the output order never depends on completion order.
//
// Together they make Workers=1 and Workers=N produce byte-identical
// results for the same root seed, which the determinism suite in
// internal/experiments asserts for every figure of the paper.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/stellar-repro/stellar/internal/dist"
)

// Shard identifies one unit of independent work.
type Shard struct {
	// Index is the unit's position in the work list (0-based).
	Index int
	// Total is the size of the work list.
	Total int
	// Seed is the unit's private RNG root, dist.ShardSeed(pool seed, Index).
	// Everything random inside the shard must derive from it.
	Seed int64
	// Streams is a stream factory rooted at Seed, for shards that need
	// multiple named components.
	Streams *dist.Streams
}

// Pool describes how to run a batch of shards.
type Pool struct {
	// Workers bounds the number of concurrently running shards. Zero or
	// negative means GOMAXPROCS(0).
	Workers int
	// Seed is the root seed every shard seed is split from.
	Seed int64
}

// size returns the effective worker count for n shards.
func (p Pool) size(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn once per shard, at most Workers at a time, and returns the
// results in shard-index order. The first error (by shard index, not by
// completion time, so the reported error is deterministic too) is returned
// and unstarted shards are abandoned; already-running shards finish first.
func Map[T any](p Pool, n int, fn func(Shard) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)
	var failed atomic.Bool

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < p.size(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				seed := dist.ShardSeed(p.Seed, i)
				out, err := fn(Shard{
					Index:   i,
					Total:   n,
					Seed:    seed,
					Streams: dist.NewStreams(seed),
				})
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				results[i] = out
			}
		}()
	}
	for i := 0; i < n; i++ {
		if failed.Load() {
			break
		}
		indices <- i
	}
	close(indices)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// MapReduce runs fn once per shard and folds the per-shard results into an
// accumulator with merge, in shard-index order. It exists for mergeable
// summaries (quantile sketches, counters): a scale run's aggregation cost
// is O(shards × summary size) — never O(total observations) — because no
// shard's raw stream is ever concatenated. The index-ordered fold keeps the
// result deterministic at any Workers setting even for merges that are not
// commutative; for exact merges like the sketch's it is simply the cheapest
// deterministic order.
func MapReduce[S, A any](p Pool, n int, acc A, fn func(Shard) (S, error), merge func(acc A, shard S) (A, error)) (A, error) {
	outs, err := Map(p, n, fn)
	if err != nil {
		return acc, err
	}
	for i, out := range outs {
		if acc, err = merge(acc, out); err != nil {
			return acc, fmt.Errorf("runner: merge shard %d: %w", i, err)
		}
	}
	return acc, nil
}
