package faults

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
)

// Policy is the client-side resilience strategy wrapped around each
// invocation: a per-attempt timeout, bounded retries with capped
// exponential backoff and deterministic jitter, and optional hedging. The
// zero value is the naive client — one attempt, wait forever, no retries —
// which is exactly what the figure pipeline runs with.
type Policy struct {
	// Timeout abandons an attempt after this much silence (0 = wait
	// forever). Timeouts are what turn silent drops into retryable
	// failures.
	Timeout time.Duration
	// MaxRetries bounds additional attempts after the first (0 = none).
	MaxRetries int
	// BackoffBase is the first retry's backoff; retry k sleeps
	// base * 2^k, capped at BackoffCap (0 = no backoff).
	BackoffBase time.Duration
	// BackoffCap caps the exponential growth (0 = uncapped).
	BackoffCap time.Duration
	// Jitter adds a uniform draw from [0, backoff) to every backoff, so
	// synchronized retry storms decorrelate. Draws come from the caller's
	// shard RNG stream, keeping schedules deterministic.
	Jitter bool
	// HedgeAfter launches one duplicate attempt if the primary has not
	// settled within this duration (0 = no hedging). The first completion
	// wins; the loser is discarded.
	HedgeAfter time.Duration
}

// Validate reports policy configuration errors.
func (p *Policy) Validate() error {
	if p.Timeout < 0 || p.BackoffBase < 0 || p.BackoffCap < 0 || p.HedgeAfter < 0 {
		return errors.New("faults: policy durations must be >= 0")
	}
	if p.MaxRetries < 0 {
		return errors.New("faults: max_retries must be >= 0")
	}
	if p.MaxRetries > 1000 {
		return errors.New("faults: max_retries > 1000")
	}
	if p.BackoffBase > 0 && p.BackoffCap > 0 && p.BackoffCap < p.BackoffBase {
		return errors.New("faults: backoff_cap below backoff_base")
	}
	if p.HedgeAfter > 0 && p.Timeout > 0 && p.HedgeAfter >= p.Timeout {
		return errors.New("faults: hedge_after must be below timeout")
	}
	return nil
}

// Backoff returns the sleep before retry number retry (0-based: the sleep
// between the first failure and the second attempt). With Jitter the
// result is uniform in [b, 2b) where b is the capped exponential backoff.
func (p *Policy) Backoff(retry int, rng *rand.Rand) time.Duration {
	b := p.BackoffBase
	if b <= 0 {
		return 0
	}
	for i := 0; i < retry; i++ {
		if p.BackoffCap > 0 && b >= p.BackoffCap {
			break
		}
		if b > math.MaxInt64/4 {
			// Overflow guard: clamp so doubling and jitter stay in range.
			b = math.MaxInt64 / 4
			break
		}
		b *= 2
	}
	if p.BackoffCap > 0 && b > p.BackoffCap {
		b = p.BackoffCap
	}
	if p.Jitter && rng != nil {
		b += time.Duration(rng.Int63n(int64(b)))
	}
	return b
}

// Result is the outcome of one resilient invocation.
type Result struct {
	// Err is nil when some attempt succeeded; otherwise the last
	// attempt's failure.
	Err error
	// Attempts counts every launched attempt, hedges included.
	Attempts int
	// Retries counts retry rounds after the first.
	Retries int
	// Hedges counts launched hedge attempts.
	Hedges int
	// Latency is the client-observed duration of the whole resilient
	// call, backoff sleeps included — retries inflate the tail, and this
	// is where that shows up.
	Latency time.Duration
}

// roundState tracks one retry round's in-flight attempts (primary plus an
// optional hedge).
type roundState struct {
	done    *des.Signal
	pending int
	err     error
	settled bool
}

// Do runs attempt under the policy on behalf of process p, advancing
// virtual time through timeouts and backoff sleeps. rng drives jitter and
// must be the caller's shard stream for deterministic schedules. attempt
// receives the process it must invoke from (a sub-process when the round
// races a timeout or hedge).
func (pol Policy) Do(p *des.Proc, rng *rand.Rand, attempt func(*des.Proc) error) Result {
	start := p.Now()
	res := Result{}
	for round := 0; ; round++ {
		res.Attempts++
		res.Err = pol.round(p, attempt, &res)
		if res.Err == nil || round >= pol.MaxRetries {
			res.Latency = p.Now() - start
			return res
		}
		res.Retries++
		if d := pol.Backoff(round, rng); d > 0 {
			p.Sleep(d)
		}
	}
}

// round runs one attempt (plus an optional hedge) under the per-attempt
// timeout and returns its outcome.
func (pol Policy) round(p *des.Proc, attempt func(*des.Proc) error, res *Result) error {
	// Fast path: nothing races the attempt, so run it on the caller's own
	// process with no spawn.
	if pol.Timeout <= 0 && pol.HedgeAfter <= 0 {
		return attempt(p)
	}
	eng := p.Engine()
	st := &roundState{done: des.NewSignal(eng)}
	launch := func(name string) {
		st.pending++
		eng.Spawn(name, func(ap *des.Proc) {
			err := attempt(ap)
			if st.settled {
				return // round already resolved; discard the straggler
			}
			if err == nil {
				st.err = nil
				st.settled = true
				st.done.Fire()
				return
			}
			st.pending--
			st.err = err
			if errors.Is(err, ErrDropped) && pol.Timeout > 0 {
				// A drop is silence on the wire: the client learns
				// nothing until its own timeout expires, so a dropped
				// attempt must not resolve the round early.
				return
			}
			if st.pending == 0 {
				st.settled = true
				st.done.Fire()
			}
		})
	}
	start := p.Now()
	launch("faults/attempt")
	if pol.HedgeAfter > 0 {
		if p.WaitTimeout(st.done, pol.HedgeAfter) {
			return st.err
		}
		res.Hedges++
		res.Attempts++
		launch("faults/hedge")
	}
	if pol.Timeout > 0 {
		remaining := pol.Timeout - (p.Now() - start)
		if remaining <= 0 || !p.WaitTimeout(st.done, remaining) {
			// Abandon whatever is still in flight; late completions see
			// settled and discard themselves.
			st.settled = true
			return ErrAttemptTimeout
		}
		return st.err
	}
	p.Wait(st.done)
	return st.err
}
