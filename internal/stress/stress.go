package stress

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/stellar-repro/stellar/internal/stats/sketch"
)

// Options configures one stress run.
type Options struct {
	// URL is the function endpoint (http://host:port/fn/name).
	URL string
	// Arrival selects the schedule family (fixed, poisson, trace).
	Arrival ArrivalKind
	// Rate is the aggregate arrival rate in requests/second (fixed, poisson).
	Rate float64
	// Duration bounds the schedule horizon: no arrival is *scheduled* at or
	// beyond it (in-flight requests still complete). Zero means the run is
	// bounded by MaxRequests or the trace instead.
	Duration time.Duration
	// Workers is the client fleet size. Each worker owns a connection, a
	// schedule shard, and a sketch shard.
	Workers int
	// Conns bounds the std client's idle pool per worker (ignored by raw).
	Conns int
	// Client picks the HTTP client implementation (raw by default).
	Client ClientKind
	// Seed drives the Poisson streams; the DES twin reuses it.
	Seed int64
	// MaxRequests caps total arrivals across workers (0 = unbounded).
	MaxRequests uint64
	// TraceCounts and TraceInterval define trace-mode arrivals: counts[i]
	// arrivals spaced evenly inside interval i.
	TraceCounts   []uint64
	TraceInterval time.Duration
	// ExecTime and PayloadBytes are forwarded as invoke query parameters.
	ExecTime     time.Duration
	PayloadBytes int64
	// Timeout bounds one request (default 30s).
	Timeout time.Duration
	// Alpha is the sketch relative accuracy (default sketch.DefaultAlpha).
	Alpha float64
	// ClosedLoop switches latency recording to measure from the *actual*
	// send instant instead of the intended one — the coordinated-omission-
	// prone control. Exists so the CO test (and skeptical users) can see
	// the difference; reports always say which mode produced them.
	ClosedLoop bool
}

func (o Options) withDefaults() Options {
	opts := o
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Client == "" {
		opts.Client = ClientRaw
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.Alpha <= 0 {
		opts.Alpha = sketch.DefaultAlpha
	}
	if opts.Arrival == "" {
		opts.Arrival = ArrivalPoisson
	}
	return opts
}

// Result aggregates a run: merged sketches plus fleet-wide counters.
type Result struct {
	// Intended records response time measured from the *intended* arrival
	// instant (coordinated-omission-safe; in closed-loop mode it is measured
	// from the actual send instead, and ClosedLoop says so).
	Intended *sketch.Sketch
	// Service records response time measured from the actual send — the
	// server-plus-wire component, excluding client-side scheduling lag.
	Service *sketch.Sketch
	// SendLag records how late each request left relative to its intended
	// instant (generator health: a growing lag means the fleet is saturated).
	SendLag *sketch.Sketch
	// SimVirtual records the virtual-time latency the simulation reported in
	// each reply body — the DES view of the same requests.
	SimVirtual *sketch.Sketch

	Requests uint64 // responses received (any HTTP status)
	Errors   uint64 // transport failures + non-200 statuses
	Colds    uint64 // replies flagged cold
	Dials    uint64 // new TCP connections across the fleet
	Reused   uint64 // requests that rode an existing connection

	// Elapsed is first-send to last-response wall time; AchievedRPS is
	// Requests/Elapsed.
	Elapsed     time.Duration
	AchievedRPS float64

	// ClosedLoop echoes the recording mode.
	ClosedLoop bool
}

// shard is one worker's private recording state, merged after the run.
type shard struct {
	intended *sketch.Sketch
	service  *sketch.Sketch
	sendLag  *sketch.Sketch
	simVirt  *sketch.Sketch

	requests uint64
	errors   uint64
	colds    uint64
	stats    ConnStats

	firstSend time.Time
	lastResp  time.Time
	err       error
}

// Run executes the configured stress run and returns merged results. The
// worker fleet is open-loop: intended send times come from the schedule
// alone, and a worker that falls behind records the lateness rather than
// stretching the schedule.
func Run(o Options) (*Result, error) {
	opts := o.withDefaults()
	p, err := newPlan(opts)
	if err != nil {
		return nil, err
	}
	target, err := NewTarget(opts.URL, BuildQuery(opts.ExecTime, opts.PayloadBytes))
	if err != nil {
		return nil, err
	}

	shards := make([]*shard, opts.Workers)
	clients := make([]Client, opts.Workers)
	for w := range shards {
		shards[w] = &shard{
			intended: sketch.New(opts.Alpha),
			service:  sketch.New(opts.Alpha),
			sendLag:  sketch.New(opts.Alpha),
			simVirt:  sketch.New(opts.Alpha),
		}
		c, err := newClient(opts.Client, target, opts.Conns, opts.Timeout)
		if err != nil {
			for _, prev := range clients {
				if prev != nil {
					prev.Close()
				}
			}
			return nil, err
		}
		clients[w] = c
	}

	start := time.Now().Add(5 * time.Millisecond) // common epoch, slightly out so worker 0's first arrival isn't already late
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runWorker(p.workerSchedule(w), clients[w], shards[w], start, opts.ClosedLoop)
			shards[w].stats = clients[w].Stats()
			clients[w].Close()
		}(w)
	}
	wg.Wait()

	res := &Result{
		Intended:   sketch.New(opts.Alpha),
		Service:    sketch.New(opts.Alpha),
		SendLag:    sketch.New(opts.Alpha),
		SimVirtual: sketch.New(opts.Alpha),
		ClosedLoop: opts.ClosedLoop,
	}
	var first, last time.Time
	var firstErr error
	for _, sh := range shards {
		if sh.err != nil && firstErr == nil {
			firstErr = sh.err
		}
		res.Intended.Merge(sh.intended)
		res.Service.Merge(sh.service)
		res.SendLag.Merge(sh.sendLag)
		res.SimVirtual.Merge(sh.simVirt)
		res.Requests += sh.requests
		res.Errors += sh.errors
		res.Colds += sh.colds
		res.Dials += sh.stats.Dials
		res.Reused += sh.stats.Reused
		if !sh.firstSend.IsZero() && (first.IsZero() || sh.firstSend.Before(first)) {
			first = sh.firstSend
		}
		if sh.lastResp.After(last) {
			last = sh.lastResp
		}
	}
	if res.Requests == 0 {
		if firstErr != nil {
			return nil, fmt.Errorf("stress: no requests completed: %w", firstErr)
		}
		return nil, fmt.Errorf("stress: no requests completed")
	}
	res.Elapsed = last.Sub(first)
	if res.Elapsed > 0 {
		res.AchievedRPS = float64(res.Requests) / res.Elapsed.Seconds()
	}
	return res, nil
}

// runWorker drives one worker's schedule to exhaustion. The loop body is
// allocation-free: the schedule, client buffers, and Reply are all reused.
func runWorker(sched *schedule, client Client, sh *shard, start time.Time, closedLoop bool) {
	var reply Reply
	consecutiveErrs := 0
	for {
		off, ok := sched.next()
		if !ok {
			return
		}
		intendedAt := start.Add(off)
		sleepUntil(intendedAt)

		sendAt := time.Now()
		reply = Reply{}
		err := client.Do(&reply)
		respAt := time.Now()

		if sh.firstSend.IsZero() {
			sh.firstSend = sendAt
		}
		sh.lastResp = respAt

		if err != nil {
			sh.errors++
			sh.err = err
			consecutiveErrs++
			if consecutiveErrs >= 16 {
				return // endpoint is gone; stop burning the schedule
			}
			continue
		}
		consecutiveErrs = 0
		sh.requests++

		lag := sendAt.Sub(intendedAt)
		if lag < 0 {
			lag = 0
		}
		sh.sendLag.Add(lag)
		if reply.Status != 200 {
			sh.errors++
			continue
		}

		base := intendedAt
		if closedLoop {
			base = sendAt
		}
		sh.intended.Add(respAt.Sub(base))
		sh.service.Add(respAt.Sub(sendAt))
		if reply.SimLatencyNS > 0 {
			sh.simVirt.Add(time.Duration(reply.SimLatencyNS))
		}
		if reply.Cold {
			sh.colds++
		}
	}
}

// spinThreshold is how close to the deadline sleepUntil switches from
// time.Sleep to a Gosched spin. OS sleep granularity is ~50-100µs; spinning
// the last stretch keeps send-time jitter well under that.
const spinThreshold = 200 * time.Microsecond

// sleepUntil parks until t. Returning after t is fine — lateness is
// recorded as send lag, never hidden.
func sleepUntil(t time.Time) {
	for {
		d := time.Until(t)
		if d <= 0 {
			return
		}
		if d > spinThreshold {
			time.Sleep(d - spinThreshold)
			continue
		}
		runtime.Gosched()
	}
}
