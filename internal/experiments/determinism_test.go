package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// detOpts are deliberately small so that every figure runs three times
// (Workers=1, Workers=8, different seed) in a few seconds.
func detOpts(seed int64, workers int) Options {
	return Options{Seed: seed, Samples: 120, Replicas: 10, Workers: workers}
}

// fingerprint serializes everything a report shows about a figure: per
// series the label, sweep parameter, and the summary statistics plus
// cold/error counts. Byte equality of fingerprints is the determinism
// guarantee the runner package promises.
func fingerprint(fig *Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s\n", fig.ID, fig.Title)
	for _, s := range fig.Series {
		sum := s.Summary()
		fmt.Fprintf(&b, "%s x=%g n=%d min=%d median=%d p95=%d p99=%d max=%d mean=%d colds=%d errors=%d\n",
			s.Label, s.X, sum.Count,
			int64(sum.Min), int64(sum.Median), int64(sum.P95), int64(sum.P99),
			int64(sum.Max), int64(sum.Mean), s.Colds, s.Errors)
	}
	return b.String()
}

// figureRunners lists every figure reproduction that shards series across
// the worker pool.
var figureRunners = []struct {
	name string
	run  func(Options) (*Figure, error)
}{
	{"fig3-warm", Fig3Warm},
	{"fig3-cold", Fig3Cold},
	{"fig4", Fig4ImageSize},
	{"fig5", Fig5RuntimeDeploy},
	{"fig6", Fig6Inline},
	{"fig7", Fig7Storage},
	{"fig8", Fig8Bursts},
	{"fig9", Fig9Scheduling},
}

// TestFigureDeterminismAcrossWorkers is the central promise of the runner
// package: for every figure, Workers=1 and Workers=8 produce byte-identical
// summaries for the same seed, because each series derives all randomness
// from its positional shard seed and results are collected in index order.
func TestFigureDeterminismAcrossWorkers(t *testing.T) {
	for _, fr := range figureRunners {
		fr := fr
		t.Run(fr.name, func(t *testing.T) {
			t.Parallel()
			serial, err := fr.run(detOpts(1, 1))
			if err != nil {
				t.Fatalf("%s Workers=1: %v", fr.name, err)
			}
			parallel, err := fr.run(detOpts(1, 8))
			if err != nil {
				t.Fatalf("%s Workers=8: %v", fr.name, err)
			}
			fp1, fp8 := fingerprint(serial), fingerprint(parallel)
			if fp1 != fp8 {
				t.Errorf("%s: Workers=1 and Workers=8 summaries differ\n--- Workers=1 ---\n%s--- Workers=8 ---\n%s",
					fr.name, fp1, fp8)
			}
		})
	}
}

// TestFigureSeedSensitivity guards against the opposite failure: the
// determinism above must come from the seed, not from the randomness being
// inert. A different root seed must change the measurements.
func TestFigureSeedSensitivity(t *testing.T) {
	for _, fr := range figureRunners {
		fr := fr
		t.Run(fr.name, func(t *testing.T) {
			t.Parallel()
			a, err := fr.run(detOpts(1, 8))
			if err != nil {
				t.Fatalf("%s seed=1: %v", fr.name, err)
			}
			b, err := fr.run(detOpts(2, 8))
			if err != nil {
				t.Fatalf("%s seed=2: %v", fr.name, err)
			}
			if fingerprint(a) == fingerprint(b) {
				t.Errorf("%s: seeds 1 and 2 produced identical summaries; randomness is not seeded", fr.name)
			}
		})
	}
}

// TestTable1DeterminismAcrossWorkers covers the non-Figure runner with the
// most shards (26 cells).
func TestTable1DeterminismAcrossWorkers(t *testing.T) {
	render := func(res *Table1Result) string {
		var b strings.Builder
		for _, row := range res.Rows {
			for _, prov := range AllProviders {
				c := row.Cells[prov]
				fmt.Fprintf(&b, "%s/%s mr=%.6f tr=%.6f na=%v\n", row.Factor, prov, c.MR, c.TR, c.NA)
			}
		}
		for _, prov := range AllProviders {
			fmt.Fprintf(&b, "base %s=%d\n", prov, int64(res.BaseMedians[prov]))
		}
		return b.String()
	}
	serial, err := Table1(detOpts(1, 1))
	if err != nil {
		t.Fatalf("table1 Workers=1: %v", err)
	}
	parallel, err := Table1(detOpts(1, 8))
	if err != nil {
		t.Fatalf("table1 Workers=8: %v", err)
	}
	if s, p := render(serial), render(parallel); s != p {
		t.Errorf("table1: Workers=1 and Workers=8 differ\n--- Workers=1 ---\n%s--- Workers=8 ---\n%s", s, p)
	}
}

// TestParallelSpeedup demonstrates that the pool buys wall-clock time on
// multi-core machines without changing results. It needs real cores, so it
// is skipped on smaller runners and under -short.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("speedup needs >=4 CPUs, have %d", runtime.NumCPU())
	}
	opts := Options{Seed: 1, Samples: 600, Replicas: 40} // Quick scale
	run := func(workers int) (string, time.Duration) {
		opts := opts
		opts.Workers = workers
		start := time.Now()
		fig, err := Fig8Bursts(opts)
		if err != nil {
			t.Fatalf("fig8 Workers=%d: %v", workers, err)
		}
		return fingerprint(fig), time.Since(start)
	}
	fpSerial, serial := run(1)
	fpParallel, parallel := run(4)
	if fpSerial != fpParallel {
		t.Fatalf("Workers=1 and Workers=4 summaries differ")
	}
	speedup := float64(serial) / float64(parallel)
	t.Logf("fig8 at Quick scale: Workers=1 %v, Workers=4 %v (%.2fx)", serial, parallel, speedup)
	// The 24 series of fig8 split well over 4 workers; require a
	// conservative 1.5x so a noisy shared runner cannot flake the test.
	if speedup < 1.5 {
		t.Errorf("Workers=4 speedup %.2fx < 1.5x (serial %v, parallel %v)", speedup, serial, parallel)
	}
}
