package workflow

import (
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
)

// BenchmarkWorkflowFanout measures the simulator's cost per fan-out/fan-in
// workflow instance — the executor's hot path (barrier accounting, pooled
// instance state, scatter-gather joins) on warm nodes.
func BenchmarkWorkflowFanout(b *testing.B) {
	eng, c := newTestCloud(b, 1, nil)
	d, err := Preset("fanout-4", PresetSpec{Transfer: TransferInline, PayloadBytes: 4 << 10})
	if err != nil {
		b.Fatal(err)
	}
	deployDAG(b, c, d, 0)
	ex, err := New(Config{Cloud: c, DAG: d})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	eng.Spawn("bench", func(p *des.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := ex.Run(p); err != nil {
				b.Error(err)
				return
			}
			p.Sleep(time.Millisecond)
		}
	})
	eng.Run(0)
}
