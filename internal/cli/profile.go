package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags registers -cpuprofile/-memprofile on a command's flag set.
// Call start after flag parsing; the returned stop function finalizes both
// profiles and must run before the command returns (including error paths),
// so callers defer it.
type profileFlags struct {
	cpu *string
	mem *string
}

func addProfileFlags(fs *flag.FlagSet) *profileFlags {
	return &profileFlags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)"),
		mem: fs.String("memprofile", "", "write an allocation profile to this file on exit"),
	}
}

// start begins CPU profiling if requested and returns the stop function.
// The memory profile is captured at stop time so it reflects the command's
// live heap after the work ran.
func (p *profileFlags) start() (stop func() error, err error) {
	var cpuFile *os.File
	if *p.cpu != "" {
		cpuFile, err = os.Create(*p.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if *p.mem != "" {
			f, err := os.Create(*p.mem)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // flush garbage so the profile shows live allocations
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
