package azuretrace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The CSV schema is one function per row with millisecond duration
// percentiles, a simplification of the public Azure Functions trace's
// duration file that preserves exactly the fields Fig. 10 needs:
//
//	function,p25_ms,p50_ms,p75_ms,p95_ms,p99_ms
//
// Users holding the real trace can project it onto this schema and run the
// Fig. 10 analysis over production data instead of the synthesizer.

var csvPercentiles = []int{25, 50, 75, 95, 99}

// WriteCSV serializes records.
func WriteCSV(w io.Writer, records []Record) error {
	if _, err := fmt.Fprintln(w, "function,p25_ms,p50_ms,p75_ms,p95_ms,p99_ms"); err != nil {
		return err
	}
	for _, r := range records {
		fields := make([]string, 0, 1+len(csvPercentiles))
		fields = append(fields, r.Function)
		for _, p := range csvPercentiles {
			ms := float64(r.Percentiles[p]) / float64(time.Millisecond)
			fields = append(fields, strconv.FormatFloat(ms, 'f', 3, 64))
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ReadCSV parses records, validating that each row's percentiles are
// non-decreasing and positive at the median.
func ReadCSV(r io.Reader) ([]Record, error) {
	scanner := bufio.NewScanner(r)
	var records []Record
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || (lineNo == 1 && strings.HasPrefix(line, "function,")) {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 1+len(csvPercentiles) {
			return nil, fmt.Errorf("azuretrace: line %d: want %d fields, got %d",
				lineNo, 1+len(csvPercentiles), len(parts))
		}
		rec := Record{Function: parts[0], Percentiles: make(map[int]time.Duration, len(csvPercentiles))}
		prev := time.Duration(-1)
		for i, p := range csvPercentiles {
			ms, err := strconv.ParseFloat(parts[i+1], 64)
			// ParseFloat accepts "NaN" and "Inf", which pass a plain
			// negativity check and convert to garbage durations; values
			// past maxMS overflow time.Duration the same way.
			if err != nil || ms < 0 || math.IsNaN(ms) || ms > maxMS {
				return nil, fmt.Errorf("azuretrace: line %d: bad p%d value %q", lineNo, p, parts[i+1])
			}
			d := time.Duration(ms * float64(time.Millisecond))
			if d < prev {
				return nil, fmt.Errorf("azuretrace: line %d: percentiles not monotone at p%d", lineNo, p)
			}
			rec.Percentiles[p] = d
			prev = d
		}
		if rec.Median() <= 0 {
			return nil, fmt.Errorf("azuretrace: line %d: non-positive median", lineNo)
		}
		records = append(records, rec)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("azuretrace: no records")
	}
	// Stable, so rows sharing a function name keep their file order and
	// a write/read round trip preserves record order exactly.
	sort.SliceStable(records, func(i, j int) bool { return records[i].Function < records[j].Function })
	return records, nil
}

// maxMS bounds a parsed percentile: one year in milliseconds, far beyond
// any execution time yet orders of magnitude under time.Duration overflow.
const maxMS = 365 * 24 * 3600 * 1000
