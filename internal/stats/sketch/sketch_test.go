package sketch

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/stats"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestEmptySketch(t *testing.T) {
	s := New(0)
	if s.Count() != 0 || s.Buckets() != 0 {
		t.Fatalf("empty sketch: count=%d buckets=%d", s.Count(), s.Buckets())
	}
	if got := s.CDF(); got != nil {
		t.Fatalf("empty CDF = %v, want nil", got)
	}
	if s.Mean() != 0 {
		t.Fatalf("empty mean = %v, want 0", s.Mean())
	}
	for name, fn := range map[string]func(){
		"quantile": func() { s.Quantile(0.5) },
		"min":      func() { s.Min() },
		"max":      func() { s.Max() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty sketch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNewPanicsOnBadAlpha(t *testing.T) {
	for _, alpha := range []float64{-0.01, 0.2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", alpha)
				}
			}()
			New(alpha)
		}()
	}
}

func TestBasicAccounting(t *testing.T) {
	s := New(0)
	s.Add(ms(10))
	s.Add(ms(20))
	s.AddN(ms(30), 2)
	s.Add(0) // clamped observation
	if s.Count() != 5 {
		t.Fatalf("count = %d, want 5", s.Count())
	}
	if s.Min() != 0 || s.Max() != ms(30) {
		t.Fatalf("min/max = %v/%v, want 0/%v", s.Min(), s.Max(), ms(30))
	}
	wantMean := time.Duration((10 + 20 + 30 + 30 + 0) * int64(time.Millisecond) / 5)
	if s.Mean() != wantMean {
		t.Fatalf("mean = %v, want %v", s.Mean(), wantMean)
	}
}

// TestQuantileRelativeError pins the per-value guarantee: every quantile of
// a single-value sketch is within alpha of that value.
func TestQuantileRelativeError(t *testing.T) {
	for _, v := range []time.Duration{time.Nanosecond, time.Microsecond, ms(7), 3 * time.Second, 2 * time.Hour} {
		s := New(0)
		s.Add(v)
		got := s.Quantile(0.5)
		if relErr(got, v) > s.Alpha() {
			t.Errorf("quantile of single value %v = %v (rel err %.4f > alpha %.4f)",
				v, got, relErr(got, v), s.Alpha())
		}
	}
}

func relErr(got, want time.Duration) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(float64(got)-float64(want)) / math.Abs(float64(want))
}

// TestQuantileMatchesExactWithinAlpha compares against the exact sample on
// a skewed deterministic data set.
func TestQuantileMatchesExactWithinAlpha(t *testing.T) {
	s := New(0)
	exact := stats.NewSample(10000)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		v := time.Duration(math.Exp(rng.NormFloat64()*1.2 + 17)) // lognormal around ~24ms
		s.Add(v)
		exact.Add(v)
	}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		got, want := s.Quantile(q), exact.Quantile(q)
		if relErr(got, want) > 2*s.Alpha() {
			t.Errorf("q=%v: sketch %v vs exact %v (rel err %.4f)", q, got, want, relErr(got, want))
		}
	}
	if s.Quantile(0) != exact.Min() || s.Quantile(1) != exact.Max() {
		t.Errorf("extreme quantiles not clamped to exact endpoints: %v/%v vs %v/%v",
			s.Quantile(0), s.Quantile(1), exact.Min(), exact.Max())
	}
}

// TestMergeAssociativeAndDeterministic is the merge contract: splitting a
// stream into shards and merging the shard sketches — in any order, with
// any association — yields a sketch byte-identical to the single-stream
// sketch.
func TestMergeAssociativeAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	values := make([]time.Duration, 50000)
	for i := range values {
		values[i] = time.Duration(rng.Int63n(int64(10 * time.Second)))
	}

	single := New(0)
	for _, v := range values {
		single.Add(v)
	}

	const shards = 7
	parts := make([]*Sketch, shards)
	for i := range parts {
		parts[i] = New(0)
	}
	for i, v := range values {
		parts[i%shards].Add(v)
	}

	// Left fold, right fold, and a shuffled pairwise tree.
	folds := map[string]func() *Sketch{
		"left": func() *Sketch {
			out := New(0)
			for i := 0; i < shards; i++ {
				mustMerge(t, out, parts[i])
			}
			return out
		},
		"right": func() *Sketch {
			out := New(0)
			for i := shards - 1; i >= 0; i-- {
				mustMerge(t, out, parts[i])
			}
			return out
		},
		"tree": func() *Sketch {
			level := make([]*Sketch, 0, shards)
			for _, p := range parts {
				c := New(0)
				mustMerge(t, c, p)
				level = append(level, c)
			}
			for len(level) > 1 {
				next := level[:0]
				for i := 0; i < len(level); i += 2 {
					if i+1 < len(level) {
						mustMerge(t, level[i], level[i+1])
					}
					next = append(next, level[i])
				}
				level = next
			}
			return level[0]
		},
	}
	want := mustJSON(t, single.Record())
	for name, fold := range folds {
		got := mustJSON(t, fold().Record())
		if got != want {
			t.Errorf("%s-fold merge record differs from single-stream record", name)
		}
	}
}

func mustMerge(t *testing.T, dst, src *Sketch) {
	t.Helper()
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestMergeAlphaMismatch(t *testing.T) {
	a, b := New(0.005), New(0.01)
	b.Add(ms(1))
	if err := a.Merge(b); err == nil {
		t.Fatal("merging sketches with different alpha should fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merging nil should be a no-op, got %v", err)
	}
	empty := New(0.01)
	if err := a.Merge(empty); err != nil {
		t.Fatalf("merging an empty sketch should be a no-op, got %v", err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	s := New(0)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		s.Add(time.Duration(rng.Int63n(int64(time.Minute))))
	}
	s.Add(0)
	rec := s.Record()
	back, err := FromRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, back.Record()) != mustJSON(t, rec) {
		t.Fatal("record round trip is not canonical")
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if back.Quantile(q) != s.Quantile(q) {
			t.Fatalf("q=%v differs after round trip: %v vs %v", q, back.Quantile(q), s.Quantile(q))
		}
	}
	if back.Mean() != s.Mean() || back.Count() != s.Count() {
		t.Fatal("mean/count differ after round trip")
	}
}

func TestFromRecordRejectsCorrupt(t *testing.T) {
	good := func() *Record {
		s := New(0)
		s.Add(ms(5))
		return s.Record()
	}
	cases := map[string]*Record{
		"nil": nil,
		"misaligned": func() *Record {
			r := good()
			r.Counts = r.Counts[:0]
			return r
		}(),
		"bad alpha": func() *Record {
			r := good()
			r.Alpha = 0.5
			return r
		}(),
		"count mismatch": func() *Record {
			r := good()
			r.Count = 99
			return r
		}(),
		"zero bucket": func() *Record {
			r := good()
			r.Counts[0] = 0
			r.Count = 0
			return r
		}(),
	}
	for name, rec := range cases {
		if _, err := FromRecord(rec); err == nil {
			t.Errorf("FromRecord(%s) accepted a corrupt record", name)
		}
	}
}

func TestCDFShape(t *testing.T) {
	s := New(0)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		s.Add(time.Duration(rng.Int63n(int64(time.Second))))
	}
	points := s.CDF()
	if len(points) == 0 {
		t.Fatal("no CDF points")
	}
	last := points[len(points)-1]
	if last.Frac != 1 {
		t.Fatalf("CDF does not end at 1: %v", last.Frac)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Value <= points[i-1].Value {
			t.Fatalf("CDF values not strictly increasing at %d: %v then %v", i, points[i-1].Value, points[i].Value)
		}
		if points[i].Frac < points[i-1].Frac {
			t.Fatalf("CDF fractions decrease at %d", i)
		}
	}
}

// TestSumSaturation: a sum overflow degrades the mean to a pinned extreme
// instead of wrapping, and survives record round trips.
func TestSumSaturation(t *testing.T) {
	s := New(0)
	s.AddN(time.Duration(math.MaxInt64/2), 5)
	if !s.saturated || s.sum != math.MaxInt64 {
		t.Fatalf("sum did not saturate: sum=%d saturated=%v", s.sum, s.saturated)
	}
	back, err := FromRecord(s.Record())
	if err != nil {
		t.Fatal(err)
	}
	if !back.saturated {
		t.Fatal("saturation lost in record round trip")
	}
	o := New(0)
	o.Add(ms(1))
	mustMerge(t, o, s)
	if !o.saturated {
		t.Fatal("saturation lost in merge")
	}
}

// TestRecorderSeamAgreement runs the same stream through both Recorder
// implementations and checks they agree within the sketch's error band.
func TestRecorderSeamAgreement(t *testing.T) {
	recs := []Recorder{stats.NewSample(0), New(0)}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30000; i++ {
		v := time.Duration(rng.ExpFloat64() * float64(50*time.Millisecond))
		for _, r := range recs {
			r.Add(v)
		}
	}
	exactSum, sketchSum := recs[0].Summarize(), recs[1].Summarize()
	if exactSum.Count != sketchSum.Count {
		t.Fatalf("counts differ: %d vs %d", exactSum.Count, sketchSum.Count)
	}
	pairs := map[string][2]time.Duration{
		"median": {exactSum.Median, sketchSum.Median},
		"p95":    {exactSum.P95, sketchSum.P95},
		"p99":    {exactSum.P99, sketchSum.P99},
		"min":    {exactSum.Min, sketchSum.Min},
		"max":    {exactSum.Max, sketchSum.Max},
	}
	for name, p := range pairs {
		if relErr(p[1], p[0]) > 0.01 {
			t.Errorf("%s: exact %v vs sketch %v exceeds 1%%", name, p[0], p[1])
		}
	}
	if !reflect.DeepEqual(exactSum.Min, sketchSum.Min) {
		t.Errorf("min should be exact: %v vs %v", exactSum.Min, sketchSum.Min)
	}
}
