package experiments

import (
	"fmt"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/core"
)

// fig5Case is one runtime x deployment-method combination.
type fig5Case struct {
	runtime cloud.Runtime
	method  cloud.DeployMethod
	paper   Ref
}

// fig5Cases hold the paper's AWS cold-start results by runtime and
// deployment method (§VI-B3): ZIP CDFs overlap for Go and Python
// (median 360ms / tail 570ms); containers diverge, with Python much slower
// and far more variable (TMR 4.7).
var fig5Cases = []fig5Case{
	{cloud.RuntimeGo, cloud.DeployZIP, Ref{Median: 360 * time.Millisecond, P99: 570 * time.Millisecond}},
	{cloud.RuntimePython, cloud.DeployZIP, Ref{Median: 360 * time.Millisecond, P99: 570 * time.Millisecond}},
	{cloud.RuntimeGo, cloud.DeployContainer, Ref{Median: 370 * time.Millisecond, P99: 890 * time.Millisecond}},
	{cloud.RuntimePython, cloud.DeployContainer, Ref{Median: 612 * time.Millisecond, P99: 2882 * time.Millisecond}},
}

// Fig5RuntimeDeploy reproduces Fig. 5: AWS cold-start latency distributions
// for Python/Go runtimes deployed via ZIP archives and container images.
// The study is AWS-only, as in the paper (Google lacked container
// deployment and Azure lacked Go at submission time).
func Fig5RuntimeDeploy(opts Options) (*Figure, error) {
	opts = opts.normalized()
	fig := &Figure{
		ID:    "fig5",
		Title: "AWS cold-start latency by language runtime and deployment method",
	}
	series, err := mapSeries(opts, len(fig5Cases), func(i int, seed int64) (Series, error) {
		tc := fig5Cases[i]
		sc := core.StaticConfig{Functions: []core.FunctionConfig{{
			Name:     "rtdm",
			Runtime:  string(tc.runtime),
			Method:   string(tc.method),
			Replicas: opts.Replicas,
		}}}
		res, err := measure("aws", seed, opts.Engine, sc, core.RuntimeConfig{
			Samples: opts.Samples,
			IAT:     core.Duration(longIATFor("aws") / time.Duration(opts.Replicas)),
		})
		if err != nil {
			return Series{}, fmt.Errorf("fig5 %s/%s: %w", tc.runtime, tc.method, err)
		}
		label := fmt.Sprintf("%s %s", tc.runtime, tc.method)
		return seriesFrom(label, 0, res, tc.paper), nil
	})
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}
