package cloud

import (
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/econ"
)

type instanceState int

const (
	stateBusy instanceState = iota
	stateIdle
	// stateSuspended is the third lifecycle state between warm and evicted
	// (Config.Autoscaler with Suspend): the instance's memory leaves its
	// worker but its initialized state is retained, so resuming costs
	// ResumeDelay instead of a cold boot and bills at a reduced rate.
	stateSuspended
	stateGone
)

// Instance is one function instance (an HTTP server sandbox on a worker).
type Instance struct {
	id            int
	fn            *Function
	worker        *Worker
	state         instanceState
	served        uint64
	keepAlive     des.Timer
	createdAt     des.Time
	coldBreakdown ColdBreakdown
	// stateSince is when the instance entered its current state; the usage
	// meters integrate (now - stateSince) per state at every transition.
	stateSince des.Time
	// expireFn is the keep-alive expiry closure, bound once at record
	// creation so parking an instance idle never allocates. It reads
	// inst.fn at fire time, so the record can recycle across functions.
	expireFn func()
	// freeNext links recycled records on the Cloud's instance free list.
	freeNext *Instance
}

// getInstance draws a recycled instance record from the free list (or
// allocates one) and initializes it for a fresh spawn. Identity stays
// unique across recycling: every spawn gets a new id from instanceSeq.
func (c *Cloud) getInstance(fn *Function, w *Worker, createdAt des.Time, cb ColdBreakdown) *Instance {
	inst := c.instFree
	if inst == nil {
		inst = &Instance{}
		inst.expireFn = func() { inst.fn.expire(inst) }
	} else {
		c.instFree = inst.freeNext
		inst.freeNext = nil
	}
	c.instanceSeq++
	inst.id = c.instanceSeq
	inst.fn = fn
	inst.worker = w
	inst.state = stateBusy
	inst.served = 0
	inst.keepAlive = des.Timer{}
	inst.createdAt = createdAt
	inst.coldBreakdown = cb
	inst.stateSince = createdAt
	return inst
}

// putInstance returns a reaped instance record to the free list. Callers
// must have canceled (or consumed) its keep-alive timer and removed it
// from all function state; busy records with in-flight references are
// never pooled.
func (c *Cloud) putInstance(inst *Instance) {
	inst.fn = nil
	inst.worker = nil
	inst.state = stateGone
	inst.keepAlive = des.Timer{}
	inst.stateSince = 0
	inst.freeNext = c.instFree
	c.instFree = inst
}

// ID returns the instance's unique identifier.
func (i *Instance) ID() int { return i.id }

// Served returns the number of invocations this instance has processed.
func (i *Instance) Served() uint64 { return i.served }

// pendingReq is a buffered invocation waiting for an instance grant. The
// waiting party is either a parked proc (sig) or a callback-form record
// (wc); exactly one is set.
type pendingReq struct {
	sig      *des.Signal
	wc       *warmCall
	inst     *Instance
	handoff  bool // granted a recycled instance (queue dispatch)
	enqueued des.Time
}

// notify wakes the buffered request's owner after a grant: the callback
// record when the request came in through the fast path, the waiting proc
// otherwise. Both schedule exactly one resume event at the present
// instant, so the two forms stay schedule-identical.
func (pr *pendingReq) notify() {
	if pr.wc != nil {
		pr.wc.grantNotify()
		return
	}
	pr.sig.Fire()
}

// Function is the load balancer's and scheduler's view of one deployed
// function: its live instances, idle pool, buffered requests, and scale-out
// state.
type Function struct {
	c          *Cloud
	spec       FunctionSpec
	imageKey   string
	imageBytes int64
	initDelay  dist.Dist
	chunkReads int

	live   map[int]*Instance
	idle   []*Instance
	buffer []*pendingReq
	// susp holds suspended instances (not live: no worker slot, no cluster
	// capacity). Resume pops LIFO, so the most recently parked state — the
	// most likely to still be cache-warm on a real provider — returns first.
	susp []*Instance

	pending  int // spawns and resumes in flight
	inflight int // requests admitted and not yet responded

	// snapshotReady marks that a MicroVM snapshot of this function exists
	// (captured on the first full cold boot when snapshotting is enabled).
	snapshotReady bool

	// Token bucket for the rate-limited (Azure-style) scale controller.
	tokens        float64
	lastRefill    des.Time
	evalScheduled bool

	// Per-tenant overrides resolved at Deploy: the keep-alive policy this
	// function's instances park with (the provider-wide one unless the
	// spec overrides it) and the live+pending instance cap (0 = uncapped).
	keepAlive    KeepAlivePolicy
	maxInstances int
	// maxConcurrent, when positive, caps admitted-and-unfinished external
	// requests; excess admissions are rejected with ErrConcurrencyLimit.
	maxConcurrent int

	// as is the per-function autoscaler (nil unless Config.Autoscaler is
	// set); tickFn is its evaluation closure, bound once at record creation
	// like inst.expireFn, so arming the control loop never allocates.
	as        *econ.Autoscaler
	tickFn    func()
	tickTimer des.Timer
	tickArmed bool
	// meter accumulates this tenant's usage (always on; pure arithmetic).
	meter econ.Meter

	// rec, when set, receives this function's successful external
	// invocation latencies (SetFunctionRecorder).
	rec LatencyRecorder
	// tm aggregates this tenant's counters.
	tm TenantMetrics
	// Per-function live-instance integral over virtual time.
	instSecAccum float64
	instSecLast  des.Time

	// freeNext links recycled records on the Cloud's function free list.
	freeNext *Function
}

// noteInstSec folds the elapsed live-instance-seconds into the tenant's
// integral. Must run before any mutation of fn.live.
func (fn *Function) noteInstSec() {
	now := fn.c.eng.Now()
	fn.instSecAccum += float64(len(fn.live)) * (now - fn.instSecLast).Seconds()
	fn.instSecLast = now
}

// atCapacity reports whether the tenant's instance cap is exhausted.
func (fn *Function) atCapacity() bool {
	return fn.maxInstances > 0 && len(fn.live)+fn.pending >= fn.maxInstances
}

// claimIdle pops the most-recently-used idle instance, canceling its
// keep-alive timer. MRU reuse keeps hot instances hot, matching provider
// behavior of routing to recently-active instances.
func (fn *Function) claimIdle() *Instance {
	for len(fn.idle) > 0 {
		inst := fn.idle[len(fn.idle)-1]
		fn.idle = fn.idle[:len(fn.idle)-1]
		if inst.state != stateIdle {
			continue // raced with expiry bookkeeping; skip
		}
		inst.keepAlive.Cancel()
		inst.keepAlive = des.Timer{}
		fn.noteUsage(inst)
		inst.state = stateBusy
		return inst
	}
	return nil
}

// release returns an instance after serving a request. Under queueing
// policies the oldest buffered request (if any) is granted the instance
// directly; under the no-queue policy every buffered request is bound to a
// dedicated pending instance (the paper observes AWS and Google burst
// latencies never drop into the warm range, §VI-D2), so freed instances
// always park idle.
func (fn *Function) release(inst *Instance) {
	if inst.state == stateGone {
		return
	}
	if len(fn.buffer) > 0 {
		// Under the autoscaler, freed instances always absorb the backlog:
		// capacity is the controller's decision, not the queue's, so a
		// buffered request never waits for a dedicated instance.
		if fn.as != nil || fn.c.cfg.Policy.Kind != PolicyNoQueue {
			fn.grant(inst, true)
			return
		}
		// Saturation exception: when the cluster is at capacity and
		// spawns are blocked waiting for slots, even a no-queue provider
		// routes buffered requests to freed warm instances — the
		// dedicated-instance policy is physically unavailable. The same
		// holds when the tenant's own concurrency cap is exhausted: no
		// dedicated instance can ever come up, so freed instances must
		// absorb the backlog.
		if (fn.c.capRes != nil && fn.c.capRes.QueueLen() > 0) || fn.atCapacity() {
			fn.grant(inst, true)
			return
		}
	}
	fn.parkIdle(inst)
}

// grant hands an instance to the oldest buffered request. handoff marks
// grants of recycled instances to queued requests, which pay the provider's
// queue-dispatch overhead.
func (fn *Function) grant(inst *Instance, handoff bool) {
	pr := fn.buffer[0]
	copy(fn.buffer, fn.buffer[1:])
	fn.buffer[len(fn.buffer)-1] = nil
	fn.buffer = fn.buffer[:len(fn.buffer)-1]
	inst.state = stateBusy
	pr.inst = inst
	pr.handoff = handoff
	pr.notify()
}

// dropBuffered removes a timed-out request from the buffer. A no-op when
// the request was already granted an instance.
func (fn *Function) dropBuffered(pr *pendingReq) {
	for i, cand := range fn.buffer {
		if cand == pr {
			fn.buffer = append(fn.buffer[:i], fn.buffer[i+1:]...)
			return
		}
	}
}

// parkIdle moves an instance to the idle pool and arms its keep-alive timer
// under the function's (possibly per-tenant) policy. Expiries route through
// AfterSlack so a provider-scale simulation can coarsen them onto the timer
// wheel; with KeepAliveSlack unset this is exactly After.
func (fn *Function) parkIdle(inst *Instance) {
	fn.noteUsage(inst)
	inst.state = stateIdle
	fn.idle = append(fn.idle, inst)
	// Under the autoscaler the control loop owns reaping (suspend/evict on
	// scale-down ticks); idle instances hold no keep-alive timers at all.
	if fn.as != nil {
		return
	}
	life := fn.keepAlive.Fixed
	if life <= 0 {
		life = fn.keepAlive.Dist.Sample(fn.c.rngSched)
	}
	inst.keepAlive = fn.c.eng.AfterSlack(life, inst.expireFn)
}

// destroy removes a crashed instance immediately.
func (fn *Function) destroy(inst *Instance) {
	if inst.state == stateGone {
		return
	}
	wasIdle := inst.state == stateIdle
	inst.keepAlive.Cancel()
	inst.keepAlive = des.Timer{}
	fn.noteUsage(inst)
	inst.state = stateGone
	fn.noteInstSec()
	delete(fn.live, inst.id)
	inst.worker.Instances--
	fn.c.noteInstanceDelta(-1)
	fn.c.releaseClusterSlot()
	if wasIdle {
		// Busy records still have in-flight references (the serving proc /
		// callback chain); only quiesced ones are safe to recycle.
		fn.c.putInstance(inst)
	}
}

// expire reaps an idle instance whose keep-alive elapsed.
func (fn *Function) expire(inst *Instance) {
	if inst.state != stateIdle {
		return
	}
	fn.noteUsage(inst)
	inst.state = stateGone
	inst.keepAlive = des.Timer{}
	for i, cand := range fn.idle {
		if cand == inst {
			fn.idle = append(fn.idle[:i], fn.idle[i+1:]...)
			break
		}
	}
	fn.noteInstSec()
	delete(fn.live, inst.id)
	inst.worker.Instances--
	fn.c.noteInstanceDelta(-1)
	fn.c.releaseClusterSlot()
	fn.c.metrics.Expirations++
	fn.c.putInstance(inst)
}

// maybeScale applies the provider's scheduling policy to the current buffer,
// spawning however many instances the policy allows (§VI-D3).
func (fn *Function) maybeScale() {
	// Autoscaler mode routes all capacity decisions through the
	// concurrency controller; the buffer-driven policies below are the
	// legacy (fixed keep-alive) control plane.
	if fn.as != nil {
		fn.autoscaleAdmit()
		return
	}
	buffered := len(fn.buffer)
	if buffered == 0 {
		return
	}
	var need int
	policy := fn.c.cfg.Policy
	switch policy.Kind {
	case PolicyNoQueue:
		// One dedicated instance per buffered request.
		need = buffered - fn.pending
	case PolicyBoundedQueue:
		// Each pending instance will absorb up to MaxQueuePerInstance
		// buffered requests when it comes up.
		need = ceilDiv(buffered, policy.MaxQueuePerInstance) - fn.pending
	case PolicyRateLimited:
		fn.refillTokens()
		need = ceilDiv(buffered, policy.MaxQueuePerInstance) - fn.pending
		if allowed := int(fn.tokens); need > allowed {
			need = allowed
		}
		if need > 0 {
			fn.tokens -= float64(need)
		}
		// The scale controller re-evaluates periodically while demand
		// remains, mimicking Azure's gradual scale-out.
		fn.scheduleEval()
	}
	// Per-tenant concurrency cap: never scale past the tenant's limit.
	// Requests beyond it stay buffered until a freed instance absorbs them.
	if fn.maxInstances > 0 {
		if room := fn.maxInstances - len(fn.live) - fn.pending; need > room {
			need = room
		}
	}
	for i := 0; i < need; i++ {
		fn.spawnOne()
	}
}

// refillTokens lazily accrues scale-out tokens.
func (fn *Function) refillTokens() {
	now := fn.c.eng.Now()
	elapsed := now - fn.lastRefill
	if elapsed > 0 {
		fn.tokens += elapsed.Seconds() * fn.c.cfg.Policy.TokensPerSec
		if fn.tokens > fn.c.cfg.Policy.MaxTokens {
			fn.tokens = fn.c.cfg.Policy.MaxTokens
		}
	}
	fn.lastRefill = now
}

// scheduleEval arms one pending re-evaluation of the scale controller.
func (fn *Function) scheduleEval() {
	if fn.evalScheduled {
		return
	}
	interval := fn.c.cfg.Policy.EvalInterval
	if interval <= 0 {
		return
	}
	fn.evalScheduled = true
	fn.c.eng.After(interval, func() {
		fn.evalScheduled = false
		fn.maybeScale()
	})
}

// spawnOne launches the cold-start pipeline for a new instance: cluster
// scheduler placement (3)-(4), sandbox boot, image fetch from storage (5),
// and runtime initialization (8).
func (fn *Function) spawnOne() {
	c := fn.c
	fn.pending++
	c.metrics.Spawns++
	c.eng.Spawn("spawn/"+fn.spec.Name, func(p *des.Proc) {
		var cb ColdBreakdown
		var w *Worker
		// Bounded cluster capacity: wait for a free instance slot before
		// placement (the saturation regime of a full cluster).
		if c.capRes != nil {
			capStart := p.Now()
			p.Acquire(c.capRes)
			cb.SchedulerQueue += p.Now() - capStart
		}
		for {
			// Cluster scheduler: placement decisions contend on a shared
			// resource, so mass cold starts queue (§VI-D2).
			acquireStart := p.Now()
			p.Acquire(c.schedRes)
			cb.SchedulerQueue += p.Now() - acquireStart
			placement := c.cfg.PlacementDelay.Sample(c.rngSched)
			cb.Placement += placement
			p.Sleep(placement)
			c.schedRes.Release()

			// Reserve the chosen worker's slot immediately so concurrent
			// placements see each other's choices (least-loaded correctness).
			w = c.pickWorker()
			w.Instances++

			// Snapshot fast path: restore a previously captured MicroVM
			// image instead of booting and initializing from scratch.
			if c.cfg.Snapshots.Enabled && fn.snapshotReady {
				restore := c.cfg.Snapshots.RestoreDelay.Sample(c.rngSched)
				cb.SnapshotRestore += restore
				p.Sleep(restore)
				c.metrics.SnapshotRestores++
				break
			}

			// Instance manager on the chosen worker: boot the sandbox.
			boot := c.cfg.SandboxBoot.Sample(c.rngSched)
			cb.SandboxBoot += boot
			p.Sleep(boot)

			// Retrieve the function image from the image store
			// (cost-optimized, possibly cached under load).
			_, fetchLat, err := c.imageStore.Get(p, fn.imageKey)
			if err != nil {
				// Image was seeded at deploy time; missing means a
				// programming error in the simulator itself.
				panic(err)
			}
			cb.ImageFetch += fetchLat

			// Interpreted runtimes in splintered container images perform
			// on-demand chunk loads against the image store (§VI-B3).
			for i := 0; i < fn.chunkReads; i++ {
				d := c.cfg.ChunkReadLatency.Sample(c.rngSched)
				cb.ChunkReads += d
				p.Sleep(d)
			}

			// Language runtime initialization.
			initD := fn.initDelay.Sample(c.rngSched)
			cb.RuntimeInit += initD
			p.Sleep(initD)

			// Injected spawn failure: release the reservation and repeat
			// the pipeline from placement.
			if f := c.cfg.Faults.SpawnFailureProb; f > 0 && c.rngSched.Float64() < f {
				c.metrics.SpawnFailures++
				w.Instances--
				continue
			}
			// Same failure injected by the faults layer, from its own
			// stream so enabling it never shifts scheduler randomness.
			if c.inj != nil && c.inj.SpawnFail() {
				c.metrics.SpawnFailures++
				w.Instances--
				continue
			}

			// First full boot with snapshotting enabled: capture a
			// snapshot for future restores.
			if c.cfg.Snapshots.Enabled && !fn.snapshotReady {
				capture := c.cfg.Snapshots.CaptureOverhead.Sample(c.rngSched)
				cb.SnapshotCapture += capture
				p.Sleep(capture)
				fn.snapshotReady = true
				c.metrics.SnapshotCaptures++
			}
			break
		}

		fn.pending--
		fn.noteInstSec()
		inst := c.getInstance(fn, w, p.Now(), cb)
		fn.live[inst.id] = inst
		w.Spawned++
		c.noteInstanceDelta(1)
		// A fresh instance serves the oldest buffered request; if every
		// buffered request was already granted (or none remain), it parks.
		if len(fn.buffer) > 0 {
			fn.grant(inst, false)
		} else {
			fn.parkIdle(inst)
		}
	})
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
