package cloud

import (
	"reflect"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
)

// formTrace captures everything observable about one load run: successful
// latencies and errors in completion order, final metrics, and the virtual
// clock at drain. Two execution forms are equivalent iff their traces are
// deeply equal — including the completion order, which is sensitive to the
// engine's (timestamp, seq) tie-breaking and the RNG draw interleaving.
type formTrace struct {
	lats    []time.Duration
	errs    []string
	metrics Metrics
	virtual des.Time
	instSec float64
}

type sliceRecorder struct{ lats []time.Duration }

func (r *sliceRecorder) Add(d time.Duration) { r.lats = append(r.lats, d) }

// runForm drives n invocations in bursts against a fresh cloud, using the
// proc form (Spawn+Invoke, exactly the scale experiment's arrival loop) or
// the callback form (Call chain + InvokeAsync).
func runForm(t *testing.T, cfg Config, callback bool, n, burst int, iat, exec time.Duration) formTrace {
	t.Helper()
	eng := des.NewEngine()
	defer eng.Close()
	c, err := New(eng, cfg, dist.NewStreams(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(FunctionSpec{Name: "f", Runtime: RuntimePython, Method: DeployZIP, ExecTime: exec}); err != nil {
		t.Fatal(err)
	}
	rec := &sliceRecorder{}
	c.SetLatencyRecorder(rec)
	out := formTrace{}
	req := &Request{Fn: "f"}

	if callback {
		c.SetEngineMode(EngineCallback)
		done := func(_ *Response, err error) {
			if err != nil {
				out.errs = append(out.errs, err.Error())
			}
		}
		remaining := n
		var arrive func()
		arrive = func() {
			b := burst
			if b > remaining {
				b = remaining
			}
			for j := 0; j < b; j++ {
				c.InvokeAsync(req, done)
			}
			remaining -= b
			if remaining > 0 {
				eng.CallAfter(iat, arrive)
			}
		}
		eng.Call(arrive)
	} else {
		c.SetEngineMode(EngineProc)
		invoke := func(p *des.Proc) {
			if _, err := c.Invoke(p, req); err != nil {
				out.errs = append(out.errs, err.Error())
			}
		}
		eng.Spawn("arrivals", func(p *des.Proc) {
			remaining := n
			for remaining > 0 {
				b := burst
				if b > remaining {
					b = remaining
				}
				for j := 0; j < b; j++ {
					eng.Spawn("req", invoke)
				}
				remaining -= b
				if remaining > 0 {
					p.Sleep(iat)
				}
			}
		})
	}
	eng.Run(0)
	out.lats = rec.lats
	out.metrics = c.Metrics()
	out.virtual = eng.Now()
	out.instSec = c.InstanceSeconds()
	return out
}

// diffForms asserts the two forms produce deeply equal traces for one load
// shape.
func diffForms(t *testing.T, cfg Config, n, burst int, iat, exec time.Duration) {
	t.Helper()
	proc := runForm(t, cfg, false, n, burst, iat, exec)
	cb := runForm(t, cfg, true, n, burst, iat, exec)
	if proc.virtual != cb.virtual {
		t.Errorf("virtual time diverged: proc=%v callback=%v", proc.virtual, cb.virtual)
	}
	if !reflect.DeepEqual(proc.metrics, cb.metrics) {
		t.Errorf("metrics diverged:\nproc     %+v\ncallback %+v", proc.metrics, cb.metrics)
	}
	if !reflect.DeepEqual(proc.errs, cb.errs) {
		t.Errorf("errors diverged:\nproc     %v\ncallback %v", proc.errs, cb.errs)
	}
	if proc.instSec != cb.instSec {
		t.Errorf("instance-seconds diverged: proc=%v callback=%v", proc.instSec, cb.instSec)
	}
	if !reflect.DeepEqual(proc.lats, cb.lats) {
		if len(proc.lats) != len(cb.lats) {
			t.Fatalf("latency count diverged: proc=%d callback=%d", len(proc.lats), len(cb.lats))
		}
		for i := range proc.lats {
			if proc.lats[i] != cb.lats[i] {
				t.Fatalf("latency %d diverged: proc=%v callback=%v", i, proc.lats[i], cb.lats[i])
			}
		}
	}
}

// noisyConfig is testConfig with every stochastic pipeline feature armed:
// jittered component delays, ingestion congestion with slow-path lottery,
// short keep-alive (expiry churn), and a gateway queue timeout. Any
// event-schedule or RNG-draw mismatch between the forms desynchronizes the
// shared streams and shows up as diverging latencies within a few bursts.
func noisyConfig() Config {
	cfg := testConfig()
	cfg.FrontendDelay = dist.Uniform{Min: time.Millisecond, Max: 4 * time.Millisecond}
	cfg.RoutingDelay = dist.Uniform{Min: 200 * time.Microsecond, Max: 2 * time.Millisecond}
	cfg.WarmOverhead = dist.Uniform{Min: time.Millisecond, Max: 6 * time.Millisecond}
	cfg.ResponseDelay = dist.Uniform{Min: 300 * time.Microsecond, Max: 2 * time.Millisecond}
	cfg.CongestionThreshold = 2
	cfg.CongestionUnit = 400 * time.Microsecond
	cfg.CongestionCap = 20 * time.Millisecond
	cfg.SlowPathProbPerInflight = 0.04
	cfg.SlowPathMaxProb = 0.6
	cfg.SlowPathDelay = dist.Uniform{Min: 5 * time.Millisecond, Max: 30 * time.Millisecond}
	cfg.KeepAlive = KeepAlivePolicy{Fixed: 250 * time.Millisecond}
	return cfg
}

// TestInvokeAsyncMatchesInvoke is the cloud-level differential gate: the
// callback form must replay the proc form's virtual trace bit for bit
// across load shapes covering warm reuse, cold bursts, queue waits and
// grants, congestion slow paths, and keep-alive expiry.
func TestInvokeAsyncMatchesInvoke(t *testing.T) {
	t.Run("warm-steady", func(t *testing.T) {
		diffForms(t, testConfig(), 64, 1, 50*time.Millisecond, 0)
	})
	t.Run("noisy-bursts", func(t *testing.T) {
		diffForms(t, noisyConfig(), 200, 16, 20*time.Millisecond, 2*time.Millisecond)
	})
	t.Run("bounded-queue-handoff", func(t *testing.T) {
		cfg := noisyConfig()
		cfg.Policy = PolicyConfig{Kind: PolicyBoundedQueue, MaxQueuePerInstance: 4}
		cfg.QueueHandoffDelay = dist.Uniform{Min: 500 * time.Microsecond, Max: 3 * time.Millisecond}
		diffForms(t, cfg, 200, 24, 15*time.Millisecond, 3*time.Millisecond)
	})
	t.Run("queue-timeouts", func(t *testing.T) {
		cfg := noisyConfig()
		cfg.Policy = PolicyConfig{Kind: PolicyRateLimited, MaxQueuePerInstance: 2,
			TokensPerSec: 2, MaxTokens: 3, InitialTokens: 1, EvalInterval: 40 * time.Millisecond}
		cfg.QueueTimeout = 60 * time.Millisecond
		cfg.QueueHandoffDelay = dist.Constant(time.Millisecond)
		diffForms(t, cfg, 240, 32, 25*time.Millisecond, 4*time.Millisecond)
	})
	t.Run("grant-race-exact-deadline", func(t *testing.T) {
		// All-constant delays align releases and queue deadlines on the
		// same virtual instants, reproducing the PR 4 grant-race shape
		// where the timeout and a grant land at the same tick.
		cfg := testConfig()
		cfg.Policy = PolicyConfig{Kind: PolicyBoundedQueue, MaxQueuePerInstance: 8}
		cfg.QueueTimeout = 137 * time.Millisecond
		cfg.QueueHandoffDelay = dist.Constant(2 * time.Millisecond)
		diffForms(t, cfg, 160, 20, 10*time.Millisecond, 5*time.Millisecond)
	})
}

// TestInvokeAsyncProcModeFallback pins the EngineProc knob and the
// ineligibility fallbacks: a chained function, a crash-prone profile, and
// a cloud with a tracer installed must all run the proc form through
// InvokeAsync and report proc-form responses (Timestamps populated for
// chains).
func TestInvokeAsyncProcModeFallback(t *testing.T) {
	cfg := testConfig()
	eng := des.NewEngine()
	defer eng.Close()
	c, err := New(eng, cfg, dist.NewStreams(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(FunctionSpec{Name: "consumer", Runtime: RuntimePython, Method: DeployZIP}); err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(FunctionSpec{Name: "producer", Runtime: RuntimePython, Method: DeployZIP,
		Chain: &ChainSpec{Next: "consumer", Transfer: TransferInline, PayloadBytes: 1 << 10}}); err != nil {
		t.Fatal(err)
	}
	var got *Response
	c.InvokeAsync(&Request{Fn: "producer"}, func(r *Response, err error) {
		if err != nil {
			t.Errorf("chained InvokeAsync: %v", err)
		}
		got = r
	})
	eng.Run(0)
	if got == nil {
		t.Fatal("done callback never ran")
	}
	if _, ok := got.TransferTime("producer", "consumer"); !ok {
		t.Error("chain fallback lost intra-function timestamps")
	}

	if c.callbackEligible(&Request{Fn: "producer", Internal: true}, c.functions["producer"]) {
		t.Error("internal requests must not be callback-eligible")
	}
	if !c.callbackEligible(&Request{Fn: "consumer"}, c.functions["consumer"]) {
		t.Error("plain external request should be callback-eligible")
	}
	crash := c.cfg
	c.cfg.Faults.CrashProb = 0.5
	if c.callbackEligible(&Request{Fn: "consumer"}, c.functions["consumer"]) {
		t.Error("crash-prone profile must fall back to the proc form")
	}
	c.cfg = crash

	// Unknown functions surface the proc form's error through done.
	var unknownErr error
	c.InvokeAsync(&Request{Fn: "nope"}, func(_ *Response, err error) { unknownErr = err })
	eng.Run(0)
	if unknownErr == nil {
		t.Error("unknown function should surface an error via done")
	}
}

// TestAllocFreeCallbackChain is the zero-alloc gate for the callback fast
// path: after warm-up (cold start paid, free list primed, ring/heap grown)
// a warm InvokeAsync sequence must allocate nothing.
func TestAllocFreeCallbackChain(t *testing.T) {
	eng := des.NewEngine()
	defer eng.Close()
	c, err := New(eng, testConfig(), dist.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(FunctionSpec{Name: "f", Runtime: RuntimePython, Method: DeployZIP}); err != nil {
		t.Fatal(err)
	}
	c.SetEngineMode(EngineCallback)
	req := &Request{Fn: "f"}
	done := func(_ *Response, err error) {
		if err != nil {
			t.Error(err)
		}
	}
	run := func() {
		for i := 0; i < 16; i++ {
			c.InvokeAsync(req, done)
		}
		// Run to a horizon short of the keep-alive deadline: draining the
		// whole schedule would expire the warm pool and turn every
		// measured run cold.
		eng.Run(eng.Now() + time.Second)
	}
	run()
	spawns := c.Metrics().Spawns
	if allocs := testing.AllocsPerRun(100, run); allocs > 0 {
		t.Fatalf("callback warm path allocates %.2f allocs per 16-invoke run; must be 0", allocs)
	}
	if got := c.Metrics().Spawns; got != spawns {
		t.Fatalf("measured runs were not warm: %d extra spawns", got-spawns)
	}
}
