package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFaultsCommand(t *testing.T) {
	code, out, errOut := run(t, "faults", "-n", "200", "-shards", "2", "-seed", "7",
		"-iat", "20ms", "-rates", "0,0.2")
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	for _, want := range []string{"fault sweep", "none", "r3/t2s/b100ms..1s/jitter"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestFaultsWorkerCountInvariance is the PR's acceptance criterion at the
// user-visible surface: the same seed prints the same numbers whether the
// shards run serially or eight at a time.
func TestFaultsWorkerCountInvariance(t *testing.T) {
	args := []string{"faults", "-n", "200", "-shards", "2", "-seed", "7",
		"-iat", "20ms", "-rates", "0,0.2", "-csv", "-"}
	code1, out1, err1 := run(t, append(args, "-workers", "1")...)
	code8, out8, err8 := run(t, append(args, "-workers", "8")...)
	if code1 != 0 || code8 != 0 {
		t.Fatalf("codes %d/%d errs %q/%q", code1, code8, err1, err8)
	}
	if out1 != out8 {
		t.Fatalf("output differs between -workers 1 and -workers 8:\n--- w1:\n%s\n--- w8:\n%s", out1, out8)
	}
}

func TestFaultsJSONAndCSVFiles(t *testing.T) {
	dir := t.TempDir()
	js := filepath.Join(dir, "sweep.json")
	csv := filepath.Join(dir, "sweep.csv")
	code, _, errOut := run(t, "faults", "-n", "100", "-shards", "2", "-rates", "0",
		"-retries", "0", "-iat", "10ms", "-json", js, "-csv", csv)
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	jsData, err := os.ReadFile(js)
	if err != nil || !strings.Contains(string(jsData), `"cells"`) {
		t.Fatalf("json file: %v %q", err, jsData)
	}
	csvData, err := os.ReadFile(csv)
	if err != nil || !strings.HasPrefix(string(csvData), "rate,policy,") {
		t.Fatalf("csv file: %v %q", err, csvData)
	}
}

func TestFaultsConfigFile(t *testing.T) {
	code, out, errOut := run(t, "faults", "-n", "100", "-shards", "2", "-iat", "10ms",
		"-rates", "0.2", "-config", "../../configs/faults.json")
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
	// The committed config replaces the flag grid with naive + its policy.
	if !strings.Contains(out, "none") || !strings.Contains(out, "h500ms") {
		t.Fatalf("config-file policies missing from output:\n%s", out)
	}
}

func TestFaultsBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"bad rates":       {"faults", "-rates", "zero"},
		"rate range":      {"faults", "-rates", "2"},
		"bad retries":     {"faults", "-retries", "three"},
		"missing config":  {"faults", "-config", "does-not-exist.json"},
		"zero n":          {"faults", "-n", "0"},
		"hedge past t/o":  {"faults", "-retries", "1", "-timeout", "1s", "-hedge", "2s"},
		"unknown profile": {"faults", "-provider", "nonesuch"},
	} {
		if code, _, _ := run(t, args...); code == 0 {
			t.Errorf("%s: exit 0 for %v", name, args)
		}
	}
}
