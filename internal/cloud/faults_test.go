package cloud

import (
	"errors"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/dist"
)

func TestCrashWithoutRetriesSurfaces(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = FaultConfig{CrashProb: 1}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	r := invokeAt(eng, c, 0, &Request{Fn: "f"})
	eng.Run(time.Minute)
	if !errors.Is(r.err, ErrInstanceCrash) {
		t.Fatalf("err = %v, want instance crash", r.err)
	}
	if r.resp.Attempts != 1 {
		t.Fatalf("attempts = %d", r.resp.Attempts)
	}
	if c.Metrics().Crashes != 1 {
		t.Fatalf("crashes = %d", c.Metrics().Crashes)
	}
	// The crashed instance must be gone, not recycled.
	if c.LiveInstances("f") != 0 {
		t.Fatalf("crashed instance still live")
	}
	if r.resp.Breakdown.Total() != r.lat {
		t.Fatalf("breakdown %v != latency %v", r.resp.Breakdown.Total(), r.lat)
	}
}

func TestCrashRetriesEventuallySucceed(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = FaultConfig{
		CrashProb:    0.5,
		Retries:      10,
		RetryBackoff: dist.Constant(20 * time.Millisecond),
	}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	var rs []*result
	for i := 0; i < 40; i++ {
		rs = append(rs, invokeAt(eng, c, time.Duration(i)*3*time.Second, &Request{Fn: "f"}))
	}
	eng.Run(10 * time.Minute)
	retried := 0
	for i, r := range rs {
		if r.err != nil {
			t.Fatalf("request %d failed despite retries: %v", i, r.err)
		}
		if r.resp.Attempts > 1 {
			retried++
			if r.resp.Breakdown.Retried == 0 {
				t.Fatalf("request %d retried without Retried time", i)
			}
		}
		if r.resp.Breakdown.Total() != r.lat {
			t.Fatalf("request %d breakdown %v != latency %v", i, r.resp.Breakdown.Total(), r.lat)
		}
	}
	if retried == 0 {
		t.Fatal("expected some requests to retry at 50% crash rate")
	}
	m := c.Metrics()
	if m.Crashes == 0 || m.Retries == 0 || m.Crashes < m.Retries {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestRetryLatencyExceedsCleanRun(t *testing.T) {
	clean := testConfig()
	eng1, c1 := newTestCloud(t, clean)
	deploy(t, c1, FunctionSpec{Name: "f"})
	invokeAt(eng1, c1, 0, &Request{Fn: "f"})
	base := invokeAt(eng1, c1, time.Minute, &Request{Fn: "f"})
	eng1.Run(2 * time.Minute)

	faulty := testConfig()
	faulty.Faults = FaultConfig{CrashProb: 0.6, Retries: 20, RetryBackoff: dist.Constant(50 * time.Millisecond)}
	eng2, c2 := newTestCloud(t, faulty)
	deploy(t, c2, FunctionSpec{Name: "f"})
	var rs []*result
	for i := 0; i < 60; i++ {
		rs = append(rs, invokeAt(eng2, c2, time.Duration(i)*3*time.Second, &Request{Fn: "f"}))
	}
	eng2.Run(time.Hour)
	var worst time.Duration
	for _, r := range rs {
		if r.lat > worst {
			worst = r.lat
		}
	}
	if worst <= base.lat+100*time.Millisecond {
		t.Fatalf("retried tail %v should well exceed clean latency %v", worst, base.lat)
	}
}

func TestSpawnFailuresRetryUntilSuccess(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = FaultConfig{SpawnFailureProb: 0.6}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	r := invokeAt(eng, c, 0, &Request{Fn: "f"})
	eng.Run(5 * time.Minute) // stop before keep-alive reaps the instance
	if r.err != nil {
		t.Fatalf("cold start failed: %v", r.err)
	}
	if !r.resp.Cold {
		t.Fatal("expected cold serve")
	}
	if c.Metrics().SpawnFailures == 0 {
		t.Skip("no spawn failure sampled at this seed") // extremely unlikely at p=0.6
	}
	// Worker reservations balance out: exactly one live instance.
	total := 0
	for _, w := range c.Workers() {
		total += w.Instances
	}
	if total != 1 {
		t.Fatalf("worker instance total = %d after failed spawns, want 1", total)
	}
	// Cold breakdown accumulates the failed attempts.
	if r.resp.Breakdown.ColdStart.Total() != r.resp.Breakdown.QueueWait {
		t.Fatalf("cold phases %v != queue wait %v",
			r.resp.Breakdown.ColdStart.Total(), r.resp.Breakdown.QueueWait)
	}
}

func TestFaultConfigValidation(t *testing.T) {
	bad := []FaultConfig{
		{CrashProb: -0.1},
		{CrashProb: 1.1},
		{SpawnFailureProb: 1},
		{Retries: -1},
	}
	for i, f := range bad {
		cfg := testConfig()
		cfg.Faults = f
		if err := cfg.Validate(); err == nil {
			t.Errorf("fault config %d passed validation", i)
		}
	}
}

func TestChainConsumerCrashPropagates(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = FaultConfig{CrashProb: 1}
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "consumer", Runtime: RuntimeGo})
	deploy(t, c, FunctionSpec{Name: "producer", Runtime: RuntimeGo,
		Chain: &ChainSpec{Next: "consumer", Transfer: TransferInline, PayloadBytes: 1}})
	r := invokeAt(eng, c, 0, &Request{Fn: "producer"})
	eng.Run(time.Minute)
	// With CrashProb 1, the producer itself crashes before chaining.
	if !errors.Is(r.err, ErrInstanceCrash) {
		t.Fatalf("err = %v", r.err)
	}
}

func TestQueueTimeout(t *testing.T) {
	cfg := testConfig()
	// Rate-limited policy that never spawns: every request queues forever.
	cfg.Policy = PolicyConfig{
		Kind:                PolicyRateLimited,
		MaxQueuePerInstance: 10,
		InitialTokens:       0,
		MaxTokens:           0.5,
		TokensPerSec:        0.0001,
		EvalInterval:        time.Second,
	}
	cfg.QueueTimeout = 2 * time.Second
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	r := invokeAt(eng, c, 0, &Request{Fn: "f"})
	eng.Run(time.Minute)
	if !errors.Is(r.err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want queue timeout", r.err)
	}
	if c.Metrics().QueueTimeouts != 1 {
		t.Fatalf("queue timeouts = %d", c.Metrics().QueueTimeouts)
	}
	// The abandoned request must be gone from the buffer.
	if got := len(c.functions["f"].buffer); got != 0 {
		t.Fatalf("buffer len = %d after timeout", got)
	}
}

func TestQueueTimeoutNotTriggeredWhenServed(t *testing.T) {
	cfg := testConfig()
	cfg.QueueTimeout = 30 * time.Second // far above a cold start
	eng, c := newTestCloud(t, cfg)
	deploy(t, c, FunctionSpec{Name: "f"})
	r := invokeAt(eng, c, 0, &Request{Fn: "f"})
	eng.Run(time.Minute)
	if r.err != nil {
		t.Fatalf("unexpected error: %v", r.err)
	}
	if c.Metrics().QueueTimeouts != 0 {
		t.Fatal("spurious queue timeout")
	}
}
