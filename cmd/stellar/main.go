// Command stellar is the reproduction's CLI: it deploys functions, drives
// measurement runs (the STeLLAR client), and regenerates every table and
// figure of the paper's evaluation against the simulated provider clouds.
//
// Usage:
//
//	stellar providers
//	stellar run -static static.json -runtime runtime.json [-endpoints out.json] [-csv out.csv] [-breakdown]
//	stellar run -transport http -endpoints endpoints.json -runtime runtime.json [-scale X]
//	stellar bench -provider aws [-samples N] [-iat D] [-burst N] [-exec D] [-replicas N] [-breakdown]
//	stellar experiment -id fig3a|...|fig10|table1|all [-samples N] [-replicas N] [-seed N]
package main

import (
	"os"

	"github.com/stellar-repro/stellar/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:], os.Stdout, os.Stderr))
}
