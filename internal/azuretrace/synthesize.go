package azuretrace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/stellar-repro/stellar/internal/dist"
)

// Synthesize turns a Record's percentile ladder into a sampleable
// execution-time distribution for trace replay. Sampling inverts the
// empirical CDF defined by the record's percentile knots with log-linear
// interpolation between them — execution times in the Azure trace span
// orders of magnitude, so interpolating in log space preserves the
// multiplicative shape of each function's distribution (a straight line in
// linear space would put far too much mass near the upper knot).
//
// Beyond the ladder the distribution extrapolates conservatively: below the
// lowest knot it tapers toward half that knot's value at u=0, and above the
// highest it continues the p95→p99 log slope, capped at 4x the p99 so a
// single record can never produce unbounded tails.
func Synthesize(r Record) (dist.Dist, error) {
	type knot struct {
		u    float64 // cumulative probability
		logV float64 // ln(duration in ns)
	}
	ps := make([]int, 0, len(r.Percentiles))
	for p := range r.Percentiles {
		if p <= 0 || p >= 100 {
			return nil, fmt.Errorf("azuretrace: %s: percentile %d out of (0,100)", r.Function, p)
		}
		ps = append(ps, p)
	}
	if len(ps) < 2 {
		return nil, fmt.Errorf("azuretrace: %s: need at least 2 percentiles, have %d", r.Function, len(ps))
	}
	sort.Ints(ps)
	knots := make([]knot, 0, len(ps))
	prev := time.Duration(0)
	for _, p := range ps {
		v := r.Percentiles[p]
		if v <= 0 {
			return nil, fmt.Errorf("azuretrace: %s: non-positive p%d", r.Function, p)
		}
		if v < prev {
			return nil, fmt.Errorf("azuretrace: %s: percentiles not monotone at p%d", r.Function, p)
		}
		prev = v
		knots = append(knots, knot{u: float64(p) / 100, logV: math.Log(float64(v))})
	}

	lo, hi := knots[0], knots[len(knots)-1]
	// Tail slope in log space per unit probability, from the last segment
	// (p95→p99 on synthesized records). Flat ladders get a zero slope.
	var tailSlope float64
	last := knots[len(knots)-2]
	if du := hi.u - last.u; du > 0 {
		tailSlope = (hi.logV - last.logV) / du
	}
	tailCap := hi.logV + math.Log(4)

	d := &ladderDist{name: r.Function}
	d.sample = func(rng *rand.Rand) time.Duration {
		u := rng.Float64()
		switch {
		case u <= lo.u:
			// Taper toward lo/2 at u=0.
			frac := u / lo.u
			return clampDur(lo.logV - (1-frac)*math.Log(2))
		case u >= hi.u:
			v := hi.logV + tailSlope*(u-hi.u)
			if v > tailCap {
				v = tailCap
			}
			return clampDur(v)
		}
		i := sort.Search(len(knots), func(i int) bool { return knots[i].u >= u })
		a, b := knots[i-1], knots[i]
		frac := (u - a.u) / (b.u - a.u)
		return clampDur(a.logV + frac*(b.logV-a.logV))
	}
	return d, nil
}

func clampDur(logV float64) time.Duration {
	v := math.Exp(logV)
	if v < 1 {
		return time.Nanosecond
	}
	return time.Duration(v)
}

// ladderDist adapts a bound sampling closure to dist.Dist.
type ladderDist struct {
	name   string
	sample func(*rand.Rand) time.Duration
}

func (d *ladderDist) Sample(rng *rand.Rand) time.Duration { return d.sample(rng) }

func (d *ladderDist) String() string {
	return fmt.Sprintf("azuretrace-ladder(%s)", d.name)
}
