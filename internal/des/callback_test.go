package des

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestCallOrdering pins the callback API's contract: Call runs at the
// current instant after already scheduled same-instant events, CallAt clamps
// past timestamps to now, and CallAfter clamps negative delays.
func TestCallOrdering(t *testing.T) {
	e := NewEngine()
	var order []string
	log := func(s string) func() { return func() { order = append(order, s) } }
	e.CallAt(2*time.Millisecond, func() {
		order = append(order, "t2")
		e.Call(log("t2/call"))
		e.CallAt(time.Millisecond, log("t2/past")) // clamped to now
		e.CallAfter(-time.Second, log("t2/neg"))   // clamped to now
		e.CallAfter(time.Millisecond, log("t3"))   // strictly later
		e.Call(log("t2/call2"))                    // after the clamped ones
	})
	e.Call(log("t0"))
	e.Run(0)
	want := "t0,t2,t2/call,t2/past,t2/neg,t2/call2,t3"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
	if e.Now() != 3*time.Millisecond {
		t.Fatalf("clock = %v, want 3ms", e.Now())
	}
}

// TestSameInstantSeqStability is the heap tie-break satellite: events tied
// on a timestamp drain strictly in sequence-number order, and sequence
// numbers are drawn at well-defined points — callbacks and timers at their
// scheduling call, process resumes at the Sleep that parks them. The
// callback-form invoke pipeline's byte-identical-output guarantee rests on
// exactly this assignment discipline.
func TestSameInstantSeqStability(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var order []int
	at := 5 * time.Millisecond
	for i := 0; i < 30; i++ {
		i := i
		switch i % 3 {
		case 0:
			e.CallAt(at, func() { order = append(order, i) })
		case 1:
			e.At(at, func() { order = append(order, i) })
		case 2:
			e.Spawn("tie", func(p *Proc) {
				p.Sleep(at - e.Now())
				order = append(order, i)
			})
		}
	}
	e.Run(0)
	// Callbacks and timers drew their seq at the loop above (time 0, before
	// any spawn body ran); each proc drew its resume seq at its Sleep call,
	// which happened later — at time 0 in spawn order. So the tied instant
	// drains the callback/timer ids in schedule order, then the proc ids in
	// spawn order.
	var want []int
	for i := 0; i < 30; i++ {
		if i%3 != 2 {
			want = append(want, i)
		}
	}
	for i := 2; i < 30; i += 3 {
		want = append(want, i)
	}
	if len(order) != len(want) {
		t.Fatalf("fired %d of %d", len(order), len(want))
	}
	for i, v := range order {
		if v != want[i] {
			t.Fatalf("same-instant mixed events out of seq order:\ngot  %v\nwant %v", order, want)
		}
	}
}

// TestFrontCacheEvictionByTimer covers the enqueue invariant: a chain-
// scheduled callback parks in the front cache, and a cancelable timer
// scheduled earlier must evict it back to the heap — and still be
// cancelable afterwards.
func TestFrontCacheEvictionByTimer(t *testing.T) {
	e := NewEngine()
	var order []string
	var timer Timer
	e.Call(func() {
		// Successor 10ms out: parks in the front cache (heap empty).
		e.CallAfter(10*time.Millisecond, func() { order = append(order, "chain") })
		if e.PendingEvents() != 1 {
			t.Fatalf("PendingEvents = %d, want 1 (cached)", e.PendingEvents())
		}
		// Earlier cancelable timer: evicts the cached event into the heap.
		timer = e.After(5*time.Millisecond, func() { order = append(order, "timer") })
		if !timer.Pending() {
			t.Fatal("timer not pending after arming")
		}
	})
	e.Run(0)
	if got := strings.Join(order, ","); got != "timer,chain" {
		t.Fatalf("order = %s, want timer,chain", got)
	}
	if timer.Cancel() {
		t.Fatal("Cancel of a fired timer reported true")
	}

	// Same shape, but the timer is canceled before it fires: only the
	// (evicted, re-heaped) chain event must run.
	e2 := NewEngine()
	order = nil
	e2.Call(func() {
		e2.CallAfter(10*time.Millisecond, func() { order = append(order, "chain") })
		tm := e2.After(5*time.Millisecond, func() { order = append(order, "timer") })
		e2.Call(func() {
			if !tm.Cancel() {
				t.Error("Cancel of a pending evicting timer reported false")
			}
		})
	})
	e2.Run(0)
	if got := strings.Join(order, ","); got != "chain" {
		t.Fatalf("order after cancel = %s, want chain", got)
	}
}

// TestTimerCancelRacesSameInstantFire covers the cancel-vs-fire race at one
// instant: a timer's callback canceling a second timer scheduled for the
// same instant must win (the second never fires), while canceling a timer
// that already fired this instant must report false — the exact race the
// queue-timeout grant path depends on.
func TestTimerCancelRacesSameInstantFire(t *testing.T) {
	e := NewEngine()
	at := 3 * time.Millisecond
	fired := make([]bool, 2)
	var second Timer
	e.At(at, func() {
		fired[0] = true
		if !second.Cancel() {
			t.Error("cancel of same-instant later timer reported false")
		}
		if second.Pending() {
			t.Error("canceled timer still pending")
		}
	})
	second = e.At(at, func() { fired[1] = true })
	e.Run(0)
	if !fired[0] || fired[1] {
		t.Fatalf("fired = %v, want [true false]", fired)
	}

	// Reverse race: the later timer tries to cancel the earlier one, which
	// fired at this same instant already.
	e2 := NewEngine()
	var first Timer
	firstFired := false
	first = e2.At(at, func() { firstFired = true })
	e2.At(at, func() {
		if first.Cancel() {
			t.Error("cancel of an already fired same-instant timer reported true")
		}
	})
	e2.Run(0)
	if !firstFired {
		t.Fatal("first timer did not fire")
	}
}

// TestRingWraparoundAtCapacity covers the FIFO ring at its capacity
// boundaries: wrapped head, growth while wrapped, removal across the wrap
// seam, and reuse after clear.
func TestRingWraparoundAtCapacity(t *testing.T) {
	var r ring[int]
	// Fill to the initial capacity of 8.
	for i := 0; i < 8; i++ {
		r.push(i)
	}
	if len(r.buf) != 8 || r.len() != 8 {
		t.Fatalf("cap=%d len=%d after 8 pushes, want 8/8", len(r.buf), r.len())
	}
	// Drain three, refill three: head wraps, no growth.
	for i := 0; i < 3; i++ {
		if got := r.popFront(); got != i {
			t.Fatalf("popFront = %d, want %d", got, i)
		}
	}
	for i := 8; i < 11; i++ {
		r.push(i)
	}
	if len(r.buf) != 8 {
		t.Fatalf("ring grew to %d while wrapping at capacity", len(r.buf))
	}
	if got := r.at(0); got != 3 {
		t.Fatalf("at(0) = %d after wrap, want 3", got)
	}
	// removeFunc across the wrap seam (element 9 lives in a wrapped slot).
	if !r.removeFunc(func(v int) bool { return v == 9 }) {
		t.Fatal("removeFunc missed an element across the wrap seam")
	}
	if r.removeFunc(func(v int) bool { return v == 99 }) {
		t.Fatal("removeFunc removed a non-existent element")
	}
	// Push past capacity while wrapped: grow must re-linearize FIFO order.
	for i := 11; i < 16; i++ {
		r.push(i)
	}
	if len(r.buf) != 16 {
		t.Fatalf("cap=%d after growth, want 16", len(r.buf))
	}
	want := []int{3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 14, 15}
	for _, w := range want {
		if got := r.popFront(); got != w {
			t.Fatalf("popFront = %d, want %d (FIFO broken across grow)", got, w)
		}
	}
	if r.len() != 0 {
		t.Fatalf("len = %d after drain, want 0", r.len())
	}
	// clear and reuse.
	r.push(42)
	r.clear()
	if r.len() != 0 || r.head != 0 {
		t.Fatalf("len=%d head=%d after clear, want 0/0", r.len(), r.head)
	}
	r.push(7)
	if got := r.popFront(); got != 7 {
		t.Fatalf("popFront = %d after clear/reuse, want 7", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("popFront on empty ring did not panic")
		}
	}()
	r.popFront()
}

// TestAllocFreeCallChain verifies the callback API's allocation contract:
// a chain of reused callback values schedules and dispatches with zero
// allocations — the property the warm-invoke fast path is built on.
func TestAllocFreeCallChain(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count%4 == 0 {
			return
		}
		e.CallAfter(time.Microsecond, tick)
	}
	e.Call(tick)
	e.Run(0) // warm the heap and cache
	allocs := testing.AllocsPerRun(100, func() {
		e.Call(tick)
		e.Run(0)
	})
	if allocs != 0 {
		t.Fatalf("callback chain allocates %v/op, want 0", allocs)
	}
}

// TestSyncAccessors pins the small observability surface the cloud model
// reads: Signal.Fired, Resource.TotalAcquires, Queue.Len/MaxLen/TryGet.
func TestSyncAccessors(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	s := NewSignal(e)
	r := NewResource(e, 1)
	q := NewQueue[int](e)
	if s.Fired() {
		t.Fatal("new signal reports fired")
	}
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue reported ok")
	}
	e.Spawn("acc", func(p *Proc) {
		p.Acquire(r)
		q.Put(1)
		q.Put(2)
		if q.Len() != 2 || q.MaxLen() != 2 {
			t.Errorf("Len=%d MaxLen=%d, want 2/2", q.Len(), q.MaxLen())
		}
		if v, ok := q.TryGet(); !ok || v != 1 {
			t.Errorf("TryGet = %d,%v, want 1,true", v, ok)
		}
		s.Fire()
		r.Release()
	})
	e.Run(0)
	if !s.Fired() {
		t.Fatal("signal not fired")
	}
	if r.TotalAcquires() != 1 {
		t.Fatalf("TotalAcquires = %d, want 1", r.TotalAcquires())
	}
	if q.MaxLen() != 2 {
		t.Fatalf("MaxLen = %d after drain, want 2", q.MaxLen())
	}
}

// TestRealTimeRunPacesWallClock covers the test-mode real-time Run path
// (waitWall): with an aggressive time scale the run completes quickly but
// must still deliver events in order with the clock advanced.
func TestRealTimeRunPacesWallClock(t *testing.T) {
	e := NewRealTimeEngine(1e6) // 1µs wall per virtual second
	defer e.Close()
	var order []int
	e.At(time.Second, func() { order = append(order, 1) })
	e.At(2*time.Second, func() { order = append(order, 2) })
	e.Run(0)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("real-time order = %v", order)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
}

// --- differential fuzz: proc form vs callback form ---------------------------

// fuzzChain is one request-shaped schedule unit: a start offset, a sequence
// of stage delays, and an optional cancelable timer armed at the first stage
// and canceled at the last (the keep-alive/queue-timeout pattern).
type fuzzChain struct {
	steps []Time
	timer Time // 0 = no timer
}

// parseFuzzChains decodes fuzz bytes into a bounded schedule: up to 12
// chains of up to 5 stages, with delays quantized to 50µs so zero-delay ties
// are common — ties are where ordering bugs live.
func parseFuzzChains(data []byte) []fuzzChain {
	var chains []fuzzChain
	for len(data) >= 2 && len(chains) < 12 {
		n := 1 + int(data[0]%5)
		var c fuzzChain
		if data[1]%3 == 0 {
			c.timer = Time(1+data[1]%7) * 50 * time.Microsecond
		}
		data = data[2:]
		for i := 0; i < n && len(data) > 0; i++ {
			c.steps = append(c.steps, Time(data[0]%8)*50*time.Microsecond)
			data = data[1:]
		}
		if len(c.steps) > 0 {
			chains = append(chains, c)
		}
	}
	return chains
}

// runFuzzProcForm executes the schedule with one goroutine process per
// chain: Spawn consumes one sequence number for the first resume, each
// Sleep one more — the exact budget of the callback form below.
func runFuzzProcForm(chains []fuzzChain) []string {
	e := NewEngine()
	defer e.Close()
	var log []string
	for i, c := range chains {
		i, c := i, c
		e.Spawn("chain", func(p *Proc) {
			var tm Timer
			if c.timer > 0 {
				tm = e.After(c.timer, func() {
					log = append(log, fmt.Sprintf("c%d timer @%v", i, e.Now()))
				})
			}
			for k, d := range c.steps {
				p.Sleep(d)
				log = append(log, fmt.Sprintf("c%d s%d @%v", i, k, e.Now()))
			}
			tm.Cancel()
		})
	}
	e.Run(0)
	return log
}

// runFuzzCallbackForm executes the same schedule as straight-line callback
// chains: Call consumes the Spawn-resume's sequence number, each CallAfter a
// Sleep's. If the two forms ever consume sequence numbers differently, tied
// timestamps drain in a different order and the logs diverge.
func runFuzzCallbackForm(chains []fuzzChain) []string {
	e := NewEngine()
	defer e.Close()
	var log []string
	for i, c := range chains {
		i, c := i, c
		var tm Timer
		var step func(k int)
		step = func(k int) {
			log = append(log, fmt.Sprintf("c%d s%d @%v", i, k, e.Now()))
			if k+1 < len(c.steps) {
				e.CallAfter(c.steps[k+1], func() { step(k + 1) })
			} else {
				tm.Cancel()
			}
		}
		e.Call(func() {
			if c.timer > 0 {
				tm = e.After(c.timer, func() {
					log = append(log, fmt.Sprintf("c%d timer @%v", i, e.Now()))
				})
			}
			e.CallAfter(c.steps[0], func() { step(0) })
		})
	}
	e.Run(0)
	return log
}

// FuzzCallbackSchedule is the engine-level differential harness behind the
// two-execution-forms contract: any schedule expressed as both goroutine
// processes and callback chains must produce the identical global execution
// order, including timer fire/cancel races at tied instants.
func FuzzCallbackSchedule(f *testing.F) {
	f.Add([]byte{1, 0, 0})                                  // single zero-delay step
	f.Add([]byte{4, 3, 0, 0, 0, 0, 4, 3, 0, 0, 0, 0})       // two tied chains with timers
	f.Add([]byte{2, 1, 3, 5, 3, 0, 1, 2, 7, 2, 6, 1, 4, 2}) // mixed delays
	f.Add([]byte{5, 6, 1, 1, 1, 1, 1, 1, 6, 2, 2, 3})       // timer racing mid-chain
	f.Add([]byte{3, 0, 7, 7, 7, 3, 0, 7, 7, 7, 3, 0, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		chains := parseFuzzChains(data)
		if len(chains) == 0 {
			t.Skip()
		}
		proc := runFuzzProcForm(chains)
		cb := runFuzzCallbackForm(chains)
		if len(proc) != len(cb) {
			t.Fatalf("forms fired different event counts: proc=%d callback=%d\nproc: %v\ncallback: %v",
				len(proc), len(cb), proc, cb)
		}
		for i := range proc {
			if proc[i] != cb[i] {
				t.Fatalf("execution order diverged at %d:\nproc:     %v\ncallback: %v", i, proc, cb)
			}
		}
	})
}
