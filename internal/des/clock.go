package des

// Virtual-time unit conversions for observability layers. Trace viewers
// (Chrome trace_event, Perfetto) take microsecond timestamps; Time is
// nanosecond-resolution, so the conversions keep sub-microsecond precision
// by returning floats.

// Micros converts a virtual timestamp to fractional microseconds.
func Micros(t Time) float64 { return float64(t) / 1e3 }

// Millis converts a virtual timestamp to fractional milliseconds.
func Millis(t Time) float64 { return float64(t) / 1e6 }
