package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/runner"
	"github.com/stellar-repro/stellar/internal/stats"
	"github.com/stellar-repro/stellar/internal/stats/sketch"
)

// ScaleOptions configures a sustained large-n latency series against one
// simulated provider — the bounded-memory counterpart of the paper-scale
// figure runs. Where the figure pipeline retains every sample for exact
// statistics, the scale pipeline streams invocations straight into a
// mergeable quantile sketch, so series length is limited by patience, not
// heap.
type ScaleOptions struct {
	// Provider is the provider profile under test.
	Provider string
	// Invocations is the series length, split across Shards.
	Invocations uint64
	// Shards is the number of independent simulation shards (default 8).
	// Each shard is its own DES engine and cloud seeded positionally from
	// Seed, so results are byte-identical at any Workers setting.
	Shards int
	// Workers bounds concurrently running shards (0 = GOMAXPROCS).
	Workers int
	// Seed roots all randomness.
	Seed int64
	// IAT is the inter-arrival time between bursts within one shard
	// (default 100ms).
	IAT time.Duration
	// Burst is the number of simultaneous requests per arrival (default 1).
	Burst int
	// ExecTime is the function busy-spin time (0 = instant handler).
	ExecTime time.Duration
	// Alpha is the sketch's relative-accuracy target (0 = DefaultAlpha).
	Alpha float64
	// Exact records into exact per-shard stats.Samples instead of
	// sketches: O(n) memory, for debugging and accuracy cross-checks at
	// small n.
	Exact bool
	// Engine selects the invocation execution form. The default (auto)
	// runs arrivals and warm invocations as engine callbacks — the series'
	// throughput mode — while proc forces the goroutine-per-request form.
	// Results are byte-identical either way (TestEngineFormsEquivalent).
	Engine cloud.EngineMode
}

func (o ScaleOptions) normalized() ScaleOptions {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.IAT <= 0 {
		o.IAT = 100 * time.Millisecond
	}
	if o.Burst <= 0 {
		o.Burst = 1
	}
	return o
}

func (o ScaleOptions) validate() error {
	if o.Provider == "" {
		return fmt.Errorf("scale: provider is required")
	}
	if o.Invocations == 0 {
		return fmt.Errorf("scale: need at least one invocation")
	}
	if uint64(o.Shards) > o.Invocations {
		return fmt.Errorf("scale: %d shards for %d invocations", o.Shards, o.Invocations)
	}
	return nil
}

// ScaleResult is the merged outcome of a scale series.
type ScaleResult struct {
	Provider    string
	Invocations uint64
	Shards      int
	Exact       bool

	// Colds and Errors aggregate per-shard outcome counters.
	Colds  uint64
	Errors uint64

	// Recorder holds the merged latency distribution: a *sketch.Sketch
	// in the default bounded mode, a *stats.Sample in Exact mode.
	Recorder sketch.Recorder
	// Sketch is the merged sketch (nil in Exact mode).
	Sketch *sketch.Sketch

	// VirtualTime is the longest shard's simulated duration — the series'
	// virtual wall-clock.
	VirtualTime time.Duration
}

// Summary returns the headline metrics of the merged distribution.
func (r *ScaleResult) Summary() stats.Summary { return r.Recorder.Summarize() }

// scaleShard is one shard's streamed outcome.
type scaleShard struct {
	rec     sketch.Recorder
	colds   uint64
	errors  uint64
	virtual time.Duration
}

// shardInvocations splits the series across shards positionally: the
// remainder lands on the lowest-indexed shards, so the split depends only
// on (Invocations, Shards), never on scheduling.
func shardInvocations(total uint64, shards, index int) uint64 {
	base := total / uint64(shards)
	if uint64(index) < total%uint64(shards) {
		base++
	}
	return base
}

// RunScale drives one sustained series: Shards independent simulated
// clouds, each streaming its invocations through the cloud's Recorder seam
// with nothing retained per request, merged at the end in
// O(shards × sketch grid). Heap is bounded by Shards × (environment +
// sketch), independent of Invocations.
func RunScale(opts ScaleOptions) (*ScaleResult, error) {
	opts = opts.normalized()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	res := &ScaleResult{
		Provider:    opts.Provider,
		Invocations: opts.Invocations,
		Shards:      opts.Shards,
		Exact:       opts.Exact,
	}
	if opts.Exact {
		res.Recorder = stats.NewSample(int(opts.Invocations))
	} else {
		res.Sketch = sketch.New(opts.Alpha)
		res.Recorder = res.Sketch
	}

	pool := runner.Pool{Workers: opts.Workers, Seed: opts.Seed}
	_, err := runner.MapReduce(pool, opts.Shards, res,
		func(sh runner.Shard) (*scaleShard, error) {
			return runScaleShard(opts, sh)
		},
		mergeScaleShard)
	if err != nil {
		return nil, err
	}
	if res.Recorder.Count() == 0 {
		return nil, fmt.Errorf("scale: all %d invocations failed", opts.Invocations)
	}
	return res, nil
}

// mergeScaleShard folds one shard into the accumulated result.
func mergeScaleShard(res *ScaleResult, sh *scaleShard) (*ScaleResult, error) {
	res.Colds += sh.colds
	res.Errors += sh.errors
	if sh.virtual > res.VirtualTime {
		res.VirtualTime = sh.virtual
	}
	if res.Exact {
		res.Recorder.(*stats.Sample).AddAll(sh.rec.(*stats.Sample).Values())
		return res, nil
	}
	return res, res.Sketch.Merge(sh.rec.(*sketch.Sketch))
}

// runScaleShard streams one shard's invocations through an isolated
// environment. The arrival loop retains nothing per request: a single
// reused request, a single spawned body closure, and the shard recorder
// fed by the cloud's Recorder seam.
func runScaleShard(opts ScaleOptions, sh runner.Shard) (*scaleShard, error) {
	n := shardInvocations(opts.Invocations, opts.Shards, sh.Index)
	out := &scaleShard{}
	if opts.Exact {
		out.rec = stats.NewSample(int(n))
	} else {
		out.rec = sketch.New(opts.Alpha)
	}
	if n == 0 {
		return out, nil
	}

	e, err := newEnv(opts.Provider, sh.Seed)
	if err != nil {
		return nil, fmt.Errorf("scale shard %d: %w", sh.Index, err)
	}
	defer e.close()
	c := e.cloud
	if err := c.Deploy(cloud.FunctionSpec{
		Name:     "scale",
		Runtime:  cloud.RuntimePython,
		Method:   cloud.DeployZIP,
		ExecTime: opts.ExecTime,
	}); err != nil {
		return nil, fmt.Errorf("scale shard %d: %w", sh.Index, err)
	}
	c.SetLatencyRecorder(out.rec)
	c.SetEngineMode(opts.Engine)

	req := &cloud.Request{Fn: "scale"}
	eng := e.eng
	if opts.Engine == cloud.EngineProc {
		// Proc form: one goroutine process per request, one for arrivals.
		invoke := func(p *des.Proc) {
			if _, err := c.Invoke(p, req); err != nil {
				out.errors++
			}
		}
		eng.Spawn("scale/arrivals", func(p *des.Proc) {
			remaining := n
			for remaining > 0 {
				burst := uint64(opts.Burst)
				if burst > remaining {
					burst = remaining
				}
				for j := uint64(0); j < burst; j++ {
					eng.Spawn("scale/req", invoke)
				}
				remaining -= burst
				if remaining > 0 {
					p.Sleep(opts.IAT)
				}
			}
		})
	} else {
		// Callback form: the arrival loop is a self-rescheduling event
		// callback and each request a callback chain — zero goroutine
		// switches on the warm path. Event-for-event equivalent to the
		// proc loop above: one event per arrival tick, one per request
		// start, in the same scheduling sequence order.
		done := func(_ *cloud.Response, err error) {
			if err != nil {
				out.errors++
			}
		}
		remaining := n
		var arrive func()
		arrive = func() {
			burst := uint64(opts.Burst)
			if burst > remaining {
				burst = remaining
			}
			for j := uint64(0); j < burst; j++ {
				c.InvokeAsync(req, done)
			}
			remaining -= burst
			if remaining > 0 {
				eng.CallAfter(opts.IAT, arrive)
			}
		}
		eng.Call(arrive)
	}
	eng.Run(0)

	out.colds = c.Metrics().ColdServed
	out.virtual = eng.Now()
	if got := out.rec.Count() + out.errors; got != n {
		return nil, fmt.Errorf("scale shard %d: %d of %d invocations unaccounted for",
			sh.Index, n-got, n)
	}
	return out, nil
}

// WriteScaleReport renders the series outcome: headline metrics, the
// quantile ladder the paper's distributional claims rest on, and the
// sketch's footprint, which is the point of the exercise.
func WriteScaleReport(w io.Writer, res *ScaleResult) {
	mode := "sketch"
	if res.Exact {
		mode = "exact"
	}
	fmt.Fprintf(w, "scale series: provider=%s invocations=%d shards=%d mode=%s\n",
		res.Provider, res.Invocations, res.Shards, mode)
	fmt.Fprintf(w, "outcome: colds=%d errors=%d virtual=%v\n",
		res.Colds, res.Errors, res.VirtualTime.Round(time.Second))
	sum := res.Summary()
	fmt.Fprintf(w, "latency: median=%v p95=%v p99=%v max=%v tmr=%.1f\n",
		sum.Median.Round(time.Millisecond), sum.P95.Round(time.Millisecond),
		sum.P99.Round(time.Millisecond), sum.Max.Round(time.Millisecond), sum.TMR)
	fmt.Fprintf(w, "quantiles:")
	for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 0.9999} {
		fmt.Fprintf(w, " p%g=%v", q*100, res.Recorder.Quantile(q).Round(time.Millisecond))
	}
	fmt.Fprintln(w)
	if res.Sketch != nil {
		fmt.Fprintf(w, "sketch: alpha=%.4f grid=%d occupied=%d memory=%dB (independent of n)\n",
			res.Sketch.Alpha(), res.Sketch.GridBuckets(), res.Sketch.Buckets(), res.Sketch.MemoryBytes())
	}
}

// WriteScaleCDF writes the merged distribution's CDF as CSV (value_ns,
// fraction) for external plotting.
func WriteScaleCDF(w io.Writer, res *ScaleResult) error {
	if _, err := fmt.Fprintln(w, "latency_ns,cdf"); err != nil {
		return err
	}
	for _, p := range res.Recorder.CDF() {
		if _, err := fmt.Fprintf(w, "%d,%.6f\n", int64(p.Value), p.Frac); err != nil {
			return err
		}
	}
	return nil
}
