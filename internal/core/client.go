package core

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/stats"
)

// PlannedRequest is one scheduled invocation of an endpoint.
type PlannedRequest struct {
	// At is the offset from experiment start at which the request fires.
	At time.Duration
	// Endpoint is the invocation target.
	Endpoint Endpoint
	// ExecTime is the busy-spin override for this run.
	ExecTime time.Duration
	// PayloadBytes is the chain payload override for this run.
	PayloadBytes int64
}

// Sample is one measured invocation.
type Sample struct {
	// At echoes the scheduled offset.
	At time.Duration
	// Latency is the client-observed response time (includes propagation,
	// matching the paper's reporting).
	Latency time.Duration
	// Cold reports whether a fresh instance served the request.
	Cold bool
	// InstanceID identifies the serving instance when the transport knows
	// it (simulated transports; zero otherwise).
	InstanceID int
	// QueueWait is time spent buffered awaiting an instance.
	QueueWait time.Duration
	// TransferTime is the instrumented producer->consumer payload transfer
	// time for chained functions (zero when not instrumented).
	TransferTime time.Duration
	// Breakdown itemizes per-component latency contributions when the
	// transport provides them (simulated transports do).
	Breakdown cloud.Breakdown
	// BilledGBSeconds is the invocation's pay-per-use bill.
	BilledGBSeconds float64
	// Err records an invocation failure.
	Err error
}

// Transport executes a load plan and returns one sample per planned request
// in plan order. Implementations choose the time base (virtual or wall).
type Transport interface {
	Execute(plan []PlannedRequest) ([]Sample, error)
}

// Client is STeLLAR's load generator (§IV): it turns a runtime
// configuration plus a set of endpoints into an executed measurement run.
type Client struct {
	// Transport issues the invocations.
	Transport Transport
	// RNG drives stochastic inter-arrival times. Required for
	// IATExponential; unused otherwise.
	RNG *rand.Rand
}

// BuildPlan expands a runtime configuration over endpoints into a concrete
// schedule: steps fire every IAT; each step sends BurstSize simultaneous
// requests to the next endpoint in round-robin order (§IV: "invokes
// functions from the file with the endpoints' URLs in a round-robin
// fashion"). WarmupDiscard extra samples are prepended.
func (c *Client) BuildPlan(eps []Endpoint, rc RuntimeConfig) ([]PlannedRequest, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("core: no endpoints to invoke")
	}
	total := rc.Samples + rc.WarmupDiscard
	steps := (total + rc.BurstSize - 1) / rc.BurstSize
	plan := make([]PlannedRequest, 0, total)
	var at time.Duration
	for s := 0; s < steps; s++ {
		ep := eps[s%len(eps)]
		for b := 0; b < rc.BurstSize && len(plan) < total; b++ {
			plan = append(plan, PlannedRequest{
				At:           at,
				Endpoint:     ep,
				ExecTime:     rc.ExecTime.Std(),
				PayloadBytes: rc.PayloadBytes,
			})
		}
		switch rc.IATDist {
		case IATExponential:
			if c.RNG == nil {
				return nil, fmt.Errorf("core: exponential IAT needs a client RNG")
			}
			at += time.Duration(c.RNG.ExpFloat64() * float64(rc.IAT.Std()))
		case IATBursty:
			if (s+1)%rc.OnSteps == 0 {
				at += rc.OffIAT.Std() // quiet gap between trains
			} else {
				at += rc.IAT.Std()
			}
		default:
			at += rc.IAT.Std()
		}
	}
	return plan, nil
}

// RunResult aggregates a measurement run.
type RunResult struct {
	// Samples are the measured (post-warmup) samples in schedule order.
	Samples []Sample
	// Latencies collects successful samples' response times.
	Latencies *stats.Sample
	// Transfers collects instrumented transfer times (chained runs).
	Transfers *stats.Sample
	// Colds counts cold-served requests; Errors counts failures.
	Colds  int
	Errors int
	// BilledGBSeconds totals the run's pay-per-use bill.
	BilledGBSeconds float64
}

// Breakdowns aggregates the run's per-component latency contributions.
func (r *RunResult) Breakdowns() *BreakdownStats { return CollectBreakdowns(r.Samples) }

// Summary returns the latency summary of the run.
func (r *RunResult) Summary() stats.Summary { return r.Latencies.Summarize() }

// Run builds the plan, executes it on the transport, discards warm-up
// samples, and aggregates the measurements.
func (c *Client) Run(eps []Endpoint, rc RuntimeConfig) (*RunResult, error) {
	plan, err := c.BuildPlan(eps, rc)
	if err != nil {
		return nil, err
	}
	return c.RunPlan(plan, rc.WarmupDiscard)
}

// RunPlan executes an explicit schedule — round-robin plans from Run, or
// trace-driven plans built externally (e.g., by the workload package) — and
// aggregates the measurements, discarding the first warmup samples.
func (c *Client) RunPlan(plan []PlannedRequest, warmup int) (*RunResult, error) {
	if len(plan) == 0 {
		return nil, fmt.Errorf("core: empty plan")
	}
	if warmup < 0 || warmup > len(plan) {
		return nil, fmt.Errorf("core: warmup discard %d out of range for %d requests", warmup, len(plan))
	}
	samples, err := c.Transport.Execute(plan)
	if err != nil {
		return nil, err
	}
	if len(samples) != len(plan) {
		return nil, fmt.Errorf("core: transport returned %d samples for %d requests", len(samples), len(plan))
	}
	measured := samples[warmup:]
	res := &RunResult{
		Samples:   measured,
		Latencies: stats.NewSample(len(measured)),
		Transfers: stats.NewSample(0),
	}
	for _, s := range measured {
		if s.Err != nil {
			res.Errors++
			continue
		}
		res.Latencies.Add(s.Latency)
		if s.Cold {
			res.Colds++
		}
		if s.TransferTime > 0 {
			res.Transfers.Add(s.TransferTime)
		}
		res.BilledGBSeconds += s.BilledGBSeconds
	}
	if res.Latencies.Len() == 0 {
		return res, fmt.Errorf("core: all %d requests failed", len(measured))
	}
	return res, nil
}

// Timeline buckets the run's successful samples into fixed windows of the
// schedule, summarizing each — useful to watch warm-up transients and
// scale-out convergence across a long run or burst train.
func (r *RunResult) Timeline(width time.Duration) []stats.WindowSummary {
	timed := make([]stats.TimedSample, 0, len(r.Samples))
	for _, s := range r.Samples {
		if s.Err != nil {
			continue
		}
		timed = append(timed, stats.TimedSample{At: s.At, Latency: s.Latency})
	}
	return stats.Windows(timed, width)
}
