package experiments

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

func smallTenantsOpts() TenantsOptions {
	return TenantsOptions{
		Provider:   "aws",
		Tenants:    40,
		Duration:   5 * time.Minute,
		Shards:     4,
		Seed:       7,
		KeepAlives: []time.Duration{time.Minute, 10 * time.Minute},
	}
}

func TestTenantsRejectsEmptyPopulation(t *testing.T) {
	opts := smallTenantsOpts()
	opts.Tenants = 0
	if _, err := RunTenants(opts); err == nil {
		t.Fatal("zero tenants accepted")
	}
	opts = smallTenantsOpts()
	opts.Duration = 0
	if _, err := RunTenants(opts); err == nil {
		t.Fatal("zero duration accepted")
	}
	opts = smallTenantsOpts()
	opts.KeepAlives = []time.Duration{0}
	if _, err := RunTenants(opts); err == nil {
		t.Fatal("zero keep-alive accepted")
	}
}

// TestTenantsSingleTenantMatchesDirectShard: the full sweep driver with one
// tenant and one shard reduces exactly to one direct shard replay — the
// merge layer adds nothing.
func TestTenantsSingleTenantMatchesDirectShard(t *testing.T) {
	opts := smallTenantsOpts().normalized()
	opts.Tenants = 1
	opts.Shards = 1
	opts.KeepAlives = []time.Duration{5 * time.Minute}
	res, err := RunTenants(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(res.Points))
	}
	pop := synthesizeTenants(opts)
	direct, err := runTenantsShard(opts, pop, 5*time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	if p.Invocations != direct.inv || p.ColdServed != direct.cold ||
		p.WarmServed != direct.warm || p.Errors != direct.errs {
		t.Fatalf("sweep %+v != direct shard inv=%d cold=%d warm=%d errs=%d",
			p, direct.inv, direct.cold, direct.warm, direct.errs)
	}
	if p.InstanceSeconds != direct.instSec {
		t.Fatalf("instance-seconds %v != %v", p.InstanceSeconds, direct.instSec)
	}
	if p.VirtualTime != direct.virtual {
		t.Fatalf("virtual time %v != %v", p.VirtualTime, direct.virtual)
	}
	if direct.sk.Count() > 0 && p.Latency.P99 != direct.sk.Summarize().P99 {
		t.Fatalf("latency p99 %v != %v", p.Latency.P99, direct.sk.Summarize().P99)
	}
}

// TestTenantsWorkerCountInvariance: the sweep is byte-identical at any
// Workers setting (index-ordered deterministic merge).
func TestTenantsWorkerCountInvariance(t *testing.T) {
	render := func(workers int) []byte {
		opts := smallTenantsOpts()
		opts.Workers = workers
		opts.Top = 3
		res, err := RunTenants(opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteTenantsJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		WriteTenantsReport(&buf, res)
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("tenants sweep differs between Workers=1 and Workers=8")
	}
}

// TestTenantsSlackTickKeepsFrontierShape: replaying on the timer wheel
// must not change what was served — only expiry instants shift by at most
// one tick, which the drain absorbs.
func TestTenantsSlackTickKeepsFrontierShape(t *testing.T) {
	opts := smallTenantsOpts()
	exact, err := RunTenants(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.SlackTick = 500 * time.Millisecond
	slacked, err := RunTenants(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact.Points {
		e, s := exact.Points[i], slacked.Points[i]
		if e.Invocations != s.Invocations || e.ColdServed != s.ColdServed || e.Errors != s.Errors {
			t.Fatalf("keepalive %v: slack changed serves: exact inv=%d cold=%d, slacked inv=%d cold=%d",
				e.KeepAlive, e.Invocations, e.ColdServed, s.Invocations, s.ColdServed)
		}
	}
}

// TestTenantsParetoMarking: the frontier marking is exactly the
// non-dominated set.
func TestTenantsParetoMarking(t *testing.T) {
	points := []TenantsPolicyPoint{
		{ColdRate: 0.10, InstanceSeconds: 100}, // pareto
		{ColdRate: 0.05, InstanceSeconds: 200}, // pareto
		{ColdRate: 0.05, InstanceSeconds: 300}, // dominated by [1]
		{ColdRate: 0.20, InstanceSeconds: 100}, // dominated by [0]
		{ColdRate: 0.02, InstanceSeconds: 400}, // pareto
	}
	markPareto(points)
	want := []bool{true, true, false, false, true}
	for i, p := range points {
		if p.Pareto != want[i] {
			t.Errorf("point %d pareto = %v, want %v", i, p.Pareto, want[i])
		}
	}
}

// TestTenantsThousandTenantsBoundedHeap is the scale gate: a 1000-tenant
// replay must fit in a bounded heap — pooled tenant records plus one
// bounded sketch per tenant, no O(invocations) retention anywhere.
func TestTenantsThousandTenantsBoundedHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("scale gate skipped in -short")
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	opts := TenantsOptions{
		Provider:   "aws",
		Tenants:    1000,
		Duration:   10 * time.Minute,
		Shards:     8,
		Seed:       11,
		KeepAlives: []time.Duration{5 * time.Minute},
	}
	res, err := RunTenants(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].Invocations == 0 {
		t.Fatalf("bad result: %+v", res.Points)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	grown := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	// Budget: ~20KB/tenant of durable state (sketch + records) plus slack
	// for the runtime. The replay itself issues tens of thousands of
	// invocations; any O(invocations) retention blows straight past this.
	const budget = 25 << 20
	if grown > budget {
		t.Fatalf("heap grew %d bytes over the replay, budget %d", grown, budget)
	}
	t.Logf("replayed %d invocations across %d tenants; retained heap growth %.1f MB",
		res.Points[0].Invocations, opts.Tenants, float64(grown)/(1<<20))
}
