package cloud

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
)

// TestQuickInvocationInvariants drives randomized schedules through all
// three scheduling policies and checks structural invariants that must hold
// for any workload:
//
//   - every response's breakdown sums exactly to its observed latency;
//   - cold + warm served equals total invocations (incl. internal);
//   - spawned instances never exceed invocations;
//   - billed GB-seconds and instance-seconds are non-negative and finite;
//   - queue waits are non-negative.
func TestQuickInvocationInvariants(t *testing.T) {
	policies := []PolicyConfig{
		{Kind: PolicyNoQueue},
		{Kind: PolicyBoundedQueue, MaxQueuePerInstance: 3},
		{Kind: PolicyRateLimited, MaxQueuePerInstance: 5, InitialTokens: 1,
			MaxTokens: 2, TokensPerSec: 1, EvalInterval: 500 * time.Millisecond},
	}
	f := func(seed int64, polRaw, nRaw, burstRaw uint8, execMs uint16) bool {
		policy := policies[int(polRaw)%len(policies)]
		n := int(nRaw)%40 + 1
		burst := int(burstRaw)%8 + 1
		exec := time.Duration(execMs%2000) * time.Millisecond

		cfg := testConfig()
		cfg.Policy = policy
		cfg.CongestionThreshold = 1
		cfg.CongestionUnit = time.Millisecond
		cfg.SlowPathProbPerInflight = 0.01
		cfg.SlowPathMaxProb = 0.2
		cfg.SlowPathDelay = dist.Constant(100 * time.Millisecond)
		if policy.Kind != PolicyNoQueue {
			cfg.QueueHandoffDelay = dist.Constant(2 * time.Millisecond)
		}
		eng := des.NewEngine()
		defer eng.Close()
		c, err := New(eng, cfg, dist.NewStreams(seed))
		if err != nil {
			return false
		}
		if err := c.Deploy(FunctionSpec{Name: "f", Runtime: RuntimePython, Method: DeployZIP}); err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		var results []*result
		at := time.Duration(0)
		for i := 0; i < n; i++ {
			for b := 0; b < burst; b++ {
				results = append(results, invokeAt(eng, c, at, &Request{Fn: "f", ExecTime: exec}))
			}
			at += time.Duration(rng.Intn(5000)) * time.Millisecond
		}
		eng.Run(at + time.Hour)

		colds := 0
		for _, r := range results {
			if r.err != nil || r.resp == nil {
				return false
			}
			if r.resp.Breakdown.Total() != r.lat {
				t.Logf("breakdown %v != latency %v", r.resp.Breakdown.Total(), r.lat)
				return false
			}
			if r.resp.QueueWait < 0 || r.lat < 0 || r.resp.BilledGBSeconds < 0 {
				return false
			}
			if r.resp.Cold {
				colds++
			}
		}
		m := c.Metrics()
		if m.ColdServed+m.WarmServed != m.Invocations+m.InternalInvocations {
			return false
		}
		if int(m.ColdServed) != colds {
			return false
		}
		if m.Spawns < m.ColdServed {
			// Every cold-serve requires a spawn (spawns may exceed colds
			// when pre-spawned instances park unused).
			return false
		}
		if c.InstanceSeconds() < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickChainInvariants checks chained invocations: timestamps are
// ordered and transfer times are consistent for random payloads/transports.
func TestQuickChainInvariants(t *testing.T) {
	f := func(seed int64, payloadRaw uint32, storage bool) bool {
		payload := int64(payloadRaw%(4<<20)) + 1
		transfer := TransferInline
		if storage {
			transfer = TransferStorage
		}
		eng := des.NewEngine()
		defer eng.Close()
		c, err := New(eng, testConfig(), dist.NewStreams(seed))
		if err != nil {
			return false
		}
		if err := c.Deploy(FunctionSpec{Name: "b", Runtime: RuntimeGo, Method: DeployZIP}); err != nil {
			return false
		}
		if err := c.Deploy(FunctionSpec{Name: "a", Runtime: RuntimeGo, Method: DeployZIP,
			Chain: &ChainSpec{Next: "b", Transfer: transfer, PayloadBytes: payload}}); err != nil {
			return false
		}
		r := invokeAt(eng, c, 0, &Request{Fn: "a"})
		eng.Run(time.Hour)
		if r.err != nil {
			return false
		}
		send, okS := r.resp.Timestamps["a.send"]
		recv, okR := r.resp.Timestamps["b.recv"]
		aRecv, okA := r.resp.Timestamps["a.recv"]
		if !okS || !okR || !okA {
			return false
		}
		if aRecv > send || send > recv {
			return false
		}
		xfer, ok := r.resp.TransferTime("a", "b")
		if !ok || xfer != recv-send || xfer <= 0 {
			return false
		}
		// Transfer is bounded by the producer's downstream time plus the
		// PUT (for storage transfers, the PUT precedes the invoke).
		if xfer > r.resp.Breakdown.Downstream+r.resp.Breakdown.PayloadStore {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
