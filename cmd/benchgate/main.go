// Command benchgate compares two `go test -bench` output files and fails on
// regression: a >N% geometric-mean ns/op slowdown across the matched
// benchmarks (medians over repeated -count runs), or any allocation on a
// path whose baseline is zero allocs/op.
//
// Usage:
//
//	benchgate -old BENCH_BASELINE.txt -new bench.txt [-max-regress 15] [-allocs-only]
//
// Exit status 0 when all gates pass, 1 on regression or error.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/stellar-repro/stellar/internal/benchcmp"
)

func main() {
	oldPath := flag.String("old", "", "baseline benchmark output file")
	newPath := flag.String("new", "", "candidate benchmark output file")
	maxRegress := flag.Float64("max-regress", 15, "allowed geomean ns/op slowdown in percent")
	allocsOnly := flag.Bool("allocs-only", false,
		"only enforce the zero-alloc gate (for baselines recorded on different hardware)")
	flag.Parse()
	if err := run(*oldPath, *newPath, *maxRegress, *allocsOnly); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath string, maxRegress float64, allocsOnly bool) error {
	if oldPath == "" || newPath == "" {
		return fmt.Errorf("-old and -new are both required")
	}
	old, err := parseFile(oldPath)
	if err != nil {
		return err
	}
	new, err := parseFile(newPath)
	if err != nil {
		return err
	}
	cmp, err := benchcmp.Compare(old, new)
	if err != nil {
		return err
	}
	cmp.Write(os.Stdout)
	if allocsOnly {
		maxRegress = -1
	}
	if err := cmp.Gate(maxRegress); err != nil {
		return err
	}
	fmt.Println("benchgate: all gates passed")
	return nil
}

func parseFile(path string) (map[string]benchcmp.Bench, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set, err := benchcmp.ParseMedians(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return set, nil
}
