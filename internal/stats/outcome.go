package stats

import "time"

// Outcome counts request-level results of a run under transient failures.
// Latency percentiles describe the requests that completed; Outcome
// describes what fraction completed at all and at what retry cost — the
// axes the fault-injection experiments sweep.
type Outcome struct {
	// Issued counts logical client requests (one per resilient call,
	// however many attempts it spawned).
	Issued uint64 `json:"issued"`
	// Succeeded counts requests whose resilient call returned success.
	Succeeded uint64 `json:"succeeded"`
	// Retries counts retry rounds across all requests.
	Retries uint64 `json:"retries"`
	// Hedges counts launched hedge attempts across all requests.
	Hedges uint64 `json:"hedges,omitempty"`
}

// Failed counts requests that exhausted their retry budget.
func (o Outcome) Failed() uint64 { return o.Issued - o.Succeeded }

// SuccessRate is Succeeded/Issued; vacuously 1 for an empty outcome.
func (o Outcome) SuccessRate() float64 {
	if o.Issued == 0 {
		return 1
	}
	return float64(o.Succeeded) / float64(o.Issued)
}

// RetriesPerRequest is the mean retry count per issued request.
func (o Outcome) RetriesPerRequest() float64 {
	if o.Issued == 0 {
		return 0
	}
	return float64(o.Retries) / float64(o.Issued)
}

// Goodput is the successful-request throughput over the given (virtual)
// duration, in requests per second.
func (o Outcome) Goodput(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(o.Succeeded) / elapsed.Seconds()
}

// Merge folds another outcome into this one (shard aggregation).
func (o *Outcome) Merge(other Outcome) {
	o.Issued += other.Issued
	o.Succeeded += other.Succeeded
	o.Retries += other.Retries
	o.Hedges += other.Hedges
}
