package providers

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzLoadJSON asserts that an arbitrary JSON provider profile never
// panics the loader, and that loading is deterministic: parsing the same
// bytes twice — or re-parsing the spec's own re-marshaled form — yields
// the same verdict and the same config.
func FuzzLoadJSON(f *testing.F) {
	f.Add(`{"name": "mini", "scheduler_capacity": 1, "workers": 1,
		"policy": {"kind": "no-queue"}, "keep_alive_fixed": "10m"}`)
	f.Add(`{"name": "full", "scheduler_capacity": 4, "workers": 8,
		"propagation_rtt": "30ms",
		"frontend_delay": {"type": "lognormal", "median": "18ms", "p99": "74ms"},
		"sandbox_boot": {"type": "mixture", "components": [
			{"weight": 0.97, "dist": {"type": "constant", "value": "250ms"}},
			{"weight": 0.03, "dist": {"type": "uniform", "min": "1s", "max": "2s"}}]},
		"runtime_init": {"python3": {"type": "exponential", "mean": "100ms"}},
		"image_store": {"name": "img", "get_bandwidth_bps": 1e9,
			"cache": {"activation_count": 2, "activation_window": "1m", "ttl": "5m"}},
		"policy": {"kind": "bounded-queue", "max_queue_per_instance": 4},
		"keep_alive_dist": {"type": "uniform", "min": "5m", "max": "20m"}}`)
	f.Add(`{"policy": {"kind": "rate-limited"}}`)
	f.Add(`{"name": "x", "workers": 0}`)
	f.Add(`{"name": "x", "frontend_delay": {"type": "warp"}}`)
	f.Add(`{"name": "x", "frontend_delay": {"type": "uniform", "min": "2s", "max": "1s"}}`)
	f.Add(`{"name": "x", "keep_alive_fixed": "not-a-duration"}`)
	f.Add(`{"name": "x", "sandbox_boot": {"type": "mixture", "components": []}}`)
	f.Add(`not json`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, data string) {
		var spec ConfigSpec
		if err := json.Unmarshal([]byte(data), &spec); err != nil {
			return
		}
		cfg1, err1 := spec.ToConfig()
		cfg2, err2 := spec.ToConfig()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("ToConfig verdict not deterministic: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return // invalid profile rejected without panicking: fine
		}
		if !reflect.DeepEqual(cfg1, cfg2) {
			t.Fatalf("ToConfig not deterministic for %q", data)
		}
		// Round trip: the spec's own marshaled form must load to the same
		// config (JSON numbers cannot encode NaN, so DeepEqual is sound).
		remarshaled, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal accepted spec: %v", err)
		}
		var spec2 ConfigSpec
		if err := json.Unmarshal(remarshaled, &spec2); err != nil {
			t.Fatalf("re-parse of marshaled spec failed: %v\n%s", err, remarshaled)
		}
		cfg3, err := spec2.ToConfig()
		if err != nil {
			t.Fatalf("round-tripped spec rejected: %v\n%s", err, remarshaled)
		}
		if !reflect.DeepEqual(cfg1, cfg3) {
			t.Fatalf("round-tripped config differs for %q", data)
		}
	})
}
