package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden rewrites the committed fingerprint fixtures from the current
// engine. Run `go test ./internal/experiments -run TestGoldenFigureFingerprints
// -update-golden` only when an intentional statistical change is made; engine
// refactors must leave the fixtures untouched.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden figure fingerprints")

// TestGoldenFigureFingerprints pins every figure's summary fingerprint to a
// fixture generated with the seed engine. Together with the Workers=1 vs
// Workers=8 determinism test this guarantees that engine rewrites (heap
// layout, timer cancellation, goroutine pooling) change only wall-clock
// time, never simulation output: the same seed must produce byte-identical
// figures at any worker count.
func TestGoldenFigureFingerprints(t *testing.T) {
	for _, fr := range figureRunners {
		fr := fr
		t.Run(fr.name, func(t *testing.T) {
			t.Parallel()
			path := filepath.Join("testdata", "golden", fr.name+".fingerprint")
			serial, err := fr.run(detOpts(1, 1))
			if err != nil {
				t.Fatalf("%s Workers=1: %v", fr.name, err)
			}
			fp := fingerprint(serial)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(fp), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update-golden to regenerate): %v", err)
			}
			if fp != string(want) {
				t.Errorf("%s: Workers=1 output diverged from the seed-engine fixture\n--- got ---\n%s--- want ---\n%s",
					fr.name, fp, want)
			}
			parallel, err := fr.run(detOpts(1, 8))
			if err != nil {
				t.Fatalf("%s Workers=8: %v", fr.name, err)
			}
			if fp8 := fingerprint(parallel); fp8 != string(want) {
				t.Errorf("%s: Workers=8 output diverged from the seed-engine fixture\n--- got ---\n%s--- want ---\n%s",
					fr.name, fp8, want)
			}
		})
	}
}
