package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/providers"
	"github.com/stellar-repro/stellar/internal/runner"
	"github.com/stellar-repro/stellar/internal/stats"
)

// SnapshotStudyResult compares cold starts on the research stack with and
// without MicroVM snapshot/restore.
type SnapshotStudyResult struct {
	// Boot and Restore are the cold-start latency samples without and
	// with snapshots.
	Boot, Restore *stats.Sample
	// BootBreakdown and RestoreBreakdown hold the cold-phase splits.
	BootBreakdown, RestoreBreakdown *core.BreakdownStats
}

// SnapshotStudy quantifies the optimization the paper's §VIII points at
// through vHive [8]: how much of the cold-start cost this paper measures
// (Fig. 3b) does snapshot/restore eliminate? Both runs are identical except
// for snapshotting; each replica's first boot captures its snapshot during
// an unmeasured warm-up round.
func SnapshotStudy(opts Options) (*SnapshotStudyResult, error) {
	opts = opts.normalized()
	run := func(provider string, seed int64) (*core.RunResult, error) {
		cfg := providers.MustGet(provider)
		sc := core.StaticConfig{Functions: []core.FunctionConfig{{
			Name:     "snap",
			Runtime:  string(cloud.RuntimePython),
			Method:   string(cloud.DeployZIP),
			Replicas: opts.Replicas,
		}}}
		// Warm-up round: one cold start per replica captures snapshots;
		// discarded from the measurement.
		iat := 5 * time.Minute / time.Duration(opts.Replicas)
		return MeasureWithConfig(cfg, seed, sc, core.RuntimeConfig{
			Samples:       opts.Samples,
			IAT:           core.Duration(iat),
			WarmupDiscard: opts.Replicas,
		})
	}
	variants := []string{"vhive", "vhive-snapshots"}
	runs, err := runner.Map(opts.pool(), len(variants), func(sh runner.Shard) (*core.RunResult, error) {
		r, err := run(variants[sh.Index], sh.Seed)
		if err != nil {
			return nil, fmt.Errorf("snapshots (%s): %w", variants[sh.Index], err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	boot, restore := runs[0], runs[1]
	return &SnapshotStudyResult{
		Boot:             boot.Latencies,
		Restore:          restore.Latencies,
		BootBreakdown:    boot.Breakdowns(),
		RestoreBreakdown: restore.Breakdowns(),
	}, nil
}

// WriteSnapshotReport renders the comparison.
func WriteSnapshotReport(w io.Writer, res *SnapshotStudyResult) {
	fmt.Fprintf(w, "## snapshots — MicroVM snapshot/restore vs full cold boots (vHive extension)\n\n")
	b, r := res.Boot.Summarize(), res.Restore.Summarize()
	fmt.Fprintf(w, "%-18s %12s %12s %8s\n", "variant", "median", "p99", "tmr")
	fmt.Fprintf(w, "%-18s %12v %12v %8.1f\n", "full boot",
		b.Median.Round(time.Millisecond), b.P99.Round(time.Millisecond), b.TMR)
	fmt.Fprintf(w, "%-18s %12v %12v %8.1f\n", "snapshot restore",
		r.Median.Round(time.Millisecond), r.P99.Round(time.Millisecond), r.TMR)
	fmt.Fprintf(w, "\nspeedup: %.1fx median, %.1fx p99\n",
		float64(b.Median)/float64(r.Median), float64(b.P99)/float64(r.P99))
	fmt.Fprintln(w, "\ncold-phase split, full boot:")
	res.BootBreakdown.Write(w)
	fmt.Fprintln(w, "\ncold-phase split, snapshot restore:")
	res.RestoreBreakdown.Write(w)
}
