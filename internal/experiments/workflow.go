package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/runner"
	"github.com/stellar-repro/stellar/internal/stats"
	"github.com/stellar-repro/stellar/internal/stats/sketch"
	"github.com/stellar-repro/stellar/internal/trace"
	"github.com/stellar-repro/stellar/internal/workflow"
)

// WorkflowOptions configures an orchestrated multi-function workflow series
// against one simulated provider: every arrival launches one instance of a
// topology preset, and the series reports workflow-level makespans, per-edge
// transfer tails, critical-path shares, and join-barrier accounting.
type WorkflowOptions struct {
	// Provider is the provider profile under test.
	Provider string
	// Topology is the preset id (chain-N, fanout-K, diamond, mapreduce).
	Topology string
	// Workflows is the number of instances, split across Shards.
	Workflows uint64
	// Shards is the number of independent simulation shards (default 8).
	Shards int
	// Workers bounds concurrently running shards (0 = GOMAXPROCS). Changes
	// wall-clock time only, never results.
	Workers int
	// Seed roots all randomness. Workflow sampling draws from its own
	// "<provider>/workflow" stream, so enabling tracing never shifts the
	// simulation's other draws.
	Seed int64
	// IAT is the inter-arrival time between bursts within one shard
	// (default 100ms).
	IAT time.Duration
	// Burst is the number of simultaneous workflow launches per arrival
	// (default 1).
	Burst int
	// Mode is the invocation mode applied to every edge (sync | async).
	Mode workflow.Mode
	// Transfer is the data-passing mode applied to every edge
	// (inline | blobstore).
	Transfer workflow.Transfer
	// PayloadBytes is the payload carried along every edge.
	PayloadBytes int64
	// Need, when positive, is the first-K straggler policy applied to every
	// fan-in node (zero waits for all branches).
	Need int
	// ExecTime is the per-node busy-spin time (0 = instant handler).
	ExecTime time.Duration
	// Sample is the per-workflow trace-sampling probability in [0, 1]; a
	// sampled instance yields one span per node, tagged with the workflow id
	// and firing parent, forming one trace tree per workflow.
	Sample float64
	// TraceRing bounds retained traces per shard (0 = trace default).
	TraceRing int
	// Alpha is the per-edge sketch relative-accuracy target (0 = default).
	Alpha float64
	// Engine selects the invocation execution form; outputs are
	// byte-identical across forms (TestEngineFormsEquivalent).
	Engine cloud.EngineMode
}

func (o WorkflowOptions) normalized() WorkflowOptions {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.IAT <= 0 {
		o.IAT = 100 * time.Millisecond
	}
	if o.Burst <= 0 {
		o.Burst = 1
	}
	return o
}

func (o WorkflowOptions) validate() error {
	if o.Provider == "" {
		return fmt.Errorf("workflow: provider is required")
	}
	if o.Workflows == 0 {
		return fmt.Errorf("workflow: need at least one workflow")
	}
	if uint64(o.Shards) > o.Workflows {
		return fmt.Errorf("workflow: %d shards for %d workflows", o.Shards, o.Workflows)
	}
	if o.Sample < 0 || o.Sample > 1 {
		return fmt.Errorf("workflow: sample rate %v out of [0,1]", o.Sample)
	}
	_, err := o.dag()
	return err
}

// dag builds the preset topology for these options.
func (o WorkflowOptions) dag() (*workflow.DAG, error) {
	return workflow.Preset(o.Topology, workflow.PresetSpec{
		Mode:         o.Mode,
		Transfer:     o.Transfer,
		PayloadBytes: o.PayloadBytes,
		Need:         o.Need,
	})
}

// WorkflowPathStat is one observed critical path's share of completed
// workflows.
type WorkflowPathStat struct {
	// Label is the path rendered as "a -> b -> c".
	Label string
	// Count is how many completed workflows resolved along this path.
	Count uint64
	// MeanMakespan is those workflows' mean makespan.
	MeanMakespan time.Duration
}

// WorkflowResult is the merged outcome of a workflow series.
type WorkflowResult struct {
	Provider  string
	Topology  string
	Mode      workflow.Mode
	Transfer  workflow.Transfer
	Payload   int64
	Workflows uint64
	Shards    int

	// DAG is the executed topology (node and edge structure for reports).
	DAG *workflow.DAG

	// Completed and Failed count workflow instances; NodeFailures counts
	// node invocations that errored.
	Completed    uint64
	Failed       uint64
	NodeFailures uint64
	// Colds counts cold-served node invocations; Dropped counts sampled
	// traces lost to ring overwrites.
	Colds   uint64
	Dropped uint64

	// Makespans holds completed workflows' launch-to-last-node durations;
	// ClientLats the root invocations' client-observed round trips.
	Makespans  *stats.Sample
	ClientLats *stats.Sample
	// EdgeSketches holds each edge's observed transfer times (consumer
	// receive minus producer send), aligned with DAG.Edges.
	EdgeSketches []*sketch.Sketch
	// Barriers aggregates per-node join counters, aligned with DAG.Nodes.
	Barriers []workflow.BarrierMetrics
	// Paths lists observed critical paths, most frequent first.
	Paths []WorkflowPathStat

	// Traces are the retained workflow span trees, shard-tagged and merged
	// in shard order.
	Traces []trace.RequestRecord

	// CloudMetrics holds each shard's cloud counters, in shard order —
	// retained unsummed so differential tests compare them exactly.
	CloudMetrics []cloud.Metrics

	// VirtualTime is the longest shard's simulated duration.
	VirtualTime time.Duration

	paths map[string]*wfPathAgg
}

// Attribution computes the per-stage tail attribution of the retained node
// spans (nil quantiles = trace.DefaultQuantiles).
func (r *WorkflowResult) Attribution(quantiles []float64) *trace.Attribution {
	return trace.Attribute(r.Traces, quantiles)
}

type wfPathAgg struct {
	count uint64
	sum   time.Duration
}

// workflowShard is one shard's outcome.
type workflowShard struct {
	index        int
	makespans    *stats.Sample
	clients      *stats.Sample
	edges        []*sketch.Sketch
	barriers     []workflow.BarrierMetrics
	paths        map[string]*wfPathAgg
	completed    uint64
	failed       uint64
	nodeFailures uint64
	colds        uint64
	dropped      uint64
	traces       []trace.RequestRecord
	metrics      cloud.Metrics
	virtual      time.Duration
}

// RunWorkflow drives one workflow series: Shards independent simulated
// clouds, each deploying one function per DAG node and launching instances
// through the workflow executor, merged in shard-index order so results are
// byte-identical at any Workers setting. Sampled instances produce one trace
// tree each; every retained span is checked against the tiling invariant.
func RunWorkflow(opts WorkflowOptions) (*WorkflowResult, error) {
	opts = opts.normalized()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	dag, err := opts.dag()
	if err != nil {
		return nil, err
	}
	res := &WorkflowResult{
		Provider:     opts.Provider,
		Topology:     opts.Topology,
		Mode:         opts.Mode,
		Transfer:     opts.Transfer,
		Payload:      opts.PayloadBytes,
		Workflows:    opts.Workflows,
		Shards:       opts.Shards,
		DAG:          dag,
		Makespans:    stats.NewSample(int(opts.Workflows)),
		ClientLats:   stats.NewSample(int(opts.Workflows)),
		EdgeSketches: make([]*sketch.Sketch, len(dag.Edges)),
		Barriers:     make([]workflow.BarrierMetrics, len(dag.Nodes)),
		paths:        make(map[string]*wfPathAgg),
	}
	for i := range res.EdgeSketches {
		res.EdgeSketches[i] = sketch.New(opts.Alpha)
	}
	pool := runner.Pool{Workers: opts.Workers, Seed: opts.Seed}
	_, err = runner.MapReduce(pool, opts.Shards, res,
		func(sh runner.Shard) (*workflowShard, error) {
			return runWorkflowShard(opts, sh)
		},
		mergeWorkflowShard)
	if err != nil {
		return nil, err
	}
	res.Paths = make([]WorkflowPathStat, 0, len(res.paths))
	for label, agg := range res.paths {
		res.Paths = append(res.Paths, WorkflowPathStat{
			Label:        label,
			Count:        agg.count,
			MeanMakespan: agg.sum / time.Duration(agg.count),
		})
	}
	sort.Slice(res.Paths, func(i, j int) bool {
		if res.Paths[i].Count != res.Paths[j].Count {
			return res.Paths[i].Count > res.Paths[j].Count
		}
		return res.Paths[i].Label < res.Paths[j].Label
	})
	if res.Completed == 0 {
		return nil, fmt.Errorf("workflow: all %d instances failed", opts.Workflows)
	}
	return res, nil
}

// mergeWorkflowShard folds one shard into the accumulated result, in shard
// order.
func mergeWorkflowShard(res *WorkflowResult, sh *workflowShard) (*WorkflowResult, error) {
	res.Completed += sh.completed
	res.Failed += sh.failed
	res.NodeFailures += sh.nodeFailures
	res.Colds += sh.colds
	res.Dropped += sh.dropped
	res.Makespans.AddAll(sh.makespans.Values())
	res.ClientLats.AddAll(sh.clients.Values())
	for i, sk := range sh.edges {
		if err := res.EdgeSketches[i].Merge(sk); err != nil {
			return nil, fmt.Errorf("workflow shard %d: edge %d: %w", sh.index, i, err)
		}
	}
	for i, b := range sh.barriers {
		res.Barriers[i].Started += b.Started
		res.Barriers[i].Completed += b.Completed
		res.Barriers[i].Dropped += b.Dropped
		res.Barriers[i].Failed += b.Failed
		res.Barriers[i].Skipped += b.Skipped
	}
	for label, agg := range sh.paths {
		dst := res.paths[label]
		if dst == nil {
			dst = &wfPathAgg{}
			res.paths[label] = dst
		}
		dst.count += agg.count
		dst.sum += agg.sum
	}
	res.Traces = append(res.Traces, sh.traces...)
	res.CloudMetrics = append(res.CloudMetrics, sh.metrics)
	if sh.virtual > res.VirtualTime {
		res.VirtualTime = sh.virtual
	}
	return res, nil
}

// runWorkflowShard runs one shard's workflow arrivals.
func runWorkflowShard(opts WorkflowOptions, sh runner.Shard) (*workflowShard, error) {
	dag, err := opts.dag()
	if err != nil {
		return nil, err
	}
	n := shardInvocations(opts.Workflows, opts.Shards, sh.Index)
	out := &workflowShard{
		index:     sh.Index,
		makespans: stats.NewSample(int(n)),
		clients:   stats.NewSample(int(n)),
		edges:     make([]*sketch.Sketch, len(dag.Edges)),
		barriers:  make([]workflow.BarrierMetrics, len(dag.Nodes)),
		paths:     make(map[string]*wfPathAgg),
	}
	for i := range out.edges {
		out.edges[i] = sketch.New(opts.Alpha)
	}
	if n == 0 {
		return out, nil
	}

	e, err := newEnv(opts.Provider, sh.Seed)
	if err != nil {
		return nil, fmt.Errorf("workflow shard %d: %w", sh.Index, err)
	}
	defer e.close()
	c := e.cloud
	for _, node := range dag.Nodes {
		if err := c.Deploy(cloud.FunctionSpec{
			Name:     node.Name,
			Runtime:  cloud.RuntimePython,
			Method:   cloud.DeployZIP,
			ExecTime: opts.ExecTime,
		}); err != nil {
			return nil, fmt.Errorf("workflow shard %d: %w", sh.Index, err)
		}
	}
	c.SetLatencyRecorder(out.clients)
	c.SetEngineMode(opts.Engine)

	// The tracer is handed to the executor, not installed on the cloud: only
	// workflow spans are recorded, and the sampling decision (one draw per
	// instance from a dedicated stream) never shifts the cloud's own draws.
	var tr *trace.Tracer
	cfg := workflow.Config{Cloud: c, DAG: dag}
	if opts.Sample > 0 {
		tr = trace.New(trace.Config{SampleRate: 1, RingCapacity: opts.TraceRing},
			dist.NewStreams(sh.Seed).Stream(opts.Provider+"/workflow-trace"))
		cfg.Tracer = tr
		cfg.SampleRate = opts.Sample
		cfg.Rng = dist.NewStreams(sh.Seed).Stream(opts.Provider + "/workflow")
	}
	ex, err := workflow.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("workflow shard %d: %w", sh.Index, err)
	}

	runOne := func(p *des.Proc) {
		res, err := ex.Run(p)
		if err != nil {
			out.failed++
		} else {
			out.completed++
			out.makespans.Add(res.Makespan)
			label := ex.PathLabel(res.Critical)
			agg := out.paths[label]
			if agg == nil {
				agg = &wfPathAgg{}
				out.paths[label] = agg
			}
			agg.count++
			agg.sum += res.Makespan
		}
		// Edge transfers observed before a failure still count: the edge's
		// tail is a property of the delivery, not of the whole instance.
		for i, d := range res.EdgeTransfers {
			if d >= 0 {
				out.edges[i].Add(d)
			}
		}
	}
	eng := e.eng
	if opts.Engine == cloud.EngineProc {
		eng.Spawn("workflow/arrivals", func(p *des.Proc) {
			remaining := n
			for remaining > 0 {
				burst := uint64(opts.Burst)
				if burst > remaining {
					burst = remaining
				}
				for j := uint64(0); j < burst; j++ {
					eng.Spawn("workflow/run", runOne)
				}
				remaining -= burst
				if remaining > 0 {
					p.Sleep(opts.IAT)
				}
			}
		})
	} else {
		// Callback-form arrivals: the workflow instance itself still needs a
		// proc (sync edges block inside serving windows), so only the arrival
		// clock changes shape — outputs stay byte-identical to the proc form.
		remaining := n
		var arrive func()
		arrive = func() {
			burst := uint64(opts.Burst)
			if burst > remaining {
				burst = remaining
			}
			for j := uint64(0); j < burst; j++ {
				eng.Spawn("workflow/run", runOne)
			}
			remaining -= burst
			if remaining > 0 {
				eng.CallAfter(opts.IAT, arrive)
			}
		}
		eng.Call(arrive)
	}
	eng.Run(0)

	m := ex.Metrics()
	if m.Workflows != n || m.Completed != out.completed || m.Failed != out.failed {
		return nil, fmt.Errorf("workflow shard %d: executor accounted %d/%d/%d, shard saw %d/%d/%d",
			sh.Index, m.Workflows, m.Completed, m.Failed, n, out.completed, out.failed)
	}
	copy(out.barriers, m.Barriers)
	out.nodeFailures = m.NodeFailures
	out.metrics = c.Metrics()
	out.colds = out.metrics.ColdServed
	out.virtual = eng.Now()
	if tr != nil {
		out.dropped = tr.Dropped()
		out.traces = tr.Drain()
		for i := range out.traces {
			out.traces[i].Shard = sh.Index
			if err := out.traces[i].Validate(); err != nil {
				return nil, fmt.Errorf("workflow shard %d: %w", sh.Index, err)
			}
		}
	}
	return out, nil
}

// WriteWorkflowReport renders the workflow series outcome: headline metrics,
// critical-path shares, the per-edge transfer-tail table, join-barrier
// accounting, and the per-stage attribution of the retained node spans.
func WriteWorkflowReport(w io.Writer, res *WorkflowResult) {
	fmt.Fprintf(w, "workflow: topology=%s provider=%s workflows=%d shards=%d mode=%s transfer=%s payload=%dB\n",
		res.Topology, res.Provider, res.Workflows, res.Shards, res.Mode, res.Transfer, res.Payload)
	fmt.Fprintf(w, "outcome: completed=%d failed=%d node-failures=%d colds=%d virtual=%v\n",
		res.Completed, res.Failed, res.NodeFailures, res.Colds, res.VirtualTime.Round(time.Second))
	if res.Makespans.Count() > 0 {
		sum := res.Makespans.Summarize()
		fmt.Fprintf(w, "makespan: median=%v p95=%v p99=%v max=%v tmr=%.1f\n",
			sum.Median.Round(time.Millisecond), sum.P95.Round(time.Millisecond),
			sum.P99.Round(time.Millisecond), sum.Max.Round(time.Millisecond), sum.TMR)
	}
	if res.ClientLats.Count() > 0 {
		sum := res.ClientLats.Summarize()
		fmt.Fprintf(w, "client:   median=%v p95=%v p99=%v max=%v tmr=%.1f\n",
			sum.Median.Round(time.Millisecond), sum.P95.Round(time.Millisecond),
			sum.P99.Round(time.Millisecond), sum.Max.Round(time.Millisecond), sum.TMR)
	}
	if len(res.Paths) > 0 {
		fmt.Fprintf(w, "critical paths:\n")
		for _, p := range res.Paths {
			fmt.Fprintf(w, "  %5.1f%%  %-40s  mean makespan %v (%d runs)\n",
				100*float64(p.Count)/float64(res.Completed), p.Label,
				p.MeanMakespan.Round(time.Millisecond), p.Count)
		}
	}
	fmt.Fprintf(w, "edges (transfer = consumer receive - producer send):\n")
	fmt.Fprintf(w, "  %-28s %8s %10s %10s %10s\n", "edge", "count", "p50", "p99", "max")
	for i, edge := range res.DAG.Edges {
		sk := res.EdgeSketches[i]
		if sk.Count() == 0 {
			fmt.Fprintf(w, "  %-28s %8d %10s %10s %10s\n", edge.Label(), 0, "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "  %-28s %8d %10v %10v %10v\n", edge.Label(), sk.Count(),
			sk.Quantile(0.5).Round(time.Microsecond),
			sk.Quantile(0.99).Round(time.Microsecond),
			sk.Max().Round(time.Microsecond))
	}
	joins := false
	for i, node := range res.DAG.Nodes {
		indeg := 0
		for _, edge := range res.DAG.Edges {
			if edge.To == node.Name {
				indeg++
			}
		}
		b := res.Barriers[i]
		if indeg < 2 && b.Dropped == 0 && b.Failed == 0 && b.Skipped == 0 {
			continue
		}
		if !joins {
			fmt.Fprintf(w, "barriers (started = completed + dropped + failed):\n")
			joins = true
		}
		fmt.Fprintf(w, "  %-12s started=%d completed=%d dropped=%d failed=%d skipped=%d\n",
			node.Name, b.Started, b.Completed, b.Dropped, b.Failed, b.Skipped)
	}
	if res.Traces != nil || res.Dropped > 0 {
		fmt.Fprintf(w, "traces: retained=%d dropped=%d\n", len(res.Traces), res.Dropped)
	}
	if len(res.Traces) > 0 {
		if a := res.Attribution(nil); a != nil {
			a.Write(w)
		}
	}
}

// WorkflowSweepResult holds the edge-mode x payload-size sweep for one
// topology.
type WorkflowSweepResult struct {
	// Cells are the per-combination series, in sweep order (mode-major,
	// then transfer, then payload).
	Cells []*WorkflowResult
}

// RunWorkflowSweep sweeps one topology over edge invocation modes,
// data-passing modes, and payload sizes (nil slices select both modes and a
// 1KB/64KB/1MB payload ladder). Cells run sequentially — each is already
// sharded — so the sweep is deterministic for any Workers setting.
func RunWorkflowSweep(opts WorkflowOptions, modes []workflow.Mode, transfers []workflow.Transfer, payloads []int64) (*WorkflowSweepResult, error) {
	if len(modes) == 0 {
		modes = []workflow.Mode{workflow.ModeSync, workflow.ModeAsync}
	}
	if len(transfers) == 0 {
		transfers = []workflow.Transfer{workflow.TransferInline, workflow.TransferBlobstore}
	}
	if len(payloads) == 0 {
		payloads = []int64{1 << 10, 64 << 10, 1 << 20}
	}
	res := &WorkflowSweepResult{}
	for _, m := range modes {
		for _, t := range transfers {
			for _, pb := range payloads {
				cell := opts
				cell.Mode, cell.Transfer, cell.PayloadBytes = m, t, pb
				run, err := RunWorkflow(cell)
				if err != nil {
					return nil, fmt.Errorf("workflow sweep %s/%s/%dB: %w", m, t, pb, err)
				}
				res.Cells = append(res.Cells, run)
			}
		}
	}
	return res, nil
}

// WriteWorkflowSweepReport renders the sweep as one row per cell.
func WriteWorkflowSweepReport(w io.Writer, res *WorkflowSweepResult) {
	if len(res.Cells) == 0 {
		return
	}
	fmt.Fprintf(w, "## workflow — %s edge-mode x payload sweep\n\n", res.Cells[0].Topology)
	fmt.Fprintf(w, "%-6s %-10s %10s %12s %12s %12s %12s\n",
		"mode", "transfer", "payload", "mk.p50", "mk.p99", "client.p99", "edge.p99max")
	for _, cell := range res.Cells {
		mk := cell.Makespans.Summarize()
		cl := cell.ClientLats.Summarize()
		var worst time.Duration
		for _, sk := range cell.EdgeSketches {
			if sk.Count() == 0 {
				continue
			}
			if q := sk.Quantile(0.99); q > worst {
				worst = q
			}
		}
		fmt.Fprintf(w, "%-6s %-10s %10d %12v %12v %12v %12v\n",
			cell.Mode, cell.Transfer, cell.Payload,
			mk.Median.Round(time.Millisecond), mk.P99.Round(time.Millisecond),
			cl.P99.Round(time.Millisecond), worst.Round(time.Millisecond))
	}
}
