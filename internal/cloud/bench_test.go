package cloud

import (
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
)

// BenchmarkWarmInvoke measures the simulator's cost per warm invocation —
// the throughput bound for large virtual experiments.
func BenchmarkWarmInvoke(b *testing.B) {
	eng := des.NewEngine()
	defer eng.Close()
	c, err := New(eng, testConfig(), dist.NewStreams(1))
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Deploy(FunctionSpec{Name: "f", Runtime: RuntimePython, Method: DeployZIP}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	eng.Spawn("bench", func(p *des.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Invoke(p, &Request{Fn: "f"}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	eng.Run(0)
}

// BenchmarkColdInvoke measures cost per cold invocation (spawn pipeline,
// keep-alive timers, storage fetch).
func BenchmarkColdInvoke(b *testing.B) {
	cfg := testConfig()
	cfg.KeepAlive = KeepAlivePolicy{Fixed: time.Millisecond} // reap instantly
	eng := des.NewEngine()
	defer eng.Close()
	c, err := New(eng, cfg, dist.NewStreams(1))
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Deploy(FunctionSpec{Name: "f", Runtime: RuntimePython, Method: DeployZIP}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	eng.Spawn("bench", func(p *des.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Invoke(p, &Request{Fn: "f"}); err != nil {
				b.Error(err)
				return
			}
			p.Sleep(10 * time.Millisecond) // let the keep-alive reap
		}
	})
	eng.Run(0)
}

// benchKeepAliveChurn measures the keep-alive cancel/refresh cost of a warm
// invocation against a realistic timer population: a fleet of idle instances
// (each holding a pending expiry timer) sits in the background while one hot
// function churns claim-cancel / release-re-arm per request. In heap mode
// every churn op pays an indexed removal and push against the whole fleet's
// timers; with slack > 0 the expiries live on the timer wheel instead.
func benchKeepAliveChurn(b *testing.B, slack time.Duration) {
	const fleet = 2000
	cfg := testConfig()
	cfg.KeepAlive = KeepAlivePolicy{Fixed: 30 * time.Minute}
	cfg.KeepAliveSlack = slack
	eng := des.NewEngine()
	defer eng.Close()
	c, err := New(eng, cfg, dist.NewStreams(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"fleet", "f"} {
		if err := c.Deploy(FunctionSpec{Name: name, Runtime: RuntimePython, Method: DeployZIP}); err != nil {
			b.Fatal(err)
		}
	}
	// Build the idle fleet: concurrent overlapping invocations force one
	// instance each; afterwards all park idle with pending expiry timers.
	for i := 0; i < fleet; i++ {
		eng.Spawn("fleet", func(p *des.Proc) {
			if _, err := c.Invoke(p, &Request{Fn: "fleet", ExecTime: time.Second}); err != nil {
				b.Error(err)
			}
		})
	}
	eng.Run(0)
	// Warm the hot function's instance outside the timer.
	eng.Spawn("warm", func(p *des.Proc) {
		if _, err := c.Invoke(p, &Request{Fn: "f"}); err != nil {
			b.Error(err)
		}
	})
	eng.Run(0)
	b.ResetTimer()
	eng.Spawn("bench", func(p *des.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Invoke(p, &Request{Fn: "f"}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	eng.Run(0)
}

// BenchmarkKeepAliveChurn compares per-invocation keep-alive timer churn on
// the exact heap against the slack wheel, with 2000 idle-fleet timers live.
func BenchmarkKeepAliveChurn(b *testing.B) {
	b.Run("heap", func(b *testing.B) { benchKeepAliveChurn(b, 0) })
	b.Run("wheel", func(b *testing.B) { benchKeepAliveChurn(b, 500*time.Millisecond) })
}

// BenchmarkBurst100 measures a full 100-request cold burst round.
func BenchmarkBurst100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := des.NewEngine()
		c, err := New(eng, testConfig(), dist.NewStreams(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Deploy(FunctionSpec{Name: "f", Runtime: RuntimePython, Method: DeployZIP}); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			eng.Spawn("client", func(p *des.Proc) {
				if _, err := c.Invoke(p, &Request{Fn: "f", ExecTime: time.Second}); err != nil {
					b.Error(err)
				}
			})
		}
		eng.Run(time.Minute)
		eng.Close()
	}
}

// BenchmarkWarmInvokeCallback measures the callback fast path per warm
// invocation: the straight-line Call chain with zero goroutine switches
// and, in steady state, zero allocations.
func BenchmarkWarmInvokeCallback(b *testing.B) {
	eng := des.NewEngine()
	defer eng.Close()
	c, err := New(eng, testConfig(), dist.NewStreams(1))
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Deploy(FunctionSpec{Name: "f", Runtime: RuntimePython, Method: DeployZIP}); err != nil {
		b.Fatal(err)
	}
	c.SetEngineMode(EngineCallback)
	req := &Request{Fn: "f"}
	remaining := b.N
	var done func(*Response, error)
	done = func(_ *Response, err error) {
		if err != nil {
			b.Error(err)
			return
		}
		remaining--
		if remaining > 0 {
			c.InvokeAsync(req, done)
		}
	}
	// Warm-up outside the timer: pay the cold start and prime the pools.
	warm := make(chan struct{})
	c.InvokeAsync(req, func(_ *Response, err error) {
		if err != nil {
			b.Error(err)
		}
		close(warm)
	})
	eng.Run(0)
	<-warm
	b.ReportAllocs()
	b.ResetTimer()
	c.InvokeAsync(req, done)
	eng.Run(0)
}
