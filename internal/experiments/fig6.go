package experiments

import (
	"fmt"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/core"
)

// TransferProviders are the providers supporting the paper's transfer
// studies (Azure lacked a Go runtime, §VI-C footnote 6).
var TransferProviders = []string{"aws", "google"}

// Fig6Payloads is the inline-transfer payload sweep (bounded by the
// providers' inline size limits: 6MB AWS / 10MB Google).
var Fig6Payloads = []int64{1 << 10, 10 << 10, 100 << 10, 1 << 20, 4 << 20}

// fig6Refs hold the paper's inline transfer times (§VI-C1). Only the
// explicitly reported points carry values.
var fig6Refs = map[string]map[int64]Ref{
	"aws": {
		1 << 10: {Median: 11 * time.Millisecond},
		1 << 20: {Median: 41 * time.Millisecond, P99: 70 * time.Millisecond},
		4 << 20: {Median: 124 * time.Millisecond, P99: 174 * time.Millisecond},
	},
	"google": {
		1 << 10: {Median: 7 * time.Millisecond},
		1 << 20: {Median: 62 * time.Millisecond, P99: 88 * time.Millisecond},
		4 << 20: {Median: 202 * time.Millisecond, P99: 263 * time.Millisecond},
	},
}

// chainConfig builds the two-function Go chain the paper uses for transfer
// studies (§V), with the given transport.
func chainConfig(transfer string, payload int64) core.StaticConfig {
	return core.StaticConfig{Functions: []core.FunctionConfig{{
		Name:    "xfer",
		Runtime: string(cloud.RuntimeGo),
		Method:  string(cloud.DeployZIP),
		Chain:   &core.ChainConfig{Length: 2, Transfer: transfer, PayloadBytes: payload},
	}}}
}

// runTransfer measures instrumented producer->consumer transfer times for
// one provider/transport/payload configuration with warm instances. The IAT
// stretches for very large payloads so consecutive transfers never overlap
// (one outstanding request per function, as in §V).
func runTransfer(prov string, seed int64, engine cloud.EngineMode, transfer string, payload int64, samples int) (*core.RunResult, error) {
	iat := shortIAT
	if payload >= 100<<20 {
		// Long enough that transfers never overlap, short enough that no
		// provider's keep-alive reaps the idle instances in between.
		iat = 45 * time.Second
	}
	return measure(prov, seed, engine, chainConfig(transfer, payload), core.RuntimeConfig{
		Samples:       samples,
		IAT:           core.Duration(iat),
		WarmupDiscard: 3, // first invocations cold-start both chain members
	})
}

// Fig6Inline reproduces Fig. 6: inline data-transfer latency as a function
// of payload size, using STeLLAR's intra-function timestamp
// instrumentation (§IV) to isolate the transfer from the end-to-end path.
func Fig6Inline(opts Options) (*Figure, error) {
	opts = opts.normalized()
	fig := &Figure{
		ID:    "fig6",
		Title: "Inline data-transfer latency vs. payload size",
		Notes: []string{"two-function Go chain; instrumented producer->consumer transfer time"},
	}
	cases := transferCases(Fig6Payloads)
	series, err := mapSeries(opts, len(cases), func(i int, seed int64) (Series, error) {
		c := cases[i]
		res, err := runTransfer(c.prov, seed, opts.Engine, "inline", c.payload, opts.Samples)
		if err != nil {
			return Series{}, fmt.Errorf("fig6 %s %dB: %w", c.prov, c.payload, err)
		}
		label := fmt.Sprintf("%s %s", c.prov, sizeLabel(c.payload))
		return transferSeriesFrom(label, float64(c.payload), res, fig6Refs[c.prov][c.payload])
	})
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}

// transferCase is one provider/payload cell of a transfer sweep.
type transferCase struct {
	prov    string
	payload int64
}

// transferCases enumerates a payload sweep across TransferProviders in the
// figures' fixed order (the shard index of each cell must be stable).
func transferCases(payloads []int64) []transferCase {
	var cases []transferCase
	for _, prov := range TransferProviders {
		for _, payload := range payloads {
			cases = append(cases, transferCase{prov, payload})
		}
	}
	return cases
}

// sizeLabel formats a payload size the way the paper's axes do.
func sizeLabel(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
