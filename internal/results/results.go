// Package results persists measurement runs and compares them: the
// regression-detection layer a benchmarking framework needs once numbers
// are collected. Comparisons combine bootstrap confidence intervals with a
// Mann-Whitney U test, so "the p99 moved" claims come with statistical
// backing rather than single-number eyeballing.
package results

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/stats"
	"github.com/stellar-repro/stellar/internal/stats/sketch"
	"github.com/stellar-repro/stellar/internal/trace"
)

// RunRecord is a serialized measurement run. Small runs carry their raw
// latencies; scale runs instead (or additionally) carry a compact quantile
// sketch whose size is independent of the series length.
type RunRecord struct {
	// Name labels the run ("aws-warm-baseline").
	Name string `json:"name"`
	// LatenciesNS are the measured response times in nanoseconds.
	LatenciesNS []int64 `json:"latencies_ns,omitempty"`
	// Sketch is the run's mergeable latency summary, if one was recorded.
	// For stress runs this is the intended-time (coordinated-omission-safe)
	// distribution.
	Sketch *sketch.Record `json:"sketch,omitempty"`
	// ServiceSketch is a stress run's service-time distribution (measured
	// from the actual send instant rather than the intended one).
	ServiceSketch *sketch.Record `json:"service_sketch,omitempty"`
	// SendLagSketch is a stress run's generator-health distribution: how
	// late each request left relative to its intended schedule instant.
	SendLagSketch *sketch.Record `json:"send_lag_sketch,omitempty"`
	// TransfersNS are instrumented transfer times, if any.
	TransfersNS []int64 `json:"transfers_ns,omitempty"`
	// Colds and Errors echo the run's outcome counts.
	Colds  int `json:"colds"`
	Errors int `json:"errors"`
	// BilledGBSeconds is the run's total bill.
	BilledGBSeconds float64 `json:"billed_gb_seconds,omitempty"`
	// Outcome carries request-level success/retry counters for runs made
	// under fault injection (nil for records saved before that existed).
	Outcome *stats.Outcome `json:"outcome,omitempty"`
	// SuccessRate and GoodputRPS are the derived headline numbers, stored
	// so saved records stay comparable without re-deriving context (the
	// goodput denominator is the run's virtual time, which the raw
	// latencies alone do not determine).
	SuccessRate float64 `json:"success_rate,omitempty"`
	GoodputRPS  float64 `json:"goodput_rps,omitempty"`
	// Traces are sampled per-request span traces, when the run was made
	// with the tracer enabled (stellar trace). Each trace's top-level spans
	// sum exactly to its observed latency; Load re-validates this.
	Traces []trace.RequestRecord `json:"traces,omitempty"`
	// EdgeSketches are a workflow run's per-edge transfer-time summaries,
	// one per DAG edge in topology order (stellar workflow). Load
	// re-validates each sketch payload.
	EdgeSketches []NamedSketch `json:"edge_sketches,omitempty"`
}

// NamedSketch pairs a label (a workflow edge such as "src->w1[inline]")
// with its mergeable latency summary.
type NamedSketch struct {
	Name   string         `json:"name"`
	Sketch *sketch.Record `json:"sketch"`
}

// FromRunResult converts a client run into a persistable record.
func FromRunResult(name string, res *core.RunResult) *RunRecord {
	rec := &RunRecord{
		Name:            name,
		Colds:           res.Colds,
		Errors:          res.Errors,
		BilledGBSeconds: res.BilledGBSeconds,
	}
	lats := res.Latencies.Values()
	rec.LatenciesNS = make([]int64, 0, len(lats))
	for _, v := range lats {
		rec.LatenciesNS = append(rec.LatenciesNS, int64(v))
	}
	if trans := res.Transfers.Values(); len(trans) > 0 {
		rec.TransfersNS = make([]int64, 0, len(trans))
		for _, v := range trans {
			rec.TransfersNS = append(rec.TransfersNS, int64(v))
		}
	}
	rec.Outcome = &stats.Outcome{
		Issued:    uint64(len(lats) + res.Errors),
		Succeeded: uint64(len(lats)),
	}
	rec.SuccessRate = rec.Outcome.SuccessRate()
	return rec
}

// FromFaultRun builds a record for a run made under fault injection: the
// successful-request latencies plus the outcome counters, with goodput
// computed against the run's virtual duration.
func FromFaultRun(name string, lats *stats.Sample, out stats.Outcome, virtual time.Duration) *RunRecord {
	rec := &RunRecord{
		Name:        name,
		Errors:      int(out.Failed()),
		Outcome:     &out,
		SuccessRate: out.SuccessRate(),
		GoodputRPS:  out.Goodput(virtual),
	}
	vals := lats.Values()
	rec.LatenciesNS = make([]int64, 0, len(vals))
	for _, v := range vals {
		rec.LatenciesNS = append(rec.LatenciesNS, int64(v))
	}
	return rec
}

// FromTraceRun builds a record for a traced series: every successful
// request's latency plus the retained span traces.
func FromTraceRun(name string, lats *stats.Sample, traces []trace.RequestRecord, colds, errors int) *RunRecord {
	rec := &RunRecord{
		Name:   name,
		Colds:  colds,
		Errors: errors,
		Traces: traces,
	}
	vals := lats.Values()
	rec.LatenciesNS = make([]int64, 0, len(vals))
	for _, v := range vals {
		rec.LatenciesNS = append(rec.LatenciesNS, int64(v))
	}
	return rec
}

// FromWorkflowRun builds a record for an orchestrated workflow series:
// completed workflows' makespans as the latency series, per-edge transfer
// sketches, and the retained node-span trace trees.
func FromWorkflowRun(name string, makespans *stats.Sample, edges []NamedSketch, traces []trace.RequestRecord, colds, errors int) *RunRecord {
	rec := &RunRecord{
		Name:         name,
		Colds:        colds,
		Errors:       errors,
		Traces:       traces,
		EdgeSketches: edges,
	}
	vals := makespans.Values()
	rec.LatenciesNS = make([]int64, 0, len(vals))
	for _, v := range vals {
		rec.LatenciesNS = append(rec.LatenciesNS, int64(v))
	}
	return rec
}

// FromScaleRun builds a record for a sketch-summarized series: counters plus
// the compact sketch, no per-sample data.
func FromScaleRun(name string, sk *sketch.Sketch, colds, errors int) *RunRecord {
	return &RunRecord{
		Name:   name,
		Sketch: sk.Record(),
		Colds:  colds,
		Errors: errors,
	}
}

// FromStressRun builds a record for an open-loop socket-level stress run:
// the coordinated-omission-safe intended-time sketch as the primary
// distribution, plus the service-time and send-lag companions.
func FromStressRun(name string, intended, service, sendLag *sketch.Sketch, colds, errors int) *RunRecord {
	rec := &RunRecord{
		Name:   name,
		Sketch: intended.Record(),
		Colds:  colds,
		Errors: errors,
	}
	if service != nil && service.Count() > 0 {
		rec.ServiceSketch = service.Record()
	}
	if sendLag != nil && sendLag.Count() > 0 {
		rec.SendLagSketch = sendLag.Record()
	}
	return rec
}

// FromCostRun builds a record for one policy point of a cost sweep: the
// merged tenant-latency sketch plus the policy's total metered GB-seconds,
// so saved points stay comparable with 'stellar compare' on the latency
// axis while carrying the bill alongside.
func FromCostRun(name string, sk *sketch.Sketch, colds, errors int, gbSeconds float64) *RunRecord {
	return &RunRecord{
		Name:            name,
		Sketch:          sk.Record(),
		Colds:           colds,
		Errors:          errors,
		BilledGBSeconds: gbSeconds,
	}
}

// Latencies rebuilds the latency sample. It requires raw samples; use
// Recorder for records that may only carry a sketch.
func (r *RunRecord) Latencies() *stats.Sample {
	s := stats.NewSample(len(r.LatenciesNS))
	for _, v := range r.LatenciesNS {
		s.Add(time.Duration(v))
	}
	return s
}

// Recorder returns the record's latency distribution under the common
// Recorder interface: the exact sample when raw latencies are present,
// otherwise the rehydrated sketch.
func (r *RunRecord) Recorder() (sketch.Recorder, error) {
	if len(r.LatenciesNS) > 0 {
		return r.Latencies(), nil
	}
	if r.Sketch == nil {
		return nil, fmt.Errorf("results: %s has neither latencies nor a sketch", r.Name)
	}
	return sketch.FromRecord(r.Sketch)
}

// Save writes the record as JSON.
func (r *RunRecord) Save(path string) error {
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("results: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("results: write: %w", err)
	}
	return nil
}

// Load reads a record.
func Load(path string) (*RunRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("results: read: %w", err)
	}
	var rec RunRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("results: parse: %w", err)
	}
	if len(rec.LatenciesNS) == 0 && rec.Sketch == nil {
		return nil, fmt.Errorf("results: %s has no latency samples", path)
	}
	// Validate sketch payloads eagerly so corrupt files fail at load
	// time, not mid-analysis.
	for _, sk := range []*sketch.Record{rec.Sketch, rec.ServiceSketch, rec.SendLagSketch} {
		if sk == nil {
			continue
		}
		if _, err := sketch.FromRecord(sk); err != nil {
			return nil, fmt.Errorf("results: %s: %w", path, err)
		}
	}
	for _, ns := range rec.EdgeSketches {
		if ns.Sketch == nil {
			return nil, fmt.Errorf("results: %s: edge sketch %q has no payload", path, ns.Name)
		}
		if _, err := sketch.FromRecord(ns.Sketch); err != nil {
			return nil, fmt.Errorf("results: %s: edge %q: %w", path, ns.Name, err)
		}
	}
	// Same for trace payloads: a trace whose spans don't tile its latency
	// is corrupt, and attribution built on it would lie.
	for i := range rec.Traces {
		if err := rec.Traces[i].Validate(); err != nil {
			return nil, fmt.Errorf("results: %s: %w", path, err)
		}
	}
	return &rec, nil
}

// MetricComparison compares one percentile across two runs.
type MetricComparison struct {
	// Metric names the compared statistic ("median", "p99").
	Metric string
	// A and B are the two runs' confidence intervals.
	A, B stats.CI
	// DeltaPct is (B-A)/A of the point estimates, in percent.
	DeltaPct float64
	// Distinguishable reports whether the intervals do NOT overlap —
	// i.e., the difference exceeds resampling noise.
	Distinguishable bool
}

// Comparison is a full A/B comparison of two runs.
type Comparison struct {
	NameA, NameB string
	Metrics      []MetricComparison
	// MW is the distribution-level Mann-Whitney test.
	MW stats.MannWhitney
	// SameDistribution is true when the test cannot reject H0 at 5%.
	SameDistribution bool
}

// Compare builds the A/B analysis. rng drives the bootstrap; confidence is
// the CI coverage (e.g., 0.95).
func Compare(a, b *RunRecord, confidence float64, resamples int, rng *rand.Rand) *Comparison {
	sa, sb := a.Latencies(), b.Latencies()
	cmp := &Comparison{NameA: a.Name, NameB: b.Name}
	for _, m := range []struct {
		name string
		p    float64
	}{{"median", 50}, {"p95", 95}, {"p99", 99}} {
		ciA := sa.PercentileCI(m.p, confidence, resamples, rng)
		ciB := sb.PercentileCI(m.p, confidence, resamples, rng)
		delta := 0.0
		if ciA.Point > 0 {
			delta = (float64(ciB.Point) - float64(ciA.Point)) / float64(ciA.Point) * 100
		}
		cmp.Metrics = append(cmp.Metrics, MetricComparison{
			Metric:          m.name,
			A:               ciA,
			B:               ciB,
			DeltaPct:        delta,
			Distinguishable: !ciA.Overlaps(ciB),
		})
	}
	cmp.MW = stats.MannWhitneyU(sa, sb)
	cmp.SameDistribution = cmp.MW.P >= 0.05
	return cmp
}

// Write renders the comparison as text.
func (c *Comparison) Write(w io.Writer) {
	fmt.Fprintf(w, "comparing %s (A) vs %s (B)\n\n", c.NameA, c.NameB)
	fmt.Fprintf(w, "%-8s %-28s %-28s %9s %s\n", "metric", "A", "B", "delta", "verdict")
	for _, m := range c.Metrics {
		verdict := "indistinguishable (CIs overlap)"
		if m.Distinguishable {
			verdict = "distinguishable"
		}
		fmt.Fprintf(w, "%-8s %-28s %-28s %8.1f%% %s\n", m.Metric, m.A, m.B, m.DeltaPct, verdict)
	}
	fmt.Fprintf(w, "\nMann-Whitney U: z=%.2f p=%.4f — ", c.MW.Z, c.MW.P)
	if c.SameDistribution {
		fmt.Fprintln(w, "no evidence the distributions differ (p >= 0.05)")
	} else {
		fmt.Fprintln(w, "the distributions differ (p < 0.05)")
	}
}
