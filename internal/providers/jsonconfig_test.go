package providers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
)

const sampleProfile = `{
  "name": "edge-cloud",
  "propagation_rtt": "8ms",
  "frontend_delay": {"type": "lognormal", "median": "3ms", "p99": "12ms"},
  "warm_overhead": {"type": "constant", "value": "2ms"},
  "scheduler_capacity": 8,
  "placement_delay": {"type": "uniform", "min": "5ms", "max": "15ms"},
  "policy": {"kind": "bounded-queue", "max_queue_per_instance": 4},
  "sandbox_boot": {"type": "exponential", "mean": "80ms"},
  "pooled_init": {"type": "constant", "value": "30ms"},
  "image_store": {
    "name": "edge-registry",
    "get_latency": {"type": "mixture", "components": [
      {"weight": 0.95, "dist": {"type": "constant", "value": "10ms"}},
      {"weight": 0.05, "dist": {"type": "lognormal", "median": "200ms", "p99": "800ms"}}
    ]},
    "get_bandwidth_bps": 4e9,
    "cache": {"activation_count": 1, "activation_window": "1m", "ttl": "5m",
              "hit_latency": {"type": "constant", "value": "1ms"}}
  },
  "payload_store": {"name": "edge-blob",
    "get_latency": {"type": "constant", "value": "5ms"},
    "put_latency": {"type": "constant", "value": "5ms"}},
  "inline_limit_bytes": 1048576,
  "inline_bandwidth_bps": 1e9,
  "keep_alive_fixed": "5m",
  "workers": 4,
  "worker_capacity": 8,
  "placement": "least-loaded",
  "default_memory_mb": 1024,
  "full_speed_memory_mb": 1024
}`

func writeProfile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadConfigFile(t *testing.T) {
	cfg, err := LoadConfigFile(writeProfile(t, sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "edge-cloud" || cfg.PropagationRTT != 8*time.Millisecond {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Policy.Kind != cloud.PolicyBoundedQueue || cfg.Policy.MaxQueuePerInstance != 4 {
		t.Fatalf("policy = %+v", cfg.Policy)
	}
	if !cfg.ImageStore.Cache.Enabled || cfg.ImageStore.Cache.TTL != 5*time.Minute {
		t.Fatalf("cache = %+v", cfg.ImageStore.Cache)
	}
	if cfg.Placement != cloud.PlacementLeastLoaded || cfg.WorkerCapacity != 8 {
		t.Fatalf("placement = %v cap = %d", cfg.Placement, cfg.WorkerCapacity)
	}
	// The loaded profile must actually run.
	eng := des.NewEngine()
	defer eng.Close()
	c, err := cloud.New(eng, cfg, dist.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(cloud.FunctionSpec{Name: "f", Runtime: cloud.RuntimeGo, Method: cloud.DeployZIP}); err != nil {
		t.Fatal(err)
	}
	var lat time.Duration
	eng.Spawn("probe", func(p *des.Proc) {
		t0 := p.Now()
		if _, err := c.Invoke(p, &cloud.Request{Fn: "f"}); err != nil {
			t.Error(err)
		}
		lat = p.Now() - t0
	})
	eng.Run(time.Minute)
	if lat <= 8*time.Millisecond {
		t.Fatalf("probe latency %v implausibly small", lat)
	}
}

func TestRegisterFile(t *testing.T) {
	name, err := RegisterFile(writeProfile(t, sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	defer delete(registry, name)
	if name != "edge-cloud" {
		t.Fatalf("name = %q", name)
	}
	cfg := MustGet("edge-cloud")
	if cfg.Workers != 4 {
		t.Fatalf("registered profile mangled: %+v", cfg)
	}
}

func TestLoadConfigFileErrors(t *testing.T) {
	if _, err := LoadConfigFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("expected error for missing file")
	}
	if _, err := LoadConfigFile(writeProfile(t, "{nope")); err == nil {
		t.Error("expected parse error")
	}
	// Validation failures surface (no workers).
	if _, err := LoadConfigFile(writeProfile(t, `{"name":"x","scheduler_capacity":1,
		"policy":{"kind":"no-queue"},"keep_alive_fixed":"1m","workers":0}`)); err == nil {
		t.Error("expected validation error")
	}
}

func TestDistSpecErrors(t *testing.T) {
	cases := []DistSpec{
		{Type: "warp-drive"},
		{Type: "lognormal", Median: JSONDuration(10 * time.Millisecond), P99: JSONDuration(time.Millisecond)},
		{Type: "exponential"},
		{Type: "uniform", Min: JSONDuration(time.Second), Max: JSONDuration(time.Millisecond)},
		{Type: "mixture"},
		{Type: "mixture", Components: []MixtureComponentSpec{{Weight: 0}}},
		{Type: "mixture", Components: []MixtureComponentSpec{{Weight: 1}}},
	}
	for i, spec := range cases {
		if _, err := spec.ToDist(); err == nil {
			t.Errorf("spec %d should fail", i)
		}
	}
	// Empty type means "unset".
	if d, err := (&DistSpec{}).ToDist(); err != nil || d != nil {
		t.Errorf("empty spec = %v, %v", d, err)
	}
	var nilSpec *DistSpec
	if d, err := nilSpec.ToDist(); err != nil || d != nil {
		t.Errorf("nil spec = %v, %v", d, err)
	}
}

func TestDistSpecKinds(t *testing.T) {
	rng := dist.NewStreams(3).Stream("t")
	specs := map[string]DistSpec{
		"constant":    {Type: "constant", Value: JSONDuration(5 * time.Millisecond)},
		"uniform":     {Type: "uniform", Min: JSONDuration(time.Millisecond), Max: JSONDuration(2 * time.Millisecond)},
		"exponential": {Type: "exponential", Mean: JSONDuration(time.Millisecond)},
		"lognormal":   {Type: "lognormal", Median: JSONDuration(time.Millisecond), P99: JSONDuration(4 * time.Millisecond)},
	}
	for name, spec := range specs {
		d, err := spec.ToDist()
		if err != nil || d == nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v := d.Sample(rng); v < 0 {
			t.Errorf("%s sampled %v", name, v)
		}
		if !strings.Contains(d.String(), "") {
			t.Errorf("%s has no description", name)
		}
	}
}
