package des

// Signal is a one-shot broadcast event in virtual time. Processes that Wait
// before Fire are resumed at the instant Fire is called; waits after Fire
// return immediately. The zero value is NOT usable; create with NewSignal.
type Signal struct {
	eng     *Engine
	fired   bool
	waiters []*Proc
}

// NewSignal returns an unfired signal bound to the engine.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire wakes all current waiters at the present virtual instant. Firing an
// already fired signal is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, p := range s.waiters {
		s.eng.schedule(s.eng.now, p.resume)
	}
	s.waiters = nil
}

// Wait blocks the process until the signal fires.
func (p *Proc) Wait(s *Signal) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// remove drops a waiter, reporting whether it was registered. Fire clears
// the waiter list, so a timed-out waiter and a fired signal can never both
// resume the same process.
func (s *Signal) remove(p *Proc) bool {
	for i, cand := range s.waiters {
		if cand == p {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// WaitTimeout blocks until the signal fires or d elapses, reporting true
// when the signal fired. A signal that fires at exactly the deadline wins
// or loses by event order; either way the process resumes exactly once.
func (p *Proc) WaitTimeout(s *Signal, d Time) bool {
	if s.fired {
		return true
	}
	timedOut := false
	timer := p.eng.After(d, func() {
		if !s.remove(p) {
			return // the signal fired first at this same instant
		}
		timedOut = true
		p.eng.schedule(p.eng.now, p.resume)
	})
	s.waiters = append(s.waiters, p)
	p.park()
	if timedOut {
		return false
	}
	timer.Cancel()
	return true
}

// Resource is a counted resource (semaphore) with a FIFO wait queue, used to
// model contended servers such as a front-end fleet or a cluster scheduler.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	queue    []*Proc

	// Metrics.
	totalAcquires uint64
	maxQueue      int
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(e *Engine, capacity int) *Resource {
	if capacity < 1 {
		panic("des: resource capacity must be >= 1")
	}
	return &Resource{eng: e, capacity: capacity}
}

// Acquire obtains one unit of the resource, blocking in FIFO order while the
// resource is exhausted.
func (p *Proc) Acquire(r *Resource) {
	r.totalAcquires++
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	r.queue = append(r.queue, p)
	if len(r.queue) > r.maxQueue {
		r.maxQueue = len(r.queue)
	}
	p.park()
	// Ownership was transferred by Release; inUse already accounts for us.
}

// Release returns one unit. If processes are queued, ownership passes
// directly to the oldest waiter, which is resumed at the current instant.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("des: release of idle resource")
	}
	if len(r.queue) > 0 {
		next := r.queue[0]
		copy(r.queue, r.queue[1:])
		r.queue = r.queue[:len(r.queue)-1]
		r.eng.schedule(r.eng.now, next.resume)
		return // inUse unchanged: unit transferred
	}
	r.inUse--
}

// InUse reports the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of processes waiting.
func (r *Resource) QueueLen() int { return len(r.queue) }

// MaxQueueLen reports the high-water mark of the wait queue.
func (r *Resource) MaxQueueLen() int { return r.maxQueue }

// TotalAcquires reports the number of Acquire calls so far.
func (r *Resource) TotalAcquires() uint64 { return r.totalAcquires }

// Queue is an unbounded FIFO queue of items with blocking receive, used to
// model request buffers in virtual time.
type Queue[T any] struct {
	eng     *Engine
	items   []T
	waiters []*Proc
	maxLen  int
}

// NewQueue returns an empty queue bound to the engine.
func NewQueue[T any](e *Engine) *Queue[T] { return &Queue[T]{eng: e} }

// Put appends an item and wakes the oldest waiting receiver, if any.
func (q *Queue[T]) Put(item T) {
	q.items = append(q.items, item)
	if len(q.items) > q.maxLen {
		q.maxLen = len(q.items)
	}
	if len(q.waiters) > 0 {
		next := q.waiters[0]
		copy(q.waiters, q.waiters[1:])
		q.waiters = q.waiters[:len(q.waiters)-1]
		q.eng.schedule(q.eng.now, next.resume)
	}
}

// Get removes and returns the oldest item, blocking while the queue is empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.park()
	}
	item := q.items[0]
	copy(q.items, q.items[1:])
	var zero T
	q.items[len(q.items)-1] = zero
	q.items = q.items[:len(q.items)-1]
	return item
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	item := q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = zero
	q.items = q.items[:len(q.items)-1]
	return item, true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// MaxLen reports the queue's high-water mark.
func (q *Queue[T]) MaxLen() int { return q.maxLen }
