// Package azuretrace synthesizes and analyzes a trace of per-function
// execution-time distributions in the style of the public Azure Functions
// trace (Shahrad et al., ATC'20) that the paper's §VII-B analyzes.
//
// The real trace records, for every function, percentiles of its execution
// time (excluding cold starts). The paper computes each function's
// tail-to-median ratio (TMR) from the 99th percentile and median and
// reports (Fig. 10):
//
//   - ~70% of all functions have TMR < 10;
//   - ~60% of functions running under a second have TMR < 10;
//   - ~90% of functions running over ten seconds have TMR < 10;
//   - ~50% of functions run for about 1 second on average, and >70% run
//     for less than 10 seconds (§VI-C1).
//
// The generator here is calibrated to those published statistics, which is
// exactly the information Fig. 10 visualizes.
package azuretrace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/stellar-repro/stellar/internal/stats"
)

// Record is one function's execution-time distribution, as percentiles.
type Record struct {
	// Function is a synthetic identifier.
	Function string
	// Percentiles maps percentile (e.g., 50, 99) to execution time.
	Percentiles map[int]time.Duration
}

// Median returns the 50th percentile.
func (r Record) Median() time.Duration { return r.Percentiles[50] }

// P99 returns the 99th percentile.
func (r Record) P99() time.Duration { return r.Percentiles[99] }

// TMR returns the tail-to-median ratio. Functions with a zero median
// return +Inf.
func (r Record) TMR() float64 {
	m := r.Median()
	if m <= 0 {
		return math.Inf(1)
	}
	return float64(r.P99()) / float64(m)
}

// DurationClass buckets functions by their median execution time, matching
// the paper's short/long split.
type DurationClass string

// Duration classes used in Fig. 10's discussion.
const (
	ClassAll      DurationClass = "all"
	ClassSubSec   DurationClass = "<1s"
	ClassMidRange DurationClass = "1s-10s"
	ClassLong     DurationClass = ">10s"
)

// Class returns the record's duration class.
func (r Record) Class() DurationClass {
	switch m := r.Median(); {
	case m < time.Second:
		return ClassSubSec
	case m <= 10*time.Second:
		return ClassMidRange
	default:
		return ClassLong
	}
}

// classParams hold the synthesis parameters for one duration class: the
// share of functions and the log-normal of the TMR distribution, tuned so
// P(TMR < 10) matches the paper's numbers.
type classParams struct {
	share     float64
	medianLo  time.Duration
	medianHi  time.Duration
	tmrMedian float64
	tmrSigma  float64
}

// Synthesis parameters. Sub-second functions make up half the population
// (the trace's median function runs ~1s) and have the most variable
// execution; long functions are the steadiest.
var classes = map[DurationClass]classParams{
	// P(TMR<10) = Phi(ln(10/6)/2.02) ~ 0.60
	ClassSubSec: {share: 0.50, medianLo: 5 * time.Millisecond, medianHi: time.Second,
		tmrMedian: 6, tmrSigma: 2.02},
	// P(TMR<10) = Phi(ln(10/4)/1.21) ~ 0.78
	ClassMidRange: {share: 0.28, medianLo: time.Second, medianHi: 10 * time.Second,
		tmrMedian: 4, tmrSigma: 1.21},
	// P(TMR<10) = Phi(ln(10/3)/0.94) ~ 0.90
	ClassLong: {share: 0.22, medianLo: 10 * time.Second, medianHi: 10 * time.Minute,
		tmrMedian: 3, tmrSigma: 0.94},
}

// Generate synthesizes a trace of n functions using rng.
func Generate(n int, rng *rand.Rand) []Record {
	records := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		class := pickClass(rng)
		p := classes[class]
		median := logUniform(rng, p.medianLo, p.medianHi)
		tmr := math.Exp(math.Log(p.tmrMedian) + p.tmrSigma*rng.NormFloat64())
		if tmr < 1 {
			tmr = 1 + (1-tmr)*0.1 // TMR is >= 1 by definition
		}
		records = append(records, makeRecord(fmt.Sprintf("func-%05d", i), median, tmr, rng))
	}
	return records
}

// pickClass samples a duration class by share.
func pickClass(rng *rand.Rand) DurationClass {
	x := rng.Float64()
	for _, class := range []DurationClass{ClassSubSec, ClassMidRange, ClassLong} {
		p := classes[class].share
		if x < p {
			return class
		}
		x -= p
	}
	return ClassLong
}

// logUniform samples log-uniformly over [lo, hi).
func logUniform(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	lnLo, lnHi := math.Log(float64(lo)), math.Log(float64(hi))
	return time.Duration(math.Exp(lnLo + rng.Float64()*(lnHi-lnLo)))
}

// makeRecord builds a percentile set consistent with the median and TMR:
// intermediate percentiles interpolate log-linearly between median and p99.
func makeRecord(name string, median time.Duration, tmr float64, rng *rand.Rand) Record {
	p99 := time.Duration(float64(median) * tmr)
	interp := func(z float64) time.Duration {
		// z in [0,1] position between median (z=0) and p99 (z=1) in
		// log space.
		return time.Duration(math.Exp(math.Log(float64(median)) + z*math.Log(tmr)))
	}
	lowSpread := 0.5 + 0.4*rng.Float64() // p25 relative to median
	return Record{
		Function: name,
		Percentiles: map[int]time.Duration{
			25: time.Duration(float64(median) * lowSpread),
			50: median,
			75: interp(0.35),
			95: interp(0.8),
			99: p99,
		},
	}
}

// TMRSample collects the TMRs of records in the given class into a sample
// usable for CDF plotting. TMRs are stored as durations at nanosecond
// scale (TMR 10 -> 10ns) purely to reuse the stats machinery; callers
// should interpret the axis as a dimensionless ratio.
func TMRSample(records []Record, class DurationClass) *stats.Sample {
	s := stats.NewSample(len(records))
	for _, r := range records {
		if class != ClassAll && r.Class() != class {
			continue
		}
		s.Add(time.Duration(r.TMR() * 1000)) // milli-TMR resolution
	}
	return s
}

// FracBelowTMR reports the fraction of class functions with TMR < limit.
func FracBelowTMR(records []Record, class DurationClass, limit float64) float64 {
	count, total := 0, 0
	for _, r := range records {
		if class != ClassAll && r.Class() != class {
			continue
		}
		total++
		if r.TMR() < limit {
			count++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(count) / float64(total)
}

// ClassShare reports the fraction of functions in the class.
func ClassShare(records []Record, class DurationClass) float64 {
	if len(records) == 0 {
		return 0
	}
	count := 0
	for _, r := range records {
		if r.Class() == class {
			count++
		}
	}
	return float64(count) / float64(len(records))
}
