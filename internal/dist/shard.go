package dist

// Splittable shard streams: a root seed plus a shard index yields an
// independent deterministic stream family, so a parallel experiment harness
// can hand every shard (replica, series, suite entry) its own RNG universe
// and produce byte-identical results regardless of worker count or shard
// completion order.
//
// The derivation is SplitMix64 (Steele, Lea, Flood: "Fast Splittable
// Pseudorandom Number Generators", OOPSLA'14) — the same finalizer Java's
// SplittableRandom and xoshiro seeding use. Its output function is a
// bijective avalanche mix, so distinct (seed, shard) pairs map to distinct
// stream seeds and neighboring shard indices land in unrelated regions of
// the seed space.

// splitmix64 advances the SplitMix64 state x by the golden-gamma increment
// and returns the mixed output.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardSeed derives the root seed for shard index shard of seed. The two
// mixing rounds keep (seed, shard) pairs that differ in either argument
// from colliding in practice, and ShardSeed(s, i) never equals s itself for
// small i, so shard streams are also independent from the root's own
// component streams.
func ShardSeed(seed int64, shard int) int64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h + uint64(int64(shard)))
	return int64(h)
}

// Shard returns a stream factory for the i-th shard of the root seed,
// independent of every other shard index and of the root factory itself.
func (s *Streams) Shard(i int) *Streams {
	return NewStreams(ShardSeed(s.seed, i))
}
