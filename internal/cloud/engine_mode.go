package cloud

import "fmt"

// EngineMode selects how InvokeAsync executes external invocations on the
// DES engine. The two forms are observationally equivalent — the
// differential suite in internal/experiments proves byte-identical outputs
// — so the knob exists to keep both forms runnable and comparable forever.
type EngineMode int

const (
	// EngineAuto (the zero value) uses the callback fast path for
	// eligible warm-path requests and goroutine procs for everything
	// else (chains, faults, tracing). This is the default everywhere.
	EngineAuto EngineMode = iota
	// EngineProc forces every invocation onto the goroutine proc path,
	// reproducing the pre-callback engine exactly.
	EngineProc
	// EngineCallback is EngineAuto under its explicit name: requests that
	// qualify for the callback form take it, the rest fall back to procs.
	// Selecting it documents intent in differential tests and CLI runs.
	EngineCallback
)

// String renders the mode as its CLI spelling.
func (m EngineMode) String() string {
	switch m {
	case EngineProc:
		return "proc"
	case EngineCallback:
		return "callback"
	default:
		return "auto"
	}
}

// ParseEngineMode parses a -engine flag value.
func ParseEngineMode(s string) (EngineMode, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "proc":
		return EngineProc, nil
	case "callback":
		return EngineCallback, nil
	}
	return EngineAuto, fmt.Errorf("cloud: unknown engine mode %q (want proc, callback, or auto)", s)
}

// SetEngineMode selects the execution form for subsequent InvokeAsync
// calls. Safe to change between runs on the same cloud.
func (c *Cloud) SetEngineMode(m EngineMode) { c.mode = m }

// Mode reports the cloud's current execution form.
func (c *Cloud) Mode() EngineMode { return c.mode }
