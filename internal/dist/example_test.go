package dist_test

import (
	"fmt"
	"time"

	"github.com/stellar-repro/stellar/internal/dist"
)

func ExampleLogNormalMedTail() {
	// Parameterize directly by the quantiles a paper reports.
	d := dist.LogNormalMedTail(18*time.Millisecond, 74*time.Millisecond)
	fmt.Printf("median=%v p99=%v\n",
		d.Median().Round(time.Millisecond), d.P99().Round(time.Millisecond))
	// Output: median=18ms p99=74ms
}

func ExampleNewMixture() {
	// A cost-optimized store: fast most of the time, rare multi-second
	// stragglers — the shape behind the paper's storage-transfer tails.
	m := dist.NewMixture(
		dist.Component{Weight: 0.97, D: dist.Constant(35 * time.Millisecond)},
		dist.Component{Weight: 0.03, D: dist.Constant(2 * time.Second)},
	)
	rng := dist.NewStreams(1).Stream("example")
	slow := 0
	for i := 0; i < 10000; i++ {
		if m.Sample(rng) == 2*time.Second {
			slow++
		}
	}
	fmt.Printf("stragglers: ~%d%%\n", (slow+50)/100)
	// Output: stragglers: ~3%
}
