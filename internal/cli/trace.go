package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/stellar-repro/stellar/internal/experiments"
	"github.com/stellar-repro/stellar/internal/providers"
	"github.com/stellar-repro/stellar/internal/results"
	"github.com/stellar-repro/stellar/internal/trace"
)

// cmdTrace runs a traced series against one simulated provider: sampled
// requests are recorded as per-stage span traces with virtual timestamps,
// exported as Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing) and summarized as a per-stage tail-attribution report.
func cmdTrace(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	fs.SetOutput(stdout)
	prof := addProfileFlags(fs)
	provider := fs.String("provider", "aws", "provider profile")
	providerFile := fs.String("provider-file", "", "JSON provider profile to load and use")
	invocations := fs.Uint64("n", 10_000, "total invocations across all shards")
	shards := fs.Int("shards", 8, "independent simulation shards")
	workers := fs.Int("workers", 0, "concurrent shards (0 = all CPUs, 1 = serial)")
	iat := fs.Duration("iat", 100*time.Millisecond, "inter-arrival time between bursts within a shard")
	burst := fs.Int("burst", 1, "requests per arrival step")
	exec := fs.Duration("exec", 0, "function busy-spin time")
	sample := fs.Float64("sample", 0.01, "head-sampling rate in [0,1]")
	slowest := fs.Int("slowest", 64, "always retain the K slowest requests per shard (0 = off)")
	ring := fs.Int("ring", 0, "per-shard trace ring capacity (0 = default 8192)")
	engine := addEngineFlag(fs)
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "write retained traces as Chrome trace_event JSON")
	attrib := fs.Bool("attrib", true, "print the per-stage tail-attribution report")
	savePath := fs.String("save", "", "save the run (latencies + traces) as a results file")
	name := fs.String("name", "trace", "run name used in saved results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	if *providerFile != "" {
		loaded, err := providers.RegisterFile(*providerFile)
		if err != nil {
			return err
		}
		*provider = loaded
	}
	mode, err := engine.mode()
	if err != nil {
		return err
	}

	res, err := experiments.RunTrace(experiments.TraceOptions{
		Provider:    *provider,
		Invocations: *invocations,
		Shards:      *shards,
		Workers:     *workers,
		Seed:        *seed,
		IAT:         *iat,
		Burst:       *burst,
		ExecTime:    *exec,
		Trace: trace.Config{
			SampleRate:   *sample,
			SlowestK:     *slowest,
			RingCapacity: *ring,
		},
		Engine: mode,
	})
	if err != nil {
		return err
	}
	if *attrib {
		experiments.WriteTraceReport(stdout, res)
	} else {
		fmt.Fprintf(stdout, "trace series: provider=%s invocations=%d traces=%d dropped=%d\n",
			res.Provider, res.Invocations, len(res.Traces), res.Dropped)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := trace.WriteTraceEvents(f, res.Traces); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d traces to %s (load in Perfetto or chrome://tracing)\n",
			len(res.Traces), *out)
	}
	if *savePath != "" {
		rec := results.FromTraceRun(*name, res.Latencies, res.Traces, int(res.Colds), int(res.Errors))
		if err := rec.Save(*savePath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "run saved to %s\n", *savePath)
	}
	return nil
}
