package stats

import (
	"testing"
	"time"
)

func loadSample(n int) *Sample {
	s := NewSample(n)
	for i := 0; i < n; i++ {
		// Deterministic skewed-ish spread; values don't matter, only that
		// they are unsorted on arrival.
		s.Add(time.Duration((i*2654435761)%1000) * time.Millisecond)
	}
	return s
}

// TestAllocFreePercentiles pins the satellite contract: once a sample is
// sorted, every subsequent percentile/summary query runs without
// allocating. slices.Sort (unlike sort.Slice) also keeps the sort itself
// closure-free, so the only cost after load is the in-place sort.
func TestAllocFreePercentiles(t *testing.T) {
	s := loadSample(10_000)
	s.Percentile(50) // first query pays the one-time sort
	query := func() {
		s.Percentile(50)
		s.Percentile(95)
		s.Percentile(99)
		s.Min()
		s.Max()
		s.TMR()
	}
	if avg := testing.AllocsPerRun(100, query); avg != 0 {
		t.Fatalf("percentile path allocates %.1f allocs per query batch after first sort, want 0", avg)
	}
}

// TestAddAllSingleGrowth pins the pre-grow in AddAll: bulk-loading into an
// empty sample must allocate the backing array once, not O(log n) times
// through append doubling.
func TestAddAllSingleGrowth(t *testing.T) {
	vs := make([]time.Duration, 100_000)
	for i := range vs {
		vs[i] = time.Duration(i)
	}
	avg := testing.AllocsPerRun(10, func() {
		s := &Sample{}
		s.AddAll(vs)
	})
	// One allocation for the grown backing array; the Sample itself is
	// stack-allocated under AllocsPerRun's closure.
	if avg > 2 {
		t.Fatalf("AddAll of 100k values allocates %.1f times, want single pre-grown backing array", avg)
	}
}

// BenchmarkPercentileAfterSort measures the steady-state percentile query —
// the per-figure cost when experiment analysis re-reads the same sample for
// median, p95, p99, and TMR.
func BenchmarkPercentileAfterSort(b *testing.B) {
	s := loadSample(100_000)
	s.Percentile(50) // pre-sort
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Percentile(99)
	}
}

// BenchmarkSampleSort measures the one-time sort cost for a large run.
func BenchmarkSampleSort(b *testing.B) {
	base := loadSample(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := &Sample{}
		s.AddAll(base.values)
		b.StartTimer()
		s.Percentile(99)
	}
}

// BenchmarkSummarize measures the full Summary computation on a pre-sorted
// sample (the experiment hot path after collection ends).
func BenchmarkSummarize(b *testing.B) {
	s := loadSample(100_000)
	s.Summarize() // pre-sort
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Summarize()
	}
}
