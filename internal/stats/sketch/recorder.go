package sketch

import (
	"time"

	"github.com/stellar-repro/stellar/internal/stats"
)

// Recorder is the seam between measurement producers (the simulated cloud,
// the STeLLAR client, the scale driver) and statistics consumers (reports,
// plots, serialized results). Two implementations exist:
//
//   - *stats.Sample — exact: retains every observation, O(n) memory.
//     The default for paper figures, bootstrap CIs, and Mann-Whitney
//     tests, all of which need raw values.
//   - *Sketch — bounded: fixed-memory mergeable quantile summary for
//     sustained large-n runs where retaining observations is the last
//     O(n) path.
//
// Both report quantiles with the same closest-rank convention, so report
// code is agnostic to which one fed it.
type Recorder interface {
	// Add records one observation.
	Add(v time.Duration)
	// AddN records n copies of an observation.
	AddN(v time.Duration, n uint64)
	// Count reports the number of recorded observations.
	Count() uint64
	// Quantile returns the q-th quantile, 0 <= q <= 1. It panics on an
	// empty recorder.
	Quantile(q float64) time.Duration
	// CDF returns the cumulative distribution (exact point set or bucket
	// representatives).
	CDF() []stats.CDFPoint
	// Summarize computes the headline metrics.
	Summarize() stats.Summary
}

var (
	_ Recorder = (*Sketch)(nil)
	_ Recorder = (*stats.Sample)(nil)
)

// Quantiles evaluates a quantile ladder in one call — the shape every
// report table needs. It returns an empty slice for an empty recorder
// instead of panicking, so callers can render "no data" rows.
func Quantiles(r Recorder, qs ...float64) []time.Duration {
	if r.Count() == 0 {
		return nil
	}
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		out[i] = r.Quantile(q)
	}
	return out
}
