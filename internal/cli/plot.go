package cli

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/stellar-repro/stellar/internal/plot"
	"github.com/stellar-repro/stellar/internal/stats"
)

// PlotMain dispatches the stellar-plot CLI: it renders CSV measurement
// files (label,value_ns,frac) as terminal CDF charts.
func PlotMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stellar-plot", flag.ContinueOnError)
	fs.SetOutput(stderr)
	width := fs.Int("width", 72, "chart width in characters")
	height := fs.Int("height", 18, "chart height in rows")
	title := fs.String("title", "latency CDF", "chart title")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "stellar-plot: need at least one CSV file")
		return 2
	}
	var series []plot.Series
	for _, path := range fs.Args() {
		loaded, err := loadCSV(path)
		if err != nil {
			fmt.Fprintln(stderr, "stellar-plot:", err)
			return 1
		}
		series = append(series, loaded...)
	}
	if err := plot.CDF(stdout, *title, series, *width, *height); err != nil {
		fmt.Fprintln(stderr, "stellar-plot:", err)
		return 1
	}
	return 0
}

// loadCSV parses a label,value_ns,frac file back into per-label samples.
// The frac column is ignored: the empirical CDF is reconstructed from the
// raw values, which is exact because plot.CSV writes every distinct value.
func loadCSV(path string) ([]plot.Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	byLabel := map[string]*stats.Sample{}
	var order []string
	scanner := bufio.NewScanner(f)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || (lineNo == 1 && strings.HasPrefix(line, "label,")) {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) < 2 {
			return nil, fmt.Errorf("%s:%d: malformed row %q", path, lineNo, line)
		}
		ns, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad value %q", path, lineNo, parts[1])
		}
		label := parts[0]
		s, ok := byLabel[label]
		if !ok {
			s = stats.NewSample(0)
			byLabel[label] = s
			order = append(order, label)
		}
		s.Add(time.Duration(ns))
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	series := make([]plot.Series, 0, len(order))
	for _, label := range order {
		series = append(series, plot.Series{Label: label, Sample: byLabel[label]})
	}
	if len(series) == 0 {
		return nil, fmt.Errorf("%s: no data rows", path)
	}
	return series, nil
}
