package plot

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/stellar-repro/stellar/internal/stats"
)

// Timeline renders windowed run statistics as a table with a median bar per
// window — the quickest way to see warm-up transients and scale-out
// convergence (e.g., Azure's per-burst medians shrinking as its scale
// controller adds instances).
func Timeline(w io.Writer, title string, windows []stats.WindowSummary) error {
	if len(windows) == 0 {
		return fmt.Errorf("plot: timeline has no windows")
	}
	var maxMedian time.Duration
	for _, win := range windows {
		if win.Stats.Median > maxMedian {
			maxMedian = win.Stats.Median
		}
	}
	if maxMedian <= 0 {
		maxMedian = 1
	}
	const barWidth = 40
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s %6s %10s %10s  %s\n", "window", "n", "median", "p99", "median bar")
	for _, win := range windows {
		bar := int(float64(win.Stats.Median) / float64(maxMedian) * barWidth)
		if bar < 1 {
			bar = 1
		}
		fmt.Fprintf(w, "%-12s %6d %10v %10v  %s\n",
			win.Start.Round(time.Millisecond),
			win.Stats.Count,
			win.Stats.Median.Round(time.Millisecond),
			win.Stats.P99.Round(time.Millisecond),
			strings.Repeat("#", bar))
	}
	return nil
}
