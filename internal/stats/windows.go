package stats

import (
	"slices"
	"time"
)

// TimedSample pairs an observation with its schedule offset, enabling
// latency-over-time analysis (warm-up transients, scale-out convergence).
type TimedSample struct {
	At      time.Duration
	Latency time.Duration
}

// WindowSummary summarizes one time window of a run.
type WindowSummary struct {
	// Start is the window's offset from run start.
	Start time.Duration
	// Stats summarizes the window's observations.
	Stats Summary
}

// Windows buckets timed samples into fixed-width windows and summarizes
// each non-empty window, in time order. It panics on a non-positive width.
func Windows(samples []TimedSample, width time.Duration) []WindowSummary {
	if width <= 0 {
		panic("stats: window width must be positive")
	}
	buckets := make(map[int64]*Sample)
	for _, ts := range samples {
		idx := int64(ts.At / width)
		b, ok := buckets[idx]
		if !ok {
			b = NewSample(0)
			buckets[idx] = b
		}
		b.Add(ts.Latency)
	}
	idxs := make([]int64, 0, len(buckets))
	for idx := range buckets {
		idxs = append(idxs, idx)
	}
	slices.Sort(idxs)
	out := make([]WindowSummary, 0, len(idxs))
	for _, idx := range idxs {
		out = append(out, WindowSummary{
			Start: time.Duration(idx) * width,
			Stats: buckets[idx].Summarize(),
		})
	}
	return out
}
