package core_test

import (
	"fmt"
	"time"

	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/experiments"
)

// Example_endToEnd shows the complete STeLLAR flow against a simulated
// provider: deploy from a static configuration, drive load from a runtime
// configuration, and read the aggregated results.
func Example_endToEnd() {
	env, err := experiments.NewEnv("aws", 1)
	if err != nil {
		panic(err)
	}
	defer env.Close()

	eps, err := env.Deployer().Deploy(&core.StaticConfig{
		Provider: "aws",
		Functions: []core.FunctionConfig{
			{Name: "hello", Runtime: "python3", Method: "zip"},
		},
	})
	if err != nil {
		panic(err)
	}

	res, err := env.Client().Run(eps.Endpoints, core.RuntimeConfig{
		Samples:       100,
		IAT:           core.Duration(3 * time.Second),
		WarmupDiscard: 1, // drop the first (cold) invocation
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("measured %d warm invocations, %d cold, %d errors\n",
		res.Latencies.Len(), res.Colds, res.Errors)
	fmt.Printf("breakdown components sum to the latency: %v\n",
		res.Samples[0].Breakdown.Total() == res.Samples[0].Latency)
	// Output:
	// measured 100 warm invocations, 0 cold, 0 errors
	// breakdown components sum to the latency: true
}
