// Quickstart: deploy a function to the simulated AWS profile with STeLLAR's
// deployer, drive warm and cold invocations with the STeLLAR client, and
// plot both latency CDFs — the smallest end-to-end use of the framework.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/experiments"
	"github.com/stellar-repro/stellar/internal/plot"
)

func main() {
	// One isolated simulated cloud using the calibrated AWS profile.
	env, err := experiments.NewEnv("aws", 42)
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	// Static function configuration: one Python ZIP function plus 20
	// replicas for the cold study (replicas parallelize cold starts, §IV).
	endpoints, err := env.Deployer().Deploy(&core.StaticConfig{
		Provider: "aws",
		Functions: []core.FunctionConfig{
			{Name: "hello", Runtime: "python3", Method: "zip"},
			{Name: "hello-cold", Runtime: "python3", Method: "zip", Replicas: 20},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	warmEps := endpoints.Endpoints[:1]
	coldEps := endpoints.Endpoints[1:]

	// Warm study: short 3-second IAT keeps one instance alive.
	warm, err := env.Client().Run(warmEps, core.RuntimeConfig{
		Samples:       500,
		IAT:           core.Duration(3 * time.Second),
		WarmupDiscard: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Cold study: each replica is hit every 10.5 minutes, past AWS's
	// 10-minute keep-alive, so every invocation cold-starts.
	cold, err := env.Client().Run(coldEps, core.RuntimeConfig{
		Samples: 500,
		IAT:     core.Duration((10*time.Minute + 30*time.Second) / time.Duration(len(coldEps))),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("warm: %s\n", warm.Summary())
	fmt.Printf("cold: %s (%d cold starts)\n", cold.Summary(), cold.Colds)
	fmt.Printf("cold/warm median ratio: %.1fx (paper: ~10x on AWS)\n\n",
		float64(cold.Latencies.Median())/float64(warm.Latencies.Median()))

	err = plot.CDF(os.Stdout, "warm vs cold invocation latency (sim-AWS)", []plot.Series{
		{Label: "warm (3s IAT)", Sample: warm.Latencies},
		{Label: "cold (10.5min IAT)", Sample: cold.Latencies},
	}, 72, 16)
	if err != nil {
		log.Fatal(err)
	}
}
