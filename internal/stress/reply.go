package stress

import "bytes"

// Reply is the subset of httpfaas.InvokeReply the hot path needs, extracted
// without decoding the full document.
type Reply struct {
	// Status is the HTTP status code.
	Status int
	// Cold reports a cold serve.
	Cold bool
	// SimLatencyNS is the provider-model latency the simulation assigned to
	// this request (virtual time), straight from the response body.
	SimLatencyNS int64
}

var (
	coldKey = []byte(`"cold":`)
	simKey  = []byte(`"sim_latency_ns":`)
)

// parseReply extracts the cold flag and simulated latency from an
// InvokeReply JSON body without allocating: a keyed scan instead of a
// decoder, valid because the server's encoder emits flat, known-shape
// documents (the timestamps object, when present, contains neither key).
// ok is false when either field is missing or malformed.
func parseReply(b []byte, r *Reply) bool {
	i := bytes.Index(b, coldKey)
	if i < 0 {
		return false
	}
	rest := b[i+len(coldKey):]
	switch {
	case bytes.HasPrefix(rest, trueLit):
		r.Cold = true
	case bytes.HasPrefix(rest, falseLit):
		r.Cold = false
	default:
		return false
	}
	i = bytes.Index(b, simKey)
	if i < 0 {
		return false
	}
	n, ok := parseInt(b[i+len(simKey):])
	if !ok {
		return false
	}
	r.SimLatencyNS = n
	return true
}

var (
	trueLit  = []byte("true")
	falseLit = []byte("false")
)

// parseInt reads a leading (optionally negative) decimal integer.
func parseInt(b []byte) (int64, bool) {
	neg := false
	if len(b) > 0 && b[0] == '-' {
		neg = true
		b = b[1:]
	}
	var n int64
	digits := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int64(c-'0')
		digits++
	}
	if digits == 0 {
		return 0, false
	}
	if neg {
		n = -n
	}
	return n, true
}
