package dist

import (
	"strings"
	"testing"
	"time"
)

// String methods appear in logs and reports; ensure they render the
// parameters a reader needs.
func TestStringDescriptions(t *testing.T) {
	cases := []struct {
		d    Dist
		want []string
	}{
		{Constant(5 * time.Millisecond), []string{"const", "5ms"}},
		{Uniform{Min: time.Millisecond, Max: 2 * time.Millisecond}, []string{"uniform", "1ms", "2ms"}},
		{Exponential{Mean: 100 * time.Millisecond}, []string{"exp", "100ms"}},
		{LogNormalMedTail(10*time.Millisecond, 40*time.Millisecond), []string{"lognormal", "med"}},
		{Weibull{Shape: 0.5, Scale: 10 * time.Millisecond}, []string{"weibull", "0.50"}},
		{Pareto{Xm: 5 * time.Millisecond, Alpha: 2}, []string{"pareto", "2.00"}},
		{Shifted{Offset: time.Millisecond, D: Constant(2 * time.Millisecond)}, []string{"1ms", "const"}},
		{Scaled{Factor: 2, D: Constant(time.Millisecond)}, []string{"2.00x"}},
		{Clamped{Min: 0, Max: time.Second, D: Constant(time.Millisecond)}, []string{"clamp", "1s"}},
		{NewMixture(
			Component{Weight: 0.9, D: Constant(time.Millisecond)},
			Component{Weight: 0.1, D: Constant(time.Second)},
		), []string{"mix", "0.900", "0.100"}},
		{Sum{Constant(time.Millisecond), Constant(2 * time.Millisecond)}, []string{"sum", "+"}},
	}
	for _, tc := range cases {
		got := tc.d.String()
		for _, want := range tc.want {
			if !strings.Contains(got, want) {
				t.Errorf("%T.String() = %q, missing %q", tc.d, got, want)
			}
		}
	}
}

func TestStreamsSeed(t *testing.T) {
	if NewStreams(42).Seed() != 42 {
		t.Fatal("Seed() should echo the root seed")
	}
}
