// Package providers defines the three calibrated provider profiles studied
// in the paper — AWS Lambda, Google Cloud Functions, and Azure Functions —
// as cloud.Config instances for the simulator.
//
// Numbers are calibrated so that the experiments in internal/experiments
// land near the values the paper reports (§VI, Table I); the *mechanisms*
// (queueing policies, caches, scale-out limits) come from the paper's
// analysis and from public provider documentation the paper cites.
// EXPERIMENTS.md records paper-vs-measured for every figure and table.
package providers

import (
	"fmt"
	"sort"
	"sync"

	"github.com/stellar-repro/stellar/internal/cloud"
)

// Builder constructs a fresh provider profile.
type Builder func() cloud.Config

// registryMu guards registry: experiment shards call Get concurrently from
// the worker pool, and Register may run from tests or profile loading.
var registryMu sync.RWMutex

var registry = map[string]Builder{
	"aws":    AWS,
	"google": Google,
	"azure":  Azure,
}

// Names lists registered providers in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Get returns a fresh config for the named provider.
func Get(name string) (cloud.Config, error) {
	registryMu.RLock()
	b, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return cloud.Config{}, fmt.Errorf("providers: unknown provider %q (have %v)", name, Names())
	}
	return b(), nil
}

// MustGet is Get for static names.
func MustGet(name string) cloud.Config {
	cfg, err := Get(name)
	if err != nil {
		panic(err)
	}
	return cfg
}

// Register adds a custom provider profile (e.g., ablated variants).
// Registering an existing name replaces it.
func Register(name string, b Builder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = b
}
