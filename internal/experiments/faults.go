package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/faults"
	"github.com/stellar-repro/stellar/internal/providers"
	"github.com/stellar-repro/stellar/internal/runner"
	"github.com/stellar-repro/stellar/internal/stats"
)

// FaultsOptions configures a fault-injection sweep: a failure-rate ×
// retry-policy grid against one provider. Each grid cell runs Shards
// isolated simulations whose seeds depend only on (Seed, shard index), so
// every cell sees the same arrival randomness and the same fault stream —
// cells differ only in what is injected and how the client defends.
type FaultsOptions struct {
	// Provider is the provider profile under test.
	Provider string
	// Invocations is the per-cell request count, split across Shards.
	Invocations uint64
	// Shards is the number of independent simulations per cell (default 4).
	Shards int
	// Workers bounds concurrently running shard simulations (0 = GOMAXPROCS).
	Workers int
	// Seed roots all randomness.
	Seed int64
	// IAT is the inter-arrival time between bursts within one shard
	// (default 100ms); Burst is the requests per arrival (default 1).
	IAT   time.Duration
	Burst int
	// ExecTime is the function busy-spin time.
	ExecTime time.Duration
	// Rates scales the probabilistic failure modes of Modes per cell
	// (default 0, 0.02, 0.05, 0.1). Rate 0 with no throttling runs the
	// injector-free fast path.
	Rates []float64
	// Policies is the client-resilience axis (default: the naive client
	// and a retrying one).
	Policies []faults.Policy
	// Modes is the injector template each rate scales (see
	// faults.Config.Scaled). The zero value defaults to full-strength
	// drops plus half-strength spawn failures.
	Modes faults.Config
	// Engine selects the invocation execution form. The resilient-client
	// sweep always drives invocations from retry/hedge procs, so both
	// settings run the proc pipeline and outputs are byte-identical; the
	// knob exists so differential runs can assert exactly that.
	Engine cloud.EngineMode
}

func (o FaultsOptions) normalized() FaultsOptions {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.IAT <= 0 {
		o.IAT = 100 * time.Millisecond
	}
	if o.Burst <= 0 {
		o.Burst = 1
	}
	if len(o.Rates) == 0 {
		o.Rates = []float64{0, 0.02, 0.05, 0.1}
	}
	if len(o.Policies) == 0 {
		o.Policies = []faults.Policy{
			{},
			{Timeout: 2 * time.Second, MaxRetries: 3,
				BackoffBase: 100 * time.Millisecond, BackoffCap: time.Second, Jitter: true},
		}
	}
	if o.Modes == (faults.Config{}) {
		o.Modes = faults.Config{DropProb: 1, SpawnFailProb: 0.5}
	}
	return o
}

func (o FaultsOptions) validate() error {
	if o.Provider == "" {
		return fmt.Errorf("faults: provider is required")
	}
	if o.Invocations == 0 {
		return fmt.Errorf("faults: need at least one invocation")
	}
	if uint64(o.Shards) > o.Invocations {
		return fmt.Errorf("faults: %d shards for %d invocations", o.Shards, o.Invocations)
	}
	for _, r := range o.Rates {
		if r < 0 || r > 1 || r != r {
			return fmt.Errorf("faults: rate %v out of range [0, 1]", r)
		}
	}
	for i := range o.Policies {
		if err := o.Policies[i].Validate(); err != nil {
			return fmt.Errorf("faults: policy %d: %w", i, err)
		}
	}
	scaled := o.Modes.Scaled(1)
	if err := scaled.Validate(); err != nil {
		return err
	}
	return nil
}

// PolicyLabel renders a policy compactly for reports ("none",
// "r3/t2s/b100ms..1s/jitter", ...).
func PolicyLabel(p faults.Policy) string {
	if p == (faults.Policy{}) {
		return "none"
	}
	var parts []string
	if p.MaxRetries > 0 {
		parts = append(parts, fmt.Sprintf("r%d", p.MaxRetries))
	}
	if p.Timeout > 0 {
		parts = append(parts, "t"+p.Timeout.String())
	}
	if p.BackoffBase > 0 {
		b := "b" + p.BackoffBase.String()
		if p.BackoffCap > 0 {
			b += ".." + p.BackoffCap.String()
		}
		parts = append(parts, b)
	}
	if p.Jitter {
		parts = append(parts, "jitter")
	}
	if p.HedgeAfter > 0 {
		parts = append(parts, "h"+p.HedgeAfter.String())
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "/")
}

// FaultCell is one (rate, policy) grid cell's merged outcome.
type FaultCell struct {
	// Rate is the failure-rate scale applied to the injector template.
	Rate float64 `json:"rate"`
	// Policy labels the client resilience policy.
	Policy string `json:"policy"`
	// Outcome carries the request-level counters.
	Outcome stats.Outcome `json:"outcome"`
	// SuccessRate and GoodputRPS are the cell's headline numbers; goodput
	// divides merged successes by the slowest shard's virtual time.
	SuccessRate float64 `json:"success_rate"`
	GoodputRPS  float64 `json:"goodput_rps"`
	// Injector-side event counters, summed over shards.
	Drops         uint64 `json:"drops"`
	Throttles     uint64 `json:"throttles"`
	SpawnFailures uint64 `json:"spawn_failures"`
	StorageFaults uint64 `json:"storage_faults"`
	// Latency summarizes successful requests' client-observed latencies —
	// backoff and retry time included, which is where injected faults
	// inflate the tail. All-failed cells leave it zero.
	Latency stats.Summary `json:"latency"`
	// VirtualTime is the slowest shard's simulated duration.
	VirtualTime time.Duration `json:"virtual_ns"`
}

// FaultsResult is a full sweep outcome, cells in rate-major order.
type FaultsResult struct {
	Provider    string      `json:"provider"`
	Invocations uint64      `json:"invocations"`
	Shards      int         `json:"shards"`
	Seed        int64       `json:"seed"`
	Cells       []FaultCell `json:"cells"`
}

// faultsShard is one shard simulation's raw outcome.
type faultsShard struct {
	out     stats.Outcome
	lat     *stats.Sample
	metrics cloud.Metrics
	virtual time.Duration
}

// RunFaults executes the failure-rate × retry-policy sweep. Shard seeds
// depend only on (Seed, shard index) and results merge in shard order, so
// the sweep is byte-identical at any Workers setting.
func RunFaults(opts FaultsOptions) (*FaultsResult, error) {
	opts = opts.normalized()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	type cellSpec struct {
		rate   float64
		policy faults.Policy
	}
	var cells []cellSpec
	for _, r := range opts.Rates {
		for _, pol := range opts.Policies {
			cells = append(cells, cellSpec{rate: r, policy: pol})
		}
	}

	units := len(cells) * opts.Shards
	shards, err := runner.Map(runner.Pool{Workers: opts.Workers, Seed: opts.Seed}, units,
		func(sh runner.Shard) (*faultsShard, error) {
			cell := cells[sh.Index/opts.Shards]
			shardIdx := sh.Index % opts.Shards
			return runFaultsShard(opts, cell.rate, cell.policy, shardIdx)
		})
	if err != nil {
		return nil, err
	}

	res := &FaultsResult{
		Provider:    opts.Provider,
		Invocations: opts.Invocations,
		Shards:      opts.Shards,
		Seed:        opts.Seed,
	}
	for ci, cell := range cells {
		merged := FaultCell{Rate: cell.rate, Policy: PolicyLabel(cell.policy)}
		lat := stats.NewSample(int(opts.Invocations))
		for _, sh := range shards[ci*opts.Shards : (ci+1)*opts.Shards] {
			merged.Outcome.Merge(sh.out)
			lat.AddAll(sh.lat.Values())
			merged.Drops += sh.metrics.Drops
			merged.Throttles += sh.metrics.Throttles
			merged.SpawnFailures += sh.metrics.SpawnFailures
			merged.StorageFaults += sh.metrics.StorageFaults
			if sh.virtual > merged.VirtualTime {
				merged.VirtualTime = sh.virtual
			}
		}
		merged.SuccessRate = merged.Outcome.SuccessRate()
		merged.GoodputRPS = merged.Outcome.Goodput(merged.VirtualTime)
		if lat.Len() > 0 {
			merged.Latency = lat.Summarize()
		}
		res.Cells = append(res.Cells, merged)
	}
	return res, nil
}

// runFaultsShard drives one isolated simulation of one grid cell. The
// shard seed ignores the cell index on purpose: every cell replays the
// same arrival and service randomness, isolating the injected failure mode
// as the only difference — which is what makes monotone-degradation
// comparisons across rates meaningful at a fixed seed.
func runFaultsShard(opts FaultsOptions, rate float64, pol faults.Policy, shardIdx int) (*faultsShard, error) {
	cfg, err := providers.Get(opts.Provider)
	if err != nil {
		return nil, err
	}
	scaled := opts.Modes.Scaled(rate)
	if scaled.Enabled() {
		cfg.Inject = &scaled
	} else {
		cfg.Inject = nil
	}

	n := shardInvocations(opts.Invocations, opts.Shards, shardIdx)
	out := &faultsShard{lat: stats.NewSample(int(n))}
	if n == 0 {
		return out, nil
	}

	e, err := newEnvWithConfig(cfg, dist.ShardSeed(opts.Seed, shardIdx))
	if err != nil {
		return nil, fmt.Errorf("faults shard %d: %w", shardIdx, err)
	}
	defer e.close()
	c := e.cloud
	c.SetEngineMode(opts.Engine)
	if err := c.Deploy(cloud.FunctionSpec{
		Name:     "faults",
		Runtime:  cloud.RuntimePython,
		Method:   cloud.DeployZIP,
		ExecTime: opts.ExecTime,
	}); err != nil {
		return nil, fmt.Errorf("faults shard %d: %w", shardIdx, err)
	}

	// The client stream drives jitter; latency comes from Policy.Do, not
	// the cloud's Recorder seam, because the resilient client's latency
	// includes backoff and failed attempts the seam never sees.
	rng := e.client.RNG
	req := &cloud.Request{Fn: "faults"}
	invoke := func(p *des.Proc) {
		r := pol.Do(p, rng, func(ap *des.Proc) error {
			_, err := c.Invoke(ap, req)
			return err
		})
		out.out.Issued++
		out.out.Retries += uint64(r.Retries)
		out.out.Hedges += uint64(r.Hedges)
		if r.Err == nil {
			out.out.Succeeded++
			out.lat.Add(r.Latency)
		}
	}
	eng := e.eng
	eng.Spawn("faults/arrivals", func(p *des.Proc) {
		remaining := n
		for remaining > 0 {
			burst := uint64(opts.Burst)
			if burst > remaining {
				burst = remaining
			}
			for j := uint64(0); j < burst; j++ {
				eng.Spawn("faults/req", invoke)
			}
			remaining -= burst
			if remaining > 0 {
				p.Sleep(opts.IAT)
			}
		}
	})
	eng.Run(0)

	out.metrics = c.Metrics()
	out.virtual = eng.Now()
	if out.out.Issued != n || out.out.Succeeded+out.out.Failed() != n {
		return nil, fmt.Errorf("faults shard %d: conservation violated: issued=%d succeeded=%d of %d",
			shardIdx, out.out.Issued, out.out.Succeeded, n)
	}
	return out, nil
}

// WriteFaultsReport renders the sweep as a table.
func WriteFaultsReport(w io.Writer, res *FaultsResult) {
	fmt.Fprintf(w, "fault sweep: provider=%s invocations=%d/cell shards=%d seed=%d\n",
		res.Provider, res.Invocations, res.Shards, res.Seed)
	fmt.Fprintf(w, "%-6s %-28s %8s %8s %8s %8s %9s %9s %10s %10s\n",
		"rate", "policy", "ok", "failed", "retries", "drops", "success", "goodput", "p50", "p99")
	for _, cell := range res.Cells {
		fmt.Fprintf(w, "%-6g %-28s %8d %8d %8d %8d %8.2f%% %9.2f %10v %10v\n",
			cell.Rate, cell.Policy, cell.Outcome.Succeeded, cell.Outcome.Failed(),
			cell.Outcome.Retries, cell.Drops, cell.SuccessRate*100, cell.GoodputRPS,
			cell.Latency.Median.Round(time.Millisecond), cell.Latency.P99.Round(time.Millisecond))
	}
}

// WriteFaultsJSON writes the sweep as indented JSON.
func WriteFaultsJSON(w io.Writer, res *FaultsResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// WriteFaultsCSV writes one row per grid cell.
func WriteFaultsCSV(w io.Writer, res *FaultsResult) error {
	if _, err := fmt.Fprintln(w, "rate,policy,issued,succeeded,failed,retries,hedges,drops,throttles,spawn_failures,storage_faults,success_rate,goodput_rps,median_ms,p95_ms,p99_ms"); err != nil {
		return err
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, c := range res.Cells {
		if _, err := fmt.Fprintf(w, "%g,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%.4f,%.3f,%.3f,%.3f\n",
			c.Rate, c.Policy, c.Outcome.Issued, c.Outcome.Succeeded, c.Outcome.Failed(),
			c.Outcome.Retries, c.Outcome.Hedges, c.Drops, c.Throttles, c.SpawnFailures,
			c.StorageFaults, c.SuccessRate, c.GoodputRPS,
			ms(c.Latency.Median), ms(c.Latency.P95), ms(c.Latency.P99)); err != nil {
			return err
		}
	}
	return nil
}
