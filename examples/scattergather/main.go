// Scattergather: a map-reduce-style serverless composition — a coordinator
// function fans a payload out to N parallel workers and waits for all of
// them before returning. The example sweeps the fan-out width on the
// simulated AWS and Google profiles and shows how the stragglers' tail,
// not the median worker, sets the end-to-end completion time: the wider
// the fan-out, the deeper into each provider's per-invocation tail the
// slowest worker reaches.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/experiments"
	"github.com/stellar-repro/stellar/internal/plot"
)

func main() {
	widths := []int{1, 2, 4, 8, 16, 32}
	providers := []string{"aws", "google"}

	fmt.Println("scatter-gather completion time vs fan-out width (warm instances,")
	fmt.Println("100ms busy work per function, 64KB payload per worker)")
	fmt.Println()
	var sweeps []plot.XYSeries
	for _, prov := range providers {
		series := plot.XYSeries{Label: prov}
		for _, width := range widths {
			res := runScatter(prov, width)
			sum := res.Summary()
			series.Points = append(series.Points, plot.XYPoint{
				X: float64(width), Median: sum.Median, P99: sum.P99,
			})
			fmt.Printf("%-7s fanout=%-3d median=%8v p99=%8v tmr=%4.1f\n",
				prov, width, sum.Median.Round(time.Millisecond),
				sum.P99.Round(time.Millisecond), sum.TMR)
		}
		sweeps = append(sweeps, series)
	}
	fmt.Println()
	if err := plot.Sweep(os.Stdout, "end-to-end latency vs fan-out width", "fanout", sweeps); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("the gather step waits for the slowest of N workers: at width 32 the")
	fmt.Println("coordinator effectively samples each provider's per-invocation p97+")
	fmt.Println("on every request — tail latency becomes the common case (the")
	fmt.Println("tail-at-scale effect the paper's motivation cites via Dean & Barroso).")
}

// runScatter measures one provider at one fan-out width on a fresh cloud.
func runScatter(provider string, width int) *core.RunResult {
	env, err := experiments.NewEnv(provider, 21)
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	eps, err := env.Deployer().Deploy(&core.StaticConfig{
		Provider: provider,
		Functions: []core.FunctionConfig{{
			Name: "coordinator", Runtime: "go1.x", Method: "zip",
			ExecTime: core.Duration(100 * time.Millisecond),
			Chain: &core.ChainConfig{
				Length: 2, Transfer: "inline", PayloadBytes: 64 << 10, Fanout: width,
			},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := env.Client().Run(eps.Endpoints, core.RuntimeConfig{
		Samples:       300,
		IAT:           core.Duration(3 * time.Second),
		WarmupDiscard: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
