package stress

import (
	"testing"
	"time"
)

// BenchmarkStressClient is the benchgate-gated client hot path: one raw
// request/response round trip over a live TCP connection against an
// alloc-free canned server. The allocs/op column is held to <= 2 by the
// benchgate alloc budget (and is 0 in steady state).
func BenchmarkStressClient(b *testing.B) {
	srv := newCannedServerB(b, cannedBody(false, 4242))
	target, err := NewTarget(srv.url(), "")
	if err != nil {
		b.Fatal(err)
	}
	c := newRawClient(target, 5*time.Second)
	defer c.Close()

	var r Reply
	for i := 0; i < 16; i++ {
		if err := c.Do(&r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Do(&r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStressScheduleNext measures the arrival generator (Poisson mode,
// the most expensive family).
func BenchmarkStressScheduleNext(b *testing.B) {
	p, err := newPlan(Options{Arrival: ArrivalPoisson, Rate: 1e6, Duration: 24 * time.Hour, Workers: 4, Seed: 1}.withDefaults())
	if err != nil {
		b.Fatal(err)
	}
	s := p.workerSchedule(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.next(); !ok {
			b.Fatal("schedule exhausted")
		}
	}
}

// newCannedServerB is the benchmark-flavored twin of newCannedServer.
func newCannedServerB(b *testing.B, body []byte) *cannedServer {
	b.Helper()
	s, err := startCanned(body)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.close)
	return s
}
