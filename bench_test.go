// Package stellar's root benchmark harness regenerates every table and
// figure of the paper's evaluation (one benchmark per artifact) plus the
// ablation benches DESIGN.md calls out. Benchmarks report the headline
// latency metrics via b.ReportMetric so `go test -bench` output doubles as
// the reproduction's results summary:
//
//	go test -bench=. -benchmem            # quick scale
//	go test -bench=. -benchtime=1x -timeout=60m -args -paperscale
//
// Each benchmark iteration runs the complete experiment in virtual time.
package stellar

import (
	"flag"
	"fmt"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/experiments"
	"github.com/stellar-repro/stellar/internal/providers"
	"github.com/stellar-repro/stellar/internal/stats"
)

// paperScale switches the benches from quick scale (600 samples) to the
// paper's full 3000-samples-per-configuration methodology.
var paperScale = flag.Bool("paperscale", false, "run benches at the paper's full sample counts")

// benchWorkers sets the per-experiment worker pool; results are identical
// at any setting, only wall-clock time changes.
var benchWorkers = flag.Int("workers", 0, "concurrent series per experiment (0 = all CPUs, 1 = serial)")

func benchOpts() experiments.Options {
	opts := experiments.Quick()
	if *paperScale {
		opts = experiments.Defaults()
	}
	opts.Workers = *benchWorkers
	return opts
}

// reportSeries exposes a series' median/p99/TMR as benchmark metrics.
func reportSeries(b *testing.B, label string, s *stats.Sample) {
	b.Helper()
	b.ReportMetric(float64(s.Median().Microseconds())/1e3, label+"_med_ms")
	b.ReportMetric(float64(s.P99().Microseconds())/1e3, label+"_p99_ms")
}

func reportFigure(b *testing.B, fig *experiments.Figure) {
	for _, s := range fig.Series {
		reportSeries(b, sanitize(s.Label), s.Latencies)
	}
}

// sanitize converts series labels into metric-name-safe tokens: '/' keeps
// its meaning as '-', every other non-alphanumeric rune becomes '_' so
// labels with parentheses, commas, or percent signs (e.g. Table I factors)
// cannot leak unsafe characters into benchstat metric names.
func sanitize(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == '/':
			out = append(out, '-')
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func benchFigure(b *testing.B, fn func(experiments.Options) (*experiments.Figure, error)) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Seed = int64(i + 1)
		fig, err = fn(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

// BenchmarkFig3Warm regenerates Fig. 3a (warm invocation CDFs).
func BenchmarkFig3Warm(b *testing.B) { benchFigure(b, experiments.Fig3Warm) }

// BenchmarkFig3Cold regenerates Fig. 3b (cold invocation CDFs).
func BenchmarkFig3Cold(b *testing.B) { benchFigure(b, experiments.Fig3Cold) }

// BenchmarkFig4ImageSize regenerates Fig. 4 (cold start vs image size).
func BenchmarkFig4ImageSize(b *testing.B) { benchFigure(b, experiments.Fig4ImageSize) }

// BenchmarkFig5RuntimeDeploy regenerates Fig. 5 (runtime x deploy method).
func BenchmarkFig5RuntimeDeploy(b *testing.B) { benchFigure(b, experiments.Fig5RuntimeDeploy) }

// BenchmarkFig6Inline regenerates Fig. 6 (inline transfer sweep).
func BenchmarkFig6Inline(b *testing.B) { benchFigure(b, experiments.Fig6Inline) }

// BenchmarkFig7Storage regenerates Fig. 7 (storage transfer sweep).
func BenchmarkFig7Storage(b *testing.B) { benchFigure(b, experiments.Fig7Storage) }

// BenchmarkFig8Bursts regenerates Fig. 8 (bursty invocations, both IATs).
func BenchmarkFig8Bursts(b *testing.B) { benchFigure(b, experiments.Fig8Bursts) }

// BenchmarkFig9Scheduling regenerates Fig. 9 (scheduling policy, 1s exec).
func BenchmarkFig9Scheduling(b *testing.B) { benchFigure(b, experiments.Fig9Scheduling) }

// BenchmarkFig10TraceTMR regenerates Fig. 10 (Azure-trace TMR CDFs).
func BenchmarkFig10TraceTMR(b *testing.B) {
	var res *experiments.Fig10Result
	var err error
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Seed = int64(i + 1)
		res, err = experiments.Fig10TraceTMR(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for class, frac := range res.FracBelow10 {
		b.ReportMetric(frac, "tmr_lt10_"+sanitize(string(class)))
	}
}

// BenchmarkTable1 regenerates Table I (MR/TR per factor per provider).
func BenchmarkTable1(b *testing.B) {
	var res *experiments.Table1Result
	var err error
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Seed = int64(i + 1)
		res, err = experiments.Table1(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		for prov, cell := range row.Cells {
			if cell.NA {
				continue
			}
			b.ReportMetric(cell.MR, fmt.Sprintf("%s_%s_MR", sanitize(row.Factor), prov))
		}
	}
}

// BenchmarkPolicySpace explores the queueing-policy design space (Obs. 7).
func BenchmarkPolicySpace(b *testing.B) {
	var res *experiments.PolicySpaceResult
	var err error
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Seed = int64(i + 1)
		res, err = experiments.PolicySpace(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range res.Points {
		b.ReportMetric(float64(pt.Latencies.Median().Microseconds())/1e3,
			fmt.Sprintf("depth%d_med_ms", pt.QueueDepth))
		b.ReportMetric(float64(pt.Instances), fmt.Sprintf("depth%d_instances", pt.QueueDepth))
	}
}

// --- Ablation benches (DESIGN.md §4) -------------------------------------

// BenchmarkAblationNoImageCache compares AWS cold bursts with and without
// the image-store cache; the burst advantage exists only with the cache.
func BenchmarkAblationNoImageCache(b *testing.B) {
	var with, without *stats.Sample
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		cached, err := experiments.BurstWithConfig(providers.MustGet("aws"), seed,
			experiments.BurstLongIAT, 100, 600, 0)
		if err != nil {
			b.Fatal(err)
		}
		uncached, err := experiments.BurstWithConfig(experiments.AblationNoImageCache(), seed,
			experiments.BurstLongIAT, 100, 600, 0)
		if err != nil {
			b.Fatal(err)
		}
		with, without = cached.Latencies, uncached.Latencies
	}
	reportSeries(b, "with_cache", with)
	reportSeries(b, "without_cache", without)
}

// BenchmarkAblationAzureNoQueue compares Azure's Fig. 9 burst with its
// rate-limited policy against a no-queue variant.
func BenchmarkAblationAzureNoQueue(b *testing.B) {
	var queued, dedicated *stats.Sample
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		q, err := experiments.BurstWithConfig(providers.MustGet("azure"), seed,
			experiments.BurstLongIAT, 100, 400, time.Second)
		if err != nil {
			b.Fatal(err)
		}
		d, err := experiments.BurstWithConfig(experiments.AblationAzureNoQueue(), seed,
			experiments.BurstLongIAT, 100, 400, time.Second)
		if err != nil {
			b.Fatal(err)
		}
		queued, dedicated = q.Latencies, d.Latencies
	}
	reportSeries(b, "rate_limited", queued)
	reportSeries(b, "no_queue", dedicated)
}

// BenchmarkAblationNoSchedulerContention compares Google cold bursts with
// and without image-store miss queueing.
func BenchmarkAblationNoSchedulerContention(b *testing.B) {
	var with, without *stats.Sample
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		c, err := experiments.BurstWithConfig(providers.MustGet("google"), seed,
			experiments.BurstLongIAT, 200, 600, 0)
		if err != nil {
			b.Fatal(err)
		}
		f, err := experiments.BurstWithConfig(experiments.AblationNoSchedulerContention(), seed,
			experiments.BurstLongIAT, 200, 600, 0)
		if err != nil {
			b.Fatal(err)
		}
		with, without = c.Latencies, f.Latencies
	}
	reportSeries(b, "contended", with)
	reportSeries(b, "uncontended", without)
}

// BenchmarkAblationNoWarmPool compares AWS ZIP cold starts per runtime with
// and without the warm generic instance pool.
func BenchmarkAblationNoWarmPool(b *testing.B) {
	var pyRaw, goRaw *stats.Sample
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		py, err := experiments.ColdWithConfig(experiments.AblationNoWarmPool(), opts.Seed, opts, "python3")
		if err != nil {
			b.Fatal(err)
		}
		g, err := experiments.ColdWithConfig(experiments.AblationNoWarmPool(), opts.Seed, opts, "go1.x")
		if err != nil {
			b.Fatal(err)
		}
		pyRaw, goRaw = py.Latencies, g.Latencies
	}
	reportSeries(b, "python_no_pool", pyRaw)
	reportSeries(b, "go_no_pool", goRaw)
}
