package trace

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
)

func newTestTracer(cfg Config, seed int64) *Tracer {
	return New(cfg, rand.New(rand.NewSource(seed)))
}

// runReq records one single-span request with the given total latency.
func runReq(tr *Tracer, id uint64, start des.Time, total time.Duration) {
	r := tr.Begin(id, "fn", start)
	end := start + des.Time(total)
	r.Mark(StageExec, total, end)
	tr.End(r, end, nil)
}

func TestNilTracerAndNilReqAreInert(t *testing.T) {
	var tr *Tracer
	r := tr.Begin(1, "fn", 0)
	if r != nil {
		t.Fatalf("nil tracer Begin returned %v, want nil", r)
	}
	// All Req methods must no-op on nil.
	r.Mark(StageExec, time.Millisecond, des.Time(time.Millisecond))
	r.Attempt(1)
	r.SetCold(true)
	r.ColdSpans(0, Phase{Stage: StageColdSandboxBoot, Dur: time.Second})
	tr.End(r, 0, nil)
	if got := tr.Retained(); got != 0 {
		t.Fatalf("nil tracer Retained() = %d, want 0", got)
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("nil tracer Dropped() = %d, want 0", got)
	}
	if got := tr.Drain(); got != nil {
		t.Fatalf("nil tracer Drain() = %v, want nil", got)
	}
}

func TestUnsampledWithoutSlowKReturnsNil(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 0, SlowestK: 0}, 1)
	for id := uint64(0); id < 100; id++ {
		if r := tr.Begin(id, "fn", 0); r != nil {
			t.Fatalf("rate 0 with no slow-K returned a live Req")
		}
	}
}

func TestHeadSamplingRate(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 0.25}, 42)
	const n = 4000
	for id := uint64(0); id < n; id++ {
		runReq(tr, id, des.Time(id)*des.Time(time.Millisecond), time.Millisecond)
	}
	got := tr.Retained()
	if got < n/8 || got > n/2 {
		t.Fatalf("rate 0.25 retained %d of %d, far from expectation", got, n)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("ring dropped %d with default capacity", tr.Dropped())
	}
}

func TestSamplingDeterministic(t *testing.T) {
	drain := func() []RequestRecord {
		tr := newTestTracer(Config{SampleRate: 0.1, SlowestK: 8}, 7)
		for id := uint64(0); id < 1000; id++ {
			runReq(tr, id, des.Time(id)*des.Time(time.Millisecond), time.Duration(id%37)*time.Millisecond+time.Microsecond)
		}
		return tr.Drain()
	}
	a, b := drain(), drain()
	if len(a) != len(b) {
		t.Fatalf("re-run retained %d vs %d traces", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].StartNS != b[i].StartNS || a[i].EndNS != b[i].EndNS {
			t.Fatalf("trace %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSlowestKExact(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 0, SlowestK: 4}, 1)
	// Durations 1..100ms in a scrambled order; slowest four are 97..100.
	perm := rand.New(rand.NewSource(3)).Perm(100)
	for id, p := range perm {
		runReq(tr, uint64(id), des.Time(id)*des.Time(time.Second), time.Duration(p+1)*time.Millisecond)
	}
	recs := tr.Drain()
	if len(recs) != 4 {
		t.Fatalf("retained %d traces, want 4", len(recs))
	}
	seen := map[time.Duration]bool{}
	for _, r := range recs {
		if !r.Slow {
			t.Fatalf("slowest-K trace %d not marked slow", r.ID)
		}
		seen[r.Total()] = true
	}
	for d := 97; d <= 100; d++ {
		if !seen[time.Duration(d)*time.Millisecond] {
			t.Fatalf("slowest-K missed the %dms request; got %v", d, seen)
		}
	}
}

func TestSlowEvictionFallsBackToRing(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 1, SlowestK: 1}, 1)
	runReq(tr, 1, 0, 10*time.Millisecond)
	runReq(tr, 2, des.Time(time.Second), 20*time.Millisecond)
	recs := tr.Drain()
	if len(recs) != 2 {
		t.Fatalf("retained %d traces, want 2 (evicted head-sampled trace must fall back to ring)", len(recs))
	}
	byID := map[uint64]RequestRecord{recs[0].ID: recs[0], recs[1].ID: recs[1]}
	if !byID[2].Slow || byID[1].Slow {
		t.Fatalf("want request 2 slow and request 1 ring-retained, got %+v", byID)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 1, RingCapacity: 4}, 1)
	for id := uint64(0); id < 10; id++ {
		runReq(tr, id, des.Time(id)*des.Time(time.Second), time.Millisecond)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6", got)
	}
	recs := tr.Drain()
	if len(recs) != 4 {
		t.Fatalf("retained %d traces, want 4", len(recs))
	}
	for i, r := range recs {
		if want := uint64(6 + i); r.ID != want {
			t.Fatalf("ring kept trace %d at %d, want %d (newest four)", r.ID, i, want)
		}
	}
}

func TestEndWithErrorDiscards(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 1, SlowestK: 4}, 1)
	r := tr.Begin(1, "fn", 0)
	r.Mark(StageExec, time.Millisecond, des.Time(time.Millisecond))
	tr.End(r, des.Time(time.Millisecond), errors.New("boom"))
	if got := tr.Retained(); got != 0 {
		t.Fatalf("errored request retained (%d traces)", got)
	}
}

func TestDrainResetsTracer(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 1, SlowestK: 2, RingCapacity: 8}, 1)
	for id := uint64(0); id < 20; id++ {
		runReq(tr, id, des.Time(id)*des.Time(time.Second), time.Duration(id+1)*time.Millisecond)
	}
	if got := len(tr.Drain()); got != 10 {
		t.Fatalf("first drain returned %d traces, want 10 (8 ring + 2 slow)", got)
	}
	if got := tr.Retained(); got != 0 {
		t.Fatalf("Retained() = %d after drain, want 0", got)
	}
	runReq(tr, 99, 0, time.Millisecond)
	recs := tr.Drain()
	if len(recs) != 1 || recs[0].ID != 99 {
		t.Fatalf("tracer unusable after drain: %+v", recs)
	}
}

func TestSteadyStateZeroAllocs(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: 1, SlowestK: 4, RingCapacity: 8}, 1)
	var id uint64
	var now des.Time
	cycle := func() {
		id++
		now += des.Time(time.Second)
		r := tr.Begin(id, "fn", now)
		r.Attempt(1)
		r.Mark(StageQueueWait, time.Millisecond, now+des.Time(time.Millisecond))
		r.Mark(StageExec, time.Millisecond, now+des.Time(2*time.Millisecond))
		r.Attempt(0)
		tr.End(r, now+des.Time(2*time.Millisecond), nil)
	}
	// Warm up: fill the ring, the slow set, and the recycling pool so span
	// buffers have reached their steady capacity.
	for i := 0; i < 64; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady-state tracing allocates %.1f allocs/request, want 0", allocs)
	}
}

func TestConfigValidate(t *testing.T) {
	valid := []Config{{}, {SampleRate: 1}, {SampleRate: 0.5, SlowestK: 10, RingCapacity: 64}}
	for _, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	invalid := []Config{
		{SampleRate: -0.1},
		{SampleRate: 1.5},
		{SampleRate: nan()},
		{SlowestK: -1},
		{RingCapacity: -1},
	}
	for _, c := range invalid {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func nan() float64 { z := 0.0; return z / z }
