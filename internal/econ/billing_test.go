package econ

import (
	"math"
	"strings"
	"testing"
)

func TestMeterAccumulates(t *testing.T) {
	var m Meter
	m.Busy(10)
	m.Busy(5)
	m.Idle(3)
	m.Suspended(1.5)
	m.Request()
	m.Request()
	got := m.Usage()
	want := Usage{BusyGBms: 15, IdleGBms: 3, SuspendedGBms: 1.5, Requests: 2}
	if got != want {
		t.Fatalf("usage = %+v, want %+v", got, want)
	}
	m.Reset()
	if got := m.Usage(); got != (Usage{}) {
		t.Fatalf("after reset: %+v", got)
	}
}

func TestUsageAdd(t *testing.T) {
	u := Usage{BusyGBms: 1, IdleGBms: 2, SuspendedGBms: 3, Requests: 4}
	u.Add(Usage{BusyGBms: 10, IdleGBms: 20, SuspendedGBms: 30, Requests: 40})
	want := Usage{BusyGBms: 11, IdleGBms: 22, SuspendedGBms: 33, Requests: 44}
	if u != want {
		t.Fatalf("sum = %+v, want %+v", u, want)
	}
}

func TestBillingConfigValidate(t *testing.T) {
	ok := BillingConfig{Name: "ok", BusyGBmsRate: 1e-8, PerRequestFee: 2e-7}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := (&BillingConfig{}).Validate(); err != nil {
		t.Fatalf("zero (free) plan rejected: %v", err)
	}
	cases := []struct {
		name string
		cfg  BillingConfig
		want string
	}{
		{"nan busy", BillingConfig{BusyGBmsRate: math.NaN()}, "busy_gbms_rate"},
		{"inf idle", BillingConfig{IdleGBmsRate: math.Inf(1)}, "idle_gbms_rate"},
		{"negative suspended", BillingConfig{SuspendedGBmsRate: -1}, "suspended_gbms_rate"},
		{"negative fee", BillingConfig{PerRequestFee: -2e-7}, "per_request_fee"},
		{"neg inf fee", BillingConfig{PerRequestFee: math.Inf(-1)}, "per_request_fee"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestPriceBreakdown(t *testing.T) {
	plan := BillingConfig{
		Name:              "test",
		BusyGBmsRate:      2,
		IdleGBmsRate:      1,
		SuspendedGBmsRate: 0.5,
		PerRequestFee:     0.25,
	}
	cost := plan.Price(Usage{BusyGBms: 10, IdleGBms: 4, SuspendedGBms: 2, Requests: 8})
	want := Cost{Compute: 20, Idle: 4, Suspended: 1, Requests: 2, Total: 27}
	if cost != want {
		t.Fatalf("cost = %+v, want %+v", cost, want)
	}
}

func TestPerMillionRequests(t *testing.T) {
	if got := PerMillionRequests(5, 1_000_000); got != 5 {
		t.Errorf("5$/1M reqs = %v, want 5", got)
	}
	if got := PerMillionRequests(1, 500_000); got != 2 {
		t.Errorf("1$/0.5M reqs = %v, want 2", got)
	}
	if got := PerMillionRequests(7, 0); got != 0 {
		t.Errorf("no requests: got %v, want 0", got)
	}
}

func TestBuiltinPlans(t *testing.T) {
	names := Plans()
	if len(names) < 2 {
		t.Fatalf("want at least 2 built-in plans, got %v", names)
	}
	for _, name := range names {
		p, err := Plan(name)
		if err != nil {
			t.Fatalf("Plan(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("Plan(%q).Name = %q", name, p.Name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("built-in plan %q invalid: %v", name, err)
		}
	}
	od, _ := Plan("ondemand")
	pv, _ := Plan("provisioned")
	if od.IdleGBmsRate != 0 {
		t.Errorf("ondemand bills idle: %v", od.IdleGBmsRate)
	}
	if pv.IdleGBmsRate <= pv.SuspendedGBmsRate {
		t.Errorf("provisioned suspended rate %v not below idle rate %v",
			pv.SuspendedGBmsRate, pv.IdleGBmsRate)
	}
	if pv.BusyGBmsRate >= od.BusyGBmsRate {
		t.Errorf("provisioned compute %v not cheaper than ondemand %v",
			pv.BusyGBmsRate, od.BusyGBmsRate)
	}
	if _, err := Plan("no-such-plan"); err == nil {
		t.Fatal("unknown plan accepted")
	}
}

func TestMeterZeroAlloc(t *testing.T) {
	var m Meter
	allocs := testing.AllocsPerRun(100, func() {
		m.Busy(1.5)
		m.Idle(0.5)
		m.Suspended(0.1)
		m.Request()
	})
	if allocs != 0 {
		t.Fatalf("meter allocated %v per run, want 0", allocs)
	}
}
