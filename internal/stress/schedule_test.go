package stress

import (
	"math"
	"sort"
	"testing"
	"time"
)

func collect(s *schedule) []time.Duration {
	var offs []time.Duration
	for {
		off, ok := s.next()
		if !ok {
			return offs
		}
		offs = append(offs, off)
	}
}

func TestFixedScheduleSpacing(t *testing.T) {
	p, err := newPlan(Options{Arrival: ArrivalFixed, Rate: 1000, Duration: 100 * time.Millisecond, Workers: 4}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	var all []time.Duration
	for w := 0; w < 4; w++ {
		all = append(all, collect(p.workerSchedule(w))...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) != 100 { // 1000/s over 100ms
		t.Fatalf("%d arrivals, want 100", len(all))
	}
	for i, off := range all {
		want := time.Duration(i) * time.Millisecond
		if diff := off - want; diff < -time.Microsecond || diff > time.Microsecond {
			t.Fatalf("arrival %d at %v, want %v", i, off, want)
		}
	}
}

func TestPoissonScheduleDeterministicAndCalibrated(t *testing.T) {
	opts := Options{Arrival: ArrivalPoisson, Rate: 50000, Duration: 2 * time.Second, Workers: 8, Seed: 42}.withDefaults()
	p1, err := newPlan(opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := newPlan(opts)

	total := 0
	for w := 0; w < 8; w++ {
		a, b := collect(p1.workerSchedule(w)), collect(p2.workerSchedule(w))
		if len(a) != len(b) {
			t.Fatalf("worker %d: runs differ in length (%d vs %d)", w, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("worker %d arrival %d differs: %v vs %v", w, i, a[i], b[i])
			}
		}
		for i := 1; i < len(a); i++ {
			if a[i] < a[i-1] {
				t.Fatalf("worker %d: offsets not monotone at %d", w, i)
			}
		}
		total += len(a)
	}
	// Superposed rate must match: 50k/s over 2s = 100k expected, sd ≈ 316.
	if math.Abs(float64(total)-100000) > 2000 {
		t.Fatalf("poisson total %d, want ~100000", total)
	}
}

func TestTraceScheduleStriding(t *testing.T) {
	opts := Options{
		Arrival:       ArrivalTrace,
		TraceCounts:   []uint64{4, 0, 2, 7},
		TraceInterval: 100 * time.Millisecond,
		Workers:       3,
	}.withDefaults()
	p, err := newPlan(opts)
	if err != nil {
		t.Fatal(err)
	}
	var all []time.Duration
	for w := 0; w < 3; w++ {
		all = append(all, collect(p.workerSchedule(w))...)
	}
	if len(all) != 13 {
		t.Fatalf("%d arrivals, want 13", len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	// Interval 1 (index 1) is empty: nothing lands in [100ms, 200ms).
	for _, off := range all {
		if off >= 100*time.Millisecond && off < 200*time.Millisecond {
			t.Fatalf("arrival at %v inside empty interval", off)
		}
	}
	// Interval 2's two arrivals are evenly spaced at 200ms and 250ms.
	if all[4] != 200*time.Millisecond || all[5] != 250*time.Millisecond {
		t.Fatalf("interval-2 arrivals at %v and %v", all[4], all[5])
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []Options{
		{Arrival: ArrivalFixed, Rate: 0, Duration: time.Second},
		{Arrival: ArrivalFixed, Rate: -5, Duration: time.Second},
		{Arrival: ArrivalPoisson, Rate: math.NaN(), Duration: time.Second},
		{Arrival: ArrivalPoisson, Rate: math.Inf(1), Duration: time.Second},
		{Arrival: ArrivalFixed, Rate: 100},                                               // no duration, no cap
		{Arrival: ArrivalTrace},                                                          // no counts
		{Arrival: ArrivalTrace, TraceCounts: []uint64{1}},                                // no interval
		{Arrival: ArrivalTrace, TraceCounts: []uint64{0, 0}, TraceInterval: time.Second}, // zero arrivals
		{Arrival: "sometimes", Rate: 100, Duration: time.Second},
	}
	for i, o := range bad {
		if _, err := newPlan(o.withDefaults()); err == nil {
			t.Errorf("case %d (%+v): plan accepted, want error", i, o)
		}
	}
	if _, err := newPlan(Options{Arrival: ArrivalFixed, Rate: 100, MaxRequests: 10}.withDefaults()); err != nil {
		t.Errorf("request-capped plan rejected: %v", err)
	}
}

func TestSplitCount(t *testing.T) {
	caps := splitCount(10, 4)
	want := []uint64{3, 3, 2, 2}
	for i := range want {
		if caps[i] != want[i] {
			t.Fatalf("splitCount(10,4) = %v, want %v", caps, want)
		}
	}
	for _, c := range splitCount(0, 3) {
		if c != math.MaxUint64 {
			t.Fatal("zero total should mean unbounded workers")
		}
	}
}

func TestPlannedArrivals(t *testing.T) {
	n, err := PlannedArrivals(Options{Arrival: ArrivalFixed, Rate: 500, MaxRequests: 100, Workers: 4})
	if err != nil || n != 100 {
		t.Fatalf("capped plan: n=%d err=%v, want 100", n, err)
	}
	n, err = PlannedArrivals(Options{Arrival: ArrivalTrace, TraceCounts: []uint64{5, 5}, TraceInterval: time.Second, Workers: 2})
	if err != nil || n != 10 {
		t.Fatalf("trace plan: n=%d err=%v, want 10", n, err)
	}
	if _, err := PlannedArrivals(Options{Arrival: ArrivalPoisson, Rate: -1, Duration: time.Second}); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestParseKinds(t *testing.T) {
	if _, err := ParseArrivalKind("poisson"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseArrivalKind("bursty"); err == nil {
		t.Fatal("bad arrival kind accepted")
	}
	if _, err := ParseClientKind("raw"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseClientKind("curl"); err == nil {
		t.Fatal("bad client kind accepted")
	}
}
