package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// HTTPTransport executes load plans against live HTTP endpoints (a real
// serverless provider or the httpfaas-served simulation). It mirrors
// STeLLAR's client (§IV): one goroutine per request, each measuring the
// time from issue to response arrival on the wall clock.
type HTTPTransport struct {
	// Client is the HTTP client; defaults to a dedicated client with
	// generous connection reuse.
	Client *http.Client
	// TimeScale divides planned offsets, matching a time-compressed
	// httpfaas server (scale 10 sends the 3s-IAT plan every 300ms), and
	// multiplies measured wall latencies back into provider time so
	// results are comparable across scales. Zero or one means real time.
	// Note that at high scales real network/socket overheads are
	// amplified by the same factor; keep the scale moderate (<=50) when
	// absolute numbers matter.
	TimeScale float64
}

// httpReply mirrors httpfaas.InvokeReply; the transport only needs the
// instrumentation fields, so it tolerates unknown providers' responses.
type httpReply struct {
	Cold        bool             `json:"cold"`
	InstanceID  int              `json:"instance_id"`
	QueueWaitNS int64            `json:"queue_wait_ns"`
	Timestamps  map[string]int64 `json:"timestamps"`
}

// Execute implements Transport.
func (ht *HTTPTransport) Execute(plan []PlannedRequest) ([]Sample, error) {
	client := ht.Client
	if client == nil {
		client = &http.Client{
			Timeout: 5 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        1024,
				MaxIdleConnsPerHost: 1024,
			},
		}
	}
	scale := ht.TimeScale
	if scale <= 0 {
		scale = 1
	}
	samples := make([]Sample, len(plan))
	start := time.Now()
	var wg sync.WaitGroup
	for i := range plan {
		pr := plan[i]
		due := start.Add(time.Duration(float64(pr.At) / scale))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(slot *Sample) {
			defer wg.Done()
			slot.At = pr.At
			issueURL, err := requestURL(pr)
			if err != nil {
				slot.Err = err
				return
			}
			t0 := time.Now()
			resp, err := client.Get(issueURL)
			if err != nil {
				slot.Err = err
				return
			}
			body, readErr := io.ReadAll(resp.Body)
			resp.Body.Close()
			slot.Latency = time.Duration(float64(time.Since(t0)) * scale)
			if readErr != nil {
				slot.Err = readErr
				return
			}
			if resp.StatusCode != http.StatusOK {
				slot.Err = fmt.Errorf("core: endpoint returned %s: %s", resp.Status, body)
				return
			}
			var reply httpReply
			if err := json.Unmarshal(body, &reply); err != nil {
				// Non-JSON endpoints still yield a latency sample.
				return
			}
			slot.Cold = reply.Cold
			slot.InstanceID = reply.InstanceID
			slot.QueueWait = time.Duration(reply.QueueWaitNS)
			if len(pr.Endpoint.Chain) >= 2 {
				send, okS := reply.Timestamps[pr.Endpoint.Chain[0]+".send"]
				recv, okR := reply.Timestamps[pr.Endpoint.Chain[1]+".recv"]
				if okS && okR && recv >= send {
					slot.TransferTime = time.Duration(recv - send)
				}
			}
		}(&samples[i])
	}
	wg.Wait()
	return samples, nil
}

// requestURL builds the invocation URL with exec/payload overrides.
func requestURL(pr PlannedRequest) (string, error) {
	u, err := url.Parse(pr.Endpoint.URL)
	if err != nil {
		return "", fmt.Errorf("core: bad endpoint URL %q: %w", pr.Endpoint.URL, err)
	}
	q := u.Query()
	if pr.ExecTime > 0 {
		q.Set("exec_ms", strconv.FormatInt(pr.ExecTime.Milliseconds(), 10))
	}
	if pr.PayloadBytes > 0 {
		q.Set("payload", strconv.FormatInt(pr.PayloadBytes, 10))
	}
	u.RawQuery = q.Encode()
	return u.String(), nil
}
