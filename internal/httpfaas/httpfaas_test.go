package httpfaas

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/blobstore"
	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/dist"
)

// fastConfig is a provider profile with small latencies so wall-clock tests
// stay fast even at time scale 1000.
func fastConfig() cloud.Config {
	return cloud.Config{
		Name:              "httpsim",
		PropagationRTT:    10 * time.Millisecond,
		FrontendDelay:     dist.Constant(time.Millisecond),
		WarmOverhead:      dist.Constant(2 * time.Millisecond),
		SchedulerCapacity: 8,
		Policy:            cloud.PolicyConfig{Kind: cloud.PolicyNoQueue},
		SandboxBoot:       dist.Constant(20 * time.Millisecond),
		WarmGenericPool:   true,
		PooledInit:        dist.Constant(20 * time.Millisecond),
		ImageStore:        blobstore.Config{Name: "img", GetLatency: dist.Constant(10 * time.Millisecond)},
		PayloadStore: blobstore.Config{
			Name:       "blob",
			GetLatency: dist.Constant(5 * time.Millisecond),
			PutLatency: dist.Constant(5 * time.Millisecond),
		},
		InlineLimitBytes:   6 << 20,
		InlineBandwidthBps: 1e9,
		KeepAlive:          cloud.KeepAlivePolicy{Fixed: 10 * time.Minute},
		Workers:            4,
	}
}

func startServer(t *testing.T) *Server {
	t.Helper()
	srv, err := NewServer(fastConfig(), 1, 1000) // 1000x compressed time
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	return srv
}

func TestDeployAndInvokeOverHTTP(t *testing.T) {
	srv := startServer(t)
	eps, err := srv.Deploy(core.FunctionConfig{Name: "hello", Runtime: "go1.x", Method: "zip"})
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 1 {
		t.Fatalf("%d endpoints", len(eps))
	}
	resp, err := http.Get(eps[0].URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	var reply InvokeReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if !reply.Cold {
		t.Error("first invocation should be cold")
	}
	if reply.SimLatencyNS <= 0 {
		t.Error("missing simulated latency")
	}

	// Second call is warm and reuses the instance.
	resp2, err := http.Get(eps[0].URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var reply2 InvokeReply
	if err := json.NewDecoder(resp2.Body).Decode(&reply2); err != nil {
		t.Fatal(err)
	}
	if reply2.Cold || reply2.InstanceID != reply.InstanceID {
		t.Errorf("expected warm reuse: %+v then %+v", reply, reply2)
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	srv := startServer(t)
	resp, err := http.Get(srv.BaseURL() + "/fn/ghost")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %s, want 500", resp.Status)
	}
}

func TestBadQueryParams(t *testing.T) {
	srv := startServer(t)
	for _, q := range []string{"?exec_ms=-1", "?exec_ms=soon", "?payload=-5", "?payload=much"} {
		resp, err := http.Get(srv.BaseURL() + "/fn/f" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400", q, resp.Status)
		}
	}
}

func TestHTTPTransportEndToEnd(t *testing.T) {
	srv := startServer(t)
	deployer := core.NewDeployer(srv.Provider())
	eps, err := deployer.Deploy(&core.StaticConfig{
		Provider: "httpsim",
		Functions: []core.FunctionConfig{{
			Name: "chain", Runtime: "go1.x", Method: "zip",
			Chain: &core.ChainConfig{Length: 2, Transfer: "inline", PayloadBytes: 64 << 10},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	client := &core.Client{Transport: &core.HTTPTransport{TimeScale: 1000}}
	res, err := client.Run(eps.Endpoints, core.RuntimeConfig{
		Samples:       8,
		IAT:           core.Duration(3 * time.Second), // 3ms wall at scale 1000
		WarmupDiscard: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors: %+v", res.Errors, res.Samples)
	}
	if res.Latencies.Len() != 8 {
		t.Fatalf("%d samples", res.Latencies.Len())
	}
	if res.Transfers.Len() == 0 {
		t.Fatal("no instrumented transfers over HTTP")
	}
}

func TestTeardownOverHTTP(t *testing.T) {
	srv := startServer(t)
	deployer := core.NewDeployer(srv.Provider())
	_, err := deployer.Deploy(&core.StaticConfig{
		Provider:  "httpsim",
		Functions: []core.FunctionConfig{{Name: "f", Runtime: "go1.x", Method: "zip"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Provider().Teardown("f"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.BaseURL() + "/fn/f")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status after teardown = %s", resp.Status)
	}
}

func TestDoubleStartAndStop(t *testing.T) {
	srv, err := NewServer(fastConfig(), 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err == nil {
		t.Error("second Start should fail")
	}
	srv.Stop()
	srv.Stop() // idempotent
}

func TestConcurrentHTTPBurst(t *testing.T) {
	srv := startServer(t)
	eps, err := srv.Deploy(core.FunctionConfig{Name: "burst", Runtime: "go1.x", Method: "zip"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	type outcome struct {
		status int
		reply  InvokeReply
		err    error
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Get(eps[0].URL)
			if err != nil {
				results <- outcome{err: err}
				return
			}
			defer resp.Body.Close()
			var reply InvokeReply
			if decodeErr := json.NewDecoder(resp.Body).Decode(&reply); decodeErr != nil {
				results <- outcome{status: resp.StatusCode, err: decodeErr}
				return
			}
			results <- outcome{status: resp.StatusCode, reply: reply}
		}()
	}
	instances := map[int]bool{}
	colds := 0
	for i := 0; i < n; i++ {
		out := <-results
		if out.err != nil {
			t.Fatal(out.err)
		}
		if out.status != http.StatusOK {
			t.Fatalf("status %d", out.status)
		}
		instances[out.reply.InstanceID] = true
		if out.reply.Cold {
			colds++
		}
	}
	if colds == 0 {
		t.Error("a cold burst should report cold serves")
	}
	if len(instances) == 0 {
		t.Error("no instance ids reported")
	}
	// The simulated cloud's accounting must be consistent after the burst.
	// Snapshot via the simulation loop: the engine is still live and a
	// keep-alive expiry would race a direct read.
	m := srv.Metrics()
	if m.Invocations != n {
		t.Fatalf("cloud served %d of %d", m.Invocations, n)
	}
	if m.ColdServed+m.WarmServed != n {
		t.Fatalf("cold %d + warm %d != %d", m.ColdServed, m.WarmServed, n)
	}
}
