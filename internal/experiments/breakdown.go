package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/runner"
)

// BreakdownScenario names one load regime of the per-component study.
type BreakdownScenario string

// Studied regimes: the three rows of Table I where the interesting
// components differ most.
const (
	ScenarioWarm      BreakdownScenario = "warm"
	ScenarioCold      BreakdownScenario = "cold"
	ScenarioBurstCold BreakdownScenario = "bursty-cold"
)

// BreakdownResult holds per-provider, per-scenario component statistics.
type BreakdownResult struct {
	// Stats maps provider -> scenario -> aggregated breakdowns.
	Stats map[string]map[BreakdownScenario]*core.BreakdownStats
	// Latencies maps provider -> scenario -> run result for headline
	// numbers.
	Latencies map[string]map[BreakdownScenario]*core.RunResult
}

// BreakdownStudy quantifies the paper's per-component analysis (§VII-A):
// for each provider and load regime, which infrastructure component
// contributes how much latency. It makes the paper's two headline trends
// directly visible: storage accesses dominate cold paths, and queueing
// dominates bursts.
func BreakdownStudy(opts Options) (*BreakdownResult, error) {
	opts = opts.normalized()
	res := &BreakdownResult{
		Stats:     make(map[string]map[BreakdownScenario]*core.BreakdownStats),
		Latencies: make(map[string]map[BreakdownScenario]*core.RunResult),
	}
	type bdCase struct {
		prov string
		scen BreakdownScenario
	}
	var cases []bdCase
	for _, prov := range AllProviders {
		for _, scen := range []BreakdownScenario{ScenarioWarm, ScenarioCold, ScenarioBurstCold} {
			cases = append(cases, bdCase{prov, scen})
		}
	}
	runs, err := runner.Map(opts.pool(), len(cases), func(sh runner.Shard) (*core.RunResult, error) {
		c := cases[sh.Index]
		var r *core.RunResult
		var err error
		switch c.scen {
		case ScenarioWarm:
			r, err = runBurst(c.prov, sh.Seed, opts.Engine, BurstShortIAT, 1, opts.Samples, 0)
		case ScenarioCold:
			r, err = measure(c.prov, sh.Seed, opts.Engine, pythonFn("cold", opts.Replicas), coldRC(c.prov, opts))
		case ScenarioBurstCold:
			r, err = runBurst(c.prov, sh.Seed, opts.Engine, BurstLongIAT, 100, burstSamples(opts, 100), 0)
		}
		if err != nil {
			return nil, fmt.Errorf("breakdown %s %s: %w", c.prov, c.scen, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cases {
		if res.Stats[c.prov] == nil {
			res.Stats[c.prov] = make(map[BreakdownScenario]*core.BreakdownStats)
			res.Latencies[c.prov] = make(map[BreakdownScenario]*core.RunResult)
		}
		res.Stats[c.prov][c.scen] = runs[i].Breakdowns()
		res.Latencies[c.prov][c.scen] = runs[i]
	}
	return res, nil
}

// WriteBreakdownReport renders the study: per provider and scenario, the
// mean contribution of every component (means add up across components, so
// shares are meaningful), plus the cold-start phase split.
func WriteBreakdownReport(w io.Writer, res *BreakdownResult) {
	fmt.Fprintf(w, "## breakdown — per-component latency contributions (§VII-A)\n\n")
	for _, prov := range AllProviders {
		for _, scen := range []BreakdownScenario{ScenarioWarm, ScenarioCold, ScenarioBurstCold} {
			bs := res.Stats[prov][scen]
			run := res.Latencies[prov][scen]
			if bs == nil || run == nil {
				continue
			}
			total := run.Latencies.Mean()
			fmt.Fprintf(w, "%s / %s  (mean latency %v, %d samples)\n",
				prov, scen, total.Round(time.Millisecond), run.Latencies.Len())
			for _, name := range bs.Order {
				s := bs.Components[name]
				if s.Len() == 0 || s.Max() == 0 {
					continue
				}
				mean := s.Mean()
				share := 0.0
				if total > 0 {
					share = float64(mean) / float64(total) * 100
				}
				fmt.Fprintf(w, "  %-18s %10v  %5.1f%%\n", name, mean.Round(100*time.Microsecond), share)
			}
			if coldSample := bs.Cold[bs.ColdOrder[0]]; coldSample != nil && coldSample.Len() > 0 {
				fmt.Fprintf(w, "  cold-start phases (within queue-wait, %d cold):\n", coldSample.Len())
				for _, name := range bs.ColdOrder {
					s := bs.Cold[name]
					if s.Len() == 0 || s.Max() == 0 {
						continue
					}
					fmt.Fprintf(w, "    %-18s %10v\n", name, s.Mean().Round(100*time.Microsecond))
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "reading: in warm regimes propagation+front-end dominate; in cold")
	fmt.Fprintln(w, "regimes queue-wait (the cold start, itself dominated by image fetch /")
	fmt.Fprintln(w, "boot / init) takes over; under bursts congestion and queueing grow —")
	fmt.Fprintln(w, "the storage and burstiness trends of Table I, seen per component.")
}
