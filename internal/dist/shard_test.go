package dist

import (
	"fmt"
	"testing"
)

func TestShardSeedDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, -7, 1 << 40} {
		for _, shard := range []int{0, 1, 2, 1000} {
			a := ShardSeed(seed, shard)
			b := ShardSeed(seed, shard)
			if a != b {
				t.Errorf("ShardSeed(%d,%d) not deterministic: %d vs %d", seed, shard, a, b)
			}
		}
	}
}

func TestShardSeedUnique(t *testing.T) {
	// No collisions across a realistic (seed, shard) grid, and no shard
	// seed collides with its own root.
	seen := map[int64]string{}
	for _, seed := range []int64{0, 1, 2, 3, -1, 123456789} {
		for shard := 0; shard < 2000; shard++ {
			s := ShardSeed(seed, shard)
			if s == seed {
				t.Errorf("ShardSeed(%d,%d) equals the root seed", seed, shard)
			}
			if prev, ok := seen[s]; ok {
				t.Fatalf("collision: ShardSeed(%d,%d) = %d already produced by %s", seed, shard, s, prev)
			}
			seen[s] = fmt.Sprintf("(%d,%d)", seed, shard)
		}
	}
}

func TestShardSeedSensitivity(t *testing.T) {
	// Different roots must give different shard families.
	if ShardSeed(1, 0) == ShardSeed(2, 0) {
		t.Error("shard 0 identical across different root seeds")
	}
	// Adjacent shards must not be trivially related (catch additive bugs).
	d1 := ShardSeed(1, 1) - ShardSeed(1, 0)
	d2 := ShardSeed(1, 2) - ShardSeed(1, 1)
	if d1 == d2 {
		t.Error("adjacent shard seeds form an arithmetic progression")
	}
}

func TestStreamsShard(t *testing.T) {
	root := NewStreams(42)
	a := root.Shard(3).Stream("cold-start")
	b := NewStreams(42).Shard(3).Stream("cold-start")
	c := root.Shard(4).Stream("cold-start")
	for i := 0; i < 100; i++ {
		av, bv, cv := a.Int63(), b.Int63(), c.Int63()
		if av != bv {
			t.Fatalf("draw %d: same shard produced different values", i)
		}
		if i == 0 && av == cv {
			t.Error("different shards produced the same first draw")
		}
	}
	if root.Shard(0).Seed() == root.Seed() {
		t.Error("shard 0 must not alias the root")
	}
}
