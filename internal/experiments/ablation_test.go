package experiments

import (
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/providers"
)

func TestAblationNoImageCache(t *testing.T) {
	// With the cache, AWS cold bursts beat individual cold starts; without
	// it they must not.
	base := providers.MustGet("aws")
	ablated := AblationNoImageCache()

	single, err := ColdWithConfig(base, 3, testOpts, cloud.RuntimePython)
	if err != nil {
		t.Fatal(err)
	}
	burstCached, err := BurstWithConfig(base, 3, BurstLongIAT, 100, 600, 0)
	if err != nil {
		t.Fatal(err)
	}
	burstUncached, err := BurstWithConfig(ablated, 3, BurstLongIAT, 100, 600, 0)
	if err != nil {
		t.Fatal(err)
	}
	if burstCached.Latencies.Median() >= single.Latencies.Median() {
		t.Errorf("cached burst median %v should beat single cold %v",
			burstCached.Latencies.Median(), single.Latencies.Median())
	}
	if burstUncached.Latencies.Median() <= single.Latencies.Median() {
		t.Errorf("uncached burst median %v should NOT beat single cold %v",
			burstUncached.Latencies.Median(), single.Latencies.Median())
	}
}

func TestAblationAzureNoQueue(t *testing.T) {
	base := providers.MustGet("azure")
	ablated := AblationAzureNoQueue()

	queued, err := BurstWithConfig(base, 3, BurstLongIAT, 100, 400, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	dedicated, err := BurstWithConfig(ablated, 3, BurstLongIAT, 100, 400, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The queueing policy is what produces the 10+ second completions;
	// without it Azure drops to cold start + 1s execution.
	if queued.Latencies.Median() < 3*dedicated.Latencies.Median() {
		t.Errorf("queued median %v should dwarf dedicated median %v",
			queued.Latencies.Median(), dedicated.Latencies.Median())
	}
	if dedicated.Latencies.Median() > 6*time.Second {
		t.Errorf("no-queue Azure burst median %v should be near cold+1s", dedicated.Latencies.Median())
	}
}

func TestAblationNoSchedulerContention(t *testing.T) {
	base := providers.MustGet("google")
	ablated := AblationNoSchedulerContention()

	single, err := ColdWithConfig(base, 3, testOpts, cloud.RuntimePython)
	if err != nil {
		t.Fatal(err)
	}
	contended, err := BurstWithConfig(base, 3, BurstLongIAT, 200, 600, 0)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := BurstWithConfig(ablated, 3, BurstLongIAT, 200, 600, 0)
	if err != nil {
		t.Fatal(err)
	}
	if contended.Latencies.Median() < 2*single.Latencies.Median() {
		t.Errorf("contended burst median %v should be well above single %v",
			contended.Latencies.Median(), single.Latencies.Median())
	}
	if flat.Latencies.Median() > time.Duration(1.5*float64(single.Latencies.Median())) {
		t.Errorf("uncontended burst median %v should be near single %v",
			flat.Latencies.Median(), single.Latencies.Median())
	}
}

func TestAblationNoWarmPool(t *testing.T) {
	base := providers.MustGet("aws")
	ablated := AblationNoWarmPool()

	pyPooled, err := ColdWithConfig(base, 3, testOpts, cloud.RuntimePython)
	if err != nil {
		t.Fatal(err)
	}
	goPooled, err := ColdWithConfig(base, 3, testOpts, cloud.RuntimeGo)
	if err != nil {
		t.Fatal(err)
	}
	pyRaw, err := ColdWithConfig(ablated, 3, testOpts, cloud.RuntimePython)
	if err != nil {
		t.Fatal(err)
	}
	goRaw, err := ColdWithConfig(ablated, 3, testOpts, cloud.RuntimeGo)
	if err != nil {
		t.Fatal(err)
	}
	pooledGap := pyPooled.Latencies.Median() - goPooled.Latencies.Median()
	rawGap := pyRaw.Latencies.Median() - goRaw.Latencies.Median()
	if pooledGap > 50*time.Millisecond {
		t.Errorf("with the warm pool, runtime gap %v should be negligible", pooledGap)
	}
	if rawGap < 150*time.Millisecond {
		t.Errorf("without the warm pool, runtime gap %v should be substantial", rawGap)
	}
}
