package stress

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestRawClientAgainstCannedServer(t *testing.T) {
	srv := newCannedServer(t, cannedBody(true, 5000))
	target, err := NewTarget(srv.url(), "")
	if err != nil {
		t.Fatal(err)
	}
	c := newRawClient(target, 5*time.Second)
	defer c.Close()

	var r Reply
	for i := 0; i < 10; i++ {
		if err := c.Do(&r); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if r.Status != 200 || !r.Cold || r.SimLatencyNS != 5000 {
			t.Fatalf("request %d: reply %+v", i, r)
		}
	}
	st := c.Stats()
	if st.Dials != 1 || st.Reused != 9 {
		t.Fatalf("stats %+v, want 1 dial and 9 reuses", st)
	}
}

// TestRawClientStaleKeepAliveRetry drops the connection after every 2
// responses server-side; the client must absorb each stale connection with
// a single transparent redial.
func TestRawClientStaleKeepAliveRetry(t *testing.T) {
	srv := newCannedServer(t, cannedBody(false, 1))
	srv.reqsPerConn = 2
	target, err := NewTarget(srv.url(), "")
	if err != nil {
		t.Fatal(err)
	}
	c := newRawClient(target, 5*time.Second)
	defer c.Close()
	var r Reply
	for i := 0; i < 10; i++ {
		if err := c.Do(&r); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if st := c.Stats(); st.Dials != 5 {
		t.Fatalf("stats %+v, want 5 dials for 10 requests at 2 per conn", st)
	}
}

// TestRawClientAgainstNetHTTP exercises the raw client against a stock
// net/http server — including the chunked-encoding path, which net/http
// uses when a handler flushes without a declared length.
func TestRawClientAgainstNetHTTP(t *testing.T) {
	body := cannedBody(false, 777)
	chunked := false
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if chunked {
			w.Header().Set("Content-Type", "application/json")
			w.(http.Flusher).Flush() // forces chunked transfer encoding
			_, _ = w.Write(body[:10])
			w.(http.Flusher).Flush()
			_, _ = w.Write(body[10:])
			return
		}
		_, _ = w.Write(body)
	}))
	defer hs.Close()

	target, err := NewTarget(hs.URL+"/fn/f", "")
	if err != nil {
		t.Fatal(err)
	}
	c := newRawClient(target, 5*time.Second)
	defer c.Close()

	var r Reply
	for _, mode := range []bool{false, true, false, true} {
		chunked = mode
		r = Reply{}
		if err := c.Do(&r); err != nil {
			t.Fatalf("chunked=%t: %v", mode, err)
		}
		if r.Status != 200 || r.SimLatencyNS != 777 {
			t.Fatalf("chunked=%t: reply %+v", mode, r)
		}
	}
}

func TestStdClientCounters(t *testing.T) {
	srv := newCannedServer(t, cannedBody(false, 9))
	target, err := NewTarget(srv.url(), "")
	if err != nil {
		t.Fatal(err)
	}
	c, err := newStdClient(target, 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var r Reply
	for i := 0; i < 8; i++ {
		if err := c.Do(&r); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if r.Status != 200 || r.SimLatencyNS != 9 {
			t.Fatalf("request %d: reply %+v", i, r)
		}
	}
	st := c.Stats()
	if st.Dials == 0 || st.Dials+st.Reused != 8 {
		t.Fatalf("stats %+v, want dials+reused == 8", st)
	}
}

func TestNewTargetValidation(t *testing.T) {
	bad := []string{
		"https://example.com/fn/f", // only http
		"http://",                  // no host
		"http://host",              // no path
		"://broken",
	}
	for _, u := range bad {
		if _, err := NewTarget(u, ""); err == nil {
			t.Errorf("NewTarget(%q) accepted", u)
		}
	}
	tgt, err := NewTarget("http://127.0.0.1:8080/fn/f?a=1", "exec_ms=5")
	if err != nil {
		t.Fatal(err)
	}
	if tgt.addr != "127.0.0.1:8080" {
		t.Errorf("addr = %q", tgt.addr)
	}
	if want := "http://127.0.0.1:8080/fn/f?a=1&exec_ms=5"; tgt.url != want {
		t.Errorf("url = %q, want %q", tgt.url, want)
	}
}

func TestBuildQuery(t *testing.T) {
	if q := BuildQuery(0, 0); q != "" {
		t.Errorf("empty query = %q", q)
	}
	if q := BuildQuery(5*time.Millisecond, 0); q != "exec_ms=5" {
		t.Errorf("exec query = %q", q)
	}
	if q := BuildQuery(5*time.Millisecond, 1024); q != "exec_ms=5&payload=1024" {
		t.Errorf("full query = %q", q)
	}
}
