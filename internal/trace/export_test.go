package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func exportFixture() []RequestRecord {
	warm := buildRec(1, 0, time.Second,
		stageDur{StagePropagation, 5 * time.Millisecond, 0},
		stageDur{StageExec, 50 * time.Millisecond, 1},
		stageDur{StageResponse, 5 * time.Millisecond, 0},
	)
	cold := buildRec(2, 1, 2*time.Second,
		stageDur{StageQueueWait, 300 * time.Millisecond, 1},
		stageDur{StageExec, 50 * time.Millisecond, 1},
	)
	cold.Cold = true
	cold.Slow = true
	cold.Spans = append(cold.Spans, SpanRecord{
		Stage: StageColdSandboxBoot.String(), StartNS: cold.StartNS,
		DurNS: int64(250 * time.Millisecond), Detail: true,
	})
	return []RequestRecord{warm, cold}
}

func TestWriteTraceEventsStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, exportFixture()); err != nil {
		t.Fatalf("WriteTraceEvents: %v", err)
	}
	var got struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Cat  string         `json:"cat"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if got.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", got.DisplayTimeUnit)
	}
	counts := map[string]int{}
	for _, ev := range got.TraceEvents {
		switch {
		case ev.Ph == "M":
			counts[ev.Name]++
		case ev.Ph == "X":
			counts["X/"+ev.Cat]++
			if ev.Dur <= 0 {
				t.Errorf("event %q has non-positive dur %v", ev.Name, ev.Dur)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
		// Shard 0 must map to pid 1: pid 0 is invalid in trace viewers.
		if ev.Pid < 1 {
			t.Errorf("event %q has pid %d, want >= 1", ev.Name, ev.Pid)
		}
	}
	// Two shards, two request threads, two request slices, five stage spans
	// (one of them cold detail).
	if counts["process_name"] != 2 || counts["thread_name"] != 2 {
		t.Fatalf("metadata events = %v", counts)
	}
	if counts["X/request"] != 2 || counts["X/stage"] != 5 || counts["X/cold"] != 1 {
		t.Fatalf("slice events = %v", counts)
	}
	// Timestamps are microseconds: the warm request starts at 1s = 1e6us.
	for _, ev := range got.TraceEvents {
		if ev.Ph == "X" && ev.Cat == "request" && ev.Tid == 1 {
			if ev.Ts != 1e6 {
				t.Fatalf("request 1 ts = %v us, want 1e6", ev.Ts)
			}
		}
	}
}

func TestWriteTraceEventsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	recs := exportFixture()
	if err := WriteTraceEvents(&a, recs); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceEvents(&b, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("export not byte-stable across identical inputs")
	}
}

func TestWriteTraceEventsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, nil); err != nil {
		t.Fatalf("WriteTraceEvents(nil): %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty export is not valid JSON: %q", buf.String())
	}
}
