// Burstiness: the paper's §VI-D scenario — send bursts of simultaneous
// invocations at each simulated provider under short (warm) and long (cold)
// inter-arrival times, and observe how the scheduling policy shapes the
// response: AWS spawns a dedicated instance per request (cold bursts are
// even *cheaper* than single cold starts thanks to image caching), Google's
// cold bursts contend at the image store, and Azure's rate-limited scale
// controller queues requests deeply.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/stellar-repro/stellar/internal/core"
	"github.com/stellar-repro/stellar/internal/experiments"
	"github.com/stellar-repro/stellar/internal/plot"
)

func main() {
	providers := []string{"aws", "google", "azure"}
	bursts := []int{1, 100, 500}

	for _, regime := range []struct {
		name string
		iat  time.Duration
		exec time.Duration
	}{
		{"short IAT (warm bursts)", 3 * time.Second, 0},
		{"long IAT (cold bursts)", 15 * time.Minute, 0},
		{"long IAT + 1s execution (scheduling policy)", 15 * time.Minute, time.Second},
	} {
		fmt.Printf("== %s ==\n", regime.name)
		var rows []plot.Series
		for _, prov := range providers {
			for _, burst := range bursts {
				if regime.exec > 0 && burst == 500 {
					continue // Fig. 9 studies bursts of 1 and 100
				}
				res := runBurst(prov, regime.iat, regime.exec, burst)
				sum := res.Summary()
				fmt.Printf("%-7s burst=%-4d median=%9v p99=%9v tmr=%5.1f colds=%d\n",
					prov, burst, sum.Median.Round(time.Millisecond),
					sum.P99.Round(time.Millisecond), sum.TMR, res.Colds)
				if burst == 100 {
					rows = append(rows, plot.Series{
						Label:  fmt.Sprintf("%s burst=100", prov),
						Sample: res.Latencies,
					})
				}
			}
		}
		fmt.Println()
		if err := plot.CDF(os.Stdout, "burst=100 latency CDFs", rows, 72, 14); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

// runBurst measures one provider at one burst size on a fresh cloud.
func runBurst(provider string, iat, exec time.Duration, burst int) *core.RunResult {
	env, err := experiments.NewEnv(provider, 11)
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	eps, err := env.Deployer().Deploy(&core.StaticConfig{
		Provider:  provider,
		Functions: []core.FunctionConfig{{Name: "burst", Runtime: "python3", Method: "zip"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	samples := 1000
	if samples < burst*2 {
		samples = burst * 2
	}
	rc := core.RuntimeConfig{
		Samples:   samples,
		IAT:       core.Duration(iat),
		BurstSize: burst,
		ExecTime:  core.Duration(exec),
	}
	if iat < time.Minute {
		rc.WarmupDiscard = burst // first burst is necessarily cold
	}
	res, err := env.Client().Run(eps.Endpoints, rc)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
