package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/stellar-repro/stellar/internal/experiments"
	"github.com/stellar-repro/stellar/internal/providers"
	"github.com/stellar-repro/stellar/internal/results"
	"github.com/stellar-repro/stellar/internal/trace"
	"github.com/stellar-repro/stellar/internal/workflow"
)

// cmdWorkflow runs an orchestrated multi-function workflow series: a DAG
// topology preset executed over the simulated cloud, reporting workflow
// makespans, critical-path shares, per-edge transfer tails, join-barrier
// accounting, and the per-stage attribution of sampled workflow trace trees.
func cmdWorkflow(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("workflow", flag.ContinueOnError)
	fs.SetOutput(stdout)
	prof := addProfileFlags(fs)
	provider := fs.String("provider", "aws", "provider profile")
	providerFile := fs.String("provider-file", "", "JSON provider profile to load and use")
	id := fs.String("id", "fanout-8", "topology preset (chain-N, fanout-K, diamond, mapreduce)")
	workflows := fs.Uint64("n", 1000, "total workflow instances across all shards")
	shards := fs.Int("shards", 8, "independent simulation shards")
	workers := fs.Int("workers", 0, "concurrent shards (0 = all CPUs, 1 = serial)")
	iat := fs.Duration("iat", 100*time.Millisecond, "inter-arrival time between bursts within a shard")
	burst := fs.Int("burst", 1, "workflow launches per arrival step")
	modeFlag := fs.String("mode", "sync", "edge invocation mode (sync|async)")
	transferFlag := fs.String("transfer", "inline", "edge data-passing mode (inline|blobstore)")
	payload := fs.Int64("payload", 64<<10, "per-edge payload bytes")
	need := fs.Int("need", 0, "first-K join straggler policy for fan-in nodes (0 = wait all)")
	exec := fs.Duration("exec", 5*time.Millisecond, "per-node busy-spin time")
	sample := fs.Float64("sample", 0.25, "per-workflow trace-sampling rate in [0,1]")
	ring := fs.Int("ring", 0, "per-shard trace ring capacity (0 = default 8192)")
	engine := addEngineFlag(fs)
	seed := fs.Int64("seed", 1, "random seed")
	sweep := fs.Bool("sweep", false, "sweep edge modes x transfers x payload sizes instead of one cell")
	payloads := fs.String("payloads", "", "comma-separated payload sizes for -sweep (default 1024,65536,1048576)")
	out := fs.String("out", "", "write retained workflow traces as Chrome trace_event JSON")
	savePath := fs.String("save", "", "save the run (makespans + edge sketches + traces) as a results file")
	name := fs.String("name", "workflow", "run name used in saved results")
	benchJSON := fs.String("bench-json", "", "write workflow replay throughput metrics as JSON to this file (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	if *providerFile != "" {
		loaded, err := providers.RegisterFile(*providerFile)
		if err != nil {
			return err
		}
		*provider = loaded
	}
	engineMode, err := engine.mode()
	if err != nil {
		return err
	}
	edgeMode, err := workflow.ParseMode(*modeFlag)
	if err != nil {
		return err
	}
	edgeTransfer, err := workflow.ParseTransfer(*transferFlag)
	if err != nil {
		return err
	}

	opts := experiments.WorkflowOptions{
		Provider:     *provider,
		Topology:     *id,
		Workflows:    *workflows,
		Shards:       *shards,
		Workers:      *workers,
		Seed:         *seed,
		IAT:          *iat,
		Burst:        *burst,
		Mode:         edgeMode,
		Transfer:     edgeTransfer,
		PayloadBytes: *payload,
		Need:         *need,
		ExecTime:     *exec,
		Sample:       *sample,
		TraceRing:    *ring,
		Engine:       engineMode,
	}

	if *sweep {
		var sizes []int64
		if *payloads != "" {
			for _, field := range strings.Split(*payloads, ",") {
				n, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
				if err != nil {
					return fmt.Errorf("workflow: bad -payloads entry %q: %w", field, err)
				}
				sizes = append(sizes, n)
			}
		}
		res, err := experiments.RunWorkflowSweep(opts, nil, nil, sizes)
		if err != nil {
			return err
		}
		experiments.WriteWorkflowSweepReport(stdout, res)
		return nil
	}

	wallStart := time.Now()
	res, err := experiments.RunWorkflow(opts)
	if err != nil {
		return err
	}
	wall := time.Since(wallStart)
	experiments.WriteWorkflowReport(stdout, res)

	if *benchJSON != "" {
		var invocations uint64
		for _, m := range res.CloudMetrics {
			invocations += m.Invocations + m.InternalInvocations
		}
		var mem runtime.MemStats
		runtime.ReadMemStats(&mem)
		bench := struct {
			Topology       string  `json:"topology"`
			Workflows      uint64  `json:"workflows"`
			Nodes          int     `json:"nodes"`
			Edges          int     `json:"edges"`
			Invocations    uint64  `json:"invocations"`
			WallSeconds    float64 `json:"wall_seconds"`
			WorkflowsPerS  float64 `json:"workflows_per_sec"`
			InvocsPerSec   float64 `json:"invocations_per_sec"`
			PeakHeapBytes  uint64  `json:"peak_heap_bytes"`
			HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
		}{
			Topology:       res.Topology,
			Workflows:      res.Workflows,
			Nodes:          len(res.DAG.Nodes),
			Edges:          len(res.DAG.Edges),
			Invocations:    invocations,
			WallSeconds:    wall.Seconds(),
			WorkflowsPerS:  float64(res.Workflows) / wall.Seconds(),
			InvocsPerSec:   float64(invocations) / wall.Seconds(),
			PeakHeapBytes:  mem.HeapSys,
			HeapAllocBytes: mem.HeapAlloc,
		}
		if err := writeTo(*benchJSON, stdout, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(bench)
		}); err != nil {
			return err
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := trace.WriteTraceEvents(f, res.Traces); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d traces to %s (load in Perfetto or chrome://tracing)\n",
			len(res.Traces), *out)
	}
	if *savePath != "" {
		edges := make([]results.NamedSketch, len(res.EdgeSketches))
		for i, sk := range res.EdgeSketches {
			edges[i] = results.NamedSketch{Name: res.DAG.Edges[i].Label(), Sketch: sk.Record()}
		}
		rec := results.FromWorkflowRun(*name, res.Makespans, edges, res.Traces,
			int(res.Colds), int(res.Failed))
		if err := rec.Save(*savePath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "run saved to %s\n", *savePath)
	}
	return nil
}
