// Command benchgate compares two `go test -bench` output files and fails on
// regression: a >N% geometric-mean ns/op slowdown across the matched
// benchmarks (medians over repeated -count runs), or any allocation on a
// path whose baseline is zero allocs/op.
//
// Usage:
//
//	benchgate -old BENCH_BASELINE.txt -new bench.txt [-max-regress 15] [-allocs-only]
//	          [-alloc-budget BenchmarkStressClient=2 ...]
//
// -alloc-budget is repeatable and enforces an absolute allocs/op ceiling on
// the candidate run, independent of the baseline: a budgeted benchmark that
// is missing, lacks -benchmem data, or exceeds its ceiling fails the gate.
//
// Exit status 0 when all gates pass, 1 on regression or error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/stellar-repro/stellar/internal/benchcmp"
)

// budgetFlag collects repeatable Name=N allocation budgets.
type budgetFlag map[string]float64

func (b budgetFlag) String() string {
	parts := make([]string, 0, len(b))
	for name, v := range b {
		parts = append(parts, fmt.Sprintf("%s=%g", name, v))
	}
	return strings.Join(parts, ",")
}

func (b budgetFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want Name=N, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil || v < 0 {
		return fmt.Errorf("bad budget %q: want a non-negative number", val)
	}
	b[name] = v
	return nil
}

func main() {
	oldPath := flag.String("old", "", "baseline benchmark output file")
	newPath := flag.String("new", "", "candidate benchmark output file")
	maxRegress := flag.Float64("max-regress", 15, "allowed geomean ns/op slowdown in percent")
	allocsOnly := flag.Bool("allocs-only", false,
		"only enforce the zero-alloc gate (for baselines recorded on different hardware)")
	budgets := budgetFlag{}
	flag.Var(budgets, "alloc-budget",
		"absolute allocs/op ceiling as Name=N, repeatable (checked against -new)")
	flag.Parse()
	if err := run(*oldPath, *newPath, *maxRegress, *allocsOnly, budgets); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath string, maxRegress float64, allocsOnly bool, budgets map[string]float64) error {
	if oldPath == "" || newPath == "" {
		return fmt.Errorf("-old and -new are both required")
	}
	old, err := parseFile(oldPath)
	if err != nil {
		return err
	}
	new, err := parseFile(newPath)
	if err != nil {
		return err
	}
	cmp, err := benchcmp.Compare(old, new)
	if err != nil {
		return err
	}
	cmp.Write(os.Stdout)
	if allocsOnly {
		maxRegress = -1
	}
	if err := cmp.Gate(maxRegress); err != nil {
		return err
	}
	if len(budgets) > 0 {
		if err := benchcmp.GateBudgets(new, budgets); err != nil {
			return err
		}
	}
	fmt.Println("benchgate: all gates passed")
	return nil
}

func parseFile(path string) (map[string]benchcmp.Bench, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set, err := benchcmp.ParseMedians(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return set, nil
}
