package des

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw event dispatch rate (callbacks, no
// process switches) — the floor cost of a simulation step.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	defer e.Close()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	e.After(time.Microsecond, tick)
	e.Run(0)
	if count != b.N {
		b.Fatalf("fired %d of %d", count, b.N)
	}
}

// BenchmarkProcessSwitch measures a process sleep/resume round trip — the
// unit cost of every delay in the cloud model.
func BenchmarkProcessSwitch(b *testing.B) {
	e := NewEngine()
	defer e.Close()
	e.Spawn("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.Run(0)
}

// BenchmarkResourceContention measures acquire/release under a contended
// FIFO resource with 64 concurrent processes.
func BenchmarkResourceContention(b *testing.B) {
	e := NewEngine()
	defer e.Close()
	r := NewResource(e, 4)
	per := b.N/64 + 1
	for i := 0; i < 64; i++ {
		e.Spawn("worker", func(p *Proc) {
			for j := 0; j < per; j++ {
				p.Acquire(r)
				p.Sleep(time.Microsecond)
				r.Release()
			}
		})
	}
	b.ResetTimer()
	e.Run(0)
}
