package stats

import (
	"math/rand"
	"testing"
	"time"
)

func shiftedSample(n int, base time.Duration, seed int64) *Sample {
	rng := rand.New(rand.NewSource(seed))
	s := NewSample(n)
	for i := 0; i < n; i++ {
		s.Add(base + time.Duration(rng.ExpFloat64()*float64(20*time.Millisecond)))
	}
	return s
}

func TestMannWhitneySameDistribution(t *testing.T) {
	// Two samples from the same distribution: usually p >= 0.05.
	rejections := 0
	for i := 0; i < 40; i++ {
		a := shiftedSample(200, 10*time.Millisecond, int64(100+i))
		b := shiftedSample(200, 10*time.Millisecond, int64(900+i))
		if MannWhitneyU(a, b).P < 0.05 {
			rejections++
		}
	}
	// Expected false-positive rate ~5%; allow generous slack.
	if rejections > 8 {
		t.Fatalf("%d/40 false rejections at alpha=0.05", rejections)
	}
}

func TestMannWhitneyDetectsShift(t *testing.T) {
	a := shiftedSample(300, 10*time.Millisecond, 1)
	b := shiftedSample(300, 25*time.Millisecond, 2) // clearly shifted
	mw := MannWhitneyU(a, b)
	if mw.P >= 0.001 {
		t.Fatalf("p = %v, want tiny for a 15ms shift", mw.P)
	}
	if mw.Z >= 0 {
		t.Fatalf("z = %v, want negative (A stochastically smaller)", mw.Z)
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	a := shiftedSample(150, 10*time.Millisecond, 3)
	b := shiftedSample(150, 14*time.Millisecond, 4)
	ab := MannWhitneyU(a, b)
	ba := MannWhitneyU(b, a)
	if diff := ab.P - ba.P; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("p not symmetric: %v vs %v", ab.P, ba.P)
	}
	if ab.Z+ba.Z > 1e-9 || ab.Z+ba.Z < -1e-9 {
		t.Fatalf("z not antisymmetric: %v vs %v", ab.Z, ba.Z)
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	a := FromDurations([]time.Duration{ms(5), ms(5), ms(5)})
	b := FromDurations([]time.Duration{ms(5), ms(5)})
	mw := MannWhitneyU(a, b)
	if mw.P != 1 {
		t.Fatalf("all-tied p = %v, want 1", mw.P)
	}
}

func TestMannWhitneyTiesHandled(t *testing.T) {
	// Heavy ties but a real shift must still be detected.
	a := NewSample(100)
	b := NewSample(100)
	for i := 0; i < 100; i++ {
		a.Add(ms(10 + i%3))
		b.Add(ms(20 + i%3))
	}
	if p := MannWhitneyU(a, b).P; p >= 0.001 {
		t.Fatalf("tied-shift p = %v", p)
	}
}

func TestMannWhitneyPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MannWhitneyU(&Sample{}, FromDurations([]time.Duration{ms(1)}))
}
