package econ

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestDurationCodec(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"250ms"`), &d); err != nil {
		t.Fatalf("string form: %v", err)
	}
	if time.Duration(d) != 250*time.Millisecond {
		t.Fatalf("got %v", time.Duration(d))
	}
	if err := json.Unmarshal([]byte(`2000000000`), &d); err != nil {
		t.Fatalf("integer form: %v", err)
	}
	if time.Duration(d) != 2*time.Second {
		t.Fatalf("got %v", time.Duration(d))
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &d); err == nil {
		t.Fatal("bad duration string accepted")
	}
	if err := json.Unmarshal([]byte(`{}`), &d); err == nil {
		t.Fatal("object accepted as duration")
	}
	out, err := json.Marshal(Duration(90 * time.Second))
	if err != nil || string(out) != `"1m30s"` {
		t.Fatalf("marshal: %s, %v", out, err)
	}
}

func TestParseConfigFull(t *testing.T) {
	doc := `{
		"autoscaler": {
			"target": 2,
			"tick_interval": "1s",
			"scale_down_window": "30s",
			"panic_factor": 3,
			"panic_window": "10s",
			"max_scale_up_step": 5,
			"max_scale_down_step": 1,
			"suspend": true
		},
		"billing": {
			"name": "tenant-x",
			"busy_gbms_rate": 1e-8,
			"idle_gbms_rate": 2e-9,
			"suspended_gbms_rate": 3e-10,
			"per_request_fee": 2e-7
		}
	}`
	got, err := ParseConfig([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	as := got.Autoscaler
	if as == nil || as.Target != 2 || as.TickInterval != time.Second ||
		as.ScaleDownWindow != 30*time.Second || as.PanicFactor != 3 ||
		as.PanicWindow != 10*time.Second || as.MaxScaleUpStep != 5 ||
		as.MaxScaleDownStep != 1 || !as.Suspend {
		t.Fatalf("autoscaler = %+v", as)
	}
	b := got.Billing
	if b == nil || b.Name != "tenant-x" || b.BusyGBmsRate != 1e-8 ||
		b.IdleGBmsRate != 2e-9 || b.SuspendedGBmsRate != 3e-10 || b.PerRequestFee != 2e-7 {
		t.Fatalf("billing = %+v", b)
	}
}

func TestParseConfigDefaultsAndOmissions(t *testing.T) {
	got, err := ParseConfig([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Autoscaler != nil || got.Billing != nil {
		t.Fatalf("empty doc produced sections: %+v", got)
	}
	got, err = ParseConfig([]byte(`{"autoscaler": {"target": 1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Autoscaler.TickInterval != 2*time.Second || got.Autoscaler.ScaleDownWindow != time.Minute {
		t.Fatalf("cadence defaults not filled: %+v", got.Autoscaler)
	}
}

func TestParseConfigBillingPlanRef(t *testing.T) {
	got, err := ParseConfig([]byte(`{"billing": {"plan": "ondemand"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Billing.Name != "ondemand" || got.Billing.BusyGBmsRate == 0 {
		t.Fatalf("plan ref = %+v", got.Billing)
	}
	if _, err := ParseConfig([]byte(`{"billing": {"plan": "no-such"}}`)); err == nil {
		t.Fatal("unknown plan ref accepted")
	}
	_, err = ParseConfig([]byte(`{"billing": {"plan": "ondemand", "busy_gbms_rate": 1}}`))
	if err == nil || !strings.Contains(err.Error(), "pick one") {
		t.Fatalf("plan+rates accepted: %v", err)
	}
}

func TestParseConfigCustomPlanName(t *testing.T) {
	got, err := ParseConfig([]byte(`{"billing": {"busy_gbms_rate": 1e-8}}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Billing.Name != "custom" {
		t.Fatalf("anonymous plan name = %q, want custom", got.Billing.Name)
	}
}

func TestParseConfigRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"malformed json", `{`},
		{"negative rate", `{"billing": {"busy_gbms_rate": -1}}`},
		{"nan via string", `{"billing": {"busy_gbms_rate": "nan"}}`},
		{"zero target", `{"autoscaler": {"target": 0}}`},
		{"negative target", `{"autoscaler": {"target": -3}}`},
		{"window below tick", `{"autoscaler": {"target": 1, "tick_interval": "5s", "scale_down_window": "1s"}}`},
		{"bad tick duration", `{"autoscaler": {"target": 1, "tick_interval": "soon"}}`},
	}
	for _, tc := range cases {
		if _, err := ParseConfig([]byte(tc.doc)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "econ.json")
	doc := `{"autoscaler": {"target": 4, "suspend": true}, "billing": {"plan": "provisioned"}}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Autoscaler.Target != 4 || !got.Autoscaler.Suspend || got.Billing.Name != "provisioned" {
		t.Fatalf("loaded = %+v / %+v", got.Autoscaler, got.Billing)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	spec := FileSpec{
		Autoscaler: &AutoscalerSpec{Target: 2, TickInterval: Duration(time.Second)},
		Billing:    &BillingSpec{Plan: "ondemand"},
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Autoscaler.Target != 2 || got.Autoscaler.TickInterval != time.Second {
		t.Fatalf("round trip: %+v", got.Autoscaler)
	}
}
