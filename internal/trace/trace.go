// Package trace records sampling per-request span traces of the simulated
// invocation pipeline (Fig. 1): every infrastructure stage a request
// traverses becomes a span with virtual DES timestamps, so a single slow
// request can be replayed stage by stage instead of being summarized away
// into aggregate percentiles.
//
// The tracer is built for the simulator's hot path:
//
//   - When no tracer is installed, the cloud pays one nil check per request
//     and zero allocations (gated by the warm-invoke alloc-parity test).
//   - When tracing is on, every request records into a pooled span buffer;
//     at completion the tracer either commits the buffer (head-sampled by
//     rate, or one of the K slowest so far — the tail is never lost to
//     sampling) or recycles it. Committed traces live in a fixed-capacity
//     ring that overwrites oldest-first, so memory is bounded regardless of
//     series length and the steady state allocates nothing.
//   - Each simulation shard owns its tracer and runs single-threaded inside
//     its DES engine, so the ring needs no locks; shards merge
//     deterministically in index order.
//
// Traces export as Chrome trace_event JSON (load in chrome://tracing or
// Perfetto) and feed the per-stage tail-attribution report that answers the
// paper's core question: which stage inflates p99.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/stellar-repro/stellar/internal/des"
)

// Stage identifies one pipeline stage of a span. Stages at and beyond
// StageColdSchedulerQueue are cold-start detail: they itemize the spawn
// pipeline that runs concurrently with the request's queue wait, so they
// nest inside the queue-wait span and are excluded from the tiling
// invariant (top-level spans sum exactly to the observed latency).
type Stage uint8

// Top-level pipeline stages, in traversal order (§II-B steps 1-9).
const (
	StagePropagation Stage = iota
	StageFrontend
	StageWire
	StageCongestion
	StageSlowPath
	StageRouting
	StageQueueWait
	StageQueueHandoff
	StageOverhead
	StagePayloadFetch
	StageExec
	StagePayloadStore
	StageDownstream
	StageRetryBackoff
	StageResponse
	// Cold-start detail stages (nested inside queue-wait).
	StageColdSchedulerQueue
	StageColdPlacement
	StageColdSandboxBoot
	StageColdImageFetch
	StageColdChunkReads
	StageColdRuntimeInit
	StageColdSnapshotRestore
	StageColdSnapshotCapture

	numStages
)

var stageNames = [numStages]string{
	StagePropagation:         "propagation",
	StageFrontend:            "frontend",
	StageWire:                "wire",
	StageCongestion:          "congestion",
	StageSlowPath:            "slow-path",
	StageRouting:             "routing",
	StageQueueWait:           "queue-wait",
	StageQueueHandoff:        "queue-handoff",
	StageOverhead:            "overhead",
	StagePayloadFetch:        "payload-fetch",
	StageExec:                "exec",
	StagePayloadStore:        "payload-store",
	StageDownstream:          "downstream",
	StageRetryBackoff:        "retry-backoff",
	StageResponse:            "response",
	StageColdSchedulerQueue:  "cold/scheduler-queue",
	StageColdPlacement:       "cold/placement",
	StageColdSandboxBoot:     "cold/sandbox-boot",
	StageColdImageFetch:      "cold/image-fetch",
	StageColdChunkReads:      "cold/chunk-reads",
	StageColdRuntimeInit:     "cold/runtime-init",
	StageColdSnapshotRestore: "cold/snapshot-restore",
	StageColdSnapshotCapture: "cold/snapshot-capture",
}

// String returns the stage's stable wire name.
func (s Stage) String() string {
	if s >= numStages {
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
	return stageNames[s]
}

// Detail reports whether the stage is cold-start detail (nested inside the
// queue-wait span, excluded from the top-level tiling invariant).
func (s Stage) Detail() bool { return s >= StageColdSchedulerQueue && s < numStages }

// stageByName inverts String for record validation.
var stageByName = func() map[string]Stage {
	m := make(map[string]Stage, numStages)
	for s := Stage(0); s < numStages; s++ {
		m[stageNames[s]] = s
	}
	return m
}()

// Span is one recorded stage interval in virtual time.
type Span struct {
	// Stage identifies the pipeline stage.
	Stage Stage
	// Attempt is the service attempt that produced the span (1-based), or 0
	// for spans outside the retry loop (ingress and egress stages).
	Attempt uint8
	// Start is the span's virtual start time.
	Start des.Time
	// Dur is the span's length.
	Dur time.Duration
}

// Phase is one cold-start pipeline phase, used to lay detail spans
// back-to-back against the instance's creation instant.
type Phase struct {
	Stage Stage
	Dur   time.Duration
}

// Req is the per-request recording handle the cloud threads through the
// invocation pipeline. A nil Req is valid and inert: every method no-ops,
// which is what makes the disabled path allocation-free.
type Req struct {
	t        *Tracer
	id       uint64
	fn       string
	start    des.Time
	end      des.Time
	cold     bool
	sampled  bool
	attempt  uint8 // current attempt (0 outside the retry loop)
	attempts uint8 // highest attempt seen
	spans    []Span

	// Workflow identity (see SetNode): wf groups the node invocations of one
	// workflow instance into a trace tree; node names this invocation's DAG
	// node and parent the node whose delivery fired it.
	wf     uint64
	node   string
	parent string
}

// Mark records a span of duration d that ends at now. Zero and negative
// durations are dropped: they carry no time and would only bloat the ring.
func (r *Req) Mark(st Stage, d time.Duration, now des.Time) {
	if r == nil || d <= 0 {
		return
	}
	r.spans = append(r.spans, Span{Stage: st, Attempt: r.attempt, Start: now - d, Dur: d})
}

// Attempt tags subsequent spans with the given service attempt (1-based);
// zero returns to "outside the retry loop". The highest attempt seen becomes
// the trace's attempt count, which attribution uses to fold failed attempts
// into the retried bucket.
func (r *Req) Attempt(n int) {
	if r == nil {
		return
	}
	if n > 255 {
		n = 255
	}
	r.attempt = uint8(n)
	if r.attempt > r.attempts {
		r.attempts = r.attempt
	}
}

// SetCold marks whether the serving instance was cold. Called once per
// attempt; the final attempt wins.
func (r *Req) SetCold(cold bool) {
	if r == nil {
		return
	}
	r.cold = cold
}

// SetNode tags the trace with workflow identity: wf is the workflow
// instance, node the DAG node this invocation serves, and parent the node
// whose delivery fired it ("" for the workflow root). The serialized record
// carries all three, so draining one shard's tracer yields per-workflow
// trace trees linked by (workflow, parent).
func (r *Req) SetNode(wf uint64, node, parent string) {
	if r == nil {
		return
	}
	r.wf, r.node, r.parent = wf, node, parent
}

// Finish ends the request's own trace on the tracer that began it, exactly
// as Tracer.End would. It lets a component that threads a Req through
// machinery it does not own (the workflow executor handing spans to the
// cloud via Request.Span) finish the span at its completion instant without
// also holding the tracer. A nil Req no-ops.
func (r *Req) Finish(now des.Time, err error) {
	if r == nil {
		return
	}
	r.t.End(r, now, err)
}

// ColdSpans records the cold-start pipeline as detail spans laid out
// back-to-back so the last phase ends at end (the instance's creation
// instant). Phases with zero duration are skipped.
func (r *Req) ColdSpans(end des.Time, phases ...Phase) {
	if r == nil {
		return
	}
	var total time.Duration
	for _, ph := range phases {
		total += ph.Dur
	}
	at := end - total
	for _, ph := range phases {
		if ph.Dur > 0 {
			r.spans = append(r.spans, Span{Stage: ph.Stage, Attempt: r.attempt, Start: at, Dur: ph.Dur})
		}
		at += ph.Dur
	}
}

// Config parameterizes a Tracer.
type Config struct {
	// SampleRate head-samples requests at this rate in [0, 1].
	SampleRate float64
	// SlowestK additionally retains the K slowest requests seen so far,
	// regardless of head sampling, so the tail is never lost. Zero disables
	// the slow path (only head-sampled requests are kept).
	SlowestK int
	// RingCapacity bounds retained head-sampled traces; the ring overwrites
	// oldest-first. Zero selects DefaultRingCapacity.
	RingCapacity int
}

// DefaultRingCapacity is the head-sample ring size when unset.
const DefaultRingCapacity = 8192

// Validate rejects configurations that would make tracing meaningless.
func (c Config) Validate() error {
	if math.IsNaN(c.SampleRate) || math.IsInf(c.SampleRate, 0) {
		return fmt.Errorf("trace: sample rate must be finite")
	}
	if c.SampleRate < 0 || c.SampleRate > 1 {
		return fmt.Errorf("trace: sample rate %v out of [0,1]", c.SampleRate)
	}
	if c.SlowestK < 0 {
		return fmt.Errorf("trace: negative slowest-K %d", c.SlowestK)
	}
	if c.RingCapacity < 0 {
		return fmt.Errorf("trace: negative ring capacity %d", c.RingCapacity)
	}
	return nil
}

// Tracer samples and retains per-request traces for one simulation shard.
// It is not goroutine-safe: all requests of one cloud run inside its
// single-threaded DES engine, which is what lets the ring stay lock-free.
type Tracer struct {
	cfg Config
	rng *rand.Rand

	// ring holds committed head-sampled traces, oldest-first from head.
	ring []*Req
	head int
	n    int

	// slow is a min-heap of the K slowest traces, ordered by (duration, id).
	slow []*Req

	// pool recycles request records and their span buffers.
	pool []*Req

	// dropped counts head-sampled traces overwritten by ring wraparound —
	// surfaced so bounded retention is never a silent cap.
	dropped uint64
}

// New builds a tracer. rng drives head sampling and must be a dedicated
// stream (e.g. "<cloud>/trace") so enabling tracing never shifts the
// simulation's other random draws. cfg must be valid.
func New(cfg Config, rng *rand.Rand) *Tracer {
	if cfg.RingCapacity == 0 {
		cfg.RingCapacity = DefaultRingCapacity
	}
	return &Tracer{
		cfg:  cfg,
		rng:  rng,
		ring: make([]*Req, cfg.RingCapacity),
	}
}

// Begin starts recording one request, returning nil when the request is
// neither head-sampled nor a slow-K candidate (with SlowestK > 0 every
// request records tentatively, since slowness is only known at completion).
// A nil Tracer returns nil.
func (t *Tracer) Begin(id uint64, fn string, now des.Time) *Req {
	if t == nil {
		return nil
	}
	sampled := t.cfg.SampleRate > 0 && t.rng.Float64() < t.cfg.SampleRate
	if !sampled && t.cfg.SlowestK == 0 {
		return nil
	}
	var r *Req
	if n := len(t.pool); n > 0 {
		r = t.pool[n-1]
		t.pool[n-1] = nil
		t.pool = t.pool[:n-1]
	} else {
		r = &Req{}
	}
	*r = Req{t: t, id: id, fn: fn, start: now, sampled: sampled, spans: r.spans[:0]}
	return r
}

// BeginAlways starts recording one request unconditionally, bypassing the
// head-sampling draw: the caller has already made the sampling decision at a
// coarser grain (the workflow executor samples whole workflow instances so a
// sampled workflow's trace tree is never missing nodes). Retention is still
// bounded by the ring at End. A nil Tracer returns nil.
func (t *Tracer) BeginAlways(id uint64, fn string, now des.Time) *Req {
	if t == nil {
		return nil
	}
	var r *Req
	if n := len(t.pool); n > 0 {
		r = t.pool[n-1]
		t.pool[n-1] = nil
		t.pool = t.pool[:n-1]
	} else {
		r = &Req{}
	}
	*r = Req{t: t, id: id, fn: fn, start: now, sampled: true, spans: r.spans[:0]}
	return r
}

// End finishes a request's trace. Errored requests are discarded (the trace
// layer, like the latency recorder, observes successful client-visible
// requests; failures are counted by the fault layer's outcome metrics).
func (t *Tracer) End(r *Req, now des.Time, err error) {
	if r == nil {
		return
	}
	if err != nil {
		t.recycle(r)
		return
	}
	r.end = now
	if t.cfg.SlowestK > 0 && t.qualifiesSlow(r) {
		if evicted := t.insertSlow(r); evicted != nil {
			// A head-sampled trace pushed out of the slow set falls back to
			// the ring it would otherwise have entered.
			if evicted.sampled {
				t.pushRing(evicted)
			} else {
				t.recycle(evicted)
			}
		}
		return
	}
	if r.sampled {
		t.pushRing(r)
		return
	}
	t.recycle(r)
}

// Dropped reports how many head-sampled traces the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Retained reports how many traces are currently committed.
func (t *Tracer) Retained() int {
	if t == nil {
		return 0
	}
	return t.n + len(t.slow)
}

func (t *Tracer) recycle(r *Req) {
	*r = Req{spans: r.spans[:0]}
	t.pool = append(t.pool, r)
}

func (t *Tracer) pushRing(r *Req) {
	if t.n == len(t.ring) {
		old := t.ring[t.head]
		t.ring[t.head] = r
		t.head = (t.head + 1) % len(t.ring)
		t.dropped++
		t.recycle(old)
		return
	}
	t.ring[(t.head+t.n)%len(t.ring)] = r
	t.n++
}

// slowLess orders the slow heap by (duration, id): the root is the least
// slow retained trace, the first to be evicted. The id tie-break keeps
// eviction deterministic under equal durations.
func slowLess(a, b *Req) bool {
	da, db := a.end-a.start, b.end-b.start
	if da != db {
		return da < db
	}
	return a.id < b.id
}

func (t *Tracer) qualifiesSlow(r *Req) bool {
	if len(t.slow) < t.cfg.SlowestK {
		return true
	}
	return slowLess(t.slow[0], r)
}

// insertSlow adds r to the slow set, returning the evicted trace when the
// set was full (nil otherwise).
func (t *Tracer) insertSlow(r *Req) *Req {
	var evicted *Req
	if len(t.slow) == t.cfg.SlowestK {
		evicted = t.slow[0]
		t.slow[0] = r
		t.siftDownSlow(0)
	} else {
		t.slow = append(t.slow, r)
		t.siftUpSlow(len(t.slow) - 1)
	}
	return evicted
}

func (t *Tracer) siftUpSlow(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if slowLess(t.slow[parent], t.slow[i]) {
			return
		}
		t.slow[parent], t.slow[i] = t.slow[i], t.slow[parent]
		i = parent
	}
}

func (t *Tracer) siftDownSlow(i int) {
	n := len(t.slow)
	for {
		min := i
		if l := 2*i + 1; l < n && slowLess(t.slow[l], t.slow[min]) {
			min = l
		}
		if r := 2*i + 2; r < n && slowLess(t.slow[r], t.slow[min]) {
			min = r
		}
		if min == i {
			return
		}
		t.slow[i], t.slow[min] = t.slow[min], t.slow[i]
		i = min
	}
}
