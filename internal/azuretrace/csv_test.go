package azuretrace

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	records := Generate(200, rand.New(rand.NewSource(1)))
	var sb strings.Builder
	if err := WriteCSV(&sb, records); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(records) {
		t.Fatalf("loaded %d of %d", len(loaded), len(records))
	}
	// ReadCSV sorts by function name; Generate emits sorted names already.
	for i := range records {
		if loaded[i].Function != records[i].Function {
			t.Fatalf("row %d: %s != %s", i, loaded[i].Function, records[i].Function)
		}
		// Millisecond formatting rounds to microseconds; TMR must survive
		// to within a 0.1% relative tolerance.
		origTMR, loadTMR := records[i].TMR(), loaded[i].TMR()
		tol := 0.01
		if rel := origTMR * 0.001; rel > tol {
			tol = rel
		}
		if diff := origTMR - loadTMR; diff > tol || diff < -tol {
			t.Fatalf("row %d: TMR %.4f -> %.4f", i, origTMR, loadTMR)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"wrong fields": "function,p25_ms,p50_ms,p75_ms,p95_ms,p99_ms\nf,1,2,3\n",
		"bad value":    "f,1,soon,3,4,5\n",
		"negative":     "f,1,-2,3,4,5\n",
		"non-monotone": "f,5,4,3,2,1\n",
		"zero median":  "f,0,0,1,2,3\n",
		"empty":        "function,p25_ms,p50_ms,p75_ms,p95_ms,p99_ms\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadCSVSortsAndSkipsBlank(t *testing.T) {
	data := "function,p25_ms,p50_ms,p75_ms,p95_ms,p99_ms\n" +
		"zeta,1,2,3,4,5\n" +
		"\n" +
		"alpha,10,20,30,40,50\n"
	records, err := ReadCSV(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || records[0].Function != "alpha" || records[1].Function != "zeta" {
		t.Fatalf("records = %+v", records)
	}
	if records[0].TMR() != 2.5 {
		t.Fatalf("alpha TMR = %v", records[0].TMR())
	}
}
