package stats_test

import (
	"fmt"
	"time"

	"github.com/stellar-repro/stellar/internal/stats"
)

func ExampleSample_TMR() {
	s := stats.NewSample(100)
	for i := 1; i <= 97; i++ {
		s.Add(20 * time.Millisecond) // steady service...
	}
	for i := 0; i < 3; i++ {
		s.Add(400 * time.Millisecond) // ...with a few stragglers
	}
	fmt.Printf("median=%v p99=%v TMR=%.1f\n", s.Median(), s.P99(), s.TMR())
	// Output: median=20ms p99=400ms TMR=20.0
}

func ExampleSample_MR() {
	warmMedian := 44 * time.Millisecond
	cold := stats.FromDurations([]time.Duration{
		440 * time.Millisecond, 448 * time.Millisecond, 460 * time.Millisecond,
	})
	// Table I's metrics: median and tail normalized to the warm median.
	fmt.Printf("MR=%.0f TR=%.0f\n", cold.MR(warmMedian), cold.TR(warmMedian))
	// Output: MR=10 TR=10
}

func ExampleSample_CDF() {
	s := stats.FromDurations([]time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
	})
	for _, pt := range s.CDF() {
		fmt.Printf("%v -> %.2f\n", pt.Value, pt.Frac)
	}
	// Output:
	// 10ms -> 0.25
	// 20ms -> 0.75
	// 40ms -> 1.00
}

func ExampleWindows() {
	samples := []stats.TimedSample{
		{At: 0, Latency: 500 * time.Millisecond}, // cold start
		{At: 3 * time.Second, Latency: 40 * time.Millisecond},
		{At: 6 * time.Second, Latency: 44 * time.Millisecond},
	}
	for _, w := range stats.Windows(samples, 5*time.Second) {
		fmt.Printf("t=%v median=%v\n", w.Start, w.Stats.Median)
	}
	// Output:
	// t=0s median=270ms
	// t=5s median=44ms
}
