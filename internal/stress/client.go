package stress

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// ClientKind selects the HTTP client implementation a worker uses.
type ClientKind string

const (
	// ClientRaw is the allocation-lean hand-rolled HTTP/1.1 client: one
	// persistent TCP connection per worker, pooled request/response
	// buffers, a keyed body scanner — zero steady-state allocations per
	// request (gated by BenchmarkStressClient in benchgate).
	ClientRaw ClientKind = "raw"
	// ClientStd is the net/http client: a per-worker http.Transport with
	// keep-alive connection reuse and a counting dialer. Slower and
	// allocation-heavier, but exercises the exact client stack STeLLAR's
	// measurement client uses.
	ClientStd ClientKind = "std"
)

// ParseClientKind validates a flag spelling.
func ParseClientKind(s string) (ClientKind, error) {
	switch ClientKind(s) {
	case ClientRaw, ClientStd:
		return ClientKind(s), nil
	}
	return "", fmt.Errorf("stress: unknown client kind %q (want raw or std)", s)
}

// ConnStats counts a client's connection behavior: how many requests rode
// an already-established connection versus paying a fresh TCP dial.
type ConnStats struct {
	// Dials counts new TCP connections established.
	Dials uint64
	// Reused counts requests served over a previously-used connection.
	Reused uint64
}

// Client is one worker's HTTP client. Do is called sequentially by its
// owning worker; implementations are not safe for concurrent use.
type Client interface {
	// Do performs one GET against the configured target, filling r.
	// A non-nil error means the request never completed at the transport
	// level; HTTP-level failures surface as r.Status.
	Do(r *Reply) error
	// Stats reports connection counters.
	Stats() ConnStats
	// Close releases the client's connections.
	Close()
}

// Target is a preformatted request destination: the dial address plus the
// exact GET request bytes, built once so the per-request write is a single
// copy-free send.
type Target struct {
	scheme string
	addr   string // host:port to dial
	url    string // full URL (std client)
	req    []byte // raw serialized GET request (raw client)
}

// NewTarget prepares a target from a function endpoint URL and an optional
// raw query string ("exec_ms=5&payload=1024").
func NewTarget(rawURL, query string) (*Target, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("stress: bad target URL: %w", err)
	}
	if u.Scheme != "http" {
		return nil, fmt.Errorf("stress: target must be http://, got %q", rawURL)
	}
	if u.Host == "" || u.Path == "" {
		return nil, fmt.Errorf("stress: target URL %q needs a host and path", rawURL)
	}
	addr := u.Host
	if u.Port() == "" {
		addr += ":80"
	}
	full := u.String()
	pathQ := u.RequestURI()
	if query != "" {
		sep := "?"
		if u.RawQuery != "" {
			sep = "&"
		}
		full += sep + query
		pathQ += sep + query
	}
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\nUser-Agent: stellar-stress\r\nAccept: application/json\r\n\r\n",
		pathQ, u.Host)
	return &Target{scheme: u.Scheme, addr: addr, url: full, req: []byte(req)}, nil
}

// BuildQuery renders the stress knobs as the query string the httpfaas
// invoke endpoint understands. Empty when both are zero.
func BuildQuery(exec time.Duration, payloadBytes int64) string {
	var parts []string
	if exec > 0 {
		parts = append(parts, fmt.Sprintf("exec_ms=%d", exec.Milliseconds()))
	}
	if payloadBytes > 0 {
		parts = append(parts, fmt.Sprintf("payload=%d", payloadBytes))
	}
	return strings.Join(parts, "&")
}

// --- raw client --------------------------------------------------------------

// rawClient is a hand-rolled HTTP/1.1 client over one persistent TCP
// connection. Everything on the per-request path — the request write, the
// header scan, the body read, the reply parse — reuses buffers owned by the
// client, so a steady-state request performs zero heap allocations.
type rawClient struct {
	target  *Target
	timeout time.Duration

	conn net.Conn
	br   *bufio.Reader
	body []byte

	stats ConnStats
}

// newRawClient builds a client; the connection is dialed lazily on first Do.
func newRawClient(target *Target, timeout time.Duration) *rawClient {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &rawClient{
		target:  target,
		timeout: timeout,
		br:      bufio.NewReaderSize(nil, 16<<10),
		body:    make([]byte, 4<<10),
	}
}

func (c *rawClient) Stats() ConnStats { return c.stats }

func (c *rawClient) Close() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

func (c *rawClient) dial() error {
	conn, err := net.DialTimeout("tcp", c.target.addr, c.timeout)
	if err != nil {
		return err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	c.conn = conn
	c.br.Reset(conn)
	c.stats.Dials++
	return nil
}

// Do performs one request. A request that fails on a reused connection is
// retried once on a fresh one (the server may have dropped the idle
// keep-alive between requests); a failure on a fresh connection is final.
func (c *rawClient) Do(r *Reply) error {
	reused := c.conn != nil
	if !reused {
		if err := c.dial(); err != nil {
			return err
		}
	}
	err := c.roundTrip(r)
	if err == nil {
		if reused {
			c.stats.Reused++
		}
		return nil
	}
	c.Close()
	if !reused {
		return err
	}
	// Stale keep-alive connection: one retry on a fresh dial.
	if err := c.dial(); err != nil {
		return err
	}
	if err := c.roundTrip(r); err != nil {
		c.Close()
		return err
	}
	return nil
}

func (c *rawClient) roundTrip(r *Reply) error {
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return err
	}
	if _, err := c.conn.Write(c.target.req); err != nil {
		return err
	}

	line, err := c.readLine()
	if err != nil {
		return err
	}
	status, ok := parseStatusLine(line)
	if !ok {
		return fmt.Errorf("stress: malformed status line %q", line)
	}
	r.Status = status

	contentLength := int64(-1)
	chunked := false
	closeAfter := false
	for {
		line, err = c.readLine()
		if err != nil {
			return err
		}
		if len(line) == 0 {
			break
		}
		if v, ok := headerValue(line, "content-length"); ok {
			n, ok := parseInt(v)
			if !ok || n < 0 {
				return fmt.Errorf("stress: bad Content-Length %q", v)
			}
			contentLength = n
		} else if v, ok := headerValue(line, "transfer-encoding"); ok {
			chunked = asciiEqualFold(v, "chunked")
		} else if v, ok := headerValue(line, "connection"); ok {
			closeAfter = asciiEqualFold(v, "close")
		}
	}

	var body []byte
	switch {
	case chunked:
		body, err = c.readChunked()
	case contentLength >= 0:
		body, err = c.readN(contentLength)
	default:
		// No framing: the server will close the connection to delimit.
		body, err = c.readAll()
		closeAfter = true
	}
	if err != nil {
		return err
	}
	if closeAfter {
		c.Close()
	}
	if r.Status == http.StatusOK && !parseReply(body, r) {
		return fmt.Errorf("stress: response body missing instrumentation fields: %q", body)
	}
	return nil
}

// readLine returns the next CRLF-terminated line without its terminator.
// The returned slice aliases the bufio buffer and is valid until the next
// read — which is exactly how the header loop consumes it.
func (c *rawClient) readLine() ([]byte, error) {
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// readN reads exactly n body bytes into the client's reusable buffer.
func (c *rawClient) readN(n int64) ([]byte, error) {
	if int64(cap(c.body)) < n {
		c.body = make([]byte, n)
	}
	buf := c.body[:n]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// readChunked consumes a chunked body into the reusable buffer.
func (c *rawClient) readChunked() ([]byte, error) {
	total := 0
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		size, ok := parseHex(line)
		if !ok {
			return nil, fmt.Errorf("stress: bad chunk size %q", line)
		}
		if size == 0 {
			// Trailer section: consume through the blank line.
			for {
				line, err := c.readLine()
				if err != nil {
					return nil, err
				}
				if len(line) == 0 {
					return c.body[:total], nil
				}
			}
		}
		need := total + int(size)
		if cap(c.body) < need {
			grown := make([]byte, need)
			copy(grown, c.body[:total])
			c.body = grown
		}
		if _, err := io.ReadFull(c.br, c.body[total:need]); err != nil {
			return nil, err
		}
		total = need
		if line, err = c.readLine(); err != nil {
			return nil, err
		} else if len(line) != 0 {
			return nil, fmt.Errorf("stress: missing chunk terminator")
		}
	}
}

// readAll drains the connection until EOF (close-delimited body).
func (c *rawClient) readAll() ([]byte, error) {
	total := 0
	for {
		if total == cap(c.body) {
			grown := make([]byte, 2*cap(c.body))
			copy(grown, c.body[:total])
			c.body = grown
		}
		n, err := c.br.Read(c.body[total:cap(c.body)])
		total += n
		if err == io.EOF {
			return c.body[:total], nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// parseStatusLine extracts the status code from "HTTP/1.1 200 OK".
func parseStatusLine(line []byte) (int, bool) {
	i := 0
	for i < len(line) && line[i] != ' ' {
		i++
	}
	if i+4 > len(line) {
		return 0, false
	}
	code, ok := parseInt(line[i+1:])
	if !ok || code < 100 || code > 599 {
		return 0, false
	}
	return int(code), true
}

// headerValue matches a header line against a lowercase key ("content-
// length") and returns its trimmed value, allocation-free.
func headerValue(line []byte, key string) ([]byte, bool) {
	if len(line) < len(key)+1 {
		return nil, false
	}
	for i := 0; i < len(key); i++ {
		if lowerASCII(line[i]) != key[i] {
			return nil, false
		}
	}
	if line[len(key)] != ':' {
		return nil, false
	}
	v := line[len(key)+1:]
	for len(v) > 0 && (v[0] == ' ' || v[0] == '\t') {
		v = v[1:]
	}
	for len(v) > 0 && (v[len(v)-1] == ' ' || v[len(v)-1] == '\t') {
		v = v[:len(v)-1]
	}
	return v, true
}

func lowerASCII(c byte) byte {
	if 'A' <= c && c <= 'Z' {
		return c + ('a' - 'A')
	}
	return c
}

func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if lowerASCII(b[i]) != s[i] {
			return false
		}
	}
	return true
}

func parseHex(b []byte) (int64, bool) {
	var n int64
	digits := 0
	for _, c := range b {
		var d int64
		switch {
		case '0' <= c && c <= '9':
			d = int64(c - '0')
		case 'a' <= c && c <= 'f':
			d = int64(c-'a') + 10
		case 'A' <= c && c <= 'F':
			d = int64(c-'A') + 10
		case c == ';': // chunk extension: ignore the rest
			return n, digits > 0
		default:
			return 0, false
		}
		if n > (1<<40)/16 {
			return 0, false
		}
		n = n*16 + d
		digits++
	}
	return n, digits > 0
}

// --- std client --------------------------------------------------------------

// stdClient drives the stock net/http stack: a per-worker http.Transport
// with keep-alive reuse, a reusable *http.Request, and a pooled body
// buffer. Its connection counters come from a counting dialer.
type stdClient struct {
	target *Target
	client *http.Client
	req    *http.Request
	body   []byte
	dials  atomic.Uint64
	reqs   uint64
	errs   uint64
}

// newStdClient builds the per-worker transport. conns bounds the idle pool;
// a sequential worker keeps at most one connection hot, but a larger pool
// absorbs redials around server restarts.
func newStdClient(target *Target, conns int, timeout time.Duration) (*stdClient, error) {
	if conns <= 0 {
		conns = 2
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	c := &stdClient{target: target, body: make([]byte, 4<<10)}
	dialer := &net.Dialer{Timeout: timeout}
	tr := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			c.dials.Add(1)
			return dialer.DialContext(ctx, network, addr)
		},
		MaxIdleConns:        conns,
		MaxIdleConnsPerHost: conns,
		IdleConnTimeout:     90 * time.Second,
	}
	c.client = &http.Client{Transport: tr, Timeout: timeout}
	req, err := http.NewRequest(http.MethodGet, target.url, nil)
	if err != nil {
		return nil, fmt.Errorf("stress: %w", err)
	}
	c.req = req
	return c, nil
}

func (c *stdClient) Do(r *Reply) error {
	resp, err := c.client.Do(c.req)
	if err != nil {
		return err
	}
	c.reqs++
	total := 0
	for {
		if total == cap(c.body) {
			grown := make([]byte, 2*cap(c.body))
			copy(grown, c.body[:total])
			c.body = grown
		}
		n, rerr := resp.Body.Read(c.body[total:cap(c.body)])
		total += n
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			_ = resp.Body.Close()
			return rerr
		}
	}
	if err := resp.Body.Close(); err != nil {
		return err
	}
	r.Status = resp.StatusCode
	if r.Status == http.StatusOK && !parseReply(c.body[:total], r) {
		return fmt.Errorf("stress: response body missing instrumentation fields")
	}
	return nil
}

func (c *stdClient) Stats() ConnStats {
	d := c.dials.Load()
	reused := c.reqs
	if d < reused {
		reused -= d
	} else {
		reused = 0
	}
	return ConnStats{Dials: d, Reused: reused}
}

func (c *stdClient) Close() {
	if tr, ok := c.client.Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
}

// newClient builds a worker client of the requested kind.
func newClient(kind ClientKind, target *Target, conns int, timeout time.Duration) (Client, error) {
	switch kind {
	case ClientStd:
		return newStdClient(target, conns, timeout)
	case ClientRaw, "":
		return newRawClient(target, timeout), nil
	}
	return nil, fmt.Errorf("stress: unknown client kind %q", kind)
}
