package dist

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func sampleN(d Dist, n int, seed int64) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

func percentile(vs []time.Duration, p float64) time.Duration {
	sorted := append([]time.Duration(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

func within(t *testing.T, got, want time.Duration, tol float64, what string) {
	t.Helper()
	lo := time.Duration(float64(want) * (1 - tol))
	hi := time.Duration(float64(want) * (1 + tol))
	if got < lo || got > hi {
		t.Fatalf("%s = %v, want %v ± %.0f%%", what, got, want, tol*100)
	}
}

func TestConstant(t *testing.T) {
	d := Constant(5 * time.Millisecond)
	for _, v := range sampleN(d, 10, 1) {
		if v != 5*time.Millisecond {
			t.Fatalf("constant sampled %v", v)
		}
	}
}

func TestUniformBounds(t *testing.T) {
	d := Uniform{Min: 10 * time.Millisecond, Max: 20 * time.Millisecond}
	for _, v := range sampleN(d, 1000, 2) {
		if v < d.Min || v > d.Max {
			t.Fatalf("uniform sampled %v outside [%v,%v]", v, d.Min, d.Max)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	d := Uniform{Min: 7 * time.Millisecond, Max: 7 * time.Millisecond}
	if v := d.Sample(rand.New(rand.NewSource(1))); v != 7*time.Millisecond {
		t.Fatalf("degenerate uniform sampled %v", v)
	}
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{Mean: 100 * time.Millisecond}
	vs := sampleN(d, 50000, 3)
	var sum time.Duration
	for _, v := range vs {
		sum += v
	}
	within(t, sum/time.Duration(len(vs)), 100*time.Millisecond, 0.05, "exp mean")
}

func TestLogNormalMedTail(t *testing.T) {
	d := LogNormalMedTail(18*time.Millisecond, 74*time.Millisecond)
	vs := sampleN(d, 100000, 4)
	within(t, percentile(vs, 50), 18*time.Millisecond, 0.05, "lognormal median")
	within(t, percentile(vs, 99), 74*time.Millisecond, 0.10, "lognormal p99")
	// Analytical quantiles match the constructor arguments exactly.
	within(t, d.Median(), 18*time.Millisecond, 0.001, "analytic median")
	within(t, d.P99(), 74*time.Millisecond, 0.001, "analytic p99")
}

func TestLogNormalDegenerate(t *testing.T) {
	d := LogNormalMedTail(10*time.Millisecond, 10*time.Millisecond)
	for _, v := range sampleN(d, 100, 5) {
		if v != 10*time.Millisecond {
			t.Fatalf("zero-sigma lognormal sampled %v", v)
		}
	}
}

func TestLogNormalPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p99 < median")
		}
	}()
	LogNormalMedTail(10*time.Millisecond, 5*time.Millisecond)
}

func TestWeibullHeavyTail(t *testing.T) {
	heavy := Weibull{Shape: 0.5, Scale: 10 * time.Millisecond}
	light := Weibull{Shape: 3, Scale: 10 * time.Millisecond}
	hv := sampleN(heavy, 20000, 6)
	lv := sampleN(light, 20000, 7)
	hr := float64(percentile(hv, 99)) / float64(percentile(hv, 50))
	lr := float64(percentile(lv, 99)) / float64(percentile(lv, 50))
	if hr <= lr {
		t.Fatalf("heavy-tail weibull p99/p50 %.2f should exceed light %.2f", hr, lr)
	}
}

func TestParetoMinimum(t *testing.T) {
	d := Pareto{Xm: 5 * time.Millisecond, Alpha: 2}
	for _, v := range sampleN(d, 5000, 8) {
		if v < d.Xm {
			t.Fatalf("pareto sampled %v below xm %v", v, d.Xm)
		}
	}
}

func TestCombinators(t *testing.T) {
	base := Constant(10 * time.Millisecond)
	if v := (Shifted{Offset: 5 * time.Millisecond, D: base}).Sample(nil); v != 15*time.Millisecond {
		t.Fatalf("shifted = %v", v)
	}
	if v := (Scaled{Factor: 2, D: base}).Sample(nil); v != 20*time.Millisecond {
		t.Fatalf("scaled = %v", v)
	}
	c := Clamped{Min: 12 * time.Millisecond, Max: 0, D: base}
	if v := c.Sample(nil); v != 12*time.Millisecond {
		t.Fatalf("clamp min = %v", v)
	}
	c = Clamped{Min: 0, Max: 8 * time.Millisecond, D: base}
	if v := c.Sample(nil); v != 8*time.Millisecond {
		t.Fatalf("clamp max = %v", v)
	}
	s := Sum{base, base, Constant(time.Millisecond)}
	if v := s.Sample(nil); v != 21*time.Millisecond {
		t.Fatalf("sum = %v", v)
	}
}

func TestMixtureWeights(t *testing.T) {
	m := NewMixture(
		Component{Weight: 0.99, D: Constant(time.Millisecond)},
		Component{Weight: 0.01, D: Constant(time.Second)},
	)
	vs := sampleN(m, 100000, 9)
	slow := 0
	for _, v := range vs {
		if v == time.Second {
			slow++
		}
	}
	frac := float64(slow) / float64(len(vs))
	if frac < 0.005 || frac > 0.02 {
		t.Fatalf("straggler fraction = %.4f, want ~0.01", frac)
	}
}

func TestMixturePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty mixture")
		}
	}()
	NewMixture()
}

func TestStreamsDeterministicAndIndependent(t *testing.T) {
	s := NewStreams(42)
	a1 := s.Stream("frontend").Int63()
	a2 := s.Stream("frontend").Int63()
	b := s.Stream("storage").Int63()
	if a1 != a2 {
		t.Fatal("same-name streams differ")
	}
	if a1 == b {
		t.Fatal("different-name streams collide")
	}
	if NewStreams(43).Stream("frontend").Int63() == a1 {
		t.Fatal("different seeds produced identical streams")
	}
}

// Property: LogNormalMedTail round-trips its parameters analytically.
func TestQuickLogNormalRoundTrip(t *testing.T) {
	f := func(medMs, extraMs uint16) bool {
		med := time.Duration(medMs%5000+1) * time.Millisecond
		p99 := med + time.Duration(extraMs)*time.Millisecond
		d := LogNormalMedTail(med, p99)
		return absDiff(d.Median(), med) <= med/100+time.Microsecond &&
			absDiff(d.P99(), p99) <= p99/100+time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: all distributions sample non-negative values.
func TestQuickNonNegative(t *testing.T) {
	f := func(seed int64, medMs, tailMs uint16) bool {
		med := time.Duration(medMs%1000+1) * time.Millisecond
		tail := med + time.Duration(tailMs)*time.Millisecond
		dists := []Dist{
			LogNormalMedTail(med, tail),
			Exponential{Mean: med},
			Weibull{Shape: 0.7, Scale: med},
			Pareto{Xm: med, Alpha: 1.5},
			Uniform{Min: 0, Max: med},
		}
		rng := rand.New(rand.NewSource(seed))
		for _, d := range dists {
			for i := 0; i < 20; i++ {
				if d.Sample(rng) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func absDiff(a, b time.Duration) time.Duration {
	if a > b {
		return a - b
	}
	return b - a
}

// TestMixtureBinarySearchMatchesLinearScan: the precomputed-cum binary
// search must pick the same component as the original weight-subtraction
// scan for the same RNG stream — the selection rule is an observable part
// of every provider profile's golden output.
func TestMixtureBinarySearchMatchesLinearScan(t *testing.T) {
	comps := []Component{
		{Weight: 0.93, D: Constant(1 * time.Millisecond)},
		{Weight: 0.05, D: Constant(2 * time.Millisecond)},
		{Weight: 0.015, D: Constant(3 * time.Millisecond)},
		{Weight: 0.005, D: Constant(4 * time.Millisecond)},
	}
	fast := NewMixture(comps...)
	// A literal mixture (nil cum) exercises the reference scan; copy the
	// validated total so both see the same selection domain.
	slow := &Mixture{Components: comps, total: fast.total}
	for seed := int64(0); seed < 20; seed++ {
		a, b := rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed))
		for i := 0; i < 5_000; i++ {
			if got, want := fast.Sample(a), slow.Sample(b); got != want {
				t.Fatalf("seed %d draw %d: binary search picked %v, linear scan %v",
					seed, i, got, want)
			}
		}
	}
}

// TestMixtureSampleAllocFree: component selection must not allocate — it
// runs once per simulated network/storage hop.
func TestMixtureSampleAllocFree(t *testing.T) {
	m := NewMixture(
		Component{Weight: 0.97, D: Constant(time.Millisecond)},
		Component{Weight: 0.03, D: Constant(time.Second)},
	)
	rng := rand.New(rand.NewSource(1))
	if avg := testing.AllocsPerRun(1000, func() { m.Sample(rng) }); avg != 0 {
		t.Fatalf("Mixture.Sample allocates %.1f per draw, want 0", avg)
	}
}

// BenchmarkMixtureSample measures component selection across mixture widths
// (selection is O(log k) on the precomputed cumulative weights).
func BenchmarkMixtureSample(b *testing.B) {
	for _, k := range []int{2, 8, 32} {
		comps := make([]Component, k)
		for i := range comps {
			comps[i] = Component{Weight: 1 / float64(i+1), D: Constant(time.Millisecond)}
		}
		m := NewMixture(comps...)
		rng := rand.New(rand.NewSource(1))
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Sample(rng)
			}
		})
	}
}
