package des

import "fmt"

// Proc is the handle a simulated process uses to interact with virtual time.
// A process is a goroutine scheduled cooperatively by the engine: exactly one
// process (or event callback) executes at a time, so processes may freely
// mutate shared simulation state between blocking calls.
type Proc struct {
	eng    *Engine
	name   string
	wake   chan struct{}
	killed bool
	done   bool
}

// Spawn starts fn as a new process at the current virtual time. It must be
// called from simulation context (another process, an event callback, or
// before Run). The process begins executing when the engine reaches the
// spawning instant.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, wake: make(chan struct{})}
	e.procs[p] = struct{}{}
	go p.top(fn)
	e.schedule(e.now, p.resume)
	return p
}

// top is the root of a process goroutine: it waits for the first resume,
// runs fn, and signals the engine on exit (normal or killed).
func (p *Proc) top(fn func(p *Proc)) {
	<-p.wake
	defer func() {
		p.done = true
		delete(p.eng.procs, p)
		r := recover()
		if r != nil && r != errKilled {
			// Re-panic real bugs with process context attached.
			panic(fmt.Sprintf("des: process %q panicked: %v", p.name, r))
		}
		// Hand control back to whoever resumed us (engine loop or Close).
		p.eng.parked <- struct{}{}
	}()
	if p.killed {
		panic(errKilled)
	}
	fn(p)
}

// resume transfers control to the process and blocks until it parks again or
// exits. It runs as an event callback inside the engine loop.
func (p *Proc) resume() {
	p.wake <- struct{}{}
	<-p.eng.parked
}

// park blocks the process until another resume is delivered. The caller must
// have arranged for a future resume (a scheduled event, a resource grant, or
// a signal registration) before calling park.
func (p *Proc) park() {
	p.eng.parked <- struct{}{}
	<-p.wake
	if p.killed {
		panic(errKilled)
	}
}

// kill unwinds a parked process. Called only from Engine.Close.
func (p *Proc) kill() {
	if p.done {
		return
	}
	p.killed = true
	p.wake <- struct{}{}
	<-p.eng.parked
}

// Engine returns the engine that owns this process.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (the process still yields to the scheduler).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p.eng.now+d, p.resume)
	p.park()
}

// Yield reschedules the process at the current instant, letting other work
// scheduled for this time run first.
func (p *Proc) Yield() { p.Sleep(0) }
