package experiments

import (
	"fmt"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/core"
)

// Fig8BurstSizes are the burst sizes studied (§VI-D; Fig. 8 sweeps up to
// 500; 1 corresponds to Fig. 3's individual invocations).
var Fig8BurstSizes = []int{1, 100, 300, 500}

// fig8ShortRefs hold the paper's client-observed latencies for bursts with
// the short IAT (§VI-D1 and Table I's bursty-warm row).
var fig8ShortRefs = map[string]map[int]Ref{
	"aws": {
		1:   {Median: 44 * time.Millisecond, P99: 100 * time.Millisecond},
		100: {Median: 88 * time.Millisecond, P99: 484 * time.Millisecond},
		500: {Median: 141 * time.Millisecond, P99: 620 * time.Millisecond},
	},
	"google": {
		1:   {Median: 31 * time.Millisecond, P99: 61 * time.Millisecond},
		100: {Median: 93 * time.Millisecond, P99: 155 * time.Millisecond},
		500: {Median: 96 * time.Millisecond, P99: 182 * time.Millisecond},
	},
	"azure": {
		1:   {Median: 57 * time.Millisecond, P99: 107 * time.Millisecond},
		100: {Median: 285 * time.Millisecond, P99: 2337 * time.Millisecond},
		500: {Median: 1904 * time.Millisecond, P99: 7426 * time.Millisecond},
	},
}

// fig8LongRefs hold the paper's latencies for bursts with the long IAT
// (§VI-D2 and Table I's bursty-cold row).
var fig8LongRefs = map[string]map[int]Ref{
	"aws": {
		1:   {Median: 448 * time.Millisecond, P99: 672 * time.Millisecond},
		100: {Median: 264 * time.Millisecond, P99: 528 * time.Millisecond},
		500: {Median: 300 * time.Millisecond, P99: 560 * time.Millisecond},
	},
	"google": {
		1:   {Median: 870 * time.Millisecond, P99: 1567 * time.Millisecond},
		100: {Median: 1818 * time.Millisecond, P99: 3095 * time.Millisecond},
		500: {Median: 1700 * time.Millisecond, P99: 3000 * time.Millisecond},
	},
	"azure": {
		1:   {Median: 1401 * time.Millisecond, P99: 3643 * time.Millisecond},
		100: {Median: 2337 * time.Millisecond, P99: 3306 * time.Millisecond},
		500: {Median: 5745 * time.Millisecond, P99: 7707 * time.Millisecond},
	},
}

// BurstKind selects the IAT regime of a burst study.
type BurstKind string

// Burst IAT regimes.
const (
	BurstShortIAT BurstKind = "short"
	BurstLongIAT  BurstKind = "long"
)

// runBurst measures one provider at one burst size under the given IAT
// regime. Short-IAT runs discard the first (cold) burst to measure the
// steady state; long-IAT runs measure every (cold) burst.
func runBurst(prov string, seed int64, engine cloud.EngineMode, kind BurstKind, burst, samples int, execTime time.Duration) (*core.RunResult, error) {
	rc := core.RuntimeConfig{
		Samples:   samples,
		BurstSize: burst,
		ExecTime:  core.Duration(execTime),
	}
	if kind == BurstShortIAT {
		rc.IAT = core.Duration(shortIAT)
		rc.WarmupDiscard = burst // drop the first, necessarily cold, burst
	} else {
		rc.IAT = core.Duration(longIATFor(prov))
	}
	return measure(prov, seed, engine, pythonFn("burst", 1), rc)
}

// Fig8Bursts reproduces Fig. 8: latency CDFs for bursty invocation traffic
// with short and long IATs across burst sizes, per provider.
func Fig8Bursts(opts Options) (*Figure, error) {
	opts = opts.normalized()
	fig := &Figure{
		ID:    "fig8",
		Title: "Burst response-time CDFs (short and long IAT)",
		Notes: []string{"burst size 1 equals Fig. 3's individual invocations"},
	}
	type fig8Case struct {
		prov  string
		kind  BurstKind
		burst int
	}
	var cases []fig8Case
	for _, prov := range AllProviders {
		for _, kind := range []BurstKind{BurstShortIAT, BurstLongIAT} {
			for _, burst := range Fig8BurstSizes {
				cases = append(cases, fig8Case{prov, kind, burst})
			}
		}
	}
	series, err := mapSeries(opts, len(cases), func(i int, seed int64) (Series, error) {
		c := cases[i]
		samples := opts.Samples
		if samples < c.burst*2 {
			samples = c.burst * 2 // at least two measured bursts
		}
		res, err := runBurst(c.prov, seed, opts.Engine, c.kind, c.burst, samples, 0)
		if err != nil {
			return Series{}, fmt.Errorf("fig8 %s %s burst=%d: %w", c.prov, c.kind, c.burst, err)
		}
		var paper Ref
		switch c.kind {
		case BurstShortIAT:
			paper = fig8ShortRefs[c.prov][c.burst]
		case BurstLongIAT:
			paper = fig8LongRefs[c.prov][c.burst]
		}
		label := fmt.Sprintf("%s %s-IAT burst=%d", c.prov, c.kind, c.burst)
		return seriesFrom(label, float64(c.burst), res, paper), nil
	})
	if err != nil {
		return nil, err
	}
	fig.Series = series
	return fig, nil
}
