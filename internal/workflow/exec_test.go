package workflow

import (
	"strings"
	"testing"
	"time"

	"github.com/stellar-repro/stellar/internal/cloud"
	"github.com/stellar-repro/stellar/internal/des"
	"github.com/stellar-repro/stellar/internal/dist"
	"github.com/stellar-repro/stellar/internal/faults"
	"github.com/stellar-repro/stellar/internal/providers"
	"github.com/stellar-repro/stellar/internal/trace"
)

// newTestCloud builds an engine + AWS-profile cloud for executor tests.
func newTestCloud(t testing.TB, seed int64, inject *faults.Config) (*des.Engine, *cloud.Cloud) {
	t.Helper()
	cfg, err := providers.Get("aws")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Inject = inject
	eng := des.NewEngine()
	t.Cleanup(eng.Close)
	c, err := cloud.New(eng, cfg, dist.NewStreams(seed))
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func deployDAG(t testing.TB, c *cloud.Cloud, d *DAG, exec time.Duration) {
	t.Helper()
	for _, n := range d.Nodes {
		if err := c.Deploy(cloud.FunctionSpec{
			Name:     n.Name,
			Runtime:  cloud.RuntimePython,
			Method:   cloud.DeployZIP,
			ExecTime: exec,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// runInstances executes n workflows back-to-back on one proc and returns a
// deep copy of each Result (Run reuses its scratch Result).
func runInstances(t testing.TB, eng *des.Engine, ex *Exec, n int, gap time.Duration) ([]Result, []error) {
	t.Helper()
	results := make([]Result, 0, n)
	errs := make([]error, 0, n)
	eng.Spawn("test/workflows", func(p *des.Proc) {
		for i := 0; i < n; i++ {
			res, err := ex.Run(p)
			cp := *res
			cp.EdgeTransfers = append([]time.Duration(nil), res.EdgeTransfers...)
			cp.Critical = append([]int(nil), res.Critical...)
			cp.CriticalEdges = append([]int(nil), res.CriticalEdges...)
			results = append(results, cp)
			errs = append(errs, err)
			if gap > 0 {
				p.Sleep(gap)
			}
		}
	})
	eng.Run(0)
	return results, errs
}

func TestExecConfigValidation(t *testing.T) {
	eng, c := newTestCloud(t, 1, nil)
	_ = eng
	d := chainDAG(2)
	deployDAG(t, c, d, 0)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no cloud", Config{DAG: d}, "cloud is required"},
		{"no dag", Config{Cloud: c}, "dag is required"},
		{"invalid dag", Config{Cloud: c, DAG: &DAG{Name: "empty"}}, "no nodes"},
		{"bad rate", Config{Cloud: c, DAG: d, SampleRate: 1.5}, "out of [0,1]"},
		{"tracer without rng", Config{Cloud: c, DAG: d, SampleRate: 0.5,
			Tracer: trace.New(trace.Config{SampleRate: 1}, dist.NewStreams(1).Stream("t"))}, "sampling rng"},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want %q", tc.name, err, tc.want)
		}
	}
	undeployed, err := Preset("chain-3", PresetSpec{})
	if err != nil {
		t.Fatal(err)
	}
	undeployed.Nodes[2].Name = "ghost"
	undeployed.Edges[1].To = "ghost"
	if _, err := New(Config{Cloud: c, DAG: undeployed}); err == nil || !strings.Contains(err.Error(), "not deployed") {
		t.Errorf("undeployed node: %v", err)
	}
}

// TestCriticalPathInvariant pins the workflow-level latency law: a completed
// sync workflow's end-to-end latency is at least the largest root-to-leaf
// sum of node service times (every root-leaf dependency chain must fully
// serialize), and its reported critical path is a real root-to-leaf path
// whose edges connect its nodes.
func TestCriticalPathInvariant(t *testing.T) {
	const exec = 20 * time.Millisecond
	for _, id := range PresetIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			eng, c := newTestCloud(t, 7, nil)
			d, err := Preset(id, PresetSpec{Transfer: TransferInline, PayloadBytes: 4 << 10})
			if err != nil {
				t.Fatal(err)
			}
			deployDAG(t, c, d, exec)
			ex, err := New(Config{Cloud: c, DAG: d})
			if err != nil {
				t.Fatal(err)
			}
			cp, err := compile(d)
			if err != nil {
				t.Fatal(err)
			}
			floor := time.Duration(cp.depth) * exec

			results, errs := runInstances(t, eng, ex, 5, 50*time.Millisecond)
			for i, res := range results {
				if errs[i] != nil {
					t.Fatalf("instance %d: %v", i, errs[i])
				}
				if res.ClientLatency < floor {
					t.Errorf("instance %d: client latency %v below service floor %v (depth %d x %v)",
						i, res.ClientLatency, floor, cp.depth, exec)
				}
				if res.Makespan < floor {
					t.Errorf("instance %d: makespan %v below service floor %v", i, res.Makespan, floor)
				}
				if len(res.Critical) == 0 {
					t.Fatalf("instance %d: no critical path", i)
				}
				if res.Critical[0] != cp.root {
					t.Errorf("instance %d: critical path starts at %d, want root %d", i, res.Critical[0], cp.root)
				}
				if last := res.Critical[len(res.Critical)-1]; len(cp.out[last]) != 0 {
					t.Errorf("instance %d: critical path ends at non-leaf %q", i, d.Nodes[last].Name)
				}
				if len(res.CriticalEdges) != len(res.Critical)-1 {
					t.Fatalf("instance %d: %d edges for %d nodes", i, len(res.CriticalEdges), len(res.Critical))
				}
				for j, ei := range res.CriticalEdges {
					e := d.Edges[ei]
					if e.From != d.Nodes[res.Critical[j]].Name || e.To != d.Nodes[res.Critical[j+1]].Name {
						t.Errorf("instance %d: edge %s does not link %s->%s", i, e.Label(),
							d.Nodes[res.Critical[j]].Name, d.Nodes[res.Critical[j+1]].Name)
					}
				}
			}
		})
	}
}

// TestWorkflowTraceTree checks cross-function trace propagation: a sampled
// workflow yields exactly one span per node, every span tiles its latency
// (RequestRecord.Validate), and the recorded parents reproduce the
// barrier-firing tree rooted at the workflow root.
func TestWorkflowTraceTree(t *testing.T) {
	eng, c := newTestCloud(t, 11, nil)
	d, err := Preset("mapreduce", PresetSpec{Transfer: TransferInline, PayloadBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	deployDAG(t, c, d, 5*time.Millisecond)
	streams := dist.NewStreams(11)
	tr := trace.New(trace.Config{SampleRate: 1}, streams.Stream("aws/workflow-trace"))
	ex, err := New(Config{Cloud: c, DAG: d, Tracer: tr, SampleRate: 1, Rng: streams.Stream("aws/workflow")})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	_, errs := runInstances(t, eng, ex, n, 30*time.Millisecond)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}

	recs := tr.Drain()
	if want := n * len(d.Nodes); len(recs) != want {
		t.Fatalf("drained %d spans, want %d (%d workflows x %d nodes)", len(recs), want, n, len(d.Nodes))
	}
	byWF := make(map[uint64][]trace.RequestRecord)
	for _, rec := range recs {
		if err := rec.Validate(); err != nil {
			t.Fatalf("span %s/%d: %v", rec.Fn, rec.ID, err)
		}
		if rec.Workflow == 0 {
			t.Fatalf("span %s/%d has no workflow tag", rec.Fn, rec.ID)
		}
		if rec.Node != rec.Fn {
			t.Errorf("span %d: node %q != fn %q", rec.ID, rec.Node, rec.Fn)
		}
		byWF[rec.Workflow] = append(byWF[rec.Workflow], rec)
	}
	if len(byWF) != n {
		t.Fatalf("spans cover %d workflows, want %d", len(byWF), n)
	}
	names := make(map[string]bool, len(d.Nodes))
	for _, nd := range d.Nodes {
		names[nd.Name] = true
	}
	for wf, spans := range byWF {
		seen := make(map[string]string, len(spans))
		roots := 0
		for _, rec := range spans {
			if _, dup := seen[rec.Node]; dup {
				t.Fatalf("workflow %d: duplicate span for node %q", wf, rec.Node)
			}
			seen[rec.Node] = rec.Parent
			if rec.Parent == "" {
				roots++
			} else if !names[rec.Parent] {
				t.Errorf("workflow %d: span %q has unknown parent %q", wf, rec.Node, rec.Parent)
			}
		}
		if roots != 1 {
			t.Errorf("workflow %d: %d root spans, want 1", wf, roots)
		}
		// Every non-root parent must itself be traced: the tree has no
		// dangling references, so walking parents always reaches the root.
		for node, parent := range seen {
			steps := 0
			for parent != "" {
				next, ok := seen[parent]
				if !ok {
					t.Fatalf("workflow %d: %q's ancestor %q has no span", wf, node, parent)
				}
				parent = next
				if steps++; steps > len(d.Nodes) {
					t.Fatalf("workflow %d: parent cycle at %q", wf, node)
				}
			}
		}
	}
}

// TestQuorumJoinStragglers pins the first-K straggler policy: a fanout-4
// sink with Need=2 fires on the second success and counts the last two
// arrivals as dropped, conserving started = completed + dropped + failed.
func TestQuorumJoinStragglers(t *testing.T) {
	eng, c := newTestCloud(t, 3, nil)
	d, err := Preset("fanout-4", PresetSpec{Transfer: TransferInline, PayloadBytes: 1 << 10, Need: 2})
	if err != nil {
		t.Fatal(err)
	}
	deployDAG(t, c, d, 5*time.Millisecond)
	ex, err := New(Config{Cloud: c, DAG: d})
	if err != nil {
		t.Fatal(err)
	}
	results, errs := runInstances(t, eng, ex, 3, 20*time.Millisecond)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
	m := ex.Metrics()
	sinkIdx := len(d.Nodes) - 1
	b := m.Barriers[sinkIdx]
	if b.Started != 12 || b.Completed != 6 || b.Dropped != 6 || b.Failed != 0 || b.Skipped != 0 {
		t.Errorf("sink barrier = %+v, want started 12 completed 6 dropped 6", b)
	}
	for _, res := range results {
		counted := 0
		for ei, tr := range res.EdgeTransfers {
			if d.Edges[ei].To != "sink" {
				continue
			}
			if tr >= 0 {
				counted++
			}
		}
		if counted != 2 {
			t.Errorf("instance %d observed %d sink in-edges, want the 2 counted ones", res.ID, counted)
		}
	}
}

// TestConditionalBranchSelect pins conditional routing: a diamond whose
// root takes one of its two out-edges skips the untaken half, so the join
// only completes under a first-1 straggler policy; with wait-all it is
// skipped and the workflow fails. The rotation exercises both branches
// across successive instances.
func TestConditionalBranchSelect(t *testing.T) {
	build := func(need int) *DAG {
		d, err := Preset("diamond", PresetSpec{Transfer: TransferInline, PayloadBytes: 1 << 10, Need: need})
		if err != nil {
			t.Fatal(err)
		}
		d.Nodes[0].Select = 1
		return d
	}

	t.Run("quorum-1 completes", func(t *testing.T) {
		eng, c := newTestCloud(t, 5, nil)
		d := build(1)
		deployDAG(t, c, d, 2*time.Millisecond)
		ex, err := New(Config{Cloud: c, DAG: d})
		if err != nil {
			t.Fatal(err)
		}
		_, errs := runInstances(t, eng, ex, 4, 10*time.Millisecond)
		for i, err := range errs {
			if err == nil || !strings.Contains(err.Error(), "failed or skipped") {
				t.Fatalf("instance %d: %v (one arm is skipped, so the workflow must report it)", i, err)
			}
		}
		m := ex.Metrics()
		bIdx, cIdx := 1, 2
		started := m.Barriers[bIdx].Started + m.Barriers[cIdx].Started
		skipped := m.Barriers[bIdx].Skipped + m.Barriers[cIdx].Skipped
		if started != 4 || skipped != 4 {
			t.Errorf("arm barriers started=%d skipped=%d, want 4 and 4 (one taken, one skipped per run)", started, skipped)
		}
		if m.Barriers[bIdx].Started == 0 || m.Barriers[cIdx].Started == 0 {
			t.Errorf("rotation never alternated: b started %d, c started %d",
				m.Barriers[bIdx].Started, m.Barriers[cIdx].Started)
		}
		// The join itself must fire from the single taken arm and resolve
		// its untaken in-edge as skipped.
		join := m.Barriers[3]
		if join.Started != 4 || join.Completed != 4 || join.Skipped != 4 {
			t.Errorf("join barrier = %+v, want started 4 completed 4 skipped 4", join)
		}
	})

	t.Run("wait-all skips the join", func(t *testing.T) {
		eng, c := newTestCloud(t, 5, nil)
		d := build(0)
		deployDAG(t, c, d, 2*time.Millisecond)
		ex, err := New(Config{Cloud: c, DAG: d})
		if err != nil {
			t.Fatal(err)
		}
		_, errs := runInstances(t, eng, ex, 2, 10*time.Millisecond)
		for i, err := range errs {
			if err == nil || !strings.Contains(err.Error(), "failed or skipped") {
				t.Fatalf("instance %d: expected failure, got %v", i, err)
			}
		}
		if m := ex.Metrics(); m.Failed != 2 || m.Completed != 0 {
			t.Errorf("metrics = %+v, want all failed", m)
		}
	})
}

// TestAsyncEdgesExtendMakespan checks fire-and-forget semantics: with async
// edges the root returns before downstream nodes finish, so the makespan
// strictly exceeds the client latency while all nodes still complete.
func TestAsyncEdgesExtendMakespan(t *testing.T) {
	eng, c := newTestCloud(t, 9, nil)
	d, err := Preset("chain-3", PresetSpec{Mode: ModeAsync, Transfer: TransferInline, PayloadBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	deployDAG(t, c, d, 10*time.Millisecond)
	ex, err := New(Config{Cloud: c, DAG: d})
	if err != nil {
		t.Fatal(err)
	}
	results, errs := runInstances(t, eng, ex, 3, 50*time.Millisecond)
	for i, res := range results {
		if errs[i] != nil {
			t.Fatalf("instance %d: %v", i, errs[i])
		}
		if res.Makespan <= res.ClientLatency {
			t.Errorf("instance %d: makespan %v not beyond client latency %v despite async tail",
				i, res.Makespan, res.ClientLatency)
		}
	}
	if m := ex.Metrics(); m.Completed != 3 {
		t.Errorf("completed = %d, want 3", m.Completed)
	}
}

// TestInlineLimitFailsEdge checks the payload-dependent transfer cost's
// failure mode: an inline edge above the provider limit fails the consumer
// (started -> failed at its barrier) without failing the producer.
func TestInlineLimitFailsEdge(t *testing.T) {
	eng, c := newTestCloud(t, 13, nil)
	d, err := Preset("chain-2", PresetSpec{Transfer: TransferInline, PayloadBytes: 100 << 20})
	if err != nil {
		t.Fatal(err)
	}
	deployDAG(t, c, d, 0)
	ex, err := New(Config{Cloud: c, DAG: d})
	if err != nil {
		t.Fatal(err)
	}
	_, errs := runInstances(t, eng, ex, 1, 0)
	if errs[0] == nil || !strings.Contains(errs[0].Error(), "failed or skipped") {
		t.Fatalf("got %v, want node failure", errs[0])
	}
	m := ex.Metrics()
	if m.Failed != 1 || m.NodeFailures != 1 {
		t.Errorf("metrics = %+v, want 1 failed workflow with 1 node failure", m)
	}
	// The delivery itself is counted before the edge is rejected, so the
	// barrier conserves: the rejection is the consumer's own failure.
	b := m.Barriers[1]
	if b.Started != 1 || b.Completed != 1 {
		t.Errorf("consumer barrier = %+v, want started 1 completed 1", b)
	}
}

// TestConservationUnderFaults mirrors the cloud's invariants suite at the
// workflow layer: with drops, spawn failures, and storage timeouts injected,
// every join barrier still conserves its deliveries (the executor re-checks
// started = completed + dropped + failed on every instance and would return
// a conservation error), all instances resolve, and the aggregate counters
// tile each node's in-degree exactly.
func TestConservationUnderFaults(t *testing.T) {
	for _, tc := range []struct {
		name string
		id   string
		spec PresetSpec
	}{
		{"mapreduce quorum blobstore", "mapreduce", PresetSpec{Transfer: TransferBlobstore, PayloadBytes: 32 << 10, Need: 3}},
		{"fanout wait-all inline", "fanout-6", PresetSpec{Transfer: TransferInline, PayloadBytes: 8 << 10}},
		{"chain async", "chain-4", PresetSpec{Mode: ModeAsync, Transfer: TransferBlobstore, PayloadBytes: 4 << 10}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng, c := newTestCloud(t, 21, &faults.Config{
				DropProb:           0.05,
				SpawnFailProb:      0.3,
				StorageTimeoutProb: 0.08,
				StorageTimeout:     200 * time.Millisecond,
			})
			d, err := Preset(tc.id, tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			deployDAG(t, c, d, 3*time.Millisecond)
			ex, err := New(Config{Cloud: c, DAG: d})
			if err != nil {
				t.Fatal(err)
			}
			cp, err := compile(d)
			if err != nil {
				t.Fatal(err)
			}
			const n = 300
			_, errs := runInstances(t, eng, ex, n, 5*time.Millisecond)
			for i, err := range errs {
				if err != nil && !strings.Contains(err.Error(), "failed or skipped") {
					t.Fatalf("instance %d: non-failure error (conservation?): %v", i, err)
				}
			}
			m := ex.Metrics()
			if m.Workflows != n || m.Completed+m.Failed != n {
				t.Fatalf("accounting: workflows=%d completed=%d failed=%d", m.Workflows, m.Completed, m.Failed)
			}
			if m.Failed == 0 {
				t.Fatalf("fault injection produced no failed workflows; test is vacuous")
			}
			if m.Completed == 0 {
				t.Fatalf("no workflow survived; cannot check the success path")
			}
			for i, b := range m.Barriers {
				if b.Started != b.Completed+b.Dropped+b.Failed {
					t.Errorf("node %q: started %d != completed %d + dropped %d + failed %d",
						d.Nodes[i].Name, b.Started, b.Completed, b.Dropped, b.Failed)
				}
				if got, want := b.Completed+b.Dropped+b.Failed+b.Skipped, uint64(n*cp.indeg[i]); got != want {
					t.Errorf("node %q: %d resolutions for %d in-edge deliveries", d.Nodes[i].Name, got, want)
				}
			}
		})
	}
}

// TestChurnLeaksNoInstances runs a 10k-workflow churn and checks the cloud
// drains clean: every instance reaped by keep-alive, no pending events, and
// executor accounting intact — the workflow layer cannot leak cloud state.
func TestChurnLeaksNoInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-workflow churn")
	}
	eng, c := newTestCloud(t, 17, nil)
	d, err := Preset("diamond", PresetSpec{Transfer: TransferInline, PayloadBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	deployDAG(t, c, d, time.Millisecond)
	ex, err := New(Config{Cloud: c, DAG: d})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10_000
	_, errs := runInstances(t, eng, ex, n, 10*time.Millisecond)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
	m := ex.Metrics()
	if m.Workflows != n || m.Completed != n {
		t.Fatalf("accounting: %+v", m)
	}
	for _, nd := range d.Nodes {
		if live := c.LiveInstances(nd.Name); live != 0 {
			t.Errorf("node %q leaked %d instances past keep-alive", nd.Name, live)
		}
		if idle := c.IdleInstances(nd.Name); idle != 0 {
			t.Errorf("node %q left %d idle instances", nd.Name, idle)
		}
	}
	if pending := eng.PendingEvents(); pending != 0 {
		t.Errorf("%d events leaked", pending)
	}
	cm := c.Metrics()
	if want := uint64(n * len(d.Nodes)); cm.ColdServed+cm.WarmServed != want {
		t.Errorf("served %d invocations, want %d", cm.ColdServed+cm.WarmServed, want)
	}
}

func TestPathLabel(t *testing.T) {
	eng, c := newTestCloud(t, 1, nil)
	_ = eng
	d := chainDAG(3)
	deployDAG(t, c, d, 0)
	ex, err := New(Config{Cloud: c, DAG: d})
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.PathLabel([]int{0, 1, 2}); got != "n0 -> n1 -> n2" {
		t.Errorf("PathLabel = %q", got)
	}
	if got := ex.PathLabel(nil); got != "" {
		t.Errorf("PathLabel(nil) = %q", got)
	}
	if ex.DAG() != d {
		t.Error("DAG accessor lost the topology")
	}
}
