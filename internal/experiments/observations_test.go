package experiments

import (
	"strings"
	"testing"
)

func TestObservationsAllPass(t *testing.T) {
	obs, err := Observations(Options{Seed: 3, Samples: 900, Replicas: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 7 {
		t.Fatalf("%d observations, want 7", len(obs))
	}
	for _, o := range obs {
		if !o.Pass {
			t.Errorf("Observation %d failed: %s (%s)", o.ID, o.Claim, o.Evidence)
		}
		if o.Evidence == "" {
			t.Errorf("Observation %d has no evidence", o.ID)
		}
	}
	var sb strings.Builder
	WriteObservationsReport(&sb, obs)
	if !strings.Contains(sb.String(), "7/7 observations reproduced") {
		t.Fatalf("report:\n%s", sb.String())
	}
}
